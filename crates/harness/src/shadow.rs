//! The shadow lease model: the *correct* lease semantics re-implemented
//! over ground-truth verb deliveries, shared by the randomized harness
//! ([`World`](crate::World)) and the exhaustive model checker
//! (`harmony-mc`) so both enforce the identical contract.
//!
//! Lease state is the invariant hardest to eyeball: renewals arrive on
//! two paths (write-path verbs renew the stored deadline directly;
//! read-path verbs stamp an atomic that a later write-path pass folds
//! in), and recovery traffic renews as a side effect. The shadow mirrors
//! the controller's arithmetic operation-for-operation, so the lease
//! oracle can demand exact agreement — bit-identical deadlines, not
//! approximate ones.

use std::collections::BTreeMap;

use harmony_core::{InstanceId, LeaseConfig, RetireReason};

/// Shadow lease state of one instance, mirroring the controller's
/// two-level scheme: `deadline` is what write-path renewals maintain,
/// `stamp` is the newest unfolded read-path touch (`0.0` = none).
#[derive(Debug, Clone, PartialEq)]
pub struct ShadowSession {
    /// The write-path deadline.
    pub deadline: f64,
    /// The newest unfolded read-path touch (`0.0` = none).
    pub stamp: f64,
    /// Whether the connection was marked dropped.
    pub disconnected: bool,
}

impl ShadowSession {
    /// The deadline as the (correct) reaper will see it after folding.
    pub fn effective(&self, duration: f64) -> f64 {
        if self.stamp == 0.0 {
            self.deadline
        } else {
            self.deadline.max(self.stamp + duration)
        }
    }

    /// Folds a pending read-path touch into the deadline, mirroring the
    /// controller's `fold_touches` exactly: a folded touch renews (and
    /// clears a disconnect mark) only when it extends the deadline check
    /// window, and the stamp is consumed.
    pub fn fold(&mut self, duration: f64) {
        if self.stamp != 0.0 {
            let renewed = self.stamp + duration;
            if renewed > self.deadline {
                self.deadline = renewed;
            }
            self.disconnected = false;
            self.stamp = 0.0;
        }
    }
}

/// The shadow lease table: every live session's [`ShadowSession`] plus
/// the lease configuration the arithmetic depends on.
#[derive(Debug, Clone, PartialEq)]
pub struct ShadowLeases {
    lease: LeaseConfig,
    sessions: BTreeMap<InstanceId, ShadowSession>,
}

impl ShadowLeases {
    /// An empty table under `lease`.
    pub fn new(lease: LeaseConfig) -> Self {
        ShadowLeases { lease, sessions: BTreeMap::new() }
    }

    /// The lease configuration the table mirrors.
    pub fn lease(&self) -> &LeaseConfig {
        &self.lease
    }

    /// The live shadow sessions, keyed by instance.
    pub fn sessions(&self) -> &BTreeMap<InstanceId, ShadowSession> {
        &self.sessions
    }

    /// Number of live shadow sessions.
    pub fn len(&self) -> usize {
        self.sessions.len()
    }

    /// True when no session is live.
    pub fn is_empty(&self) -> bool {
        self.sessions.is_empty()
    }

    /// Forgets every session (server restart).
    pub fn clear(&mut self) {
        self.sessions.clear();
    }

    /// Registers a fresh session: full lease from `now`, no pending
    /// touch, connected.
    pub fn insert_startup(&mut self, id: InstanceId, now: f64) {
        self.sessions.insert(
            id,
            ShadowSession { deadline: now + self.lease.duration, stamp: 0.0, disconnected: false },
        );
    }

    /// Removes a session (explicit end).
    pub fn remove(&mut self, id: &InstanceId) {
        self.sessions.remove(id);
    }

    /// A write-path renewal: full lease from `now`, disconnect cleared.
    /// Unknown instances are ignored (the controller returns `false` and
    /// mutates nothing).
    pub fn renew(&mut self, id: &InstanceId, now: f64) {
        if let Some(s) = self.sessions.get_mut(id) {
            s.deadline = now + self.lease.duration;
            s.disconnected = false;
        }
    }

    /// A read-path touch: the stamp only moves forward.
    pub fn touch(&mut self, id: &InstanceId, now: f64) {
        if let Some(s) = self.sessions.get_mut(id) {
            if now > s.stamp {
                s.stamp = now;
            }
        }
    }

    /// A disconnect mark: pending touches fold first (the controller does
    /// the same, so a touch that raced the drop still counts), then the
    /// deadline is capped to the disconnect grace.
    pub fn mark_disconnected(&mut self, id: &InstanceId, now: f64) {
        let duration = self.lease.duration;
        let grace = self.lease.disconnect_grace;
        if let Some(s) = self.sessions.get_mut(id) {
            s.fold(duration);
            if !s.disconnected {
                s.disconnected = true;
                s.deadline = s.deadline.min(now + grace);
            }
        }
    }

    /// Folds every pending read-path touch (what a correct reap does
    /// first).
    pub fn fold_all(&mut self) {
        let duration = self.lease.duration;
        for s in self.sessions.values_mut() {
            s.fold(duration);
        }
    }

    /// The model of a *correct* reap at `now`: folds all touches, then
    /// retires — removes and returns — every session whose deadline has
    /// passed, with the reason a correct reaper would record.
    pub fn expected_reap(&mut self, now: f64) -> BTreeMap<InstanceId, RetireReason> {
        self.fold_all();
        let mut expected: BTreeMap<InstanceId, RetireReason> = BTreeMap::new();
        for (id, s) in &self.sessions {
            if s.deadline <= now {
                let reason = if s.disconnected {
                    RetireReason::Disconnected
                } else {
                    RetireReason::LeaseExpired
                };
                expected.insert(id.clone(), reason);
            }
        }
        for id in expected.keys() {
            self.sessions.remove(id);
        }
        expected
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lease() -> LeaseConfig {
        LeaseConfig::default()
    }

    #[test]
    fn touch_then_fold_extends_the_deadline() {
        let mut sh = ShadowLeases::new(lease());
        let id = InstanceId::new("bag", 1);
        sh.insert_startup(id.clone(), 1.0);
        let d0 = sh.sessions()[&id].deadline;
        sh.touch(&id, 5.0);
        assert_eq!(sh.sessions()[&id].deadline, d0, "touch alone moves nothing");
        assert_eq!(sh.sessions()[&id].effective(sh.lease().duration), 5.0 + sh.lease().duration);
        sh.fold_all();
        assert_eq!(sh.sessions()[&id].deadline, 5.0 + sh.lease().duration);
        assert_eq!(sh.sessions()[&id].stamp, 0.0, "fold consumes the stamp");
    }

    #[test]
    fn expected_reap_folds_before_expiring() {
        let mut sh = ShadowLeases::new(lease());
        let dur = sh.lease().duration;
        let stale = InstanceId::new("bag", 1);
        let touched = InstanceId::new("simple", 2);
        sh.insert_startup(stale.clone(), 0.5);
        sh.insert_startup(touched.clone(), 0.5);
        sh.touch(&touched, 10.0);
        // Past the stale deadline but inside the touched session's
        // post-fold window: exactly one retirement expected.
        let at = 0.5 + dur + 1.0;
        let reaped = sh.expected_reap(at);
        assert_eq!(reaped.len(), 1);
        assert_eq!(reaped[&stale], RetireReason::LeaseExpired);
        assert!(sh.sessions().contains_key(&touched));
    }

    #[test]
    fn disconnect_caps_the_deadline_and_reaps_with_its_reason() {
        let mut sh = ShadowLeases::new(lease());
        let grace = sh.lease().disconnect_grace;
        let id = InstanceId::new("bag", 1);
        sh.insert_startup(id.clone(), 0.0);
        sh.mark_disconnected(&id, 1.0);
        assert_eq!(sh.sessions()[&id].deadline, 1.0 + grace);
        let reaped = sh.expected_reap(1.0 + grace);
        assert_eq!(reaped[&id], RetireReason::Disconnected);
        assert!(sh.is_empty());
    }
}
