//! Replayable failure artifacts.
//!
//! A failing (ideally shrunk) schedule serializes to a small JSON file —
//! conventionally under `results/` — that `harness replay` re-executes
//! exactly: the artifact carries the seed (which also derives the
//! controller configuration), the ops, the planted bug, and the
//! violation and fingerprint the run is expected to reproduce.

use std::fs;
use std::io;
use std::path::{Path, PathBuf};

use serde::{Deserialize, Serialize};

use crate::oracle::Violation;
use crate::schedule::Schedule;
use crate::PlantedBug;

/// Everything needed to reproduce one failing run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Artifact {
    /// The failing (usually shrunk) schedule.
    pub schedule: Schedule,
    /// The planted bug the run executed with (`none` for real failures).
    pub planted: PlantedBug,
    /// The violation the schedule reproduces.
    pub violation: Violation,
    /// Hex FNV-1a fingerprint of the failing run, for replay comparison.
    pub fingerprint: String,
}

/// Saves an artifact as `harness-seed-<seed>.json` under `dir`
/// (creating the directory), returning the path written.
pub fn save(dir: &Path, artifact: &Artifact) -> io::Result<PathBuf> {
    fs::create_dir_all(dir)?;
    let path = dir.join(format!("harness-seed-{}.json", artifact.schedule.seed));
    let json = serde_json::to_string_pretty(artifact).map_err(io::Error::other)?;
    fs::write(&path, json)?;
    Ok(path)
}

/// Loads an artifact from a path written by [`save`].
pub fn load(path: &Path) -> io::Result<Artifact> {
    let json = fs::read_to_string(path)?;
    serde_json::from_str(&json).map_err(io::Error::other)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schedule::generate;

    #[test]
    fn artifacts_round_trip() {
        let dir = std::env::temp_dir().join("harness-artifact-test");
        let artifact = Artifact {
            schedule: generate(3),
            planted: PlantedBug::ReaperSkipsTouchFold,
            violation: Violation { op_index: 7, oracle: "lease".into(), detail: "example".into() },
            fingerprint: "00ff00ff00ff00ff".into(),
        };
        let path = save(&dir, &artifact).unwrap();
        assert_eq!(load(&path).unwrap(), artifact);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
