//! Greedy schedule shrinking (delta debugging).
//!
//! Because ops addressing a dead client slot or an absent node are
//! defined as no-ops, every subsequence of a schedule is itself valid,
//! and op timestamps are absolute so removing ops never shifts the
//! survivors. The shrinker exploits both: it repeatedly deletes chunks
//! (halving the chunk size down to single ops) and keeps any candidate
//! that still fails, iterating to a fixpoint.

use crate::schedule::{Op, Schedule};
use crate::{run_schedule, PlantedBug, RunReport};

/// The result of shrinking a failing schedule.
#[derive(Debug, Clone)]
pub struct Shrunk {
    /// The minimized schedule (same seed, a subsequence of the ops).
    pub schedule: Schedule,
    /// The report of the minimized schedule's (still-failing) run.
    pub report: RunReport,
    /// How many candidate runs the search spent.
    pub runs: usize,
}

/// Greedily minimizes a failing schedule, preserving *some* failure (not
/// necessarily the original oracle — any violation keeps a candidate).
///
/// Returns `None` if the schedule does not fail in the first place.
pub fn shrink(schedule: &Schedule, planted: PlantedBug) -> Option<Shrunk> {
    let mut report = run_schedule(schedule, planted);
    report.violation.as_ref()?;
    let mut runs = 1;
    let mut ops = schedule.ops.clone();

    let mut chunk = (ops.len() / 2).max(1);
    loop {
        let mut removed_any = false;
        let mut i = 0;
        while i < ops.len() {
            let end = (i + chunk).min(ops.len());
            let mut candidate: Vec<Op> = ops[..i].to_vec();
            candidate.extend_from_slice(&ops[end..]);
            if candidate.is_empty() {
                i = end;
                continue;
            }
            let trial =
                run_schedule(&Schedule { seed: schedule.seed, ops: candidate.clone() }, planted);
            runs += 1;
            if trial.violation.is_some() {
                ops = candidate;
                report = trial;
                removed_any = true;
                // Retry the same window: the ops that slid into it are
                // new deletion candidates.
            } else {
                i = end;
            }
        }
        if chunk == 1 {
            if !removed_any {
                break;
            }
        } else {
            chunk = (chunk / 2).max(1);
        }
    }

    Some(Shrunk { schedule: Schedule { seed: schedule.seed, ops }, report, runs })
}
