//! Deterministic whole-stack simulation harness.
//!
//! The harness runs the entire Harmony stack — a real [`Controller`]
//! behind the production [`SharedController`] handle, real clients, the
//! real wire protocol over an in-process transport — on a virtual clock,
//! driven by seeded schedules of client traffic, fault injections, lease
//! sweeps, server restarts, and cluster membership churn. After every
//! step a set of oracles re-derives the system's invariants from first
//! principles and compares them with the controller's own bookkeeping.
//!
//! Three properties make failures actionable:
//!
//! - **Determinism.** A seed fully determines the schedule, the
//!   controller configuration, and (because nothing reads the wall clock
//!   or OS entropy) the entire run, down to a bit-identical
//!   journal/decision fingerprint — across repeat runs and across
//!   `RAYON_NUM_THREADS` settings.
//! - **Replayability.** A failing run serializes to a JSON artifact
//!   (schedule + violation) that `harness replay` re-executes exactly.
//! - **Shrinkability.** Ops on dead clients and absent nodes are no-ops,
//!   so every subsequence of a schedule is itself a valid schedule; the
//!   greedy shrinker exploits this to cut failing schedules down to a
//!   few ops.
//!
//! [`Controller`]: harmony_core::Controller
//! [`SharedController`]: harmony_proto::SharedController

#![warn(missing_docs)]

pub mod artifact;
pub mod oracle;
pub mod recovery;
pub mod schedule;
pub mod shadow;
pub mod shrink;
pub mod world;

use harmony_core::CoalescePolicy;
use harmony_core::{ControllerConfig, OptimizerKind, DEFAULT_EXHAUSTIVE_LIMIT};
use serde::{Deserialize, Serialize};

pub use oracle::Violation;
pub use recovery::{crash_run, recover, CrashedRun, RecoveredRun};
pub use schedule::{generate, Op, OpKind, Schedule};
pub use shadow::{ShadowLeases, ShadowSession};
pub use world::{palette, World};

/// A deliberately planted controller bug, for validating that the
/// oracles actually catch regressions (and that the shrinker reduces
/// them to small schedules). `None` in normal sweeps.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
#[serde(rename_all = "kebab-case")]
pub enum PlantedBug {
    /// No fault: the stock controller.
    #[default]
    None,
    /// The lease reaper skips folding read-path touch stamps before
    /// expiring sessions, so a client kept alive purely by polls and
    /// metric reports is reaped as if it had gone silent.
    ReaperSkipsTouchFold,
}

/// The outcome of one run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RunReport {
    /// The seed that produced the schedule and configuration.
    pub seed: u64,
    /// The planted bug the run executed with.
    pub planted: PlantedBug,
    /// FNV-1a fingerprint of the full journal/decision sequence; equal
    /// seeds must produce equal fingerprints, always.
    pub fingerprint: u64,
    /// Ops executed before the run stopped (== `ops_total` on success).
    pub ops_executed: usize,
    /// Ops in the schedule.
    pub ops_total: usize,
    /// Journal entries appended over the run (peak append counter; a
    /// mid-run server restart resets the counter).
    pub journal_appended: u64,
    /// Placement decisions committed over the run.
    pub decisions: usize,
    /// The first invariant violation, if any.
    pub violation: Option<Violation>,
}

/// Derives the controller configuration for a seed. Varying the
/// optimizer and coalescing policy per seed means a sweep exercises the
/// greedy, exhaustive, and annealing search paths and both the inline
/// and the batched re-evaluation modes.
pub fn config_for_seed(seed: u64) -> ControllerConfig {
    let optimizer = match seed % 3 {
        0 => OptimizerKind::Greedy,
        1 => OptimizerKind::Exhaustive { limit: DEFAULT_EXHAUSTIVE_LIMIT },
        _ => OptimizerKind::Annealing { steps: 60, initial_temperature: 25.0, seed, chains: 3 },
    };
    let mut config = ControllerConfig { optimizer, ..ControllerConfig::default() };
    if seed.is_multiple_of(5) {
        config.coalesce = CoalescePolicy { window: 0.5, max_delay: 2.0, max_pending: 8 };
    }
    config
}

/// Runs one schedule against a world with the given planted bug.
pub fn run_schedule(schedule: &Schedule, planted: PlantedBug) -> RunReport {
    World::run(schedule, planted)
}

/// Generates and runs the schedule for a seed.
pub fn run_seed(seed: u64, planted: PlantedBug) -> RunReport {
    run_schedule(&generate(seed), planted)
}
