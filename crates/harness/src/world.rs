//! The simulated world: the whole stack wired together on a virtual
//! clock, plus the shadow lease model the lease oracle compares against.
//!
//! A [`World`] owns a real [`Controller`] behind the same
//! [`SharedController`] handle production uses, and drives real
//! [`HarmonyClient`]s over fault-injectable in-process transports
//! ([`ChaosTransport`] around [`LocalTransport`]). No thread ever sleeps
//! and no wall clock is read: every op carries its own virtual timestamp,
//! so a schedule replays bit-for-bit.
//!
//! ## The shadow lease model
//!
//! Lease state is the invariant hardest to eyeball: renewals arrive on
//! two paths (write-path verbs renew [`SessionState::deadline`] directly;
//! read-path verbs stamp an atomic that a later write-path pass folds in)
//! and recovery traffic (reattach, fresh-startup fallback) renews as a
//! side effect. The world therefore re-implements the *correct* lease
//! semantics over the ground truth of delivered messages — each
//! [`ChaosTransport`]'s call log says exactly which requests the server
//! observed, fault-confusion included — and the lease oracle demands the
//! controller agree with the shadow after every op, exactly.

use std::collections::BTreeMap;
use std::sync::Arc;

use harmony_client::{HarmonyClient, UpdateDelivery};
use harmony_core::{
    Controller, ControllerConfig, DecisionRecord, HarmonyEvent, InstanceId, JournalEntry,
    LeaseConfig,
};
use harmony_proto::{
    CallRecord, ChaosTransport, LocalTransport, Request, Response, SharedController,
};
use harmony_resources::Cluster;
use harmony_rng::fnv::{Fnv64, FNV_OFFSET};
use harmony_rsl::listings;
use harmony_rsl::schema::{LinkDecl, NodeDecl};
use parking_lot::RwLock;

use crate::oracle::{self, Violation};
use crate::schedule::{Op, OpKind, Schedule, CLIENT_SLOTS, NODE_COUNT};
use crate::shadow::ShadowLeases;
use crate::{PlantedBug, RunReport};

/// The `(app, bundle script)` palette a client slot is pinned to. Public
/// so `harmony-mc` drives the exact sessions a replayed counterexample
/// schedule will re-create.
pub fn palette(slot: usize) -> (&'static str, &'static str) {
    if slot.is_multiple_of(2) {
        ("bag", listings::FIG2B_BAG)
    } else {
        ("simple", listings::FIG2A_SIMPLE)
    }
}

// The observable-sequence fingerprint folds with `harmony_rng::fnv` (the
// field conventions — LE integers, bit-pattern floats, 0xff string
// terminator — originated here and are pinned by that module's tests).

fn fold_str(h: &mut u64, s: &str) {
    let mut f = Fnv64::resume(*h);
    f.write_str(s);
    *h = f.finish();
}

fn fold_entry(h: &mut u64, e: &JournalEntry) {
    let mut f = Fnv64::resume(*h);
    f.write_u64(e.seq);
    f.write_f64(e.time);
    f.write_str(&e.kind.to_string());
    f.write_str(&e.detail);
    *h = f.finish();
}

fn fold_decision(h: &mut u64, d: &DecisionRecord) {
    let mut f = Fnv64::resume(*h);
    f.write_f64(d.time);
    f.write_str(&d.instance.to_string());
    f.write_str(&d.bundle);
    f.write_str(d.from.as_deref().unwrap_or("-"));
    f.write_str(&d.to);
    f.write_f64(d.objective_before);
    f.write_f64(d.objective_after);
    f.write_str(d.cause.as_deref().unwrap_or("-"));
    for &seq in &d.provenance {
        f.write_u64(seq);
    }
    f.write_bytes(&[0xfe]);
    *h = f.finish();
}

/// One client slot: a real client over a chaos transport, plus the
/// bookkeeping the generator's no-op rules rely on.
struct Slot {
    app: &'static str,
    script: &'static str,
    client: Option<HarmonyClient<ChaosTransport<LocalTransport>>>,
    log: Option<harmony_proto::CallLog>,
    /// The bundle was successfully registered for the current client.
    bundled: bool,
    /// Last instance id the server registered for this slot (survives a
    /// crash, so `MarkDisconnected` can name the session the server still
    /// holds).
    instance: Option<InstanceId>,
}

/// The whole simulated stack plus oracles' bookkeeping.
pub struct World {
    ctl: SharedController,
    config: ControllerConfig,
    lease: LeaseConfig,
    planted: PlantedBug,
    slots: Vec<Slot>,
    shadow: ShadowLeases,
    /// Departed nodes and their original declarations, for rejoins.
    evicted: BTreeMap<String, NodeDecl>,
    time_ms: u64,
    cursor: u64,
    decisions_seen: usize,
    fingerprint: u64,
    journal_appended: u64,
    decisions_total: usize,
}

impl std::fmt::Debug for World {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("World")
            .field("time_ms", &self.time_ms)
            .field("shadow", &self.shadow.len())
            .field("fingerprint", &format_args!("{:016x}", self.fingerprint))
            .finish()
    }
}

impl World {
    /// Builds the stack for one run: a fresh controller over an
    /// `NODE_COUNT`-node cluster and `CLIENT_SLOTS` empty client slots.
    pub fn new(config: ControllerConfig, planted: PlantedBug) -> Self {
        let lease = config.lease;
        let ctl = Arc::new(RwLock::new(Self::fresh_controller(&config, planted)));
        let slots = (0..CLIENT_SLOTS as usize)
            .map(|i| {
                let (app, script) = palette(i);
                Slot { app, script, client: None, log: None, bundled: false, instance: None }
            })
            .collect();
        World {
            ctl,
            config,
            lease,
            planted,
            slots,
            shadow: ShadowLeases::new(lease),
            evicted: BTreeMap::new(),
            time_ms: 0,
            cursor: 0,
            decisions_seen: 0,
            fingerprint: FNV_OFFSET,
            journal_appended: 0,
            decisions_total: 0,
        }
    }

    fn fresh_controller(config: &ControllerConfig, planted: PlantedBug) -> Controller {
        let cluster = Cluster::from_rsl(&listings::sp2_cluster(NODE_COUNT as usize))
            .expect("sp2 cluster parses");
        let mut ctl = Controller::new(cluster, config.clone());
        if planted == PlantedBug::ReaperSkipsTouchFold {
            ctl.chaos_set_skip_touch_fold(true);
        }
        ctl
    }

    /// The virtual clock in controller seconds.
    fn now(&self) -> f64 {
        self.time_ms as f64 / 1000.0
    }

    /// Runs a whole schedule: every op, the end-of-run convergence sweep,
    /// and the oracles after each step.
    pub fn run(schedule: &Schedule, planted: PlantedBug) -> RunReport {
        let mut world = World::new(crate::config_for_seed(schedule.seed), planted);
        let mut violation = None;
        let mut executed = 0;
        for (i, op) in schedule.ops.iter().enumerate() {
            if let Err(v) = world.step(i, op) {
                violation = Some(v);
                break;
            }
            executed = i + 1;
        }
        if violation.is_none() {
            if let Err(v) = world.finish(schedule.ops.len()) {
                violation = Some(v);
            }
        }
        RunReport {
            seed: schedule.seed,
            planted,
            fingerprint: world.fingerprint,
            ops_executed: executed,
            ops_total: schedule.ops.len(),
            journal_appended: world.journal_appended,
            decisions: world.decisions_total,
            violation,
        }
    }

    /// Executes one op and re-checks every oracle.
    fn step(&mut self, i: usize, op: &Op) -> Result<(), Violation> {
        self.time_ms = self.time_ms.max(op.at_ms);
        self.ctl.write().set_time(self.now());
        self.exec(i, &op.kind)?;
        self.post_op(i, op.kind.client())
    }

    /// The end-of-run convergence sweep: long after the last op, one reap
    /// must retire every remaining session and return the cluster to
    /// completely free.
    fn finish(&mut self, n_ops: usize) -> Result<(), Violation> {
        self.time_ms += (self.lease.duration * 1000.0) as u64 * 2 + 1000;
        self.ctl.write().set_time(self.now());
        self.exec_reap(n_ops)?;
        self.post_op(n_ops, None)?;
        let ctl = self.ctl.read();
        if !ctl.instances().is_empty() {
            return Err(Violation::new(
                n_ops,
                "convergence",
                format!("instances survive the final reap: {:?}", ctl.instances()),
            ));
        }
        if ctl.cluster().total_tasks() != 0 {
            return Err(Violation::new(
                n_ops,
                "convergence",
                format!(
                    "{} tasks still allocated after every session retired",
                    ctl.cluster().total_tasks()
                ),
            ));
        }
        let free = ctl.cluster().total_free_memory();
        let total = ctl.cluster().total_memory();
        if (free - total).abs() > 1e-6 {
            return Err(Violation::new(
                n_ops,
                "convergence",
                format!("memory not fully released: {free} of {total} MB free"),
            ));
        }
        Ok(())
    }

    // ------------------------------------------------------------------
    // Op execution.
    // ------------------------------------------------------------------

    fn exec(&mut self, i: usize, kind: &OpKind) -> Result<(), Violation> {
        match kind {
            OpKind::Start { client } => self.exec_start(*client as usize),
            OpKind::AddBundle { client } => {
                let slot = &mut self.slots[*client as usize];
                if !slot.bundled {
                    if let Some(cl) = slot.client.as_mut() {
                        if cl.bundle_setup(slot.script).is_ok() {
                            slot.bundled = true;
                        }
                    }
                }
                Ok(())
            }
            OpKind::Poll { client } => {
                if let Some(cl) = self.slots[*client as usize].client.as_mut() {
                    let _ = cl.poll();
                }
                Ok(())
            }
            OpKind::Heartbeat { client } => {
                if let Some(cl) = self.slots[*client as usize].client.as_mut() {
                    let _ = cl.heartbeat();
                }
                Ok(())
            }
            OpKind::Metric { client, millis } => {
                let now = self.now();
                if let Some(cl) = self.slots[*client as usize].client.as_mut() {
                    let _ = cl.report_metric("response_time", now, f64::from(*millis) / 1000.0);
                }
                Ok(())
            }
            OpKind::FaultedPoll { client, fault } => {
                if let Some(cl) = self.slots[*client as usize].client.as_mut() {
                    cl.transport_mut().inject((*fault).into());
                    let _ = cl.poll();
                }
                Ok(())
            }
            OpKind::End { client } => {
                let slot = &mut self.slots[*client as usize];
                if let Some(cl) = slot.client.take() {
                    let _ = cl.end();
                    slot.bundled = false;
                }
                Ok(())
            }
            OpKind::Crash { client } => {
                let slot = &mut self.slots[*client as usize];
                if let Some(mut cl) = slot.client.take() {
                    // Kill the transport first so not even the drop-time
                    // best-effort `end` escapes — a SIGKILL, not a close.
                    cl.transport_mut().kill();
                    drop(cl);
                    slot.bundled = false;
                }
                Ok(())
            }
            OpKind::MarkDisconnected { client } => {
                if let Some(id) = self.slots[*client as usize].instance.clone() {
                    self.ctl.write().mark_disconnected(&id);
                    let now = self.now();
                    self.shadow.mark_disconnected(&id, now);
                }
                Ok(())
            }
            OpKind::Reap => self.exec_reap(i),
            OpKind::Tick => {
                let now = self.now();
                self.ctl
                    .write()
                    .service_scheduler(now)
                    .map(|_| ())
                    .map_err(|e| Violation::new(i, "controller-error", e.to_string()))
            }
            OpKind::Flush => self
                .ctl
                .write()
                .flush_scheduler()
                .map(|_| ())
                .map_err(|e| Violation::new(i, "controller-error", e.to_string())),
            OpKind::Restart => self.exec_restart(),
            OpKind::NodeLeft { node } => self.exec_node_left(i, *node),
            OpKind::NodeRejoin { node } => self.exec_node_rejoin(i, *node),
        }
    }

    fn exec_start(&mut self, idx: usize) -> Result<(), Violation> {
        let slot = &mut self.slots[idx];
        if slot.client.is_some() {
            return Ok(());
        }
        let transport = ChaosTransport::new(LocalTransport::new(Arc::clone(&self.ctl)));
        let log = transport.log();
        slot.log = Some(log);
        if let Ok(cl) = HarmonyClient::startup(transport, slot.app, UpdateDelivery::Polling) {
            slot.client = Some(cl);
        }
        slot.bundled = false;
        Ok(())
    }

    fn exec_restart(&mut self) -> Result<(), Violation> {
        // Break every live connection the way a dying server would; the
        // clients' next calls walk the reconnect → reattach → fresh
        // startup recovery path against the new controller.
        for slot in &mut self.slots {
            if let Some(cl) = slot.client.as_mut() {
                cl.transport_mut().break_connection();
            }
        }
        let fresh = Self::fresh_controller(&self.config, self.planted);
        *self.ctl.write() = fresh;
        self.ctl.write().set_time(self.now());
        // All server-side state is gone: shadow sessions, journal cursor,
        // decision bookkeeping, and cluster membership all start over.
        self.shadow.clear();
        self.evicted.clear();
        self.cursor = 0;
        self.decisions_seen = 0;
        fold_str(&mut self.fingerprint, "server-restart");
        Ok(())
    }

    fn exec_node_left(&mut self, i: usize, node: u8) -> Result<(), Violation> {
        let name = format!("node{node:02}");
        let decl = {
            let ctl = self.ctl.read();
            // Keep at least four nodes so the fixed replicate-4 bundle in
            // the palette stays placeable somewhere.
            if ctl.cluster().len() <= 4 {
                return Ok(());
            }
            match ctl.cluster().node(&name) {
                Some(state) => state.decl.clone(),
                None => return Ok(()),
            }
        };
        self.ctl
            .write()
            .handle_event(HarmonyEvent::NodeLeft { name: name.clone() })
            .map_err(|e| Violation::new(i, "controller-error", e.to_string()))?;
        self.evicted.insert(name, decl);
        Ok(())
    }

    fn exec_node_rejoin(&mut self, i: usize, node: u8) -> Result<(), Violation> {
        let name = format!("node{node:02}");
        let Some(decl) = self.evicted.remove(&name) else { return Ok(()) };
        self.ctl
            .write()
            .handle_event(HarmonyEvent::NodeJoined(decl))
            .map_err(|e| Violation::new(i, "controller-error", e.to_string()))?;
        // Restore the switch mesh: one link to every live peer (departure
        // removed them). Duplicate/unknown-endpoint errors are impossible
        // here, but stay tolerant — link wiring is not what this op tests.
        let peers: Vec<String> = self
            .ctl
            .read()
            .cluster()
            .nodes()
            .map(|n| n.decl.name.clone())
            .filter(|n| *n != name)
            .collect();
        for peer in peers {
            let _ = self.ctl.write().handle_event(HarmonyEvent::LinkJoined(LinkDecl::new(
                peer,
                name.clone(),
                320.0,
            )));
        }
        Ok(())
    }

    fn exec_reap(&mut self, i: usize) -> Result<(), Violation> {
        let now = self.now();
        let retire_before = self.ctl.read().retirements().len();
        self.ctl
            .write()
            .reap_expired(now)
            .map_err(|e| Violation::new(i, "controller-error", e.to_string()))?;
        let expected = self.shadow.expected_reap(now);
        let ctl = self.ctl.read();
        oracle::check_reap(&ctl.retirements()[retire_before..], &expected, now, i)
    }

    // ------------------------------------------------------------------
    // Shadow transitions (driven by the ground-truth call logs).
    // ------------------------------------------------------------------

    /// Applies one delivered request's lease effect, mirroring the
    /// server's dispatch exactly (renewal ordering included: `bundle`
    /// renews before the bundle is even parsed, `metric` touches before
    /// the finite-sample check).
    fn apply_record(&mut self, slot_idx: usize, rec: &CallRecord) {
        if !rec.delivered {
            return; // the server never saw it
        }
        let now = self.now();
        match (&rec.request, &rec.response) {
            (Request::Startup { .. }, Some(Response::Registered { app, id })) => {
                let id = InstanceId::new(app.clone(), *id);
                self.shadow.insert_startup(id.clone(), now);
                self.slots[slot_idx].instance = Some(id);
            }
            (Request::Reattach { app, id }, Some(Response::Registered { .. })) => {
                let id = InstanceId::new(app.clone(), *id);
                self.shadow.renew(&id, now);
                self.slots[slot_idx].instance = Some(id);
            }
            (Request::Bundle { app, id, .. }, Some(_)) => {
                // Renewed whether or not the bundle was accepted.
                self.shadow.renew(&InstanceId::new(app.clone(), *id), now);
            }
            (Request::Poll { app, id }, _) | (Request::Heartbeat { app, id }, _) => {
                self.shadow.touch(&InstanceId::new(app.clone(), *id), now);
            }
            (Request::Metric { name, .. }, _) => {
                let mut parts = name.splitn(3, '.');
                if let (Some(app), Some(id), Some(_)) = (parts.next(), parts.next(), parts.next()) {
                    if let Ok(id) = id.parse::<u64>() {
                        self.shadow.touch(&InstanceId::new(app, id), now);
                    }
                }
            }
            (Request::End { app, id }, Some(Response::Ok)) => {
                self.shadow.remove(&InstanceId::new(app.clone(), *id));
            }
            _ => {}
        }
    }

    // ------------------------------------------------------------------
    // Per-op bookkeeping and oracles.
    // ------------------------------------------------------------------

    fn post_op(&mut self, i: usize, client: Option<u8>) -> Result<(), Violation> {
        // Ground truth first: fold the op's delivered traffic into the
        // shadow model before comparing anything.
        if let Some(c) = client {
            let records: Vec<CallRecord> = match &self.slots[c as usize].log {
                Some(log) => log.lock().drain(..).collect(),
                None => Vec::new(),
            };
            for rec in &records {
                self.apply_record(c as usize, rec);
            }
        }

        // Journal: contract check, then fold the new entries.
        let (tail, appended) = {
            let ctl = self.ctl.read();
            (ctl.journal_tail(self.cursor, usize::MAX), ctl.journal_seq())
        };
        oracle::check_journal_tail(&tail, self.cursor, appended, i)?;
        for e in &tail.entries {
            fold_entry(&mut self.fingerprint, e);
        }
        self.cursor = tail.next_cursor;
        self.journal_appended = self.journal_appended.max(appended);

        // Decisions: provenance check, then fold.
        {
            let ctl = self.ctl.read();
            let new = &ctl.decisions()[self.decisions_seen.min(ctl.decisions().len())..];
            oracle::check_provenance(new, appended, i)?;
            for d in new {
                fold_decision(&mut self.fingerprint, d);
            }
            self.decisions_total += new.len();
            self.decisions_seen = ctl.decisions().len();
        }

        // Structural invariants.
        {
            let ctl = self.ctl.read();
            oracle::check_capacity(&ctl, i)?;
            oracle::check_sessions(&ctl, i)?;
        }
        oracle::check_lease_agreement(&self.ctl.read(), &self.shadow, i)
    }
}
