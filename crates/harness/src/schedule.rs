//! The op model and the seeded schedule generator.
//!
//! A [`Schedule`] is a totally ordered list of [`Op`]s at absolute
//! virtual-clock timestamps (integer milliseconds, so serialization is
//! exact). Everything the harness does to the stack — client calls, fault
//! injections, reaper sweeps, scheduler ticks, server restarts, cluster
//! membership churn — is an op; the schedule plus the seed-derived
//! controller configuration fully determine a run, which is what makes
//! failing seeds replayable and shrinkable.

use harmony_rng::SeededRng;
use serde::{Deserialize, Serialize};

/// Client slots the generator draws from. Each slot is pinned to one
/// `(app, script)` palette entry, so a `Start` after an `End`/`Crash`
/// re-registers the same application.
pub const CLIENT_SLOTS: u8 = 3;

/// Nodes in the simulated cluster (`sp2_cluster(NODE_COUNT)`).
pub const NODE_COUNT: u8 = 8;

/// Sub-stream domains for the generator's independent draws (arbitrary
/// distinct tags; see `harmony_rng::sub_seed`).
const DOM_TIME: u64 = 0x4841_524e_5f54_494d; // "HARN_TIM"
const DOM_KIND: u64 = 0x4841_524e_5f4b_4e44; // "HARN_KND"
const DOM_PARAM: u64 = 0x4841_524e_5f50_524d; // "HARN_PRM"

/// A scripted transport fault (mirror of `harmony_proto::Fault`, with
/// serde so schedules round-trip through artifacts).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
#[serde(rename_all = "kebab-case")]
pub enum FaultKind {
    /// Request lost before the server; connection breaks.
    DropRequest,
    /// Request applied, response lost; connection breaks.
    DropResponse,
    /// Request delivered twice back-to-back.
    Duplicate,
}

impl From<FaultKind> for harmony_proto::Fault {
    fn from(f: FaultKind) -> Self {
        match f {
            FaultKind::DropRequest => harmony_proto::Fault::DropRequest,
            FaultKind::DropResponse => harmony_proto::Fault::DropResponse,
            FaultKind::Duplicate => harmony_proto::Fault::Duplicate,
        }
    }
}

/// One step of a schedule.
///
/// Ops targeting a client slot with no live client are no-ops (likewise
/// membership ops naming an absent node), which keeps every subsequence
/// of a valid schedule valid — the property the shrinker relies on.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
#[serde(rename_all = "kebab-case", tag = "op")]
pub enum OpKind {
    /// `harmony_startup` on a slot (no-op if the slot is already live).
    Start {
        /// Client slot index.
        client: u8,
    },
    /// `harmony_bundle_setup` of the slot's palette script (once per
    /// registration; later attempts are no-ops).
    AddBundle {
        /// Client slot index.
        client: u8,
    },
    /// One poll, applying buffered variable updates.
    Poll {
        /// Client slot index.
        client: u8,
    },
    /// Lease-renewal heartbeat.
    Heartbeat {
        /// Client slot index.
        client: u8,
    },
    /// A `response_time` metric report.
    Metric {
        /// Client slot index.
        client: u8,
        /// Reported response time, milliseconds (the sample value; the
        /// controller clock is the op's `at_ms`).
        millis: u32,
    },
    /// A poll with a scripted transport fault queued first. Faults ride
    /// on the idempotent read path only: a dropped-response `bundle`
    /// would double-register on retry by design, which is a client
    /// limitation the harness documents rather than a server bug.
    FaultedPoll {
        /// Client slot index.
        client: u8,
        /// The fault to queue.
        fault: FaultKind,
    },
    /// Clean shutdown: `harmony_end`.
    End {
        /// Client slot index.
        client: u8,
    },
    /// Hard crash: the transport dies (no `End`, not even the drop-time
    /// best-effort one), leaving cleanup to the lease reaper.
    Crash {
        /// Client slot index.
        client: u8,
    },
    /// The server observes the slot's connection drop (what a serving
    /// thread's exit path does), capping the lease to the disconnect
    /// grace.
    MarkDisconnected {
        /// Client slot index.
        client: u8,
    },
    /// A lease-reaper sweep at the op's time, checked against the
    /// harness's shadow lease model.
    Reap,
    /// A coalescing-scheduler heartbeat (`service_scheduler`).
    Tick,
    /// Forces any pending coalesced re-evaluation (`flush_scheduler`).
    Flush,
    /// Server restart: a fresh controller behind the same shared handle,
    /// every live connection broken. Clients recover through the
    /// reattach-then-fresh-startup path on their next call.
    Restart,
    /// A cluster node leaves (skipped when it is already gone or fewer
    /// than three nodes would remain).
    NodeLeft {
        /// Node index into the initial cluster.
        node: u8,
    },
    /// A previously departed node rejoins with its original declaration.
    NodeRejoin {
        /// Node index into the initial cluster.
        node: u8,
    },
}

impl OpKind {
    /// The client slot this op targets, if any.
    pub fn client(&self) -> Option<u8> {
        match self {
            OpKind::Start { client }
            | OpKind::AddBundle { client }
            | OpKind::Poll { client }
            | OpKind::Heartbeat { client }
            | OpKind::Metric { client, .. }
            | OpKind::FaultedPoll { client, .. }
            | OpKind::End { client }
            | OpKind::Crash { client }
            | OpKind::MarkDisconnected { client } => Some(*client),
            _ => None,
        }
    }
}

/// One schedule step: an op at an absolute virtual time.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Op {
    /// Virtual-clock timestamp, milliseconds since run start. Absolute,
    /// so removing earlier ops (shrinking) does not shift later ones.
    pub at_ms: u64,
    /// What happens.
    pub kind: OpKind,
}

/// A complete, replayable schedule.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Schedule {
    /// The seed the schedule (and the controller configuration) was
    /// derived from.
    pub seed: u64,
    /// The steps, in time order.
    pub ops: Vec<Op>,
}

/// Generates the schedule for a seed: exponential inter-arrivals with
/// occasional long clock jumps (so leases actually expire mid-run), and
/// weighted op kinds biased toward client traffic with a steady trickle
/// of faults, sweeps, and membership churn.
pub fn generate(seed: u64) -> Schedule {
    let mut times = SeededRng::stream(seed, DOM_TIME, 0);
    let mut kinds = SeededRng::stream(seed, DOM_KIND, 0);
    let mut params = SeededRng::stream(seed, DOM_PARAM, 0);

    let n_ops = 90 + kinds.uniform_int(0, 60) as usize;
    let mut ops = Vec::with_capacity(n_ops);
    let mut at_ms: u64 = 0;
    for _ in 0..n_ops {
        at_ms += 1 + times.exponential(700.0).min(20_000.0) as u64;
        if times.chance(0.04) {
            // A quiet stretch longer than the lease duration: the next
            // reap sees genuinely expired sessions.
            at_ms += 60_000;
        }
        ops.push(Op { at_ms, kind: pick_kind(&mut kinds, &mut params) });
    }
    Schedule { seed, ops }
}

/// Op-kind weights, in the order matched by `pick_kind`.
const WEIGHTS: [u32; 15] = [
    10, // Start
    10, // AddBundle
    14, // Poll
    8,  // Heartbeat
    8,  // Metric
    6,  // FaultedPoll
    3,  // End
    3,  // Crash
    3,  // MarkDisconnected
    9,  // Reap
    5,  // Tick
    4,  // Flush
    1,  // Restart
    2,  // NodeLeft
    2,  // NodeRejoin
];

fn pick_kind(kinds: &mut SeededRng, params: &mut SeededRng) -> OpKind {
    let client = params.uniform_int(0, i64::from(CLIENT_SLOTS) - 1) as u8;
    let node = params.uniform_int(0, i64::from(NODE_COUNT) - 1) as u8;
    match kinds.weighted(&WEIGHTS) {
        0 => OpKind::Start { client },
        1 => OpKind::AddBundle { client },
        2 => OpKind::Poll { client },
        3 => OpKind::Heartbeat { client },
        4 => OpKind::Metric { client, millis: params.uniform_int(1, 5_000) as u32 },
        5 => {
            let fault = match params.uniform_int(0, 2) {
                0 => FaultKind::DropRequest,
                1 => FaultKind::DropResponse,
                _ => FaultKind::Duplicate,
            };
            OpKind::FaultedPoll { client, fault }
        }
        6 => OpKind::End { client },
        7 => OpKind::Crash { client },
        8 => OpKind::MarkDisconnected { client },
        9 => OpKind::Reap,
        10 => OpKind::Tick,
        11 => OpKind::Flush,
        12 => OpKind::Restart,
        13 => OpKind::NodeLeft { node },
        _ => OpKind::NodeRejoin { node },
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic() {
        assert_eq!(generate(7), generate(7));
        assert_ne!(generate(7), generate(8));
    }

    #[test]
    fn timestamps_are_strictly_increasing() {
        for seed in 0..20 {
            let s = generate(seed);
            assert!(s.ops.windows(2).all(|w| w[0].at_ms < w[1].at_ms), "seed {seed}");
        }
    }

    #[test]
    fn every_kind_appears_across_a_small_sweep() {
        let mut seen = [false; 15];
        for seed in 0..40 {
            for op in generate(seed).ops {
                let i = match op.kind {
                    OpKind::Start { .. } => 0,
                    OpKind::AddBundle { .. } => 1,
                    OpKind::Poll { .. } => 2,
                    OpKind::Heartbeat { .. } => 3,
                    OpKind::Metric { .. } => 4,
                    OpKind::FaultedPoll { .. } => 5,
                    OpKind::End { .. } => 6,
                    OpKind::Crash { .. } => 7,
                    OpKind::MarkDisconnected { .. } => 8,
                    OpKind::Reap => 9,
                    OpKind::Tick => 10,
                    OpKind::Flush => 11,
                    OpKind::Restart => 12,
                    OpKind::NodeLeft { .. } => 13,
                    OpKind::NodeRejoin { .. } => 14,
                };
                seen[i] = true;
            }
        }
        assert!(seen.iter().all(|&s| s), "kinds seen: {seen:?}");
    }

    #[test]
    fn schedules_round_trip_through_json() {
        let s = generate(11);
        let json = serde_json::to_string(&s).unwrap();
        let back: Schedule = serde_json::from_str(&json).unwrap();
        assert_eq!(s, back);
    }
}
