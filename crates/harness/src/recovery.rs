//! Crash-recovery scenarios on the virtual clock.
//!
//! The same seeded schedules the [`World`](crate::World) runs, but driven
//! against a **durable** controller (a [`StateStore`] under a scratch
//! directory): the run is cut short at an arbitrary op — transports
//! killed mid-burst, no shutdown checkpoint, exactly what `kill -9` at a
//! bad moment leaves behind — and recovery must rebuild a controller
//! whose persisted image is bit-identical to the pre-crash one (modulo
//! per-decision wall timings, which no two runs share).
//!
//! The fingerprint here is deliberately the *whole* [`PersistedState`] —
//! sessions, lease deadlines, journal cursor, pending coalescing windows,
//! applied configurations — not just the journal/decision stream, so a
//! recovery that loses any control-plane field fails loudly.

use std::path::{Path, PathBuf};
use std::sync::Arc;

use harmony_client::{HarmonyClient, UpdateDelivery};
use harmony_core::{Controller, CoreError, InstanceId, PersistedState, RecoveryInfo, StateStore};
use harmony_proto::{ChaosTransport, LocalTransport, SharedController};
use harmony_rsl::schema::NodeDecl;
use parking_lot::RwLock;

use crate::config_for_seed;
use crate::schedule::{generate, OpKind, CLIENT_SLOTS};

/// FNV-1a 64 over the canonical JSON of the persisted image, with two
/// ephemeral fields normalized out: per-decision wall timings (no two
/// runs share them) and the controller clock (`set_time` is deliberately
/// not WAL-logged — every event carries its own timestamp and a restarted
/// daemon re-anchors to wall time — so a `set_time` followed by no
/// loggable event is legitimately lost to a crash).
///
/// This is [`PersistedState::recovery_fingerprint`] — the normalization
/// and fold now live in `harmony-core`/`harmony-rng` so `harmony-mc`'s
/// crash-point enumeration compares the identical fingerprint.
pub fn state_fingerprint(state: PersistedState) -> u64 {
    state.recovery_fingerprint()
}

/// What the crashed run looked like the instant before it died.
#[derive(Debug, Clone, PartialEq)]
pub struct CrashedRun {
    /// The seed behind the schedule and configuration.
    pub seed: u64,
    /// Ops executed before the crash.
    pub crash_at: usize,
    /// Ops the full schedule holds.
    pub ops_total: usize,
    /// Fingerprint of the pre-crash persisted image.
    pub fingerprint: u64,
    /// WAL appends logged over the run (current generation only —
    /// checkpoints rotate the counter along with the file).
    pub wal_records: u64,
    /// Sessions live at the crash.
    pub live_sessions: usize,
    /// Pending coalesced re-evaluations at the crash.
    pub pending_decisions: usize,
}

/// What recovery rebuilt.
#[derive(Debug, Clone, PartialEq)]
pub struct RecoveredRun {
    /// Fingerprint of the recovered persisted image.
    pub fingerprint: u64,
    /// The store's recovery report.
    pub info: RecoveryInfo,
    /// Sessions live after recovery.
    pub live_sessions: usize,
    /// Pending coalesced re-evaluations after recovery.
    pub pending_decisions: usize,
}

struct Slot {
    app: &'static str,
    script: &'static str,
    client: Option<HarmonyClient<ChaosTransport<LocalTransport>>>,
    bundled: bool,
    instance: Option<InstanceId>,
}

/// Runs the first `crash_at` ops of seed's schedule against a durable
/// controller in `dir`, then dies hard: every live transport is killed
/// (so not even drop-time best-effort `end`s escape), the WAL is synced
/// (the group-commit flusher's interval is bounded, so a real crash loses
/// at most that much — the tests pin the boundary exactly), and nothing
/// is checkpointed. `crash_at = None` cuts at the schedule midpoint;
/// `snapshot_every > 0` enables automatic compaction, so recovery
/// exercises snapshot-plus-tail replay rather than pure WAL replay.
pub fn crash_run(
    seed: u64,
    crash_at: Option<usize>,
    snapshot_every: u64,
    dir: &Path,
) -> CrashedRun {
    let schedule = generate(seed);
    let cut = crash_at.unwrap_or(schedule.ops.len() / 2).min(schedule.ops.len());

    let fresh = move || {
        let cluster = harmony_resources::Cluster::from_rsl(&harmony_rsl::listings::sp2_cluster(
            usize::from(crate::schedule::NODE_COUNT),
        ))
        .expect("sp2 cluster parses");
        Controller::new(cluster, config_for_seed(seed))
    };
    let (ctl, mut store) = StateStore::open(dir, fresh).expect("open scratch state dir");
    store.set_snapshot_every(snapshot_every);
    let ctl: SharedController = Arc::new(RwLock::new(ctl));

    let mut slots: Vec<Slot> = (0..usize::from(CLIENT_SLOTS))
        .map(|i| {
            let (app, script) = if i.is_multiple_of(2) {
                ("bag", harmony_rsl::listings::FIG2B_BAG)
            } else {
                ("simple", harmony_rsl::listings::FIG2A_SIMPLE)
            };
            Slot { app, script, client: None, bundled: false, instance: None }
        })
        .collect();
    let mut evicted: std::collections::BTreeMap<String, NodeDecl> = Default::default();

    for op in &schedule.ops[..cut] {
        let now = op.at_ms as f64 / 1000.0;
        ctl.write().set_time(now);
        match &op.kind {
            OpKind::Start { client } => {
                let slot = &mut slots[usize::from(*client)];
                if slot.client.is_none() {
                    let t = ChaosTransport::new(LocalTransport::new(Arc::clone(&ctl)));
                    if let Ok(cl) = HarmonyClient::startup(t, slot.app, UpdateDelivery::Polling) {
                        slot.instance = Some(InstanceId::new(cl.app(), cl.instance_id()));
                        slot.client = Some(cl);
                    }
                    slot.bundled = false;
                }
            }
            OpKind::AddBundle { client } => {
                let slot = &mut slots[usize::from(*client)];
                if !slot.bundled {
                    if let Some(cl) = slot.client.as_mut() {
                        if cl.bundle_setup(slot.script).is_ok() {
                            slot.bundled = true;
                        }
                    }
                }
            }
            OpKind::Poll { client } => {
                if let Some(cl) = slots[usize::from(*client)].client.as_mut() {
                    let _ = cl.poll();
                }
            }
            OpKind::Heartbeat { client } => {
                if let Some(cl) = slots[usize::from(*client)].client.as_mut() {
                    let _ = cl.heartbeat();
                }
            }
            OpKind::Metric { client, millis } => {
                if let Some(cl) = slots[usize::from(*client)].client.as_mut() {
                    let _ = cl.report_metric("response_time", now, f64::from(*millis) / 1000.0);
                }
            }
            OpKind::FaultedPoll { client, fault } => {
                if let Some(cl) = slots[usize::from(*client)].client.as_mut() {
                    cl.transport_mut().inject((*fault).into());
                    let _ = cl.poll();
                }
            }
            OpKind::End { client } => {
                let slot = &mut slots[usize::from(*client)];
                if let Some(cl) = slot.client.take() {
                    let _ = cl.end();
                    slot.bundled = false;
                }
            }
            OpKind::Crash { client } => {
                let slot = &mut slots[usize::from(*client)];
                if let Some(mut cl) = slot.client.take() {
                    cl.transport_mut().kill();
                    drop(cl);
                    slot.bundled = false;
                }
            }
            OpKind::MarkDisconnected { client } => {
                if let Some(id) = slots[usize::from(*client)].instance.clone() {
                    ctl.write().mark_disconnected(&id);
                }
            }
            OpKind::Reap => {
                let _ = ctl.write().reap_expired(now);
            }
            OpKind::Tick => {
                let _ = ctl.write().service_scheduler(now);
            }
            // A durable run has exactly one server death — the crash this
            // driver is about — so the schedule's soft-restart op is a
            // no-op here (subsequences stay valid either way).
            OpKind::Restart => {}
            OpKind::Flush => {
                let _ = ctl.write().flush_scheduler();
            }
            OpKind::NodeLeft { node } => {
                let name = format!("node{node:02}");
                let decl = {
                    let g = ctl.read();
                    if g.cluster().len() <= 4 {
                        None
                    } else {
                        g.cluster().node(&name).map(|state| state.decl.clone())
                    }
                };
                if let Some(decl) = decl {
                    if ctl
                        .write()
                        .handle_event(harmony_core::HarmonyEvent::NodeLeft { name: name.clone() })
                        .is_ok()
                    {
                        evicted.insert(name, decl);
                    }
                }
            }
            OpKind::NodeRejoin { node } => {
                let name = format!("node{node:02}");
                if let Some(decl) = evicted.remove(&name) {
                    let _ = ctl.write().handle_event(harmony_core::HarmonyEvent::NodeJoined(decl));
                }
            }
        }
        // The production daemon checkpoints on its periodic pass; one
        // check per op is the virtual-clock equivalent.
        let mut guard = ctl.write();
        let _ = store.maybe_checkpoint(&mut guard);
    }

    // The crash: transports die first, so the clients' drop-time
    // best-effort `end`s hit dead sockets instead of mutating the state
    // we are about to fingerprint.
    for slot in &mut slots {
        if let Some(mut cl) = slot.client.take() {
            cl.transport_mut().kill();
            drop(cl);
        }
    }
    let guard = ctl.read();
    let run = CrashedRun {
        seed,
        crash_at: cut,
        ops_total: schedule.ops.len(),
        fingerprint: state_fingerprint(guard.persisted_state()),
        wal_records: guard.metrics().counter("controller.persistence.appends"),
        live_sessions: guard.sessions().len(),
        pending_decisions: guard.pending_decisions(),
    };
    drop(guard);
    store.sync().expect("sync wal before dying");
    run
}

/// Reopens `dir` and reports what recovery rebuilt. Fails (rather than
/// silently starting fresh) when the directory holds no trustworthy
/// state.
///
/// # Errors
///
/// [`CoreError::Persistence`] exactly when [`StateStore::open`] refuses:
/// corrupted non-tail WAL records, no loadable snapshot, unreadable
/// directory.
pub fn recover(dir: &Path) -> Result<RecoveredRun, CoreError> {
    let (ctl, store) =
        StateStore::open(dir, || panic!("recovery must find prior state, not start fresh"))?;
    drop(store);
    Ok(RecoveredRun {
        fingerprint: state_fingerprint(ctl.persisted_state()),
        info: ctl.recovery_info().expect("state store sets recovery info"),
        live_sessions: ctl.sessions().len(),
        pending_decisions: ctl.pending_decisions(),
    })
}

/// The newest-generation WAL file in `dir` — the one recovery will
/// replay, and the one the corruption tests mutilate.
pub fn newest_wal(dir: &Path) -> Option<PathBuf> {
    let mut wals: Vec<PathBuf> = std::fs::read_dir(dir)
        .ok()?
        .filter_map(|e| e.ok())
        .map(|e| e.path())
        .filter(|p| p.extension().is_some_and(|x| x == "wal"))
        .collect();
    wals.sort();
    wals.pop()
}
