//! Invariant oracles checked after every schedule step.
//!
//! Each oracle recomputes an invariant from first principles and compares
//! it against the controller's own bookkeeping; a mismatch is a
//! [`Violation`] that fails the run at the op where it first appeared.

use std::collections::BTreeMap;

use harmony_core::{
    Controller, DecisionRecord, InstanceId, JournalTail, RetireReason, RetirementRecord,
};

use crate::shadow::ShadowLeases;

/// Tolerance for recomputed floating-point resource sums (memory,
/// seconds). Lease deadlines are compared exactly: the shadow model
/// mirrors the controller's arithmetic operation-for-operation.
const EPS: f64 = 1e-6;

/// One invariant violation, anchored to the op that exposed it.
#[derive(Debug, Clone, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct Violation {
    /// Index of the schedule op after which the oracle failed (usize::MAX
    /// for the end-of-run convergence check).
    pub op_index: usize,
    /// Which oracle failed.
    pub oracle: String,
    /// What it saw.
    pub detail: String,
}

impl Violation {
    /// Builds a violation (public so `harmony-mc` reports through the
    /// same type its artifacts serialize).
    pub fn new(op_index: usize, oracle: &str, detail: String) -> Self {
        Violation { op_index, oracle: oracle.to_string(), detail }
    }
}

impl std::fmt::Display for Violation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "op {}: [{}] {}", self.op_index, self.oracle, self.detail)
    }
}

/// Per-node usage recomputed from every currently applied configuration.
#[derive(Debug, Default, Clone, PartialEq)]
struct NodeUsage {
    tasks: u32,
    memory: f64,
    seconds: f64,
    exclusive: u32,
}

/// Capacity and exclusivity: the cluster's live counters must equal the
/// sums over all committed allocations, nothing may be overdrawn, and an
/// exclusively held node must run only its exclusive bindings.
pub fn check_capacity(ctl: &Controller, op_index: usize) -> Result<(), Violation> {
    let mut usage: BTreeMap<&str, NodeUsage> = BTreeMap::new();
    for id in ctl.instances() {
        let Some(app) = ctl.app(&id) else {
            return Err(Violation::new(
                op_index,
                "capacity",
                format!("instance {id} listed but has no app state"),
            ));
        };
        for bundle in &app.bundles {
            let Some(cfg) = &bundle.current else { continue };
            for n in &cfg.alloc.nodes {
                let u = usage.entry(n.node.as_str()).or_default();
                u.tasks += 1;
                u.memory += n.memory;
                u.seconds += n.seconds;
                if n.exclusive {
                    u.exclusive += 1;
                }
            }
        }
    }
    for node in ctl.cluster().nodes() {
        let name = node.decl.name.as_str();
        let u = usage.remove(name).unwrap_or_default();
        if node.tasks != u.tasks {
            return Err(Violation::new(
                op_index,
                "capacity",
                format!(
                    "node {name}: cluster counts {} tasks, allocations sum {}",
                    node.tasks, u.tasks
                ),
            ));
        }
        let used = node.decl.memory - node.free_memory;
        if (used - u.memory).abs() > EPS {
            return Err(Violation::new(
                op_index,
                "capacity",
                format!("node {name}: cluster has {used} MB used, allocations sum {}", u.memory),
            ));
        }
        if node.free_memory < -EPS {
            return Err(Violation::new(
                op_index,
                "capacity",
                format!("node {name}: free memory overdrawn ({})", node.free_memory),
            ));
        }
        if (node.assigned_seconds - u.seconds).abs() > EPS {
            return Err(Violation::new(
                op_index,
                "capacity",
                format!(
                    "node {name}: cluster has {} assigned seconds, allocations sum {}",
                    node.assigned_seconds, u.seconds
                ),
            ));
        }
        if node.exclusive != u.exclusive {
            return Err(Violation::new(
                op_index,
                "exclusivity",
                format!(
                    "node {name}: cluster counts {} exclusive holds, allocations sum {}",
                    node.exclusive, u.exclusive
                ),
            ));
        }
        if u.exclusive > 0 && u.tasks != u.exclusive {
            return Err(Violation::new(
                op_index,
                "exclusivity",
                format!(
                    "node {name}: {} exclusive bindings share the node with {} other tasks",
                    u.exclusive,
                    u.tasks - u.exclusive
                ),
            ));
        }
    }
    if let Some((name, u)) = usage.into_iter().next() {
        return Err(Violation::new(
            op_index,
            "capacity",
            format!("allocation references node {name} ({} tasks) not in the cluster", u.tasks),
        ));
    }
    Ok(())
}

/// Session bookkeeping: every registered instance has exactly one lease
/// session and vice versa.
pub fn check_sessions(ctl: &Controller, op_index: usize) -> Result<(), Violation> {
    let mut instances = ctl.instances();
    instances.sort();
    let sessions: Vec<_> = ctl.sessions().keys().cloned().collect();
    if instances != sessions {
        return Err(Violation::new(
            op_index,
            "sessions",
            format!("instances {instances:?} != lease sessions {sessions:?}"),
        ));
    }
    Ok(())
}

/// The continuous lease oracle: the controller's session table must
/// equal the shadow model exactly — same instances, bit-identical stored
/// deadlines, same disconnect marks, and the same effective deadline once
/// pending read-path touches are accounted for.
pub fn check_lease_agreement(
    ctl: &Controller,
    shadow: &ShadowLeases,
    op_index: usize,
) -> Result<(), Violation> {
    let sessions = ctl.sessions();
    let model = shadow.sessions();
    if sessions.len() != model.len() || !sessions.keys().eq(model.keys()) {
        let actual: Vec<String> = sessions.keys().map(ToString::to_string).collect();
        let expected: Vec<String> = model.keys().map(ToString::to_string).collect();
        return Err(Violation::new(
            op_index,
            "lease",
            format!("sessions {actual:?}, shadow model expected {expected:?}"),
        ));
    }
    let duration = shadow.lease().duration;
    for (id, actual) in sessions {
        let expected = &model[id];
        if actual.deadline != expected.deadline {
            return Err(Violation::new(
                op_index,
                "lease",
                format!(
                    "{id}: stored deadline {} != shadow {}",
                    actual.deadline, expected.deadline
                ),
            ));
        }
        if actual.disconnected != expected.disconnected {
            return Err(Violation::new(
                op_index,
                "lease",
                format!(
                    "{id}: disconnected={} != shadow {}",
                    actual.disconnected, expected.disconnected
                ),
            ));
        }
        let effective = ctl.effective_deadline(id).unwrap_or(f64::NAN);
        if effective != expected.effective(duration) {
            return Err(Violation::new(
                op_index,
                "lease",
                format!(
                    "{id}: effective deadline {effective} != shadow {}",
                    expected.effective(duration)
                ),
            ));
        }
    }
    Ok(())
}

/// The reap oracle: the retirements a reap appended must equal — as a
/// set with reasons — what the shadow model of a correct reap expected
/// (see [`ShadowLeases::expected_reap`]).
pub fn check_reap(
    appended: &[RetirementRecord],
    expected: &BTreeMap<InstanceId, RetireReason>,
    now: f64,
    op_index: usize,
) -> Result<(), Violation> {
    let actual: BTreeMap<InstanceId, RetireReason> =
        appended.iter().map(|r| (r.instance.clone(), r.reason)).collect();
    if actual != *expected {
        return Err(Violation::new(
            op_index,
            "lease",
            format!("reap at t={now} retired {actual:?}, shadow model expected {expected:?}"),
        ));
    }
    Ok(())
}

/// The journal truncation contract: tailing from a cursor yields
/// gap-free ascending seqs, reports truncation iff entries between the
/// cursor and the oldest retained entry were evicted, and hands back a
/// cursor that continues exactly after the last entry.
pub fn check_journal_tail(
    tail: &JournalTail,
    cursor: u64,
    appended: u64,
    op_index: usize,
) -> Result<(), Violation> {
    let fail = |detail: String| Err(Violation::new(op_index, "journal", detail));
    for w in tail.entries.windows(2) {
        if w[1].seq != w[0].seq + 1 {
            return fail(format!("seq gap: {} then {}", w[0].seq, w[1].seq));
        }
    }
    match tail.entries.first() {
        Some(first) => {
            if first.seq < cursor {
                return fail(format!("tail from {cursor} returned earlier seq {}", first.seq));
            }
            if tail.truncated != (first.seq > cursor) {
                return fail(format!(
                    "truncated={} but cursor {cursor} vs first seq {}",
                    tail.truncated, first.seq
                ));
            }
            let last = tail.entries.last().expect("nonempty");
            if tail.next_cursor != last.seq + 1 {
                return fail(format!(
                    "next_cursor {} after last seq {}",
                    tail.next_cursor, last.seq
                ));
            }
            // An unbounded tail drains to the end of the ring, so the
            // continuation cursor must equal the append counter.
            if tail.next_cursor != appended {
                return fail(format!(
                    "drained tail ends at {} but {appended} entries were ever appended",
                    tail.next_cursor
                ));
            }
        }
        None => {
            if tail.truncated {
                return fail(format!("empty tail from {cursor} claims truncation"));
            }
            let expect = appended.max(cursor);
            if tail.next_cursor != expect {
                return fail(format!(
                    "empty tail from {cursor}: next_cursor {} != {expect}",
                    tail.next_cursor
                ));
            }
        }
    }
    Ok(())
}

/// Decision provenance: every decision committed on an event path carries
/// the journal seqs of the events it settles, and those seqs point at
/// entries that were actually appended (`appended` is the journal's
/// append counter).
pub fn check_provenance(
    new: &[DecisionRecord],
    appended: u64,
    op_index: usize,
) -> Result<(), Violation> {
    for d in new {
        if d.provenance.is_empty() {
            return Err(Violation::new(
                op_index,
                "provenance",
                format!(
                    "decision {} {} -> {} at t={} has no provenance",
                    d.instance, d.bundle, d.to, d.time
                ),
            ));
        }
        let max_seq = appended;
        if d.provenance.iter().any(|&s| s >= max_seq) {
            return Err(Violation::new(
                op_index,
                "provenance",
                format!(
                    "decision {} {} cites seq beyond the journal ({:?} >= {max_seq})",
                    d.instance, d.bundle, d.provenance
                ),
            ));
        }
    }
    Ok(())
}
