//! The `harness` binary: seed sweeps, artifact replay, and shrinking.
//!
//! ```text
//! harness sweep --seeds N [--start S] [--planted reaper-skips-touch-fold] [--out DIR]
//! harness replay <artifact.json>
//! harness replay --seed S [--planted ...]
//! harness shrink <seed> [--planted ...] [--out DIR]
//! harness recover --seed S [--crash-at N] [--dir DIR]
//! ```
//!
//! `sweep` runs every seed **twice** and compares fingerprints, so the
//! determinism oracle rides along for free; any failure is shrunk and
//! saved as a replayable artifact. Exit status is non-zero when anything
//! failed.
//!
//! `recover` runs the seed's schedule against a durable controller,
//! crashes it mid-burst, recovers from the state directory, and compares
//! persisted-image fingerprints (see `harmony_harness::recovery`). The
//! printed line is byte-stable across `RAYON_NUM_THREADS` settings, which
//! is how the determinism tests check snapshot-plus-tail replay through a
//! real process boundary.

use std::path::{Path, PathBuf};
use std::process::ExitCode;

use harmony_harness::{artifact, generate, run_schedule, shrink, PlantedBug, RunReport, Schedule};

fn usage() -> ExitCode {
    eprintln!(
        "usage: harness sweep --seeds N [--start S] [--planted BUG] [--out DIR]\n\
         \x20      harness replay <artifact.json>\n\
         \x20      harness replay --seed S [--planted BUG]\n\
         \x20      harness shrink <seed> [--planted BUG] [--out DIR]\n\
         \x20      harness recover --seed S [--crash-at N] [--dir DIR]\n\
         BUG: reaper-skips-touch-fold"
    );
    ExitCode::from(2)
}

fn parse_planted(s: &str) -> Option<PlantedBug> {
    match s {
        "none" => Some(PlantedBug::None),
        "reaper-skips-touch-fold" => Some(PlantedBug::ReaperSkipsTouchFold),
        _ => None,
    }
}

struct Flags {
    seeds: u64,
    start: u64,
    seed: Option<u64>,
    crash_at: Option<usize>,
    dir: Option<PathBuf>,
    planted: PlantedBug,
    out: PathBuf,
    positional: Vec<String>,
}

fn parse_flags(args: &[String]) -> Option<Flags> {
    let mut flags = Flags {
        seeds: 100,
        start: 0,
        seed: None,
        crash_at: None,
        dir: None,
        planted: PlantedBug::None,
        out: PathBuf::from("results"),
        positional: Vec::new(),
    };
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--seeds" => flags.seeds = it.next()?.parse().ok()?,
            "--start" => flags.start = it.next()?.parse().ok()?,
            "--seed" => flags.seed = Some(it.next()?.parse().ok()?),
            "--crash-at" => flags.crash_at = Some(it.next()?.parse().ok()?),
            "--dir" => flags.dir = Some(PathBuf::from(it.next()?)),
            "--planted" => flags.planted = parse_planted(it.next()?)?,
            "--out" => flags.out = PathBuf::from(it.next()?),
            _ if arg.starts_with("--") => return None,
            _ => flags.positional.push(arg.clone()),
        }
    }
    Some(flags)
}

fn describe(report: &RunReport) -> String {
    format!(
        "seed {:>6}  fp {:016x}  ops {:>3}/{:<3}  journal {:>4}  decisions {:>3}",
        report.seed,
        report.fingerprint,
        report.ops_executed,
        report.ops_total,
        report.journal_appended,
        report.decisions
    )
}

/// Shrinks a failing schedule and writes the artifact; returns the path.
fn shrink_and_save(schedule: &Schedule, planted: PlantedBug, out: &Path) -> Option<PathBuf> {
    let shrunk = shrink::shrink(schedule, planted)?;
    let violation = shrunk.report.violation.clone()?;
    eprintln!(
        "  shrunk {} -> {} ops in {} runs: {violation}",
        schedule.ops.len(),
        shrunk.schedule.ops.len(),
        shrunk.runs
    );
    let art = artifact::Artifact {
        schedule: shrunk.schedule,
        planted,
        violation,
        fingerprint: format!("{:016x}", shrunk.report.fingerprint),
    };
    match artifact::save(out, &art) {
        Ok(path) => {
            eprintln!("  artifact: {}", path.display());
            Some(path)
        }
        Err(e) => {
            eprintln!("  failed to save artifact: {e}");
            None
        }
    }
}

fn cmd_sweep(flags: &Flags) -> ExitCode {
    let mut failures = 0u64;
    for seed in flags.start..flags.start + flags.seeds {
        let schedule = generate(seed);
        let report = run_schedule(&schedule, flags.planted);
        let again = run_schedule(&schedule, flags.planted);
        let mut failed = false;
        if let Some(v) = &report.violation {
            println!("FAIL {}  {v}", describe(&report));
            failed = true;
        } else {
            println!("ok   {}", describe(&report));
        }
        if again.fingerprint != report.fingerprint {
            println!(
                "FAIL seed {seed}: nondeterministic (fp {:016x} then {:016x})",
                report.fingerprint, again.fingerprint
            );
            failed = true;
        }
        if failed {
            failures += 1;
            if report.violation.is_some() {
                shrink_and_save(&schedule, flags.planted, &flags.out);
            }
        }
    }
    if failures > 0 {
        eprintln!("{failures} of {} seeds failed", flags.seeds);
        return ExitCode::FAILURE;
    }
    println!("{} seeds clean", flags.seeds);
    ExitCode::SUCCESS
}

fn cmd_replay(flags: &Flags) -> ExitCode {
    let (schedule, planted, expect_fp) = if let Some(seed) = flags.seed {
        (generate(seed), flags.planted, None)
    } else {
        let Some(path) = flags.positional.first() else { return usage() };
        match artifact::load(Path::new(path)) {
            Ok(art) => (art.schedule, art.planted, Some(art.fingerprint)),
            Err(e) => {
                eprintln!("cannot load artifact {path}: {e}");
                return ExitCode::FAILURE;
            }
        }
    };
    let report = run_schedule(&schedule, planted);
    println!("{}", describe(&report));
    if let Some(expect) = expect_fp {
        let got = format!("{:016x}", report.fingerprint);
        if got != expect {
            println!("FAIL: fingerprint {got} does not match artifact's {expect}");
            return ExitCode::FAILURE;
        }
    }
    match &report.violation {
        Some(v) => {
            println!("violation: {v}");
            ExitCode::FAILURE
        }
        None => ExitCode::SUCCESS,
    }
}

fn cmd_shrink(flags: &Flags) -> ExitCode {
    let Some(seed) = flags.positional.first().and_then(|s| s.parse().ok()).or(flags.seed) else {
        return usage();
    };
    let schedule = generate(seed);
    match shrink_and_save(&schedule, flags.planted, &flags.out) {
        Some(_) => ExitCode::SUCCESS,
        None => {
            eprintln!("seed {seed} does not fail; nothing to shrink");
            ExitCode::FAILURE
        }
    }
}

fn cmd_recover(flags: &Flags) -> ExitCode {
    let Some(seed) = flags.seed else { return usage() };
    let dir = flags.dir.clone().unwrap_or_else(|| {
        std::env::temp_dir().join(format!("harness-recover-{}-{seed}", std::process::id()))
    });
    let _ = std::fs::remove_dir_all(&dir);
    // snapshot_every 32: low enough that a half-schedule run rotates a
    // few generations, so recovery is snapshot + WAL tail, not pure
    // replay.
    let crashed = harmony_harness::crash_run(seed, flags.crash_at, 32, &dir);
    let recovered = match harmony_harness::recover(&dir) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("recovery failed: {e}");
            return ExitCode::FAILURE;
        }
    };
    // Everything printed here must be byte-stable across thread counts;
    // the determinism tests diff this output verbatim.
    println!(
        "seed {:>6}  crash {:>3}/{:<3}  pre {:016x}  post {:016x}  \
         snapshot {:?}  replayed {}  sessions {}  pending {}",
        crashed.seed,
        crashed.crash_at,
        crashed.ops_total,
        crashed.fingerprint,
        recovered.fingerprint,
        recovered.info.snapshot_loaded,
        recovered.info.replayed,
        recovered.live_sessions,
        recovered.pending_decisions,
    );
    let _ = std::fs::remove_dir_all(&dir);
    if recovered.fingerprint != crashed.fingerprint {
        println!("FAIL: recovered state diverges from the pre-crash state");
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(cmd) = args.first() else { return usage() };
    let Some(flags) = parse_flags(&args[1..]) else { return usage() };
    match cmd.as_str() {
        "sweep" => cmd_sweep(&flags),
        "replay" => cmd_replay(&flags),
        "shrink" => cmd_shrink(&flags),
        "recover" => cmd_recover(&flags),
        _ => usage(),
    }
}
