//! Validates the oracles against a deliberately planted controller bug:
//! a lease reaper that skips folding read-path touch stamps. The sweep
//! must catch it quickly and the shrinker must reduce the failure to a
//! handful of ops.

use harmony_harness::{generate, run_seed, shrink, PlantedBug};

#[test]
fn sweep_catches_the_planted_reaper_bug_and_shrinks_it() {
    let mut caught = None;
    for seed in 0..64 {
        let report = run_seed(seed, PlantedBug::ReaperSkipsTouchFold);
        if report.violation.is_some() {
            caught = Some((seed, report));
            break;
        }
    }
    let (seed, report) = caught.expect("64 seeds never caught the planted reaper bug");
    let violation = report.violation.expect("caught run has a violation");
    assert_eq!(violation.oracle, "lease", "wrong oracle flagged it: {violation}");

    let shrunk =
        shrink::shrink(&generate(seed), PlantedBug::ReaperSkipsTouchFold).expect("still fails");
    assert!(
        shrunk.schedule.ops.len() <= 20,
        "shrinker left {} ops (wanted <= 20)",
        shrunk.schedule.ops.len()
    );
    assert!(shrunk.report.violation.is_some());
}

#[test]
fn planted_bug_does_not_fail_every_schedule() {
    // The bug needs read-path-only renewal plus an expiry-scale clock
    // jump to bite; schedules without that pattern must still pass, or
    // the oracle is flagging something other than the bug.
    let clean = (0..16)
        .filter(|&seed| run_seed(seed, PlantedBug::ReaperSkipsTouchFold).violation.is_none())
        .count();
    assert!(clean > 0, "every schedule failed: oracle is too eager");
}
