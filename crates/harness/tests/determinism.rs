//! The determinism oracle: a seed fully determines the run.
//!
//! The in-process checks rerun schedules and compare fingerprints; the
//! binary test spawns the `harness` CLI under different
//! `RAYON_NUM_THREADS` settings, which exercises the annealing
//! optimizer's thread-count-invariant merge through a real process
//! boundary.

use std::process::Command;

use harmony_harness::{generate, run_schedule, run_seed, PlantedBug};

#[test]
fn same_seed_same_fingerprint() {
    for seed in 0..6 {
        let a = run_seed(seed, PlantedBug::None);
        let b = run_seed(seed, PlantedBug::None);
        assert_eq!(a, b, "seed {seed} diverged between runs");
        assert!(a.violation.is_none(), "seed {seed}: {:?}", a.violation);
    }
}

#[test]
fn different_seeds_different_fingerprints() {
    // Not a guarantee in principle, but a collision across neighboring
    // seeds would mean the fingerprint is not actually folding the run.
    let a = run_seed(1, PlantedBug::None);
    let b = run_seed(2, PlantedBug::None);
    assert_ne!(a.fingerprint, b.fingerprint);
}

#[test]
fn subsequences_still_run_clean() {
    // The shrinker's soundness precondition: dropping ops from a passing
    // schedule must leave a passing schedule.
    let schedule = generate(3);
    let mut thinned = schedule.clone();
    thinned.ops = thinned.ops.into_iter().step_by(3).collect();
    let report = run_schedule(&thinned, PlantedBug::None);
    assert!(report.violation.is_none(), "{:?}", report.violation);
}

#[test]
fn fingerprint_is_thread_count_invariant() {
    // Seed 5 selects the annealing optimizer (seed % 3 == 2), the only
    // parallel code path, and runs clean.
    let run = |threads: &str| {
        let out = Command::new(env!("CARGO_BIN_EXE_harness"))
            .args(["replay", "--seed", "5"])
            .env("RAYON_NUM_THREADS", threads)
            .output()
            .expect("spawn harness binary");
        assert!(out.status.success(), "replay failed: {}", String::from_utf8_lossy(&out.stderr));
        String::from_utf8(out.stdout).expect("utf8 stdout")
    };
    let single = run("1");
    let multi = run("4");
    assert!(single.contains("fp "), "unexpected output: {single}");
    assert_eq!(single, multi, "thread count changed the decision sequence");
}
