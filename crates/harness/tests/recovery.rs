//! Crash-recovery oracles on the virtual clock.
//!
//! Seeded schedules run against a durable controller, die mid-burst, and
//! recover; the persisted image (sessions, lease deadlines, journal
//! cursor, pending coalescing windows, applied configurations) must come
//! back bit-identical. The WAL damage cases pin the recovery contract:
//! a torn final record is what a crash legitimately leaves and is
//! discarded; a corrupted record with valid data *after* it is not a
//! crash artifact and recovery must refuse rather than replay around it.

use std::path::PathBuf;
use std::process::Command;

use harmony_harness::{crash_run, recover};

fn scratch(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("harness-recovery-{}-{tag}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

#[test]
fn kill_mid_burst_recovers_the_exact_pre_crash_state() {
    for seed in 0..6 {
        let dir = scratch(&format!("burst-{seed}"));
        let crashed = crash_run(seed, None, 0, &dir);
        let recovered = recover(&dir).unwrap();
        assert_eq!(
            recovered.fingerprint, crashed.fingerprint,
            "seed {seed}: recovered state diverges from the crash point"
        );
        assert_eq!(recovered.live_sessions, crashed.live_sessions, "seed {seed}");
        assert_eq!(recovered.pending_decisions, crashed.pending_decisions, "seed {seed}");
        // With compaction off, everything since the (empty) initial
        // snapshot lives in the WAL: replay must consume every record.
        assert_eq!(recovered.info.replayed, crashed.wal_records, "seed {seed}");
        assert!(!recovered.info.torn_tail, "seed {seed}: clean sync left no torn tail");
        let _ = std::fs::remove_dir_all(&dir);
    }
}

#[test]
fn snapshot_plus_tail_replay_matches_pure_wal_replay() {
    // Same seed, same crash point; one run compacts every 24 appends, the
    // other never. Recovery must land on the same state either way —
    // checkpoints are an optimization, not a semantic.
    let plain = scratch("plain");
    let compacted = scratch("compacted");
    let a = crash_run(11, Some(70), 0, &plain);
    let b = crash_run(11, Some(70), 24, &compacted);
    assert_eq!(a.fingerprint, b.fingerprint, "compaction changed live state");
    let ra = recover(&plain).unwrap();
    let rb = recover(&compacted).unwrap();
    assert_eq!(ra.fingerprint, a.fingerprint);
    assert_eq!(rb.fingerprint, b.fingerprint);
    assert_eq!(ra.fingerprint, rb.fingerprint);
    assert_eq!(rb.info.snapshot_loaded.map(|g| g > 1), Some(true), "compaction rotated");
    assert!(rb.info.replayed <= ra.info.replayed, "the snapshot absorbed replay work");
    let _ = std::fs::remove_dir_all(&plain);
    let _ = std::fs::remove_dir_all(&compacted);
}

#[test]
fn torn_final_record_is_discarded_and_recovery_proceeds() {
    let dir = scratch("torn");
    let crashed = crash_run(5, None, 0, &dir);
    // A torn write: the length header promises 100 bytes, the crash left
    // four. Exactly what a power cut mid-append produces.
    let wal = harmony_harness::recovery::newest_wal(&dir).expect("run left a wal");
    let mut bytes = std::fs::read(&wal).unwrap();
    bytes.extend_from_slice(&100u32.to_le_bytes());
    bytes.extend_from_slice(&0u32.to_le_bytes());
    bytes.extend_from_slice(b"torn");
    std::fs::write(&wal, bytes).unwrap();

    let recovered = recover(&dir).unwrap();
    assert!(recovered.info.torn_tail, "the torn tail must be reported");
    assert_eq!(recovered.fingerprint, crashed.fingerprint, "every record before the tear replays");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn corrupted_middle_record_refuses_recovery() {
    let dir = scratch("corrupt");
    let crashed = crash_run(5, None, 0, &dir);
    assert!(crashed.wal_records >= 2, "need a non-final record to corrupt");
    // Flip one byte in the first record's payload: the CRC catches it,
    // and because valid records follow, this is damage, not a torn write.
    let wal = harmony_harness::recovery::newest_wal(&dir).expect("run left a wal");
    let mut bytes = std::fs::read(&wal).unwrap();
    bytes[8] ^= 0xff;
    std::fs::write(&wal, bytes).unwrap();

    let err = recover(&dir).expect_err("corrupted middle record must refuse recovery");
    let msg = err.to_string();
    assert!(msg.contains("corrupted"), "unexpected error: {msg}");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn recovery_fingerprint_is_thread_count_invariant() {
    // Seed 5 selects the annealing optimizer (the only parallel code
    // path) *and* per-seed coalescing, so the persisted image includes
    // optimizer-driven decisions and a pending-window scheduler state.
    // The printed line must not change with the worker pool size.
    let run = |threads: &str, dir: &PathBuf| {
        let out = Command::new(env!("CARGO_BIN_EXE_harness"))
            .args(["recover", "--seed", "5", "--dir", &dir.display().to_string()])
            .env("RAYON_NUM_THREADS", threads)
            .output()
            .expect("spawn harness binary");
        assert!(
            out.status.success(),
            "recover failed: {}{}",
            String::from_utf8_lossy(&out.stdout),
            String::from_utf8_lossy(&out.stderr)
        );
        String::from_utf8(out.stdout).expect("utf8 stdout")
    };
    let d1 = scratch("threads-1");
    let d4 = scratch("threads-4");
    let single = run("1", &d1);
    let multi = run("4", &d4);
    assert!(single.contains("pre "), "unexpected output: {single}");
    assert_eq!(single, multi, "thread count changed the recovered state");
}
