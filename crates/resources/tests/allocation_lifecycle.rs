//! Allocation lifecycle integration: mixed dedicated/shared workloads,
//! elastic grants, and capacity invariants over long churn sequences.

use harmony_resources::{fragmentation, Cluster, Matcher, Strategy};
use harmony_rsl::expr::MapEnv;
use harmony_rsl::schema::parse_bundle_script;
use harmony_sim::SimRng;

fn sp2(n: usize) -> Cluster {
    Cluster::from_rsl(&harmony_rsl::listings::sp2_cluster(n)).unwrap()
}

#[test]
fn dedicated_and_shared_jobs_coexist() {
    let mut cluster = sp2(4);
    let matcher = Matcher::default();
    // A dedicated 2-node parallel job...
    let dedicated = parse_bundle_script(
        "harmonyBundle par:1 b { {o {node w {replicate 2} {dedicated 1} {seconds 10} {memory 32}}} }",
    )
    .unwrap();
    let d = matcher.match_option(&cluster, &dedicated.options[0], &MapEnv::new()).unwrap();
    cluster.commit(&d).unwrap();

    // ...leaves two nodes for shared jobs, which can stack.
    let shared =
        parse_bundle_script("harmonyBundle seq:1 b { {o {node n {seconds 5} {memory 16}}} }")
            .unwrap();
    let mut shared_allocs = Vec::new();
    for _ in 0..4 {
        let a = matcher.match_option(&cluster, &shared.options[0], &MapEnv::new()).unwrap();
        cluster.commit(&a).unwrap();
        // Shared jobs never land on the dedicated nodes.
        for n in &a.nodes {
            assert!(!d.nodes.iter().any(|dn| dn.node == n.node), "stacked on dedicated");
        }
        shared_allocs.push(a);
    }
    // The two shared nodes hold two tasks each.
    let shared_nodes: Vec<_> =
        cluster.nodes().filter(|n| n.exclusive == 0 && n.tasks > 0).collect();
    assert_eq!(shared_nodes.len(), 2);
    assert!(shared_nodes.iter().all(|n| n.tasks == 2));

    // Releasing the dedicated job reopens its nodes.
    cluster.release(&d).unwrap();
    let a = matcher.match_option(&cluster, &shared.options[0], &MapEnv::new()).unwrap();
    assert!(
        d.nodes.iter().any(|dn| dn.node == a.nodes[0].node),
        "freed dedicated node is least-loaded and gets picked"
    );
}

#[test]
fn another_dedicated_job_cannot_share_dedicated_nodes() {
    let mut cluster = sp2(2);
    let matcher = Matcher::default();
    let spec = parse_bundle_script(
        "harmonyBundle par:1 b { {o {node w {replicate 2} {dedicated 1} {seconds 1} {memory 1}}} }",
    )
    .unwrap();
    let first = matcher.match_option(&cluster, &spec.options[0], &MapEnv::new()).unwrap();
    cluster.commit(&first).unwrap();
    assert!(matcher.match_option(&cluster, &spec.options[0], &MapEnv::new()).is_err());
}

#[test]
fn elastic_grant_shrinks_when_capacity_is_tight() {
    let mut cluster = Cluster::from_rsl("harmonyNode only {speed 1.0} {memory 100}").unwrap();
    let spec = parse_bundle_script("harmonyBundle a b { {o {node n {memory >=20} {seconds 1}}} }")
        .unwrap();
    let matcher = Matcher::new(Strategy::FirstFit).with_elastic_extra(60.0);
    // First job: 20 + 60 elastic = 80 MB.
    let first = matcher.match_option(&cluster, &spec.options[0], &MapEnv::new()).unwrap();
    assert_eq!(first.nodes[0].memory, 80.0);
    cluster.commit(&first).unwrap();
    // Second job: only 20 MB free — the elastic part shrinks to fit.
    let second = matcher.match_option(&cluster, &spec.options[0], &MapEnv::new()).unwrap();
    assert_eq!(second.nodes[0].memory, 20.0);
    cluster.commit(&second).unwrap();
    assert_eq!(cluster.node("only").unwrap().free_memory, 0.0);
    // A third job cannot fit at all.
    assert!(matcher.match_option(&cluster, &spec.options[0], &MapEnv::new()).is_err());
}

#[test]
fn long_churn_preserves_every_capacity_counter() {
    let mut cluster = sp2(6);
    let matcher = Matcher::default();
    let mut rng = SimRng::seed(2024);
    let specs: Vec<_> = [
        "harmonyBundle a b { {o {node n {seconds 1} {memory 24}}} }",
        "harmonyBundle a b { {o {node w {replicate 2} {seconds 1} {memory 40}}} }",
        "harmonyBundle a b { {o {node w {replicate 3} {dedicated 1} {seconds 1} {memory 8}}} }",
    ]
    .iter()
    .map(|s| parse_bundle_script(s).unwrap())
    .collect();

    let total_memory = cluster.total_memory();
    let mut live = Vec::new();
    for _ in 0..300 {
        if live.is_empty() || rng.chance(0.55) {
            let spec = &specs[rng.uniform_int(0, 2) as usize];
            if let Ok(a) = matcher.match_option(&cluster, &spec.options[0], &MapEnv::new()) {
                cluster.commit(&a).unwrap();
                live.push(a);
            }
        } else {
            let idx = rng.uniform_int(0, live.len() as i64 - 1) as usize;
            let a = live.swap_remove(idx);
            cluster.release(&a).unwrap();
        }
        // Invariants after every step.
        let reserved: f64 = live.iter().map(|a| a.total_memory()).sum();
        assert!((total_memory - cluster.total_free_memory() - reserved).abs() < 1e-6);
        let tasks: u32 = live.iter().map(|a| a.nodes.len() as u32).sum();
        assert_eq!(cluster.total_tasks(), tasks);
        let frag = fragmentation(&cluster);
        assert!((0.0..=1.0).contains(&frag.external_fragmentation));
        assert!((0.0..=1.0).contains(&frag.utilization));
    }
    for a in live.drain(..) {
        cluster.release(&a).unwrap();
    }
    assert_eq!(cluster.total_free_memory(), total_memory);
    assert_eq!(cluster.total_tasks(), 0);
    assert!(cluster.nodes().all(|n| n.exclusive == 0));
}
