//! # Harmony resources
//!
//! The cluster resource model of "Exposing Application Alternatives" §4.1:
//! nodes publish normalized computing capacity (relative to the 400 MHz
//! Pentium II reference machine), memory, and OS; links publish bandwidth
//! and latency. The [`Matcher`] binds an option's node and link
//! requirements to concrete cluster resources — first-fit as in the paper,
//! plus best-fit/worst-fit for the fragmentation ablation — and committed
//! [`Allocation`]s decrement the live capacity counters.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod alloc;
mod cluster;
mod error;
mod frag;
mod matcher;

pub use alloc::{AllocatedLink, AllocatedNode, Allocation};
pub use cluster::{Cluster, LinkState, NodeState};
pub use error::ResourceError;
pub use frag::{fragmentation, FragReport};
pub use matcher::{Matcher, Strategy};
