//! Matching application requirements to available resources (§4.1).
//!
//! "We start by finding nodes that meet the minimum resource requirements
//! required by the application. When considering nodes, we also verify that
//! the network links between nodes of the application meet the requirements
//! specified in the RSL. Our current approach uses a simple first-fit
//! allocation strategy."
//!
//! [`Strategy::FirstFit`] is the paper's policy; best-fit and worst-fit are
//! provided for the fragmentation ablation the paper sketches ("in the
//! future, we plan to extend the matching to use more sophisticated
//! policies that try to avoid fragmentation").

use std::collections::BTreeSet;

use harmony_rsl::expr::{ChainEnv, MapEnv};
use harmony_rsl::schema::{NodeReq, OptionSpec, TagValue};
use harmony_rsl::Value;
use serde::{Deserialize, Serialize};

use crate::alloc::{AllocatedLink, AllocatedNode, Allocation};
use crate::cluster::Cluster;
use crate::error::ResourceError;

/// Node-selection strategy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub enum Strategy {
    /// Paper's policy: first (in name order) node that fits.
    #[default]
    FirstFit,
    /// Node whose free memory leaves the smallest remainder.
    BestFit,
    /// Node with the most free memory.
    WorstFit,
}

/// Configuration for the matcher.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Matcher {
    /// Node-selection strategy.
    pub strategy: Strategy,
    /// Extra megabytes to grant (beyond the minimum) to elastic `>=`
    /// memory requirements when the node has spare capacity. Figure 3's DS
    /// option profits from extra client memory up to a 24 MB cap; the
    /// controller searches over this knob.
    pub elastic_extra: f64,
}

impl Default for Matcher {
    fn default() -> Self {
        Matcher { strategy: Strategy::FirstFit, elastic_extra: 0.0 }
    }
}

impl Matcher {
    /// Creates a matcher with the given strategy and no elastic grants.
    pub fn new(strategy: Strategy) -> Self {
        Matcher { strategy, elastic_extra: 0.0 }
    }

    /// Sets the elastic memory grant.
    pub fn with_elastic_extra(mut self, extra: f64) -> Self {
        self.elastic_extra = extra;
        self
    }

    /// Attempts to bind every node and link requirement of `opt` against
    /// `cluster`, under the variable bindings `vars` (e.g.
    /// `workerNodes = 4`). The cluster is *not* modified; commit the
    /// returned [`Allocation`] to reserve the resources.
    ///
    /// All node bindings within one allocation are distinct cluster nodes
    /// (replicas of Figure 2a's `{replicate 4}` land on four different
    /// machines, as the paper's "four distinct nodes" requires).
    ///
    /// # Errors
    ///
    /// [`ResourceError::NoMatch`] with the first requirement that could not
    /// be satisfied; RSL evaluation errors from parameterized tags.
    ///
    /// # Examples
    ///
    /// ```
    /// use harmony_resources::Matcher;
    /// use harmony_resources::Cluster;
    /// use harmony_rsl::expr::MapEnv;
    /// use harmony_rsl::schema::parse_bundle_script;
    ///
    /// let cluster = Cluster::from_rsl(&harmony_rsl::listings::sp2_cluster(8))?;
    /// let bundle = parse_bundle_script(harmony_rsl::listings::FIG2A_SIMPLE)?;
    /// let alloc = Matcher::default()
    ///     .match_option(&cluster, &bundle.options[0], &MapEnv::new())?;
    /// assert_eq!(alloc.distinct_nodes(), 4); // four distinct workers
    /// # Ok::<(), Box<dyn std::error::Error>>(())
    /// ```
    pub fn match_option(
        &self,
        cluster: &Cluster,
        opt: &OptionSpec,
        vars: &MapEnv,
    ) -> Result<Allocation, ResourceError> {
        let mut used: BTreeSet<String> = BTreeSet::new();
        let mut nodes: Vec<AllocatedNode> = Vec::new();
        // Remaining free memory per node as this match reserves pieces.
        let mut reserved_mem: Vec<(String, f64)> = Vec::new();

        let free_mem = |cluster: &Cluster, reserved: &[(String, f64)], name: &str| -> f64 {
            let base = cluster.node(name).map(|n| n.free_memory).unwrap_or(0.0);
            let held: f64 = reserved.iter().filter(|(n, _)| n == name).map(|(_, m)| *m).sum();
            base - held
        };

        for req in &opt.nodes {
            let count = req.count.resolve(vars)?;
            let dedicated = req
                .tag("dedicated")
                .map(|t| t.accepts(&Value::Int(1), vars))
                .transpose()?
                .unwrap_or(false);
            for index in 0..count {
                let min_mem = min_memory(req, vars)?;
                let mut candidates: Vec<&str> = Vec::new();
                for state in cluster.nodes() {
                    let name = state.decl.name.as_str();
                    if used.contains(name) {
                        continue;
                    }
                    // Nodes held exclusively by a dedicated allocation are
                    // off-limits to everyone, and dedicated requirements
                    // only accept idle nodes (space sharing, as on the
                    // paper's SP-2).
                    if state.exclusive > 0 {
                        continue;
                    }
                    if dedicated && state.tasks > 0 {
                        continue;
                    }
                    if !accepts_attr(req.hostname(), &host_value(state), vars)? {
                        continue;
                    }
                    if !accepts_attr(req.os(), &Value::Str(state.decl.os.clone()), vars)? {
                        continue;
                    }
                    if !accepts_attr(req.tag("speed"), &Value::Float(state.decl.speed), vars)? {
                        continue;
                    }
                    if free_mem(cluster, &reserved_mem, name) < min_mem {
                        continue;
                    }
                    candidates.push(name);
                }
                // §4.1: "as nodes are matched, we decrease the available
                // resources" — CPU load counts, so less-loaded nodes rank
                // first under every strategy.
                candidates.sort_by_key(|name| cluster.node(name).map(|n| n.tasks).unwrap_or(0));
                let chosen = self.pick(cluster, &reserved_mem, &candidates, min_mem);
                let Some(chosen) = chosen else {
                    return Err(ResourceError::NoMatch {
                        reason: format!(
                            "no node satisfies requirement `{}` replica {index} \
                             (need {min_mem} MB{})",
                            req.name,
                            req.hostname()
                                .map(|h| format!(", hostname {}", h.canonical()))
                                .unwrap_or_default()
                        ),
                    });
                };
                let mut grant = min_mem;
                if req.memory().map(TagValue::is_elastic).unwrap_or(false)
                    && self.elastic_extra > 0.0
                {
                    let spare = free_mem(cluster, &reserved_mem, &chosen) - min_mem;
                    grant += self.elastic_extra.min(spare.max(0.0));
                }
                let seconds = match req.seconds() {
                    Some(v) => v.amount(vars)?,
                    None => 0.0,
                };
                reserved_mem.push((chosen.clone(), grant));
                used.insert(chosen.clone());
                nodes.push(AllocatedNode {
                    req: req.name.clone(),
                    index,
                    node: chosen,
                    memory: grant,
                    seconds,
                    exclusive: dedicated,
                });
            }
        }

        // Build the post-binding environment so parameterized link
        // bandwidths can see `<req>.memory` etc.
        let mut partial = Allocation { nodes, links: Vec::new(), variables: var_bindings(vars) };
        let link_env = partial.env();
        let env = ChainEnv::new(&link_env, vars);

        for link in &opt.links {
            let Some(a) = partial.binding(&link.a).map(|n| n.node.clone()) else {
                return Err(ResourceError::NoMatch {
                    reason: format!("link references unknown requirement `{}`", link.a),
                });
            };
            let Some(b) = partial.binding(&link.b).map(|n| n.node.clone()) else {
                return Err(ResourceError::NoMatch {
                    reason: format!("link references unknown requirement `{}`", link.b),
                });
            };
            let bw = link.bandwidth.amount(&env)?;
            if a != b {
                let Some(state) = cluster.link(&a, &b) else {
                    return Err(ResourceError::NoMatch {
                        reason: format!("no link between `{a}` and `{b}`"),
                    });
                };
                let already: f64 = partial
                    .links
                    .iter()
                    .filter(|l| (l.a == a && l.b == b) || (l.a == b && l.b == a))
                    .map(|l| l.bandwidth)
                    .sum();
                if state.free_bandwidth - already < bw {
                    return Err(ResourceError::NoMatch {
                        reason: format!(
                            "link `{a}`-`{b}` has {:.1} Mbps free, need {bw:.1}",
                            state.free_bandwidth - already
                        ),
                    });
                }
            }
            partial.links.push(AllocatedLink { a, b, bandwidth: bw });
        }

        Ok(partial)
    }

    fn pick(
        &self,
        cluster: &Cluster,
        reserved: &[(String, f64)],
        candidates: &[&str],
        need: f64,
    ) -> Option<String> {
        let free = |name: &str| -> f64 {
            let base = cluster.node(name).map(|n| n.free_memory).unwrap_or(0.0);
            let held: f64 = reserved.iter().filter(|(n, _)| n == name).map(|(_, m)| *m).sum();
            base - held
        };
        match self.strategy {
            Strategy::FirstFit => candidates.first().map(|s| (*s).to_owned()),
            Strategy::BestFit => candidates
                .iter()
                .min_by(|a, b| {
                    let la = free(a) - need;
                    let lb = free(b) - need;
                    la.partial_cmp(&lb).unwrap_or(std::cmp::Ordering::Equal)
                })
                .map(|s| (*s).to_owned()),
            Strategy::WorstFit => candidates
                .iter()
                .max_by(|a, b| free(a).partial_cmp(&free(b)).unwrap_or(std::cmp::Ordering::Equal))
                .map(|s| (*s).to_owned()),
        }
    }
}

fn host_value(state: &crate::cluster::NodeState) -> Value {
    Value::Str(state.decl.hostname.clone())
}

fn accepts_attr(
    tag: Option<&TagValue>,
    attr: &Value,
    vars: &MapEnv,
) -> Result<bool, ResourceError> {
    match tag {
        None => Ok(true),
        Some(t) => Ok(t.accepts(attr, vars)?),
    }
}

fn min_memory(req: &NodeReq, vars: &MapEnv) -> Result<f64, ResourceError> {
    match req.memory() {
        None => Ok(0.0),
        Some(TagValue::Any) => Ok(0.0),
        Some(TagValue::AtMost(_)) => Ok(0.0),
        Some(v) => Ok(v.amount(vars)?),
    }
}

fn var_bindings(vars: &MapEnv) -> Vec<(String, i64)> {
    let mut out: Vec<(String, i64)> =
        vars.iter().filter_map(|(k, v)| v.as_i64().ok().map(|i| (k.to_owned(), i))).collect();
    out.sort();
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use harmony_rsl::listings::{FIG2A_SIMPLE, FIG2B_BAG, FIG3_DBCLIENT};
    use harmony_rsl::schema::{parse_bundle_script, LinkDecl, NodeDecl};

    fn sp2(n: usize) -> Cluster {
        Cluster::from_rsl(&harmony_rsl::listings::sp2_cluster(n)).unwrap()
    }

    #[test]
    fn matches_fig2a_on_sp2() {
        let cluster = sp2(8);
        let bundle = parse_bundle_script(FIG2A_SIMPLE).unwrap();
        let alloc =
            Matcher::default().match_option(&cluster, &bundle.options[0], &MapEnv::new()).unwrap();
        assert_eq!(alloc.nodes.len(), 4);
        assert_eq!(alloc.distinct_nodes(), 4);
        for n in &alloc.nodes {
            assert_eq!(n.memory, 32.0);
            assert_eq!(n.seconds, 300.0);
        }
    }

    #[test]
    fn fig2a_needs_four_nodes() {
        let cluster = sp2(3);
        let bundle = parse_bundle_script(FIG2A_SIMPLE).unwrap();
        let err = Matcher::default()
            .match_option(&cluster, &bundle.options[0], &MapEnv::new())
            .unwrap_err();
        assert!(matches!(err, ResourceError::NoMatch { .. }));
    }

    #[test]
    fn matches_fig2b_with_variable_binding() {
        let cluster = sp2(8);
        let bundle = parse_bundle_script(FIG2B_BAG).unwrap();
        for workers in [1i64, 2, 4, 8] {
            let mut vars = MapEnv::new();
            vars.set("workerNodes", Value::Int(workers));
            let alloc =
                Matcher::default().match_option(&cluster, &bundle.options[0], &vars).unwrap();
            assert_eq!(alloc.nodes.len(), workers as usize);
            // Total cycles constant across worker counts.
            let total: f64 = alloc.nodes.iter().map(|n| n.seconds).sum();
            assert!((total - 1200.0).abs() < 1e-6, "workers={workers} total={total}");
            assert_eq!(alloc.variables, vec![("workerNodes".to_string(), workers)]);
        }
    }

    fn db_cluster() -> Cluster {
        let mut c = Cluster::new();
        c.add_node(NodeDecl::new("server", 1.0, 256.0).with_hostname("harmony.cs.umd.edu"))
            .unwrap();
        c.add_node(NodeDecl::new("c1", 1.0, 64.0)).unwrap();
        c.add_link(LinkDecl::new("server", "c1", 320.0)).unwrap();
        c
    }

    #[test]
    fn matches_fig3_qs_pinning_server_by_hostname() {
        let cluster = db_cluster();
        let bundle = parse_bundle_script(FIG3_DBCLIENT).unwrap();
        let qs = bundle.option("QS").unwrap();
        let alloc = Matcher::default().match_option(&cluster, qs, &MapEnv::new()).unwrap();
        assert_eq!(alloc.binding("server").unwrap().node, "server");
        assert_eq!(alloc.binding("client").unwrap().node, "c1");
        assert_eq!(alloc.links[0].bandwidth, 2.0);
    }

    #[test]
    fn fig3_ds_bandwidth_is_parameterized_on_granted_memory() {
        let cluster = db_cluster();
        let bundle = parse_bundle_script(FIG3_DBCLIENT).unwrap();
        let ds = bundle.option("DS").unwrap();
        // Minimum grant (17 MB): bandwidth = 44 + 17 - 17 = 44.
        let alloc = Matcher::default().match_option(&cluster, ds, &MapEnv::new()).unwrap();
        assert_eq!(alloc.binding("client").unwrap().memory, 17.0);
        assert_eq!(alloc.links[0].bandwidth, 44.0);
        // Grant 7 MB extra (24 MB): bandwidth = 44 + 24 - 17 = 51... note
        // the expression *increases* with memory up to the cap because it
        // models a one-time cache fill; past the cap extra memory is moot.
        let alloc = Matcher::new(Strategy::FirstFit)
            .with_elastic_extra(7.0)
            .match_option(&cluster, ds, &MapEnv::new())
            .unwrap();
        assert_eq!(alloc.binding("client").unwrap().memory, 24.0);
        assert_eq!(alloc.links[0].bandwidth, 51.0);
        // Past the cap the bandwidth term saturates.
        let alloc = Matcher::new(Strategy::FirstFit)
            .with_elastic_extra(30.0)
            .match_option(&cluster, ds, &MapEnv::new())
            .unwrap();
        assert_eq!(alloc.binding("client").unwrap().memory, 47.0);
        assert_eq!(alloc.links[0].bandwidth, 51.0);
    }

    #[test]
    fn elastic_grant_is_limited_by_spare_capacity() {
        let mut cluster = db_cluster();
        // Shrink the client node so only 20 MB is free.
        cluster.remove_node("c1");
        cluster.add_node(NodeDecl::new("c1", 1.0, 20.0)).unwrap();
        cluster.add_link(LinkDecl::new("server", "c1", 320.0)).unwrap();
        let bundle = parse_bundle_script(FIG3_DBCLIENT).unwrap();
        let ds = bundle.option("DS").unwrap();
        let alloc = Matcher::new(Strategy::FirstFit)
            .with_elastic_extra(30.0)
            .match_option(&cluster, ds, &MapEnv::new())
            .unwrap();
        assert_eq!(alloc.binding("client").unwrap().memory, 20.0);
    }

    #[test]
    fn strategies_differ_on_heterogeneous_memory() {
        let mut c = Cluster::new();
        c.add_node(NodeDecl::new("big", 1.0, 512.0)).unwrap();
        c.add_node(NodeDecl::new("small", 1.0, 64.0)).unwrap();
        let bundle =
            parse_bundle_script("harmonyBundle a b { {o {node w {seconds 10} {memory 32}}} }")
                .unwrap();
        let opt = &bundle.options[0];
        let vars = MapEnv::new();
        let ff = Matcher::new(Strategy::FirstFit).match_option(&c, opt, &vars).unwrap();
        assert_eq!(ff.nodes[0].node, "big"); // name order
        let bf = Matcher::new(Strategy::BestFit).match_option(&c, opt, &vars).unwrap();
        assert_eq!(bf.nodes[0].node, "small");
        let wf = Matcher::new(Strategy::WorstFit).match_option(&c, opt, &vars).unwrap();
        assert_eq!(wf.nodes[0].node, "big");
    }

    #[test]
    fn os_constraint_filters() {
        let mut c = Cluster::new();
        c.add_node(NodeDecl::new("aixbox", 1.0, 256.0).with_os("aix")).unwrap();
        let bundle =
            parse_bundle_script("harmonyBundle a b { {o {node w {os linux} {seconds 1}}} }")
                .unwrap();
        let err =
            Matcher::default().match_option(&c, &bundle.options[0], &MapEnv::new()).unwrap_err();
        assert!(matches!(err, ResourceError::NoMatch { .. }));
    }

    #[test]
    fn speed_constraint_filters() {
        let mut c = Cluster::new();
        c.add_node(NodeDecl::new("slow", 0.5, 256.0)).unwrap();
        c.add_node(NodeDecl::new("fast", 2.0, 256.0)).unwrap();
        let bundle =
            parse_bundle_script("harmonyBundle a b { {o {node w {speed >=1.0} {seconds 1}}} }")
                .unwrap();
        let alloc =
            Matcher::default().match_option(&c, &bundle.options[0], &MapEnv::new()).unwrap();
        assert_eq!(alloc.nodes[0].node, "fast");
    }

    #[test]
    fn insufficient_link_bandwidth_fails() {
        let mut c = Cluster::new();
        c.add_node(NodeDecl::new("a", 1.0, 256.0)).unwrap();
        c.add_node(NodeDecl::new("b", 1.0, 256.0)).unwrap();
        c.add_link(LinkDecl::new("a", "b", 1.0)).unwrap();
        let bundle = parse_bundle_script(
            "harmonyBundle x y { {o {node m {seconds 1}} {node n {seconds 1}} {link m n 10}} }",
        )
        .unwrap();
        let err =
            Matcher::default().match_option(&c, &bundle.options[0], &MapEnv::new()).unwrap_err();
        match err {
            ResourceError::NoMatch { reason } => assert!(reason.contains("Mbps"), "{reason}"),
            other => panic!("expected NoMatch, got {other:?}"),
        }
    }

    #[test]
    fn matcher_does_not_mutate_cluster() {
        let cluster = sp2(8);
        let bundle = parse_bundle_script(FIG2A_SIMPLE).unwrap();
        let before = cluster.total_free_memory();
        let _ = Matcher::default().match_option(&cluster, &bundle.options[0], &MapEnv::new());
        assert_eq!(cluster.total_free_memory(), before);
    }

    #[test]
    fn committed_match_never_overcommits_memory() {
        let mut cluster = sp2(4);
        let bundle = parse_bundle_script(FIG2A_SIMPLE).unwrap();
        let mut allocs = Vec::new();
        // Commit matches until the matcher refuses; free memory must stay
        // non-negative throughout.
        while let Ok(a) =
            Matcher::default().match_option(&cluster, &bundle.options[0], &MapEnv::new())
        {
            cluster.commit(&a).unwrap();
            allocs.push(a);
            for n in cluster.nodes() {
                assert!(n.free_memory >= 0.0);
            }
            assert!(allocs.len() <= 64, "matcher should eventually refuse");
        }
        assert_eq!(allocs.len(), 8); // 256 MB / 32 MB per node
    }
}
