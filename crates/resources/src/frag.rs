//! Fragmentation and utilization metrics.
//!
//! The paper's matcher uses first-fit and notes that future policies should
//! "try to avoid fragmentation" (§4.1). These metrics quantify that for the
//! matching-strategy ablation bench.

use serde::{Deserialize, Serialize};

use crate::cluster::Cluster;

/// A snapshot of cluster memory fragmentation and utilization.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FragReport {
    /// Total memory published (MB).
    pub total: f64,
    /// Total memory free (MB).
    pub free: f64,
    /// The largest single free block (MB) — the biggest request that could
    /// still be satisfied on one node.
    pub largest_free_block: f64,
    /// External fragmentation in `[0, 1]`:
    /// `1 - largest_free_block / free` (0 when all free memory is usable by
    /// one request, approaching 1 when free memory is scattered).
    pub external_fragmentation: f64,
    /// Fraction of memory in use.
    pub utilization: f64,
    /// Number of nodes with zero tasks (fully idle).
    pub idle_nodes: usize,
}

/// Computes a fragmentation report for the cluster's memory.
pub fn fragmentation(cluster: &Cluster) -> FragReport {
    let total = cluster.total_memory();
    let free = cluster.total_free_memory();
    let largest = cluster.nodes().map(|n| n.free_memory).fold(0.0f64, f64::max);
    let external = if free > 0.0 { 1.0 - largest / free } else { 0.0 };
    let utilization = if total > 0.0 { (total - free) / total } else { 0.0 };
    let idle = cluster.nodes().filter(|n| n.tasks == 0).count();
    FragReport {
        total,
        free,
        largest_free_block: largest,
        external_fragmentation: external.clamp(0.0, 1.0),
        utilization: utilization.clamp(0.0, 1.0),
        idle_nodes: idle,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use harmony_rsl::schema::NodeDecl;

    #[test]
    fn empty_cluster_is_unfragmented() {
        let r = fragmentation(&Cluster::new());
        assert_eq!(r.total, 0.0);
        assert_eq!(r.external_fragmentation, 0.0);
        assert_eq!(r.utilization, 0.0);
        assert_eq!(r.idle_nodes, 0);
    }

    #[test]
    fn uniform_free_cluster() {
        let mut c = Cluster::new();
        c.add_node(NodeDecl::new("a", 1.0, 100.0)).unwrap();
        c.add_node(NodeDecl::new("b", 1.0, 100.0)).unwrap();
        let r = fragmentation(&c);
        assert_eq!(r.total, 200.0);
        assert_eq!(r.free, 200.0);
        assert_eq!(r.largest_free_block, 100.0);
        assert_eq!(r.external_fragmentation, 0.5);
        assert_eq!(r.utilization, 0.0);
        assert_eq!(r.idle_nodes, 2);
    }

    #[test]
    fn scattered_free_memory_is_more_fragmented_than_concentrated() {
        use crate::alloc::{AllocatedNode, Allocation};
        let mk = |uses: &[(&str, f64)]| {
            let mut c = Cluster::new();
            c.add_node(NodeDecl::new("a", 1.0, 100.0)).unwrap();
            c.add_node(NodeDecl::new("b", 1.0, 100.0)).unwrap();
            let alloc = Allocation {
                nodes: uses
                    .iter()
                    .map(|(n, m)| AllocatedNode {
                        req: "w".into(),
                        index: 0,
                        node: (*n).into(),
                        memory: *m,
                        seconds: 0.0,
                        exclusive: false,
                    })
                    .collect(),
                links: vec![],
                variables: vec![],
            };
            c.commit(&alloc).unwrap();
            fragmentation(&c)
        };
        // 100 MB used all on one node: the other node is a 100 MB block.
        let concentrated = mk(&[("a", 100.0)]);
        // 100 MB used as 50+50: largest block is only 50 MB.
        let scattered = mk(&[("a", 50.0), ("b", 50.0)]);
        assert!(scattered.external_fragmentation > concentrated.external_fragmentation);
        assert_eq!(concentrated.utilization, scattered.utilization);
        assert_eq!(concentrated.idle_nodes, 1);
        assert_eq!(scattered.idle_nodes, 0);
    }
}
