//! Cluster state: published nodes and links with capacity accounting.
//!
//! When Harmony starts it collects an initial estimate of each node's
//! capabilities (available memory, normalized computing capacity) and of
//! each link's bandwidth and latency (§4.1). As allocations are committed,
//! available resources are decreased; releasing an allocation restores
//! them.

use std::collections::BTreeMap;

use harmony_rsl::schema::{LinkDecl, NodeDecl, Statement};
use serde::{Deserialize, Serialize};

use crate::error::ResourceError;

/// Mutable per-node state: the declaration plus what is currently free.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct NodeState {
    /// The published declaration (capacity).
    pub decl: NodeDecl,
    /// Megabytes not yet reserved.
    pub free_memory: f64,
    /// Number of tasks currently assigned to this node. Under the default
    /// processor-sharing contention model, `k` tasks each run at `1/k` of
    /// the node's speed.
    pub tasks: u32,
    /// Total reference-machine CPU seconds of work currently assigned
    /// (informational; used by fragmentation metrics and benches).
    pub assigned_seconds: f64,
    /// Number of committed *exclusive* (dedicated) bindings on this node.
    /// While positive, the matcher refuses to place anything else here.
    pub exclusive: u32,
}

impl NodeState {
    fn new(decl: NodeDecl) -> Self {
        NodeState { free_memory: decl.memory, decl, tasks: 0, assigned_seconds: 0.0, exclusive: 0 }
    }

    /// Megabytes currently reserved.
    pub fn used_memory(&self) -> f64 {
        self.decl.memory - self.free_memory
    }

    /// Fraction of memory in use, in `[0, 1]`.
    pub fn memory_utilization(&self) -> f64 {
        if self.decl.memory <= 0.0 {
            0.0
        } else {
            self.used_memory() / self.decl.memory
        }
    }
}

/// Mutable per-link state.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LinkState {
    /// The published declaration (capacity).
    pub decl: LinkDecl,
    /// Mbit/s not yet reserved.
    pub free_bandwidth: f64,
}

impl LinkState {
    fn new(decl: LinkDecl) -> Self {
        LinkState { free_bandwidth: decl.bandwidth, decl }
    }

    /// Mbit/s currently reserved.
    pub fn used_bandwidth(&self) -> f64 {
        self.decl.bandwidth - self.free_bandwidth
    }
}

fn link_key(a: &str, b: &str) -> (String, String) {
    if a <= b {
        (a.to_owned(), b.to_owned())
    } else {
        (b.to_owned(), a.to_owned())
    }
}

/// The cluster: all published nodes and links, with live capacity counters.
///
/// # Examples
///
/// ```
/// use harmony_resources::Cluster;
/// use harmony_rsl::schema::parse_statements;
///
/// let stmts = parse_statements(
///     "harmonyNode a {speed 1.0} {memory 256}\n\
///      harmonyNode b {speed 2.0} {memory 128}\n\
///      harmonyLink a b {bandwidth 320}",
/// )?;
/// let cluster = Cluster::from_statements(&stmts)?;
/// assert_eq!(cluster.len(), 2);
/// assert!(cluster.link("a", "b").is_some());
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct Cluster {
    nodes: BTreeMap<String, NodeState>,
    links: BTreeMap<(String, String), LinkState>,
}

impl Cluster {
    /// Creates an empty cluster.
    pub fn new() -> Self {
        Self::default()
    }

    /// Builds a cluster from parsed RSL statements, ignoring bundles.
    ///
    /// # Errors
    ///
    /// [`ResourceError::DuplicateNode`] on repeated node names and
    /// [`ResourceError::UnknownNode`] when a link references an undeclared
    /// node.
    pub fn from_statements(stmts: &[Statement]) -> Result<Self, ResourceError> {
        let mut cluster = Cluster::new();
        for s in stmts {
            match s {
                Statement::Node(decl) => cluster.add_node(decl.clone())?,
                Statement::Link(decl) => cluster.add_link(decl.clone())?,
                Statement::Bundle(_) => {}
            }
        }
        Ok(cluster)
    }

    /// Parses RSL text and builds a cluster from it.
    ///
    /// # Errors
    ///
    /// RSL parse errors (wrapped) plus the conditions of
    /// [`Cluster::from_statements`].
    pub fn from_rsl(src: &str) -> Result<Self, ResourceError> {
        let stmts = harmony_rsl::schema::parse_statements(src)
            .map_err(|e| ResourceError::Rsl(e.to_string()))?;
        Self::from_statements(&stmts)
    }

    /// Publishes a node.
    ///
    /// # Errors
    ///
    /// [`ResourceError::DuplicateNode`] when the name is already taken.
    pub fn add_node(&mut self, decl: NodeDecl) -> Result<(), ResourceError> {
        if self.nodes.contains_key(&decl.name) {
            return Err(ResourceError::DuplicateNode { name: decl.name });
        }
        self.nodes.insert(decl.name.clone(), NodeState::new(decl));
        Ok(())
    }

    /// Publishes a link. Both endpoints must already be published.
    ///
    /// # Errors
    ///
    /// [`ResourceError::UnknownNode`] when an endpoint is missing.
    pub fn add_link(&mut self, decl: LinkDecl) -> Result<(), ResourceError> {
        for end in [&decl.a, &decl.b] {
            if !self.nodes.contains_key(end) {
                return Err(ResourceError::UnknownNode { name: end.clone() });
            }
        }
        self.links.insert(link_key(&decl.a, &decl.b), LinkState::new(decl));
        Ok(())
    }

    /// Removes a node (e.g. it left the metacomputer). Links touching it
    /// are removed too. Returns the removed state.
    pub fn remove_node(&mut self, name: &str) -> Option<NodeState> {
        let state = self.nodes.remove(name)?;
        self.links.retain(|(a, b), _| a != name && b != name);
        Some(state)
    }

    /// Number of published nodes.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// True when no nodes are published.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Looks up a node by name.
    pub fn node(&self, name: &str) -> Option<&NodeState> {
        self.nodes.get(name)
    }

    /// Mutable access to a node (used by the allocator).
    pub(crate) fn node_mut(&mut self, name: &str) -> Option<&mut NodeState> {
        self.nodes.get_mut(name)
    }

    /// Looks up the link between two nodes (order-insensitive).
    pub fn link(&self, a: &str, b: &str) -> Option<&LinkState> {
        self.links.get(&link_key(a, b))
    }

    /// Mutable access to a link (used by the allocator).
    pub(crate) fn link_mut(&mut self, a: &str, b: &str) -> Option<&mut LinkState> {
        self.links.get_mut(&link_key(a, b))
    }

    /// Iterates over nodes in name order.
    pub fn nodes(&self) -> impl Iterator<Item = &NodeState> {
        self.nodes.values()
    }

    /// Iterates over links.
    pub fn links(&self) -> impl Iterator<Item = &LinkState> {
        self.links.values()
    }

    /// Finds a node by its published hostname (falls back to node name).
    pub fn node_by_hostname(&self, hostname: &str) -> Option<&NodeState> {
        self.nodes.values().find(|n| n.decl.hostname == hostname || n.decl.name == hostname)
    }

    /// Total free memory across all nodes (MB).
    pub fn total_free_memory(&self) -> f64 {
        self.nodes.values().map(|n| n.free_memory).sum()
    }

    /// Total published memory across all nodes (MB).
    pub fn total_memory(&self) -> f64 {
        self.nodes.values().map(|n| n.decl.memory).sum()
    }

    /// Total tasks assigned across all nodes.
    pub fn total_tasks(&self) -> u32 {
        self.nodes.values().map(|n| n.tasks).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cluster3() -> Cluster {
        let mut c = Cluster::new();
        c.add_node(NodeDecl::new("a", 1.0, 256.0)).unwrap();
        c.add_node(NodeDecl::new("b", 2.0, 128.0)).unwrap();
        c.add_node(NodeDecl::new("c", 0.5, 64.0)).unwrap();
        c.add_link(LinkDecl::new("a", "b", 320.0)).unwrap();
        c.add_link(LinkDecl::new("b", "c", 100.0)).unwrap();
        c
    }

    #[test]
    fn add_and_query_nodes() {
        let c = cluster3();
        assert_eq!(c.len(), 3);
        assert!(!c.is_empty());
        assert_eq!(c.node("a").unwrap().decl.speed, 1.0);
        assert_eq!(c.node("b").unwrap().free_memory, 128.0);
        assert!(c.node("zz").is_none());
        assert_eq!(c.total_memory(), 448.0);
        assert_eq!(c.total_free_memory(), 448.0);
        assert_eq!(c.total_tasks(), 0);
    }

    #[test]
    fn duplicate_node_rejected() {
        let mut c = cluster3();
        let err = c.add_node(NodeDecl::new("a", 1.0, 1.0)).unwrap_err();
        assert!(matches!(err, ResourceError::DuplicateNode { .. }));
    }

    #[test]
    fn link_requires_endpoints() {
        let mut c = Cluster::new();
        c.add_node(NodeDecl::new("a", 1.0, 1.0)).unwrap();
        let err = c.add_link(LinkDecl::new("a", "ghost", 1.0)).unwrap_err();
        assert!(matches!(err, ResourceError::UnknownNode { .. }));
    }

    #[test]
    fn links_are_order_insensitive() {
        let c = cluster3();
        assert!(c.link("a", "b").is_some());
        assert!(c.link("b", "a").is_some());
        assert!(c.link("a", "c").is_none());
    }

    #[test]
    fn remove_node_drops_links() {
        let mut c = cluster3();
        assert!(c.remove_node("b").is_some());
        assert!(c.link("a", "b").is_none());
        assert!(c.link("b", "c").is_none());
        assert_eq!(c.len(), 2);
        assert!(c.remove_node("b").is_none());
    }

    #[test]
    fn hostname_lookup() {
        let mut c = Cluster::new();
        c.add_node(NodeDecl::new("n1", 1.0, 64.0).with_hostname("harmony.cs.umd.edu")).unwrap();
        assert!(c.node_by_hostname("harmony.cs.umd.edu").is_some());
        assert!(c.node_by_hostname("n1").is_some());
        assert!(c.node_by_hostname("other").is_none());
    }

    #[test]
    fn from_rsl_builds_cluster() {
        let c = Cluster::from_rsl(&harmony_rsl::listings::sp2_cluster(8)).unwrap();
        assert_eq!(c.len(), 8);
        assert_eq!(c.links().count(), 28);
        assert_eq!(c.node("node00").unwrap().decl.memory, 256.0);
        assert_eq!(c.link("node00", "node07").unwrap().decl.bandwidth, 320.0);
    }

    #[test]
    fn utilization_math() {
        let mut c = cluster3();
        let node = c.node_mut("a").unwrap();
        node.free_memory = 192.0;
        assert_eq!(node.used_memory(), 64.0);
        assert_eq!(node.memory_utilization(), 0.25);
        let zero = NodeState::new(NodeDecl::new("z", 1.0, 0.0));
        assert_eq!(zero.memory_utilization(), 0.0);
    }
}
