//! Error types for the resource layer.

use std::fmt;

/// Errors from cluster construction, matching, and allocation.
#[derive(Debug, Clone, PartialEq)]
pub enum ResourceError {
    /// A node with this name is already published.
    DuplicateNode {
        /// The duplicated node name.
        name: String,
    },
    /// A link or allocation referenced an unpublished node.
    UnknownNode {
        /// The missing node name.
        name: String,
    },
    /// An RSL parse or evaluation error (stringified to keep the RSL error
    /// type out of this crate's public API).
    Rsl(String),
    /// No assignment of cluster nodes satisfies the option's requirements.
    NoMatch {
        /// Human-readable reason from the matcher (which requirement failed
        /// first).
        reason: String,
    },
    /// An allocation double-commit or double-release was attempted.
    AllocationState {
        /// Description of the misuse.
        message: String,
    },
}

impl fmt::Display for ResourceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ResourceError::DuplicateNode { name } => {
                write!(f, "node `{name}` is already published")
            }
            ResourceError::UnknownNode { name } => write!(f, "unknown node `{name}`"),
            ResourceError::Rsl(msg) => write!(f, "rsl error: {msg}"),
            ResourceError::NoMatch { reason } => write!(f, "no match: {reason}"),
            ResourceError::AllocationState { message } => {
                write!(f, "allocation state error: {message}")
            }
        }
    }
}

impl std::error::Error for ResourceError {}

impl From<harmony_rsl::RslError> for ResourceError {
    fn from(e: harmony_rsl::RslError) -> Self {
        ResourceError::Rsl(e.to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn displays_are_nonempty() {
        let cases = vec![
            ResourceError::DuplicateNode { name: "a".into() },
            ResourceError::UnknownNode { name: "b".into() },
            ResourceError::Rsl("bad".into()),
            ResourceError::NoMatch { reason: "not enough memory".into() },
            ResourceError::AllocationState { message: "double release".into() },
        ];
        for e in cases {
            assert!(!e.to_string().is_empty());
            let _: &dyn std::error::Error = &e;
        }
    }

    #[test]
    fn converts_from_rsl_error() {
        let e: ResourceError = harmony_rsl::RslError::DivideByZero.into();
        assert!(matches!(e, ResourceError::Rsl(_)));
    }
}
