//! Allocations: the concrete resources Harmony grants to one option of one
//! application instance.
//!
//! An [`Allocation`] names which cluster nodes were bound to each node
//! requirement (with per-replica indexes), how much memory each binding
//! reserved, and which links carry the option's bandwidth. Committing an
//! allocation decrements the cluster's free counters; releasing restores
//! them.

use harmony_rsl::expr::MapEnv;
use harmony_rsl::Value;
use serde::{Deserialize, Serialize};

use crate::cluster::Cluster;
use crate::error::ResourceError;

/// One node requirement instance bound to a concrete cluster node.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AllocatedNode {
    /// Local requirement name from the option (`server`, `client`,
    /// `worker`).
    pub req: String,
    /// Replica index (0-based) for replicated requirements.
    pub index: u32,
    /// The cluster node that was bound.
    pub node: String,
    /// Megabytes reserved on that node.
    pub memory: f64,
    /// Reference-machine CPU seconds this binding will consume over the
    /// job's life.
    pub seconds: f64,
    /// True when the binding holds the node exclusively (the requirement
    /// carried a `dedicated` tag): no other allocation may share the node.
    #[serde(default)]
    pub exclusive: bool,
}

/// A link binding between two allocated nodes.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AllocatedLink {
    /// First endpoint (cluster node name).
    pub a: String,
    /// Second endpoint (cluster node name).
    pub b: String,
    /// Mbit/s reserved.
    pub bandwidth: f64,
}

/// The set of concrete resources granted to one option choice.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct Allocation {
    /// Node bindings in requirement order (replicas consecutive).
    pub nodes: Vec<AllocatedNode>,
    /// Link bindings.
    pub links: Vec<AllocatedLink>,
    /// Variable bindings the match was computed under (e.g.
    /// `workerNodes = 4`).
    pub variables: Vec<(String, i64)>,
}

impl Allocation {
    /// All bindings for a given requirement name.
    pub fn bindings(&self, req: &str) -> Vec<&AllocatedNode> {
        self.nodes.iter().filter(|n| n.req == req).collect()
    }

    /// The first binding for a requirement name.
    pub fn binding(&self, req: &str) -> Option<&AllocatedNode> {
        self.nodes.iter().find(|n| n.req == req)
    }

    /// Total memory reserved across all bindings (MB).
    pub fn total_memory(&self) -> f64 {
        self.nodes.iter().map(|n| n.memory).sum()
    }

    /// Total reference-machine CPU seconds across all bindings.
    pub fn total_seconds(&self) -> f64 {
        self.nodes.iter().map(|n| n.seconds).sum()
    }

    /// Total bandwidth reserved across all links (Mbit/s).
    pub fn total_bandwidth(&self) -> f64 {
        self.links.iter().map(|l| l.bandwidth).sum()
    }

    /// Number of distinct cluster nodes used.
    pub fn distinct_nodes(&self) -> usize {
        let mut names: Vec<&str> = self.nodes.iter().map(|n| n.node.as_str()).collect();
        names.sort_unstable();
        names.dedup();
        names.len()
    }

    /// Builds the evaluation environment this allocation induces: the
    /// option's variables plus, for each requirement's first binding,
    /// `<req>.memory`, `<req>.seconds`, `<req>.node`, and `<req>.count`.
    ///
    /// This is the environment in which parameterized tags like Figure 3's
    /// `{44 + (client.memory > 24 ? 24 : client.memory) - 17}` are
    /// evaluated after matching.
    pub fn env(&self) -> MapEnv {
        let mut env = MapEnv::new();
        for (name, v) in &self.variables {
            env.set(name.clone(), Value::Int(*v));
        }
        let mut seen: Vec<&str> = Vec::new();
        for n in &self.nodes {
            if seen.contains(&n.req.as_str()) {
                continue;
            }
            seen.push(&n.req);
            env.set(format!("{}.memory", n.req), Value::Float(n.memory));
            env.set(format!("{}.seconds", n.req), Value::Float(n.seconds));
            env.set(format!("{}.node", n.req), Value::Str(n.node.clone()));
            env.set(format!("{}.count", n.req), Value::Int(self.bindings(&n.req).len() as i64));
        }
        env
    }
}

impl Cluster {
    /// Commits an allocation: reserves memory and bandwidth, and registers
    /// one task per node binding.
    ///
    /// # Errors
    ///
    /// [`ResourceError::UnknownNode`] when a binding references an
    /// unpublished node or link. On error the cluster is left unchanged.
    pub fn commit(&mut self, alloc: &Allocation) -> Result<(), ResourceError> {
        // Validate first so failure cannot leave partial state.
        for n in &alloc.nodes {
            if self.node(&n.node).is_none() {
                return Err(ResourceError::UnknownNode { name: n.node.clone() });
            }
        }
        for l in &alloc.links {
            if l.a != l.b && self.link(&l.a, &l.b).is_none() {
                return Err(ResourceError::UnknownNode { name: format!("link {}-{}", l.a, l.b) });
            }
        }
        for n in &alloc.nodes {
            let state = self.node_mut(&n.node).expect("validated above");
            state.free_memory -= n.memory;
            state.tasks += 1;
            state.assigned_seconds += n.seconds;
            if n.exclusive {
                state.exclusive += 1;
            }
        }
        for l in &alloc.links {
            if l.a == l.b {
                continue; // intra-node traffic is free
            }
            let state = self.link_mut(&l.a, &l.b).expect("validated above");
            state.free_bandwidth -= l.bandwidth;
        }
        Ok(())
    }

    /// Releases a previously committed allocation, restoring capacity.
    ///
    /// # Errors
    ///
    /// [`ResourceError::UnknownNode`] when a binding references a node that
    /// has since been removed (capacity for the remaining bindings is still
    /// restored in that case — the error reports the first missing node).
    pub fn release(&mut self, alloc: &Allocation) -> Result<(), ResourceError> {
        let mut first_missing: Option<String> = None;
        for n in &alloc.nodes {
            match self.node_mut(&n.node) {
                Some(state) => {
                    state.free_memory += n.memory;
                    state.tasks = state.tasks.saturating_sub(1);
                    state.assigned_seconds = (state.assigned_seconds - n.seconds).max(0.0);
                    if n.exclusive {
                        state.exclusive = state.exclusive.saturating_sub(1);
                    }
                }
                None => {
                    first_missing.get_or_insert_with(|| n.node.clone());
                }
            }
        }
        for l in &alloc.links {
            if l.a == l.b {
                continue;
            }
            match self.link_mut(&l.a, &l.b) {
                Some(state) => state.free_bandwidth += l.bandwidth,
                None => {
                    first_missing.get_or_insert_with(|| format!("link {}-{}", l.a, l.b));
                }
            }
        }
        match first_missing {
            Some(name) => Err(ResourceError::UnknownNode { name }),
            None => Ok(()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use harmony_rsl::expr::Env;
    use harmony_rsl::schema::{LinkDecl, NodeDecl};

    fn cluster() -> Cluster {
        let mut c = Cluster::new();
        c.add_node(NodeDecl::new("a", 1.0, 256.0)).unwrap();
        c.add_node(NodeDecl::new("b", 1.0, 128.0)).unwrap();
        c.add_link(LinkDecl::new("a", "b", 320.0)).unwrap();
        c
    }

    fn alloc() -> Allocation {
        Allocation {
            nodes: vec![
                AllocatedNode {
                    req: "server".into(),
                    index: 0,
                    node: "a".into(),
                    memory: 20.0,
                    seconds: 42.0,
                    exclusive: false,
                },
                AllocatedNode {
                    req: "client".into(),
                    index: 0,
                    node: "b".into(),
                    memory: 2.0,
                    seconds: 1.0,
                    exclusive: false,
                },
            ],
            links: vec![AllocatedLink { a: "a".into(), b: "b".into(), bandwidth: 2.0 }],
            variables: vec![("workerNodes".into(), 4)],
        }
    }

    #[test]
    fn commit_and_release_round_trip() {
        let mut c = cluster();
        let a = alloc();
        c.commit(&a).unwrap();
        assert_eq!(c.node("a").unwrap().free_memory, 236.0);
        assert_eq!(c.node("a").unwrap().tasks, 1);
        assert_eq!(c.node("a").unwrap().assigned_seconds, 42.0);
        assert_eq!(c.node("b").unwrap().free_memory, 126.0);
        assert_eq!(c.link("a", "b").unwrap().free_bandwidth, 318.0);
        c.release(&a).unwrap();
        assert_eq!(c.node("a").unwrap().free_memory, 256.0);
        assert_eq!(c.node("a").unwrap().tasks, 0);
        assert_eq!(c.link("a", "b").unwrap().free_bandwidth, 320.0);
    }

    #[test]
    fn commit_unknown_node_leaves_cluster_unchanged() {
        let mut c = cluster();
        let mut a = alloc();
        a.nodes[1].node = "ghost".into();
        let before = format!("{c:?}");
        assert!(c.commit(&a).is_err());
        assert_eq!(format!("{c:?}"), before);
    }

    #[test]
    fn intra_node_links_are_free() {
        let mut c = cluster();
        let a = Allocation {
            nodes: vec![],
            links: vec![AllocatedLink { a: "a".into(), b: "a".into(), bandwidth: 99.0 }],
            variables: vec![],
        };
        c.commit(&a).unwrap();
        assert_eq!(c.link("a", "b").unwrap().free_bandwidth, 320.0);
        c.release(&a).unwrap();
    }

    #[test]
    fn release_survives_removed_node() {
        let mut c = cluster();
        let a = alloc();
        c.commit(&a).unwrap();
        c.remove_node("b");
        let err = c.release(&a).unwrap_err();
        assert!(matches!(err, ResourceError::UnknownNode { .. }));
        // Node `a` was still restored.
        assert_eq!(c.node("a").unwrap().free_memory, 256.0);
    }

    #[test]
    fn aggregate_accessors() {
        let a = alloc();
        assert_eq!(a.total_memory(), 22.0);
        assert_eq!(a.total_seconds(), 43.0);
        assert_eq!(a.total_bandwidth(), 2.0);
        assert_eq!(a.distinct_nodes(), 2);
        assert_eq!(a.binding("server").unwrap().node, "a");
        assert_eq!(a.bindings("client").len(), 1);
        assert!(a.binding("ghost").is_none());
    }

    #[test]
    fn env_exposes_paper_names() {
        let a = alloc();
        let env = a.env();
        assert_eq!(env.lookup("client.memory"), Some(Value::Float(2.0)));
        assert_eq!(env.lookup("server.seconds"), Some(Value::Float(42.0)));
        assert_eq!(env.lookup("server.node"), Some(Value::Str("a".into())));
        assert_eq!(env.lookup("client.count"), Some(Value::Int(1)));
        assert_eq!(env.lookup("workerNodes"), Some(Value::Int(4)));
        // The Figure 3 DS bandwidth expression evaluates in this env.
        let bw = harmony_rsl::expr::eval_str(
            "44 + (client.memory > 24 ? 24 : client.memory) - 17",
            &env,
        )
        .unwrap();
        assert_eq!(bw.as_f64().unwrap(), 29.0);
    }

    #[test]
    fn tasks_saturate_at_zero_on_double_release() {
        let mut c = cluster();
        let a = alloc();
        c.commit(&a).unwrap();
        c.release(&a).unwrap();
        // A second release is a misuse but must not underflow.
        let _ = c.release(&a);
        assert_eq!(c.node("a").unwrap().tasks, 0);
        assert!(c.node("a").unwrap().assigned_seconds >= 0.0);
    }
}
