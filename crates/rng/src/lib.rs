//! # Harmony rng
//!
//! The one place seeded randomness is constructed. Two independent copies
//! of the same machinery used to live in the tree — the optimizer's
//! private `splitmix64` sub-seeding and the simulator's `SimRng`
//! distributions — and keeping them separate invited exactly the bug
//! class determinism tests exist to catch: two "identical" streams
//! drifting apart after an edit to one of them. Both now build on this
//! crate, and the original streams are pinned by unit tests against
//! inline copies of the old code.
//!
//! * [`splitmix64`] — the finalizer from Steele et al.'s SplitMix,
//!   used to decorrelate related seeds;
//! * [`sub_seed`] / [`stream_rng`] — domain-separated sub-streams: a
//!   `(seed, domain, index)` triple gives an independent stream however
//!   many draws its siblings burn;
//! * [`SeededRng`] — the workload distributions (uniform, exponential,
//!   perturbation, Bernoulli, shuffle) over a seeded PRNG.
//!
//! # Examples
//!
//! ```
//! use harmony_rng::{stream_rng, SeededRng};
//! use rand::Rng;
//!
//! // Equal triples give equal streams; any component change decorrelates.
//! let a: u64 = stream_rng(7, 0x1234, 0).gen();
//! let b: u64 = stream_rng(7, 0x1234, 0).gen();
//! let c: u64 = stream_rng(7, 0x1234, 1).gen();
//! assert_eq!(a, b);
//! assert_ne!(a, c);
//!
//! let mut r = SeededRng::seed(42);
//! let x = r.uniform(0.0, 1.0);
//! assert!((0.0..1.0).contains(&x));
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// The SplitMix64 finalizer: a bijective avalanche over `u64`. Nearby
/// inputs (`seed`, `seed ^ 1`, …) map to statistically unrelated outputs,
/// which is what makes the [`sub_seed`] composition safe.
pub fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

/// Derives the seed of the `(domain, index)` sub-stream of `seed`.
///
/// `domain` separates *kinds* of randomness (an optimizer's start picks
/// vs its proposal walk; a schedule generator's op kinds vs its arrival
/// times); `index` separates *instances* within a kind (annealing chains,
/// client slots). Two applications of [`splitmix64`] keep the stream
/// independent of how the caller numbers domains and indexes.
pub fn sub_seed(seed: u64, domain: u64, index: u64) -> u64 {
    splitmix64(splitmix64(seed ^ domain) ^ index)
}

/// A `StdRng` positioned at the start of the `(domain, index)` sub-stream
/// of `seed`. However many draws one sub-stream burns, every other
/// sub-stream is untouched — determinism tests can pin each independently.
pub fn stream_rng(seed: u64, domain: u64, index: u64) -> StdRng {
    StdRng::seed_from_u64(sub_seed(seed, domain, index))
}

/// A seeded random source with the distributions workloads use.
///
/// This is the implementation behind `harmony_sim::SimRng` (re-exported
/// there under its historical name); equal seeds give equal streams, and
/// the streams are pinned to the pre-extraction `SimRng` by tests below.
#[derive(Debug, Clone)]
pub struct SeededRng {
    rng: StdRng,
}

impl SeededRng {
    /// Creates a source from a seed; equal seeds give equal streams.
    pub fn seed(seed: u64) -> Self {
        SeededRng { rng: StdRng::seed_from_u64(seed) }
    }

    /// Creates a source on the `(domain, index)` sub-stream of `seed`
    /// (see [`sub_seed`]).
    pub fn stream(seed: u64, domain: u64, index: u64) -> Self {
        SeededRng { rng: stream_rng(seed, domain, index) }
    }

    /// A raw 64-bit draw (weighted-choice helpers and hand-rolled
    /// distributions build on this).
    pub fn bits(&mut self) -> u64 {
        self.rng.gen()
    }

    /// Uniform in `[lo, hi)`.
    pub fn uniform(&mut self, lo: f64, hi: f64) -> f64 {
        if hi <= lo {
            return lo;
        }
        self.rng.gen_range(lo..hi)
    }

    /// Uniform integer in `[lo, hi]`.
    pub fn uniform_int(&mut self, lo: i64, hi: i64) -> i64 {
        if hi <= lo {
            return lo;
        }
        self.rng.gen_range(lo..=hi)
    }

    /// Exponential with the given mean (inter-arrival times).
    pub fn exponential(&mut self, mean: f64) -> f64 {
        let u: f64 = self.rng.gen_range(f64::EPSILON..1.0);
        -mean * u.ln()
    }

    /// Multiplicative perturbation: `base * uniform(1-frac, 1+frac)` —
    /// the "similar, but randomly perturbed" query pattern of §6.
    pub fn perturb(&mut self, base: f64, frac: f64) -> f64 {
        base * self.uniform(1.0 - frac, 1.0 + frac)
    }

    /// Bernoulli trial.
    pub fn chance(&mut self, p: f64) -> bool {
        self.rng.gen::<f64>() < p.clamp(0.0, 1.0)
    }

    /// Fisher–Yates shuffle.
    pub fn shuffle<T>(&mut self, items: &mut [T]) {
        for i in (1..items.len()).rev() {
            let j = self.rng.gen_range(0..=i);
            items.swap(i, j);
        }
    }

    /// Picks an index with probability proportional to its weight. Zero
    /// total weight picks index 0.
    pub fn weighted(&mut self, weights: &[u32]) -> usize {
        let total: u64 = weights.iter().map(|&w| u64::from(w)).sum();
        if total == 0 {
            return 0;
        }
        let mut draw = self.bits() % total;
        for (i, &w) in weights.iter().enumerate() {
            let w = u64::from(w);
            if draw < w {
                return i;
            }
            draw -= w;
        }
        weights.len() - 1
    }
}

pub mod fnv {
    //! Shared FNV-1a 64 fingerprinting.
    //!
    //! Two copies of this fold used to live in `harmony-harness` (the
    //! world's observable-sequence fingerprint and the recovery suite's
    //! persisted-state fingerprint); both now build on this module, and
    //! `harmony-mc` fingerprints canonical states with the same
    //! primitives, so artifacts stay comparable across crates. FNV-1a is
    //! chosen over a cryptographic hash because these fingerprints are
    //! determinism checks, not security boundaries, and FNV keeps the
    //! fold allocation-free.

    /// The FNV-1a 64 offset basis (the hash of the empty input).
    pub const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    /// The FNV-1a 64 prime.
    pub const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

    /// One-shot FNV-1a 64 over a byte slice.
    pub fn fnv1a_64(bytes: &[u8]) -> u64 {
        let mut h = Fnv64::new();
        h.write_bytes(bytes);
        h.finish()
    }

    /// An incremental FNV-1a 64 fold with the field conventions the
    /// harness established: integers and floats fold as their 8
    /// little-endian bytes, strings fold with a `0xff` terminator so
    /// `"ab"+"c"` and `"a"+"bc"` hash differently.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct Fnv64 {
        state: u64,
    }

    impl Default for Fnv64 {
        fn default() -> Self {
            Self::new()
        }
    }

    impl Fnv64 {
        /// Starts a fold at the offset basis.
        pub fn new() -> Self {
            Fnv64 { state: FNV_OFFSET }
        }

        /// Resumes a fold from a previously finished state (the harness
        /// threads one fingerprint through an entire run).
        pub fn resume(state: u64) -> Self {
            Fnv64 { state }
        }

        /// Folds raw bytes.
        pub fn write_bytes(&mut self, bytes: &[u8]) {
            for &b in bytes {
                self.state ^= u64::from(b);
                self.state = self.state.wrapping_mul(FNV_PRIME);
            }
        }

        /// Folds a `u64` as 8 little-endian bytes.
        pub fn write_u64(&mut self, x: u64) {
            self.write_bytes(&x.to_le_bytes());
        }

        /// Folds an `f64` by its bit pattern (so `-0.0 != 0.0` and NaNs
        /// are distinguishable — fingerprints must not normalize floats).
        pub fn write_f64(&mut self, x: f64) {
            self.write_u64(x.to_bits());
        }

        /// Folds a string plus the `0xff` separator.
        pub fn write_str(&mut self, s: &str) {
            self.write_bytes(s.as_bytes());
            self.write_bytes(&[0xff]);
        }

        /// The current hash value. The fold can continue afterwards.
        pub fn finish(&self) -> u64 {
            self.state
        }
    }

    #[cfg(test)]
    mod tests {
        use super::*;

        /// The harness's original private fold, verbatim, so the shared
        /// module provably computes the same hashes the pre-extraction
        /// artifacts recorded.
        fn old_fold_bytes(h: &mut u64, bytes: &[u8]) {
            for &b in bytes {
                *h ^= u64::from(b);
                *h = h.wrapping_mul(0x0000_0100_0000_01b3);
            }
        }

        #[test]
        fn empty_input_hashes_to_the_offset_basis() {
            assert_eq!(fnv1a_64(b""), FNV_OFFSET);
            assert_eq!(Fnv64::new().finish(), FNV_OFFSET);
        }

        #[test]
        fn known_vectors_pin_the_parameters() {
            // Standard FNV-1a 64 test vectors (draft-eastlake-fnv).
            assert_eq!(fnv1a_64(b"a"), 0xaf63_dc4c_8601_ec8c);
            assert_eq!(fnv1a_64(b"foobar"), 0x8594_4171_f739_67e8);
            assert_eq!(fnv1a_64(b"chongo was here!\n"), 0x4681_0940_eff5_f915);
        }

        #[test]
        fn incremental_fold_matches_the_old_harness_copy() {
            let samples: &[&[u8]] = &[b"", b"x", b"startup bag.1", b"decision", &[0u8, 255, 7]];
            for chunks in samples.windows(3) {
                let mut old = 0xcbf2_9ce4_8422_2325u64;
                let mut new = Fnv64::new();
                for c in chunks {
                    old_fold_bytes(&mut old, c);
                    new.write_bytes(c);
                }
                assert_eq!(new.finish(), old);
            }
        }

        #[test]
        fn field_helpers_match_their_byte_expansions() {
            let mut a = Fnv64::new();
            a.write_u64(0x0123_4567_89ab_cdef);
            a.write_f64(2.5);
            a.write_str("bag.1");
            let mut b = Fnv64::new();
            b.write_bytes(&0x0123_4567_89ab_cdefu64.to_le_bytes());
            b.write_bytes(&2.5f64.to_bits().to_le_bytes());
            b.write_bytes(b"bag.1");
            b.write_bytes(&[0xff]);
            assert_eq!(a.finish(), b.finish());
        }

        #[test]
        fn string_separator_prevents_concatenation_collisions() {
            let mut a = Fnv64::new();
            a.write_str("ab");
            a.write_str("c");
            let mut b = Fnv64::new();
            b.write_str("a");
            b.write_str("bc");
            assert_ne!(a.finish(), b.finish());
        }

        #[test]
        fn resume_continues_a_finished_fold() {
            let mut whole = Fnv64::new();
            whole.write_str("first");
            whole.write_str("second");
            let mut first = Fnv64::new();
            first.write_str("first");
            let mut resumed = Fnv64::resume(first.finish());
            resumed.write_str("second");
            assert_eq!(resumed.finish(), whole.finish());
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The optimizer's original private splitmix64, verbatim, so the
    /// shared function is provably the same stream the annealing chains
    /// were seeded from before the extraction.
    fn old_splitmix64(mut x: u64) -> u64 {
        x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
        x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        x ^ (x >> 31)
    }

    #[test]
    fn splitmix64_matches_the_old_optimizer_copy() {
        for x in [0u64, 1, 42, u64::MAX, 0x5354_4152_5453_4545, 0x5741_4c4b_5345_4544, 0xdead_beef]
        {
            assert_eq!(splitmix64(x), old_splitmix64(x), "x={x:#x}");
        }
        // And a dense sweep for avalanche-path coverage.
        for x in 0..10_000u64 {
            let y = x.wrapping_mul(0x9e37_79b9);
            assert_eq!(splitmix64(y), old_splitmix64(y), "y={y:#x}");
        }
    }

    #[test]
    fn sub_seed_matches_the_old_stream_composition() {
        // The optimizer derived chain streams as
        // `splitmix64(splitmix64(seed ^ STREAM) ^ chain)`.
        const START_STREAM: u64 = 0x5354_4152_5453_4545;
        for seed in [0u64, 9, 123_456_789] {
            for chain in 0..8u64 {
                let old = old_splitmix64(old_splitmix64(seed ^ START_STREAM) ^ chain);
                assert_eq!(sub_seed(seed, START_STREAM, chain), old);
            }
        }
    }

    #[test]
    fn stream_rng_equals_manual_construction() {
        let mut a = stream_rng(7, 0xabcd, 3);
        let mut b = StdRng::seed_from_u64(sub_seed(7, 0xabcd, 3));
        for _ in 0..32 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
    }

    #[test]
    fn streams_are_mutually_independent() {
        let base: Vec<u64> = {
            let mut r = stream_rng(5, 1, 0);
            (0..8).map(|_| r.gen()).collect()
        };
        // Burning draws on one stream leaves a sibling untouched.
        let mut sibling = stream_rng(5, 2, 0);
        for _ in 0..977 {
            let _: u64 = sibling.gen();
        }
        let again: Vec<u64> = {
            let mut r = stream_rng(5, 1, 0);
            (0..8).map(|_| r.gen()).collect()
        };
        assert_eq!(base, again);
        // Different domain or index: different stream.
        let other_domain: Vec<u64> = {
            let mut r = stream_rng(5, 2, 0);
            (0..8).map(|_| r.gen()).collect()
        };
        let other_index: Vec<u64> = {
            let mut r = stream_rng(5, 1, 1);
            (0..8).map(|_| r.gen()).collect()
        };
        assert_ne!(base, other_domain);
        assert_ne!(base, other_index);
    }

    /// The pre-extraction `SimRng`, verbatim, for stream-identity proofs.
    mod old_sim_rng {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};

        pub struct OldSimRng {
            rng: StdRng,
        }

        impl OldSimRng {
            pub fn seed(seed: u64) -> Self {
                OldSimRng { rng: StdRng::seed_from_u64(seed) }
            }

            pub fn uniform(&mut self, lo: f64, hi: f64) -> f64 {
                if hi <= lo {
                    return lo;
                }
                self.rng.gen_range(lo..hi)
            }

            pub fn uniform_int(&mut self, lo: i64, hi: i64) -> i64 {
                if hi <= lo {
                    return lo;
                }
                self.rng.gen_range(lo..=hi)
            }

            pub fn exponential(&mut self, mean: f64) -> f64 {
                let u: f64 = self.rng.gen_range(f64::EPSILON..1.0);
                -mean * u.ln()
            }

            pub fn perturb(&mut self, base: f64, frac: f64) -> f64 {
                base * self.uniform(1.0 - frac, 1.0 + frac)
            }

            pub fn chance(&mut self, p: f64) -> bool {
                self.rng.gen::<f64>() < p.clamp(0.0, 1.0)
            }

            pub fn shuffle<T>(&mut self, items: &mut [T]) {
                for i in (1..items.len()).rev() {
                    let j = self.rng.gen_range(0..=i);
                    items.swap(i, j);
                }
            }
        }
    }

    #[test]
    fn seeded_rng_streams_are_identical_to_the_old_sim_rng() {
        for seed in [0u64, 1, 42, 0xfeed_f00d] {
            let mut new = SeededRng::seed(seed);
            let mut old = old_sim_rng::OldSimRng::seed(seed);
            for round in 0..200 {
                assert_eq!(new.uniform(0.0, 10.0), old.uniform(0.0, 10.0), "round {round}");
                assert_eq!(new.uniform_int(-5, 17), old.uniform_int(-5, 17), "round {round}");
                assert_eq!(new.exponential(3.0), old.exponential(3.0), "round {round}");
                assert_eq!(new.perturb(100.0, 0.2), old.perturb(100.0, 0.2), "round {round}");
                assert_eq!(new.chance(0.3), old.chance(0.3), "round {round}");
                let mut a: Vec<u32> = (0..16).collect();
                let mut b = a.clone();
                new.shuffle(&mut a);
                old.shuffle(&mut b);
                assert_eq!(a, b, "round {round}");
            }
        }
    }

    #[test]
    fn weighted_covers_every_index_and_respects_zeros() {
        let mut r = SeededRng::seed(9);
        let weights = [3u32, 0, 5, 1];
        let mut hits = [0usize; 4];
        for _ in 0..2000 {
            hits[r.weighted(&weights)] += 1;
        }
        assert!(hits[0] > 0 && hits[2] > 0 && hits[3] > 0, "{hits:?}");
        assert_eq!(hits[1], 0, "zero-weight index must never be picked");
        assert_eq!(r.weighted(&[0, 0]), 0, "zero total weight falls back to 0");
        assert_eq!(r.weighted(&[7]), 0);
    }

    #[test]
    fn bits_and_stream_constructor_round_trip() {
        let mut a = SeededRng::stream(11, 0x77, 2);
        let mut b = SeededRng::stream(11, 0x77, 2);
        for _ in 0..16 {
            assert_eq!(a.bits(), b.bits());
        }
    }
}
