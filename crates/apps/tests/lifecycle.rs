//! Application-level integration: every harmonized application from the
//! crate registered against one controller, competing for the same
//! cluster.

use harmony_apps::{BagOfTasks, InfoServer, SimpleParallel};
use harmony_core::{Controller, ControllerConfig};
use harmony_resources::Cluster;
use harmony_rsl::schema::parse_bundle_script;

#[test]
fn all_three_application_kinds_share_one_cluster() {
    let cluster = Cluster::from_rsl(&harmony_rsl::listings::sp2_cluster(8)).unwrap();
    let mut ctl = Controller::new(cluster, ControllerConfig::default());

    // The info server arrives first and takes a big buffer.
    let info = InfoServer::default();
    let (info_id, _) = ctl
        .register(parse_bundle_script(&info.to_bundle("infoserv", &[8, 32, 128])).unwrap())
        .unwrap();
    assert_eq!(ctl.choice(&info_id, "buffer").unwrap().option, "buf128");

    // The fixed four-worker Simple application places on distinct nodes.
    let simple = SimpleParallel::default();
    let (simple_id, _) =
        ctl.register(parse_bundle_script(&simple.to_bundle("simple")).unwrap()).unwrap();
    let simple_alloc = &ctl.choice(&simple_id, "config").unwrap().alloc;
    assert_eq!(simple_alloc.distinct_nodes(), 4);

    // The dedicated bag takes what space-shared capacity remains. The
    // info server and Simple occupy shared nodes; the bag's dedicated
    // workers need idle ones.
    let bag = BagOfTasks::fig4(3);
    let (bag_id, _) = ctl
        .register(
            parse_bundle_script(&bag.to_bundle("bag", &[1, 2, 3, 4, 5, 6, 7, 8], 1.0)).unwrap(),
        )
        .unwrap();
    let bag_choice = ctl.choice(&bag_id, "config").unwrap();
    let bag_nodes: Vec<_> = bag_choice.alloc.nodes.iter().map(|n| &n.node).collect();
    // Dedicated workers landed on nodes nobody else uses.
    for n in &bag_nodes {
        let state = ctl.cluster().node(n).unwrap();
        assert_eq!(state.tasks, 1);
        assert_eq!(state.exclusive, 1);
    }

    // Everyone is placed; the objective is finite.
    assert_eq!(ctl.predicted_response_times().len(), 3);
    assert!(ctl.objective_score().is_finite());

    // Drain in arbitrary order; capacity returns exactly.
    let total = ctl.cluster().total_memory();
    ctl.end(&simple_id).unwrap();
    ctl.end(&bag_id).unwrap();
    ctl.end(&info_id).unwrap();
    assert_eq!(ctl.cluster().total_free_memory(), total);
    assert_eq!(ctl.cluster().total_tasks(), 0);
}

#[test]
fn bag_departure_lets_the_info_server_regrow_its_buffer() {
    // A 2-node cluster with modest memory forces real competition.
    let cluster = Cluster::from_rsl(
        "harmonyNode a {speed 1.0} {memory 160}\nharmonyNode b {speed 1.0} {memory 64}",
    )
    .unwrap();
    let mut ctl = Controller::new(cluster, ControllerConfig::default());
    let info = InfoServer::default();
    let (info_id, _) = ctl
        .register(parse_bundle_script(&info.to_bundle("infoserv", &[8, 32, 64, 128])).unwrap())
        .unwrap();
    assert_eq!(ctl.choice(&info_id, "buffer").unwrap().option, "buf128");

    // A memory hog arrives (needs 140 MB somewhere).
    let hog =
        parse_bundle_script("harmonyBundle hog:1 b { {o {node n {seconds 5} {memory 140}}} }")
            .unwrap();
    let (hog_id, _) = ctl.register(hog).unwrap();
    let shrunk = ctl.choice(&info_id, "buffer").unwrap().option.clone();
    assert_ne!(shrunk, "buf128", "buffer shrank to admit the hog");

    ctl.end(&hog_id).unwrap();
    assert_eq!(
        ctl.choice(&info_id, "buffer").unwrap().option,
        "buf128",
        "buffer regrew after departure"
    );
}
