//! # Harmony apps
//!
//! The "harmonized" applications of "Exposing Application Alternatives":
//!
//! * [`SimpleParallel`] — Figure 2a's fixed four-worker application;
//! * [`BagOfTasks`] — Figure 2b's variable-parallelism bag of tasks, with
//!   pull-based crude load balancing, a communication term that grows
//!   quadratically in total, and measured `performance` curves;
//! * [`InfoServer`] — the §5 persistent application with a tunable
//!   buffer-size knob;
//! * [`run_fig4`] — the Figure 4 online-reconfiguration experiment: jobs
//!   arriving on an eight-processor cluster, the first getting five nodes
//!   (not six), later ones settling into equal partitions.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod bag;
mod fig4;
mod info_server;
mod simple;

pub use bag::{BagOfTasks, BagRun};
pub use fig4::{run_fig4, Fig4Config, Fig4Result, TimelineEntry};
pub use info_server::InfoServer;
pub use simple::SimpleParallel;
