//! The "Simple" application (Figure 2a): a generic parallel application
//! that runs on exactly four processors, 300 reference seconds and 32 MB
//! per worker, with whole-application communication and no choices to
//! make. Its only knob is *whether* it runs — it exists to exercise the
//! fixed-requirement path of the interface.

use serde::{Deserialize, Serialize};

/// The Figure 2a application.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SimpleParallel {
    /// Number of workers (the paper's listing: 4).
    pub workers: u32,
    /// Reference CPU seconds per worker.
    pub seconds_per_worker: f64,
    /// Memory per worker (MB).
    pub memory_mb: f64,
    /// Total communication over the run (MB), endpoint-less — the system
    /// assumes full connectivity.
    pub communication_mb: f64,
}

impl Default for SimpleParallel {
    fn default() -> Self {
        SimpleParallel {
            workers: 4,
            seconds_per_worker: 300.0,
            memory_mb: 32.0,
            communication_mb: 100.0,
        }
    }
}

impl SimpleParallel {
    /// Wall time on `speed`-relative nodes with a link of `mbps` carrying
    /// the communication: compute and transfer overlap worker-parallel
    /// compute, so the run ends at the max of the two.
    pub fn wall_time(&self, speed: f64, mbps: f64) -> f64 {
        let compute = if speed > 0.0 { self.seconds_per_worker / speed } else { f64::INFINITY };
        let transfer = if mbps > 0.0 { self.communication_mb * 8.0 / mbps } else { f64::INFINITY };
        compute.max(transfer)
    }

    /// Exports the Figure 2a bundle.
    pub fn to_bundle(&self, app: &str) -> String {
        format!(
            "harmonyBundle {app}:1 config {{\n\
               {{fixed\n\
                 {{node worker {{replicate {}}} {{seconds {:.0}}} {{memory {:.0}}}}}\n\
                 {{communication {:.0}}}}}\n\
             }}",
            self.workers, self.seconds_per_worker, self.memory_mb, self.communication_mb
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use harmony_rsl::schema::parse_bundle_script;

    #[test]
    fn default_matches_the_listing() {
        let s = SimpleParallel::default();
        assert_eq!(s.workers, 4);
        assert_eq!(s.seconds_per_worker, 300.0);
        assert_eq!(s.memory_mb, 32.0);
    }

    #[test]
    fn wall_time_is_max_of_compute_and_transfer() {
        let s = SimpleParallel::default();
        // Fast link: compute-bound.
        assert_eq!(s.wall_time(1.0, 320.0), 300.0);
        // Fast CPU, slow link: transfer-bound (100 MB × 8 / 4 Mbps = 200 s
        // vs 30 s compute).
        assert_eq!(s.wall_time(10.0, 4.0), 200.0);
        assert!(s.wall_time(0.0, 320.0).is_infinite());
        assert!(s.wall_time(1.0, 0.0).is_infinite());
    }

    #[test]
    fn bundle_round_trips_through_the_parser() {
        let s = SimpleParallel::default();
        let spec = parse_bundle_script(&s.to_bundle("simple")).unwrap();
        let opt = &spec.options[0];
        assert_eq!(opt.nodes[0].count, harmony_rsl::schema::CountSpec::Replicate(4));
        let env = harmony_rsl::expr::MapEnv::new();
        assert_eq!(opt.nodes[0].seconds().unwrap().amount(&env).unwrap(), 300.0);
        assert_eq!(opt.communication.as_ref().unwrap().amount(&env).unwrap(), 100.0);
    }
}
