//! The Figure 4 experiment: online reconfiguration of variable-parallelism
//! applications.
//!
//! "(a) shows the performance of a parallel application and (b) shows the
//! eight-processor configurations chosen by Harmony as new jobs arrive.
//! Note the configuration of five nodes (rather than six) in the first
//! time frame, and the subsequent configurations that optimize for average
//! efficiency by choosing equal partitions for multiple instances of the
//! parallel application, rather than some large and some small."

use harmony_core::{Controller, ControllerConfig, DecisionRecord, InstanceId};
use harmony_resources::Cluster;
use harmony_rsl::schema::parse_bundle_script;
use serde::{Deserialize, Serialize};

use crate::bag::BagOfTasks;

/// Experiment configuration.
#[derive(Debug, Clone)]
pub struct Fig4Config {
    /// Cluster size (the paper: 8 processors).
    pub nodes: usize,
    /// Arrival times of successive bag instances.
    pub arrivals: Vec<f64>,
    /// Optional departure: `(time, arrival index)` of a job that finishes.
    pub departure: Option<(f64, usize)>,
    /// Worker-count choices exported in the bundle.
    pub choices: Vec<usize>,
    /// RNG seed for the task mix.
    pub seed: u64,
    /// Controller configuration.
    pub controller: ControllerConfig,
}

impl Default for Fig4Config {
    fn default() -> Self {
        Fig4Config {
            nodes: 8,
            arrivals: vec![0.0, 300.0, 600.0],
            departure: Some((900.0, 0)),
            choices: vec![1, 2, 3, 4, 5, 6, 7, 8],
            seed: 7,
            controller: ControllerConfig::default(),
        }
    }
}

/// A snapshot of every running instance's worker count.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TimelineEntry {
    /// Event time.
    pub time: f64,
    /// What happened (`arrive bag.2`, `depart bag.1`).
    pub event: String,
    /// `(instance, workers)` for each configured instance, in arrival
    /// order.
    pub configs: Vec<(String, u32)>,
}

impl TimelineEntry {
    /// The worker counts only, in arrival order.
    pub fn workers(&self) -> Vec<u32> {
        self.configs.iter().map(|(_, w)| *w).collect()
    }
}

/// Experiment output.
#[derive(Debug, Clone)]
pub struct Fig4Result {
    /// Figure 4(a): the application's measured running-time curve
    /// `(workers, seconds)`.
    pub curve: Vec<(f64, f64)>,
    /// Figure 4(b): configurations after each arrival/departure.
    pub timeline: Vec<TimelineEntry>,
    /// All controller decisions.
    pub decisions: Vec<DecisionRecord>,
}

fn snapshot(ctl: &Controller, ids: &[InstanceId]) -> Vec<(String, u32)> {
    ids.iter()
        .filter_map(|id| {
            let choice = ctl.choice(id, "config")?;
            let workers = choice
                .vars
                .iter()
                .find(|(k, _)| k == "workerNodes")
                .map(|(_, v)| *v as u32)
                .unwrap_or(choice.alloc.nodes.len() as u32);
            Some((id.to_string(), workers))
        })
        .collect()
}

/// Runs the Figure 4 experiment.
///
/// # Panics
///
/// Panics when the generated bundle fails to parse or an arrival cannot be
/// placed at all — both indicate configuration errors (e.g. zero nodes),
/// not runtime conditions.
pub fn run_fig4(cfg: &Fig4Config) -> Fig4Result {
    let bag = BagOfTasks::fig4(cfg.seed);
    let curve = bag.curve(&cfg.choices, 1.0);
    let bundle_text = bag.to_bundle("bag", &cfg.choices, 1.0);

    let cluster = Cluster::from_rsl(&harmony_rsl::listings::sp2_cluster(cfg.nodes))
        .expect("sp2 cluster RSL is valid");
    let mut ctl = Controller::new(cluster, cfg.controller.clone());

    // Merge arrivals and the optional departure into one event list.
    #[derive(Debug)]
    enum Ev {
        Arrive,
        Depart(usize),
    }
    let mut events: Vec<(f64, Ev)> = cfg.arrivals.iter().map(|&t| (t, Ev::Arrive)).collect();
    if let Some((t, idx)) = cfg.departure {
        events.push((t, Ev::Depart(idx)));
    }
    events.sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap_or(std::cmp::Ordering::Equal));

    let mut ids: Vec<InstanceId> = Vec::new();
    let mut live: Vec<InstanceId> = Vec::new();
    let mut timeline = Vec::new();
    for (t, ev) in events {
        ctl.set_time(t);
        let label = match ev {
            Ev::Arrive => {
                let spec = parse_bundle_script(&bundle_text).expect("generated bundle parses");
                let (id, _) = ctl.register(spec).expect("bag placement");
                ids.push(id.clone());
                live.push(id.clone());
                format!("arrive {id}")
            }
            Ev::Depart(idx) => match ids.get(idx) {
                Some(id) if live.contains(id) => {
                    ctl.end(id).expect("departing instance is registered");
                    live.retain(|x| x != id);
                    format!("depart {id}")
                }
                _ => "depart (no-op)".to_string(),
            },
        };
        timeline.push(TimelineEntry { time: t, event: label, configs: snapshot(&ctl, &live) });
    }

    Fig4Result { curve, timeline, decisions: ctl.decisions().to_vec() }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn first_job_gets_five_nodes_not_six() {
        let cfg = Fig4Config { arrivals: vec![0.0], departure: None, ..Default::default() };
        let r = run_fig4(&cfg);
        assert_eq!(r.timeline.len(), 1);
        assert_eq!(r.timeline[0].workers(), vec![5], "five nodes, not six or eight");
    }

    #[test]
    fn two_jobs_get_equal_partitions() {
        let cfg = Fig4Config { arrivals: vec![0.0, 300.0], departure: None, ..Default::default() };
        let r = run_fig4(&cfg);
        let w = r.timeline[1].workers();
        assert_eq!(w, vec![4, 4], "equal partitions, got {w:?}");
    }

    #[test]
    fn three_jobs_partition_without_starvation() {
        let r = run_fig4(&Fig4Config { departure: None, ..Default::default() });
        let mut w = r.timeline[2].workers();
        assert_eq!(w.iter().sum::<u32>(), 8, "all eight processors used: {w:?}");
        w.sort_unstable();
        assert!(w[0] >= 2, "no job starved: {w:?}");
        assert!(w[2] - w[0] <= 1, "near-equal partitions: {w:?}");
    }

    #[test]
    fn departure_lets_survivors_expand() {
        let r = run_fig4(&Fig4Config::default());
        let before: u32 = r.timeline[2].workers().iter().sum();
        let after = r.timeline[3].workers();
        assert_eq!(r.timeline[3].configs.len(), 2);
        assert_eq!(after, vec![4, 4], "survivors re-expand equally: {after:?}");
        assert_eq!(before, 8);
    }

    #[test]
    fn curve_matches_the_five_node_optimum() {
        let r = run_fig4(&Fig4Config::default());
        let best = r
            .curve
            .iter()
            .min_by(|a, b| a.1.partial_cmp(&b.1).unwrap())
            .map(|(w, _)| *w as usize)
            .unwrap();
        assert_eq!(best, 5);
        assert_eq!(r.curve.len(), 8);
    }

    #[test]
    fn verified_pruned_exhaustive_reproduces_the_paper_shapes() {
        // The whole Figure 4 run under the exhaustive joint optimizer with
        // facts pruning in Verify mode: every decision is computed by both
        // the pruned and the unpruned search, and any divergence would
        // fail the run with `PruningMismatch`.
        use harmony_core::{OptimizerKind, PruningMode};
        let cfg = Fig4Config {
            controller: ControllerConfig {
                optimizer: OptimizerKind::exhaustive(),
                pruning: PruningMode::Verify,
                ..Default::default()
            },
            ..Default::default()
        };
        let r = run_fig4(&cfg);
        assert_eq!(r.timeline[0].workers(), vec![5], "first job still gets five nodes");
        assert_eq!(r.timeline[1].workers(), vec![4, 4], "equal partitions survive pruning");
        assert_eq!(r.timeline[2].workers().iter().sum::<u32>(), 8);
        assert!(!r.decisions.is_empty());
    }

    #[test]
    fn decisions_accumulate_over_the_run() {
        let r = run_fig4(&Fig4Config::default());
        // At least one decision per arrival plus rebalances.
        assert!(r.decisions.len() >= 4, "got {}", r.decisions.len());
        assert!(r.timeline.iter().all(|e| !e.event.is_empty()));
    }
}
