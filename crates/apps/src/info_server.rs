//! An information server with a tunable buffer size — the §5 example of a
//! *persistent* Harmony application: "if an application exports an option
//! to change its buffer size, it needs to periodically read the Harmony
//! variable that indicates the current buffer size (as determined by the
//! Harmony controller), and then update its own state to this size."
//!
//! The server's hit ratio follows a saturating curve in its buffer size;
//! Harmony trades that memory against other applications' needs through
//! the ordinary bundle mechanism (a `variable` axis over buffer sizes).

use serde::{Deserialize, Serialize};

/// The information-server application model.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct InfoServer {
    /// Size of the hot document set (MB): a buffer this large gets ~all
    /// hits.
    pub working_set_mb: f64,
    /// Seconds to serve a request that hits the buffer.
    pub hit_seconds: f64,
    /// Seconds to serve a request that misses (disk fetch).
    pub miss_seconds: f64,
    /// Requests per second offered.
    pub request_rate: f64,
}

impl Default for InfoServer {
    fn default() -> Self {
        InfoServer {
            working_set_mb: 64.0,
            hit_seconds: 0.002,
            miss_seconds: 0.030,
            request_rate: 50.0,
        }
    }
}

impl InfoServer {
    /// Hit ratio for a buffer of `mb` megabytes: a saturating curve
    /// (`mb / (mb + ws/4)`), 0 for an empty buffer, → 1 as the buffer
    /// covers the working set.
    pub fn hit_ratio(&self, mb: f64) -> f64 {
        let mb = mb.max(0.0);
        mb / (mb + self.working_set_mb / 4.0)
    }

    /// Mean service seconds per request at buffer size `mb`.
    pub fn service_seconds(&self, mb: f64) -> f64 {
        let h = self.hit_ratio(mb);
        h * self.hit_seconds + (1.0 - h) * self.miss_seconds
    }

    /// CPU seconds per second of wall time (utilization of one reference
    /// machine) at buffer size `mb`.
    pub fn cpu_load(&self, mb: f64) -> f64 {
        self.request_rate * self.service_seconds(mb)
    }

    /// Exports the bundle: one option per buffer size, each consuming the
    /// buffer's memory and the matching CPU seconds per (100-second
    /// accounting window), with an explicit response-time model.
    pub fn to_bundle(&self, app: &str, buffer_sizes_mb: &[u32]) -> String {
        let options = buffer_sizes_mb
            .iter()
            .map(|&mb| {
                let cpu = self.cpu_load(f64::from(mb)) * 100.0;
                let rt = self.service_seconds(f64::from(mb)) * 1000.0; // ms, as the model value
                format!(
                    "  {{buf{mb}\n    {{node server {{seconds {cpu:.1}}} {{memory {mb}}}}}\n    {{performance {{{rt:.3}}}}}}}",
                )
            })
            .collect::<Vec<_>>()
            .join("\n");
        format!("harmonyBundle {app}:1 buffer {{\n{options}\n}}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use harmony_core::{Controller, ControllerConfig};
    use harmony_resources::Cluster;
    use harmony_rsl::schema::parse_bundle_script;

    #[test]
    fn hit_ratio_saturates() {
        let s = InfoServer::default();
        assert_eq!(s.hit_ratio(0.0), 0.0);
        assert!(s.hit_ratio(16.0) < s.hit_ratio(64.0));
        assert!(s.hit_ratio(64.0) < s.hit_ratio(256.0));
        assert!(s.hit_ratio(10_000.0) > 0.99);
        assert_eq!(s.hit_ratio(-5.0), 0.0, "negative sizes clamp");
    }

    #[test]
    fn bigger_buffers_mean_faster_service_with_diminishing_returns() {
        let s = InfoServer::default();
        let t8 = s.service_seconds(8.0);
        let t64 = s.service_seconds(64.0);
        let t256 = s.service_seconds(256.0);
        assert!(t8 > t64 && t64 > t256);
        // Diminishing returns: the first step saves more than the second.
        assert!((t8 - t64) > (t64 - t256));
    }

    #[test]
    fn bundle_parses_with_one_option_per_size() {
        let s = InfoServer::default();
        let text = s.to_bundle("infoserv", &[8, 16, 32, 64, 128]);
        let spec = parse_bundle_script(&text).unwrap();
        assert_eq!(spec.options.len(), 5);
        assert_eq!(spec.option_names(), vec!["buf8", "buf16", "buf32", "buf64", "buf128"]);
        for opt in &spec.options {
            assert!(opt.performance.is_some());
            assert!(opt.nodes[0].memory().is_some());
        }
    }

    #[test]
    fn harmony_grows_the_buffer_when_memory_is_free_and_shrinks_under_pressure() {
        let s = InfoServer::default();
        let bundle_text = s.to_bundle("infoserv", &[8, 16, 32, 64, 128]);
        let cluster = Cluster::from_rsl("harmonyNode server {speed 1.0} {memory 160}").unwrap();
        let mut ctl = Controller::new(cluster, ControllerConfig::default());
        let (id, _) = ctl.register(parse_bundle_script(&bundle_text).unwrap()).unwrap();
        // Alone, the biggest buffer wins (fastest service).
        assert_eq!(ctl.choice(&id, "buffer").unwrap().option, "buf128");

        // A memory-hungry application arrives; only 32 MB remain, so the
        // controller must shrink the info server's buffer to admit it.
        let hog =
            parse_bundle_script("harmonyBundle hog:1 b { {o {node n {seconds 1} {memory 96}}} }")
                .unwrap();
        let (hog_id, _) = ctl.register(hog).unwrap();
        assert!(ctl.choice(&hog_id, "b").is_some(), "hog admitted");
        let buf = &ctl.choice(&id, "buffer").unwrap().option;
        assert!(["buf8", "buf16", "buf32", "buf64"].contains(&buf.as_str()), "shrunk to {buf}");
        // Departure: the buffer re-grows.
        ctl.end(&hog_id).unwrap();
        assert_eq!(ctl.choice(&id, "buffer").unwrap().option, "buf128");
    }
}
