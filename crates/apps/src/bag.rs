//! The "Bag" application (Figure 2b): a bag-of-tasks parallel program.
//!
//! "The application is iterative, with computation being divided into a set
//! of possibly differently-sized tasks. Each worker process repeatedly
//! requests and obtains tasks from the server, performs the associated
//! computations, returns the results to the server, and requests
//! additional tasks. This method of work distribution allows the
//! application to exploit varying amounts of parallelism, and to perform
//! relatively crude load-balancing on arbitrarily-shaped tasks."
//!
//! [`BagOfTasks::run`] executes that pull-based scheduling for a given
//! worker count and adds a per-worker communication term that grows with
//! the number of peers — which makes *total* bandwidth grow quadratically,
//! as the Figure 2b `communication` tag declares. The measured running
//! times become the `performance` data points of the exported bundle.

use harmony_sim::SimRng;
use serde::{Deserialize, Serialize};

/// The bag-of-tasks application model.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BagOfTasks {
    /// Task sizes in reference-machine seconds.
    pub tasks: Vec<f64>,
    /// Per-worker communication seconds per peer: each worker spends
    /// `exchange_seconds × (workers − 1)` communicating over the run.
    pub exchange_seconds: f64,
    /// Per-worker memory requirement (MB), exported in the bundle.
    pub memory_mb: f64,
}

/// The outcome of one run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BagRun {
    /// Wall-clock completion time (seconds).
    pub makespan: f64,
    /// Per-worker busy time (compute only).
    pub worker_busy: Vec<f64>,
    /// Number of tasks executed (all of them).
    pub tasks_done: usize,
}

impl BagRun {
    /// Load-balance quality: min busy / max busy (1.0 is perfect).
    pub fn balance(&self) -> f64 {
        let max = self.worker_busy.iter().cloned().fold(0.0f64, f64::max);
        let min = self.worker_busy.iter().cloned().fold(f64::INFINITY, f64::min);
        if max <= 0.0 {
            1.0
        } else {
            min / max
        }
    }
}

impl BagOfTasks {
    /// A bag with `n_tasks` tasks of mean size `mean_seconds`, sizes
    /// perturbed ±50 % (arbitrarily-shaped tasks), and the given exchange
    /// cost.
    pub fn generate(n_tasks: usize, mean_seconds: f64, exchange_seconds: f64, seed: u64) -> Self {
        let mut rng = SimRng::seed(seed);
        let tasks = (0..n_tasks).map(|_| rng.perturb(mean_seconds, 0.5)).collect();
        BagOfTasks { tasks, exchange_seconds, memory_mb: 32.0 }
    }

    /// The paper-scale bag used by the Figure 4 experiment: ≈ 1000 total
    /// reference seconds with an exchange cost that makes five workers the
    /// sweet spot (Figure 4b's "five nodes rather than six").
    pub fn fig4(seed: u64) -> Self {
        BagOfTasks::generate(100, 10.0, 40.0, seed)
    }

    /// Total computation across all tasks (reference seconds).
    pub fn total_work(&self) -> f64 {
        self.tasks.iter().sum()
    }

    /// Runs the bag on `workers` identical nodes of the given `speed`
    /// (relative to the reference machine) with pull-based scheduling:
    /// each free worker takes the next task.
    ///
    /// # Panics
    ///
    /// Panics when `workers` is zero or `speed` is not positive.
    pub fn run(&self, workers: usize, speed: f64) -> BagRun {
        assert!(workers > 0, "need at least one worker");
        assert!(speed > 0.0, "speed must be positive");
        let mut finish = vec![0.0f64; workers];
        let mut busy = vec![0.0f64; workers];
        for &task in &self.tasks {
            // The worker that frees up first pulls the task.
            let w = finish
                .iter()
                .enumerate()
                .min_by(|a, b| a.1.partial_cmp(b.1).unwrap_or(std::cmp::Ordering::Equal))
                .map(|(i, _)| i)
                .expect("workers > 0");
            let dt = task / speed;
            finish[w] += dt;
            busy[w] += dt;
        }
        let comm = self.exchange_seconds * (workers.saturating_sub(1)) as f64;
        let makespan = finish.iter().cloned().fold(0.0f64, f64::max) + comm;
        BagRun { makespan, worker_busy: busy, tasks_done: self.tasks.len() }
    }

    /// Measures the running-time curve over the given worker counts — the
    /// data points of the `performance` tag.
    pub fn curve(&self, workers: &[usize], speed: f64) -> Vec<(f64, f64)> {
        workers.iter().map(|&w| (w as f64, self.run(w, speed).makespan)).collect()
    }

    /// The worker count with the smallest measured makespan.
    pub fn best_workers(&self, choices: &[usize], speed: f64) -> usize {
        choices
            .iter()
            .copied()
            .min_by(|&a, &b| {
                self.run(a, speed)
                    .makespan
                    .partial_cmp(&self.run(b, speed).makespan)
                    .unwrap_or(std::cmp::Ordering::Equal)
            })
            .unwrap_or(1)
    }

    /// Exports the Figure 2b bundle for this bag: variable parallelism over
    /// `choices`, per-worker seconds dividing the total work, quadratic
    /// total communication, and the measured performance curve.
    pub fn to_bundle(&self, app: &str, choices: &[usize], speed: f64) -> String {
        let total = self.total_work();
        let choice_list = choices.iter().map(usize::to_string).collect::<Vec<_>>().join(" ");
        let points = self
            .curve(choices, speed)
            .into_iter()
            .map(|(w, t)| format!("{{{} {:.0}}}", w as usize, t))
            .collect::<Vec<_>>()
            .join(" ");
        format!(
            "harmonyBundle {app}:1 config {{\n\
               {{run\n\
                 {{variable workerNodes {{{choice_list}}}}}\n\
                 {{node worker {{replicate workerNodes}} {{dedicated 1}} \
                   {{seconds {{{total:.0} / workerNodes}}}} {{memory {mem:.0}}}}}\n\
                 {{communication {{{ex:.2} * workerNodes * workerNodes}}}}\n\
                 {{performance {points}}}}}\n\
             }}",
            mem = self.memory_mb,
            ex = self.exchange_seconds / 8.0, // Mbit/s-equivalent volume knob
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use harmony_rsl::schema::parse_bundle_script;

    #[test]
    fn all_work_is_done_and_balanced() {
        let bag = BagOfTasks::generate(200, 5.0, 0.0, 1);
        let run = bag.run(8, 1.0);
        assert_eq!(run.tasks_done, 200);
        let busy: f64 = run.worker_busy.iter().sum();
        assert!((busy - bag.total_work()).abs() < 1e-6);
        // Pull scheduling balances arbitrarily-shaped tasks well.
        assert!(run.balance() > 0.9, "balance {}", run.balance());
    }

    #[test]
    fn makespan_shrinks_with_workers_without_comm() {
        let bag = BagOfTasks::generate(100, 10.0, 0.0, 2);
        let m1 = bag.run(1, 1.0).makespan;
        let m4 = bag.run(4, 1.0).makespan;
        let m8 = bag.run(8, 1.0).makespan;
        assert!(m4 < m1 / 3.0, "{m1} -> {m4}");
        assert!(m8 < m4, "{m4} -> {m8}");
        // One worker equals total work exactly.
        assert!((m1 - bag.total_work()).abs() < 1e-9);
    }

    #[test]
    fn speed_scales_compute() {
        let bag = BagOfTasks::generate(50, 10.0, 0.0, 3);
        let slow = bag.run(4, 0.5).makespan;
        let fast = bag.run(4, 2.0).makespan;
        assert!((slow / fast - 4.0).abs() < 0.01, "{slow} vs {fast}");
    }

    #[test]
    fn fig4_curve_bottoms_at_five_workers() {
        let bag = BagOfTasks::fig4(7);
        let best = bag.best_workers(&[1, 2, 3, 4, 5, 6, 7, 8], 1.0);
        assert_eq!(best, 5, "curve: {:?}", bag.curve(&[1, 2, 3, 4, 5, 6, 7, 8], 1.0));
        // Communication makes 8 workers worse than 5.
        let m5 = bag.run(5, 1.0).makespan;
        let m8 = bag.run(8, 1.0).makespan;
        assert!(m8 > m5);
    }

    #[test]
    fn exported_bundle_parses_with_expected_structure() {
        let bag = BagOfTasks::fig4(1);
        let text = bag.to_bundle("bag", &[1, 2, 3, 4, 5, 6, 7, 8], 1.0);
        let spec = parse_bundle_script(&text).unwrap();
        let opt = &spec.options[0];
        assert_eq!(opt.variables[0].choices.len(), 8);
        assert!(opt.performance.is_some());
        assert!(opt.communication.is_some());
        // Total seconds constant across worker counts.
        let mut env = harmony_rsl::expr::MapEnv::new();
        env.set("workerNodes", harmony_rsl::Value::Int(4));
        let per_node = opt.nodes[0].seconds().unwrap().amount(&env).unwrap();
        assert!((per_node * 4.0 - bag.total_work()).abs() < 4.0);
    }

    #[test]
    fn generate_is_deterministic() {
        let a = BagOfTasks::generate(10, 1.0, 0.5, 9);
        let b = BagOfTasks::generate(10, 1.0, 0.5, 9);
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic(expected = "at least one worker")]
    fn zero_workers_panics() {
        BagOfTasks::fig4(1).run(0, 1.0);
    }
}
