//! Round-trip tests: every typed structure renders to canonical RSL text
//! that re-parses to an equal structure.

use harmony_rsl::listings::{FIG2A_SIMPLE, FIG2B_BAG, FIG3_DBCLIENT};
use harmony_rsl::schema::{parse_bundle_script, parse_statements, Statement};
use proptest::prelude::*;

#[test]
fn paper_bundles_round_trip_through_canonical() {
    for (name, src) in [("fig2a", FIG2A_SIMPLE), ("fig2b", FIG2B_BAG), ("fig3", FIG3_DBCLIENT)] {
        let bundle = parse_bundle_script(src).unwrap();
        let canonical = bundle.canonical();
        let reparsed = parse_bundle_script(&canonical)
            .unwrap_or_else(|e| panic!("{name} canonical text failed to parse: {e}\n{canonical}"));
        assert_eq!(bundle, reparsed, "{name} round trip");
        // Canonicalization is a fixpoint.
        assert_eq!(reparsed.canonical(), canonical, "{name} fixpoint");
    }
}

#[test]
fn cluster_declarations_round_trip() {
    let src = harmony_rsl::listings::sp2_cluster(5);
    let stmts = parse_statements(&src).unwrap();
    let rendered: String = stmts
        .iter()
        .map(|s| match s {
            Statement::Node(n) => n.canonical(),
            Statement::Link(l) => l.canonical(),
            Statement::Bundle(b) => b.canonical(),
        })
        .collect::<Vec<_>>()
        .join("\n");
    let reparsed = parse_statements(&rendered).unwrap();
    assert_eq!(stmts, reparsed);
}

proptest! {
    /// Generated bundles (worker counts, memory, seconds, granularity,
    /// friction) always survive canonical → parse.
    #[test]
    fn generated_bundles_round_trip(
        replicate in 1u32..16,
        seconds in 1i64..10_000,
        memory in 1i64..1024,
        granularity in prop::option::of(1u32..600),
        friction in prop::option::of(1u32..300),
        choices in prop::collection::vec(1i64..64, 1..5),
    ) {
        let mut opt_body = format!(
            "{{variable w {{{}}}}} \
             {{node worker {{replicate {replicate}}} {{seconds {seconds}}} {{memory {memory}}}}}",
            choices.iter().map(i64::to_string).collect::<Vec<_>>().join(" "),
        );
        if let Some(g) = granularity {
            opt_body.push_str(&format!(" {{granularity {g}}}"));
        }
        if let Some(f) = friction {
            opt_body.push_str(&format!(" {{friction {f}}}"));
        }
        let src = format!("harmonyBundle app:1 b {{ {{o {opt_body}}} }}");
        let bundle = parse_bundle_script(&src).expect("generated bundle parses");
        let reparsed = parse_bundle_script(&bundle.canonical()).expect("canonical parses");
        prop_assert_eq!(bundle, reparsed);
    }

    /// Tag values round-trip: any numeric constraint renders and reparses.
    #[test]
    fn constraints_round_trip(x in 0.0f64..1e6, kind in 0u8..4) {
        use harmony_rsl::schema::TagValue;
        use harmony_rsl::list::parse_tree;
        let text = match kind {
            0 => format!(">={x}"),
            1 => format!("<={x}"),
            2 => format!("{x}"),
            _ => "*".to_string(),
        };
        let nodes = parse_tree(&text).unwrap();
        let v = TagValue::parse(&nodes[0]).unwrap();
        let nodes2 = parse_tree(&v.canonical()).unwrap();
        let v2 = TagValue::parse(&nodes2[0]).unwrap();
        prop_assert_eq!(v, v2);
    }
}
