//! TCL-style list lexing.
//!
//! RSL rides on TCL list syntax: a list is a sequence of *words* separated
//! by whitespace, where a word is either a bare run of non-whitespace
//! characters, a brace-quoted group `{ ... }` (nesting, no substitution), or
//! a double-quoted group `" ... "`. Backslash escapes the next character in
//! bare and quoted words. `#` at the start of a line begins a comment that
//! runs to the end of the line.
//!
//! Two views are provided:
//!
//! * [`split`] produces the *shallow* word list, keeping braced content as
//!   raw text (useful for lazy/streaming handling and for expressions, which
//!   have their own grammar);
//! * [`parse_tree`] recursively parses braced words into a [`Node`] tree.

use serde::{Deserialize, Serialize};

use crate::error::{Pos, Result, RslError};

/// One shallow word of a TCL list.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum Item {
    /// A bare (or double-quoted) word, with escapes resolved.
    Word(String),
    /// A brace-quoted group; the field holds the *raw* inner text, with the
    /// outer braces stripped and inner text untouched.
    Braced(String),
}

impl Item {
    /// The textual content of the word regardless of quoting.
    pub fn text(&self) -> &str {
        match self {
            Item::Word(s) | Item::Braced(s) => s,
        }
    }

    /// True if this item was brace-quoted.
    pub fn is_braced(&self) -> bool {
        matches!(self, Item::Braced(_))
    }
}

/// A fully parsed TCL word tree.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum Node {
    /// A leaf word.
    Word(String),
    /// A braced group parsed recursively into sub-nodes.
    List(Vec<Node>),
}

impl Node {
    /// The leaf text, if this is a [`Node::Word`].
    pub fn word(&self) -> Option<&str> {
        match self {
            Node::Word(s) => Some(s),
            Node::List(_) => None,
        }
    }

    /// The children, if this is a [`Node::List`].
    pub fn list(&self) -> Option<&[Node]> {
        match self {
            Node::List(items) => Some(items),
            Node::Word(_) => None,
        }
    }

    /// Renders the node back to canonical TCL text.
    pub fn canonical(&self) -> String {
        match self {
            Node::Word(s) => {
                if s.is_empty()
                    || s.contains(|c: char| c.is_whitespace() || c == '{' || c == '}' || c == '"')
                {
                    format!("{{{s}}}")
                } else {
                    s.clone()
                }
            }
            Node::List(items) => {
                let inner = items.iter().map(Node::canonical).collect::<Vec<_>>().join(" ");
                format!("{{{inner}}}")
            }
        }
    }
}

/// Splits `src` into shallow [`Item`]s.
///
/// # Errors
///
/// Returns [`RslError::Unterminated`] for unclosed braces or quotes and
/// [`RslError::UnexpectedClose`] for a stray `}`.
///
/// # Examples
///
/// ```
/// use harmony_rsl::list::{split, Item};
/// let items = split("node server {seconds 42}").unwrap();
/// assert_eq!(items[0], Item::Word("node".into()));
/// assert_eq!(items[2], Item::Braced("seconds 42".into()));
/// ```
pub fn split(src: &str) -> Result<Vec<Item>> {
    let bytes = src.as_bytes();
    let mut items = Vec::new();
    let mut i = 0usize;
    let mut at_line_start = true;
    while i < bytes.len() {
        let c = bytes[i] as char;
        if c.is_whitespace() {
            if c == '\n' {
                at_line_start = true;
            }
            i += 1;
            continue;
        }
        if c == '#' && at_line_start {
            while i < bytes.len() && bytes[i] != b'\n' {
                i += 1;
            }
            continue;
        }
        at_line_start = false;
        match c {
            '{' => {
                let start = i;
                let mut depth = 0usize;
                let mut j = i;
                loop {
                    if j >= bytes.len() {
                        return Err(RslError::Unterminated { what: "{", pos: Pos::at(src, start) });
                    }
                    match bytes[j] {
                        b'{' => depth += 1,
                        b'}' => {
                            depth -= 1;
                            if depth == 0 {
                                break;
                            }
                        }
                        b'\\' => {
                            // Backslash inside braces escapes the next byte
                            // (notably `\{` and `\}`).
                            j += 1;
                        }
                        _ => {}
                    }
                    j += 1;
                }
                items.push(Item::Braced(src[start + 1..j].to_owned()));
                i = j + 1;
            }
            '}' => {
                return Err(RslError::UnexpectedClose { what: '}', pos: Pos::at(src, i) });
            }
            '"' => {
                let start = i;
                let mut word = String::new();
                let mut j = i + 1;
                loop {
                    if j >= bytes.len() {
                        return Err(RslError::Unterminated {
                            what: "\"",
                            pos: Pos::at(src, start),
                        });
                    }
                    match bytes[j] {
                        b'"' => break,
                        b'\\' if j + 1 < bytes.len() => {
                            word.push(bytes[j + 1] as char);
                            j += 2;
                            continue;
                        }
                        b => word.push(b as char),
                    }
                    j += 1;
                }
                items.push(Item::Word(word));
                i = j + 1;
            }
            _ => {
                let mut word = String::new();
                let mut j = i;
                while j < bytes.len() {
                    let b = bytes[j];
                    if (b as char).is_whitespace() || b == b'{' || b == b'}' {
                        break;
                    }
                    if b == b'\\' && j + 1 < bytes.len() {
                        word.push(bytes[j + 1] as char);
                        j += 2;
                        continue;
                    }
                    word.push(b as char);
                    j += 1;
                }
                items.push(Item::Word(word));
                i = j;
            }
        }
    }
    Ok(items)
}

/// Recursively parses `src` into a [`Node`] forest: every shallow braced
/// item is re-split into children.
///
/// # Errors
///
/// Propagates the same errors as [`split`] from any nesting level.
pub fn parse_tree(src: &str) -> Result<Vec<Node>> {
    let items = split(src)?;
    let mut nodes = Vec::with_capacity(items.len());
    for item in items {
        nodes.push(match item {
            Item::Word(w) => Node::Word(w),
            Item::Braced(inner) => Node::List(parse_tree(&inner)?),
        });
    }
    Ok(nodes)
}

/// Renders a node forest back to canonical text (single spaces, canonical
/// brace quoting). `parse_tree(canonicalize(nodes))` reproduces `nodes`.
pub fn canonicalize(nodes: &[Node]) -> String {
    nodes.iter().map(Node::canonical).collect::<Vec<_>>().join(" ")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splits_bare_words() {
        let items = split("a bb  ccc").unwrap();
        assert_eq!(
            items,
            vec![Item::Word("a".into()), Item::Word("bb".into()), Item::Word("ccc".into())]
        );
    }

    #[test]
    fn splits_braced_groups_with_nesting() {
        let items = split("{a {b c}} d").unwrap();
        assert_eq!(items, vec![Item::Braced("a {b c}".into()), Item::Word("d".into())]);
    }

    #[test]
    fn splits_quoted_words() {
        let items = split("\"hello world\" x").unwrap();
        assert_eq!(items, vec![Item::Word("hello world".into()), Item::Word("x".into())]);
    }

    #[test]
    fn backslash_escapes_in_bare_words() {
        let items = split(r"a\ b c").unwrap();
        assert_eq!(items, vec![Item::Word("a b".into()), Item::Word("c".into())]);
    }

    #[test]
    fn backslash_escapes_braces_inside_braced() {
        let items = split(r"{a \} b}").unwrap();
        assert_eq!(items, vec![Item::Braced(r"a \} b".into())]);
    }

    #[test]
    fn comments_run_to_end_of_line() {
        let items = split("# a comment\nword # not-a-comment\n# another\nend").unwrap();
        assert_eq!(
            items,
            vec![
                Item::Word("word".into()),
                Item::Word("#".into()),
                Item::Word("not-a-comment".into()),
                Item::Word("end".into()),
            ]
        );
    }

    #[test]
    fn unterminated_brace_is_error() {
        let err = split("{a b").unwrap_err();
        assert!(matches!(err, RslError::Unterminated { what: "{", .. }));
    }

    #[test]
    fn unterminated_quote_is_error() {
        let err = split("\"a b").unwrap_err();
        assert!(matches!(err, RslError::Unterminated { what: "\"", .. }));
    }

    #[test]
    fn stray_close_is_error() {
        let err = split("a } b").unwrap_err();
        assert!(matches!(err, RslError::UnexpectedClose { what: '}', .. }));
    }

    #[test]
    fn parse_tree_recurses() {
        let nodes = parse_tree("node {a {b 2}} x").unwrap();
        assert_eq!(
            nodes,
            vec![
                Node::Word("node".into()),
                Node::List(vec![
                    Node::Word("a".into()),
                    Node::List(vec![Node::Word("b".into()), Node::Word("2".into())]),
                ]),
                Node::Word("x".into()),
            ]
        );
    }

    #[test]
    fn canonical_round_trip() {
        let src = "harmonyBundle DBclient:1 where { {QS {node server}} {DS {node client *}} }";
        let nodes = parse_tree(src).unwrap();
        let canon = canonicalize(&nodes);
        let reparsed = parse_tree(&canon).unwrap();
        assert_eq!(nodes, reparsed);
    }

    #[test]
    fn empty_input_yields_no_items() {
        assert!(split("").unwrap().is_empty());
        assert!(split("   \n\t ").unwrap().is_empty());
        assert!(parse_tree("").unwrap().is_empty());
    }

    #[test]
    fn empty_braces_yield_empty_list() {
        let nodes = parse_tree("{}").unwrap();
        assert_eq!(nodes, vec![Node::List(vec![])]);
    }

    #[test]
    fn node_accessors() {
        let w = Node::Word("x".into());
        let l = Node::List(vec![w.clone()]);
        assert_eq!(w.word(), Some("x"));
        assert_eq!(w.list(), None);
        assert_eq!(l.word(), None);
        assert_eq!(l.list().unwrap().len(), 1);
    }

    #[test]
    fn canonical_quotes_special_words() {
        assert_eq!(Node::Word("a b".into()).canonical(), "{a b}");
        assert_eq!(Node::Word(String::new()).canonical(), "{}");
        assert_eq!(Node::Word("plain".into()).canonical(), "plain");
    }
}
