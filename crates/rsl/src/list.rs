//! TCL-style list lexing.
//!
//! RSL rides on TCL list syntax: a list is a sequence of *words* separated
//! by whitespace, where a word is either a bare run of non-whitespace
//! characters, a brace-quoted group `{ ... }` (nesting, no substitution), or
//! a double-quoted group `" ... "`. Backslash escapes the next character in
//! bare and quoted words. `#` at the start of a line begins a comment that
//! runs to the end of the line.
//!
//! Three views are provided:
//!
//! * [`split`] produces the *shallow* word list, keeping braced content as
//!   raw text (useful for lazy/streaming handling and for expressions, which
//!   have their own grammar);
//! * [`parse_tree`] recursively parses braced words into a [`Node`] tree;
//! * [`parse_tree_spanned`] does the same but records each word's byte
//!   [`Span`] in the original source, for diagnostics that point at the
//!   offending construct.

use serde::{Deserialize, Serialize};

use crate::error::{Pos, Result, RslError};
use crate::span::Span;

/// One shallow word of a TCL list.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum Item {
    /// A bare (or double-quoted) word, with escapes resolved.
    Word(String),
    /// A brace-quoted group; the field holds the *raw* inner text, with the
    /// outer braces stripped and inner text untouched.
    Braced(String),
}

impl Item {
    /// The textual content of the word regardless of quoting.
    pub fn text(&self) -> &str {
        match self {
            Item::Word(s) | Item::Braced(s) => s,
        }
    }

    /// True if this item was brace-quoted.
    pub fn is_braced(&self) -> bool {
        matches!(self, Item::Braced(_))
    }
}

/// A fully parsed TCL word tree.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum Node {
    /// A leaf word.
    Word(String),
    /// A braced group parsed recursively into sub-nodes.
    List(Vec<Node>),
}

impl Node {
    /// The leaf text, if this is a [`Node::Word`].
    pub fn word(&self) -> Option<&str> {
        match self {
            Node::Word(s) => Some(s),
            Node::List(_) => None,
        }
    }

    /// The children, if this is a [`Node::List`].
    pub fn list(&self) -> Option<&[Node]> {
        match self {
            Node::List(items) => Some(items),
            Node::Word(_) => None,
        }
    }

    /// Renders the node back to canonical TCL text.
    pub fn canonical(&self) -> String {
        match self {
            Node::Word(s) => {
                if s.is_empty()
                    || s.contains(|c: char| c.is_whitespace() || c == '{' || c == '}' || c == '"')
                {
                    format!("{{{s}}}")
                } else {
                    s.clone()
                }
            }
            Node::List(items) => {
                let inner = items.iter().map(Node::canonical).collect::<Vec<_>>().join(" ");
                format!("{{{inner}}}")
            }
        }
    }
}

/// A parsed TCL word tree that remembers where each word came from.
///
/// The span of a [`SpannedNode::Word`] covers the token including any
/// quotes; the span of a [`SpannedNode::List`] covers the braces.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum SpannedNode {
    /// A leaf word with its source span.
    Word(String, Span),
    /// A braced group parsed recursively into sub-nodes, with the span of
    /// the whole group.
    List(Vec<SpannedNode>, Span),
}

impl SpannedNode {
    /// The byte span this node covers in the original source.
    pub fn span(&self) -> Span {
        match self {
            SpannedNode::Word(_, span) | SpannedNode::List(_, span) => *span,
        }
    }

    /// The leaf text, if this is a [`SpannedNode::Word`].
    pub fn word(&self) -> Option<&str> {
        match self {
            SpannedNode::Word(s, _) => Some(s),
            SpannedNode::List(..) => None,
        }
    }

    /// The children, if this is a [`SpannedNode::List`].
    pub fn list(&self) -> Option<&[SpannedNode]> {
        match self {
            SpannedNode::List(items, _) => Some(items),
            SpannedNode::Word(..) => None,
        }
    }

    /// Drops the spans, yielding the plain [`Node`] tree.
    pub fn to_node(&self) -> Node {
        match self {
            SpannedNode::Word(s, _) => Node::Word(s.clone()),
            SpannedNode::List(items, _) => Node::List(items.iter().map(Self::to_node).collect()),
        }
    }

    /// Renders the node back to canonical TCL text (spans are not rendered).
    pub fn canonical(&self) -> String {
        self.to_node().canonical()
    }
}

/// Lexes `full[lo..hi]` into shallow items with absolute byte spans.
///
/// Error positions are resolved against `full`, so errors from nested
/// levels of [`parse_tree`]/[`parse_tree_spanned`] report positions in the
/// original source rather than in the re-split inner text.
fn split_spanned_range(full: &str, lo: usize, hi: usize) -> Result<Vec<(Item, Span)>> {
    let bytes = &full.as_bytes()[..hi];
    let mut items = Vec::new();
    let mut i = lo;
    let mut at_line_start = true;
    while i < bytes.len() {
        let c = bytes[i] as char;
        if c.is_whitespace() {
            if c == '\n' {
                at_line_start = true;
            }
            i += 1;
            continue;
        }
        if c == '#' && at_line_start {
            while i < bytes.len() && bytes[i] != b'\n' {
                i += 1;
            }
            continue;
        }
        at_line_start = false;
        match c {
            '{' => {
                let start = i;
                let mut depth = 0usize;
                let mut j = i;
                loop {
                    if j >= bytes.len() {
                        return Err(RslError::Unterminated {
                            what: "{",
                            pos: Pos::at(full, start),
                        });
                    }
                    match bytes[j] {
                        b'{' => depth += 1,
                        b'}' => {
                            depth -= 1;
                            if depth == 0 {
                                break;
                            }
                        }
                        b'\\' => {
                            // Backslash inside braces escapes the next byte
                            // (notably `\{` and `\}`).
                            j += 1;
                        }
                        _ => {}
                    }
                    j += 1;
                }
                items.push((Item::Braced(full[start + 1..j].to_owned()), Span::new(start, j + 1)));
                i = j + 1;
            }
            '}' => {
                return Err(RslError::UnexpectedClose { what: '}', pos: Pos::at(full, i) });
            }
            '"' => {
                let start = i;
                let mut word = String::new();
                let mut j = i + 1;
                loop {
                    if j >= bytes.len() {
                        return Err(RslError::Unterminated {
                            what: "\"",
                            pos: Pos::at(full, start),
                        });
                    }
                    match bytes[j] {
                        b'"' => break,
                        b'\\' if j + 1 < bytes.len() => {
                            word.push(bytes[j + 1] as char);
                            j += 2;
                            continue;
                        }
                        b => word.push(b as char),
                    }
                    j += 1;
                }
                items.push((Item::Word(word), Span::new(start, j + 1)));
                i = j + 1;
            }
            _ => {
                let start = i;
                let mut word = String::new();
                let mut j = i;
                while j < bytes.len() {
                    let b = bytes[j];
                    if (b as char).is_whitespace() || b == b'{' || b == b'}' {
                        break;
                    }
                    if b == b'\\' && j + 1 < bytes.len() {
                        word.push(bytes[j + 1] as char);
                        j += 2;
                        continue;
                    }
                    word.push(b as char);
                    j += 1;
                }
                items.push((Item::Word(word), Span::new(start, j)));
                i = j;
            }
        }
    }
    Ok(items)
}

/// Splits `src` into shallow [`Item`]s.
///
/// # Errors
///
/// Returns [`RslError::Unterminated`] for unclosed braces or quotes and
/// [`RslError::UnexpectedClose`] for a stray `}`.
///
/// # Examples
///
/// ```
/// use harmony_rsl::list::{split, Item};
/// let items = split("node server {seconds 42}").unwrap();
/// assert_eq!(items[0], Item::Word("node".into()));
/// assert_eq!(items[2], Item::Braced("seconds 42".into()));
/// ```
pub fn split(src: &str) -> Result<Vec<Item>> {
    Ok(split_spanned_range(src, 0, src.len())?.into_iter().map(|(item, _)| item).collect())
}

/// Splits `src` into shallow [`Item`]s, each with its byte [`Span`].
pub fn split_spanned(src: &str) -> Result<Vec<(Item, Span)>> {
    split_spanned_range(src, 0, src.len())
}

fn parse_tree_spanned_range(full: &str, lo: usize, hi: usize) -> Result<Vec<SpannedNode>> {
    let items = split_spanned_range(full, lo, hi)?;
    let mut nodes = Vec::with_capacity(items.len());
    for (item, span) in items {
        nodes.push(match item {
            Item::Word(w) => SpannedNode::Word(w, span),
            Item::Braced(_) => {
                // The raw inner text sits between the braces, so child
                // offsets stay absolute in the original source.
                let children = parse_tree_spanned_range(full, span.start + 1, span.end - 1)?;
                SpannedNode::List(children, span)
            }
        });
    }
    Ok(nodes)
}

/// Recursively parses `src` into a [`Node`] forest: every shallow braced
/// item is re-split into children.
///
/// # Errors
///
/// Propagates the same errors as [`split`] from any nesting level, with
/// positions resolved against the original `src`.
pub fn parse_tree(src: &str) -> Result<Vec<Node>> {
    Ok(parse_tree_spanned(src)?.iter().map(SpannedNode::to_node).collect())
}

/// Like [`parse_tree`], but every node carries the byte [`Span`] it covers
/// in `src`. Word spans include quotes; list spans include the braces.
pub fn parse_tree_spanned(src: &str) -> Result<Vec<SpannedNode>> {
    parse_tree_spanned_range(src, 0, src.len())
}

/// Renders a node forest back to canonical text (single spaces, canonical
/// brace quoting). `parse_tree(canonicalize(nodes))` reproduces `nodes`.
pub fn canonicalize(nodes: &[Node]) -> String {
    nodes.iter().map(Node::canonical).collect::<Vec<_>>().join(" ")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splits_bare_words() {
        let items = split("a bb  ccc").unwrap();
        assert_eq!(
            items,
            vec![Item::Word("a".into()), Item::Word("bb".into()), Item::Word("ccc".into())]
        );
    }

    #[test]
    fn splits_braced_groups_with_nesting() {
        let items = split("{a {b c}} d").unwrap();
        assert_eq!(items, vec![Item::Braced("a {b c}".into()), Item::Word("d".into())]);
    }

    #[test]
    fn splits_quoted_words() {
        let items = split("\"hello world\" x").unwrap();
        assert_eq!(items, vec![Item::Word("hello world".into()), Item::Word("x".into())]);
    }

    #[test]
    fn backslash_escapes_in_bare_words() {
        let items = split(r"a\ b c").unwrap();
        assert_eq!(items, vec![Item::Word("a b".into()), Item::Word("c".into())]);
    }

    #[test]
    fn backslash_escapes_braces_inside_braced() {
        let items = split(r"{a \} b}").unwrap();
        assert_eq!(items, vec![Item::Braced(r"a \} b".into())]);
    }

    #[test]
    fn comments_run_to_end_of_line() {
        let items = split("# a comment\nword # not-a-comment\n# another\nend").unwrap();
        assert_eq!(
            items,
            vec![
                Item::Word("word".into()),
                Item::Word("#".into()),
                Item::Word("not-a-comment".into()),
                Item::Word("end".into()),
            ]
        );
    }

    #[test]
    fn unterminated_brace_is_error() {
        let err = split("{a b").unwrap_err();
        assert!(matches!(err, RslError::Unterminated { what: "{", .. }));
    }

    #[test]
    fn unterminated_quote_is_error() {
        let err = split("\"a b").unwrap_err();
        assert!(matches!(err, RslError::Unterminated { what: "\"", .. }));
    }

    #[test]
    fn stray_close_is_error() {
        let err = split("a } b").unwrap_err();
        assert!(matches!(err, RslError::UnexpectedClose { what: '}', .. }));
    }

    #[test]
    fn parse_tree_recurses() {
        let nodes = parse_tree("node {a {b 2}} x").unwrap();
        assert_eq!(
            nodes,
            vec![
                Node::Word("node".into()),
                Node::List(vec![
                    Node::Word("a".into()),
                    Node::List(vec![Node::Word("b".into()), Node::Word("2".into())]),
                ]),
                Node::Word("x".into()),
            ]
        );
    }

    #[test]
    fn canonical_round_trip() {
        let src = "harmonyBundle DBclient:1 where { {QS {node server}} {DS {node client *}} }";
        let nodes = parse_tree(src).unwrap();
        let canon = canonicalize(&nodes);
        let reparsed = parse_tree(&canon).unwrap();
        assert_eq!(nodes, reparsed);
    }

    #[test]
    fn empty_input_yields_no_items() {
        assert!(split("").unwrap().is_empty());
        assert!(split("   \n\t ").unwrap().is_empty());
        assert!(parse_tree("").unwrap().is_empty());
    }

    #[test]
    fn empty_braces_yield_empty_list() {
        let nodes = parse_tree("{}").unwrap();
        assert_eq!(nodes, vec![Node::List(vec![])]);
    }

    #[test]
    fn node_accessors() {
        let w = Node::Word("x".into());
        let l = Node::List(vec![w.clone()]);
        assert_eq!(w.word(), Some("x"));
        assert_eq!(w.list(), None);
        assert_eq!(l.word(), None);
        assert_eq!(l.list().unwrap().len(), 1);
    }

    #[test]
    fn canonical_quotes_special_words() {
        assert_eq!(Node::Word("a b".into()).canonical(), "{a b}");
        assert_eq!(Node::Word(String::new()).canonical(), "{}");
        assert_eq!(Node::Word("plain".into()).canonical(), "plain");
    }

    #[test]
    fn spanned_split_records_token_ranges() {
        let src = "node server {seconds 42}";
        let items = split_spanned(src).unwrap();
        let spans: Vec<&str> = items.iter().map(|(_, s)| s.slice(src).unwrap()).collect();
        assert_eq!(spans, vec!["node", "server", "{seconds 42}"]);
    }

    #[test]
    fn spanned_tree_keeps_absolute_child_offsets() {
        let src = "opt {a {b 2}} tail";
        let nodes = parse_tree_spanned(src).unwrap();
        let list = nodes[1].list().unwrap();
        assert_eq!(list[1].span().slice(src), Some("{b 2}"));
        let inner = list[1].list().unwrap();
        assert_eq!(inner[1].span().slice(src), Some("2"));
        assert_eq!(inner[1].span().pos(src).column as usize, src.find('2').unwrap() + 1);
    }

    #[test]
    fn spanned_quoted_word_span_includes_quotes() {
        let src = "x \"a b\" y";
        let items = split_spanned(src).unwrap();
        assert_eq!(items[1].0, Item::Word("a b".into()));
        assert_eq!(items[1].1.slice(src), Some("\"a b\""));
    }

    #[test]
    fn nested_errors_report_absolute_positions() {
        // The stray close is inside a quoted word inside a brace; the
        // spanned recursion should still blame the original offset.
        let src = "a {b \"unterminated} c";
        let err = parse_tree(src).unwrap_err();
        match err {
            RslError::Unterminated { what: "\"", pos } => {
                assert_eq!(pos.offset, src.find('"').unwrap());
            }
            other => panic!("unexpected error: {other:?}"),
        }
    }

    #[test]
    fn spanned_tree_strips_to_plain_tree() {
        let src = "node {a {b 2}} x";
        let spanned = parse_tree_spanned(src).unwrap();
        let plain: Vec<Node> = spanned.iter().map(SpannedNode::to_node).collect();
        assert_eq!(plain, parse_tree(src).unwrap());
        assert_eq!(spanned[1].canonical(), "{a {b 2}}");
    }
}
