//! The RSL value model.
//!
//! RSL is TCL-flavoured: every value has a canonical string form, and lists
//! are whitespace-separated words with brace grouping. [`Value`] keeps the
//! *typed* view (integers, floats, strings, lists) so that the expression
//! evaluator and the schema layer do not have to re-parse strings on every
//! use, while `Display` renders the canonical TCL form for the wire.

use std::fmt;

use serde::{Deserialize, Serialize};

use crate::error::{Result, RslError};

/// A single RSL value: integer, float, string, or list.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Value {
    /// A 64-bit signed integer.
    Int(i64),
    /// A 64-bit float.
    Float(f64),
    /// An uninterpreted word.
    Str(String),
    /// A list of values (TCL braced list).
    List(Vec<Value>),
}

impl Value {
    /// Parses a bare word into the most specific value kind: `Int` if it
    /// parses as an integer, `Float` if it parses as a float, else `Str`.
    ///
    /// # Examples
    ///
    /// ```
    /// use harmony_rsl::Value;
    /// assert_eq!(Value::from_word("42"), Value::Int(42));
    /// assert_eq!(Value::from_word("1.5"), Value::Float(1.5));
    /// assert_eq!(Value::from_word("linux"), Value::Str("linux".into()));
    /// ```
    pub fn from_word(word: &str) -> Value {
        if let Ok(i) = word.parse::<i64>() {
            return Value::Int(i);
        }
        if let Ok(x) = word.parse::<f64>() {
            if x.is_finite() {
                return Value::Float(x);
            }
        }
        Value::Str(word.to_owned())
    }

    /// Returns the numeric interpretation of this value.
    ///
    /// # Errors
    ///
    /// Returns [`RslError::Type`] for strings that do not parse as numbers
    /// and for lists.
    pub fn as_f64(&self) -> Result<f64> {
        match self {
            Value::Int(i) => Ok(*i as f64),
            Value::Float(x) => Ok(*x),
            Value::Str(s) => s.parse::<f64>().map_err(|_| RslError::Type {
                op: "numeric conversion".into(),
                value: format!("string `{s}`"),
            }),
            Value::List(_) => {
                Err(RslError::Type { op: "numeric conversion".into(), value: "a list".into() })
            }
        }
    }

    /// Returns the integer interpretation, truncating floats.
    ///
    /// # Errors
    ///
    /// Same conditions as [`Value::as_f64`].
    pub fn as_i64(&self) -> Result<i64> {
        match self {
            Value::Int(i) => Ok(*i),
            _ => Ok(self.as_f64()?.trunc() as i64),
        }
    }

    /// Returns the truthiness of the value: numbers are true when nonzero;
    /// strings `true`/`yes`/`on` are true, `false`/`no`/`off` false.
    ///
    /// # Errors
    ///
    /// Returns [`RslError::Type`] for other strings and for lists.
    pub fn as_bool(&self) -> Result<bool> {
        match self {
            Value::Int(i) => Ok(*i != 0),
            Value::Float(x) => Ok(*x != 0.0),
            Value::Str(s) => match s.as_str() {
                "true" | "yes" | "on" => Ok(true),
                "false" | "no" | "off" => Ok(false),
                _ => Err(RslError::Type {
                    op: "boolean conversion".into(),
                    value: format!("string `{s}`"),
                }),
            },
            Value::List(_) => {
                Err(RslError::Type { op: "boolean conversion".into(), value: "a list".into() })
            }
        }
    }

    /// Borrows the string content if this is a `Str`.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Borrows the elements if this is a `List`.
    pub fn as_list(&self) -> Option<&[Value]> {
        match self {
            Value::List(items) => Some(items),
            _ => None,
        }
    }

    /// True when the value is a number (int or float).
    pub fn is_number(&self) -> bool {
        matches!(self, Value::Int(_) | Value::Float(_))
    }

    /// Numeric equality across int/float, string equality otherwise.
    ///
    /// `Value::Int(2)` equals `Value::Float(2.0)` under this comparison even
    /// though the derived `PartialEq` distinguishes them.
    pub fn loose_eq(&self, other: &Value) -> bool {
        match (self.as_f64(), other.as_f64()) {
            (Ok(a), Ok(b)) => a == b,
            _ => match (self, other) {
                (Value::List(a), Value::List(b)) => {
                    a.len() == b.len() && a.iter().zip(b).all(|(x, y)| x.loose_eq(y))
                }
                _ => self.canonical() == other.canonical(),
            },
        }
    }

    /// Renders the canonical TCL word for this value, brace-quoting words
    /// that contain whitespace or braces.
    pub fn canonical(&self) -> String {
        match self {
            Value::Int(i) => i.to_string(),
            Value::Float(x) => {
                if x.fract() == 0.0 && x.abs() < 1e15 {
                    format!("{x:.1}")
                } else {
                    format!("{x}")
                }
            }
            Value::Str(s) => {
                if s.is_empty() || s.contains(|c: char| c.is_whitespace() || c == '{' || c == '}') {
                    format!("{{{s}}}")
                } else {
                    s.clone()
                }
            }
            Value::List(items) => {
                let inner = items.iter().map(Value::canonical).collect::<Vec<_>>().join(" ");
                format!("{{{inner}}}")
            }
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.canonical())
    }
}

impl From<i64> for Value {
    fn from(i: i64) -> Self {
        Value::Int(i)
    }
}

impl From<f64> for Value {
    fn from(x: f64) -> Self {
        Value::Float(x)
    }
}

impl From<&str> for Value {
    fn from(s: &str) -> Self {
        Value::Str(s.to_owned())
    }
}

impl From<String> for Value {
    fn from(s: String) -> Self {
        Value::Str(s)
    }
}

impl From<bool> for Value {
    fn from(b: bool) -> Self {
        Value::Int(b as i64)
    }
}

impl From<Vec<Value>> for Value {
    fn from(items: Vec<Value>) -> Self {
        Value::List(items)
    }
}

impl FromIterator<Value> for Value {
    fn from_iter<T: IntoIterator<Item = Value>>(iter: T) -> Self {
        Value::List(iter.into_iter().collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_word_prefers_int_then_float_then_str() {
        assert_eq!(Value::from_word("7"), Value::Int(7));
        assert_eq!(Value::from_word("-3"), Value::Int(-3));
        assert_eq!(Value::from_word("2.5"), Value::Float(2.5));
        assert_eq!(Value::from_word("1e3"), Value::Float(1000.0));
        assert_eq!(Value::from_word("harmony.cs.umd.edu"), Value::Str("harmony.cs.umd.edu".into()));
        // Infinities stay strings: RSL has no literal for them.
        assert_eq!(Value::from_word("inf"), Value::Str("inf".into()));
    }

    #[test]
    fn numeric_conversions() {
        assert_eq!(Value::Int(4).as_f64().unwrap(), 4.0);
        assert_eq!(Value::Float(2.9).as_i64().unwrap(), 2);
        assert_eq!(Value::Str("12".into()).as_f64().unwrap(), 12.0);
        assert!(Value::Str("linux".into()).as_f64().is_err());
        assert!(Value::List(vec![]).as_f64().is_err());
    }

    #[test]
    fn truthiness() {
        assert!(Value::Int(1).as_bool().unwrap());
        assert!(!Value::Int(0).as_bool().unwrap());
        assert!(Value::Str("yes".into()).as_bool().unwrap());
        assert!(!Value::Str("off".into()).as_bool().unwrap());
        assert!(Value::Str("maybe".into()).as_bool().is_err());
    }

    #[test]
    fn loose_eq_crosses_int_float() {
        assert!(Value::Int(2).loose_eq(&Value::Float(2.0)));
        assert!(!Value::Int(2).loose_eq(&Value::Float(2.5)));
        assert!(Value::Str("linux".into()).loose_eq(&Value::Str("linux".into())));
        let a = Value::List(vec![Value::Int(1), Value::Float(2.0)]);
        let b = Value::List(vec![Value::Float(1.0), Value::Int(2)]);
        assert!(a.loose_eq(&b));
    }

    #[test]
    fn canonical_quotes_words_with_spaces() {
        assert_eq!(Value::Str("linux".into()).canonical(), "linux");
        assert_eq!(Value::Str("a b".into()).canonical(), "{a b}");
        assert_eq!(Value::Str(String::new()).canonical(), "{}");
        let list = Value::List(vec![Value::Int(1), Value::Str("x y".into())]);
        assert_eq!(list.canonical(), "{1 {x y}}");
    }

    #[test]
    fn display_matches_canonical() {
        let v = Value::List(vec![Value::Int(1), Value::Int(2)]);
        assert_eq!(v.to_string(), v.canonical());
    }

    #[test]
    fn conversions_from_primitives() {
        assert_eq!(Value::from(3i64), Value::Int(3));
        assert_eq!(Value::from(0.5f64), Value::Float(0.5));
        assert_eq!(Value::from("x"), Value::Str("x".into()));
        assert_eq!(Value::from(true), Value::Int(1));
        let v: Value = vec![Value::Int(1)].into_iter().collect();
        assert_eq!(v, Value::List(vec![Value::Int(1)]));
    }

    #[test]
    fn float_canonical_keeps_decimal_point() {
        // Floats that happen to be integral still render with a fractional
        // part so they round-trip as floats.
        assert_eq!(Value::Float(4.0).canonical(), "4.0");
        assert_eq!(Value::from_word("4.0"), Value::Float(4.0));
    }
}
