//! The paper's RSL listings, embedded for tests, examples, and benches.
//!
//! The published scan garbles brace placement in Figure 3 (see DESIGN.md §4);
//! these are the reconstructed listings, unit-tested for the semantic
//! properties the prose asserts (QS loads the server, DS loads the client,
//! DS client memory is elastic, DS bandwidth is parameterized on
//! `client.memory`).

/// Figure 2(a): "Simple", a generic parallel application on four
/// processors. 300 reference-machine seconds and 32 MB per worker; the
/// communication tag gives whole-application traffic with no specific
/// endpoints, so the system assumes full connectivity.
pub const FIG2A_SIMPLE: &str = "\
harmonyBundle simple:1 config {
  {fixed
    {node worker {replicate 4} {seconds 300} {memory 32}}
    {communication 100}}
}
";

/// Figure 2(b): "Bag", a bag-of-tasks application with variable
/// parallelism. Total computation is constant, so per-worker seconds divide
/// by `workerNodes`; communication grows with the square of the worker
/// count; an explicit `performance` model gives measured running times that
/// Harmony interpolates piecewise-linearly.
pub const FIG2B_BAG: &str = "\
harmonyBundle bag:1 config {
  {run
    {variable workerNodes {1 2 4 8}}
    {node worker {replicate workerNodes} {seconds {1200 / workerNodes}} {memory 32}}
    {communication {0.5 * workerNodes * workerNodes}}
    {performance {1 1200} {2 620} {4 340} {8 230}}}
}
";

/// Figure 3: the client-server database bundle. One `where` bundle with two
/// options: QS (query shipping — execute at the server) and DS (data
/// shipping — execute at the client). QS consumes more server CPU; DS more
/// client CPU plus link bandwidth that shrinks as Harmony grants the client
/// more cache memory (up to a 24 MB cap).
pub const FIG3_DBCLIENT: &str = "\
harmonyBundle DBclient:1 where {
  {QS
    {node server {hostname harmony.cs.umd.edu} {seconds 4} {memory 20}}
    {node client * {os linux} {seconds 1} {memory 2}}
    {link client server 2}}
  {DS
    {node server {hostname harmony.cs.umd.edu} {seconds 1} {memory 20}}
    {node client * {os linux} {memory >=17} {seconds 9}}
    {link client server {44 + (client.memory > 24 ? 24 : client.memory) - 17}}}
}
";

/// An 8-node SP-2-like cluster declaration used by the Figure 4 and
/// Figure 7 experiments: uniform nodes at reference speed with 256 MB, plus
/// a 320 Mbit/s switch (every pair connected).
pub fn sp2_cluster(n: usize) -> String {
    let mut out = String::new();
    for i in 0..n {
        out.push_str(&format!(
            "harmonyNode node{i:02} {{speed 1.0}} {{memory 256}} {{os linux}} {{hostname node{i:02}.sp2}}\n"
        ));
    }
    for i in 0..n {
        for j in (i + 1)..n {
            out.push_str(&format!(
                "harmonyLink node{i:02} node{j:02} {{bandwidth 320}} {{latency 0.0001}}\n"
            ));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::{parse_bundle_script, parse_statements, Statement};

    #[test]
    fn fig2a_parses() {
        let b = parse_bundle_script(FIG2A_SIMPLE).unwrap();
        assert_eq!(b.app, "simple");
        assert_eq!(b.options.len(), 1);
    }

    #[test]
    fn fig2b_parses() {
        let b = parse_bundle_script(FIG2B_BAG).unwrap();
        assert_eq!(b.app, "bag");
        assert_eq!(b.options[0].variables[0].choices, vec![1, 2, 4, 8]);
    }

    #[test]
    fn fig3_parses() {
        let b = parse_bundle_script(FIG3_DBCLIENT).unwrap();
        assert_eq!(b.option_names(), vec!["QS", "DS"]);
    }

    #[test]
    fn sp2_cluster_declares_nodes_and_full_mesh() {
        let stmts = parse_statements(&sp2_cluster(4)).unwrap();
        let nodes = stmts.iter().filter(|s| matches!(s, Statement::Node(_))).count();
        let links = stmts.iter().filter(|s| matches!(s, Statement::Link(_))).count();
        assert_eq!(nodes, 4);
        assert_eq!(links, 6); // 4 choose 2
    }
}
