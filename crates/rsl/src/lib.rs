//! # Harmony RSL
//!
//! The Harmony *resource specification language* from "Exposing Application
//! Alternatives" (Keleher, Hollingsworth, Perković — ICDCS 1999). RSL is a
//! TCL-flavoured language with which applications export *tuning options*
//! (mutually exclusive configuration alternatives) to the Harmony
//! adaptation controller, and with which nodes publish their availability.
//!
//! The crate is organized as three layers:
//!
//! * [`list`] — TCL list lexing (brace/quote words, comments);
//! * [`expr`] — the expression sublanguage used for parameterized tag
//!   values such as `{seconds {1200 / workerNodes}}`;
//! * [`schema`] — the typed layer: [`schema::BundleSpec`] with options,
//!   node and link requirements, `performance` models, `granularity` and
//!   `friction`, plus `harmonyNode`/`harmonyLink` availability declarations.
//!
//! The paper's own listings are embedded in [`listings`].
//!
//! ## Example
//!
//! ```
//! use harmony_rsl::schema::parse_bundle_script;
//! use harmony_rsl::expr::MapEnv;
//! use harmony_rsl::Value;
//!
//! let bundle = parse_bundle_script(harmony_rsl::listings::FIG3_DBCLIENT)?;
//! let ds = bundle.option("DS").expect("data-shipping option");
//!
//! // The DS link bandwidth is parameterized on the client's allocated
//! // memory: more cache displaces transfer volume, up to a 24 MB cap.
//! let mut env = MapEnv::new();
//! env.set("client.memory", Value::Int(20));
//! let bw = ds.links[0].bandwidth.amount(&env)?;
//! assert_eq!(bw, 47.0);
//! # Ok::<(), harmony_rsl::RslError>(())
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod error;
pub mod expr;
pub mod list;
pub mod listings;
pub mod schema;
pub mod span;
mod value;

pub use error::{Pos, Result, RslError};
pub use span::Span;
pub use value::Value;
