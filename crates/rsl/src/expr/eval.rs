//! Evaluator for RSL expressions.
//!
//! Semantics follow TCL's `expr` where the paper relies on it:
//!
//! * integer arithmetic stays integral (`7 / 2 == 3`) until a float enters;
//! * comparisons yield `1`/`0` as integers;
//! * `&&` / `||` short-circuit;
//! * the ternary `?:` evaluates only the taken branch;
//! * string comparison (`==`, `!=`, `<` …) is lexicographic when either side
//!   is a non-numeric string.

use crate::error::{Result, RslError};
use crate::expr::ast::{BinOp, Expr, UnOp};
use crate::expr::env::Env;
use crate::value::Value;

/// Upper bound on AST nodes visited per evaluation; guards against
/// pathological inputs in a long-lived server.
const EVAL_BUDGET: usize = 1_000_000;

struct Evaluator<'e, E: ?Sized> {
    env: &'e E,
    budget: usize,
}

fn both_numeric(a: &Value, b: &Value) -> bool {
    fn numeric(v: &Value) -> bool {
        match v {
            Value::Int(_) | Value::Float(_) => true,
            Value::Str(s) => s.parse::<f64>().is_ok(),
            Value::List(_) => false,
        }
    }
    numeric(a) && numeric(b)
}

fn arith(op: BinOp, a: &Value, b: &Value) -> Result<Value> {
    // Integer arithmetic when both sides are Int, else float.
    if let (Value::Int(x), Value::Int(y)) = (a, b) {
        let (x, y) = (*x, *y);
        return match op {
            BinOp::Add => Ok(Value::Int(x.wrapping_add(y))),
            BinOp::Sub => Ok(Value::Int(x.wrapping_sub(y))),
            BinOp::Mul => Ok(Value::Int(x.wrapping_mul(y))),
            BinOp::Div => {
                if y == 0 {
                    Err(RslError::DivideByZero)
                } else {
                    Ok(Value::Int(x.wrapping_div(y)))
                }
            }
            BinOp::Rem => {
                if y == 0 {
                    Err(RslError::DivideByZero)
                } else {
                    Ok(Value::Int(x.wrapping_rem(y)))
                }
            }
            _ => unreachable!("arith called with non-arith op"),
        };
    }
    let x = a.as_f64()?;
    let y = b.as_f64()?;
    match op {
        BinOp::Add => Ok(Value::Float(x + y)),
        BinOp::Sub => Ok(Value::Float(x - y)),
        BinOp::Mul => Ok(Value::Float(x * y)),
        BinOp::Div => {
            if y == 0.0 {
                Err(RslError::DivideByZero)
            } else {
                Ok(Value::Float(x / y))
            }
        }
        BinOp::Rem => {
            if y == 0.0 {
                Err(RslError::DivideByZero)
            } else {
                Ok(Value::Float(x % y))
            }
        }
        _ => unreachable!("arith called with non-arith op"),
    }
}

fn compare(op: BinOp, a: &Value, b: &Value) -> Result<Value> {
    let ord = if both_numeric(a, b) {
        a.as_f64()?.partial_cmp(&b.as_f64()?)
    } else {
        let sa = a.canonical();
        let sb = b.canonical();
        Some(sa.cmp(&sb))
    };
    let Some(ord) = ord else {
        // NaN comparisons: only != holds.
        return Ok(Value::from(op == BinOp::Ne));
    };
    let truth = match op {
        BinOp::Eq => ord == std::cmp::Ordering::Equal,
        BinOp::Ne => ord != std::cmp::Ordering::Equal,
        BinOp::Lt => ord == std::cmp::Ordering::Less,
        BinOp::Le => ord != std::cmp::Ordering::Greater,
        BinOp::Gt => ord == std::cmp::Ordering::Greater,
        BinOp::Ge => ord != std::cmp::Ordering::Less,
        _ => unreachable!("compare called with non-comparison op"),
    };
    Ok(Value::from(truth))
}

impl<E: Env + ?Sized> Evaluator<'_, E> {
    fn eval(&mut self, expr: &Expr) -> Result<Value> {
        if self.budget == 0 {
            return Err(RslError::BudgetExceeded);
        }
        self.budget -= 1;
        match expr {
            Expr::Int(i) => Ok(Value::Int(*i)),
            Expr::Float(x) => Ok(Value::Float(*x)),
            Expr::Str(s) => Ok(Value::Str(s.clone())),
            Expr::Name(n) => {
                self.env.lookup(n).ok_or_else(|| RslError::UnboundName { name: n.clone() })
            }
            Expr::Unary(UnOp::Neg, e) => match self.eval(e)? {
                Value::Int(i) => Ok(Value::Int(-i)),
                other => Ok(Value::Float(-other.as_f64()?)),
            },
            Expr::Unary(UnOp::Not, e) => {
                let v = self.eval(e)?;
                Ok(Value::from(!v.as_bool()?))
            }
            Expr::Binary(BinOp::And, a, b) => {
                if !self.eval(a)?.as_bool()? {
                    Ok(Value::from(false))
                } else {
                    Ok(Value::from(self.eval(b)?.as_bool()?))
                }
            }
            Expr::Binary(BinOp::Or, a, b) => {
                if self.eval(a)?.as_bool()? {
                    Ok(Value::from(true))
                } else {
                    Ok(Value::from(self.eval(b)?.as_bool()?))
                }
            }
            Expr::Binary(op, a, b) => {
                let va = self.eval(a)?;
                let vb = self.eval(b)?;
                match op {
                    BinOp::Add | BinOp::Sub | BinOp::Mul | BinOp::Div | BinOp::Rem => {
                        arith(*op, &va, &vb)
                    }
                    _ => compare(*op, &va, &vb),
                }
            }
            Expr::Ternary(c, t, e) => {
                if self.eval(c)?.as_bool()? {
                    self.eval(t)
                } else {
                    self.eval(e)
                }
            }
            Expr::Call(name, args) => {
                let mut vals = Vec::with_capacity(args.len());
                for a in args {
                    vals.push(self.eval(a)?);
                }
                call_builtin(name, &vals)
            }
        }
    }
}

fn need_args(name: &str, expected: usize, got: &[Value]) -> Result<()> {
    if got.len() == expected {
        Ok(())
    } else {
        Err(RslError::Arity { name: name.into(), expected, got: got.len() })
    }
}

fn variadic_fold(name: &str, args: &[Value], f: impl Fn(f64, f64) -> f64) -> Result<Value> {
    if args.is_empty() {
        return Err(RslError::Arity { name: name.into(), expected: 1, got: 0 });
    }
    let mut acc = args[0].as_f64()?;
    let mut all_int = matches!(args[0], Value::Int(_));
    for v in &args[1..] {
        all_int &= matches!(v, Value::Int(_));
        acc = f(acc, v.as_f64()?);
    }
    if all_int {
        Ok(Value::Int(acc as i64))
    } else {
        Ok(Value::Float(acc))
    }
}

/// Invokes a builtin function by name.
///
/// Builtins: `min`, `max` (variadic ≥1), `abs`, `floor`, `ceil`, `round`,
/// `sqrt`, `exp`, `log`, `log2`, `log10`, `int`, `double`, `pow(x,y)`,
/// `clamp(x,lo,hi)`.
///
/// # Errors
///
/// [`RslError::UnknownFunction`] for unknown names, [`RslError::Arity`] on
/// argument-count mismatch, and type errors from argument conversion.
pub fn call_builtin(name: &str, args: &[Value]) -> Result<Value> {
    match name {
        "min" => variadic_fold(name, args, f64::min),
        "max" => variadic_fold(name, args, f64::max),
        "abs" => {
            need_args(name, 1, args)?;
            match &args[0] {
                Value::Int(i) => Ok(Value::Int(i.wrapping_abs())),
                v => Ok(Value::Float(v.as_f64()?.abs())),
            }
        }
        "floor" => {
            need_args(name, 1, args)?;
            Ok(Value::Int(args[0].as_f64()?.floor() as i64))
        }
        "ceil" => {
            need_args(name, 1, args)?;
            Ok(Value::Int(args[0].as_f64()?.ceil() as i64))
        }
        "round" => {
            need_args(name, 1, args)?;
            Ok(Value::Int(args[0].as_f64()?.round() as i64))
        }
        "sqrt" => {
            need_args(name, 1, args)?;
            Ok(Value::Float(args[0].as_f64()?.sqrt()))
        }
        "exp" => {
            need_args(name, 1, args)?;
            Ok(Value::Float(args[0].as_f64()?.exp()))
        }
        "log" => {
            need_args(name, 1, args)?;
            Ok(Value::Float(args[0].as_f64()?.ln()))
        }
        "log2" => {
            need_args(name, 1, args)?;
            Ok(Value::Float(args[0].as_f64()?.log2()))
        }
        "log10" => {
            need_args(name, 1, args)?;
            Ok(Value::Float(args[0].as_f64()?.log10()))
        }
        "int" => {
            need_args(name, 1, args)?;
            Ok(Value::Int(args[0].as_i64()?))
        }
        "double" => {
            need_args(name, 1, args)?;
            Ok(Value::Float(args[0].as_f64()?))
        }
        "pow" => {
            need_args(name, 2, args)?;
            Ok(Value::Float(args[0].as_f64()?.powf(args[1].as_f64()?)))
        }
        "clamp" => {
            need_args(name, 3, args)?;
            let x = args[0].as_f64()?;
            let lo = args[1].as_f64()?;
            let hi = args[2].as_f64()?;
            Ok(Value::Float(x.clamp(lo, hi)))
        }
        _ => Err(RslError::UnknownFunction { name: name.into() }),
    }
}

/// Evaluates `expr` against `env`.
///
/// # Errors
///
/// Propagates [`RslError::UnboundName`], type errors,
/// [`RslError::DivideByZero`], and builtin-call errors.
///
/// # Examples
///
/// ```
/// use harmony_rsl::expr::{eval, parse_expr, MapEnv};
/// use harmony_rsl::Value;
///
/// let e = parse_expr("44 + (client.memory > 24 ? 24 : client.memory) - 17")?;
/// let mut env = MapEnv::new();
/// env.set("client.memory", Value::Int(20));
/// assert_eq!(eval(&e, &env)?, Value::Int(47));
/// env.set("client.memory", Value::Int(64));
/// assert_eq!(eval(&e, &env)?, Value::Int(51));
/// # Ok::<(), harmony_rsl::RslError>(())
/// ```
pub fn eval<E: Env + ?Sized>(expr: &Expr, env: &E) -> Result<Value> {
    Evaluator { env, budget: EVAL_BUDGET }.eval(expr)
}

/// Parses and evaluates in one step; convenience for tag values.
///
/// # Errors
///
/// Union of [`crate::expr::parse_expr`] and [`eval`] errors.
pub fn eval_str<E: Env + ?Sized>(src: &str, env: &E) -> Result<Value> {
    eval(&crate::expr::parse_expr(src)?, env)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::env::{EmptyEnv, MapEnv};
    use crate::expr::parse_expr;

    fn ev(src: &str) -> Value {
        eval_str(src, &EmptyEnv).unwrap()
    }

    #[test]
    fn integer_arithmetic_stays_integral() {
        assert_eq!(ev("7 / 2"), Value::Int(3));
        assert_eq!(ev("7 % 2"), Value::Int(1));
        assert_eq!(ev("2 + 3 * 4"), Value::Int(14));
    }

    #[test]
    fn float_contaminates() {
        assert_eq!(ev("7.0 / 2"), Value::Float(3.5));
        assert_eq!(ev("1 + 0.5"), Value::Float(1.5));
    }

    #[test]
    fn divide_by_zero_is_error() {
        assert_eq!(eval_str("1 / 0", &EmptyEnv), Err(RslError::DivideByZero));
        assert_eq!(eval_str("1 % 0", &EmptyEnv), Err(RslError::DivideByZero));
        assert_eq!(eval_str("1.0 / 0.0", &EmptyEnv), Err(RslError::DivideByZero));
    }

    #[test]
    fn comparisons_yield_ints() {
        assert_eq!(ev("2 < 3"), Value::Int(1));
        assert_eq!(ev("2 >= 3"), Value::Int(0));
        assert_eq!(ev("2 == 2.0"), Value::Int(1));
        assert_eq!(ev("2 != 2"), Value::Int(0));
    }

    #[test]
    fn string_comparison_is_lexicographic() {
        assert_eq!(ev(r#""linux" == "linux""#), Value::Int(1));
        assert_eq!(ev(r#""aix" < "linux""#), Value::Int(1));
        assert_eq!(ev(r#""solaris" == "linux""#), Value::Int(0));
    }

    #[test]
    fn short_circuit_avoids_errors() {
        // The second operand would divide by zero if evaluated.
        assert_eq!(ev("0 && (1 / 0)"), Value::Int(0));
        assert_eq!(ev("1 || (1 / 0)"), Value::Int(1));
    }

    #[test]
    fn ternary_takes_only_one_branch() {
        assert_eq!(ev("1 ? 10 : (1 / 0)"), Value::Int(10));
        assert_eq!(ev("0 ? (1 / 0) : 20"), Value::Int(20));
    }

    #[test]
    fn unary_ops() {
        assert_eq!(ev("-3"), Value::Int(-3));
        assert_eq!(ev("-3.5"), Value::Float(-3.5));
        assert_eq!(ev("!0"), Value::Int(1));
        assert_eq!(ev("!3"), Value::Int(0));
    }

    #[test]
    fn unbound_name_error_carries_name() {
        let err = eval_str("client.memory + 1", &EmptyEnv).unwrap_err();
        assert_eq!(err, RslError::UnboundName { name: "client.memory".into() });
    }

    #[test]
    fn env_lookup() {
        let mut env = MapEnv::new();
        env.set("workerNodes", Value::Int(4));
        assert_eq!(eval_str("1200 / workerNodes", &env).unwrap(), Value::Int(300));
        assert_eq!(eval_str("0.5 * workerNodes * workerNodes", &env).unwrap(), Value::Float(8.0));
    }

    #[test]
    fn builtins() {
        assert_eq!(ev("min(3, 1, 2)"), Value::Int(1));
        assert_eq!(ev("max(3, 1, 2)"), Value::Int(3));
        assert_eq!(ev("min(1.5, 2)"), Value::Float(1.5));
        assert_eq!(ev("abs(-4)"), Value::Int(4));
        assert_eq!(ev("abs(-4.5)"), Value::Float(4.5));
        assert_eq!(ev("floor(2.9)"), Value::Int(2));
        assert_eq!(ev("ceil(2.1)"), Value::Int(3));
        assert_eq!(ev("round(2.5)"), Value::Int(3));
        assert_eq!(ev("sqrt(9)"), Value::Float(3.0));
        assert_eq!(ev("pow(2, 10)"), Value::Float(1024.0));
        assert_eq!(ev("int(2.9)"), Value::Int(2));
        assert_eq!(ev("double(2)"), Value::Float(2.0));
        assert_eq!(ev("clamp(5, 0, 3)"), Value::Float(3.0));
        assert_eq!(ev("log(exp(1.0))"), Value::Float(1.0));
        assert_eq!(ev("log2(8)"), Value::Float(3.0));
        assert_eq!(ev("log10(1000)"), Value::Float(3.0));
    }

    #[test]
    fn builtin_errors() {
        assert!(matches!(eval_str("min()", &EmptyEnv), Err(RslError::Arity { .. })));
        assert!(matches!(eval_str("pow(2)", &EmptyEnv), Err(RslError::Arity { .. })));
        assert!(matches!(
            eval_str("nosuchfn(1)", &EmptyEnv),
            Err(RslError::UnknownFunction { .. })
        ));
    }

    #[test]
    fn fig3_bandwidth_expression_semantics() {
        // 44 + min(client.memory, 24) - 17: more client memory displaces
        // transfer bandwidth up to a 24 MB cap.
        let e = parse_expr("44 + (client.memory > 24 ? 24 : client.memory) - 17").unwrap();
        let mut env = MapEnv::new();
        for (mem, expect) in [(17, 44), (20, 47), (24, 51), (32, 51), (64, 51)] {
            env.set("client.memory", Value::Int(mem));
            assert_eq!(eval(&e, &env).unwrap(), Value::Int(expect), "memory={mem}");
        }
    }

    #[test]
    fn deep_expression_exhausts_budget_not_stack() {
        // (((...1...))) — parser recursion is bounded by input size; the
        // evaluator budget guards runaway evaluation cost.
        let src = format!("{}1{}", "(".repeat(200), ")".repeat(200));
        assert_eq!(ev(&src), Value::Int(1));
    }

    #[test]
    fn wrapping_not_panicking_on_overflow() {
        let v = ev("9223372036854775807 + 1");
        assert_eq!(v, Value::Int(i64::MIN));
    }
}
