//! Evaluation environments: how free names in expressions are resolved.
//!
//! Names may be simple (`workerNodes`) or dotted (`client.memory`). Dotted
//! names are how an option's parameterized tags reference the resources
//! Harmony actually allocated — the naming scheme of §3.2 of the paper.

use std::collections::HashMap;

use crate::value::Value;

/// Resolves free names to values during expression evaluation.
///
/// Implementors should return `None` (not an error) for unknown names; the
/// evaluator converts that into [`crate::RslError::UnboundName`] with the
/// full dotted name, which gives better diagnostics than implementors could.
pub trait Env {
    /// Looks up a (possibly dotted) name.
    fn lookup(&self, name: &str) -> Option<Value>;
}

/// The empty environment: every lookup fails. Useful for evaluating constant
/// expressions.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct EmptyEnv;

impl Env for EmptyEnv {
    fn lookup(&self, _name: &str) -> Option<Value> {
        None
    }
}

/// A hash-map backed environment.
///
/// # Examples
///
/// ```
/// use harmony_rsl::expr::{Env, MapEnv};
/// use harmony_rsl::Value;
///
/// let mut env = MapEnv::new();
/// env.set("client.memory", Value::Int(20));
/// assert_eq!(env.lookup("client.memory"), Some(Value::Int(20)));
/// ```
#[derive(Debug, Clone, Default, PartialEq)]
pub struct MapEnv {
    vars: HashMap<String, Value>,
}

impl MapEnv {
    /// Creates an empty environment.
    pub fn new() -> Self {
        Self::default()
    }

    /// Binds `name` to `value`, returning the previous binding if any.
    pub fn set(&mut self, name: impl Into<String>, value: Value) -> Option<Value> {
        self.vars.insert(name.into(), value)
    }

    /// Removes a binding.
    pub fn unset(&mut self, name: &str) -> Option<Value> {
        self.vars.remove(name)
    }

    /// Number of bindings.
    pub fn len(&self) -> usize {
        self.vars.len()
    }

    /// True when no names are bound.
    pub fn is_empty(&self) -> bool {
        self.vars.is_empty()
    }

    /// Iterates over `(name, value)` pairs in arbitrary order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, &Value)> {
        self.vars.iter().map(|(k, v)| (k.as_str(), v))
    }
}

impl Env for MapEnv {
    fn lookup(&self, name: &str) -> Option<Value> {
        self.vars.get(name).cloned()
    }
}

impl FromIterator<(String, Value)> for MapEnv {
    fn from_iter<T: IntoIterator<Item = (String, Value)>>(iter: T) -> Self {
        MapEnv { vars: iter.into_iter().collect() }
    }
}

impl Extend<(String, Value)> for MapEnv {
    fn extend<T: IntoIterator<Item = (String, Value)>>(&mut self, iter: T) {
        self.vars.extend(iter);
    }
}

/// Chains two environments: the first shadowing the second.
///
/// Used by the controller to layer option-local bindings (the option's own
/// variables) over application-global and system-global bindings.
#[derive(Debug, Clone, Copy)]
pub struct ChainEnv<'a, A: ?Sized, B: ?Sized> {
    first: &'a A,
    second: &'a B,
}

impl<'a, A: Env + ?Sized, B: Env + ?Sized> ChainEnv<'a, A, B> {
    /// Builds a chained environment where `first` shadows `second`.
    pub fn new(first: &'a A, second: &'a B) -> Self {
        ChainEnv { first, second }
    }
}

impl<A: Env + ?Sized, B: Env + ?Sized> Env for ChainEnv<'_, A, B> {
    fn lookup(&self, name: &str) -> Option<Value> {
        self.first.lookup(name).or_else(|| self.second.lookup(name))
    }
}

impl<E: Env + ?Sized> Env for &E {
    fn lookup(&self, name: &str) -> Option<Value> {
        (**self).lookup(name)
    }
}

/// An environment backed by a closure — handy in tests and for lazily
/// computed values.
pub struct FnEnv<F>(pub F);

impl<F> Env for FnEnv<F>
where
    F: Fn(&str) -> Option<Value>,
{
    fn lookup(&self, name: &str) -> Option<Value> {
        (self.0)(name)
    }
}

impl<F> std::fmt::Debug for FnEnv<F> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("FnEnv(..)")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn map_env_set_get_unset() {
        let mut env = MapEnv::new();
        assert!(env.is_empty());
        assert_eq!(env.set("x", Value::Int(1)), None);
        assert_eq!(env.set("x", Value::Int(2)), Some(Value::Int(1)));
        assert_eq!(env.lookup("x"), Some(Value::Int(2)));
        assert_eq!(env.len(), 1);
        assert_eq!(env.unset("x"), Some(Value::Int(2)));
        assert_eq!(env.lookup("x"), None);
    }

    #[test]
    fn chain_env_shadows() {
        let mut a = MapEnv::new();
        let mut b = MapEnv::new();
        a.set("x", Value::Int(1));
        b.set("x", Value::Int(2));
        b.set("y", Value::Int(3));
        let chained = ChainEnv::new(&a, &b);
        assert_eq!(chained.lookup("x"), Some(Value::Int(1)));
        assert_eq!(chained.lookup("y"), Some(Value::Int(3)));
        assert_eq!(chained.lookup("z"), None);
    }

    #[test]
    fn fn_env_delegates() {
        let env = FnEnv(|name: &str| if name == "n" { Some(Value::Int(8)) } else { None });
        assert_eq!(env.lookup("n"), Some(Value::Int(8)));
        assert_eq!(env.lookup("m"), None);
        assert_eq!(format!("{env:?}"), "FnEnv(..)");
    }

    #[test]
    fn map_env_from_iterator() {
        let env: MapEnv = vec![("a".to_string(), Value::Int(1)), ("b".to_string(), Value::Int(2))]
            .into_iter()
            .collect();
        assert_eq!(env.len(), 2);
        let mut env2 = env.clone();
        env2.extend(vec![("c".to_string(), Value::Int(3))]);
        assert_eq!(env2.len(), 3);
    }

    #[test]
    fn empty_env_always_misses() {
        assert_eq!(EmptyEnv.lookup("anything"), None);
    }
}
