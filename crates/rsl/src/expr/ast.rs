//! Abstract syntax tree for RSL expressions.

use std::fmt;

use serde::{Deserialize, Serialize};

/// Binary operators, in increasing precedence groups.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum BinOp {
    /// `||`
    Or,
    /// `&&`
    And,
    /// `==`
    Eq,
    /// `!=`
    Ne,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
    /// `+`
    Add,
    /// `-`
    Sub,
    /// `*`
    Mul,
    /// `/`
    Div,
    /// `%`
    Rem,
}

impl BinOp {
    /// The surface syntax of the operator.
    pub fn symbol(self) -> &'static str {
        match self {
            BinOp::Or => "||",
            BinOp::And => "&&",
            BinOp::Eq => "==",
            BinOp::Ne => "!=",
            BinOp::Lt => "<",
            BinOp::Le => "<=",
            BinOp::Gt => ">",
            BinOp::Ge => ">=",
            BinOp::Add => "+",
            BinOp::Sub => "-",
            BinOp::Mul => "*",
            BinOp::Div => "/",
            BinOp::Rem => "%",
        }
    }
}

/// Unary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum UnOp {
    /// Arithmetic negation `-`.
    Neg,
    /// Logical not `!`.
    Not,
}

/// An expression tree.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Expr {
    /// Integer literal.
    Int(i64),
    /// Float literal.
    Float(f64),
    /// String literal.
    Str(String),
    /// A (possibly dotted) name resolved against the evaluation
    /// environment, e.g. `workerNodes` or `client.memory`.
    Name(String),
    /// Unary operation.
    Unary(UnOp, Box<Expr>),
    /// Binary operation.
    Binary(BinOp, Box<Expr>, Box<Expr>),
    /// Ternary conditional `cond ? then : else`.
    Ternary(Box<Expr>, Box<Expr>, Box<Expr>),
    /// Builtin function call, e.g. `min(a, b)`.
    Call(String, Vec<Expr>),
}

impl Expr {
    /// Collects every free name referenced by the expression, in first-use
    /// order without duplicates. Useful for dependency analysis (e.g. which
    /// allocation values a parameterized tag depends on).
    pub fn free_names(&self) -> Vec<String> {
        let mut out = Vec::new();
        self.collect_names(&mut out);
        out
    }

    fn collect_names(&self, out: &mut Vec<String>) {
        match self {
            Expr::Int(_) | Expr::Float(_) | Expr::Str(_) => {}
            Expr::Name(n) => {
                if !out.iter().any(|x| x == n) {
                    out.push(n.clone());
                }
            }
            Expr::Unary(_, e) => e.collect_names(out),
            Expr::Binary(_, a, b) => {
                a.collect_names(out);
                b.collect_names(out);
            }
            Expr::Ternary(c, t, e) => {
                c.collect_names(out);
                t.collect_names(out);
                e.collect_names(out);
            }
            Expr::Call(_, args) => {
                for a in args {
                    a.collect_names(out);
                }
            }
        }
    }

    /// True when the expression contains no free names (and therefore can be
    /// evaluated in the empty environment).
    pub fn is_constant(&self) -> bool {
        self.free_names().is_empty()
    }
}

impl fmt::Display for Expr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Expr::Int(i) => write!(f, "{i}"),
            Expr::Float(x) => {
                if x.fract() == 0.0 && x.abs() < 1e15 {
                    write!(f, "{x:.1}")
                } else {
                    write!(f, "{x}")
                }
            }
            Expr::Str(s) => write!(f, "\"{}\"", s.replace('\\', "\\\\").replace('"', "\\\"")),
            Expr::Name(n) => write!(f, "{n}"),
            Expr::Unary(op, e) => {
                let sym = match op {
                    UnOp::Neg => "-",
                    UnOp::Not => "!",
                };
                write!(f, "{sym}({e})")
            }
            Expr::Binary(op, a, b) => write!(f, "({a} {} {b})", op.symbol()),
            Expr::Ternary(c, t, e) => write!(f, "({c} ? {t} : {e})"),
            Expr::Call(name, args) => {
                write!(f, "{name}(")?;
                for (i, a) in args.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{a}")?;
                }
                write!(f, ")")
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn free_names_deduplicates_in_order() {
        let e = Expr::Binary(
            BinOp::Add,
            Box::new(Expr::Name("a".into())),
            Box::new(Expr::Binary(
                BinOp::Mul,
                Box::new(Expr::Name("b".into())),
                Box::new(Expr::Name("a".into())),
            )),
        );
        assert_eq!(e.free_names(), vec!["a".to_string(), "b".to_string()]);
    }

    #[test]
    fn is_constant() {
        assert!(Expr::Int(3).is_constant());
        assert!(!Expr::Name("x".into()).is_constant());
        let call = Expr::Call("min".into(), vec![Expr::Int(1), Expr::Name("n".into())]);
        assert!(!call.is_constant());
    }

    #[test]
    fn display_round_trips_through_parser() {
        use crate::expr::parse_expr;
        let e = parse_expr("44 + (client.memory > 24 ? 24 : client.memory) - 17").unwrap();
        let reparsed = parse_expr(&e.to_string()).unwrap();
        assert_eq!(e, reparsed);
    }

    #[test]
    fn display_escapes_strings() {
        let e = Expr::Str("a\"b".into());
        assert_eq!(e.to_string(), "\"a\\\"b\"");
    }

    #[test]
    fn symbols_cover_all_ops() {
        let ops = [
            BinOp::Or,
            BinOp::And,
            BinOp::Eq,
            BinOp::Ne,
            BinOp::Lt,
            BinOp::Le,
            BinOp::Gt,
            BinOp::Ge,
            BinOp::Add,
            BinOp::Sub,
            BinOp::Mul,
            BinOp::Div,
            BinOp::Rem,
        ];
        for op in ops {
            assert!(!op.symbol().is_empty());
        }
    }
}
