//! The RSL expression sublanguage: tokenizer, parser, and evaluator.
//!
//! Tag values in RSL may be *parameterized* — computed from the resources
//! Harmony actually allocates. The paper's Figure 3 parameterizes the
//! data-shipping link bandwidth on the client's allocated memory:
//!
//! ```text
//! {link client server {44 + (client.memory > 24 ? 24 : client.memory) - 17}}
//! ```
//!
//! and Figure 2(b) parameterizes per-node CPU seconds and total bandwidth on
//! the number of workers:
//!
//! ```text
//! {seconds {1200 / workerNodes}}
//! {communication {0.5 * workerNodes * workerNodes}}
//! ```
//!
//! This module parses and evaluates exactly that language.

mod ast;
mod env;
mod eval;
mod parser;
mod token;

pub use ast::{BinOp, Expr, UnOp};
pub use env::{ChainEnv, EmptyEnv, Env, FnEnv, MapEnv};
pub use eval::{call_builtin, eval, eval_str};
pub use parser::parse_expr;
pub use token::{tokenize, Spanned, Tok};
