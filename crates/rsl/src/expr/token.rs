//! Tokenizer for the RSL expression sublanguage.

use crate::error::{Pos, Result, RslError};

/// A single expression token.
#[derive(Debug, Clone, PartialEq)]
pub enum Tok {
    /// Integer literal.
    Int(i64),
    /// Float literal.
    Float(f64),
    /// A double-quoted string literal.
    Str(String),
    /// A (possibly dotted) identifier such as `workerNodes` or
    /// `client.memory`.
    Name(String),
    /// `(`
    LParen,
    /// `)`
    RParen,
    /// `,`
    Comma,
    /// `?`
    Question,
    /// `:`
    Colon,
    /// `+`
    Plus,
    /// `-`
    Minus,
    /// `*`
    Star,
    /// `/`
    Slash,
    /// `%`
    Percent,
    /// `==`
    EqEq,
    /// `!=`
    NotEq,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
    /// `&&`
    AndAnd,
    /// `||`
    OrOr,
    /// `!`
    Bang,
}

impl Tok {
    /// Human-readable description used in error messages.
    pub fn describe(&self) -> String {
        match self {
            Tok::Int(i) => format!("integer `{i}`"),
            Tok::Float(x) => format!("float `{x}`"),
            Tok::Str(s) => format!("string \"{s}\""),
            Tok::Name(n) => format!("name `{n}`"),
            Tok::LParen => "`(`".into(),
            Tok::RParen => "`)`".into(),
            Tok::Comma => "`,`".into(),
            Tok::Question => "`?`".into(),
            Tok::Colon => "`:`".into(),
            Tok::Plus => "`+`".into(),
            Tok::Minus => "`-`".into(),
            Tok::Star => "`*`".into(),
            Tok::Slash => "`/`".into(),
            Tok::Percent => "`%`".into(),
            Tok::EqEq => "`==`".into(),
            Tok::NotEq => "`!=`".into(),
            Tok::Lt => "`<`".into(),
            Tok::Le => "`<=`".into(),
            Tok::Gt => "`>`".into(),
            Tok::Ge => "`>=`".into(),
            Tok::AndAnd => "`&&`".into(),
            Tok::OrOr => "`||`".into(),
            Tok::Bang => "`!`".into(),
        }
    }
}

/// A token plus the byte offset where it started (for diagnostics).
#[derive(Debug, Clone, PartialEq)]
pub struct Spanned {
    /// The token.
    pub tok: Tok,
    /// Byte offset into the expression source.
    pub offset: usize,
}

fn is_name_start(c: char) -> bool {
    c.is_ascii_alphabetic() || c == '_' || c == '$'
}

fn is_name_continue(c: char) -> bool {
    c.is_ascii_alphanumeric() || c == '_' || c == '.'
}

/// Tokenizes an expression string.
///
/// # Errors
///
/// Returns [`RslError::BadChar`] on unknown characters, [`RslError::BadNumber`]
/// on malformed numeric literals, and [`RslError::Unterminated`] on an
/// unclosed string literal.
pub fn tokenize(src: &str) -> Result<Vec<Spanned>> {
    let mut toks = Vec::new();
    let chars: Vec<char> = src.chars().collect();
    let mut i = 0usize;
    while i < chars.len() {
        let c = chars[i];
        if c.is_whitespace() {
            i += 1;
            continue;
        }
        let start = i;
        let tok = match c {
            '(' => {
                i += 1;
                Tok::LParen
            }
            ')' => {
                i += 1;
                Tok::RParen
            }
            ',' => {
                i += 1;
                Tok::Comma
            }
            '?' => {
                i += 1;
                Tok::Question
            }
            ':' => {
                i += 1;
                Tok::Colon
            }
            '+' => {
                i += 1;
                Tok::Plus
            }
            '-' => {
                i += 1;
                Tok::Minus
            }
            '*' => {
                i += 1;
                Tok::Star
            }
            '/' => {
                i += 1;
                Tok::Slash
            }
            '%' => {
                i += 1;
                Tok::Percent
            }
            '=' => {
                if chars.get(i + 1) == Some(&'=') {
                    i += 2;
                    Tok::EqEq
                } else {
                    return Err(RslError::BadChar { ch: '=', pos: Pos::at(src, start) });
                }
            }
            '!' => {
                if chars.get(i + 1) == Some(&'=') {
                    i += 2;
                    Tok::NotEq
                } else {
                    i += 1;
                    Tok::Bang
                }
            }
            '<' => {
                if chars.get(i + 1) == Some(&'=') {
                    i += 2;
                    Tok::Le
                } else {
                    i += 1;
                    Tok::Lt
                }
            }
            '>' => {
                if chars.get(i + 1) == Some(&'=') {
                    i += 2;
                    Tok::Ge
                } else {
                    i += 1;
                    Tok::Gt
                }
            }
            '&' => {
                if chars.get(i + 1) == Some(&'&') {
                    i += 2;
                    Tok::AndAnd
                } else {
                    return Err(RslError::BadChar { ch: '&', pos: Pos::at(src, start) });
                }
            }
            '|' => {
                if chars.get(i + 1) == Some(&'|') {
                    i += 2;
                    Tok::OrOr
                } else {
                    return Err(RslError::BadChar { ch: '|', pos: Pos::at(src, start) });
                }
            }
            '"' => {
                let mut s = String::new();
                i += 1;
                loop {
                    match chars.get(i) {
                        None => {
                            return Err(RslError::Unterminated {
                                what: "\"",
                                pos: Pos::at(src, start),
                            })
                        }
                        Some('"') => {
                            i += 1;
                            break;
                        }
                        Some('\\') => {
                            if let Some(&next) = chars.get(i + 1) {
                                s.push(next);
                                i += 2;
                            } else {
                                return Err(RslError::Unterminated {
                                    what: "\"",
                                    pos: Pos::at(src, start),
                                });
                            }
                        }
                        Some(&ch) => {
                            s.push(ch);
                            i += 1;
                        }
                    }
                }
                Tok::Str(s)
            }
            c if c.is_ascii_digit() => {
                let mut j = i;
                let mut seen_dot = false;
                let mut seen_exp = false;
                while j < chars.len() {
                    let d = chars[j];
                    if d.is_ascii_digit() {
                        j += 1;
                    } else if d == '.' && !seen_dot && !seen_exp {
                        // A dot followed by a digit is a decimal point; a dot
                        // followed by a letter would be a dotted name, which
                        // cannot start with a digit, so treat as decimal
                        // anyway and let parse fail for diagnostics.
                        seen_dot = true;
                        j += 1;
                    } else if (d == 'e' || d == 'E') && !seen_exp {
                        seen_exp = true;
                        j += 1;
                        if matches!(chars.get(j), Some('+') | Some('-')) {
                            j += 1;
                        }
                    } else {
                        break;
                    }
                }
                let text: String = chars[i..j].iter().collect();
                i = j;
                if seen_dot || seen_exp {
                    match text.parse::<f64>() {
                        Ok(x) => Tok::Float(x),
                        Err(_) => {
                            return Err(RslError::BadNumber { text, pos: Pos::at(src, start) })
                        }
                    }
                } else {
                    match text.parse::<i64>() {
                        Ok(v) => Tok::Int(v),
                        Err(_) => {
                            return Err(RslError::BadNumber { text, pos: Pos::at(src, start) })
                        }
                    }
                }
            }
            c if is_name_start(c) => {
                let mut j = i;
                // `$name` is accepted as an alias for `name` (TCL habit).
                if chars[j] == '$' {
                    j += 1;
                }
                let name_start = j;
                while j < chars.len() && is_name_continue(chars[j]) {
                    j += 1;
                }
                let text: String = chars[name_start..j].iter().collect();
                i = j;
                if text.is_empty() {
                    return Err(RslError::BadChar { ch: '$', pos: Pos::at(src, start) });
                }
                Tok::Name(text)
            }
            other => return Err(RslError::BadChar { ch: other, pos: Pos::at(src, start) }),
        };
        toks.push(Spanned { tok, offset: start });
    }
    Ok(toks)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toks(src: &str) -> Vec<Tok> {
        tokenize(src).unwrap().into_iter().map(|s| s.tok).collect()
    }

    #[test]
    fn tokenizes_arithmetic() {
        assert_eq!(
            toks("1 + 2.5 * x"),
            vec![Tok::Int(1), Tok::Plus, Tok::Float(2.5), Tok::Star, Tok::Name("x".into())]
        );
    }

    #[test]
    fn tokenizes_dotted_names() {
        assert_eq!(toks("client.memory"), vec![Tok::Name("client.memory".into())]);
    }

    #[test]
    fn dollar_prefix_is_stripped() {
        assert_eq!(toks("$workerNodes"), vec![Tok::Name("workerNodes".into())]);
    }

    #[test]
    fn tokenizes_comparisons_and_logic() {
        assert_eq!(
            toks("a >= 2 && b != 3 || !c"),
            vec![
                Tok::Name("a".into()),
                Tok::Ge,
                Tok::Int(2),
                Tok::AndAnd,
                Tok::Name("b".into()),
                Tok::NotEq,
                Tok::Int(3),
                Tok::OrOr,
                Tok::Bang,
                Tok::Name("c".into()),
            ]
        );
    }

    #[test]
    fn tokenizes_ternary() {
        assert_eq!(
            toks("a ? 1 : 2"),
            vec![Tok::Name("a".into()), Tok::Question, Tok::Int(1), Tok::Colon, Tok::Int(2)]
        );
    }

    #[test]
    fn tokenizes_the_fig3_bandwidth_expression() {
        let src = "44 + (client.memory > 24 ? 24 : client.memory) - 17";
        assert_eq!(toks(src).len(), 13);
    }

    #[test]
    fn tokenizes_string_literals() {
        assert_eq!(
            toks(r#"os == "linux""#),
            vec![Tok::Name("os".into()), Tok::EqEq, Tok::Str("linux".into()),]
        );
    }

    #[test]
    fn scientific_notation() {
        assert_eq!(toks("1e3 2.5E-2"), vec![Tok::Float(1000.0), Tok::Float(0.025)]);
    }

    #[test]
    fn bad_char_is_error() {
        assert!(matches!(tokenize("a @ b"), Err(RslError::BadChar { ch: '@', .. })));
        assert!(matches!(tokenize("a = b"), Err(RslError::BadChar { ch: '=', .. })));
        assert!(matches!(tokenize("a & b"), Err(RslError::BadChar { ch: '&', .. })));
    }

    #[test]
    fn unterminated_string_is_error() {
        assert!(matches!(tokenize("\"abc"), Err(RslError::Unterminated { .. })));
    }

    #[test]
    fn huge_integer_is_bad_number() {
        assert!(matches!(tokenize("99999999999999999999999999"), Err(RslError::BadNumber { .. })));
    }

    #[test]
    fn describe_is_nonempty_for_all_tokens() {
        for t in toks("1 1.0 \"s\" n ( ) , ? : + - * / % == != < <= > >= && || !") {
            assert!(!t.describe().is_empty());
        }
    }
}
