//! Recursive-descent parser for RSL expressions.
//!
//! Grammar (lowest to highest precedence):
//!
//! ```text
//! expr    := or ('?' expr ':' expr)?
//! or      := and ('||' and)*
//! and     := cmp ('&&' cmp)*
//! cmp     := add (('=='|'!='|'<'|'<='|'>'|'>=') add)?
//! add     := mul (('+'|'-') mul)*
//! mul     := unary (('*'|'/'|'%') unary)*
//! unary   := ('-'|'!') unary | primary
//! primary := INT | FLOAT | STRING | NAME ('(' args ')')? | '(' expr ')'
//! ```
//!
//! Comparison is non-associative (as in C's warning-free subset): chains
//! like `a < b < c` are rejected, which catches a common spec bug where the
//! author meant `a < b && b < c`.

use crate::error::{Pos, Result, RslError};
use crate::expr::ast::{BinOp, Expr, UnOp};
use crate::expr::token::{tokenize, Spanned, Tok};

struct Parser<'s> {
    src: &'s str,
    toks: Vec<Spanned>,
    pos: usize,
}

impl<'s> Parser<'s> {
    fn peek(&self) -> Option<&Tok> {
        self.toks.get(self.pos).map(|s| &s.tok)
    }

    fn advance(&mut self) -> Option<Tok> {
        let t = self.toks.get(self.pos).map(|s| s.tok.clone());
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn here(&self) -> Pos {
        let offset = self.toks.get(self.pos).map(|s| s.offset).unwrap_or_else(|| self.src.len());
        Pos::at(self.src, offset)
    }

    fn found(&self) -> String {
        match self.peek() {
            Some(t) => t.describe(),
            None => "end of input".into(),
        }
    }

    fn expect(&mut self, tok: Tok, expected: &'static str) -> Result<()> {
        if self.peek() == Some(&tok) {
            self.pos += 1;
            Ok(())
        } else {
            Err(RslError::ExpectedToken { expected, found: self.found(), pos: self.here() })
        }
    }

    fn ternary(&mut self) -> Result<Expr> {
        let cond = self.or()?;
        if self.peek() == Some(&Tok::Question) {
            self.pos += 1;
            let then = self.ternary()?;
            self.expect(Tok::Colon, "`:`")?;
            let els = self.ternary()?;
            Ok(Expr::Ternary(Box::new(cond), Box::new(then), Box::new(els)))
        } else {
            Ok(cond)
        }
    }

    fn or(&mut self) -> Result<Expr> {
        let mut lhs = self.and()?;
        while self.peek() == Some(&Tok::OrOr) {
            self.pos += 1;
            let rhs = self.and()?;
            lhs = Expr::Binary(BinOp::Or, Box::new(lhs), Box::new(rhs));
        }
        Ok(lhs)
    }

    fn and(&mut self) -> Result<Expr> {
        let mut lhs = self.cmp()?;
        while self.peek() == Some(&Tok::AndAnd) {
            self.pos += 1;
            let rhs = self.cmp()?;
            lhs = Expr::Binary(BinOp::And, Box::new(lhs), Box::new(rhs));
        }
        Ok(lhs)
    }

    fn cmp_op(&self) -> Option<BinOp> {
        match self.peek() {
            Some(Tok::EqEq) => Some(BinOp::Eq),
            Some(Tok::NotEq) => Some(BinOp::Ne),
            Some(Tok::Lt) => Some(BinOp::Lt),
            Some(Tok::Le) => Some(BinOp::Le),
            Some(Tok::Gt) => Some(BinOp::Gt),
            Some(Tok::Ge) => Some(BinOp::Ge),
            _ => None,
        }
    }

    fn cmp(&mut self) -> Result<Expr> {
        let lhs = self.add()?;
        if let Some(op) = self.cmp_op() {
            self.pos += 1;
            let rhs = self.add()?;
            // Reject chained comparisons: `a < b < c` is almost always a bug.
            if self.cmp_op().is_some() {
                return Err(RslError::ExpectedToken {
                    expected: "no chained comparison (use `&&`)",
                    found: self.found(),
                    pos: self.here(),
                });
            }
            Ok(Expr::Binary(op, Box::new(lhs), Box::new(rhs)))
        } else {
            Ok(lhs)
        }
    }

    fn add(&mut self) -> Result<Expr> {
        let mut lhs = self.mul()?;
        loop {
            let op = match self.peek() {
                Some(Tok::Plus) => BinOp::Add,
                Some(Tok::Minus) => BinOp::Sub,
                _ => break,
            };
            self.pos += 1;
            let rhs = self.mul()?;
            lhs = Expr::Binary(op, Box::new(lhs), Box::new(rhs));
        }
        Ok(lhs)
    }

    fn mul(&mut self) -> Result<Expr> {
        let mut lhs = self.unary()?;
        loop {
            let op = match self.peek() {
                Some(Tok::Star) => BinOp::Mul,
                Some(Tok::Slash) => BinOp::Div,
                Some(Tok::Percent) => BinOp::Rem,
                _ => break,
            };
            self.pos += 1;
            let rhs = self.unary()?;
            lhs = Expr::Binary(op, Box::new(lhs), Box::new(rhs));
        }
        Ok(lhs)
    }

    fn unary(&mut self) -> Result<Expr> {
        match self.peek() {
            Some(Tok::Minus) => {
                self.pos += 1;
                Ok(Expr::Unary(UnOp::Neg, Box::new(self.unary()?)))
            }
            Some(Tok::Bang) => {
                self.pos += 1;
                Ok(Expr::Unary(UnOp::Not, Box::new(self.unary()?)))
            }
            _ => self.primary(),
        }
    }

    fn primary(&mut self) -> Result<Expr> {
        match self.advance() {
            Some(Tok::Int(i)) => Ok(Expr::Int(i)),
            Some(Tok::Float(x)) => Ok(Expr::Float(x)),
            Some(Tok::Str(s)) => Ok(Expr::Str(s)),
            Some(Tok::Name(n)) => {
                if self.peek() == Some(&Tok::LParen) {
                    self.pos += 1;
                    let mut args = Vec::new();
                    if self.peek() != Some(&Tok::RParen) {
                        loop {
                            args.push(self.ternary()?);
                            if self.peek() == Some(&Tok::Comma) {
                                self.pos += 1;
                            } else {
                                break;
                            }
                        }
                    }
                    self.expect(Tok::RParen, "`)`")?;
                    Ok(Expr::Call(n, args))
                } else {
                    Ok(Expr::Name(n))
                }
            }
            Some(Tok::LParen) => {
                let e = self.ternary()?;
                self.expect(Tok::RParen, "`)`")?;
                Ok(e)
            }
            other => Err(RslError::ExpectedToken {
                expected: "a value",
                found: other.map(|t| t.describe()).unwrap_or_else(|| "end of input".into()),
                pos: self.here(),
            }),
        }
    }
}

/// Parses an expression string into an [`Expr`].
///
/// # Errors
///
/// Returns tokenizer errors and [`RslError::ExpectedToken`] for grammar
/// violations (including trailing tokens after a complete expression).
///
/// # Examples
///
/// ```
/// use harmony_rsl::expr::parse_expr;
/// let e = parse_expr("44 + (client.memory > 24 ? 24 : client.memory) - 17")?;
/// assert_eq!(e.free_names(), vec!["client.memory".to_string()]);
/// # Ok::<(), harmony_rsl::RslError>(())
/// ```
pub fn parse_expr(src: &str) -> Result<Expr> {
    let toks = tokenize(src)?;
    let mut p = Parser { src, toks, pos: 0 };
    let e = p.ternary()?;
    if p.peek().is_some() {
        return Err(RslError::ExpectedToken {
            expected: "end of expression",
            found: p.found(),
            pos: p.here(),
        });
    }
    Ok(e)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn precedence_mul_over_add() {
        let e = parse_expr("1 + 2 * 3").unwrap();
        assert_eq!(
            e,
            Expr::Binary(
                BinOp::Add,
                Box::new(Expr::Int(1)),
                Box::new(Expr::Binary(BinOp::Mul, Box::new(Expr::Int(2)), Box::new(Expr::Int(3)))),
            )
        );
    }

    #[test]
    fn left_associativity_of_sub() {
        let e = parse_expr("10 - 3 - 2").unwrap();
        // (10 - 3) - 2
        assert_eq!(e.to_string(), "((10 - 3) - 2)");
    }

    #[test]
    fn parens_override() {
        let e = parse_expr("(1 + 2) * 3").unwrap();
        assert_eq!(e.to_string(), "((1 + 2) * 3)");
    }

    #[test]
    fn ternary_is_right_associative() {
        let e = parse_expr("a ? 1 : b ? 2 : 3").unwrap();
        assert_eq!(e.to_string(), "(a ? 1 : (b ? 2 : 3))");
    }

    #[test]
    fn nested_ternary_in_then_branch() {
        let e = parse_expr("a ? b ? 1 : 2 : 3").unwrap();
        assert_eq!(e.to_string(), "(a ? (b ? 1 : 2) : 3)");
    }

    #[test]
    fn logical_precedence() {
        let e = parse_expr("a || b && c").unwrap();
        assert_eq!(e.to_string(), "(a || (b && c))");
    }

    #[test]
    fn comparison_binds_tighter_than_logic() {
        let e = parse_expr("a < 2 && b > 3").unwrap();
        assert_eq!(e.to_string(), "((a < 2) && (b > 3))");
    }

    #[test]
    fn chained_comparison_rejected() {
        assert!(parse_expr("a < b < c").is_err());
    }

    #[test]
    fn call_with_args() {
        let e = parse_expr("min(a, 2 + 3)").unwrap();
        assert_eq!(
            e,
            Expr::Call(
                "min".into(),
                vec![
                    Expr::Name("a".into()),
                    Expr::Binary(BinOp::Add, Box::new(Expr::Int(2)), Box::new(Expr::Int(3))),
                ]
            )
        );
    }

    #[test]
    fn call_with_no_args() {
        let e = parse_expr("rand()").unwrap();
        assert_eq!(e, Expr::Call("rand".into(), vec![]));
    }

    #[test]
    fn unary_stacking() {
        let e = parse_expr("--1").unwrap();
        assert_eq!(e.to_string(), "-(-(1))");
        let e = parse_expr("!!x").unwrap();
        assert_eq!(e.to_string(), "!(!(x))");
    }

    #[test]
    fn trailing_tokens_rejected() {
        assert!(parse_expr("1 + 2 3").is_err());
        assert!(parse_expr("1 +").is_err());
        assert!(parse_expr("").is_err());
        assert!(parse_expr("(1").is_err());
    }

    #[test]
    fn fig3_expression_parses() {
        let e = parse_expr("44 + (client.memory > 24 ? 24 : client.memory) - 17").unwrap();
        assert_eq!(e.free_names(), vec!["client.memory".to_string()]);
    }

    #[test]
    fn fig2b_expressions_parse() {
        assert!(parse_expr("1200 / workerNodes").is_ok());
        assert!(parse_expr("0.5 * workerNodes * workerNodes").is_ok());
    }
}
