//! Parser from TCL word trees to typed RSL statements.
//!
//! A Harmony RSL script is a sequence of statements:
//!
//! ```text
//! harmonyBundle <app>[:<instance>] <bundleName> { {<option> <tag-item>...} ... }
//! harmonyNode <name> {speed s} {memory m} {os o} {hostname h}
//! harmonyLink <a> <b> {bandwidth mbps} {latency s}
//! ```
//!
//! Option tag items:
//!
//! ```text
//! {variable <name> {<v1> <v2> ...}}
//! {node <localName> [*] [{replicate <n|var>}] {<tag> <value>}...}
//! {link <a> <b> <bandwidth>}
//! {communication <value>}
//! {performance {<x> <t>} ... | {<expr>}}
//! {granularity <seconds>}
//! {friction <value>}
//! ```

use crate::error::{Result, RslError};
use crate::expr::parse_expr;
use crate::list::{parse_tree_spanned, SpannedNode};
use crate::schema::bundle::{
    BundleSpec, CountSpec, LinkReq, NodeReq, OptionSpec, PerfSpec, VariableSpec,
};
use crate::schema::decl::{LinkDecl, NodeDecl};
use crate::schema::tagvalue::TagValue;
use crate::span::Span;

/// A parsed top-level RSL statement.
#[derive(Debug, Clone, PartialEq)]
pub enum Statement {
    /// An application bundle definition.
    Bundle(BundleSpec),
    /// A node availability declaration.
    Node(NodeDecl),
    /// A link availability declaration.
    Link(LinkDecl),
}

/// Parses a full RSL script into statements.
///
/// # Errors
///
/// Returns list-syntax errors from the lexer and [`RslError::Schema`] for
/// structural problems (unknown keywords, missing fields, bad tag shapes).
///
/// # Examples
///
/// ```
/// use harmony_rsl::schema::{parse_statements, Statement};
/// let stmts = parse_statements(
///     "harmonyNode n1 {speed 1.5} {memory 256}\n\
///      harmonyBundle app:1 b { {only {node w {seconds 10}}} }",
/// )?;
/// assert_eq!(stmts.len(), 2);
/// assert!(matches!(stmts[0], Statement::Node(_)));
/// assert!(matches!(stmts[1], Statement::Bundle(_)));
/// # Ok::<(), harmony_rsl::RslError>(())
/// ```
pub fn parse_statements(src: &str) -> Result<Vec<Statement>> {
    let nodes = parse_tree_spanned(src)?;
    let mut stmts = Vec::new();
    let mut i = 0usize;
    while i < nodes.len() {
        let kw = nodes[i].word().ok_or_else(|| {
            RslError::schema("expected a statement keyword (harmonyBundle/harmonyNode/harmonyLink)")
        })?;
        match kw {
            "harmonyBundle" => {
                let (stmt, next) = parse_bundle(&nodes, i)?;
                stmts.push(Statement::Bundle(stmt));
                i = next;
            }
            "harmonyNode" => {
                let (stmt, next) = parse_node_decl(&nodes, i)?;
                stmts.push(Statement::Node(stmt));
                i = next;
            }
            "harmonyLink" => {
                let (stmt, next) = parse_link_decl(&nodes, i)?;
                stmts.push(Statement::Link(stmt));
                i = next;
            }
            other => {
                return Err(RslError::schema(format!(
                    "unknown statement keyword `{other}` (expected harmonyBundle, harmonyNode, or harmonyLink)"
                )))
            }
        }
    }
    Ok(stmts)
}

/// Parses a single `harmonyBundle` script (convenience for the common case
/// of one bundle per message).
///
/// # Errors
///
/// [`RslError::Schema`] when the script does not contain exactly one bundle
/// statement, plus any parse errors.
pub fn parse_bundle_script(src: &str) -> Result<BundleSpec> {
    let stmts = parse_statements(src)?;
    match <[Statement; 1]>::try_from(stmts) {
        Ok([Statement::Bundle(b)]) => Ok(b),
        Ok(_) => Err(RslError::schema("expected a harmonyBundle statement")),
        Err(v) => {
            Err(RslError::schema(format!("expected exactly one statement, found {}", v.len())))
        }
    }
}

fn word_at<'n>(nodes: &'n [SpannedNode], i: usize, what: &str) -> Result<&'n str> {
    nodes
        .get(i)
        .and_then(SpannedNode::word)
        .ok_or_else(|| RslError::schema(format!("expected {what}")))
}

fn list_at<'n>(nodes: &'n [SpannedNode], i: usize, what: &str) -> Result<&'n [SpannedNode]> {
    nodes
        .get(i)
        .and_then(SpannedNode::list)
        .ok_or_else(|| RslError::schema(format!("expected {what}")))
}

fn span_at(nodes: &[SpannedNode], i: usize) -> Span {
    nodes.get(i).map(SpannedNode::span).unwrap_or_default()
}

fn parse_tag_value(node: &SpannedNode) -> Result<TagValue> {
    TagValue::parse(&node.to_node())
}

fn parse_bundle(nodes: &[SpannedNode], start: usize) -> Result<(BundleSpec, usize)> {
    let ident = word_at(nodes, start + 1, "application identifier after harmonyBundle")?;
    let (app, instance) = match ident.split_once(':') {
        Some((app, inst)) => {
            let id: u64 = inst.parse().map_err(|_| {
                RslError::schema(format!("instance id must be an integer, got `{inst}`"))
            })?;
            (app.to_string(), Some(id))
        }
        None => (ident.to_string(), None),
    };
    let name = word_at(nodes, start + 2, "bundle name")?.to_string();
    let body = list_at(nodes, start + 3, "braced option list for bundle")?;
    let mut options = Vec::new();
    for item in body {
        let opt_nodes = item.list().ok_or_else(|| {
            RslError::schema(format!(
                "each bundle option must be a braced list, got `{}`",
                item.canonical()
            ))
        })?;
        options.push(parse_option(opt_nodes, item.span())?);
    }
    if options.is_empty() {
        return Err(RslError::schema(format!("bundle `{name}` has no options")));
    }
    let mut bundle = BundleSpec::new(app, instance, name);
    bundle.options = options;
    bundle.span = span_at(nodes, start).merge(&span_at(nodes, start + 3));
    bundle.app_span = span_at(nodes, start + 1);
    bundle.name_span = span_at(nodes, start + 2);
    Ok((bundle, start + 4))
}

fn parse_option(nodes: &[SpannedNode], span: Span) -> Result<OptionSpec> {
    let name = nodes
        .first()
        .and_then(SpannedNode::word)
        .ok_or_else(|| RslError::schema("option must start with its name"))?;
    let mut opt = OptionSpec::new(name);
    opt.span = span;
    opt.name_span = span_at(nodes, 0);
    for item in &nodes[1..] {
        let items = item.list().ok_or_else(|| {
            RslError::schema(format!(
                "option `{name}`: tag items must be braced lists, got `{}`",
                item.canonical()
            ))
        })?;
        let tag = items
            .first()
            .and_then(SpannedNode::word)
            .ok_or_else(|| RslError::schema(format!("option `{name}`: empty tag item")))?;
        match tag {
            "variable" => opt.variables.push(parse_variable(items, item.span())?),
            "node" => opt.nodes.push(parse_node_req(items, item.span())?),
            "link" => opt.links.push(parse_link_req(items, item.span())?),
            "communication" => {
                let value = items
                    .get(1)
                    .ok_or_else(|| RslError::schema("communication tag needs a value"))?;
                opt.communication = Some(parse_tag_value(value)?);
                opt.communication_span = value.span();
            }
            "performance" => {
                opt.performance = Some(parse_performance(&items[1..])?);
                opt.performance_span = item.span();
            }
            "granularity" => {
                let word = word_at(items, 1, "granularity value")?;
                let g: f64 = word.parse().map_err(|_| {
                    RslError::schema(format!("granularity must be a number, got `{word}`"))
                })?;
                opt.granularity = Some(g);
                opt.granularity_span = span_at(items, 1);
            }
            "friction" => {
                let value =
                    items.get(1).ok_or_else(|| RslError::schema("friction tag needs a value"))?;
                opt.friction = Some(parse_tag_value(value)?);
                opt.friction_span = value.span();
            }
            other => {
                return Err(RslError::schema(format!("option `{name}`: unknown tag `{other}`")))
            }
        }
    }
    Ok(opt)
}

fn parse_variable(items: &[SpannedNode], span: Span) -> Result<VariableSpec> {
    let name = word_at(items, 1, "variable name")?.to_string();
    let choice_list = list_at(items, 2, "braced choice list for variable")?;
    let mut choices = Vec::new();
    for c in choice_list {
        let w = c.word().ok_or_else(|| RslError::schema("variable choices must be integers"))?;
        let v: i64 = w.parse().map_err(|_| {
            RslError::schema(format!("variable choice must be an integer, got `{w}`"))
        })?;
        choices.push(v);
    }
    if choices.is_empty() {
        return Err(RslError::schema(format!("variable `{name}` has no choices")));
    }
    let mut var = VariableSpec::new(name, choices);
    var.span = span;
    var.name_span = span_at(items, 1);
    var.choices_span = span_at(items, 2);
    Ok(var)
}

fn parse_node_req(items: &[SpannedNode], span: Span) -> Result<NodeReq> {
    let mut req = NodeReq::new(word_at(items, 1, "node local name")?);
    req.span = span;
    req.name_span = span_at(items, 1);
    for item in &items[2..] {
        match item {
            // A bare `*` after the name (Figure 3's `{node client *}`)
            // means "any host": equivalent to `{hostname *}`.
            SpannedNode::Word(w, wspan) if w == "*" => {
                req.tags.push(("hostname".into(), TagValue::Any));
                req.tag_spans.push(*wspan);
            }
            SpannedNode::Word(w, _) => {
                return Err(RslError::schema(format!(
                    "node `{}`: unexpected bare word `{w}` (tags must be braced)",
                    req.name
                )))
            }
            SpannedNode::List(pair, _) => {
                let tag = pair
                    .first()
                    .and_then(SpannedNode::word)
                    .ok_or_else(|| RslError::schema(format!("node `{}`: empty tag", req.name)))?;
                if tag == "replicate" {
                    let w = word_at(pair, 1, "replicate count")?;
                    req.count = match w.parse::<u32>() {
                        Ok(n) => CountSpec::Replicate(n),
                        Err(_) => CountSpec::Param(w.to_string()),
                    };
                    continue;
                }
                let value = pair.get(1).ok_or_else(|| {
                    RslError::schema(format!("node `{}`: tag `{tag}` needs a value", req.name))
                })?;
                req.tags.push((tag.to_string(), parse_tag_value(value)?));
                req.tag_spans.push(value.span());
            }
        }
    }
    Ok(req)
}

fn parse_link_req(items: &[SpannedNode], span: Span) -> Result<LinkReq> {
    let a = word_at(items, 1, "link endpoint")?.to_string();
    let b = word_at(items, 2, "link endpoint")?.to_string();
    let value = items.get(3).ok_or_else(|| RslError::schema("link tag needs a bandwidth value"))?;
    let mut link = LinkReq::new(a, b, parse_tag_value(value)?);
    link.span = span;
    link.a_span = span_at(items, 1);
    link.b_span = span_at(items, 2);
    link.bandwidth_span = value.span();
    Ok(link)
}

fn parse_performance(items: &[SpannedNode]) -> Result<PerfSpec> {
    if items.is_empty() {
        return Err(RslError::schema("performance tag needs data points or an expression"));
    }
    // All items being two-number lists ⇒ data points.
    let mut points = Vec::with_capacity(items.len());
    let mut all_points = true;
    for item in items {
        match item.list() {
            Some(pair) if pair.len() == 2 => {
                let x = pair[0].word().and_then(|w| w.parse::<f64>().ok());
                let y = pair[1].word().and_then(|w| w.parse::<f64>().ok());
                match (x, y) {
                    (Some(x), Some(y)) => points.push((x, y)),
                    _ => {
                        all_points = false;
                        break;
                    }
                }
            }
            _ => {
                all_points = false;
                break;
            }
        }
    }
    if all_points {
        return Ok(PerfSpec::Points(points));
    }
    if items.len() == 1 {
        if let Some(inner) = items[0].list() {
            let text = crate::list::canonicalize(
                &inner.iter().map(SpannedNode::to_node).collect::<Vec<_>>(),
            );
            let e = parse_expr(&text).map_err(|err| {
                RslError::schema(format!("performance expression does not parse: {err}"))
            })?;
            return Ok(PerfSpec::Expr(e));
        }
    }
    Err(RslError::schema("performance tag must be a list of {x t} points or a single {expression}"))
}

fn parse_node_decl(nodes: &[SpannedNode], start: usize) -> Result<(NodeDecl, usize)> {
    let name = word_at(nodes, start + 1, "node name after harmonyNode")?.to_string();
    let mut decl = NodeDecl::new(name, 1.0, 0.0);
    let mut i = start + 2;
    while let Some(SpannedNode::List(pair, _)) = nodes.get(i) {
        let tag = pair
            .first()
            .and_then(SpannedNode::word)
            .ok_or_else(|| RslError::schema("harmonyNode: empty tag"))?;
        let value = word_at(pair, 1, "harmonyNode tag value")?;
        match tag {
            "speed" => {
                decl.speed = value.parse().map_err(|_| {
                    RslError::schema(format!("speed must be a number, got `{value}`"))
                })?
            }
            "memory" => {
                decl.memory = value.parse().map_err(|_| {
                    RslError::schema(format!("memory must be a number, got `{value}`"))
                })?
            }
            "os" => decl.os = value.to_string(),
            "hostname" => decl.hostname = value.to_string(),
            other => return Err(RslError::schema(format!("harmonyNode: unknown tag `{other}`"))),
        }
        i += 1;
    }
    Ok((decl, i))
}

fn parse_link_decl(nodes: &[SpannedNode], start: usize) -> Result<(LinkDecl, usize)> {
    let a = word_at(nodes, start + 1, "link endpoint after harmonyLink")?.to_string();
    let b = word_at(nodes, start + 2, "second link endpoint")?.to_string();
    let mut decl = LinkDecl::new(a, b, 0.0);
    let mut i = start + 3;
    while let Some(SpannedNode::List(pair, _)) = nodes.get(i) {
        let tag = pair
            .first()
            .and_then(SpannedNode::word)
            .ok_or_else(|| RslError::schema("harmonyLink: empty tag"))?;
        let value = word_at(pair, 1, "harmonyLink tag value")?;
        let x: f64 = value.parse().map_err(|_| {
            RslError::schema(format!("harmonyLink `{tag}` must be a number, got `{value}`"))
        })?;
        match tag {
            "bandwidth" => decl.bandwidth = x,
            "latency" => decl.latency = x,
            other => return Err(RslError::schema(format!("harmonyLink: unknown tag `{other}`"))),
        }
        i += 1;
    }
    Ok((decl, i))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::value::Value;

    #[test]
    fn parses_fig2a_simple() {
        let src = "harmonyBundle simple:1 config {\n\
             {fixed\n\
               {node worker {replicate 4} {seconds 300} {memory 32}}\n\
               {communication 100}}\n\
           }";
        let bundle = parse_bundle_script(src).unwrap();
        assert_eq!(bundle.app, "simple");
        assert_eq!(bundle.instance, Some(1));
        assert_eq!(bundle.name, "config");
        assert_eq!(bundle.options.len(), 1);
        let opt = &bundle.options[0];
        assert_eq!(opt.name, "fixed");
        assert_eq!(opt.nodes.len(), 1);
        assert_eq!(opt.nodes[0].count, CountSpec::Replicate(4));
        assert_eq!(opt.nodes[0].seconds(), Some(&TagValue::Exact(Value::Int(300))));
        assert!(opt.communication.is_some());
    }

    #[test]
    fn parses_fig2b_bag() {
        let src = "harmonyBundle bag:1 config {\n\
             {run\n\
               {variable workerNodes {1 2 4 8}}\n\
               {node worker {replicate workerNodes} {seconds {1200 / workerNodes}} {memory 32}}\n\
               {communication {0.5 * workerNodes * workerNodes}}\n\
               {performance {1 1200} {2 620} {4 340} {8 230}}}\n\
           }";
        let bundle = parse_bundle_script(src).unwrap();
        let opt = &bundle.options[0];
        assert_eq!(opt.variables.len(), 1);
        assert_eq!(opt.variables[0].choices, vec![1, 2, 4, 8]);
        assert_eq!(opt.nodes[0].count, CountSpec::Param("workerNodes".into()));
        assert!(matches!(opt.nodes[0].seconds(), Some(TagValue::Expr(_))));
        assert!(matches!(opt.communication, Some(TagValue::Expr(_))));
        match &opt.performance {
            Some(PerfSpec::Points(pts)) => {
                assert_eq!(pts, &vec![(1.0, 1200.0), (2.0, 620.0), (4.0, 340.0), (8.0, 230.0)])
            }
            other => panic!("expected points, got {other:?}"),
        }
    }

    #[test]
    fn parses_fig3_dbclient() {
        let src = "harmonyBundle DBclient:1 where {\n\
             {QS\n\
               {node server {hostname harmony.cs.umd.edu} {seconds 4} {memory 20}}\n\
               {node client * {os linux} {seconds 1} {memory 2}}\n\
               {link client server 2}}\n\
             {DS\n\
               {node server {hostname harmony.cs.umd.edu} {seconds 1} {memory 20}}\n\
               {node client * {os linux} {memory >=17} {seconds 9}}\n\
               {link client server {44 + (client.memory > 24 ? 24 : client.memory) - 17}}}\n\
           }";
        let bundle = parse_bundle_script(src).unwrap();
        assert_eq!(bundle.option_names(), vec!["QS", "DS"]);
        let qs = bundle.option("QS").unwrap();
        let ds = bundle.option("DS").unwrap();
        // QS consumes more at the server, DS more at the client.
        let env = crate::expr::MapEnv::new();
        let qs_server = qs.node("server").unwrap().seconds().unwrap().amount(&env).unwrap();
        let ds_server = ds.node("server").unwrap().seconds().unwrap().amount(&env).unwrap();
        assert!(qs_server > ds_server);
        let qs_client = qs.node("client").unwrap().seconds().unwrap().amount(&env).unwrap();
        let ds_client = ds.node("client").unwrap().seconds().unwrap().amount(&env).unwrap();
        assert!(ds_client > qs_client);
        // DS client memory is elastic.
        assert!(ds.node("client").unwrap().memory().unwrap().is_elastic());
        // The wildcard client gets an implicit {hostname *}.
        assert_eq!(qs.node("client").unwrap().hostname(), Some(&TagValue::Any));
        // DS bandwidth depends on client.memory.
        assert_eq!(ds.links[0].bandwidth.free_names(), vec!["client.memory".to_string()]);
    }

    #[test]
    fn parses_node_and_link_decls() {
        let src = "harmonyNode n1 {speed 1.5} {memory 256} {os aix} {hostname n1.sp2}\n\
                   harmonyLink n1 n2 {bandwidth 320} {latency 0.0001}";
        let stmts = parse_statements(src).unwrap();
        match &stmts[0] {
            Statement::Node(n) => {
                assert_eq!(n.speed, 1.5);
                assert_eq!(n.memory, 256.0);
                assert_eq!(n.os, "aix");
                assert_eq!(n.hostname, "n1.sp2");
            }
            other => panic!("expected node, got {other:?}"),
        }
        match &stmts[1] {
            Statement::Link(l) => {
                assert_eq!(l.bandwidth, 320.0);
                assert_eq!(l.latency, 0.0001);
            }
            other => panic!("expected link, got {other:?}"),
        }
    }

    #[test]
    fn granularity_and_friction() {
        let src = "harmonyBundle a b { {o {node n {seconds 1}} {granularity 60} {friction 5}} }";
        let bundle = parse_bundle_script(src).unwrap();
        let opt = &bundle.options[0];
        assert_eq!(opt.granularity, Some(60.0));
        assert_eq!(opt.friction, Some(TagValue::Exact(Value::Int(5))));
    }

    #[test]
    fn performance_expression_form() {
        let src = "harmonyBundle a b { {o {performance {1200 / workerNodes}}} }";
        let bundle = parse_bundle_script(src).unwrap();
        assert!(matches!(bundle.options[0].performance, Some(PerfSpec::Expr(_))));
    }

    #[test]
    fn schema_errors_are_descriptive() {
        // No options.
        let err = parse_bundle_script("harmonyBundle a b {}").unwrap_err();
        assert!(err.to_string().contains("no options"), "{err}");
        // Unknown keyword.
        let err = parse_statements("harmonyFrob x").unwrap_err();
        assert!(err.to_string().contains("harmonyFrob"), "{err}");
        // Unknown tag.
        let err = parse_bundle_script("harmonyBundle a b { {o {widget 3}} }").unwrap_err();
        assert!(err.to_string().contains("widget"), "{err}");
        // Bad instance.
        let err = parse_bundle_script("harmonyBundle a:x b { {o} }").unwrap_err();
        assert!(err.to_string().contains("instance"), "{err}");
        // Variable without choices.
        let err = parse_bundle_script("harmonyBundle a b { {o {variable v {}}} }").unwrap_err();
        assert!(err.to_string().contains("no choices"), "{err}");
        // Multiple statements via parse_bundle_script.
        let err =
            parse_bundle_script("harmonyNode n {speed 1}\nharmonyNode m {speed 1}").unwrap_err();
        assert!(err.to_string().contains("exactly one"), "{err}");
    }

    #[test]
    fn spans_point_at_source_constructs() {
        let src = "harmonyBundle bag:1 config {\n\
             {run\n\
               {variable workerNodes {1 2 4 8}}\n\
               {node worker {replicate workerNodes} {seconds {1200 / workerNodes}}}\n\
               {link worker worker 2}\n\
               {communication {0.5 * workerNodes}}\n\
               {performance {1 1200} {2 620}}\n\
               {granularity 60}}\n\
           }";
        let bundle = parse_bundle_script(src).unwrap();
        assert_eq!(bundle.app_span.slice(src), Some("bag:1"));
        assert_eq!(bundle.name_span.slice(src), Some("config"));
        assert_eq!(bundle.span.slice(src), Some(src));
        let opt = &bundle.options[0];
        assert_eq!(opt.name_span.slice(src), Some("run"));
        assert!(opt.span.slice(src).unwrap().starts_with("{run"));
        let var = &opt.variables[0];
        assert_eq!(var.name_span.slice(src), Some("workerNodes"));
        assert_eq!(var.choices_span.slice(src), Some("{1 2 4 8}"));
        let node = &opt.nodes[0];
        assert_eq!(node.name_span.slice(src), Some("worker"));
        assert_eq!(node.tag_span(0).slice(src), Some("{1200 / workerNodes}"));
        assert_eq!(opt.links[0].bandwidth_span.slice(src), Some("2"));
        assert_eq!(opt.communication_span.slice(src), Some("{0.5 * workerNodes}"));
        assert_eq!(opt.performance_span.slice(src), Some("{performance {1 1200} {2 620}}"));
        assert_eq!(opt.granularity_span.slice(src), Some("60"));
        // Line:column of the seconds expression resolves into the node line.
        let pos = node.tag_span(0).pos(src);
        assert_eq!(pos.line, 4);
    }

    #[test]
    fn empty_script_yields_no_statements() {
        assert!(parse_statements("").unwrap().is_empty());
        assert!(parse_statements("# just a comment\n").unwrap().is_empty());
    }
}
