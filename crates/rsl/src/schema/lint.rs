//! Bundle linting: advisory diagnostics beyond hard parse errors.
//!
//! **Deprecated**: superseded by the `harmony-analyze` crate, which covers
//! every check here (under stable `HAxxxx` codes, with byte-span labels)
//! plus type checking, reachability analysis over choice domains,
//! performance-table validation, dominance, and namespace checks. This
//! module stays only so existing callers of [`lint_bundle`]/[`is_clean`]
//! keep compiling; it receives no new checks.
//!
//! The schema parser rejects structurally invalid RSL; this linter catches
//! the specifications that parse but will not behave as the author
//! intended — an unused `variable`, a `link` naming a node that no option
//! defines, a tag referencing an allocation value that will never be
//! bound. Harmony's prototype silently mis-ran such bundles; a downstream
//! user gets a list instead.

use std::fmt;

use crate::schema::bundle::{BundleSpec, CountSpec, OptionSpec};

/// Severity of a lint finding.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Severity {
    /// Stylistic or probably-unintended.
    Warning,
    /// Will misbehave at match/evaluation time.
    Error,
}

/// One lint finding.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Lint {
    /// Severity.
    pub severity: Severity,
    /// Option the finding is in (empty for bundle-level findings).
    pub option: String,
    /// Human-readable message.
    pub message: String,
}

impl fmt::Display for Lint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let sev = match self.severity {
            Severity::Warning => "warning",
            Severity::Error => "error",
        };
        if self.option.is_empty() {
            write!(f, "{sev}: {}", self.message)
        } else {
            write!(f, "{sev}: option `{}`: {}", self.option, self.message)
        }
    }
}

fn lint_option(opt: &OptionSpec, out: &mut Vec<Lint>) {
    let push = |out: &mut Vec<Lint>, severity, message: String| {
        out.push(Lint { severity, option: opt.name.clone(), message });
    };

    // Node-name bookkeeping.
    let node_names: Vec<&str> = opt.nodes.iter().map(|n| n.name.as_str()).collect();
    {
        let mut seen: Vec<&str> = Vec::new();
        for n in &node_names {
            if seen.contains(n) {
                push(out, Severity::Error, format!("node requirement `{n}` is defined twice"));
            }
            seen.push(n);
        }
    }

    // Links must reference defined node requirements.
    for link in &opt.links {
        for end in [&link.a, &link.b] {
            if !node_names.contains(&end.as_str()) {
                push(
                    out,
                    Severity::Error,
                    format!("link references undefined node requirement `{end}`"),
                );
            }
        }
        if link.a == link.b {
            push(
                out,
                Severity::Warning,
                format!("link connects `{}` to itself (intra-node links are free)", link.a),
            );
        }
    }

    // Variables: declared but never referenced / referenced but never
    // declared. A variable may legitimately be consumed only through a
    // replicate count.
    let declared: Vec<&str> = opt.variables.iter().map(|v| v.name.as_str()).collect();
    let mut referenced: Vec<String> = opt.free_names();
    for node in &opt.nodes {
        if let CountSpec::Param(p) = &node.count {
            referenced.push(p.clone());
        }
    }
    for var in &declared {
        if !referenced.iter().any(|r| r == var) {
            push(out, Severity::Warning, format!("variable `{var}` is declared but never used"));
        }
    }
    for name in &referenced {
        // Dotted names resolve against the allocation (e.g.
        // `client.memory`); their head must be a node requirement.
        if let Some((head, _)) = name.split_once('.') {
            if !node_names.contains(&head) {
                push(
                    out,
                    Severity::Error,
                    format!("`{name}` references `{head}`, which is not a node requirement"),
                );
            }
        } else if !declared.contains(&name.as_str()) {
            push(
                out,
                Severity::Error,
                format!("`{name}` is referenced but not declared as a variable"),
            );
        }
    }

    // Variable choice sanity.
    for var in &opt.variables {
        let mut sorted = var.choices.clone();
        sorted.sort_unstable();
        sorted.dedup();
        if sorted.len() != var.choices.len() {
            push(out, Severity::Warning, format!("variable `{}` has duplicate choices", var.name));
        }
        if var.choices.iter().any(|&c| c <= 0) {
            push(
                out,
                Severity::Warning,
                format!("variable `{}` includes non-positive choices", var.name),
            );
        }
    }

    // Granularity/friction sanity.
    if let Some(g) = opt.granularity {
        if g < 0.0 {
            push(out, Severity::Error, format!("granularity {g} is negative"));
        }
    }

    // Options without any node requirement never consume anything.
    if opt.nodes.is_empty() {
        push(
            out,
            Severity::Warning,
            "option has no node requirements; it consumes nothing".to_string(),
        );
    }
}

/// Lints a bundle, returning findings sorted errors-first.
#[deprecated(
    since = "0.1.0",
    note = "use `harmony_analyze::analyze_bundle`, which subsumes these \
            checks under stable diagnostic codes with source spans"
)]
pub fn lint_bundle(bundle: &BundleSpec) -> Vec<Lint> {
    let mut out = Vec::new();
    // Duplicate option names shadow each other in `BundleSpec::option`.
    let mut seen: Vec<&str> = Vec::new();
    for opt in &bundle.options {
        if seen.contains(&opt.name.as_str()) {
            out.push(Lint {
                severity: Severity::Error,
                option: String::new(),
                message: format!("option `{}` is defined twice", opt.name),
            });
        }
        seen.push(&opt.name);
        lint_option(opt, &mut out);
    }
    out.sort_by_key(|l| std::cmp::Reverse(l.severity));
    out
}

/// True when the findings contain no [`Severity::Error`].
#[deprecated(
    since = "0.1.0",
    note = "use `harmony_analyze::is_clean` on `analyze_bundle` diagnostics"
)]
pub fn is_clean(lints: &[Lint]) -> bool {
    lints.iter().all(|l| l.severity != Severity::Error)
}

#[cfg(test)]
mod tests {
    #![allow(deprecated)]

    use super::*;
    use crate::schema::parse_bundle_script;

    fn lints(src: &str) -> Vec<Lint> {
        lint_bundle(&parse_bundle_script(src).unwrap())
    }

    #[test]
    fn paper_listings_are_clean() {
        for src in [
            crate::listings::FIG2A_SIMPLE,
            crate::listings::FIG2B_BAG,
            crate::listings::FIG3_DBCLIENT,
        ] {
            let found = lints(src);
            assert!(is_clean(&found), "{found:?}");
            // And free of warnings too.
            assert!(found.is_empty(), "{found:?}");
        }
    }

    #[test]
    fn unused_variable_warns() {
        let found = lints("harmonyBundle a b { {o {variable w {1 2}} {node n {seconds 1}}} }");
        assert_eq!(found.len(), 1);
        assert_eq!(found[0].severity, Severity::Warning);
        assert!(found[0].message.contains("never used"));
        assert!(is_clean(&found));
    }

    #[test]
    fn undeclared_variable_errors() {
        let found = lints("harmonyBundle a b { {o {node n {seconds {100 / w}}}} }");
        assert!(found
            .iter()
            .any(|l| l.severity == Severity::Error && l.message.contains("not declared")));
        assert!(!is_clean(&found));
    }

    #[test]
    fn bad_link_endpoint_errors() {
        let found = lints("harmonyBundle a b { {o {node x {seconds 1}} {link x ghost 5}} }");
        assert!(found.iter().any(|l| l.message.contains("undefined node requirement `ghost`")));
    }

    #[test]
    fn self_link_warns() {
        let found = lints("harmonyBundle a b { {o {node x {seconds 1}} {link x x 5}} }");
        assert!(found.iter().any(|l| l.message.contains("itself")));
        assert!(is_clean(&found));
    }

    #[test]
    fn dotted_reference_to_unknown_node_errors() {
        let found = lints(
            "harmonyBundle a b { {o {node x {seconds 1}} \
             {communication {10 + ghost.memory}}} }",
        );
        assert!(found
            .iter()
            .any(|l| l.message.contains("`ghost`") && l.severity == Severity::Error));
    }

    #[test]
    fn duplicate_options_and_nodes_error() {
        let found = lints(
            "harmonyBundle a b { {o {node n {seconds 1}} {node n {seconds 2}}} \
             {o {node m {seconds 1}}} }",
        );
        assert!(found.iter().any(|l| l.message.contains("option `o` is defined twice")));
        assert!(found.iter().any(|l| l.message.contains("node requirement `n` is defined twice")));
    }

    #[test]
    fn replicate_param_counts_as_a_use() {
        let found = lints(
            "harmonyBundle a b { {o {variable w {1 2}} \
             {node n {replicate w} {seconds 1}}} }",
        );
        assert!(found.is_empty(), "{found:?}");
    }

    #[test]
    fn choice_sanity_warnings() {
        let found = lints(
            "harmonyBundle a b { {o {variable w {2 2 0}} \
             {node n {replicate w} {seconds 1}}} }",
        );
        assert!(found.iter().any(|l| l.message.contains("duplicate choices")));
        assert!(found.iter().any(|l| l.message.contains("non-positive")));
    }

    #[test]
    fn empty_option_warns_and_display_renders() {
        let found = lints("harmonyBundle a b { {o {granularity 5}} }");
        assert!(found.iter().any(|l| l.message.contains("consumes nothing")));
        for l in &found {
            assert!(!l.to_string().is_empty());
        }
    }

    #[test]
    fn errors_sort_before_warnings() {
        let found = lints(
            "harmonyBundle a b { {o {variable unused {1}} \
             {node n {seconds {100 / w}}}} }",
        );
        assert!(found.len() >= 2);
        assert_eq!(found[0].severity, Severity::Error);
    }
}
