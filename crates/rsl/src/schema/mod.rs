//! Typed RSL schema: bundles, options, node/link requirements, resource
//! declarations, and the statement parser.

mod bundle;
mod decl;
mod parser;
mod tagvalue;

pub use bundle::{
    piecewise_linear, BundleSpec, CountSpec, LinkReq, NodeReq, OptionSpec, PerfSpec, VariableSpec,
};
pub use decl::{LinkDecl, NodeDecl, REFERENCE_MACHINE};
pub use parser::{parse_bundle_script, parse_statements, Statement};
pub use tagvalue::{node_to_value, TagValue};
