//! Resource availability declarations: `harmonyNode` and `harmonyLink`.
//!
//! Table 1: "harmonyNode — Resource availability" and "speed — Speed of node
//! relative to reference node (400 MHz Pentium II)". Nodes publish their
//! capacity as a scaling factor against that abstract reference machine;
//! links publish bandwidth and latency (§4.1).

use serde::{Deserialize, Serialize};

/// The abstract reference machine all CPU requirements are expressed
/// against: a 400 MHz Pentium II (paper §3).
pub const REFERENCE_MACHINE: &str = "400 MHz Pentium II";

/// A published node: `harmonyNode <name> {speed s} {memory m} {os o} ...`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct NodeDecl {
    /// Unique node name.
    pub name: String,
    /// Computing capacity relative to the reference machine (1.0 = a
    /// 400 MHz Pentium II; 2.0 runs reference-machine work twice as fast).
    pub speed: f64,
    /// Physical memory in megabytes.
    pub memory: f64,
    /// Operating system label.
    pub os: String,
    /// Network hostname; defaults to the node name.
    pub hostname: String,
}

impl NodeDecl {
    /// Creates a node with the given name and capacity, defaulting `os` to
    /// `linux` and `hostname` to the node name.
    pub fn new(name: impl Into<String>, speed: f64, memory: f64) -> Self {
        let name = name.into();
        NodeDecl { hostname: name.clone(), name, speed, memory, os: "linux".into() }
    }

    /// Sets the OS label.
    pub fn with_os(mut self, os: impl Into<String>) -> Self {
        self.os = os.into();
        self
    }

    /// Sets the hostname.
    pub fn with_hostname(mut self, hostname: impl Into<String>) -> Self {
        self.hostname = hostname.into();
        self
    }

    /// Seconds of wall time this node needs to execute `ref_seconds` of
    /// reference-machine CPU time (ignoring contention).
    pub fn wall_seconds(&self, ref_seconds: f64) -> f64 {
        if self.speed <= 0.0 {
            f64::INFINITY
        } else {
            ref_seconds / self.speed
        }
    }

    /// Canonical RSL text.
    pub fn canonical(&self) -> String {
        format!(
            "harmonyNode {} {{speed {}}} {{memory {}}} {{os {}}} {{hostname {}}}",
            self.name, self.speed, self.memory, self.os, self.hostname
        )
    }
}

/// A published link: `harmonyLink <a> <b> {bandwidth mbps} {latency s}`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LinkDecl {
    /// First endpoint node name.
    pub a: String,
    /// Second endpoint node name.
    pub b: String,
    /// Bandwidth in Mbit/s.
    pub bandwidth: f64,
    /// One-way latency in seconds.
    pub latency: f64,
}

impl LinkDecl {
    /// Creates a link with the given endpoints and bandwidth, with a default
    /// 100 µs latency (LAN-class).
    pub fn new(a: impl Into<String>, b: impl Into<String>, bandwidth: f64) -> Self {
        LinkDecl { a: a.into(), b: b.into(), bandwidth, latency: 1e-4 }
    }

    /// Sets the latency in seconds.
    pub fn with_latency(mut self, latency: f64) -> Self {
        self.latency = latency;
        self
    }

    /// Seconds to transfer `megabytes` of data at full bandwidth, including
    /// one latency hit.
    pub fn transfer_seconds(&self, megabytes: f64) -> f64 {
        if self.bandwidth <= 0.0 {
            return f64::INFINITY;
        }
        self.latency + megabytes * 8.0 / self.bandwidth
    }

    /// Canonical RSL text.
    pub fn canonical(&self) -> String {
        format!(
            "harmonyLink {} {} {{bandwidth {}}} {{latency {}}}",
            self.a, self.b, self.bandwidth, self.latency
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn node_builders_and_defaults() {
        let n = NodeDecl::new("node01", 2.0, 256.0);
        assert_eq!(n.hostname, "node01");
        assert_eq!(n.os, "linux");
        let n = n.with_os("aix").with_hostname("node01.cluster");
        assert_eq!(n.os, "aix");
        assert_eq!(n.hostname, "node01.cluster");
    }

    #[test]
    fn wall_seconds_scales_by_speed() {
        let fast = NodeDecl::new("f", 2.0, 64.0);
        let slow = NodeDecl::new("s", 0.5, 64.0);
        assert_eq!(fast.wall_seconds(300.0), 150.0);
        assert_eq!(slow.wall_seconds(300.0), 600.0);
        let dead = NodeDecl::new("d", 0.0, 64.0);
        assert!(dead.wall_seconds(1.0).is_infinite());
    }

    #[test]
    fn link_transfer_time() {
        // 320 Mbps SP-2 switch: 40 MB/s, so 80 MB takes ~2 s.
        let l = LinkDecl::new("a", "b", 320.0);
        let t = l.transfer_seconds(80.0);
        assert!((t - 2.0001).abs() < 1e-9, "t={t}");
        let broken = LinkDecl::new("a", "b", 0.0);
        assert!(broken.transfer_seconds(1.0).is_infinite());
    }

    #[test]
    fn canonical_reparses() {
        use crate::schema::parser::{parse_statements, Statement};
        let n = NodeDecl::new("node01", 1.5, 128.0);
        let l = LinkDecl::new("node01", "node02", 320.0).with_latency(0.001);
        let text = format!("{}\n{}", n.canonical(), l.canonical());
        let stmts = parse_statements(&text).unwrap();
        assert_eq!(stmts.len(), 2);
        match &stmts[0] {
            Statement::Node(decl) => assert_eq!(decl, &n),
            other => panic!("expected node, got {other:?}"),
        }
        match &stmts[1] {
            Statement::Link(decl) => assert_eq!(decl, &l),
            other => panic!("expected link, got {other:?}"),
        }
    }
}
