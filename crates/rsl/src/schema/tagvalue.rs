//! Tag values: the right-hand sides of RSL tags.
//!
//! A tag value may be a plain literal (`{seconds 300}`), a wildcard
//! (`{hostname *}`), a one-sided constraint (`{memory >=17}`), or a
//! parameterized expression (`{seconds {1200 / workerNodes}}`).

use serde::{Deserialize, Serialize};

use crate::error::{Result, RslError};
use crate::expr::{parse_expr, Env, Expr};
use crate::list::Node;
use crate::value::Value;

/// The parsed right-hand side of a tag.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum TagValue {
    /// `*` — any value is acceptable.
    Any,
    /// `>=x` — the resource must provide at least `x`; more is usable
    /// (Figure 3's `{memory >=17}`).
    AtLeast(f64),
    /// `<=x` — at most `x` is acceptable.
    AtMost(f64),
    /// An exact literal value.
    Exact(Value),
    /// A parameterized expression evaluated against the allocation
    /// environment.
    Expr(Expr),
}

impl TagValue {
    /// Parses a tag value from a list node.
    ///
    /// Words are checked for `*`, `>=n`, `<=n` prefixes; braced content is
    /// parsed as an expression when it parses as one, otherwise kept as a
    /// literal list value.
    ///
    /// # Errors
    ///
    /// Returns [`RslError::Schema`] when a `>=`/`<=` prefix is not followed
    /// by a number.
    pub fn parse(node: &Node) -> Result<TagValue> {
        match node {
            Node::Word(w) => {
                if w == "*" {
                    return Ok(TagValue::Any);
                }
                if let Some(rest) = w.strip_prefix(">=") {
                    let x: f64 = rest.trim().parse().map_err(|_| {
                        RslError::schema(format!("`>=` must be followed by a number, got `{w}`"))
                    })?;
                    return Ok(TagValue::AtLeast(x));
                }
                if let Some(rest) = w.strip_prefix("<=") {
                    let x: f64 = rest.trim().parse().map_err(|_| {
                        RslError::schema(format!("`<=` must be followed by a number, got `{w}`"))
                    })?;
                    return Ok(TagValue::AtMost(x));
                }
                Ok(TagValue::Exact(Value::from_word(w)))
            }
            Node::List(items) => {
                // `{memory >= 17}` may also arrive split into two words.
                if items.len() == 2 {
                    if let (Some(op), Some(num)) = (items[0].word(), items[1].word()) {
                        if op == ">=" || op == "<=" {
                            if let Ok(x) = num.parse::<f64>() {
                                return Ok(if op == ">=" {
                                    TagValue::AtLeast(x)
                                } else {
                                    TagValue::AtMost(x)
                                });
                            }
                        }
                    }
                }
                let text = crate::list::canonicalize(items);
                match parse_expr(&text) {
                    Ok(e) => Ok(TagValue::Expr(e)),
                    Err(_) => Ok(TagValue::Exact(node_to_value(node))),
                }
            }
        }
    }

    /// Evaluates the tag value to a number in the given environment.
    ///
    /// For constraints the *minimum requirement* is returned: `AtLeast(x)`
    /// yields `x`, which is the amount a matcher must reserve before the
    /// controller decides whether to grant more.
    ///
    /// # Errors
    ///
    /// [`RslError::Schema`] for `Any` and `AtMost` (no lower bound), plus
    /// any expression-evaluation errors.
    pub fn amount<E: Env + ?Sized>(&self, env: &E) -> Result<f64> {
        match self {
            TagValue::Any => Err(RslError::schema("`*` has no numeric amount")),
            TagValue::AtLeast(x) => Ok(*x),
            TagValue::AtMost(_) => Err(RslError::schema("`<=` constraint has no minimum amount")),
            TagValue::Exact(v) => v.as_f64(),
            TagValue::Expr(e) => crate::expr::eval(e, env)?.as_f64(),
        }
    }

    /// Tests whether a concrete resource attribute satisfies this tag value.
    ///
    /// `Exact` compares loosely (numeric across int/float, string equality
    /// otherwise); `AtLeast`/`AtMost` compare numerically; `Expr` is
    /// evaluated and then compared loosely.
    ///
    /// # Errors
    ///
    /// Expression evaluation errors; numeric-conversion errors for
    /// `AtLeast`/`AtMost` against non-numeric attributes.
    pub fn accepts<E: Env + ?Sized>(&self, attr: &Value, env: &E) -> Result<bool> {
        match self {
            TagValue::Any => Ok(true),
            TagValue::AtLeast(x) => Ok(attr.as_f64()? >= *x),
            TagValue::AtMost(x) => Ok(attr.as_f64()? <= *x),
            TagValue::Exact(v) => Ok(v.loose_eq(attr)),
            TagValue::Expr(e) => {
                let v = crate::expr::eval(e, env)?;
                Ok(v.loose_eq(attr))
            }
        }
    }

    /// True when this value can use more of a resource than its minimum
    /// (i.e. it is an `AtLeast` constraint). The paper's Figure 3 uses this
    /// to let Harmony profitably allocate extra client memory.
    pub fn is_elastic(&self) -> bool {
        matches!(self, TagValue::AtLeast(_))
    }

    /// The names of allocation/variable bindings this value depends on.
    pub fn free_names(&self) -> Vec<String> {
        match self {
            TagValue::Expr(e) => e.free_names(),
            _ => Vec::new(),
        }
    }

    /// Renders canonical RSL text for this tag value.
    pub fn canonical(&self) -> String {
        match self {
            TagValue::Any => "*".into(),
            TagValue::AtLeast(x) => format!(">={x}"),
            TagValue::AtMost(x) => format!("<={x}"),
            TagValue::Exact(v) => v.canonical(),
            TagValue::Expr(e) => format!("{{{e}}}"),
        }
    }
}

impl From<Value> for TagValue {
    fn from(v: Value) -> Self {
        TagValue::Exact(v)
    }
}

impl From<Expr> for TagValue {
    fn from(e: Expr) -> Self {
        TagValue::Expr(e)
    }
}

/// Converts a parsed list node into a [`Value`] tree.
pub fn node_to_value(node: &Node) -> Value {
    match node {
        Node::Word(w) => Value::from_word(w),
        Node::List(items) => Value::List(items.iter().map(node_to_value).collect()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::MapEnv;
    use crate::list::parse_tree;

    fn tv(src: &str) -> TagValue {
        let nodes = parse_tree(src).unwrap();
        assert_eq!(nodes.len(), 1, "expected one node from {src}");
        TagValue::parse(&nodes[0]).unwrap()
    }

    #[test]
    fn parses_wildcard() {
        assert_eq!(tv("*"), TagValue::Any);
    }

    #[test]
    fn parses_at_least_and_at_most() {
        assert_eq!(tv(">=17"), TagValue::AtLeast(17.0));
        assert_eq!(tv("<=64"), TagValue::AtMost(64.0));
        assert_eq!(tv("{>= 17}"), TagValue::AtLeast(17.0));
        assert_eq!(tv("{<= 9}"), TagValue::AtMost(9.0));
    }

    #[test]
    fn bad_constraint_is_schema_error() {
        let nodes = parse_tree(">=abc").unwrap();
        assert!(matches!(TagValue::parse(&nodes[0]), Err(RslError::Schema { .. })));
    }

    #[test]
    fn parses_literals() {
        assert_eq!(tv("300"), TagValue::Exact(Value::Int(300)));
        assert_eq!(tv("linux"), TagValue::Exact(Value::Str("linux".into())));
        assert_eq!(tv("1.5"), TagValue::Exact(Value::Float(1.5)));
    }

    #[test]
    fn parses_expressions() {
        let v = tv("{1200 / workerNodes}");
        assert!(matches!(v, TagValue::Expr(_)));
        assert_eq!(v.free_names(), vec!["workerNodes".to_string()]);
    }

    #[test]
    fn braced_non_expression_stays_literal_list() {
        let v = tv("{1 1200}");
        // "1 1200" is not a valid expression, so it is kept as a list.
        assert_eq!(v, TagValue::Exact(Value::List(vec![Value::Int(1), Value::Int(1200)])));
    }

    #[test]
    fn amount_semantics() {
        let env = MapEnv::new();
        assert_eq!(tv("300").amount(&env).unwrap(), 300.0);
        assert_eq!(tv(">=17").amount(&env).unwrap(), 17.0);
        assert!(tv("*").amount(&env).is_err());
        assert!(tv("<=9").amount(&env).is_err());

        let mut env = MapEnv::new();
        env.set("workerNodes", Value::Int(4));
        assert_eq!(tv("{1200 / workerNodes}").amount(&env).unwrap(), 300.0);
    }

    #[test]
    fn accepts_semantics() {
        let env = MapEnv::new();
        assert!(tv("*").accepts(&Value::Str("anything".into()), &env).unwrap());
        assert!(tv(">=17").accepts(&Value::Int(32), &env).unwrap());
        assert!(!tv(">=17").accepts(&Value::Int(16), &env).unwrap());
        assert!(tv("<=64").accepts(&Value::Int(32), &env).unwrap());
        assert!(tv("linux").accepts(&Value::Str("linux".into()), &env).unwrap());
        assert!(!tv("linux").accepts(&Value::Str("aix".into()), &env).unwrap());
        assert!(tv("2").accepts(&Value::Float(2.0), &env).unwrap());
    }

    #[test]
    fn elasticity() {
        assert!(tv(">=17").is_elastic());
        assert!(!tv("300").is_elastic());
        assert!(!tv("*").is_elastic());
    }

    #[test]
    fn canonical_round_trips() {
        for src in ["*", ">=17", "<=9", "300", "linux"] {
            let v = tv(src);
            assert_eq!(tv(&v.canonical()), v, "round trip {src}");
        }
        // Expressions round-trip modulo parenthesization.
        let v = tv("{1200 / workerNodes}");
        let v2 = tv(&v.canonical());
        assert_eq!(v, v2);
    }

    #[test]
    fn node_to_value_converts_trees() {
        let nodes = parse_tree("{a {1 2} b}").unwrap();
        assert_eq!(
            node_to_value(&nodes[0]),
            Value::List(vec![
                Value::Str("a".into()),
                Value::List(vec![Value::Int(1), Value::Int(2)]),
                Value::Str("b".into()),
            ])
        );
    }
}
