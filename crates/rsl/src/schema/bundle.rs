//! Typed representation of Harmony bundles.
//!
//! A *bundle* is a set of mutually exclusive options for tuning one
//! application (paper §3.1). Each option describes the high-level resources
//! it needs (nodes, links), total communication, an optional explicit
//! performance model, the granularity at which the application can switch,
//! and the frictional cost of switching.

use serde::{Deserialize, Serialize};

use crate::error::{Result, RslError};
use crate::expr::{Env, Expr};
use crate::schema::tagvalue::TagValue;
use crate::span::Span;

/// A tuning-option bundle: `harmonyBundle app:instance name { options }`.
///
/// Spans are byte ranges into the source the bundle was parsed from (empty
/// for programmatically built specs); they never participate in equality.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BundleSpec {
    /// Application name (`DBclient` in Figure 3).
    pub app: String,
    /// Instance hint supplied by the application (`1` in `DBclient:1`).
    /// Harmony may override this with a system-chosen instance id.
    pub instance: Option<u64>,
    /// Bundle name (`where` in Figure 3).
    pub name: String,
    /// Mutually exclusive options, in lexical (definition) order — the
    /// order in which the controller evaluates them (§4.3).
    pub options: Vec<OptionSpec>,
    /// Span of the whole `harmonyBundle ...` statement.
    #[serde(default)]
    pub span: Span,
    /// Span of the `app:instance` header token.
    #[serde(default)]
    pub app_span: Span,
    /// Span of the bundle-name token.
    #[serde(default)]
    pub name_span: Span,
}

impl BundleSpec {
    /// Creates an empty bundle with no options and empty spans.
    pub fn new(app: impl Into<String>, instance: Option<u64>, name: impl Into<String>) -> Self {
        BundleSpec {
            app: app.into(),
            instance,
            name: name.into(),
            options: Vec::new(),
            span: Span::none(),
            app_span: Span::none(),
            name_span: Span::none(),
        }
    }

    /// Finds an option by name.
    pub fn option(&self, name: &str) -> Option<&OptionSpec> {
        self.options.iter().find(|o| o.name == name)
    }

    /// Names of all options, in definition order.
    pub fn option_names(&self) -> Vec<&str> {
        self.options.iter().map(|o| o.name.as_str()).collect()
    }

    /// Renders canonical RSL text for the whole bundle.
    pub fn canonical(&self) -> String {
        let inst = self.instance.map(|i| format!(":{i}")).unwrap_or_default();
        let opts = self
            .options
            .iter()
            .map(|o| format!("  {}", o.canonical()))
            .collect::<Vec<_>>()
            .join("\n");
        format!("harmonyBundle {}{} {} {{\n{}\n}}", self.app, inst, self.name, opts)
    }
}

/// One mutually exclusive configuration alternative inside a bundle.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct OptionSpec {
    /// Option name (`QS` / `DS` in Figure 3).
    pub name: String,
    /// `variable` tags: discrete choice axes Harmony may instantiate
    /// (`{variable workerNodes {1 2 4 8}}` in Figure 2b).
    pub variables: Vec<VariableSpec>,
    /// Node requirements in definition order.
    pub nodes: Vec<NodeReq>,
    /// Link requirements between named nodes.
    pub links: Vec<LinkReq>,
    /// Total communication requirement for the whole application
    /// (megabytes over the job's lifetime), possibly parameterized.
    pub communication: Option<TagValue>,
    /// Explicit performance model overriding Harmony's default prediction.
    pub performance: Option<PerfSpec>,
    /// Minimum seconds between reconfigurations of this application.
    pub granularity: Option<f64>,
    /// Frictional cost (reference-machine CPU seconds) of switching *into*
    /// this option (paper §3, requirement five).
    pub friction: Option<TagValue>,
    /// Span of the whole braced option.
    #[serde(default)]
    pub span: Span,
    /// Span of the option-name token.
    #[serde(default)]
    pub name_span: Span,
    /// Span of the `communication` tag's value, when present.
    #[serde(default)]
    pub communication_span: Span,
    /// Span of the whole `{performance ...}` tag, when present.
    #[serde(default)]
    pub performance_span: Span,
    /// Span of the `granularity` tag's value, when present.
    #[serde(default)]
    pub granularity_span: Span,
    /// Span of the `friction` tag's value, when present.
    #[serde(default)]
    pub friction_span: Span,
}

impl OptionSpec {
    /// Creates an empty option with the given name.
    pub fn new(name: impl Into<String>) -> Self {
        OptionSpec {
            name: name.into(),
            variables: Vec::new(),
            nodes: Vec::new(),
            links: Vec::new(),
            communication: None,
            performance: None,
            granularity: None,
            friction: None,
            span: Span::none(),
            name_span: Span::none(),
            communication_span: Span::none(),
            performance_span: Span::none(),
            granularity_span: Span::none(),
            friction_span: Span::none(),
        }
    }

    /// Finds a node requirement by local name.
    pub fn node(&self, name: &str) -> Option<&NodeReq> {
        self.nodes.iter().find(|n| n.name == name)
    }

    /// Finds a variable by name.
    pub fn variable(&self, name: &str) -> Option<&VariableSpec> {
        self.variables.iter().find(|v| v.name == name)
    }

    /// All free names referenced by any parameterized tag in this option —
    /// the dependency set the controller must bind before evaluation.
    pub fn free_names(&self) -> Vec<String> {
        let mut out: Vec<String> = Vec::new();
        let mut push_all = |names: Vec<String>| {
            for n in names {
                if !out.contains(&n) {
                    out.push(n);
                }
            }
        };
        for node in &self.nodes {
            for (_, v) in &node.tags {
                push_all(v.free_names());
            }
        }
        for link in &self.links {
            push_all(link.bandwidth.free_names());
        }
        if let Some(c) = &self.communication {
            push_all(c.free_names());
        }
        if let Some(PerfSpec::Expr(e)) = &self.performance {
            push_all(e.free_names());
        }
        if let Some(f) = &self.friction {
            push_all(f.free_names());
        }
        out
    }

    /// Renders canonical RSL text for this option.
    pub fn canonical(&self) -> String {
        let mut parts = vec![self.name.clone()];
        for v in &self.variables {
            parts.push(v.canonical());
        }
        for n in &self.nodes {
            parts.push(n.canonical());
        }
        for l in &self.links {
            parts.push(l.canonical());
        }
        if let Some(c) = &self.communication {
            parts.push(format!("{{communication {}}}", c.canonical()));
        }
        if let Some(p) = &self.performance {
            parts.push(p.canonical());
        }
        if let Some(g) = self.granularity {
            parts.push(format!("{{granularity {g}}}"));
        }
        if let Some(f) = &self.friction {
            parts.push(format!("{{friction {}}}", f.canonical()));
        }
        format!("{{{}}}", parts.join(" "))
    }
}

/// A `variable` tag: a named discrete choice axis.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct VariableSpec {
    /// Variable name (referenced by parameterized tags).
    pub name: String,
    /// The allowed values, e.g. `[1, 2, 4, 8]` worker processes.
    pub choices: Vec<i64>,
    /// Span of the whole `{variable ...}` tag.
    #[serde(default)]
    pub span: Span,
    /// Span of the variable-name token.
    #[serde(default)]
    pub name_span: Span,
    /// Span of the braced choice list.
    #[serde(default)]
    pub choices_span: Span,
}

impl VariableSpec {
    /// Creates a variable with the given choices and empty spans.
    pub fn new(name: impl Into<String>, choices: Vec<i64>) -> Self {
        VariableSpec {
            name: name.into(),
            choices,
            span: Span::none(),
            name_span: Span::none(),
            choices_span: Span::none(),
        }
    }

    /// Canonical RSL text.
    pub fn canonical(&self) -> String {
        let vals = self.choices.iter().map(|c| c.to_string()).collect::<Vec<_>>().join(" ");
        format!("{{variable {} {{{vals}}}}}", self.name)
    }
}

/// How many instances of a node requirement must be matched.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum CountSpec {
    /// Exactly one node.
    One,
    /// `{replicate n}` — `n` distinct nodes meeting the same requirements
    /// (Figure 2a uses `{replicate 4}`).
    Replicate(u32),
    /// `{replicate var}` — the count comes from a bundle variable
    /// (Figure 2b replicates by `workerNodes`).
    Param(String),
}

impl CountSpec {
    /// Resolves the count in the given environment.
    ///
    /// # Errors
    ///
    /// [`RslError::UnboundName`] when a parameterized count's variable is
    /// not bound; [`RslError::Schema`] for non-positive counts.
    pub fn resolve<E: Env + ?Sized>(&self, env: &E) -> Result<u32> {
        let n = match self {
            CountSpec::One => 1,
            CountSpec::Replicate(n) => i64::from(*n),
            CountSpec::Param(name) => env
                .lookup(name)
                .ok_or_else(|| RslError::UnboundName { name: name.clone() })?
                .as_i64()?,
        };
        if n <= 0 {
            return Err(RslError::schema(format!("node count must be positive, got {n}")));
        }
        Ok(n as u32)
    }
}

/// A node requirement: `{node <name> [*] {tag value}...}`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct NodeReq {
    /// Local name used to refer to this node from other tags
    /// (`server`, `client`, `worker`).
    pub name: String,
    /// How many instances to match.
    pub count: CountSpec,
    /// Tags in definition order (`seconds`, `memory`, `hostname`, `os`...).
    pub tags: Vec<(String, TagValue)>,
    /// Span of the whole `{node ...}` requirement.
    #[serde(default)]
    pub span: Span,
    /// Span of the node-name token.
    #[serde(default)]
    pub name_span: Span,
    /// Spans of the *values* of the entries in `tags`, index-aligned (may be
    /// empty for programmatically built requirements — use
    /// [`NodeReq::tag_span`]).
    #[serde(default)]
    pub tag_spans: Vec<Span>,
}

impl NodeReq {
    /// Creates a single-instance node requirement with no tags.
    pub fn new(name: impl Into<String>) -> Self {
        NodeReq {
            name: name.into(),
            count: CountSpec::One,
            tags: Vec::new(),
            span: Span::none(),
            name_span: Span::none(),
            tag_spans: Vec::new(),
        }
    }

    /// The span of the `i`th tag, or the whole requirement's span when tag
    /// spans were not recorded.
    pub fn tag_span(&self, i: usize) -> Span {
        self.tag_spans.get(i).copied().unwrap_or(self.span)
    }

    /// Looks up a tag value by name.
    pub fn tag(&self, name: &str) -> Option<&TagValue> {
        self.tags.iter().find(|(t, _)| t == name).map(|(_, v)| v)
    }

    /// The `seconds` tag: total reference-machine CPU seconds this node
    /// consumes over the job's life.
    pub fn seconds(&self) -> Option<&TagValue> {
        self.tag("seconds")
    }

    /// The `memory` tag (megabytes).
    pub fn memory(&self) -> Option<&TagValue> {
        self.tag("memory")
    }

    /// The `hostname` tag, if the node is pinned to a specific machine.
    pub fn hostname(&self) -> Option<&TagValue> {
        self.tag("hostname")
    }

    /// The `os` tag.
    pub fn os(&self) -> Option<&TagValue> {
        self.tag("os")
    }

    /// Canonical RSL text.
    pub fn canonical(&self) -> String {
        let mut parts = vec!["node".to_string(), self.name.clone()];
        match &self.count {
            CountSpec::One => {}
            CountSpec::Replicate(n) => parts.push(format!("{{replicate {n}}}")),
            CountSpec::Param(v) => parts.push(format!("{{replicate {v}}}")),
        }
        for (tag, value) in &self.tags {
            parts.push(format!("{{{tag} {}}}", value.canonical()));
        }
        format!("{{{}}}", parts.join(" "))
    }
}

/// A link requirement: `{link <a> <b> <bandwidth>}` — required bandwidth
/// (Mbit/s) between two named nodes.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LinkReq {
    /// First endpoint's local node name.
    pub a: String,
    /// Second endpoint's local node name.
    pub b: String,
    /// Required bandwidth in Mbit/s, possibly parameterized.
    pub bandwidth: TagValue,
    /// Span of the whole `{link ...}` requirement.
    #[serde(default)]
    pub span: Span,
    /// Span of the first endpoint token.
    #[serde(default)]
    pub a_span: Span,
    /// Span of the second endpoint token.
    #[serde(default)]
    pub b_span: Span,
    /// Span of the bandwidth value.
    #[serde(default)]
    pub bandwidth_span: Span,
}

impl LinkReq {
    /// Creates a link requirement with empty spans.
    pub fn new(a: impl Into<String>, b: impl Into<String>, bandwidth: TagValue) -> Self {
        LinkReq {
            a: a.into(),
            b: b.into(),
            bandwidth,
            span: Span::none(),
            a_span: Span::none(),
            b_span: Span::none(),
            bandwidth_span: Span::none(),
        }
    }

    /// Canonical RSL text.
    pub fn canonical(&self) -> String {
        format!("{{link {} {} {}}}", self.a, self.b, self.bandwidth.canonical())
    }
}

/// An explicit performance model (`performance` tag, Table 1: "Override
/// Harmony's default prediction function").
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum PerfSpec {
    /// A list of `(x, seconds)` data points; Harmony interpolates with a
    /// piecewise-linear curve (paper §3.4). `x` is usually a node count.
    Points(Vec<(f64, f64)>),
    /// An arbitrary response-time expression over the allocation
    /// environment.
    Expr(Expr),
}

impl PerfSpec {
    /// Predicts the response time at `x` (for [`PerfSpec::Points`]) or by
    /// evaluating the expression (which ignores `x` and reads the
    /// environment).
    ///
    /// Interpolation is piecewise linear between the two surrounding
    /// points; outside the data range the nearest segment is extrapolated,
    /// clamped at zero.
    ///
    /// # Errors
    ///
    /// [`RslError::Schema`] when the point list is empty; expression errors
    /// for the `Expr` form.
    pub fn predict<E: Env + ?Sized>(&self, x: f64, env: &E) -> Result<f64> {
        match self {
            PerfSpec::Points(points) => {
                if points.is_empty() {
                    return Err(RslError::schema("performance tag has no data points"));
                }
                Ok(piecewise_linear(points, x))
            }
            PerfSpec::Expr(e) => crate::expr::eval(e, env)?.as_f64(),
        }
    }

    /// Canonical RSL text.
    pub fn canonical(&self) -> String {
        match self {
            PerfSpec::Points(points) => {
                let pts = points
                    .iter()
                    .map(|(x, y)| {
                        let xs = if x.fract() == 0.0 {
                            format!("{}", *x as i64)
                        } else {
                            format!("{x}")
                        };
                        let ys = if y.fract() == 0.0 {
                            format!("{}", *y as i64)
                        } else {
                            format!("{y}")
                        };
                        format!("{{{xs} {ys}}}")
                    })
                    .collect::<Vec<_>>()
                    .join(" ");
                format!("{{performance {pts}}}")
            }
            PerfSpec::Expr(e) => format!("{{performance {{{e}}}}}"),
        }
    }
}

/// Piecewise-linear interpolation through `points` (sorted by the caller or
/// not — this function sorts a local copy), clamped below at zero.
pub fn piecewise_linear(points: &[(f64, f64)], x: f64) -> f64 {
    let mut pts: Vec<(f64, f64)> = points.to_vec();
    pts.sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap_or(std::cmp::Ordering::Equal));
    if pts.len() == 1 {
        return pts[0].1.max(0.0);
    }
    // Find the segment; extrapolate from the nearest one outside the range.
    let seg = if x <= pts[0].0 {
        (pts[0], pts[1])
    } else if x >= pts[pts.len() - 1].0 {
        (pts[pts.len() - 2], pts[pts.len() - 1])
    } else {
        let mut found = (pts[0], pts[1]);
        for w in pts.windows(2) {
            if x >= w[0].0 && x <= w[1].0 {
                found = (w[0], w[1]);
                break;
            }
        }
        found
    };
    let ((x0, y0), (x1, y1)) = seg;
    let y = if (x1 - x0).abs() < f64::EPSILON {
        (y0 + y1) / 2.0
    } else {
        y0 + (y1 - y0) * (x - x0) / (x1 - x0)
    };
    y.max(0.0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::{parse_expr, MapEnv};
    use crate::value::Value;

    #[test]
    fn count_spec_resolution() {
        let env = MapEnv::new();
        assert_eq!(CountSpec::One.resolve(&env).unwrap(), 1);
        assert_eq!(CountSpec::Replicate(4).resolve(&env).unwrap(), 4);
        let mut env = MapEnv::new();
        env.set("workerNodes", Value::Int(8));
        assert_eq!(CountSpec::Param("workerNodes".into()).resolve(&env).unwrap(), 8);
        assert!(matches!(
            CountSpec::Param("missing".into()).resolve(&env),
            Err(RslError::UnboundName { .. })
        ));
        env.set("workerNodes", Value::Int(0));
        assert!(matches!(
            CountSpec::Param("workerNodes".into()).resolve(&env),
            Err(RslError::Schema { .. })
        ));
    }

    #[test]
    fn node_req_accessors() {
        let mut node = NodeReq::new("server");
        node.tags = vec![
            ("hostname".into(), TagValue::Exact(Value::Str("h".into()))),
            ("seconds".into(), TagValue::Exact(Value::Int(42))),
            ("memory".into(), TagValue::Exact(Value::Int(20))),
        ];
        assert!(node.hostname().is_some());
        assert!(node.seconds().is_some());
        assert!(node.memory().is_some());
        assert!(node.os().is_none());
        assert!(node.tag("nope").is_none());
    }

    #[test]
    fn piecewise_linear_interpolates() {
        let pts = [(1.0, 1200.0), (2.0, 620.0), (4.0, 340.0), (8.0, 230.0)];
        assert_eq!(piecewise_linear(&pts, 1.0), 1200.0);
        assert_eq!(piecewise_linear(&pts, 2.0), 620.0);
        assert_eq!(piecewise_linear(&pts, 3.0), 480.0); // midpoint of (2,620)-(4,340)
        assert_eq!(piecewise_linear(&pts, 8.0), 230.0);
        // Extrapolation beyond the range uses the outer segment.
        let beyond = piecewise_linear(&pts, 12.0);
        assert!(beyond < 230.0 && beyond > 0.0);
        // Clamped at zero far out.
        assert_eq!(piecewise_linear(&pts, 1000.0), 0.0);
    }

    #[test]
    fn piecewise_linear_handles_unsorted_and_single_point() {
        let pts = [(4.0, 340.0), (1.0, 1200.0), (2.0, 620.0)];
        assert_eq!(piecewise_linear(&pts, 2.0), 620.0);
        assert_eq!(piecewise_linear(&[(3.0, 99.0)], 7.0), 99.0);
    }

    #[test]
    fn perf_spec_predicts() {
        let spec = PerfSpec::Points(vec![(1.0, 1200.0), (2.0, 620.0)]);
        assert_eq!(spec.predict(1.5, &MapEnv::new()).unwrap(), 910.0);

        let spec = PerfSpec::Expr(parse_expr("100 / workerNodes").unwrap());
        let mut env = MapEnv::new();
        env.set("workerNodes", Value::Int(4));
        assert_eq!(spec.predict(0.0, &env).unwrap(), 25.0);

        assert!(PerfSpec::Points(vec![]).predict(1.0, &MapEnv::new()).is_err());
    }

    #[test]
    fn option_free_names_collects_dependencies() {
        let mut opt = OptionSpec::new("DS");
        let mut client = NodeReq::new("client");
        client
            .tags
            .push(("seconds".into(), TagValue::Expr(parse_expr("base / workerNodes").unwrap())));
        opt.nodes.push(client);
        opt.links.push(LinkReq::new(
            "client",
            "server",
            TagValue::Expr(
                parse_expr("44 + (client.memory > 24 ? 24 : client.memory) - 17").unwrap(),
            ),
        ));
        let names = opt.free_names();
        assert_eq!(
            names,
            vec!["base".to_string(), "workerNodes".to_string(), "client.memory".to_string()]
        );
    }

    #[test]
    fn canonical_texts_are_reparseable() {
        use crate::schema::parser::parse_statements;
        let mut bundle = BundleSpec::new("DBclient", Some(1), "where");
        bundle.options.push({
            let mut o = OptionSpec::new("QS");
            let mut server = NodeReq::new("server");
            server.tags.push(("seconds".into(), TagValue::Exact(Value::Int(42))));
            o.nodes.push(server);
            o.links.push(LinkReq::new("client", "server", TagValue::Exact(Value::Int(2))));
            o.granularity = Some(30.0);
            o.friction = Some(TagValue::Exact(Value::Int(5)));
            o
        });
        let text = bundle.canonical();
        let stmts = parse_statements(&text).unwrap();
        assert_eq!(stmts.len(), 1);
    }
}
