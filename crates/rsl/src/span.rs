//! Byte spans attached to parsed RSL constructs.
//!
//! A [`Span`] is the half-open byte range `[start, end)` that a construct
//! occupies in the source text it was parsed from. Spans are *positional
//! metadata*, not semantics: two specs that canonicalize to the same text
//! are the same spec even if they were parsed from differently formatted
//! sources. [`Span`]'s `PartialEq` therefore always returns `true`, so
//! adding spans to spec structs does not disturb round-trip equality
//! (`parse(src) == parse(canonical(parse(src)))`).
//!
//! Use [`Span::pos`] to resolve a span's start to a line:column
//! [`Pos`](crate::error::Pos) against the original source.

use serde::{Deserialize, Serialize};

use crate::error::Pos;

/// Half-open byte range `[start, end)` in the originating source text.
///
/// Compares equal to every other span (see module docs); use
/// [`Span::same_range`] when the actual byte range matters.
#[derive(Debug, Clone, Copy, Default, Serialize, Deserialize)]
pub struct Span {
    /// Byte offset of the first byte of the construct.
    #[serde(default)]
    pub start: usize,
    /// Byte offset one past the last byte of the construct.
    #[serde(default)]
    pub end: usize,
}

impl Span {
    /// A span covering `[start, end)`.
    pub fn new(start: usize, end: usize) -> Self {
        Span { start, end }
    }

    /// The empty span at offset 0, used for programmatically built specs.
    pub fn none() -> Self {
        Span::default()
    }

    /// Length of the span in bytes.
    pub fn len(&self) -> usize {
        self.end.saturating_sub(self.start)
    }

    /// Whether the span covers no bytes.
    pub fn is_empty(&self) -> bool {
        self.end <= self.start
    }

    /// Resolves the span's start offset to a line:column position in `src`.
    pub fn pos(&self, src: &str) -> Pos {
        Pos::at(src, self.start)
    }

    /// The source text the span covers, if it lies within `src`.
    pub fn slice<'s>(&self, src: &'s str) -> Option<&'s str> {
        src.get(self.start..self.end)
    }

    /// Byte-range identity (unlike `==`, which is always true).
    pub fn same_range(&self, other: &Span) -> bool {
        self.start == other.start && self.end == other.end
    }

    /// Smallest span covering both `self` and `other`; an empty span is
    /// treated as absent and does not widen the result.
    pub fn merge(&self, other: &Span) -> Span {
        if self.is_empty() {
            return *other;
        }
        if other.is_empty() {
            return *self;
        }
        Span { start: self.start.min(other.start), end: self.end.max(other.end) }
    }
}

// Spans are positional metadata: equality of parsed specs must not depend
// on where in the source a construct appeared.
impl PartialEq for Span {
    fn eq(&self, _other: &Span) -> bool {
        true
    }
}

impl Eq for Span {}

// Consistent with the all-equal `PartialEq`: every span hashes identically.
impl std::hash::Hash for Span {
    fn hash<H: std::hash::Hasher>(&self, _state: &mut H) {}
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spans_compare_equal_regardless_of_range() {
        assert_eq!(Span::new(0, 4), Span::new(7, 19));
        assert!(!Span::new(0, 4).same_range(&Span::new(7, 19)));
        assert!(Span::new(3, 8).same_range(&Span::new(3, 8)));
    }

    #[test]
    fn pos_resolves_line_and_column() {
        let src = "abc\ndef ghi";
        let span = Span::new(8, 11);
        let pos = span.pos(src);
        assert_eq!((pos.line, pos.column), (2, 5));
        assert_eq!(span.slice(src), Some("ghi"));
    }

    #[test]
    fn merge_ignores_empty_spans() {
        let a = Span::new(4, 9);
        assert!(a.merge(&Span::none()).same_range(&a));
        assert!(Span::none().merge(&a).same_range(&a));
        assert!(a.merge(&Span::new(1, 5)).same_range(&Span::new(1, 9)));
    }
}
