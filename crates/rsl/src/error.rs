//! Error types for the RSL lexer, parsers, and evaluator.

use std::fmt;

/// Byte position inside the source text where an error occurred.
///
/// Positions are zero-based byte offsets; `line` and `column` are one-based
/// and derived for human-readable diagnostics.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Pos {
    /// Zero-based byte offset into the source.
    pub offset: usize,
    /// One-based line number.
    pub line: u32,
    /// One-based column number (in bytes, not grapheme clusters).
    pub column: u32,
}

impl Pos {
    /// Position of the first byte of a source text.
    pub fn start() -> Self {
        Pos { offset: 0, line: 1, column: 1 }
    }

    /// Computes the position of byte `offset` within `src`.
    pub fn at(src: &str, offset: usize) -> Self {
        let mut line = 1u32;
        let mut column = 1u32;
        for (i, b) in src.bytes().enumerate() {
            if i >= offset {
                break;
            }
            if b == b'\n' {
                line += 1;
                column = 1;
            } else {
                column += 1;
            }
        }
        Pos { offset, line, column }
    }
}

impl fmt::Display for Pos {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}", self.line, self.column)
    }
}

/// Errors produced while lexing, parsing, or evaluating RSL text.
#[derive(Debug, Clone, PartialEq)]
pub enum RslError {
    /// A brace, bracket, or quote was opened but never closed.
    Unterminated {
        /// What was left open (`"{"`, `"\""`, ...).
        what: &'static str,
        /// Where the unterminated construct started.
        pos: Pos,
    },
    /// A closing delimiter appeared with no matching opener.
    UnexpectedClose {
        /// The offending delimiter.
        what: char,
        /// Where it appeared.
        pos: Pos,
    },
    /// The expression tokenizer saw a character it does not understand.
    BadChar {
        /// The offending character.
        ch: char,
        /// Where it appeared.
        pos: Pos,
    },
    /// A numeric literal could not be parsed.
    BadNumber {
        /// The literal text.
        text: String,
        /// Where it appeared.
        pos: Pos,
    },
    /// The expression parser expected one token but found another.
    ExpectedToken {
        /// Human description of what was expected.
        expected: &'static str,
        /// Human description of what was found.
        found: String,
        /// Where the mismatch occurred.
        pos: Pos,
    },
    /// A name used in an expression was not bound in the environment.
    UnboundName {
        /// The dotted name that failed to resolve.
        name: String,
    },
    /// A function used in an expression is not a known builtin.
    UnknownFunction {
        /// The function name.
        name: String,
    },
    /// A builtin function was called with the wrong number of arguments.
    Arity {
        /// The function name.
        name: String,
        /// Number of arguments expected.
        expected: usize,
        /// Number of arguments supplied.
        got: usize,
    },
    /// A value had the wrong type for the operation applied to it.
    Type {
        /// Description of the operation.
        op: String,
        /// Description of the offending value.
        value: String,
    },
    /// Division or modulo by zero.
    DivideByZero,
    /// A schema-level error: a tag or structure in the RSL text does not
    /// match what Harmony expects (wrong arity, unknown tag, bad nesting).
    Schema {
        /// Human-readable description of the problem.
        message: String,
    },
    /// Evaluation exceeded the recursion/step budget (malicious or
    /// pathological input).
    BudgetExceeded,
}

impl RslError {
    /// Convenience constructor for [`RslError::Schema`].
    pub fn schema(message: impl Into<String>) -> Self {
        RslError::Schema { message: message.into() }
    }
}

impl fmt::Display for RslError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RslError::Unterminated { what, pos } => {
                write!(f, "unterminated {what} starting at {pos}")
            }
            RslError::UnexpectedClose { what, pos } => {
                write!(f, "unexpected `{what}` at {pos}")
            }
            RslError::BadChar { ch, pos } => {
                write!(f, "unexpected character `{ch}` at {pos}")
            }
            RslError::BadNumber { text, pos } => {
                write!(f, "malformed number `{text}` at {pos}")
            }
            RslError::ExpectedToken { expected, found, pos } => {
                write!(f, "expected {expected} but found {found} at {pos}")
            }
            RslError::UnboundName { name } => write!(f, "unbound name `{name}`"),
            RslError::UnknownFunction { name } => write!(f, "unknown function `{name}`"),
            RslError::Arity { name, expected, got } => {
                write!(f, "function `{name}` expects {expected} argument(s), got {got}")
            }
            RslError::Type { op, value } => {
                write!(f, "type error: cannot apply {op} to {value}")
            }
            RslError::DivideByZero => write!(f, "division by zero"),
            RslError::Schema { message } => write!(f, "schema error: {message}"),
            RslError::BudgetExceeded => write!(f, "evaluation budget exceeded"),
        }
    }
}

impl std::error::Error for RslError {}

/// Result alias used throughout the crate.
pub type Result<T> = std::result::Result<T, RslError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pos_at_computes_line_and_column() {
        let src = "ab\ncd\nef";
        assert_eq!(Pos::at(src, 0), Pos { offset: 0, line: 1, column: 1 });
        assert_eq!(Pos::at(src, 1), Pos { offset: 1, line: 1, column: 2 });
        assert_eq!(Pos::at(src, 3), Pos { offset: 3, line: 2, column: 1 });
        assert_eq!(Pos::at(src, 7), Pos { offset: 7, line: 3, column: 2 });
    }

    #[test]
    fn pos_display_is_line_colon_column() {
        let p = Pos::at("x\ny", 2);
        assert_eq!(p.to_string(), "2:1");
    }

    #[test]
    fn errors_display_nonempty() {
        let cases: Vec<RslError> = vec![
            RslError::Unterminated { what: "{", pos: Pos::start() },
            RslError::UnexpectedClose { what: '}', pos: Pos::start() },
            RslError::BadChar { ch: '#', pos: Pos::start() },
            RslError::BadNumber { text: "1.2.3".into(), pos: Pos::start() },
            RslError::ExpectedToken {
                expected: "`)`",
                found: "end of input".into(),
                pos: Pos::start(),
            },
            RslError::UnboundName { name: "client.memory".into() },
            RslError::UnknownFunction { name: "frobnicate".into() },
            RslError::Arity { name: "min".into(), expected: 2, got: 1 },
            RslError::Type { op: "+".into(), value: "a list".into() },
            RslError::DivideByZero,
            RslError::schema("bundle must have at least one option"),
            RslError::BudgetExceeded,
        ];
        for e in cases {
            assert!(!e.to_string().is_empty());
            // std::error::Error is implemented.
            let _: &dyn std::error::Error = &e;
        }
    }
}
