//! Property tests for the facts engine's abstract interpreter.
//!
//! The soundness contract of [`harmony_analyze::facts`]: any interval it
//! claims for an expression site must contain every concrete value the
//! expression can take over the declared choice domain. These tests build
//! randomized bundles from a small expression grammar, evaluate every
//! concrete point, and check containment against the proven bounds.

use harmony_analyze::facts::option_facts;
use harmony_rsl::expr::MapEnv;
use harmony_rsl::schema::parse_bundle_script;
use harmony_rsl::Value;
use proptest::prelude::*;

/// Margin for float round-off between the abstract and concrete paths
/// (both compute in f64; the interpreter may widen, never narrow).
const EPS: f64 = 1e-9;

/// One expression over the variables `w` and `v` from a small grammar.
fn expr_template(pick: usize, a: i64, b: i64) -> String {
    match pick % 6 {
        0 => format!("{a} * w + {b}"),
        1 => format!("{a} * w - {b} * v"),
        2 => format!("{a} / w"),
        3 => format!("(w + v) * {a}"),
        4 => format!("{a} * w * w - {b}"),
        _ => format!("{a} + {b} / (w + v)"),
    }
}

proptest! {
    /// Every concrete evaluation of a site lies inside the interval the
    /// abstract interpreter proves for it.
    #[test]
    fn concrete_values_lie_inside_proven_intervals(
        raw_w in prop::collection::vec(1i64..64, 1..5),
        raw_v in prop::collection::vec(1i64..64, 1..5),
        pick in 0usize..6,
        a in 1i64..1000,
        b in 0i64..1000,
    ) {
        let ws: Vec<i64> =
            raw_w.iter().copied().collect::<std::collections::BTreeSet<_>>().into_iter().collect();
        let vs: Vec<i64> =
            raw_v.iter().copied().collect::<std::collections::BTreeSet<_>>().into_iter().collect();
        let list = |xs: &[i64]| xs.iter().map(i64::to_string).collect::<Vec<_>>().join(" ");
        let expr = expr_template(pick, a, b);
        let src = format!(
            "harmonyBundle app:1 cfg {{ {{o \
             {{variable w {{{}}}}} {{variable v {{{}}}}} \
             {{node n {{seconds {{{expr}}}}} {{memory 16}}}}}} }}",
            list(&ws),
            list(&vs)
        );
        let spec = parse_bundle_script(&src).expect("generated bundle parses");
        let facts = option_facts(&spec.options[0]);
        let site = facts
            .sites
            .iter()
            .find(|s| s.what.contains("seconds"))
            .expect("seconds site is reported");
        let bound = site.bound.expect("a pure-variable expression gets a bound");
        for &w in &ws {
            for &v in &vs {
                let mut env = MapEnv::new();
                env.set("w", Value::Int(w));
                env.set("v", Value::Int(v));
                let got = harmony_rsl::expr::eval_str(&expr, &env)
                    .expect("concrete evaluation succeeds")
                    .as_f64()
                    .expect("numeric result");
                if let Some(lo) = bound.lo {
                    prop_assert!(
                        got >= lo - EPS,
                        "`{expr}` at w={w}, v={v}: {got} < proven lo {lo}"
                    );
                }
                if let Some(hi) = bound.hi {
                    prop_assert!(
                        got <= hi + EPS,
                        "`{expr}` at w={w}, v={v}: {got} > proven hi {hi}"
                    );
                }
            }
        }
    }

    /// The hull claimed for each variable is exactly its min/max choice.
    #[test]
    fn variable_hulls_match_declared_choices(
        raw in prop::collection::vec(-100i64..100, 1..8),
    ) {
        let choices: Vec<i64> =
            raw.iter().copied().collect::<std::collections::BTreeSet<_>>().into_iter().collect();
        let list = choices.iter().map(i64::to_string).collect::<Vec<_>>().join(" ");
        let src = format!(
            "harmonyBundle app:1 cfg {{ {{o {{variable w {{{list}}}}} \
             {{node n {{seconds 10}} {{memory 16}}}}}} }}"
        );
        let spec = parse_bundle_script(&src).expect("generated bundle parses");
        let facts = option_facts(&spec.options[0]);
        let hull = facts.variables["w"];
        prop_assert_eq!(hull.lo, Some(*choices.first().unwrap() as f64));
        prop_assert_eq!(hull.hi, Some(*choices.last().unwrap() as f64));
        prop_assert!(hull.integral);
    }
}
