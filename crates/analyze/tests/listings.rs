//! The paper's listings are diagnostic-free, and the reachability pass is
//! sound on generated bundles: all-positive divisor domains never produce
//! division findings, while a zero choice always does.

use harmony_analyze::{analyze_script, is_clean};
use harmony_rsl::listings::{FIG2A_SIMPLE, FIG2B_BAG, FIG3_DBCLIENT};
use proptest::prelude::*;

#[test]
fn paper_listings_are_diagnostic_free() {
    for (name, src) in [("fig2a", FIG2A_SIMPLE), ("fig2b", FIG2B_BAG), ("fig3", FIG3_DBCLIENT)] {
        let diags = analyze_script(src).unwrap_or_else(|e| panic!("{name}: parse: {e}"));
        assert!(
            is_clean(&diags),
            "{name}: expected no findings, got: {:?}",
            diags.iter().map(|d| format!("{}: {}", d.code, d.message)).collect::<Vec<_>>()
        );
    }
}

/// Renders a Figure-2b-style bundle whose `seconds` expression divides by
/// the choice variable `w`.
fn divided_bundle(choices: &[i64], numerator: i64) -> String {
    format!(
        "harmonyBundle app:1 bag {{\n  \
           {{conf {{variable w {{{}}}}} \
             {{node worker {{replicate w}} {{seconds {{{numerator} / w}}}}}}}}\n}}\n",
        choices.iter().map(i64::to_string).collect::<Vec<_>>().join(" "),
    )
}

proptest! {
    /// Positive, distinct choice domains never trip the division checks
    /// (no HA0020 / HA0021 false positives).
    #[test]
    fn positive_domains_have_no_division_findings(
        raw in prop::collection::vec(1i64..512, 1..6),
        numerator in 1i64..100_000,
    ) {
        // Distinct choices: duplicate domain entries are an HA0103 warning,
        // which is fine, but keep the property focused on the division codes.
        let choices: Vec<i64> =
            raw.iter().copied().collect::<std::collections::BTreeSet<_>>().into_iter().collect();
        let src = divided_bundle(&choices, numerator);
        let diags = analyze_script(&src).expect("generated bundle parses");
        for d in &diags {
            prop_assert!(
                d.code.0 != "HA0020" && d.code.0 != "HA0021",
                "false positive {} on positive domain {:?}: {}",
                d.code, choices, d.message
            );
        }
    }

    /// Inserting 0 into the divisor's domain always makes the division
    /// by zero reachable — HA0020 must fire.
    #[test]
    fn zero_in_domain_is_always_caught(
        others in prop::collection::vec(1i64..512, 0..5),
        numerator in 1i64..100_000,
    ) {
        let mut choices: Vec<i64> =
            others.iter().copied().collect::<std::collections::BTreeSet<_>>().into_iter().collect();
        choices.push(0);
        let src = divided_bundle(&choices, numerator);
        let diags = analyze_script(&src).expect("generated bundle parses");
        prop_assert!(
            diags.iter().any(|d| d.code.0 == "HA0020"),
            "missed reachable division by zero with domain {:?}; got {:?}",
            choices,
            diags.iter().map(|d| d.code.0).collect::<Vec<_>>()
        );
    }
}
