//! Golden-file tests: one minimal triggering snippet per diagnostic code.
//!
//! Each case analyzes its snippet, asserts the target code is present, and
//! compares the full rendered report against `tests/golden/<code>.txt`.
//! Regenerate the expectation files with:
//!
//! ```text
//! GOLDEN_BLESS=1 cargo test -p harmony-analyze --test golden
//! ```

use harmony_analyze::{analyze_script, render};

/// `(code, snippet)` — the snippet is a complete RSL script that triggers
/// the code (possibly alongside related findings, which the golden file
/// also records).
const CASES: &[(&str, &str)] = &[
    (
        "HA0001",
        "harmonyBundle a b {\n  {o {node n {seconds 1}}}\n  {o {node n {seconds 2}}}\n}\n",
    ),
    (
        "HA0002",
        "harmonyBundle a b {\n  {o {node n {seconds 1}} {node n {seconds 2}}}\n}\n",
    ),
    (
        "HA0003",
        "harmonyBundle a b {\n  {o {node n {seconds 1}} {link n ghost 10}}\n}\n",
    ),
    (
        "HA0004",
        "harmonyBundle a b {\n  {o {node n {replicate w} {seconds 1}}}\n}\n",
    ),
    (
        "HA0005",
        "harmonyBundle a b {\n  {o {node n {seconds 1}} {communication {100 + x.memory}}}\n}\n",
    ),
    (
        "HA0006",
        "harmonyBundle a b {\n  {o {node n {seconds 1}} {granularity -5}}\n}\n",
    ),
    ("HA0011", "harmonyBundle a b {\n  {o {node n {seconds lots}}}\n}\n"),
    (
        "HA0012",
        "harmonyBundle a b {\n  {o {node n {seconds {1 + min()}}}}\n}\n",
    ),
    (
        "HA0020",
        "harmonyBundle a b {\n  {o {variable z {0 1 2}} {node n {replicate z} {seconds {1200 / z}}}}\n}\n",
    ),
    (
        "HA0021",
        "harmonyBundle a b {\n  {o {variable w {1 8}} {node n {replicate w} {seconds {10 - 2 * w}}}}\n}\n",
    ),
    (
        "HA0030",
        "harmonyBundle a b {\n  {o {node n {seconds 1}} {performance {1 100} {1 90}}}\n}\n",
    ),
    (
        "HA0031",
        "harmonyBundle a b {\n  {o {node n {seconds 1}} {performance {1 100} {2 -5}}}\n}\n",
    ),
    (
        "HA0050",
        "harmonyBundle app:7 conf {\n  {o {node n {seconds 1}}}\n}\nharmonyBundle app:7 conf {\n  {p {node m {seconds 2}}}\n}\n",
    ),
    (
        "HA0051",
        "harmonyBundle a.b:1 conf {\n  {o {node n {seconds 1}}}\n}\n",
    ),
    (
        "HA0052",
        "harmonyBundle a b {\n  {o {variable n {1 2}} {node n {replicate n} {seconds 1}}}\n}\n",
    ),
    (
        "HA0101",
        "harmonyBundle a b {\n  {o {node n {seconds 1}} {link n n 10}}\n}\n",
    ),
    (
        "HA0102",
        "harmonyBundle a b {\n  {o {variable w {1 2}} {node n {seconds 1}}}\n}\n",
    ),
    (
        "HA0103",
        "harmonyBundle a b {\n  {o {variable w {1 1 2}} {node n {replicate w} {seconds 1}}}\n}\n",
    ),
    (
        "HA0104",
        "harmonyBundle a b {\n  {o {variable w {0 1}} {node n {replicate w} {seconds 1}}}\n}\n",
    ),
    ("HA0105", "harmonyBundle a b {\n  {o}\n}\n"),
    (
        "HA0106",
        "harmonyBundle a b {\n  {o\n    {variable v1 {1 2 3}} {variable v2 {1 2 3}} {variable v3 {1 2 3}}\n    {variable v4 {1 2 3}} {variable v5 {1 2 3}} {variable v6 {1 2 3}}\n    {variable v7 {1 2 3}} {variable v8 {1 2 3}}\n    {node n {seconds {v1 + v2 + v3 + v4 + v5 + v6 + v7 + v8}}}}\n}\n",
    ),
    (
        "HA0113",
        "harmonyBundle a b {\n  {o {node n {seconds 1} {hostname 42}}}\n}\n",
    ),
    (
        "HA0130",
        "harmonyBundle a b {\n  {o {node n {seconds 1}} {performance {4 50} {1 100}}}\n}\n",
    ),
    (
        "HA0140",
        "harmonyBundle a b {\n  {fast {node n {seconds 10} {memory 16}} {performance {1 100}}}\n  {slow {node n {seconds 20} {memory 32}} {performance {1 400}}}\n}\n",
    ),
    (
        "HA0141",
        "harmonyBundle a b {\n  {fast {node n {seconds 1}}}\n  {slow {node n {seconds 1}}}\n}\n",
    ),
    (
        "HA0201",
        "harmonyBundle a b {\n  {o {variable w {1 2}} {node n {replicate w} {seconds 1}} {performance {0 - 10 * w}}}\n}\n",
    ),
    (
        "HA0202",
        "harmonyBundle a b {\n  {o {variable w {1 2}} {node n {seconds 100}} {performance {100 * w}}}\n}\n",
    ),
    (
        "HA0203",
        "harmonyBundle a b {\n  {o\n    {variable v1 {1 2 3 4 5 6 7 8 9}} {variable v2 {1 2 3 4 5 6 7 8 9}}\n    {variable v3 {1 2 3 4 5 6 7 8 9}} {variable v4 {1 2 3 4 5 6 7 8 9}}\n    {variable v5 {1 2 3 4 5 6 7 8 9}}\n    {node n {replicate v1} {seconds {0 - v2 - v3 - v4 - v5}}}}\n}\n",
    ),
];

fn golden_path(code: &str) -> std::path::PathBuf {
    std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests")
        .join("golden")
        .join(format!("{code}.txt"))
}

#[test]
fn every_code_has_a_case() {
    for (code, _, _) in harmony_analyze::diag::ALL_CODES {
        assert!(CASES.iter().any(|(c, _)| c == &code.0), "no golden case for {code}");
    }
    assert_eq!(CASES.len(), harmony_analyze::diag::ALL_CODES.len());
}

#[test]
fn snippets_trigger_their_codes_and_match_goldens() {
    let bless = std::env::var_os("GOLDEN_BLESS").is_some();
    let mut mismatches = Vec::new();
    for (code, src) in CASES {
        let diags = analyze_script(src).unwrap_or_else(|e| panic!("{code}: parse: {e}"));
        assert!(
            diags.iter().any(|d| d.code.0 == *code),
            "{code}: snippet did not trigger it; got {:?}",
            diags.iter().map(|d| d.code.0).collect::<Vec<_>>()
        );
        let rendered = render(&diags, src, "case.rsl");
        let path = golden_path(code);
        if bless {
            std::fs::write(&path, &rendered).unwrap();
            continue;
        }
        let expected = std::fs::read_to_string(&path)
            .unwrap_or_else(|e| panic!("{code}: missing golden file {path:?}: {e}"));
        if rendered != expected {
            mismatches.push(format!(
                "== {code} ==\n--- expected ---\n{expected}\n--- actual ---\n{rendered}"
            ));
        }
    }
    assert!(mismatches.is_empty(), "{}", mismatches.join("\n"));
}
