//! # harmony-analyze — static analysis for Resource Specification Language
//!
//! The paper's controller accepts whatever bundle an application registers
//! and only discovers broken specifications at match time, deep inside the
//! option-selection loop. This crate front-loads that discovery: it runs a
//! battery of static passes over parsed [`BundleSpec`]s and reports
//! [`Diagnostic`]s with stable `HAxxxx` codes, severities, and byte-span
//! labels that render rustc-style (see [`render`]) or as JSON (see
//! [`to_json`]).
//!
//! Passes, in order:
//!
//! 1. **names** — duplicate options, dangling link endpoints, undeclared
//!    variables, empty/degenerate declarations (`HA0001`–`HA0006`,
//!    `HA0101`–`HA0105`);
//! 2. **types** — numeric tags must hold numbers, constant expressions must
//!    fold (`HA0011`, `HA0012`, `HA0113`);
//! 3. **reach** — exact interpretation over the cartesian product of the
//!    variable choice domains, proving freedom from division by zero and
//!    negative demands or producing a counterexample (`HA0020`, `HA0021`,
//!    `HA0106`);
//! 4. **perf** — piecewise-linear performance tables: duplicate knots,
//!    ordering, negative times (`HA0030`, `HA0031`, `HA0130`);
//! 5. **dominance** — options that can never be profitably selected
//!    (`HA0140`, `HA0141`);
//! 6. **namespace** — names must be valid `harmony-ns` path components and
//!    bundles must not collide in the namespace (`HA0050`–`HA0052`);
//! 7. **facts** — the abstract-interpretation engine ([`facts`]): interval
//!    bounds, monotonicity, dominance proofs, and interference partitions,
//!    surfacing provable problems as `HA0201`–`HA0203`.
//!
//! Entry points: [`analyze_bundle`] for one parsed bundle,
//! [`analyze_script`] for RSL source (which also catches cross-bundle
//! namespace collisions).

pub mod diag;
pub mod facts;
pub mod json;
pub mod passes;
pub mod render;
mod sites;

pub use diag::{has_errors, is_clean, Code, Diagnostic, Label, Severity};
pub use json::to_json;
pub use render::render;

use harmony_rsl::schema::{BundleSpec, Statement};

/// Runs every per-bundle pass over `bundle` and returns the diagnostics
/// sorted by source position, severity, then code.
pub fn analyze_bundle(bundle: &BundleSpec) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    out.extend(passes::names::check(bundle));
    out.extend(passes::types::check(bundle));
    out.extend(passes::reach::check(bundle));
    out.extend(passes::perf::check(bundle));
    out.extend(passes::dominance::check(bundle));
    out.extend(passes::namespace::check_bundle(bundle));
    out.extend(facts::check_bundle(bundle));
    diag::sort(&mut out);
    out
}

/// Parses `src` as an RSL script and analyzes every bundle it defines,
/// including cross-bundle namespace collisions.
///
/// Returns `Err` only when the script fails to parse at all; parseable
/// scripts with broken bundles come back as `Ok(diagnostics)`.
pub fn analyze_script(src: &str) -> harmony_rsl::Result<Vec<Diagnostic>> {
    let statements = harmony_rsl::schema::parse_statements(src)?;
    let bundles: Vec<&BundleSpec> = statements
        .iter()
        .filter_map(|s| match s {
            Statement::Bundle(b) => Some(b),
            _ => None,
        })
        .collect();
    let mut out = Vec::new();
    for b in &bundles {
        out.extend(analyze_bundle(b));
    }
    out.extend(passes::namespace::check_script(&bundles));
    diag::sort(&mut out);
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_listings_are_diagnostic_free() {
        for src in [
            harmony_rsl::listings::FIG2A_SIMPLE,
            harmony_rsl::listings::FIG2B_BAG,
            harmony_rsl::listings::FIG3_DBCLIENT,
        ] {
            let diags = analyze_script(src).unwrap();
            assert!(diags.is_empty(), "{}", render(&diags, src, "listing.rsl"));
        }
    }

    #[test]
    fn broken_bundle_yields_multiple_distinct_codes() {
        // Undeclared variable `w` + reachable division by zero via `z`.
        let src = "harmonyBundle app conf {\n\
                   \x20 {opt\n\
                   \x20   {variable z {0 1}}\n\
                   \x20   {node n {replicate w} {seconds {100 / z}}}\n\
                   \x20 }\n\
                   }\n";
        let diags = analyze_script(src).unwrap();
        assert!(diags.iter().any(|d| d.code == diag::UNDECLARED_VAR), "{diags:?}");
        assert!(diags.iter().any(|d| d.code == diag::DIV_BY_ZERO), "{diags:?}");
        assert!(has_errors(&diags));
        assert!(!is_clean(&diags));
    }

    #[test]
    fn diagnostics_come_back_sorted_by_position() {
        let src = "harmonyBundle app conf {\n\
                   \x20 {a {node n {seconds -1}}}\n\
                   \x20 {b {node n {seconds {1 / 0}}}}\n\
                   }\n";
        let diags = analyze_script(src).unwrap();
        assert!(diags.len() >= 2);
        let starts: Vec<usize> =
            diags.iter().filter_map(|d| d.primary_span()).map(|s| s.start).collect();
        let mut sorted = starts.clone();
        sorted.sort_unstable();
        assert_eq!(starts, sorted);
    }

    #[test]
    fn script_parse_errors_are_err_not_diagnostics() {
        assert!(analyze_script("harmonyBundle app { unbalanced").is_err());
    }
}
