//! Rustc-style text rendering of diagnostics.

use crate::diag::{Diagnostic, Severity};

/// Renders one diagnostic against its source text.
///
/// ```text
/// error[HA0020]: division by zero is reachable in `seconds`
///   --> bag.rsl:4:49
///    |
///  4 |   {node worker {replicate w} {seconds {1200 / w}}}
///    |                                       ^^^^^^^^^^
///    = note: counterexample: w = 0
/// ```
pub fn render_one(diag: &Diagnostic, src: &str, filename: &str) -> String {
    let mut out = String::new();
    out.push_str(&format!("{}[{}]: {}", diag.severity.name(), diag.code, diag.message));
    if !diag.option.is_empty() {
        out.push_str(&format!(" (option `{}`)", diag.option));
    }
    out.push('\n');

    if let Some(label) = diag.labels.first() {
        let pos = label.span.pos(src);
        let line_no = pos.line as usize;
        out.push_str(&format!("  --> {filename}:{}:{}\n", pos.line, pos.column));

        if let Some(line_text) = src.lines().nth(line_no - 1) {
            let gutter = line_no.to_string().len().max(2);
            out.push_str(&format!("{:>gutter$} |\n", ""));
            out.push_str(&format!("{line_no:>gutter$} | {line_text}\n"));

            // Caret underline: clamp the span to this line.
            let col0 = pos.column as usize - 1;
            let line_len = line_text.len();
            let span_on_line = label.span.len().min(line_len.saturating_sub(col0)).max(1);
            let carets = "^".repeat(span_on_line);
            if label.message.is_empty() {
                out.push_str(&format!("{:>gutter$} | {:col0$}{carets}\n", "", ""));
            } else {
                out.push_str(&format!(
                    "{:>gutter$} | {:col0$}{carets} {}\n",
                    "", "", label.message
                ));
            }
        }
    }
    for note in &diag.notes {
        out.push_str(&format!("   = note: {note}\n"));
    }
    out
}

/// Renders a batch of diagnostics followed by a summary line.
///
/// Returns the empty string when there is nothing to report.
pub fn render(diags: &[Diagnostic], src: &str, filename: &str) -> String {
    if diags.is_empty() {
        return String::new();
    }
    let mut out = String::new();
    for d in diags {
        out.push_str(&render_one(d, src, filename));
        out.push('\n');
    }
    let errors = diags.iter().filter(|d| d.severity == Severity::Error).count();
    let warnings = diags.iter().filter(|d| d.severity == Severity::Warning).count();
    let mut parts = Vec::new();
    if errors > 0 {
        parts.push(format!("{errors} error{}", if errors == 1 { "" } else { "s" }));
    }
    if warnings > 0 {
        parts.push(format!("{warnings} warning{}", if warnings == 1 { "" } else { "s" }));
    }
    if parts.is_empty() {
        let notes = diags.len();
        parts.push(format!("{notes} note{}", if notes == 1 { "" } else { "s" }));
    }
    out.push_str(&format!("{filename}: {}\n", parts.join(", ")));
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::diag::{Diagnostic, DIV_BY_ZERO, UNUSED_VAR};
    use harmony_rsl::Span;

    #[test]
    fn renders_location_line_and_carets() {
        let src = "first line\n  {seconds {100 / w}}\n";
        let span_start = src.find("{100").unwrap();
        let d = Diagnostic::new(DIV_BY_ZERO, "division by zero is reachable")
            .with_label(Span::new(span_start, span_start + 9), "divisor can be zero")
            .with_note("counterexample: w = 0");
        let text = render_one(&d, src, "bundle.rsl");
        assert!(text.contains("error[HA0020]: division by zero is reachable"), "{text}");
        assert!(text.contains("--> bundle.rsl:2:12"), "{text}");
        assert!(text.contains("{seconds {100 / w}}"), "{text}");
        assert!(text.contains("^^^^^^^^^ divisor can be zero"), "{text}");
        assert!(text.contains("= note: counterexample: w = 0"), "{text}");
    }

    #[test]
    fn summary_counts_errors_and_warnings() {
        let src = "x";
        let diags = vec![
            Diagnostic::new(DIV_BY_ZERO, "a").with_label(Span::new(0, 1), ""),
            Diagnostic::new(UNUSED_VAR, "b").with_label(Span::new(0, 1), ""),
        ];
        let text = render(&diags, src, "f.rsl");
        assert!(text.contains("f.rsl: 1 error, 1 warning"), "{text}");
        assert_eq!(render(&[], src, "f.rsl"), "");
    }

    #[test]
    fn spanless_diagnostic_still_renders() {
        let d = Diagnostic::new(DIV_BY_ZERO, "no span");
        let text = render_one(&d, "src", "f.rsl");
        assert!(text.starts_with("error[HA0020]: no span"));
        assert!(!text.contains("-->"));
    }
}
