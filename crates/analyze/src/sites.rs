//! Enumeration of the *expression sites* of an option: every place a
//! [`TagValue`] appears, with its source span and how the value is used.
//!
//! The name, type, and reachability passes all walk the same sites, so the
//! enumeration lives here once.

use harmony_rsl::schema::{OptionSpec, TagValue};
use harmony_rsl::Span;

/// How a tag value is used, which determines the checks that apply.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum SiteKind {
    /// A node tag holding a resource amount (`seconds`, `memory`).
    NodeDemand,
    /// A node tag holding a name (`hostname`, `os`).
    NodeName,
    /// Any other node tag (matched against arbitrary node attributes).
    NodeOther,
    /// A link's required bandwidth.
    Bandwidth,
    /// The option's `communication` total.
    Communication,
    /// The option's `friction` switching cost.
    Friction,
}

impl SiteKind {
    /// True when the value must have a numeric amount.
    pub(crate) fn is_numeric(self) -> bool {
        matches!(
            self,
            SiteKind::NodeDemand
                | SiteKind::Bandwidth
                | SiteKind::Communication
                | SiteKind::Friction
        )
    }

    /// True when a negative value is a nonsensical resource demand.
    pub(crate) fn is_demand(self) -> bool {
        self.is_numeric()
    }
}

/// One occurrence of a tag value in an option.
#[derive(Debug, Clone)]
pub(crate) struct ExprSite<'a> {
    /// How the value is used.
    pub kind: SiteKind,
    /// Human-readable description, e.g. `` `seconds` tag of node `worker` ``.
    pub what: String,
    /// The value itself.
    pub value: &'a TagValue,
    /// Span of the value in the source.
    pub span: Span,
}

/// Enumerates every tag-value site of `opt`, in definition order.
pub(crate) fn expr_sites(opt: &OptionSpec) -> Vec<ExprSite<'_>> {
    let mut out = Vec::new();
    for node in &opt.nodes {
        for (i, (tag, value)) in node.tags.iter().enumerate() {
            let kind = match tag.as_str() {
                "seconds" | "memory" => SiteKind::NodeDemand,
                "hostname" | "os" => SiteKind::NodeName,
                _ => SiteKind::NodeOther,
            };
            out.push(ExprSite {
                kind,
                what: format!("`{tag}` tag of node `{}`", node.name),
                value,
                span: node.tag_span(i),
            });
        }
    }
    for link in &opt.links {
        out.push(ExprSite {
            kind: SiteKind::Bandwidth,
            what: format!("bandwidth of link `{}`-`{}`", link.a, link.b),
            value: &link.bandwidth,
            span: link.bandwidth_span,
        });
    }
    if let Some(c) = &opt.communication {
        out.push(ExprSite {
            kind: SiteKind::Communication,
            what: "`communication` tag".to_string(),
            value: c,
            span: opt.communication_span,
        });
    }
    if let Some(f) = &opt.friction {
        out.push(ExprSite {
            kind: SiteKind::Friction,
            what: "`friction` tag".to_string(),
            value: f,
            span: opt.friction_span,
        });
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use harmony_rsl::schema::parse_bundle_script;

    #[test]
    fn sites_cover_all_tag_values_in_order() {
        let bundle = parse_bundle_script(
            "harmonyBundle a b { {o \
               {node w {seconds 10} {memory 5} {os linux} {custom 3}} \
               {link w w 7} \
               {communication 9} \
               {friction 2}} }",
        )
        .unwrap();
        let sites = expr_sites(&bundle.options[0]);
        let kinds: Vec<SiteKind> = sites.iter().map(|s| s.kind).collect();
        assert_eq!(
            kinds,
            vec![
                SiteKind::NodeDemand,
                SiteKind::NodeDemand,
                SiteKind::NodeName,
                SiteKind::NodeOther,
                SiteKind::Bandwidth,
                SiteKind::Communication,
                SiteKind::Friction,
            ]
        );
        assert!(sites.iter().all(|s| !s.span.is_empty()));
        assert!(SiteKind::Bandwidth.is_numeric() && SiteKind::Bandwidth.is_demand());
        assert!(!SiteKind::NodeName.is_numeric());
    }
}
