//! Machine-readable JSON emission.
//!
//! Each diagnostic is emitted as one JSON object with the span resolved to
//! one-based `line`/`column` against the analyzed source, so consumers need
//! no access to the source text to locate findings.

use serde::{Deserialize, Serialize};

use crate::diag::Diagnostic;

/// JSON view of a [`Label`](crate::diag::Label): byte range plus message.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct JsonLabel {
    /// Start byte offset.
    pub start: usize,
    /// End byte offset (exclusive).
    pub end: usize,
    /// One-based line of the start offset.
    pub line: u32,
    /// One-based column of the start offset.
    pub column: u32,
    /// Label message.
    pub message: String,
}

/// JSON view of a [`Diagnostic`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct JsonDiagnostic {
    /// Stable code, e.g. `"HA0020"`.
    pub code: String,
    /// `"error"`, `"warning"`, or `"note"`.
    pub severity: String,
    /// Primary message.
    pub message: String,
    /// Option name, empty for bundle-level findings.
    pub option: String,
    /// Labels (primary first); empty for span-free findings.
    pub labels: Vec<JsonLabel>,
    /// Notes such as counterexample assignments.
    pub notes: Vec<String>,
}

impl JsonDiagnostic {
    /// Builds the JSON view of `diag`, resolving spans against `src`.
    pub fn from_diagnostic(diag: &Diagnostic, src: &str) -> Self {
        JsonDiagnostic {
            code: diag.code.0.to_string(),
            severity: diag.severity.name().to_string(),
            message: diag.message.clone(),
            option: diag.option.clone(),
            labels: diag
                .labels
                .iter()
                .map(|l| {
                    let pos = l.span.pos(src);
                    JsonLabel {
                        start: l.span.start,
                        end: l.span.end,
                        line: pos.line,
                        column: pos.column,
                        message: l.message.clone(),
                    }
                })
                .collect(),
            notes: diag.notes.clone(),
        }
    }
}

/// Serializes diagnostics as a JSON array (one object per finding).
pub fn to_json(diags: &[Diagnostic], src: &str) -> String {
    let views: Vec<JsonDiagnostic> =
        diags.iter().map(|d| JsonDiagnostic::from_diagnostic(d, src)).collect();
    serde_json::to_string(&views).unwrap_or_else(|_| "[]".to_string())
}

/// Parses a [`to_json`] payload back into [`Diagnostic`]s — the receiving
/// side of `harmonyctl lint` against a daemon. Diagnostics with codes this
/// build does not know are dropped; `None` when the payload is not a
/// diagnostics array at all.
pub fn parse_diagnostics(json: &str) -> Option<Vec<Diagnostic>> {
    let views: Vec<JsonDiagnostic> = serde_json::from_str(json).ok()?;
    Some(
        views
            .into_iter()
            .filter_map(|v| {
                let (code, _) = crate::diag::lookup(&v.code)?;
                let mut d = Diagnostic::new(code, v.message).in_option(v.option);
                for l in v.labels {
                    d = d.with_label(harmony_rsl::Span::new(l.start, l.end), l.message);
                }
                for n in v.notes {
                    d = d.with_note(n);
                }
                Some(d)
            })
            .collect(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::diag::{Diagnostic, DIV_BY_ZERO};
    use harmony_rsl::Span;

    #[test]
    fn json_resolves_line_and_column() {
        let src = "line one\nline two here";
        let start = src.find("two").unwrap();
        let d = Diagnostic::new(DIV_BY_ZERO, "boom")
            .with_label(Span::new(start, start + 3), "here")
            .with_note("counterexample: w = 0");
        let json = to_json(&[d], src);
        assert!(json.contains("\"code\":\"HA0020\""), "{json}");
        assert!(json.contains("\"severity\":\"error\""), "{json}");
        assert!(json.contains("\"line\":2"), "{json}");
        assert!(json.contains("\"column\":6"), "{json}");
        assert!(json.contains("counterexample: w = 0"), "{json}");

        // And it parses back.
        let parsed: Vec<JsonDiagnostic> = serde_json::from_str(&json).unwrap();
        assert_eq!(parsed.len(), 1);
        assert_eq!(parsed[0].labels[0].column, 6);
    }

    #[test]
    fn empty_input_is_empty_array() {
        assert_eq!(to_json(&[], ""), "[]");
    }

    #[test]
    fn diagnostics_round_trip_through_json() {
        let src = "some source text";
        let d = Diagnostic::new(DIV_BY_ZERO, "boom")
            .in_option("QS")
            .with_label(Span::new(5, 11), "here")
            .with_note("counterexample: w = 0");
        let parsed = parse_diagnostics(&to_json(std::slice::from_ref(&d), src)).unwrap();
        assert_eq!(parsed.len(), 1);
        assert_eq!(parsed[0].code, d.code);
        assert_eq!(parsed[0].severity, d.severity);
        assert_eq!(parsed[0].option, "QS");
        assert!(parsed[0].primary_span().unwrap().same_range(&Span::new(5, 11)));
        assert_eq!(parsed[0].notes, d.notes);
        assert!(parse_diagnostics("not json").is_none());
    }
}
