//! Pass 6 — namespace validation against `harmony-ns` paths.
//!
//! Registered bundles live in the hierarchical namespace as
//! `app.instance.bundle.option.node.tag` paths (paper §3.2). Every name a
//! bundle contributes must therefore be a valid path component, two bundles
//! must not claim the same `app.instance.bundle` prefix, and within one
//! option a variable and a node requirement must not share a name (a bare
//! reference could mean either).

use harmony_ns::HPath;
use harmony_rsl::schema::BundleSpec;
use harmony_rsl::Span;

use crate::diag::{Diagnostic, NS_BAD_COMPONENT, NS_COLLISION, NS_VAR_NODE_CLASH};

fn check_component(name: &str, what: &str, span: Span, option: &str, out: &mut Vec<Diagnostic>) {
    if HPath::from_components([name]).is_err() {
        let mut d = Diagnostic::new(
            NS_BAD_COMPONENT,
            format!("{what} `{name}` is not a valid namespace component"),
        )
        .with_label(span, "components must be non-empty, without `.` or whitespace");
        if !option.is_empty() {
            d = d.in_option(option);
        }
        out.push(d);
    }
}

/// Checks the names one bundle contributes to the namespace.
pub fn check_bundle(bundle: &BundleSpec) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    check_component(&bundle.app, "application name", bundle.app_span, "", &mut out);
    check_component(&bundle.name, "bundle name", bundle.name_span, "", &mut out);
    for opt in &bundle.options {
        check_component(&opt.name, "option name", opt.name_span, &opt.name, &mut out);
        for node in &opt.nodes {
            check_component(&node.name, "node name", node.name_span, &opt.name, &mut out);
        }
        for var in &opt.variables {
            check_component(&var.name, "variable name", var.name_span, &opt.name, &mut out);
            if opt.nodes.iter().any(|n| n.name == var.name) {
                out.push(
                    Diagnostic::new(
                        NS_VAR_NODE_CLASH,
                        format!("`{}` names both a variable and a node requirement", var.name),
                    )
                    .in_option(&opt.name)
                    .with_label(var.name_span, "declared as a variable here")
                    .with_note("bare references to the name are ambiguous under the allocation"),
                );
            }
        }
    }
    out
}

/// Checks a whole script's bundles against each other: two bundles claiming
/// the same `app.instance.bundle` path collide in the namespace.
///
/// Bundles without an explicit instance never collide — the controller
/// assigns each a fresh instance id at registration.
pub fn check_script(bundles: &[&BundleSpec]) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    for (i, b) in bundles.iter().enumerate() {
        let Some(inst) = b.instance else { continue };
        for earlier in &bundles[..i] {
            if earlier.app == b.app && earlier.instance == Some(inst) && earlier.name == b.name {
                out.push(
                    Diagnostic::new(
                        NS_COLLISION,
                        format!(
                            "bundle `{}.{}.{}` is already defined; its namespace paths collide",
                            b.app, inst, b.name
                        ),
                    )
                    .with_label(b.name_span, "second definition here")
                    .with_note("register the bundle under a different instance id or bundle name"),
                );
                break;
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use harmony_rsl::schema::{parse_bundle_script, parse_statements, Statement};

    fn bundle(src: &str) -> BundleSpec {
        parse_bundle_script(src).unwrap()
    }

    #[test]
    fn dotted_app_name_is_invalid() {
        let src = "harmonyBundle a.b:1 conf { {o {node n {seconds 1}}} }";
        let diags = check_bundle(&bundle(src));
        let d = diags.iter().find(|d| d.code == NS_BAD_COMPONENT).unwrap();
        assert!(d.message.contains("application name"), "{}", d.message);
        assert_eq!(d.primary_span().unwrap().slice(src), Some("a.b:1"));
    }

    #[test]
    fn variable_node_clash_is_reported() {
        let diags = check_bundle(&bundle(
            "harmonyBundle a b { {o {variable n {1 2}} \
             {node n {replicate n} {seconds 1}}} }",
        ));
        assert!(diags.iter().any(|d| d.code == NS_VAR_NODE_CLASH), "{diags:?}");
    }

    #[test]
    fn same_instance_bundles_collide() {
        let src = "harmonyBundle app:7 conf { {o {node n {seconds 1}}} }\n\
                   harmonyBundle app:7 conf { {p {node m {seconds 2}}} }";
        let stmts = parse_statements(src).unwrap();
        let bundles: Vec<&BundleSpec> = stmts
            .iter()
            .filter_map(|s| match s {
                Statement::Bundle(b) => Some(b),
                _ => None,
            })
            .collect();
        let diags = check_script(&bundles);
        let d = diags.iter().find(|d| d.code == NS_COLLISION).unwrap();
        assert!(d.message.contains("app.7.conf"), "{}", d.message);
        // The label points at the *second* definition.
        assert!(d.primary_span().unwrap().start > src.find('\n').unwrap());
    }

    #[test]
    fn distinct_instances_do_not_collide() {
        let src = "harmonyBundle app:1 conf { {o {node n {seconds 1}}} }\n\
                   harmonyBundle app:2 conf { {o {node n {seconds 1}}} }\n\
                   harmonyBundle app conf2 { {o {node n {seconds 1}}} }";
        let stmts = parse_statements(src).unwrap();
        let bundles: Vec<&BundleSpec> = stmts
            .iter()
            .filter_map(|s| match s {
                Statement::Bundle(b) => Some(b),
                _ => None,
            })
            .collect();
        assert!(check_script(&bundles).is_empty());
    }

    #[test]
    fn clean_names_pass() {
        let diags = check_bundle(&bundle(harmony_rsl::listings::FIG3_DBCLIENT));
        assert!(diags.is_empty(), "{diags:?}");
    }
}
