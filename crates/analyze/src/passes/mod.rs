//! The analysis passes, in the order `analyze_bundle` runs them.

pub mod dominance;
pub mod names;
pub mod namespace;
pub mod perf;
pub mod reach;
pub mod types;
