//! Pass 1 — name and link resolution.
//!
//! The span-carrying successor of the seed repo's schema linter (removed
//! once this crate subsumed it): duplicate options and node requirements,
//! dangling link endpoints, undeclared/unused variables, dotted references
//! to non-nodes, choice-list sanity, and empty options.

use harmony_rsl::schema::{BundleSpec, CountSpec, OptionSpec, PerfSpec};
use harmony_rsl::Span;

use crate::diag::{
    Diagnostic, DOTTED_NOT_NODE, DUP_CHOICE, DUP_NODE, DUP_OPTION, EMPTY_OPTION, LINK_UNDEFINED,
    NEG_GRANULARITY, NONPOS_CHOICE, SELF_LINK, UNDECLARED_VAR, UNUSED_VAR,
};
use crate::sites::expr_sites;

/// Every free name referenced in `opt`, with the span of the value that
/// references it, in definition order (deduplicated by name).
fn referenced_names(opt: &OptionSpec) -> Vec<(String, Span)> {
    let mut out: Vec<(String, Span)> = Vec::new();
    let mut push = |name: String, span: Span| {
        if !out.iter().any(|(n, _)| *n == name) {
            out.push((name, span));
        }
    };
    for site in expr_sites(opt) {
        for name in site.value.free_names() {
            push(name, site.span);
        }
    }
    for node in &opt.nodes {
        if let CountSpec::Param(p) = &node.count {
            push(p.clone(), node.name_span);
        }
    }
    if let Some(PerfSpec::Expr(e)) = &opt.performance {
        for name in e.free_names() {
            push(name, opt.performance_span);
        }
    }
    out
}

fn check_option(opt: &OptionSpec, out: &mut Vec<Diagnostic>) {
    let node_names: Vec<&str> = opt.nodes.iter().map(|n| n.name.as_str()).collect();

    // Duplicate node requirements.
    for (i, node) in opt.nodes.iter().enumerate() {
        if opt.nodes[..i].iter().any(|n| n.name == node.name) {
            out.push(
                Diagnostic::new(
                    DUP_NODE,
                    format!("node requirement `{}` is defined twice", node.name),
                )
                .in_option(&opt.name)
                .with_label(node.name_span, "defined again here"),
            );
        }
    }

    // Links must reference defined node requirements.
    for link in &opt.links {
        for (end, span) in [(&link.a, link.a_span), (&link.b, link.b_span)] {
            if !node_names.contains(&end.as_str()) {
                out.push(
                    Diagnostic::new(
                        LINK_UNDEFINED,
                        format!("link references undefined node requirement `{end}`"),
                    )
                    .in_option(&opt.name)
                    .with_label(span, "no such node requirement"),
                );
            }
        }
        if link.a == link.b {
            out.push(
                Diagnostic::new(
                    SELF_LINK,
                    format!("link connects `{}` to itself (intra-node links are free)", link.a),
                )
                .in_option(&opt.name)
                .with_label(link.span, ""),
            );
        }
    }

    // Variables: declared vs referenced.
    let declared: Vec<&str> = opt.variables.iter().map(|v| v.name.as_str()).collect();
    let referenced = referenced_names(opt);
    for var in &opt.variables {
        if !referenced.iter().any(|(r, _)| r == &var.name) {
            out.push(
                Diagnostic::new(
                    UNUSED_VAR,
                    format!("variable `{}` is declared but never used", var.name),
                )
                .in_option(&opt.name)
                .with_label(var.name_span, "declared here"),
            );
        }
    }
    for (name, span) in &referenced {
        // Dotted names resolve against the allocation (e.g. `client.memory`);
        // their head must be a node requirement.
        if let Some((head, _)) = name.split_once('.') {
            if !node_names.contains(&head) {
                out.push(
                    Diagnostic::new(
                        DOTTED_NOT_NODE,
                        format!("`{name}` references `{head}`, which is not a node requirement"),
                    )
                    .in_option(&opt.name)
                    .with_label(*span, format!("`{head}` is not defined by this option")),
                );
            }
        } else if !declared.contains(&name.as_str()) {
            out.push(
                Diagnostic::new(
                    UNDECLARED_VAR,
                    format!("`{name}` is referenced but not declared as a variable"),
                )
                .in_option(&opt.name)
                .with_label(*span, format!("`{name}` is unbound here"))
                .with_note(format!(
                    "declare it with {{variable {name} {{...}}}} in option `{}`",
                    opt.name
                )),
            );
        }
    }

    // Variable choice sanity.
    for var in &opt.variables {
        let mut sorted = var.choices.clone();
        sorted.sort_unstable();
        sorted.dedup();
        if sorted.len() != var.choices.len() {
            out.push(
                Diagnostic::new(
                    DUP_CHOICE,
                    format!("variable `{}` has duplicate choices", var.name),
                )
                .in_option(&opt.name)
                .with_label(var.choices_span, ""),
            );
        }
        if var.choices.iter().any(|&c| c <= 0) {
            out.push(
                Diagnostic::new(
                    NONPOS_CHOICE,
                    format!("variable `{}` includes non-positive choices", var.name),
                )
                .in_option(&opt.name)
                .with_label(var.choices_span, ""),
            );
        }
    }

    // Granularity sanity.
    if let Some(g) = opt.granularity {
        if g < 0.0 {
            out.push(
                Diagnostic::new(NEG_GRANULARITY, format!("granularity {g} is negative"))
                    .in_option(&opt.name)
                    .with_label(opt.granularity_span, "must be ≥ 0 seconds"),
            );
        }
    }

    // Options without any node requirement never consume anything.
    if opt.nodes.is_empty() {
        out.push(
            Diagnostic::new(EMPTY_OPTION, "option has no node requirements; it consumes nothing")
                .in_option(&opt.name)
                .with_label(opt.name_span, ""),
        );
    }
}

/// Runs the pass over a bundle.
pub fn check(bundle: &BundleSpec) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    for (i, opt) in bundle.options.iter().enumerate() {
        if bundle.options[..i].iter().any(|o| o.name == opt.name) {
            out.push(
                Diagnostic::new(DUP_OPTION, format!("option `{}` is defined twice", opt.name))
                    .with_label(opt.name_span, "defined again here")
                    .with_note("the controller only ever evaluates the first definition"),
            );
        }
        check_option(opt, &mut out);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::diag::{has_errors, Severity};
    use harmony_rsl::schema::parse_bundle_script;

    fn run(src: &str) -> Vec<Diagnostic> {
        check(&parse_bundle_script(src).unwrap())
    }

    #[test]
    fn undeclared_variable_points_at_referencing_value() {
        let src = "harmonyBundle a b { {o {node n {seconds {100 / w}}}} }";
        let diags = run(src);
        let d = diags.iter().find(|d| d.code == UNDECLARED_VAR).unwrap();
        assert_eq!(d.primary_span().unwrap().slice(src), Some("{100 / w}"));
        assert!(has_errors(&diags));
    }

    #[test]
    fn link_endpoint_span_is_the_endpoint_token() {
        let src = "harmonyBundle a b { {o {node x {seconds 1}} {link x ghost 5}} }";
        let diags = run(src);
        let d = diags.iter().find(|d| d.code == LINK_UNDEFINED).unwrap();
        assert_eq!(d.primary_span().unwrap().slice(src), Some("ghost"));
    }

    #[test]
    fn warnings_for_unused_and_choices_and_self_link() {
        let src = "harmonyBundle a b { {o {variable w {2 2 0}} \
                   {node n {seconds 1}} {link n n 5}} }";
        let diags = run(src);
        assert!(diags.iter().any(|d| d.code == UNUSED_VAR));
        assert!(diags.iter().any(|d| d.code == DUP_CHOICE));
        assert!(diags.iter().any(|d| d.code == NONPOS_CHOICE));
        assert!(diags.iter().any(|d| d.code == SELF_LINK));
        assert!(diags.iter().all(|d| d.severity == Severity::Warning));
    }

    #[test]
    fn duplicate_option_and_node_error() {
        let src = "harmonyBundle a b { {o {node n {seconds 1}} {node n {seconds 2}}} \
                   {o {node m {seconds 1}}} }";
        let diags = run(src);
        assert!(diags.iter().any(|d| d.code == DUP_OPTION));
        assert!(diags.iter().any(|d| d.code == DUP_NODE));
    }

    #[test]
    fn replicate_param_counts_as_use_and_dotted_heads_resolve() {
        let src = "harmonyBundle a b { {o {variable w {1 2}} \
                   {node n {replicate w} {seconds 1}} \
                   {communication {10 + ghost.memory}}} }";
        let diags = run(src);
        assert!(!diags.iter().any(|d| d.code == UNUSED_VAR));
        let d = diags.iter().find(|d| d.code == DOTTED_NOT_NODE).unwrap();
        assert_eq!(d.primary_span().unwrap().slice(src), Some("{10 + ghost.memory}"));
    }

    #[test]
    fn empty_option_and_negative_granularity() {
        let src = "harmonyBundle a b { {o {granularity -5}} }";
        let diags = run(src);
        assert!(diags.iter().any(|d| d.code == EMPTY_OPTION));
        let d = diags.iter().find(|d| d.code == NEG_GRANULARITY).unwrap();
        assert_eq!(d.primary_span().unwrap().slice(src), Some("-5"));
    }
}
