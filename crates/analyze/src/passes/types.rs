//! Pass 2 — type and unit checking of tag values.
//!
//! `seconds`, `memory`, `communication`, `friction`, and link bandwidths
//! are amounts: they must evaluate to numbers. `hostname`/`os` are names:
//! a numeric value is almost certainly a mistake. Constant expressions are
//! folded here; failures surface as diagnostics instead of match-time
//! errors deep inside the controller.

use harmony_rsl::expr::MapEnv;
use harmony_rsl::schema::{BundleSpec, TagValue};
use harmony_rsl::{RslError, Value};

use crate::diag::{Diagnostic, BAD_CONST_EXPR, NON_NUMERIC_TAG, NUMERIC_NAME_TAG};
use crate::sites::expr_sites;

/// Runs the pass over a bundle.
pub fn check(bundle: &BundleSpec) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    for opt in &bundle.options {
        for site in expr_sites(opt) {
            if site.kind.is_numeric() {
                match site.value {
                    TagValue::Any => {
                        out.push(
                            Diagnostic::new(
                                NON_NUMERIC_TAG,
                                format!("{} is `*`, which has no numeric amount", site.what),
                            )
                            .in_option(&opt.name)
                            .with_label(site.span, "expected a number here"),
                        );
                    }
                    TagValue::Exact(v) if v.as_f64().is_err() => {
                        out.push(
                            Diagnostic::new(
                                NON_NUMERIC_TAG,
                                format!(
                                    "{} holds `{}`, which is not a number",
                                    site.what,
                                    v.canonical()
                                ),
                            )
                            .in_option(&opt.name)
                            .with_label(site.span, "expected a number here"),
                        );
                    }
                    TagValue::Expr(e) if e.is_constant() => {
                        // Constant folding: a constant expression must
                        // produce a number. Division by zero is deliberately
                        // left to the reachability pass (HA0020).
                        match harmony_rsl::expr::eval(e, &MapEnv::new()) {
                            Err(RslError::DivideByZero) => {}
                            Err(err) => out.push(
                                Diagnostic::new(
                                    BAD_CONST_EXPR,
                                    format!("{} does not evaluate: {err}", site.what),
                                )
                                .in_option(&opt.name)
                                .with_label(site.span, "this expression is constant but invalid"),
                            ),
                            Ok(v) => {
                                if v.as_f64().is_err() {
                                    out.push(
                                        Diagnostic::new(
                                            BAD_CONST_EXPR,
                                            format!(
                                                "{} evaluates to `{}`, not a number",
                                                site.what,
                                                v.canonical()
                                            ),
                                        )
                                        .in_option(&opt.name)
                                        .with_label(site.span, "expected a number"),
                                    );
                                }
                            }
                        }
                    }
                    _ => {}
                }
            } else if matches!(site.kind, crate::sites::SiteKind::NodeName) {
                if let TagValue::Exact(Value::Int(_) | Value::Float(_)) = site.value {
                    out.push(
                        Diagnostic::new(
                            NUMERIC_NAME_TAG,
                            format!("{} holds a number, expected a name", site.what),
                        )
                        .in_option(&opt.name)
                        .with_label(site.span, ""),
                    );
                }
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use harmony_rsl::schema::parse_bundle_script;

    fn run(src: &str) -> Vec<Diagnostic> {
        check(&parse_bundle_script(src).unwrap())
    }

    #[test]
    fn string_in_seconds_is_an_error() {
        let src = "harmonyBundle a b { {o {node n {seconds lots}}} }";
        let diags = run(src);
        let d = diags.iter().find(|d| d.code == NON_NUMERIC_TAG).unwrap();
        assert_eq!(d.primary_span().unwrap().slice(src), Some("lots"));
        assert!(d.message.contains("`seconds` tag of node `n`"), "{}", d.message);
    }

    #[test]
    fn wildcard_in_memory_is_an_error() {
        let diags = run("harmonyBundle a b { {o {node n {seconds 1} {memory *}}} }");
        assert!(diags.iter().any(|d| d.code == NON_NUMERIC_TAG));
    }

    #[test]
    fn constant_expression_type_errors_fold() {
        // min() with no args is an arity error; the expression is constant.
        let diags = run("harmonyBundle a b { {o {node n {seconds {1 + min()}}}} }");
        assert!(diags.iter().any(|d| d.code == BAD_CONST_EXPR), "{diags:?}");
    }

    #[test]
    fn constant_division_by_zero_is_left_to_reachability_pass() {
        let diags = run("harmonyBundle a b { {o {node n {seconds {10 / 0}}}} }");
        assert!(!diags.iter().any(|d| d.code == BAD_CONST_EXPR), "{diags:?}");
    }

    #[test]
    fn numeric_hostname_warns() {
        let diags = run("harmonyBundle a b { {o {node n {seconds 1} {hostname 42}}} }");
        assert!(diags.iter().any(|d| d.code == NUMERIC_NAME_TAG));
    }

    #[test]
    fn wildcard_hostname_and_elastic_memory_are_fine() {
        let diags = run("harmonyBundle a b { {o {node n * {seconds 1} {memory >=17}} \
             {node m {seconds 2}} {link n m {44 + n.memory}}} }");
        assert!(diags.is_empty(), "{diags:?}");
    }
}
