//! Pass 4 — performance-table validation.
//!
//! `{performance {x t} ...}` tables drive piecewise-linear interpolation
//! (paper §3.4). Duplicate `x` knots make the curve ambiguous; out-of-order
//! breakpoints usually mean a typo; negative times are meaningless.

use harmony_rsl::schema::{BundleSpec, PerfSpec};

use crate::diag::{Diagnostic, DUP_PERF_KNOT, NEG_PERF_TIME, UNSORTED_PERF};

/// Runs the pass over a bundle.
pub fn check(bundle: &BundleSpec) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    for opt in &bundle.options {
        let Some(PerfSpec::Points(points)) = &opt.performance else { continue };

        for (i, (x, _)) in points.iter().enumerate() {
            if points[..i].iter().any(|(px, _)| px == x) {
                out.push(
                    Diagnostic::new(
                        DUP_PERF_KNOT,
                        format!("performance table repeats the knot x = {x}"),
                    )
                    .in_option(&opt.name)
                    .with_label(opt.performance_span, "interpolation is ambiguous here")
                    .with_note("each breakpoint x must appear exactly once"),
                );
            }
        }

        if points.windows(2).any(|w| w[0].0 > w[1].0) {
            out.push(
                Diagnostic::new(
                    UNSORTED_PERF,
                    "performance breakpoints are not in increasing x order",
                )
                .in_option(&opt.name)
                .with_label(opt.performance_span, "")
                .with_note(
                    "the interpolator sorts internally, but out-of-order knots usually \
                     indicate a typo",
                ),
            );
        }

        for (x, t) in points {
            if *t < 0.0 {
                out.push(
                    Diagnostic::new(
                        NEG_PERF_TIME,
                        format!("performance table predicts the negative time {t} at x = {x}"),
                    )
                    .in_option(&opt.name)
                    .with_label(opt.performance_span, "predicted times must be ≥ 0"),
                );
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use harmony_rsl::schema::parse_bundle_script;

    fn run(src: &str) -> Vec<Diagnostic> {
        check(&parse_bundle_script(src).unwrap())
    }

    #[test]
    fn duplicate_knot_is_an_error() {
        let src = "harmonyBundle a b { {o {node n {seconds 1}} \
                   {performance {1 100} {2 80} {2 70}}} }";
        let diags = run(src);
        let d = diags.iter().find(|d| d.code == DUP_PERF_KNOT).unwrap();
        assert!(d.message.contains("x = 2"), "{}", d.message);
        assert!(d.primary_span().unwrap().slice(src).unwrap().starts_with("{performance"));
    }

    #[test]
    fn unsorted_breakpoints_warn() {
        let diags = run("harmonyBundle a b { {o {node n {seconds 1}} \
             {performance {4 50} {1 100} {2 80}}} }");
        assert!(diags.iter().any(|d| d.code == UNSORTED_PERF));
        assert!(!diags.iter().any(|d| d.code == DUP_PERF_KNOT));
    }

    #[test]
    fn negative_time_is_an_error() {
        let diags = run("harmonyBundle a b { {o {node n {seconds 1}} \
             {performance {1 100} {2 -5}}} }");
        assert!(diags.iter().any(|d| d.code == NEG_PERF_TIME));
    }

    #[test]
    fn fig2b_table_is_clean() {
        let diags = run(harmony_rsl::listings::FIG2B_BAG);
        assert!(diags.is_empty(), "{diags:?}");
    }
}
