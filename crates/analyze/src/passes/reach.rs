//! Pass 3 — reachability over the variable choice domains.
//!
//! Each option's `variable` tags define a finite cartesian product of
//! assignments; the controller may instantiate any point of it. This pass
//! interprets every tag expression over that product and reports
//! assignments that make a divisor zero (HA0020) or a resource demand
//! negative (HA0021), with the concrete counterexample. Because the domain
//! is finite the interpretation is exact: no finding is a false positive,
//! and a clean pass is a proof over the whole domain.
//!
//! Expressions also mentioning allocation values (dotted names such as
//! `client.memory`) cannot be decided from the bundle alone; their divisors
//! are checked only when the divisor itself depends purely on variables.

use harmony_rsl::expr::{Expr, MapEnv};
use harmony_rsl::schema::{BundleSpec, OptionSpec, PerfSpec, TagValue};
use harmony_rsl::{Span, Value};

use crate::diag::{Diagnostic, DIV_BY_ZERO, DOMAIN_TOO_LARGE, NEG_DEMAND};
use crate::sites::expr_sites;

/// Upper bound on the size of the choice-domain product that is enumerated
/// exhaustively; beyond this the pass reports [`DOMAIN_TOO_LARGE`] instead
/// of silently skipping. `harmony-core` reuses this constant as the
/// default bound of its exhaustive joint optimizer
/// (`DEFAULT_EXHAUSTIVE_LIMIT`), so "too large to enumerate" means the
/// same thing to the linter and to the controller.
pub const DOMAIN_CAP: usize = 4096;

/// One point of the cartesian product: `(name, value)` per variable.
pub(crate) type Assignment = Vec<(String, i64)>;

/// Enumerates the full cartesian product of the option's choice domains.
/// Returns `None` when the product exceeds [`DOMAIN_CAP`].
pub(crate) fn assignments(opt: &OptionSpec) -> Option<Vec<Assignment>> {
    let mut size = 1usize;
    for v in &opt.variables {
        size = size.checked_mul(v.choices.len().max(1))?;
        if size > DOMAIN_CAP {
            return None;
        }
    }
    let mut points: Vec<Assignment> = vec![Vec::new()];
    for v in &opt.variables {
        let mut next = Vec::with_capacity(points.len() * v.choices.len());
        for point in &points {
            for &c in &v.choices {
                let mut p = point.clone();
                p.push((v.name.clone(), c));
                next.push(p);
            }
        }
        points = next;
    }
    Some(points)
}

pub(crate) fn env_of(assignment: &Assignment) -> MapEnv {
    let mut env = MapEnv::new();
    for (name, value) in assignment {
        env.set(name, Value::Int(*value));
    }
    env
}

/// Renders the sub-assignment relevant to `expr` as `a = 1, b = 2`.
fn counterexample(assignment: &Assignment, expr: &Expr) -> String {
    let free = expr.free_names();
    let parts: Vec<String> = assignment
        .iter()
        .filter(|(n, _)| free.iter().any(|f| f == n))
        .map(|(n, v)| format!("{n} = {v}"))
        .collect();
    if parts.is_empty() {
        "no variables involved (the expression is constant)".to_string()
    } else {
        parts.join(", ")
    }
}

/// Collects every divisor (right-hand side of `/` or `%`) in `expr`.
fn divisors<'e>(expr: &'e Expr, out: &mut Vec<&'e Expr>) {
    match expr {
        Expr::Int(_) | Expr::Float(_) | Expr::Str(_) | Expr::Name(_) => {}
        Expr::Unary(_, e) => divisors(e, out),
        Expr::Binary(op, a, b) => {
            if matches!(op, harmony_rsl::expr::BinOp::Div | harmony_rsl::expr::BinOp::Rem) {
                out.push(b);
            }
            divisors(a, out);
            divisors(b, out);
        }
        Expr::Ternary(c, t, e) => {
            divisors(c, out);
            divisors(t, out);
            divisors(e, out);
        }
        Expr::Call(_, args) => {
            for a in args {
                divisors(a, out);
            }
        }
    }
}

/// True when every free name of `expr` is a declared variable (so the
/// expression is decidable from the bundle alone).
fn decidable(expr: &Expr, declared: &[&str]) -> bool {
    expr.free_names().iter().all(|n| declared.contains(&n.as_str()))
}

/// Per-option context shared by every expression check: which option we are
/// in, which variables it declares, and the enumerated assignment points.
struct ExprCtx<'a> {
    opt_name: &'a str,
    declared: &'a [&'a str],
    points: &'a [Assignment],
}

fn check_expr(
    expr: &Expr,
    span: Span,
    what: &str,
    is_demand: bool,
    ctx: &ExprCtx<'_>,
    out: &mut Vec<Diagnostic>,
) {
    let ExprCtx { opt_name, declared, points } = *ctx;
    // Division by zero: check each divisor that is decidable, even when the
    // surrounding expression also reads allocation values.
    let mut divs = Vec::new();
    divisors(expr, &mut divs);
    let mut reported: Vec<String> = Vec::new();
    for d in divs {
        if !decidable(d, declared) {
            continue;
        }
        // `1/w + 2/w` has the divisor `w` twice; report it once.
        let key = d.to_string();
        if reported.contains(&key) {
            continue;
        }
        reported.push(key);
        for point in points {
            let env = env_of(point);
            if let Ok(v) = harmony_rsl::expr::eval(d, &env) {
                if v.as_f64().map(|x| x == 0.0).unwrap_or(false) {
                    out.push(
                        Diagnostic::new(
                            DIV_BY_ZERO,
                            format!("division by zero is reachable in {what}"),
                        )
                        .in_option(opt_name)
                        .with_label(span, format!("divisor `{d}` can be zero"))
                        .with_note(format!("counterexample: {}", counterexample(point, d))),
                    );
                    break;
                }
            }
        }
    }

    // Negative demands: only meaningful for resource amounts, and only when
    // the whole expression is decidable.
    if is_demand && decidable(expr, declared) {
        for point in points {
            let env = env_of(point);
            if let Ok(v) = harmony_rsl::expr::eval(expr, &env) {
                if v.as_f64().map(|x| x < 0.0).unwrap_or(false) {
                    out.push(
                        Diagnostic::new(NEG_DEMAND, format!("{what} can demand a negative amount"))
                            .in_option(opt_name)
                            .with_label(span, "this amount can go negative")
                            .with_note(format!("counterexample: {}", counterexample(point, expr))),
                    );
                    break;
                }
            }
        }
    }
}

/// Runs the pass over a bundle.
pub fn check(bundle: &BundleSpec) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    for opt in &bundle.options {
        let Some(points) = assignments(opt) else {
            let size: String = opt
                .variables
                .iter()
                .map(|v| v.choices.len().to_string())
                .collect::<Vec<_>>()
                .join("×");
            out.push(
                Diagnostic::new(
                    DOMAIN_TOO_LARGE,
                    format!(
                        "choice domain ({size} points) exceeds the {DOMAIN_CAP}-point analysis \
                         cap; divide-by-zero and negative-demand checks were skipped"
                    ),
                )
                .in_option(&opt.name)
                .with_label(opt.name_span, ""),
            );
            continue;
        };
        let declared: Vec<&str> = opt.variables.iter().map(|v| v.name.as_str()).collect();
        let ctx = ExprCtx { opt_name: &opt.name, declared: &declared, points: &points };

        for site in expr_sites(opt) {
            match site.value {
                TagValue::Expr(e) => {
                    check_expr(e, site.span, &site.what, site.kind.is_demand(), &ctx, &mut out)
                }
                TagValue::Exact(v)
                    if site.kind.is_demand() && v.as_f64().map(|x| x < 0.0).unwrap_or(false) =>
                {
                    out.push(
                        Diagnostic::new(
                            NEG_DEMAND,
                            format!("{} is the negative amount {}", site.what, v.canonical()),
                        )
                        .in_option(&opt.name)
                        .with_label(site.span, "resource demands must be ≥ 0"),
                    );
                }
                _ => {}
            }
        }
        if let Some(PerfSpec::Expr(e)) = &opt.performance {
            check_expr(
                e,
                opt.performance_span,
                "the `performance` expression",
                false,
                &ctx,
                &mut out,
            );
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use harmony_rsl::schema::parse_bundle_script;

    fn run(src: &str) -> Vec<Diagnostic> {
        check(&parse_bundle_script(src).unwrap())
    }

    #[test]
    fn zero_choice_reaches_division_by_zero() {
        let src = "harmonyBundle a b { {o {variable w {0 1 2}} \
                   {node n {replicate w} {seconds {1200 / w}}}} }";
        let diags = run(src);
        let d = diags.iter().find(|d| d.code == DIV_BY_ZERO).unwrap();
        assert_eq!(d.primary_span().unwrap().slice(src), Some("{1200 / w}"));
        assert!(d.notes[0].contains("w = 0"), "{:?}", d.notes);
    }

    #[test]
    fn positive_domain_proves_freedom() {
        let diags = run("harmonyBundle a b { {o {variable w {1 2 4 8}} \
             {node n {replicate w} {seconds {1200 / w}}}} }");
        assert!(diags.is_empty(), "{diags:?}");
    }

    #[test]
    fn negative_demand_with_counterexample() {
        let src = "harmonyBundle a b { {o {variable w {1 8}} \
                   {node n {seconds {10 - 2 * w}}}} }";
        let diags = run(src);
        let d = diags.iter().find(|d| d.code == NEG_DEMAND).unwrap();
        assert!(d.notes[0].contains("w = 8"), "{:?}", d.notes);
    }

    #[test]
    fn constant_negative_literal_demand() {
        let diags = run("harmonyBundle a b { {o {node n {seconds -4}}} }");
        assert!(diags.iter().any(|d| d.code == NEG_DEMAND));
    }

    #[test]
    fn allocation_dependent_divisors_are_skipped() {
        // client.memory is an allocation value: undecidable from the bundle.
        let diags = run("harmonyBundle a b { {o {node client {seconds 1}} \
             {communication {100 / client.memory}}} }");
        assert!(diags.is_empty(), "{diags:?}");
    }

    #[test]
    fn nested_divisor_inside_larger_expression() {
        // The whole expression depends on an allocation value, but the
        // divisor alone is decidable.
        let src = "harmonyBundle a b { {o {variable w {0 4}} \
                   {node client {seconds 1}} \
                   {communication {client.memory / (w * 2)}}} }";
        let diags = run(src);
        assert!(diags.iter().any(|d| d.code == DIV_BY_ZERO), "{diags:?}");
    }

    #[test]
    fn oversized_domain_reports_a_note() {
        // 9^5 = 59049 > 4096.
        let choices = "{1 2 3 4 5 6 7 8 9}";
        let src = format!(
            "harmonyBundle a b {{ {{o \
             {{variable v1 {choices}}} {{variable v2 {choices}}} {{variable v3 {choices}}} \
             {{variable v4 {choices}}} {{variable v5 {choices}}} \
             {{node n {{replicate v1}} {{seconds {{100 / (v2 - v3)}}}}}} \
             {{communication {{v4 + v5}}}}}} }}"
        );
        let diags = run(&src);
        assert_eq!(diags.len(), 1);
        assert_eq!(diags[0].code, DOMAIN_TOO_LARGE);
    }

    #[test]
    fn fig2b_is_provably_clean() {
        let diags = run(harmony_rsl::listings::FIG2B_BAG);
        assert!(diags.is_empty(), "{diags:?}");
    }
}
