//! Pass 5 — cross-option dominance and redundancy.
//!
//! The controller picks among a bundle's options by predicted performance
//! per resource consumed (paper §4.3). Two static findings fall out:
//!
//! * an option whose requirements are byte-identical to an earlier option
//!   can never add anything (HA0141);
//! * an option that never predicts better performance than a sibling while
//!   demanding at least as much of every comparable resource is dominated —
//!   the controller will never profitably pick it (HA0140).
//!
//! Dominance is only decided for options whose demands and performance are
//! fully constant (no variables, no allocation-dependent expressions), so
//! every reported domination is real under the declared models.

use harmony_rsl::expr::MapEnv;
use harmony_rsl::schema::{BundleSpec, CountSpec, OptionSpec, PerfSpec};

use crate::diag::{Diagnostic, DOMINATED_OPTION, DUPLICATE_REQS};

/// The option's requirements rendered without its name, for redundancy
/// comparison.
fn requirement_signature(opt: &OptionSpec) -> String {
    let canon = opt.canonical();
    // canonical() is `{name part part ...}`; strip the braces and the name.
    canon[1..canon.len() - 1].strip_prefix(&opt.name).unwrap_or(&canon).trim().to_string()
}

/// Constant aggregate profile of an option: best predicted time plus total
/// demands. `None` fields are not constant-evaluable.
#[derive(Debug, Clone, PartialEq)]
struct Profile {
    best_time: f64,
    seconds: Option<f64>,
    memory: Option<f64>,
    communication: Option<f64>,
}

fn constant_amount(value: &harmony_rsl::schema::TagValue) -> Option<f64> {
    if !value.free_names().is_empty() {
        return None;
    }
    value.amount(&MapEnv::new()).ok()
}

fn profile(opt: &OptionSpec) -> Option<Profile> {
    if !opt.variables.is_empty() {
        return None;
    }
    let best_time = match &opt.performance {
        Some(PerfSpec::Points(points)) if !points.is_empty() => {
            points.iter().map(|(_, t)| *t).fold(f64::INFINITY, f64::min)
        }
        Some(PerfSpec::Expr(e)) if e.is_constant() => {
            harmony_rsl::expr::eval(e, &MapEnv::new()).ok()?.as_f64().ok()?
        }
        _ => return None,
    };

    let mut seconds = Some(0.0);
    let mut memory = Some(0.0);
    for node in &opt.nodes {
        let count = match &node.count {
            CountSpec::One => 1.0,
            CountSpec::Replicate(n) => f64::from(*n),
            CountSpec::Param(_) => return None,
        };
        for (total, tag) in [(&mut seconds, "seconds"), (&mut memory, "memory")] {
            match node.tag(tag) {
                None => *total = None,
                Some(v) => {
                    if let (Some(t), Some(x)) = (total.as_mut(), constant_amount(v)) {
                        *t += count * x;
                    } else {
                        *total = None;
                    }
                }
            }
        }
    }
    let communication = opt.communication.as_ref().and_then(constant_amount);
    Some(Profile { best_time, seconds, memory, communication })
}

/// `a` dominates `b` when `a` is at least as fast and demands no more on
/// every dimension both profiles define, with at least one strict edge.
fn dominates(a: &Profile, b: &Profile) -> bool {
    if a.best_time > b.best_time {
        return false;
    }
    let mut comparable = 0usize;
    let mut strict = a.best_time < b.best_time;
    for (da, db) in
        [(a.seconds, b.seconds), (a.memory, b.memory), (a.communication, b.communication)]
    {
        if let (Some(da), Some(db)) = (da, db) {
            comparable += 1;
            if da > db {
                return false;
            }
            strict |= da < db;
        }
    }
    comparable > 0 && strict
}

/// Runs the pass over a bundle.
pub fn check(bundle: &BundleSpec) -> Vec<Diagnostic> {
    let mut out = Vec::new();

    // Redundant duplicates of earlier options.
    for (i, opt) in bundle.options.iter().enumerate() {
        for earlier in &bundle.options[..i] {
            if requirement_signature(earlier) == requirement_signature(opt) {
                out.push(
                    Diagnostic::new(
                        DUPLICATE_REQS,
                        format!(
                            "option `{}` duplicates the requirements of option `{}`",
                            opt.name, earlier.name
                        ),
                    )
                    .in_option(&opt.name)
                    .with_label(opt.name_span, "identical to an earlier option")
                    .with_note("the controller will never have a reason to pick it"),
                );
                break;
            }
        }
    }

    // Dominance among constant-profile options.
    let profiles: Vec<Option<Profile>> = bundle.options.iter().map(profile).collect();
    for (j, opt) in bundle.options.iter().enumerate() {
        let Some(pb) = &profiles[j] else { continue };
        // Skip exact duplicates; HA0141 already covers them.
        if out.iter().any(|d| d.code == DUPLICATE_REQS && d.option == opt.name) {
            continue;
        }
        for (i, other) in bundle.options.iter().enumerate() {
            if i == j {
                continue;
            }
            let Some(pa) = &profiles[i] else { continue };
            if dominates(pa, pb) {
                out.push(
                    Diagnostic::new(
                        DOMINATED_OPTION,
                        format!(
                            "option `{}` is dominated by option `{}`: it never predicts \
                             better performance and demands at least as many resources",
                            opt.name, other.name
                        ),
                    )
                    .in_option(&opt.name)
                    .with_label(opt.name_span, "this option is never preferable")
                    .with_note(format!(
                        "`{}` predicts {:.6} s at best vs `{}`'s {:.6} s",
                        other.name, pa.best_time, opt.name, pb.best_time
                    )),
                );
                break;
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use harmony_rsl::schema::parse_bundle_script;

    fn run(src: &str) -> Vec<Diagnostic> {
        check(&parse_bundle_script(src).unwrap())
    }

    #[test]
    fn identical_options_are_redundant() {
        let diags = run("harmonyBundle a b { {fast {node n {seconds 1}}} \
             {slow {node n {seconds 1}}} }");
        let d = diags.iter().find(|d| d.code == DUPLICATE_REQS).unwrap();
        assert_eq!(d.option, "slow");
    }

    #[test]
    fn strictly_worse_option_is_dominated() {
        // `slow` needs more seconds and more memory and predicts worse time.
        let diags = run("harmonyBundle a b { \
             {fast {node n {seconds 10} {memory 16}} {performance {1 100}}} \
             {slow {node n {seconds 20} {memory 32}} {performance {1 400}}} }");
        let d = diags.iter().find(|d| d.code == DOMINATED_OPTION).unwrap();
        assert_eq!(d.option, "slow");
        assert!(d.message.contains("`fast`"), "{}", d.message);
    }

    #[test]
    fn tradeoffs_are_not_dominated() {
        // `big` is slower but cheaper on memory: a genuine alternative.
        let diags = run("harmonyBundle a b { \
             {fast {node n {seconds 10} {memory 32}} {performance {1 100}}} \
             {big {node n {seconds 10} {memory 16}} {performance {1 400}}} }");
        assert!(diags.is_empty(), "{diags:?}");
    }

    #[test]
    fn variable_options_are_not_judged() {
        let diags = run("harmonyBundle a b { \
             {fixed {node n {seconds 10}} {performance {1 100}}} \
             {tuned {variable w {1 2}} {node n {replicate w} {seconds 10}} \
              {performance {1 500}}} }");
        assert!(!diags.iter().any(|d| d.code == DOMINATED_OPTION), "{diags:?}");
    }

    #[test]
    fn paper_listings_have_no_dominance_findings() {
        for src in [
            harmony_rsl::listings::FIG2A_SIMPLE,
            harmony_rsl::listings::FIG2B_BAG,
            harmony_rsl::listings::FIG3_DBCLIENT,
        ] {
            let diags = run(src);
            assert!(diags.is_empty(), "{diags:?}");
        }
    }
}
