//! The facts engine: machine-checkable properties proven from a bundle's
//! declaration alone.
//!
//! Where the passes in [`crate::passes`] report *problems*, this module
//! computes *facts* the controller can act on: interval bounds for every
//! expression site under the declared choice domains
//! ([`intervals`]), per-variable monotonicity of the predicted time
//! ([`monotonicity`]), provably dominated assignments with witnesses
//! ([`dominance`]), and the cross-bundle interference partition
//! ([`partition`]). `harmony-core` consumes these to prune the joint
//! optimizer; `harmonyctl facts` renders them for operators.
//!
//! Facts that prove a *problem* (a performance expression that is negative
//! everywhere, an assignment that can never win) surface as `HA02xx`
//! diagnostics via [`check_bundle`].

pub mod dominance;
pub mod intervals;
pub mod monotonicity;
pub mod partition;

use std::collections::BTreeMap;

use harmony_rsl::schema::{BundleSpec, CountSpec, OptionSpec, PerfSpec, Statement};
use serde::{Deserialize, Serialize};

use crate::diag::{Diagnostic, DOMINATED_ASSIGNMENT, NEG_PERF_EXPR, PROVEN_NEG_DEMAND};
use crate::passes::reach;
use crate::sites::expr_sites;
pub use dominance::DominanceProof;
pub use intervals::{aeval, tag_bound, Av, DomainEnv, Interval};
pub use monotonicity::Mono;
pub use partition::InterferenceSummary;

/// JSON-safe interval: `null` endpoints are unbounded sides.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Bound {
    /// Lower bound; `None` is unbounded below.
    pub lo: Option<f64>,
    /// Upper bound; `None` is unbounded above.
    pub hi: Option<f64>,
    /// True when every value is integer-typed.
    pub integral: bool,
}

impl From<Interval> for Bound {
    fn from(iv: Interval) -> Bound {
        Bound {
            lo: iv.lo.is_finite().then_some(iv.lo),
            hi: iv.hi.is_finite().then_some(iv.hi),
            integral: iv.integral,
        }
    }
}

/// Interval claim for one expression site of an option.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SiteFact {
    /// Human-readable site description (`` `seconds` tag of node `worker` ``).
    pub what: String,
    /// The proven bound, when the abstract interpreter can claim one.
    pub bound: Option<Bound>,
}

/// A property proven true for the entire choice domain.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ProvenFact {
    /// Stable kind: `negative-demand` or `negative-performance`.
    pub kind: String,
    /// What the fact is about.
    pub what: String,
    /// The proven bound.
    pub bound: Bound,
}

/// Everything the facts engine can prove about one option.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct OptionFacts {
    /// Option name.
    pub option: String,
    /// Size of the choice-domain product, `None` beyond the analysis cap.
    pub domain_points: Option<usize>,
    /// Hull of each declared variable's choices.
    pub variables: BTreeMap<String, Bound>,
    /// Interval claims per expression site, in definition order.
    pub sites: Vec<SiteFact>,
    /// Bound on the declared performance model's prediction over the whole
    /// domain (`None` when no model is declared or nothing can be claimed).
    pub perf_bound: Option<Bound>,
    /// Direction of the predicted time in each declared variable.
    pub perf_monotonicity: BTreeMap<String, String>,
    /// Provably dominated assignments, with witnesses.
    pub dominated: Vec<DominanceProof>,
    /// Domain-wide proofs of broken properties.
    pub proven: Vec<ProvenFact>,
}

/// Facts for one bundle.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BundleFacts {
    /// Namespace path (`app.instance.bundle` or `app.bundle`).
    pub bundle: String,
    /// Hostnames the bundle is pinned to; `None` when any machine is
    /// reachable.
    pub footprint: Option<Vec<String>>,
    /// Per-option facts, in declaration order.
    pub options: Vec<OptionFacts>,
}

/// Facts for a whole script: per-bundle facts plus the interference
/// partition over all bundles it defines.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ScriptFacts {
    /// Per-bundle facts, in definition order.
    pub bundles: Vec<BundleFacts>,
    /// Which bundles must be optimized jointly.
    pub interference: InterferenceSummary,
}

/// Total replica count of `opt` as an interval over the domain, `None`
/// when a count depends on an undeclared name.
fn count_interval(opt: &OptionSpec, env: &DomainEnv) -> Option<(f64, f64)> {
    let mut lo = 0.0;
    let mut hi = 0.0;
    for node in &opt.nodes {
        match &node.count {
            CountSpec::One => {
                lo += 1.0;
                hi += 1.0;
            }
            CountSpec::Replicate(n) => {
                lo += f64::from(*n);
                hi += f64::from(*n);
            }
            CountSpec::Param(p) => {
                let iv = env.get(p)?;
                lo += iv.lo;
                hi += iv.hi;
            }
        }
    }
    Some((lo, hi))
}

/// Bound on the performance model's prediction over the domain.
fn perf_bound(opt: &OptionSpec, env: &DomainEnv) -> Option<Interval> {
    match opt.performance.as_ref()? {
        PerfSpec::Expr(e) => aeval(e, env).interval(),
        PerfSpec::Points(points) => {
            if points.is_empty() {
                return None;
            }
            let (xlo, xhi) = count_interval(opt, env)?;
            // Piecewise-linear curves attain their extremes at breakpoints
            // or at the ends of the evaluated range.
            let mut xs: Vec<f64> = vec![xlo, xhi];
            xs.extend(points.iter().map(|(x, _)| x.clamp(xlo, xhi)));
            let mut lo = f64::INFINITY;
            let mut hi = f64::NEG_INFINITY;
            for x in xs {
                let y = harmony_rsl::schema::piecewise_linear(points, x);
                lo = lo.min(y);
                hi = hi.max(y);
            }
            Some(Interval { lo, hi, integral: false })
        }
    }
}

/// Computes every fact about one option.
pub fn option_facts(opt: &OptionSpec) -> OptionFacts {
    let env = DomainEnv::from_option(opt);
    let domain_points = reach::assignments(opt).map(|p| p.len());
    let variables = opt
        .variables
        .iter()
        .filter_map(|v| env.get(&v.name).map(|iv| (v.name.clone(), Bound::from(iv))))
        .collect();
    let sites: Vec<SiteFact> = expr_sites(opt)
        .iter()
        .map(|site| SiteFact {
            what: site.what.clone(),
            bound: tag_bound(site.value, &env).interval().map(Bound::from),
        })
        .collect();

    let mut proven = Vec::new();
    for (site, fact) in expr_sites(opt).iter().zip(&sites) {
        if site.kind.is_demand() {
            if let Some(b) = fact.bound {
                if b.hi.map(|h| h < 0.0).unwrap_or(false) {
                    proven.push(ProvenFact {
                        kind: "negative-demand".into(),
                        what: fact.what.clone(),
                        bound: b,
                    });
                }
            }
        }
    }
    let pb = perf_bound(opt, &env);
    if let Some(iv) = pb {
        if iv.hi < 0.0 {
            proven.push(ProvenFact {
                kind: "negative-performance".into(),
                what: "the `performance` model".into(),
                bound: iv.into(),
            });
        }
    }

    let perf_monotonicity = opt
        .variables
        .iter()
        .filter_map(|v| {
            monotonicity::perf_mono(opt, &v.name, &env)
                .map(|m| (v.name.clone(), m.name().to_string()))
        })
        .collect();

    OptionFacts {
        option: opt.name.clone(),
        domain_points,
        variables,
        sites,
        perf_bound: pb.map(Bound::from),
        perf_monotonicity,
        dominated: dominance::dominated_assignments(opt),
        proven,
    }
}

fn path_of(b: &BundleSpec) -> String {
    match b.instance {
        Some(i) => format!("{}.{}.{}", b.app, i, b.name),
        None => format!("{}.{}", b.app, b.name),
    }
}

/// Computes every fact about one bundle.
pub fn bundle_facts(bundle: &BundleSpec) -> BundleFacts {
    BundleFacts {
        bundle: path_of(bundle),
        footprint: partition::bundle_footprint(bundle).map(|s| s.into_iter().collect()),
        options: bundle.options.iter().map(option_facts).collect(),
    }
}

/// Parses `src` and computes facts for every bundle plus the interference
/// partition.
///
/// # Errors
///
/// Only when the script fails to parse.
pub fn script_facts(src: &str) -> harmony_rsl::Result<ScriptFacts> {
    let statements = harmony_rsl::schema::parse_statements(src)?;
    let bundles: Vec<&BundleSpec> = statements
        .iter()
        .filter_map(|s| match s {
            Statement::Bundle(b) => Some(b),
            _ => None,
        })
        .collect();
    Ok(ScriptFacts {
        bundles: bundles.iter().map(|b| bundle_facts(b)).collect(),
        interference: partition::interference(&bundles),
    })
}

/// Serializes facts as JSON.
pub fn facts_to_json(facts: &ScriptFacts) -> String {
    serde_json::to_string(facts).unwrap_or_else(|_| "{}".to_string())
}

/// Parses a [`facts_to_json`] payload — the receiving side of
/// `harmonyctl facts` against a daemon.
pub fn facts_from_json(json: &str) -> Option<ScriptFacts> {
    serde_json::from_str(json).ok()
}

fn render_bound(b: &Bound) -> String {
    let end = |v: Option<f64>| v.map(|x| format!("{x}")).unwrap_or_else(|| "∞".to_string());
    format!("[{}, {}]", end(b.lo), end(b.hi))
}

/// Renders facts for operators — the human side of `harmonyctl facts`.
pub fn render_facts(facts: &ScriptFacts) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    for b in &facts.bundles {
        match &b.footprint {
            Some(hosts) => {
                let _ = writeln!(out, "bundle {} (pinned to {})", b.bundle, hosts.join(", "));
            }
            None => {
                let _ = writeln!(out, "bundle {} (placeable anywhere)", b.bundle);
            }
        }
        for opt in &b.options {
            let points = opt
                .domain_points
                .map(|n| format!("{n} domain point(s)"))
                .unwrap_or_else(|| "domain beyond analysis cap".to_string());
            let _ = writeln!(out, "  option {}: {points}", opt.option);
            for (name, bound) in &opt.variables {
                let mono = opt
                    .perf_monotonicity
                    .get(name)
                    .map(|m| format!(", predicted time {m} in it"))
                    .unwrap_or_default();
                let _ = writeln!(out, "    {name} ∈ {}{mono}", render_bound(bound));
            }
            for site in &opt.sites {
                if let Some(bound) = &site.bound {
                    let _ = writeln!(out, "    {} ∈ {}", site.what, render_bound(bound));
                }
            }
            if let Some(pb) = &opt.perf_bound {
                let _ = writeln!(out, "    predicted time ∈ {}", render_bound(pb));
            }
            for proof in &opt.dominated {
                let _ = writeln!(
                    out,
                    "    dominated: {} (beaten by {})",
                    render_assignment(&proof.loser),
                    render_assignment(&proof.winner)
                );
            }
            for fact in &opt.proven {
                let _ = writeln!(out, "    proven {}: {} ∈ {}", fact.kind, fact.what, {
                    render_bound(&fact.bound)
                });
            }
        }
    }
    let comps = &facts.interference.components;
    let _ = writeln!(out, "interference: {} independent component(s)", comps.len());
    for comp in comps {
        let _ = writeln!(out, "  {}", comp.join(", "));
    }
    if !facts.interference.unpinned.is_empty() {
        let _ = writeln!(
            out,
            "  unpinned (interfere with everything): {}",
            facts.interference.unpinned.join(", ")
        );
    }
    out
}

/// Maximum [`DOMINATED_ASSIGNMENT`] notes per option; the full list stays
/// available through [`option_facts`].
const MAX_DOMINANCE_NOTES: usize = 3;

fn render_assignment(a: &[(String, i64)]) -> String {
    if a.is_empty() {
        return "(no variables)".to_string();
    }
    a.iter().map(|(n, v)| format!("{n} = {v}")).collect::<Vec<_>>().join(", ")
}

/// Emits `HA02xx` diagnostics for facts that prove a problem.
pub fn check_bundle(bundle: &BundleSpec) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    for opt in &bundle.options {
        let env = DomainEnv::from_option(opt);
        let large_domain = reach::assignments(opt).is_none();

        // HA0201: the performance expression is negative for every point
        // of the domain (a points table is covered by HA0031).
        if let Some(PerfSpec::Expr(e)) = &opt.performance {
            if let Some(iv) = aeval(e, &env).interval() {
                if iv.hi < 0.0 {
                    out.push(
                        Diagnostic::new(
                            NEG_PERF_EXPR,
                            "the `performance` expression is provably negative for every \
                             variable assignment",
                        )
                        .in_option(&opt.name)
                        .with_label(opt.performance_span, format!("always ≤ {}", iv.hi))
                        .with_note(
                            "a negative predicted time makes every candidate infeasible to \
                             the optimizer",
                        ),
                    );
                }
            }
        }

        // HA0203: a demand is provably negative, but the domain is too
        // large for the exact reachability pass (HA0021 covers the rest).
        if large_domain {
            for site in expr_sites(opt) {
                if !site.kind.is_demand() {
                    continue;
                }
                if let Some(iv) = tag_bound(site.value, &env).interval() {
                    if iv.hi < 0.0 {
                        out.push(
                            Diagnostic::new(
                                PROVEN_NEG_DEMAND,
                                format!("{} is provably negative (always ≤ {})", site.what, iv.hi),
                            )
                            .in_option(&opt.name)
                            .with_label(site.span, "this amount can never be non-negative")
                            .with_note(
                                "proven by interval analysis; the domain exceeds the \
                                 exhaustive-check cap",
                            ),
                        );
                    }
                }
            }
        }

        // HA0202: strictly dominated assignments (ties are pruned silently
        // by the optimizer but are not worth an operator's attention).
        let mut noted = 0usize;
        for proof in dominance::dominated_assignments(opt) {
            if !proof.strict || noted >= MAX_DOMINANCE_NOTES {
                continue;
            }
            noted += 1;
            let mut d = Diagnostic::new(
                DOMINATED_ASSIGNMENT,
                format!(
                    "assignment ({}) can never win: ({}) has identical resource demands \
                     and a strictly better predicted time",
                    render_assignment(&proof.loser),
                    render_assignment(&proof.winner),
                ),
            )
            .in_option(&opt.name)
            .with_label(opt.name_span, "");
            if let (Some(w), Some(l)) = (proof.winner_time, proof.loser_time) {
                d = d.with_note(format!("predicted times: winner {w}, loser {l}"));
            }
            out.push(d);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use harmony_rsl::schema::parse_bundle_script;

    #[test]
    fn fig2b_facts_are_rich_and_clean() {
        let bundle = parse_bundle_script(harmony_rsl::listings::FIG2B_BAG).unwrap();
        let facts = bundle_facts(&bundle);
        assert_eq!(facts.options.len(), 1);
        let of = &facts.options[0];
        assert_eq!(of.domain_points, Some(4));
        let w = &of.variables["workerNodes"];
        assert_eq!((w.lo, w.hi, w.integral), (Some(1.0), Some(8.0), true));
        // seconds {1200 / workerNodes} ∈ [150, 1200].
        let sec = of.sites.iter().find(|s| s.what.contains("seconds")).unwrap();
        let b = sec.bound.unwrap();
        assert_eq!(b.lo, Some(150.0));
        assert_eq!(b.hi, Some(1200.0));
        // Perf table: time falls with workerNodes, bounded by the knots.
        assert_eq!(of.perf_monotonicity["workerNodes"], "decreasing");
        let pb = of.perf_bound.unwrap();
        assert_eq!(pb.lo, Some(230.0));
        assert_eq!(pb.hi, Some(1200.0));
        assert!(of.dominated.is_empty());
        assert!(of.proven.is_empty());
        // No HA02xx diagnostics on a paper listing.
        assert!(check_bundle(&bundle).is_empty());
    }

    #[test]
    fn negative_perf_expr_is_ha0201() {
        let bundle = parse_bundle_script(
            "harmonyBundle a b { {o {variable w {1 2}} \
             {node n {replicate w} {seconds 1}} \
             {performance {0 - 10 * w}}} }",
        )
        .unwrap();
        let diags = check_bundle(&bundle);
        assert_eq!(diags.len(), 1);
        assert_eq!(diags[0].code, NEG_PERF_EXPR);
    }

    #[test]
    fn dominated_assignment_is_ha0202_capped() {
        let bundle = parse_bundle_script(
            "harmonyBundle a b { {o {variable w {1 2 3 4 5 6}} \
             {node n {seconds 100}} \
             {performance {100 * w}}} }",
        )
        .unwrap();
        let diags = check_bundle(&bundle);
        let dominated: Vec<_> = diags.iter().filter(|d| d.code == DOMINATED_ASSIGNMENT).collect();
        assert_eq!(dominated.len(), MAX_DOMINANCE_NOTES);
        assert!(dominated[0].message.contains("w = 1"));
    }

    #[test]
    fn large_domain_negative_demand_is_ha0203() {
        // 9^5 points > 4096, so reach skips; intervals still prove the
        // seconds tag negative.
        let choices = "{1 2 3 4 5 6 7 8 9}";
        let src = format!(
            "harmonyBundle a b {{ {{o \
             {{variable v1 {choices}}} {{variable v2 {choices}}} {{variable v3 {choices}}} \
             {{variable v4 {choices}}} {{variable v5 {choices}}} \
             {{node n {{replicate v1}} {{seconds {{0 - v2 - v3 - v4 - v5}}}}}}}} }}"
        );
        let bundle = parse_bundle_script(&src).unwrap();
        let diags = check_bundle(&bundle);
        assert_eq!(diags.len(), 1);
        assert_eq!(diags[0].code, PROVEN_NEG_DEMAND);
    }

    #[test]
    fn small_domain_negative_demand_stays_with_reach() {
        // Same shape, small domain: HA0021 territory, no HA0203.
        let bundle = parse_bundle_script(
            "harmonyBundle a b { {o {variable w {1 2}} \
             {node n {seconds {0 - w}}}} }",
        )
        .unwrap();
        assert!(check_bundle(&bundle).is_empty());
    }

    #[test]
    fn script_facts_round_trip_through_json() {
        let src = "harmonyBundle a b { {o {variable w {1 2 4}} \
                   {node n {replicate w} {seconds {1200 / w}} {hostname m1}}} }";
        let facts = script_facts(src).unwrap();
        assert_eq!(facts.bundles.len(), 1);
        assert_eq!(facts.bundles[0].footprint, Some(vec!["m1".to_string()]));
        assert_eq!(facts.interference.components.len(), 1);
        let json = facts_to_json(&facts);
        let back = facts_from_json(&json).unwrap();
        assert_eq!(back, facts);
    }

    #[test]
    fn render_facts_reads_like_a_report() {
        let facts = script_facts(harmony_rsl::listings::FIG2B_BAG).unwrap();
        let text = render_facts(&facts);
        assert!(text.contains("placeable anywhere"), "{text}");
        assert!(text.contains("4 domain point(s)"), "{text}");
        assert!(text.contains("workerNodes ∈ [1, 8], predicted time decreasing in it"), "{text}");
        assert!(text.contains("predicted time ∈ [230, 1200]"), "{text}");
        assert!(text.contains("interference: 1 independent component(s)"), "{text}");
    }

    #[test]
    fn unbounded_sides_serialize_as_null() {
        let b = Bound::from(Interval { lo: 0.0, hi: f64::INFINITY, integral: false });
        assert_eq!(b.hi, None);
        assert!(serde_json::to_string(&b).unwrap().contains("\"hi\":null"));
    }
}
