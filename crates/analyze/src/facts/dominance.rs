//! Provably dominated variable assignments.
//!
//! Two assignments of one option are *demand-equivalent* when every
//! resolved requirement — node counts, every tag value, links,
//! `communication`, `friction`, `granularity` — is identical. The matcher
//! is a pure function of the cluster state and the resolved requirements,
//! so demand-equivalent assignments always produce identical allocations;
//! if one additionally has a predicted time no worse than the other's, the
//! other can never win and the optimizer may skip it. A
//! [`DominanceProof`] records the witness pair.
//!
//! Soundness is conservative: any tag that fails to resolve (evaluation
//! error) forfeits every claim for its assignment, and expressions that
//! read allocation values are compared as *residuals* — the canonical
//! expression text plus the bindings of the declared variables it reads —
//! which is equality of behavior, not merely of syntax.

use std::collections::BTreeMap;

use harmony_rsl::expr::{Env, Expr};
use harmony_rsl::schema::{OptionSpec, PerfSpec, TagValue};
use serde::{Deserialize, Serialize};

use crate::passes::reach;

/// One point of an option's choice domain: `(variable, value)` pairs in
/// declaration order.
pub type Assignment = Vec<(String, i64)>;

/// A machine-checkable witness that `loser` can never beat `winner`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DominanceProof {
    /// Option the assignments belong to.
    pub option: String,
    /// The assignment that is always at least as good.
    pub winner: Assignment,
    /// The assignment that can never win.
    pub loser: Assignment,
    /// Winner's predicted time, when the performance model resolves to a
    /// number under the assignment.
    pub winner_time: Option<f64>,
    /// Loser's predicted time, under the same conditions.
    pub loser_time: Option<f64>,
    /// True when the winner's time is strictly better (not merely a tie
    /// broken toward the earlier assignment).
    pub strict: bool,
}

/// How an assignment's predicted time resolves.
enum TimeKey {
    /// A concrete, finite predicted time.
    Time(f64),
    /// The time is a fixed function of the (identical) allocation: equal
    /// residuals mean equal times.
    Residual(String),
    /// Could not be resolved; no claims about this assignment.
    Unavailable,
}

/// Resolves one tag value into a signature component, or `None` when it
/// cannot be resolved soundly.
fn resolve_tag(
    tag: &TagValue,
    env: &harmony_rsl::expr::MapEnv,
    declared: &[&str],
) -> Option<String> {
    match tag {
        TagValue::Any => Some("*".into()),
        TagValue::AtLeast(x) => Some(format!(">={x}")),
        TagValue::AtMost(x) => Some(format!("<={x}")),
        TagValue::Exact(v) => Some(v.canonical()),
        TagValue::Expr(e) => resolve_expr(e, env, declared),
    }
}

/// Resolves an expression to a value (when decidable from variables alone)
/// or to a residual: its text plus the variable bindings it reads.
fn resolve_expr(e: &Expr, env: &harmony_rsl::expr::MapEnv, declared: &[&str]) -> Option<String> {
    let free = e.free_names();
    if free.iter().all(|n| declared.contains(&n.as_str())) {
        match harmony_rsl::expr::eval(e, env) {
            Ok(v) => Some(v.canonical()),
            Err(_) => None,
        }
    } else {
        let mut bindings: Vec<String> = free
            .iter()
            .filter(|n| declared.contains(&n.as_str()))
            .map(|n| {
                env.lookup(n)
                    .map(|v| format!("{n}={}", v.canonical()))
                    .unwrap_or_else(|| format!("{n}=?"))
            })
            .collect();
        bindings.sort();
        Some(format!("{{{e}}}|{}", bindings.join(",")))
    }
}

/// The full resolved demand signature of `opt` under `assignment`, or
/// `None` when any part fails to resolve.
fn signature(opt: &OptionSpec, assignment: &Assignment, declared: &[&str]) -> Option<String> {
    let env = reach::env_of(assignment);
    let mut parts: Vec<String> = Vec::new();
    for node in &opt.nodes {
        let count = node.count.resolve(&env).ok()?;
        let mut piece = format!("node {} x{count}", node.name);
        for (tag, value) in &node.tags {
            piece.push_str(&format!(" {tag}={}", resolve_tag(value, &env, declared)?));
        }
        parts.push(piece);
    }
    for link in &opt.links {
        parts.push(format!(
            "link {}-{} bw={}",
            link.a,
            link.b,
            resolve_tag(&link.bandwidth, &env, declared)?
        ));
    }
    if let Some(c) = &opt.communication {
        parts.push(format!("comm={}", resolve_tag(c, &env, declared)?));
    }
    if let Some(f) = &opt.friction {
        parts.push(format!("friction={}", resolve_tag(f, &env, declared)?));
    }
    if let Some(g) = opt.granularity {
        parts.push(format!("granularity={g}"));
    }
    Some(parts.join("; "))
}

/// The predicted time of `opt` under `assignment`.
fn time_key(opt: &OptionSpec, assignment: &Assignment, declared: &[&str]) -> TimeKey {
    let env = reach::env_of(assignment);
    match &opt.performance {
        None => {
            // Default model: time is a function of the allocation, which is
            // identical for demand-equivalent assignments.
            TimeKey::Residual("default-model".into())
        }
        Some(PerfSpec::Points(points)) => {
            let mut x = 0u64;
            for node in &opt.nodes {
                match node.count.resolve(&env) {
                    Ok(n) => x += u64::from(n),
                    Err(_) => return TimeKey::Unavailable,
                }
            }
            if points.is_empty() {
                return TimeKey::Unavailable;
            }
            let t = harmony_rsl::schema::piecewise_linear(points, x as f64);
            if t.is_finite() {
                TimeKey::Time(t)
            } else {
                TimeKey::Unavailable
            }
        }
        Some(PerfSpec::Expr(e)) => {
            let free = e.free_names();
            if free.iter().all(|n| declared.contains(&n.as_str())) {
                match harmony_rsl::expr::eval(e, &env).and_then(|v| v.as_f64()) {
                    Ok(t) if t.is_finite() => TimeKey::Time(t),
                    _ => TimeKey::Unavailable,
                }
            } else {
                match resolve_expr(e, &env, declared) {
                    Some(r) => TimeKey::Residual(r),
                    None => TimeKey::Unavailable,
                }
            }
        }
    }
}

/// Finds every provably dominated assignment of `opt`.
///
/// Empty when the choice domain exceeds the analysis cap or the option has
/// at most one assignment.
pub fn dominated_assignments(opt: &OptionSpec) -> Vec<DominanceProof> {
    let Some(points) = reach::assignments(opt) else {
        return Vec::new();
    };
    if points.len() < 2 {
        return Vec::new();
    }
    let declared: Vec<&str> = opt.variables.iter().map(|v| v.name.as_str()).collect();

    // Group assignments by demand signature (preserving enumeration order,
    // which is the optimizer's tie-break order).
    let mut groups: BTreeMap<String, Vec<usize>> = BTreeMap::new();
    for (i, point) in points.iter().enumerate() {
        if let Some(sig) = signature(opt, point, &declared) {
            groups.entry(sig).or_default().push(i);
        }
    }

    let mut out = Vec::new();
    for members in groups.values() {
        if members.len() < 2 {
            continue;
        }
        let keys: Vec<TimeKey> =
            members.iter().map(|&i| time_key(opt, &points[i], &declared)).collect();

        // Concrete times: earliest-best wins, strictly-worse losers and
        // equal-time later duplicates are both dominated.
        let mut best: Option<(usize, f64)> = None;
        for (k, key) in keys.iter().enumerate() {
            if let TimeKey::Time(t) = key {
                let better = match best {
                    None => true,
                    Some((_, bt)) => *t < bt,
                };
                if better {
                    best = Some((k, *t));
                }
            }
        }
        if let Some((bk, bt)) = best {
            for (k, key) in keys.iter().enumerate() {
                if k == bk {
                    continue;
                }
                if let TimeKey::Time(t) = key {
                    // Earlier equal-time assignments win their own ties.
                    if *t == bt && k < bk {
                        continue;
                    }
                    out.push(DominanceProof {
                        option: opt.name.clone(),
                        winner: points[members[bk]].clone(),
                        loser: points[members[k]].clone(),
                        winner_time: Some(bt),
                        loser_time: Some(*t),
                        strict: *t > bt,
                    });
                }
            }
        }

        // Residual times: identical residuals mean identical outcomes, so
        // the earliest assignment of each residual class dominates the rest.
        let mut first_residual: BTreeMap<&str, usize> = BTreeMap::new();
        for (k, key) in keys.iter().enumerate() {
            if let TimeKey::Residual(r) = key {
                match first_residual.get(r.as_str()) {
                    None => {
                        first_residual.insert(r, k);
                    }
                    Some(&w) => out.push(DominanceProof {
                        option: opt.name.clone(),
                        winner: points[members[w]].clone(),
                        loser: points[members[k]].clone(),
                        winner_time: None,
                        loser_time: None,
                        strict: false,
                    }),
                }
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use harmony_rsl::schema::parse_bundle_script;

    fn proofs(src: &str) -> Vec<DominanceProof> {
        let bundle = parse_bundle_script(src).unwrap();
        dominated_assignments(&bundle.options[0])
    }

    #[test]
    fn unused_variable_creates_strict_domination() {
        // `w` does not change any demand, but the perf expression rises
        // with it: w = 1 strictly dominates w = 2 and w = 4.
        let found = proofs(
            "harmonyBundle a b { {o {variable w {1 2 4}} \
             {node n {seconds 100}} \
             {performance {100 * w}}} }",
        );
        assert_eq!(found.len(), 2);
        for p in &found {
            assert!(p.strict);
            assert_eq!(p.winner, vec![("w".to_string(), 1)]);
            assert_eq!(p.winner_time, Some(100.0));
        }
        assert!(found.iter().any(|p| p.loser_time == Some(200.0)));
        assert!(found.iter().any(|p| p.loser_time == Some(400.0)));
    }

    #[test]
    fn differing_demands_are_never_compared() {
        // seconds resolves differently per w: no demand-equivalent pairs.
        let found = proofs(
            "harmonyBundle a b { {o {variable w {1 2 4}} \
             {node n {replicate w} {seconds {1200 / w}}} \
             {performance {1200 / w}}} }",
        );
        assert!(found.is_empty(), "{found:?}");
    }

    #[test]
    fn fig2b_has_no_dominated_assignments() {
        let bundle = parse_bundle_script(harmony_rsl::listings::FIG2B_BAG).unwrap();
        assert!(dominated_assignments(&bundle.options[0]).is_empty());
    }

    #[test]
    fn equal_times_tie_break_to_earlier_assignment() {
        let found = proofs(
            "harmonyBundle a b { {o {variable w {1 2}} \
             {node n {seconds 100}} \
             {performance {500}}} }",
        );
        assert_eq!(found.len(), 1);
        assert_eq!(found[0].winner, vec![("w".to_string(), 1)]);
        assert_eq!(found[0].loser, vec![("w".to_string(), 2)]);
        assert!(!found[0].strict);
    }

    #[test]
    fn default_model_duplicates_are_residual_ties() {
        let found = proofs(
            "harmonyBundle a b { {o {variable w {1 2}} \
             {node n {seconds 100}}} }",
        );
        assert_eq!(found.len(), 1);
        assert!(!found[0].strict);
        assert_eq!(found[0].winner_time, None);
    }

    #[test]
    fn allocation_dependent_demands_resolve_as_residuals() {
        // The memory tag reads an allocation value scaled by w: the two
        // assignments differ behaviorally, so nothing is dominated...
        let found = proofs(
            "harmonyBundle a b { {o {variable w {1 2}} \
             {node n {seconds 100} {memory {n.memory * w}}} \
             {performance {100}}} }",
        );
        assert!(found.is_empty(), "{found:?}");
        // ...but when the residual does not read w, the times decide.
        let found = proofs(
            "harmonyBundle a b { {o {variable w {1 2}} \
             {node n {seconds 100} {memory {n.memory * 2}}} \
             {performance {100 * w}}} }",
        );
        assert_eq!(found.len(), 1);
        assert!(found[0].strict);
    }
}
