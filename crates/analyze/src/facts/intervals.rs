//! Interval abstract interpretation over RSL expressions.
//!
//! [`aeval`] soundly over-approximates the concrete evaluator in
//! `harmony_rsl::expr::eval`: for every environment consistent with the
//! abstract one, every *successful, finite, numeric* concrete result lies
//! inside the returned interval. Evaluation errors (divide by zero,
//! unbound names, type errors) and non-finite results carry no claim —
//! downstream consumers treat those as infeasible anyway, so the
//! weaker contract is exactly what pruning needs.
//!
//! The interpreter mirrors the concrete semantics' sharp edges:
//!
//! * integer division truncates toward zero, so an uncertain-type
//!   quotient is widened to `[floor(lo), ceil(hi)]`, which contains both
//!   the real and the truncated result;
//! * a divisor interval containing zero cannot rule the error out, but
//!   when the divisor is integral the surviving divisors satisfy
//!   `|b| >= 1`, bounding the quotient by `|a|`;
//! * bounds whose magnitude exceeds 2^53 are widened to infinity, which
//!   also covers `i64` wrap-around (wrapping can only occur past that
//!   guard);
//! * a claimed interval additionally promises the runtime value is never
//!   NaN (so interval-decided comparisons stay sound); any operator whose
//!   bounds admit a NaN-producing operand combination (`inf - inf`,
//!   `0 * inf`, `inf % b`, `sqrt` of a possibly-negative input) degrades
//!   to "no claim" instead.

use std::collections::BTreeMap;

use harmony_rsl::expr::{BinOp, Expr, UnOp};
use harmony_rsl::schema::{OptionSpec, TagValue};

/// Largest bound magnitude the interpreter trusts: beyond 2^53 the f64
/// bookkeeping is no longer exact for integers (and `i64` wrap-around
/// becomes reachable), so bounds are widened to infinity.
const SAFE: f64 = 9.0e15;

/// A closed interval of numeric values, possibly unbounded on either
/// side. `integral` additionally promises every concrete value is an RSL
/// `Int` (exact integer arithmetic, truncating division).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Interval {
    /// Lower bound (may be `-inf`).
    pub lo: f64,
    /// Upper bound (may be `+inf`).
    pub hi: f64,
    /// True when every value in the interval is an integer-typed value.
    pub integral: bool,
}

impl Interval {
    /// The unbounded interval.
    pub const TOP: Interval =
        Interval { lo: f64::NEG_INFINITY, hi: f64::INFINITY, integral: false };

    /// A single integer point.
    pub fn int(v: i64) -> Interval {
        Interval { lo: v as f64, hi: v as f64, integral: true }
    }

    /// A single float point.
    pub fn float(v: f64) -> Interval {
        Interval { lo: v, hi: v, integral: false }
    }

    /// An integral range `[lo, hi]`.
    pub fn int_range(lo: i64, hi: i64) -> Interval {
        Interval { lo: lo as f64, hi: hi as f64, integral: true }
    }

    /// True when `v` lies inside the interval.
    pub fn contains(&self, v: f64) -> bool {
        self.lo <= v && v <= self.hi
    }

    /// Hull of two intervals.
    pub fn join(&self, other: &Interval) -> Interval {
        guard(Interval {
            lo: self.lo.min(other.lo),
            hi: self.hi.max(other.hi),
            integral: self.integral && other.integral,
        })
    }

    /// True when the interval excludes zero.
    pub fn excludes_zero(&self) -> bool {
        self.lo > 0.0 || self.hi < 0.0
    }

    /// Largest absolute value in the interval.
    fn mag(&self) -> f64 {
        self.lo.abs().max(self.hi.abs())
    }
}

/// Widens untrustworthy bounds (NaN, or magnitude past [`SAFE`]) to
/// infinity. Every interval the interpreter returns passes through here.
fn guard(mut iv: Interval) -> Interval {
    if iv.lo.is_nan() || iv.lo < -SAFE {
        iv.lo = f64::NEG_INFINITY;
    }
    if iv.hi.is_nan() || iv.hi > SAFE {
        iv.hi = f64::INFINITY;
    }
    if iv.lo > iv.hi {
        return Interval { integral: iv.integral, ..Interval::TOP };
    }
    iv
}

/// An abstract value: either a numeric interval claim or no claim at all
/// (the value could be a string, a list, or any number).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Av {
    /// Every successful result is a non-NaN number inside the interval
    /// (infinite endpoints mean unbounded on that side).
    Num(Interval),
    /// No claim.
    Any,
}

impl Av {
    /// The interval, when one is claimed.
    pub fn interval(&self) -> Option<Interval> {
        match self {
            Av::Num(iv) => Some(*iv),
            Av::Any => None,
        }
    }
}

/// The abstract environment: declared variables mapped to their choice
/// intervals (or to a point for a fixed assignment). Unmapped names —
/// allocation values like `client.memory` — carry no claim.
#[derive(Debug, Clone, Default)]
pub struct DomainEnv {
    map: BTreeMap<String, Interval>,
}

impl DomainEnv {
    /// An empty environment (every name unknown).
    pub fn new() -> DomainEnv {
        DomainEnv::default()
    }

    /// Binds every declared variable of `opt` to the hull of its choices.
    pub fn from_option(opt: &OptionSpec) -> DomainEnv {
        let mut env = DomainEnv::new();
        for v in &opt.variables {
            if let (Some(&lo), Some(&hi)) = (v.choices.iter().min(), v.choices.iter().max()) {
                env.set(&v.name, Interval::int_range(lo, hi));
            }
        }
        env
    }

    /// Binds every variable of a concrete assignment to its point value.
    pub fn from_assignment(assignment: &[(String, i64)]) -> DomainEnv {
        let mut env = DomainEnv::new();
        for (name, v) in assignment {
            env.set(name, Interval::int(*v));
        }
        env
    }

    /// Binds one name.
    pub fn set(&mut self, name: &str, iv: Interval) {
        self.map.insert(name.to_owned(), iv);
    }

    /// The interval bound to `name`, if any.
    pub fn get(&self, name: &str) -> Option<Interval> {
        self.map.get(name).copied()
    }
}

fn add(a: Interval, b: Interval) -> Av {
    // inf + -inf is NaN; possible only when the bounds admit opposite
    // infinities.
    if (a.hi == f64::INFINITY && b.lo == f64::NEG_INFINITY)
        || (a.lo == f64::NEG_INFINITY && b.hi == f64::INFINITY)
    {
        return Av::Any;
    }
    Av::Num(guard(Interval {
        lo: a.lo + b.lo,
        hi: a.hi + b.hi,
        integral: a.integral && b.integral,
    }))
}

fn sub(a: Interval, b: Interval) -> Av {
    if (a.hi == f64::INFINITY && b.hi == f64::INFINITY)
        || (a.lo == f64::NEG_INFINITY && b.lo == f64::NEG_INFINITY)
    {
        return Av::Any;
    }
    Av::Num(guard(Interval {
        lo: a.lo - b.hi,
        hi: a.hi - b.lo,
        integral: a.integral && b.integral,
    }))
}

fn unbounded(iv: &Interval) -> bool {
    iv.lo == f64::NEG_INFINITY || iv.hi == f64::INFINITY
}

fn mul(a: Interval, b: Interval) -> Av {
    // 0 * inf is NaN.
    if (unbounded(&a) && b.contains(0.0)) || (unbounded(&b) && a.contains(0.0)) {
        return Av::Any;
    }
    let corners = [a.lo * b.lo, a.lo * b.hi, a.hi * b.lo, a.hi * b.hi];
    let lo = corners.iter().copied().fold(f64::INFINITY, f64::min);
    let hi = corners.iter().copied().fold(f64::NEG_INFINITY, f64::max);
    Av::Num(guard(Interval { lo, hi, integral: a.integral && b.integral }))
}

/// Division. Concrete semantics: `Int / Int` truncates toward zero,
/// anything else divides in `f64`; a zero divisor is an error (vacuous for
/// the claim).
fn div(a: Interval, b: Interval) -> Av {
    // inf / inf is NaN.
    if unbounded(&a) && unbounded(&b) {
        return Av::Any;
    }
    if !b.excludes_zero() {
        // Surviving divisors are nonzero. When the divisor is integral
        // they satisfy |b| >= 1, so |a / b| <= |a|.
        if b.integral && a.mag().is_finite() {
            let m = a.mag();
            return Av::Num(guard(Interval { lo: -m, hi: m, integral: a.integral }));
        }
        return Av::Num(Interval { integral: false, ..Interval::TOP });
    }
    if a.integral && b.integral && a.mag().is_finite() && b.mag().is_finite() {
        // Exact truncating division at the corners: the real quotient is
        // monotone along each axis and truncation preserves that, so the
        // extremes are corner values.
        let (alo, ahi) = (a.lo as i128, a.hi as i128);
        let (blo, bhi) = (b.lo as i128, b.hi as i128);
        let mut lo = i128::MAX;
        let mut hi = i128::MIN;
        for x in [alo, ahi] {
            for y in [blo, bhi] {
                let q = x / y;
                lo = lo.min(q);
                hi = hi.max(q);
            }
        }
        return Av::Num(guard(Interval { lo: lo as f64, hi: hi as f64, integral: true }));
    }
    let corners = [a.lo / b.lo, a.lo / b.hi, a.hi / b.lo, a.hi / b.hi];
    let lo = corners.iter().copied().fold(f64::INFINITY, f64::min);
    let hi = corners.iter().copied().fold(f64::NEG_INFINITY, f64::max);
    // The runtime may truncate (integer operands we could not type
    // exactly); [floor(lo), ceil(hi)] contains both outcomes.
    Av::Num(guard(Interval { lo: lo.floor(), hi: hi.ceil(), integral: false }))
}

/// Remainder: `|a % b| < |b|` (and `<= |b| - 1` for integers), with the
/// sign of the dividend.
fn rem(a: Interval, b: Interval) -> Av {
    // fmod(inf, b) is NaN.
    if unbounded(&a) {
        return Av::Any;
    }
    if !b.mag().is_finite() {
        return Av::Num(Interval { integral: false, ..Interval::TOP });
    }
    let mut m = if a.integral && b.integral { (b.mag() - 1.0).max(0.0) } else { b.mag() };
    m = m.min(a.mag());
    let lo = if a.lo >= 0.0 { 0.0 } else { -m };
    let hi = if a.hi <= 0.0 { 0.0 } else { m };
    Av::Num(guard(Interval { lo, hi, integral: a.integral && b.integral }))
}

/// The `[0, 1]` integer interval every boolean-producing operator yields.
fn bool_iv() -> Av {
    Av::Num(Interval::int_range(0, 1))
}

fn compare_iv(op: BinOp, a: Av, b: Av) -> Av {
    // Refine to a certain outcome only when both operands carry numeric
    // claims (then the runtime comparison is numeric) and the intervals
    // decide the ordering.
    if let (Av::Num(x), Av::Num(y)) = (a, b) {
        let lt = x.hi < y.lo; // certainly <
        let gt = x.lo > y.hi; // certainly >
        let eq = x.lo == x.hi && y.lo == y.hi && x.lo == y.lo;
        let certain = match op {
            BinOp::Lt => {
                if lt {
                    Some(true)
                } else if gt || eq {
                    Some(false)
                } else {
                    None
                }
            }
            BinOp::Gt => {
                if gt {
                    Some(true)
                } else if lt || eq {
                    Some(false)
                } else {
                    None
                }
            }
            BinOp::Le => {
                if lt || eq {
                    Some(true)
                } else if gt {
                    Some(false)
                } else {
                    None
                }
            }
            BinOp::Ge => {
                if gt || eq {
                    Some(true)
                } else if lt {
                    Some(false)
                } else {
                    None
                }
            }
            BinOp::Eq => {
                if eq {
                    Some(true)
                } else if lt || gt {
                    Some(false)
                } else {
                    None
                }
            }
            BinOp::Ne => {
                if eq {
                    Some(false)
                } else if lt || gt {
                    Some(true)
                } else {
                    None
                }
            }
            _ => None,
        };
        if let Some(t) = certain {
            return Av::Num(Interval::int(t as i64));
        }
    }
    bool_iv()
}

fn call_iv(name: &str, args: &[Av]) -> Av {
    let nums: Vec<Interval> = args.iter().filter_map(Av::interval).collect();
    let all_num = nums.len() == args.len();
    match name {
        "min" | "max" if !args.is_empty() => {
            if all_num {
                let lo = if name == "min" {
                    nums.iter().map(|i| i.lo).fold(f64::INFINITY, f64::min)
                } else {
                    nums.iter().map(|i| i.lo).fold(f64::NEG_INFINITY, f64::max)
                };
                let hi = if name == "min" {
                    nums.iter().map(|i| i.hi).fold(f64::INFINITY, f64::min)
                } else {
                    nums.iter().map(|i| i.hi).fold(f64::NEG_INFINITY, f64::max)
                };
                Av::Num(guard(Interval { lo, hi, integral: nums.iter().all(|i| i.integral) }))
            } else if !nums.is_empty() {
                // min is bounded above by any known argument, max below.
                if name == "min" {
                    let hi = nums.iter().map(|i| i.hi).fold(f64::INFINITY, f64::min);
                    Av::Num(guard(Interval { lo: f64::NEG_INFINITY, hi, integral: false }))
                } else {
                    let lo = nums.iter().map(|i| i.lo).fold(f64::NEG_INFINITY, f64::max);
                    Av::Num(guard(Interval { lo, hi: f64::INFINITY, integral: false }))
                }
            } else {
                Av::Any
            }
        }
        "abs" if args.len() == 1 => match args[0] {
            // An integral interval reaching -inf could hold i64::MIN, whose
            // wrapping_abs stays negative; no sign claim survives there.
            Av::Num(x) if x.integral && x.lo == f64::NEG_INFINITY => {
                Av::Num(Interval { integral: true, ..Interval::TOP })
            }
            Av::Num(x) => {
                let lo = if x.contains(0.0) { 0.0 } else { x.lo.abs().min(x.hi.abs()) };
                Av::Num(guard(Interval { lo, hi: x.mag(), integral: x.integral }))
            }
            // abs(NaN) is NaN: no claim for unknown inputs.
            Av::Any => Av::Any,
        },
        "floor" | "ceil" | "round" | "int" if args.len() == 1 => match args[0] {
            Av::Num(x) => {
                let (lo, hi) = match name {
                    "floor" => (x.lo.floor(), x.hi.floor()),
                    "ceil" => (x.lo.ceil(), x.hi.ceil()),
                    "round" => (x.lo.round(), x.hi.round()),
                    // `int` truncates toward zero; truncation is monotone.
                    _ => (x.lo.trunc(), x.hi.trunc()),
                };
                Av::Num(guard(Interval { lo, hi, integral: true }))
            }
            Av::Any => Av::Num(Interval { integral: true, ..Interval::TOP }),
        },
        "sqrt" if args.len() == 1 => match args[0] {
            // f64::sqrt is correctly rounded and monotone, so the image of
            // [lo, hi] is exactly [sqrt(lo), sqrt(hi)]. A possibly-negative
            // input could yield NaN, so it forfeits the claim.
            Av::Num(x) if x.lo >= 0.0 => {
                Av::Num(guard(Interval { lo: x.lo.sqrt(), hi: x.hi.sqrt(), integral: false }))
            }
            _ => Av::Any,
        },
        "exp" if args.len() == 1 => match args[0] {
            // exp of a non-NaN input is non-negative and never NaN; libm
            // monotonicity is not guaranteed, so only the sign is claimed.
            Av::Num(_) => Av::Num(Interval { lo: 0.0, hi: f64::INFINITY, integral: false }),
            Av::Any => Av::Any,
        },
        "double" if args.len() == 1 => match args[0] {
            Av::Num(x) => Av::Num(Interval { integral: false, ..x }),
            Av::Any => Av::Any,
        },
        "clamp" if args.len() == 3 => {
            if let (Av::Num(x), Av::Num(lo_c), Av::Num(hi_c)) = (args[0], args[1], args[2]) {
                // clamp = min(max(x, lo), hi); both are monotone, so
                // corner propagation is exact.
                let lo = x.lo.max(lo_c.lo).min(hi_c.lo);
                let hi = x.hi.max(lo_c.hi).min(hi_c.hi);
                Av::Num(guard(Interval { lo, hi, integral: false }))
            } else {
                Av::Any
            }
        }
        // log/log2/log10/pow and unknown builtins: no useful claim.
        _ => Av::Any,
    }
}

/// Abstractly evaluates `expr` under `env`.
///
/// Soundness contract: for every concrete environment that binds each
/// `env`-mapped name to a value inside its interval (an `Int` when the
/// interval is integral), if concrete evaluation succeeds with a finite
/// numeric value, that value lies inside the returned interval. `Av::Any`
/// makes no claim.
pub fn aeval(expr: &Expr, env: &DomainEnv) -> Av {
    match expr {
        Expr::Int(i) => Av::Num(Interval::int(*i)),
        Expr::Float(x) if x.is_finite() => Av::Num(Interval::float(*x)),
        Expr::Float(_) | Expr::Str(_) => Av::Any,
        Expr::Name(n) => match env.get(n) {
            Some(iv) => Av::Num(iv),
            None => Av::Any,
        },
        Expr::Unary(UnOp::Neg, e) => match aeval(e, env) {
            // An integral interval reaching -inf could hold i64::MIN, whose
            // wrapping_neg is itself; widen rather than flip.
            Av::Num(x) if x.integral && x.lo == f64::NEG_INFINITY => {
                Av::Num(Interval { integral: true, ..Interval::TOP })
            }
            Av::Num(x) => Av::Num(guard(Interval { lo: -x.hi, hi: -x.lo, integral: x.integral })),
            Av::Any => Av::Any,
        },
        Expr::Unary(UnOp::Not, _) => bool_iv(),
        Expr::Binary(BinOp::And | BinOp::Or, _, _) => bool_iv(),
        Expr::Binary(op, a, b) => {
            let x = aeval(a, env);
            let y = aeval(b, env);
            match op {
                BinOp::Add | BinOp::Sub | BinOp::Mul | BinOp::Div | BinOp::Rem => match (x, y) {
                    (Av::Num(x), Av::Num(y)) => match op {
                        BinOp::Add => add(x, y),
                        BinOp::Sub => sub(x, y),
                        BinOp::Mul => mul(x, y),
                        BinOp::Div => div(x, y),
                        _ => rem(x, y),
                    },
                    _ => Av::Any,
                },
                _ => compare_iv(*op, x, y),
            }
        }
        Expr::Ternary(c, t, e) => {
            let cond = aeval(c, env);
            match cond {
                Av::Num(iv) if iv.excludes_zero() => aeval(t, env),
                Av::Num(iv) if iv.lo == 0.0 && iv.hi == 0.0 => aeval(e, env),
                _ => match (aeval(t, env), aeval(e, env)) {
                    (Av::Num(a), Av::Num(b)) => Av::Num(a.join(&b)),
                    _ => Av::Any,
                },
            }
        }
        Expr::Call(name, args) => {
            let vals: Vec<Av> = args.iter().map(|a| aeval(a, env)).collect();
            call_iv(name, &vals)
        }
    }
}

/// Abstract bound for a tag value: the interval its numeric *amount*
/// (minimum requirement) can take under `env`. `Av::Any` for wildcards,
/// `<=` constraints, and non-numeric literals.
pub fn tag_bound(tag: &TagValue, env: &DomainEnv) -> Av {
    match tag {
        TagValue::Any | TagValue::AtMost(_) => Av::Any,
        TagValue::AtLeast(x) => Av::Num(Interval::float(*x)),
        TagValue::Exact(v) => match v.as_f64() {
            Ok(x) if x.is_finite() => Av::Num(Interval::float(x)),
            _ => Av::Any,
        },
        TagValue::Expr(e) => aeval(e, env),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use harmony_rsl::expr::{eval, parse_expr, MapEnv};
    use harmony_rsl::Value;

    fn check_contains(src: &str, w: i64) {
        let e = parse_expr(src).unwrap();
        let mut env = DomainEnv::new();
        env.set("w", Interval::int_range(1, 8));
        let av = aeval(&e, &env);
        let mut cenv = MapEnv::new();
        cenv.set("w", Value::Int(w));
        if let Ok(v) = eval(&e, &cenv) {
            if let Ok(x) = v.as_f64() {
                if x.is_finite() {
                    let iv = av.interval().unwrap_or(Interval::TOP);
                    assert!(iv.contains(x), "{src} at w={w}: {x} not in {iv:?}");
                }
            }
        }
    }

    #[test]
    fn containment_over_common_shapes() {
        for src in [
            "1200 / w",
            "0.5 * w * w",
            "w % 3",
            "min(100, w * 10)",
            "max(2, w - 5)",
            "w > 4 ? 100 : 200",
            "abs(3 - w)",
            "(1200 / w) + 0.25 * w",
            "clamp(w, 2, 6)",
            "floor(w / 2) + ceil(w / 3)",
            "sqrt(w) * 4",
            "-w + 10",
            "int(w / 2.0)",
            "w / (w - 4)",
        ] {
            for w in 1..=8 {
                check_contains(src, w);
            }
        }
    }

    #[test]
    fn truncating_division_is_covered() {
        // 7 / 2 == 3 in the concrete semantics.
        let e = parse_expr("7 / 2").unwrap();
        let av = aeval(&e, &DomainEnv::new());
        let iv = av.interval().unwrap();
        assert!(iv.contains(3.0));
        assert!(iv.integral);
        assert_eq!((iv.lo, iv.hi), (3.0, 3.0));
    }

    #[test]
    fn divisor_spanning_zero_keeps_magnitude_bound() {
        // w - 4 spans zero on [1, 8]; surviving divisors are nonzero
        // integers, so the quotient is bounded by |100|.
        let e = parse_expr("100 / (w - 4)").unwrap();
        let mut env = DomainEnv::new();
        env.set("w", Interval::int_range(1, 8));
        let iv = aeval(&e, &env).interval().unwrap();
        assert!(iv.contains(100.0) && iv.contains(-100.0));
        assert!(iv.lo >= -100.0 && iv.hi <= 100.0);
    }

    #[test]
    fn certain_comparisons_collapse() {
        let mut env = DomainEnv::new();
        env.set("w", Interval::int_range(1, 3));
        let e = parse_expr("w < 10").unwrap();
        assert_eq!(aeval(&e, &env).interval().unwrap(), Interval::int(1));
        let e = parse_expr("w > 10 ? 5 : 7").unwrap();
        assert_eq!(aeval(&e, &env).interval().unwrap(), Interval::int(7));
    }

    #[test]
    fn unknown_names_make_no_claim_but_min_still_bounds() {
        let e = parse_expr("min(24, client.memory)").unwrap();
        let iv = aeval(&e, &DomainEnv::new()).interval().unwrap();
        assert!(iv.hi <= 24.0);
        assert_eq!(iv.lo, f64::NEG_INFINITY);
    }

    #[test]
    fn provably_negative_perf_is_detected() {
        let e = parse_expr("0 - 100").unwrap();
        let iv = aeval(&e, &DomainEnv::new()).interval().unwrap();
        assert!(iv.hi < 0.0);
    }

    #[test]
    fn huge_bounds_widen_to_infinity() {
        let e = parse_expr("w * w * w * w * w * w * w * w * w * w").unwrap();
        let mut env = DomainEnv::new();
        env.set("w", Interval::int_range(1, 1_000_000));
        let iv = aeval(&e, &env).interval().unwrap();
        assert_eq!(iv.hi, f64::INFINITY);
    }
}
