//! Per-variable monotonicity of RSL expressions and performance tables.
//!
//! [`expr_mono`] computes the *weak* direction of an expression in one
//! variable: `Inc` claims that raising the variable (all other bindings
//! fixed) never lowers the value, `Dec` the mirror image, `Const` that the
//! value does not depend on the variable at all. Claims are advisory facts
//! about the contention-free prediction — they hold over domain points
//! where evaluation succeeds with non-NaN numeric values — and are
//! reported to operators; the optimizer's pruning rests on interval
//! bounds and exact signatures instead, never on these directions.
//!
//! The concrete semantics' truncations (`Int / Int`, `floor`, `int`) are
//! weakly monotone, so directions survive them.

use harmony_rsl::expr::{BinOp, Expr, UnOp};
use harmony_rsl::schema::{CountSpec, OptionSpec, PerfSpec};

use super::intervals::{aeval, Av, DomainEnv};

/// Weak monotonicity direction of a value in one variable.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Mono {
    /// Raising the variable never lowers the value.
    Inc,
    /// Raising the variable never raises the value.
    Dec,
    /// The value does not depend on the variable.
    Const,
    /// No direction could be established.
    Unknown,
}

impl Mono {
    /// The opposite direction.
    pub fn flip(self) -> Mono {
        match self {
            Mono::Inc => Mono::Dec,
            Mono::Dec => Mono::Inc,
            m => m,
        }
    }

    /// Lowercase name for rendering (`increasing`, ...).
    pub fn name(self) -> &'static str {
        match self {
            Mono::Inc => "increasing",
            Mono::Dec => "decreasing",
            Mono::Const => "constant",
            Mono::Unknown => "unknown",
        }
    }
}

/// The least direction both operands share: `Const` is neutral (it is
/// weakly both increasing and decreasing), agreeing directions survive,
/// disagreement is `Unknown`.
fn combine(a: Mono, b: Mono) -> Mono {
    match (a, b) {
        (Mono::Unknown, _) | (_, Mono::Unknown) => Mono::Unknown,
        (Mono::Const, m) | (m, Mono::Const) => m,
        (x, y) if x == y => x,
        _ => Mono::Unknown,
    }
}

/// Sign of an interval claim: `Some(true)` for provably ≥ 0, `Some(false)`
/// for provably ≤ 0.
fn sign(av: Av) -> Option<bool> {
    let iv = av.interval()?;
    if iv.lo >= 0.0 {
        Some(true)
    } else if iv.hi <= 0.0 {
        Some(false)
    } else {
        None
    }
}

fn depends_on(expr: &Expr, var: &str) -> bool {
    expr.free_names().iter().any(|n| n == var)
}

/// Direction of `expr` in `var`, with `env` giving interval bounds used to
/// establish operand signs (e.g. for `c * x` or `S / w`).
pub fn expr_mono(expr: &Expr, var: &str, env: &DomainEnv) -> Mono {
    if !depends_on(expr, var) {
        return Mono::Const;
    }
    match expr {
        Expr::Int(_) | Expr::Float(_) | Expr::Str(_) => Mono::Const,
        Expr::Name(n) => {
            if n == var {
                Mono::Inc
            } else {
                Mono::Const
            }
        }
        Expr::Unary(UnOp::Neg, e) => expr_mono(e, var, env).flip(),
        Expr::Unary(UnOp::Not, _) => Mono::Unknown,
        Expr::Binary(op, a, b) => {
            let ma = expr_mono(a, var, env);
            let mb = expr_mono(b, var, env);
            match op {
                BinOp::Add => combine(ma, mb),
                BinOp::Sub => combine(ma, mb.flip()),
                BinOp::Mul => {
                    if !depends_on(b, var) {
                        match sign(aeval(b, env)) {
                            Some(true) => ma,
                            Some(false) => ma.flip(),
                            None => Mono::Unknown,
                        }
                    } else if !depends_on(a, var) {
                        match sign(aeval(a, env)) {
                            Some(true) => mb,
                            Some(false) => mb.flip(),
                            None => Mono::Unknown,
                        }
                    } else if combine(ma, mb) != Mono::Unknown
                        && sign(aeval(a, env)) == Some(true)
                        && sign(aeval(b, env)) == Some(true)
                    {
                        // Non-negative factors moving the same way: the
                        // product moves with them (covers `w * w`).
                        combine(ma, mb)
                    } else {
                        Mono::Unknown
                    }
                }
                BinOp::Div => {
                    let pos =
                        |e: &Expr| aeval(e, env).interval().map(|iv| iv.lo > 0.0).unwrap_or(false);
                    if !depends_on(b, var) {
                        // Fixed divisor of known sign; truncation is
                        // monotone in the dividend.
                        match sign(aeval(b, env)) {
                            Some(true) => ma,
                            Some(false) => ma.flip(),
                            None => Mono::Unknown,
                        }
                    } else if !depends_on(a, var) && pos(b) {
                        // Fixed dividend of known sign over a positive,
                        // directed divisor: the paper's `S / w` shape.
                        match sign(aeval(a, env)) {
                            Some(true) => mb.flip(),
                            Some(false) => mb,
                            None => Mono::Unknown,
                        }
                    } else {
                        Mono::Unknown
                    }
                }
                _ => Mono::Unknown,
            }
        }
        Expr::Ternary(c, t, e) => {
            if depends_on(c, var) {
                Mono::Unknown
            } else {
                // The branch taken is fixed while `var` varies, so any
                // direction both branches share holds.
                combine(expr_mono(t, var, env), expr_mono(e, var, env))
            }
        }
        Expr::Call(name, args) => match (name.as_str(), args.len()) {
            ("min" | "max", n) if n > 0 => {
                // min/max of functions sharing a direction keeps it.
                args.iter().map(|a| expr_mono(a, var, env)).fold(Mono::Const, combine)
            }
            ("floor" | "ceil" | "round" | "int" | "sqrt" | "double" | "exp", 1) => {
                expr_mono(&args[0], var, env)
            }
            ("abs", 1) => match sign(aeval(&args[0], env)) {
                Some(true) => expr_mono(&args[0], var, env),
                Some(false) => expr_mono(&args[0], var, env).flip(),
                None => Mono::Unknown,
            },
            ("clamp", 3) => {
                if depends_on(&args[1], var) || depends_on(&args[2], var) {
                    Mono::Unknown
                } else {
                    expr_mono(&args[0], var, env)
                }
            }
            _ => Mono::Unknown,
        },
    }
}

/// Direction of a sorted performance table's `y` values: the interpolant
/// is weakly monotone in `x` exactly when the knots are.
fn table_mono(points: &[(f64, f64)]) -> Mono {
    let mut pts: Vec<(f64, f64)> = points.to_vec();
    pts.sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap_or(std::cmp::Ordering::Equal));
    let mut dir = Mono::Const;
    for w in pts.windows(2) {
        let step = if w[1].1 > w[0].1 {
            Mono::Inc
        } else if w[1].1 < w[0].1 {
            Mono::Dec
        } else {
            Mono::Const
        };
        dir = combine(dir, step);
        if dir == Mono::Unknown {
            return Mono::Unknown;
        }
    }
    dir
}

/// Direction of the option's total resolved replica count in `var` (the
/// `x` fed to a points table).
fn count_mono(opt: &OptionSpec, var: &str) -> Mono {
    let mut dir = Mono::Const;
    for node in &opt.nodes {
        let step = match &node.count {
            CountSpec::One | CountSpec::Replicate(_) => Mono::Const,
            CountSpec::Param(p) => {
                if p == var {
                    Mono::Inc
                } else {
                    Mono::Const
                }
            }
        };
        dir = combine(dir, step);
    }
    dir
}

/// Direction of the option's predicted (contention-free) time in `var`.
///
/// `None` when the option declares no performance model; the default
/// model's prediction depends on the allocation, which is outside the
/// bundle's domain.
pub fn perf_mono(opt: &OptionSpec, var: &str, env: &DomainEnv) -> Option<Mono> {
    match opt.performance.as_ref()? {
        PerfSpec::Expr(e) => Some(expr_mono(e, var, env)),
        PerfSpec::Points(points) => {
            let table = table_mono(points);
            let count = count_mono(opt, var);
            Some(match (table, count) {
                (_, Mono::Const) => Mono::Const,
                (Mono::Const, _) => Mono::Const,
                (Mono::Inc, c) => c,
                (Mono::Dec, c) => c.flip(),
                (Mono::Unknown, _) => Mono::Unknown,
            })
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use harmony_rsl::expr::parse_expr;
    use harmony_rsl::schema::parse_bundle_script;

    use crate::facts::intervals::Interval;

    fn mono(src: &str) -> Mono {
        let e = parse_expr(src).unwrap();
        let mut env = DomainEnv::new();
        env.set("w", Interval::int_range(1, 8));
        env.set("k", Interval::int_range(2, 4));
        expr_mono(&e, "w", &env)
    }

    #[test]
    fn core_shapes() {
        assert_eq!(mono("1200 / w"), Mono::Dec);
        assert_eq!(mono("0.5 * w * w"), Mono::Inc);
        assert_eq!(mono("10 - 2 * w"), Mono::Dec);
        assert_eq!(mono("k * 100"), Mono::Const);
        assert_eq!(mono("min(100, w * 10)"), Mono::Inc);
        assert_eq!(mono("max(2, 9 - w)"), Mono::Dec);
        assert_eq!(mono("floor(w / 2)"), Mono::Inc);
        assert_eq!(mono("k > 3 ? w : w + 1"), Mono::Inc);
        assert_eq!(mono("w > 3 ? 1 : 2"), Mono::Unknown);
        assert_eq!(mono("w % 3"), Mono::Unknown);
        assert_eq!(mono("-(1200 / w)"), Mono::Inc);
        assert_eq!(mono("sqrt(w) * 4"), Mono::Inc);
        assert_eq!(mono("100 / (w - 9)"), Mono::Unknown);
    }

    #[test]
    fn directions_match_concrete_evaluation() {
        use harmony_rsl::expr::{eval, MapEnv};
        use harmony_rsl::Value;
        for src in ["1200 / w", "0.5 * w * w", "min(100, w * 10)", "10 - 2 * w", "abs(0 - w)"] {
            let e = parse_expr(src).unwrap();
            let dir = mono(src);
            assert_ne!(dir, Mono::Unknown, "{src}");
            let mut prev: Option<f64> = None;
            for w in 1..=8 {
                let mut env = MapEnv::new();
                env.set("w", Value::Int(w));
                let v = eval(&e, &env).unwrap().as_f64().unwrap();
                if let Some(p) = prev {
                    match dir {
                        Mono::Inc => assert!(v >= p, "{src} at w={w}"),
                        Mono::Dec => assert!(v <= p, "{src} at w={w}"),
                        Mono::Const => assert_eq!(v, p, "{src} at w={w}"),
                        Mono::Unknown => unreachable!(),
                    }
                }
                prev = Some(v);
            }
        }
    }

    #[test]
    fn fig2b_perf_table_is_decreasing_in_worker_nodes() {
        let bundle = parse_bundle_script(harmony_rsl::listings::FIG2B_BAG).unwrap();
        let opt = &bundle.options[0];
        let env = DomainEnv::from_option(opt);
        assert_eq!(perf_mono(opt, "workerNodes", &env), Some(Mono::Dec));
    }

    #[test]
    fn perf_expr_direction() {
        let bundle = parse_bundle_script(
            "harmonyBundle a b { {o {variable w {1 2 4}} \
             {node n {replicate w} {seconds {1200 / w}}} \
             {performance {1200 / w + 5 * w}}} }",
        )
        .unwrap();
        let opt = &bundle.options[0];
        let env = DomainEnv::from_option(opt);
        // 1200/w falls, 5w rises: no shared direction.
        assert_eq!(perf_mono(opt, "w", &env), Some(Mono::Unknown));
        assert_eq!(perf_mono(opt, "missing", &env), Some(Mono::Const));
    }
}
