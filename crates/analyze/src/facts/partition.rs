//! Cross-bundle interference: which bundles can ever contend for the same
//! machines.
//!
//! A bundle's *footprint* is the set of hostnames its allocations can
//! touch. It is only known statically when **every** node requirement of
//! every option carries a literal `hostname` pin; a single unpinned
//! requirement makes the footprint ⊤ (any machine). Two bundles interfere
//! when their footprints can overlap; connected components of the
//! interference graph are exactly the sub-problems the optimizer may
//! solve independently.

use std::collections::BTreeSet;

use harmony_rsl::schema::{BundleSpec, OptionSpec, TagValue};
use harmony_rsl::Value;
use serde::{Deserialize, Serialize};

/// The hostnames a set of options can be placed on: `None` is ⊤
/// (unpinned — any machine is reachable). This is the option-level form
/// of [`bundle_footprint`], exposed so `harmony-core` can compute
/// footprints for the option lists its evaluation contexts carry.
pub fn options_footprint(options: &[OptionSpec]) -> Option<BTreeSet<String>> {
    let mut hosts = BTreeSet::new();
    for opt in options {
        for node in &opt.nodes {
            match node.hostname() {
                Some(TagValue::Exact(Value::Str(h))) => {
                    hosts.insert(h.clone());
                }
                // Wildcards, constraints, expressions, numeric literals, or
                // no hostname at all: the matcher may pick any machine.
                _ => return None,
            }
        }
    }
    Some(hosts)
}

/// The hostnames a bundle can be placed on: `None` is ⊤ (unpinned —
/// any machine is reachable).
pub fn bundle_footprint(bundle: &BundleSpec) -> Option<BTreeSet<String>> {
    options_footprint(&bundle.options)
}

/// Cross-bundle interference summary.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct InterferenceSummary {
    /// Bundle namespace paths grouped into independently optimizable
    /// components, each sorted, components ordered by first member.
    pub components: Vec<Vec<String>>,
    /// Bundles whose footprint is ⊤ (they interfere with everything).
    pub unpinned: Vec<String>,
}

fn path_of(b: &BundleSpec) -> String {
    match b.instance {
        Some(i) => format!("{}.{}.{}", b.app, i, b.name),
        None => format!("{}.{}", b.app, b.name),
    }
}

/// Computes the interference components of `bundles`.
///
/// Bundles with overlapping footprints are merged; an unpinned bundle
/// overlaps everything, so any unpinned bundle collapses the graph into a
/// single component.
pub fn interference(bundles: &[&BundleSpec]) -> InterferenceSummary {
    let n = bundles.len();
    let feet: Vec<Option<BTreeSet<String>>> = bundles.iter().map(|b| bundle_footprint(b)).collect();
    let mut parent: Vec<usize> = (0..n).collect();
    fn find(parent: &mut [usize], i: usize) -> usize {
        let mut r = i;
        while parent[r] != r {
            r = parent[r];
        }
        let mut c = i;
        while parent[c] != r {
            let next = parent[c];
            parent[c] = r;
            c = next;
        }
        r
    }
    for i in 0..n {
        for j in i + 1..n {
            let overlap = match (&feet[i], &feet[j]) {
                (None, _) | (_, None) => true,
                (Some(a), Some(b)) => a.intersection(b).next().is_some(),
            };
            if overlap {
                let (ri, rj) = (find(&mut parent, i), find(&mut parent, j));
                if ri != rj {
                    parent[ri.max(rj)] = ri.min(rj);
                }
            }
        }
    }
    let mut components: Vec<Vec<String>> = Vec::new();
    let mut root_of: Vec<Option<usize>> = vec![None; n];
    for (i, b) in bundles.iter().enumerate() {
        let r = find(&mut parent, i);
        let slot = match root_of[r] {
            Some(s) => s,
            None => {
                components.push(Vec::new());
                root_of[r] = Some(components.len() - 1);
                components.len() - 1
            }
        };
        components[slot].push(path_of(b));
    }
    for c in &mut components {
        c.sort();
    }
    let unpinned =
        bundles.iter().zip(&feet).filter(|(_, f)| f.is_none()).map(|(b, _)| path_of(b)).collect();
    InterferenceSummary { components, unpinned }
}

#[cfg(test)]
mod tests {
    use super::*;
    use harmony_rsl::schema::parse_bundle_script;

    fn bundle(app: &str, hosts: &[&str]) -> BundleSpec {
        let nodes: Vec<String> = hosts
            .iter()
            .enumerate()
            .map(|(i, h)| format!("{{node n{i} {{seconds 1}} {{hostname {h}}}}}"))
            .collect();
        parse_bundle_script(&format!("harmonyBundle {app} conf {{ {{o {}}} }}", nodes.join(" ")))
            .unwrap()
    }

    #[test]
    fn pinned_footprints_are_exact() {
        let b = bundle("a", &["m1", "m2"]);
        let f = bundle_footprint(&b).unwrap();
        assert_eq!(f.into_iter().collect::<Vec<_>>(), vec!["m1", "m2"]);
    }

    #[test]
    fn any_unpinned_node_makes_top() {
        let b = parse_bundle_script(
            "harmonyBundle a conf { {o {node x {seconds 1} {hostname m1}} \
             {node y {seconds 1}}} }",
        )
        .unwrap();
        assert_eq!(bundle_footprint(&b), None);
    }

    #[test]
    fn disjoint_pins_split_into_components() {
        let a = bundle("a", &["m1"]);
        let b = bundle("b", &["m2"]);
        let c = bundle("c", &["m2", "m3"]);
        let summary = interference(&[&a, &b, &c]);
        assert_eq!(
            summary.components,
            vec![vec!["a.conf".to_string()], vec!["b.conf".to_string(), "c.conf".to_string()]]
        );
        assert!(summary.unpinned.is_empty());
    }

    #[test]
    fn unpinned_bundle_collapses_everything() {
        let a = bundle("a", &["m1"]);
        let b = bundle("b", &["m2"]);
        let c = parse_bundle_script("harmonyBundle c conf { {o {node n {seconds 1}}} }").unwrap();
        let summary = interference(&[&a, &b, &c]);
        assert_eq!(summary.components.len(), 1);
        assert_eq!(summary.components[0].len(), 3);
        assert_eq!(summary.unpinned, vec!["c.conf".to_string()]);
    }
}
