//! The diagnostic model: stable codes, severities, and span labels.

use std::fmt;

use harmony_rsl::Span;

/// Severity of a diagnostic.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Severity {
    /// Informational; analysis gave up or has something to say.
    Note,
    /// Probably unintended, but the bundle will run.
    Warning,
    /// The bundle will misbehave at match or evaluation time.
    Error,
}

impl Severity {
    /// Lowercase name used in rendered output (`error`, `warning`, `note`).
    pub fn name(self) -> &'static str {
        match self {
            Severity::Error => "error",
            Severity::Warning => "warning",
            Severity::Note => "note",
        }
    }
}

/// A stable diagnostic code, e.g. `HA0004`.
///
/// Codes are part of the analyzer's public contract: suppression tooling
/// and golden tests key on them, so a code is never reused for a different
/// condition. Errors use `HA00xx`, warnings `HA01xx`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Code(pub &'static str);

impl fmt::Display for Code {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.0)
    }
}

macro_rules! codes {
    ($($(#[$doc:meta])* $konst:ident = ($code:literal, $sev:ident, $summary:literal);)*) => {
        $( $(#[$doc])* pub const $konst: Code = Code($code); )*

        /// Every code the analyzer can emit, with its default severity and
        /// one-line summary (the catalogue rendered in `docs/ANALYZER.md`).
        pub const ALL_CODES: &[(Code, Severity, &str)] = &[
            $( (Code($code), Severity::$sev, $summary), )*
        ];
    };
}

codes! {
    /// Two options in one bundle share a name; the second shadows the first.
    DUP_OPTION = ("HA0001", Error, "duplicate option name");
    /// Two node requirements in one option share a local name.
    DUP_NODE = ("HA0002", Error, "duplicate node requirement");
    /// A link endpoint names a node requirement the option does not define.
    LINK_UNDEFINED = ("HA0003", Error, "link references undefined node requirement");
    /// A tag references a variable no `variable` tag declares.
    UNDECLARED_VAR = ("HA0004", Error, "undeclared variable referenced");
    /// A dotted reference's head is not a node requirement of the option.
    DOTTED_NOT_NODE = ("HA0005", Error, "dotted reference to non-node");
    /// `granularity` is negative.
    NEG_GRANULARITY = ("HA0006", Error, "negative granularity");
    /// A numeric tag (`seconds`, `memory`, `communication`, `friction`,
    /// link bandwidth) holds a value with no numeric amount.
    NON_NUMERIC_TAG = ("HA0011", Error, "numeric tag holds a non-numeric value");
    /// A constant tag expression fails to evaluate or yields a non-number.
    BAD_CONST_EXPR = ("HA0012", Error, "constant expression does not evaluate to a number");
    /// Reachable division (or remainder) by zero: some assignment of the
    /// option's variables makes a divisor zero.
    DIV_BY_ZERO = ("HA0020", Error, "reachable division by zero");
    /// Reachable negative resource demand: some assignment of the option's
    /// variables makes a demand negative.
    NEG_DEMAND = ("HA0021", Error, "reachable negative resource demand");
    /// A performance table repeats an `x` knot.
    DUP_PERF_KNOT = ("HA0030", Error, "duplicate performance knot");
    /// A performance table predicts a negative time.
    NEG_PERF_TIME = ("HA0031", Error, "negative predicted time");
    /// Two bundles claim the same namespace path (`app.instance.name`).
    NS_COLLISION = ("HA0050", Error, "namespace collision between bundles");
    /// A name is not a valid Harmony namespace component.
    NS_BAD_COMPONENT = ("HA0051", Error, "invalid namespace component");
    /// A variable and a node requirement in one option share a name, making
    /// references ambiguous.
    NS_VAR_NODE_CLASH = ("HA0052", Error, "variable and node requirement share a name");
    /// A link connects a node requirement to itself.
    SELF_LINK = ("HA0101", Warning, "link connects a node to itself");
    /// A declared variable is never referenced.
    UNUSED_VAR = ("HA0102", Warning, "unused variable");
    /// A variable repeats a choice.
    DUP_CHOICE = ("HA0103", Warning, "duplicate variable choices");
    /// A variable includes a choice ≤ 0.
    NONPOS_CHOICE = ("HA0104", Warning, "non-positive variable choice");
    /// An option has no node requirements and consumes nothing.
    EMPTY_OPTION = ("HA0105", Warning, "option has no node requirements");
    /// The cartesian product of choice domains exceeds the analysis cap, so
    /// reachability checks were skipped.
    DOMAIN_TOO_LARGE = ("HA0106", Note, "choice domain too large for exhaustive analysis");
    /// A `hostname`/`os` tag holds a numeric value.
    NUMERIC_NAME_TAG = ("HA0113", Warning, "hostname/os tag holds a numeric value");
    /// Performance breakpoints are not listed in increasing `x` order.
    UNSORTED_PERF = ("HA0130", Warning, "unsorted performance breakpoints");
    /// An option never beats another option's predicted performance while
    /// demanding at least as many resources.
    DOMINATED_OPTION = ("HA0140", Warning, "dominated option");
    /// An option's requirements duplicate an earlier option's exactly.
    DUPLICATE_REQS = ("HA0141", Warning, "option duplicates an earlier option's requirements");
    /// Interval analysis proves the `performance` expression negative for
    /// every point of the choice domain.
    NEG_PERF_EXPR = ("HA0201", Warning, "performance expression is provably negative");
    /// A variable assignment is strictly dominated: another assignment has
    /// identical resolved resource demands and a strictly better predicted
    /// time, so the optimizer can never profit from choosing it.
    DOMINATED_ASSIGNMENT = ("HA0202", Note, "provably dominated variable assignment");
    /// Interval analysis proves a resource demand negative for every point
    /// of a choice domain too large for exhaustive checking.
    PROVEN_NEG_DEMAND = ("HA0203", Warning, "demand provably negative over the whole domain");
}

/// A span in the analyzed source, with a message describing what the span
/// shows.
#[derive(Debug, Clone, PartialEq)]
pub struct Label {
    /// Byte range in the analyzed source.
    pub span: Span,
    /// What the reader should see at this span.
    pub message: String,
}

/// One analyzer finding.
#[derive(Debug, Clone, PartialEq)]
pub struct Diagnostic {
    /// Stable code (`HA0001`...).
    pub code: Code,
    /// Severity.
    pub severity: Severity,
    /// Primary human-readable message.
    pub message: String,
    /// Option the finding is in (empty for bundle/script-level findings).
    pub option: String,
    /// Labels; the first is primary and drives the rendered location.
    pub labels: Vec<Label>,
    /// Free-form notes, e.g. a counterexample variable assignment.
    pub notes: Vec<String>,
}

impl Diagnostic {
    /// Creates a diagnostic with the code's default severity.
    pub fn new(code: Code, message: impl Into<String>) -> Self {
        let severity = ALL_CODES
            .iter()
            .find(|(c, _, _)| *c == code)
            .map(|(_, s, _)| *s)
            .unwrap_or(Severity::Error);
        Diagnostic {
            code,
            severity,
            message: message.into(),
            option: String::new(),
            labels: Vec::new(),
            notes: Vec::new(),
        }
    }

    /// Sets the option name the finding belongs to.
    pub fn in_option(mut self, option: impl Into<String>) -> Self {
        self.option = option.into();
        self
    }

    /// Appends a span label (the first becomes primary).
    pub fn with_label(mut self, span: Span, message: impl Into<String>) -> Self {
        self.labels.push(Label { span, message: message.into() });
        self
    }

    /// Appends a note line.
    pub fn with_note(mut self, note: impl Into<String>) -> Self {
        self.notes.push(note.into());
        self
    }

    /// The primary span, if any label carries one.
    pub fn primary_span(&self) -> Option<Span> {
        self.labels.first().map(|l| l.span)
    }
}

/// Looks a code up by its string form (`"HA0020"`), returning the interned
/// [`Code`] and its default severity. `None` for unknown codes.
pub fn lookup(name: &str) -> Option<(Code, Severity)> {
    ALL_CODES.iter().find(|(c, _, _)| c.0 == name).map(|(c, s, _)| (*c, *s))
}

/// True when `diags` contains no [`Severity::Error`].
pub fn is_clean(diags: &[Diagnostic]) -> bool {
    !has_errors(diags)
}

/// True when `diags` contains at least one [`Severity::Error`].
pub fn has_errors(diags: &[Diagnostic]) -> bool {
    diags.iter().any(|d| d.severity == Severity::Error)
}

/// Sorts diagnostics for presentation: by source position, then by
/// severity (errors first), then by code.
pub fn sort(diags: &mut [Diagnostic]) {
    diags.sort_by(|a, b| {
        let pa = a.primary_span().map(|s| s.start).unwrap_or(usize::MAX);
        let pb = b.primary_span().map(|s| s.start).unwrap_or(usize::MAX);
        pa.cmp(&pb).then(b.severity.cmp(&a.severity)).then(a.code.0.cmp(b.code.0))
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn codes_are_unique_and_well_formed() {
        for (i, (code, _, summary)) in ALL_CODES.iter().enumerate() {
            assert!(code.0.starts_with("HA"), "{code}");
            assert_eq!(code.0.len(), 6, "{code}");
            assert!(!summary.is_empty());
            for (other, _, _) in &ALL_CODES[i + 1..] {
                assert_ne!(code.0, other.0, "duplicate code {code}");
            }
        }
    }

    #[test]
    fn severity_defaults_follow_code_table() {
        assert_eq!(Diagnostic::new(DIV_BY_ZERO, "x").severity, Severity::Error);
        assert_eq!(Diagnostic::new(UNUSED_VAR, "x").severity, Severity::Warning);
        assert_eq!(Diagnostic::new(DOMAIN_TOO_LARGE, "x").severity, Severity::Note);
    }

    #[test]
    fn builder_and_queries() {
        let d = Diagnostic::new(SELF_LINK, "msg")
            .in_option("QS")
            .with_label(Span::new(3, 7), "here")
            .with_note("why");
        assert_eq!(d.option, "QS");
        assert!(d.primary_span().unwrap().same_range(&Span::new(3, 7)));
        assert!(is_clean(std::slice::from_ref(&d)));
        assert!(has_errors(&[d, Diagnostic::new(DUP_OPTION, "x")]));
    }

    #[test]
    fn sort_orders_by_position_then_severity() {
        let mut diags = vec![
            Diagnostic::new(UNUSED_VAR, "late").with_label(Span::new(50, 51), ""),
            Diagnostic::new(DUP_OPTION, "early").with_label(Span::new(2, 3), ""),
            Diagnostic::new(SELF_LINK, "same spot").with_label(Span::new(2, 3), ""),
        ];
        sort(&mut diags);
        assert_eq!(diags[0].message, "early");
        assert_eq!(diags[1].message, "same spot");
        assert_eq!(diags[2].message, "late");
    }
}
