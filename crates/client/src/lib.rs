//! # Harmony client library
//!
//! The application-side runtime of Figure 5:
//!
//! ```text
//! harmony_startup(<unique id>, <use interrupts>)
//! harmony_bundle_setup("<bundle definition>")
//! void *harmony_add_variable("variable name", <default>, <type>)
//! harmony_wait_for_update()
//! harmony_end()
//! ```
//!
//! A Harmony-aware application connects, exports its bundles, declares
//! *Harmony variables*, and then periodically polls: "new values for
//! Harmony variables are buffered until a flushPendingVars() call is made…
//! The application process must periodically check the values of these
//! variables and take appropriate action" (§5).
//!
//! The library is generic over [`Transport`], so the same application code
//! runs against a real TCP server ([`harmony_proto::TcpTransport`]) or
//! in-process ([`harmony_proto::LocalTransport`]).

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

use std::collections::HashMap;
use std::io;
use std::sync::Arc;
use std::time::{Duration, Instant};

use harmony_proto::{Request, Response, Transport};
use harmony_rsl::Value;
use parking_lot::Mutex;

mod var;

pub use var::HarmonyVar;

/// How the application wants to learn about reconfigurations. The
/// prototype "uses a polling interface to detect changes" (§5);
/// `Interrupts` is accepted for source compatibility with the paper's
/// signature and currently behaves identically to `Polling`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum UpdateDelivery {
    /// Poll with [`HarmonyClient::poll`] / block with
    /// [`HarmonyClient::wait_for_update`].
    #[default]
    Polling,
    /// Reserved; behaves as `Polling`.
    Interrupts,
}

/// A connected Harmony-aware application instance.
///
/// Calls are *resilient*: when the transport reports a broken connection
/// the client reconnects (transport-specific backoff), re-establishes its
/// session with `reattach`, and retries the call once. If the server no
/// longer knows the instance (restart, lease expiry) the client falls back
/// to a fresh `startup` and replays its cached bundle scripts, so the
/// application only observes a changed [`instance_id`].
///
/// Dropping a client without calling [`end`] sends a best-effort `end` so
/// the server can release the allocation immediately instead of waiting
/// for the lease reaper.
///
/// [`instance_id`]: HarmonyClient::instance_id
/// [`end`]: HarmonyClient::end
#[derive(Debug)]
pub struct HarmonyClient<T: Transport> {
    transport: T,
    app: String,
    id: u64,
    vars: HashMap<String, Arc<Mutex<Value>>>,
    scripts: Vec<String>,
    ended: bool,
}

/// Errors that mean "the connection died", as opposed to "the server
/// answered and disagreed".
fn is_disconnect(e: &io::Error) -> bool {
    matches!(
        e.kind(),
        io::ErrorKind::UnexpectedEof
            | io::ErrorKind::ConnectionReset
            | io::ErrorKind::ConnectionAborted
            | io::ErrorKind::BrokenPipe
            | io::ErrorKind::NotConnected
    )
}

impl<T: Transport> HarmonyClient<T> {
    /// `harmony_startup`: registers with the Harmony server and receives a
    /// system-chosen instance id.
    ///
    /// # Errors
    ///
    /// Transport errors, or `InvalidData` when the server answers with
    /// something other than `registered`.
    ///
    /// # Examples
    ///
    /// ```
    /// use std::sync::Arc;
    /// use harmony_client::{HarmonyClient, UpdateDelivery};
    /// use harmony_core::{Controller, ControllerConfig};
    /// use harmony_proto::LocalTransport;
    /// use harmony_resources::Cluster;
    /// use parking_lot::RwLock;
    ///
    /// let cluster = Cluster::from_rsl(&harmony_rsl::listings::sp2_cluster(4))?;
    /// let shared = Arc::new(RwLock::new(Controller::new(cluster, ControllerConfig::default())));
    /// let client = HarmonyClient::startup(
    ///     LocalTransport::new(shared),
    ///     "bag",
    ///     UpdateDelivery::Polling,
    /// )?;
    /// assert_eq!(client.instance_name(), "bag.1");
    /// # Ok::<(), Box<dyn std::error::Error>>(())
    /// ```
    pub fn startup(mut transport: T, app: &str, _delivery: UpdateDelivery) -> io::Result<Self> {
        let resp = transport.call(&Request::Startup { app: app.to_owned() })?;
        match resp {
            Response::Registered { app, id } => Ok(HarmonyClient {
                transport,
                app,
                id,
                vars: HashMap::new(),
                scripts: Vec::new(),
                ended: false,
            }),
            other => Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("unexpected startup response: {other:?}"),
            )),
        }
    }

    /// Sends one request, transparently recovering from a dead connection:
    /// reconnect the transport, re-establish the session, retry once.
    fn call_resilient(&mut self, req: &Request) -> io::Result<Response> {
        match self.transport.call(req) {
            Ok(resp) => Ok(resp),
            Err(e) if is_disconnect(&e) => match self.transport.reconnect() {
                Ok(true) => {
                    self.reestablish()?;
                    self.transport.call(req)
                }
                // Transport cannot reconnect (or every attempt failed):
                // surface the original disconnect error.
                Ok(false) | Err(_) => Err(e),
            },
            Err(e) => Err(e),
        }
    }

    /// Re-establishes the session over a freshly reconnected transport.
    /// Prefers `reattach` (same instance id, server replays the chosen
    /// configuration as pending vars); if the server no longer knows the
    /// instance, falls back to a fresh `startup` and re-registers every
    /// cached bundle script.
    fn reestablish(&mut self) -> io::Result<()> {
        let resp =
            self.transport.call(&Request::Reattach { app: self.app.clone(), id: self.id })?;
        match resp {
            Response::Registered { .. } => return Ok(()),
            Response::Error { .. } => {} // unknown instance: fall through
            other => {
                return Err(io::Error::new(
                    io::ErrorKind::InvalidData,
                    format!("unexpected reattach response: {other:?}"),
                ));
            }
        }
        let resp = self.transport.call(&Request::Startup { app: self.app.clone() })?;
        let Response::Registered { app, id } = resp else {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("unexpected startup response: {resp:?}"),
            ));
        };
        self.app = app;
        self.id = id;
        for script in self.scripts.clone() {
            let resp = self.transport.call(&Request::Bundle {
                app: self.app.clone(),
                id: self.id,
                script,
            })?;
            if let Response::Error { message } = resp {
                return Err(io::Error::new(io::ErrorKind::InvalidInput, message));
            }
        }
        Ok(())
    }

    /// Mutable access to the underlying transport. Exists for fault
    /// injection: the deterministic harness wraps its in-process
    /// transport in `harmony_proto::ChaosTransport` and needs to queue
    /// faults (or kill the connection) between calls. Production code has
    /// no reason to reach through this.
    pub fn transport_mut(&mut self) -> &mut T {
        &mut self.transport
    }

    /// The application name this client registered under.
    pub fn app(&self) -> &str {
        &self.app
    }

    /// The system-chosen instance id.
    pub fn instance_id(&self) -> u64 {
        self.id
    }

    /// The fully qualified instance name (`DBclient.66`).
    pub fn instance_name(&self) -> String {
        format!("{}.{}", self.app, self.id)
    }

    /// `harmony_bundle_setup`: exports one bundle (RSL text). The server
    /// chooses the initial configuration before replying; poll afterwards
    /// to learn it.
    ///
    /// # Errors
    ///
    /// Transport errors; `InvalidInput` when the server rejects the bundle
    /// (parse error or unplaceable).
    pub fn bundle_setup(&mut self, script: &str) -> io::Result<()> {
        let resp = self.call_resilient(&Request::Bundle {
            app: self.app.clone(),
            id: self.id,
            script: script.to_owned(),
        })?;
        match resp {
            Response::Ok => {
                // Cache for replay after a fresh-startup recovery.
                if !self.scripts.iter().any(|s| s == script) {
                    self.scripts.push(script.to_owned());
                }
                Ok(())
            }
            Response::Error { message } => {
                Err(io::Error::new(io::ErrorKind::InvalidInput, message))
            }
            other => Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("unexpected bundle response: {other:?}"),
            )),
        }
    }

    /// `harmony_add_variable`: declares a variable through which Harmony
    /// communicates decisions. `name` is the namespace path *relative to
    /// this instance* — `"where"` tracks the chosen option of the `where`
    /// bundle; `"where.DS.client.memory"` tracks the memory granted to the
    /// DS client node. The returned handle is the paper's "pointer to the
    /// variable": it observes every update applied by [`poll`].
    ///
    /// Re-declaring a name returns a handle to the same variable.
    ///
    /// [`poll`]: HarmonyClient::poll
    pub fn add_variable(&mut self, name: &str, default: Value) -> HarmonyVar {
        let cell = self
            .vars
            .entry(name.to_owned())
            .or_insert_with(|| Arc::new(Mutex::new(default)))
            .clone();
        HarmonyVar::new(name.to_owned(), cell)
    }

    /// Polls the server once, applying buffered updates to declared
    /// variables. Returns the number of updates that matched a declared
    /// variable (unmatched updates are ignored — the application did not
    /// subscribe to them).
    ///
    /// # Errors
    ///
    /// Transport errors; `InvalidData` on a malformed response.
    pub fn poll(&mut self) -> io::Result<usize> {
        let resp = self.call_resilient(&Request::Poll { app: self.app.clone(), id: self.id })?;
        let Response::Update { updates, .. } = resp else {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                "expected update response to poll",
            ));
        };
        let prefix = format!("{}.{}.", self.app, self.id);
        let mut applied = 0;
        for u in updates {
            let Some(rel) = u.path.strip_prefix(&prefix) else { continue };
            if let Some(cell) = self.vars.get(rel) {
                *cell.lock() = u.value;
                applied += 1;
            }
        }
        Ok(applied)
    }

    /// `harmony_wait_for_update`: blocks until at least one declared
    /// variable changes or `timeout` elapses. Returns `true` when an
    /// update arrived.
    ///
    /// # Errors
    ///
    /// Propagates [`HarmonyClient::poll`] errors.
    pub fn wait_for_update(&mut self, timeout: Duration) -> io::Result<bool> {
        let deadline = Instant::now() + timeout;
        loop {
            if self.poll()? > 0 {
                return Ok(true);
            }
            if Instant::now() >= deadline {
                return Ok(false);
            }
            std::thread::sleep(Duration::from_millis(2));
        }
    }

    /// Reports a performance measurement under this instance's namespace
    /// (`<app>.<id>.<name>`), feeding the metric interface.
    ///
    /// # Errors
    ///
    /// Transport errors.
    pub fn report_metric(&mut self, name: &str, time: f64, value: f64) -> io::Result<()> {
        let resp = self.call_resilient(&Request::Metric {
            name: format!("{}.{}.{name}", self.app, self.id),
            time,
            value,
        })?;
        match resp {
            Response::Ok => Ok(()),
            other => Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("unexpected metric response: {other:?}"),
            )),
        }
    }

    /// Fetches a [`harmony_core::SystemSnapshot`] of the whole Harmony
    /// process — what is running where, at what predicted cost.
    ///
    /// # Errors
    ///
    /// Transport errors; `InvalidData` when the server's JSON payload does
    /// not parse.
    pub fn status(&mut self) -> io::Result<harmony_core::SystemSnapshot> {
        let resp = self.call_resilient(&Request::Status)?;
        match resp {
            Response::Status { json } => harmony_core::SystemSnapshot::from_json(&json)
                .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string())),
            other => Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("unexpected status response: {other:?}"),
            )),
        }
    }

    /// Tails the server's event journal from `cursor`: up to `max`
    /// entries, oldest first, plus the cursor to continue from (see
    /// [`harmony_core::JournalTail`]). Operators use this to trace why a
    /// decision happened (`harmonyctl trace`).
    ///
    /// # Errors
    ///
    /// Transport errors; `InvalidData` when the server's JSON payload does
    /// not parse.
    pub fn journal(&mut self, cursor: u64, max: u64) -> io::Result<harmony_core::JournalTail> {
        let resp = self.call_resilient(&Request::Journal { cursor, max })?;
        match resp {
            Response::Journal { json } => harmony_core::JournalTail::from_json(&json)
                .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string())),
            other => Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("unexpected journal response: {other:?}"),
            )),
        }
    }

    /// Fetches the server's one-shot metrics exposition: one
    /// `counter|gauge|histogram <name> ...` line per metric
    /// (`harmonyctl export`).
    ///
    /// # Errors
    ///
    /// Transport errors; `InvalidData` on an unexpected response.
    pub fn expo(&mut self) -> io::Result<String> {
        let resp = self.call_resilient(&Request::Expo)?;
        match resp {
            Response::Expo { text } => Ok(text),
            other => Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("unexpected expo response: {other:?}"),
            )),
        }
    }

    /// `harmony_end`: tells Harmony the application is terminating so its
    /// resources can be re-evaluated, and consumes the client.
    ///
    /// # Errors
    ///
    /// Transport errors; `NotFound` when the server no longer knows the
    /// instance.
    pub fn end(mut self) -> io::Result<()> {
        self.ended = true;
        let resp = self.call_resilient(&Request::End { app: self.app.clone(), id: self.id })?;
        match resp {
            Response::Ok => Ok(()),
            Response::Error { message } => Err(io::Error::new(io::ErrorKind::NotFound, message)),
            other => Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("unexpected end response: {other:?}"),
            )),
        }
    }

    /// Renews this instance's session lease without polling for updates.
    /// Applications that go long stretches between polls (e.g. a batch
    /// phase) should heartbeat within the server's lease duration or risk
    /// being reaped as dead.
    ///
    /// # Errors
    ///
    /// Transport errors; `NotFound` when the server no longer knows the
    /// instance (its lease already expired).
    pub fn heartbeat(&mut self) -> io::Result<()> {
        let resp =
            self.call_resilient(&Request::Heartbeat { app: self.app.clone(), id: self.id })?;
        match resp {
            Response::Ok => Ok(()),
            Response::Error { message } => Err(io::Error::new(io::ErrorKind::NotFound, message)),
            other => Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("unexpected heartbeat response: {other:?}"),
            )),
        }
    }
}

impl<T: Transport> Drop for HarmonyClient<T> {
    fn drop(&mut self) {
        if !self.ended {
            // Best-effort release so the server frees the allocation now
            // rather than when the lease reaper gets to it. No reconnect:
            // if the connection is already dead, the server's disconnect
            // handling and lease expiry cover cleanup.
            let _ = self.transport.call(&Request::End { app: self.app.clone(), id: self.id });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use harmony_core::{Controller, ControllerConfig};
    use harmony_proto::LocalTransport;
    use harmony_resources::Cluster;
    use std::sync::Arc as StdArc;

    fn local(nodes: usize) -> LocalTransport {
        let cluster = Cluster::from_rsl(&harmony_rsl::listings::sp2_cluster(nodes)).unwrap();
        LocalTransport::new(StdArc::new(parking_lot::RwLock::new(Controller::new(
            cluster,
            ControllerConfig::default(),
        ))))
    }

    fn local_coalescing(nodes: usize, window: f64) -> LocalTransport {
        let cluster = Cluster::from_rsl(&harmony_rsl::listings::sp2_cluster(nodes)).unwrap();
        let mut config = ControllerConfig::default();
        config.coalesce.window = window;
        LocalTransport::new(StdArc::new(parking_lot::RwLock::new(Controller::new(cluster, config))))
    }

    #[test]
    fn startup_assigns_instance() {
        let t = local(4);
        let client = HarmonyClient::startup(t.clone(), "bag", UpdateDelivery::Polling).unwrap();
        assert_eq!(client.app(), "bag");
        assert_eq!(client.instance_id(), 1);
        assert_eq!(client.instance_name(), "bag.1");
        let second = HarmonyClient::startup(t, "bag", UpdateDelivery::Polling).unwrap();
        assert_eq!(second.instance_id(), 2);
    }

    #[test]
    fn bundle_setup_and_variable_updates() {
        let t = local(8);
        let mut client = HarmonyClient::startup(t, "bag", UpdateDelivery::Polling).unwrap();
        let workers = client.add_variable("config.run.workerNodes", Value::Int(0));
        let option = client.add_variable("config", Value::Str("unset".into()));
        client.bundle_setup(harmony_rsl::listings::FIG2B_BAG).unwrap();
        // Nothing visible until the poll.
        assert_eq!(workers.get(), Value::Int(0));
        let applied = client.poll().unwrap();
        assert!(applied >= 2, "applied {applied}");
        assert_eq!(workers.get(), Value::Int(8));
        assert_eq!(option.get(), Value::Str("run".into()));
    }

    #[test]
    fn wait_for_update_times_out_when_quiet() {
        let t = local(8);
        let mut client = HarmonyClient::startup(t, "bag", UpdateDelivery::Polling).unwrap();
        client.add_variable("config", Value::Str("unset".into()));
        let got = client.wait_for_update(Duration::from_millis(10)).unwrap();
        assert!(!got);
    }

    #[test]
    fn wait_for_update_sees_reconfiguration() {
        let t = local(8);
        let ctl = t.controller();
        let mut client = HarmonyClient::startup(t, "bag", UpdateDelivery::Polling).unwrap();
        let workers = client.add_variable("config.run.workerNodes", Value::Int(0));
        client.bundle_setup(harmony_rsl::listings::FIG2B_BAG).unwrap();
        assert!(client.wait_for_update(Duration::from_millis(100)).unwrap());
        assert_eq!(workers.get(), Value::Int(8));
        // A competitor arrives; the controller shrinks us to 4 workers.
        {
            let mut ctl = ctl.write();
            let spec =
                harmony_rsl::schema::parse_bundle_script(harmony_rsl::listings::FIG2B_BAG).unwrap();
            ctl.register(spec).unwrap();
        }
        assert!(client.wait_for_update(Duration::from_millis(100)).unwrap());
        assert_eq!(workers.get(), Value::Int(4));
    }

    #[test]
    fn coalescing_defers_the_shrink_until_the_window_fires() {
        // With coalescing on, a rival's arrival marks the scheduler dirty
        // instead of re-evaluating inline: the incumbent keeps its 8
        // workers until the window fires, then the next poll delivers the
        // shrink to 4.
        let t = local_coalescing(8, 0.05);
        let ctl = t.controller();
        let mut client = HarmonyClient::startup(t, "bag", UpdateDelivery::Polling).unwrap();
        let workers = client.add_variable("config.run.workerNodes", Value::Int(0));
        client.bundle_setup(harmony_rsl::listings::FIG2B_BAG).unwrap();
        client.poll().unwrap();
        assert_eq!(workers.get(), Value::Int(8), "direct placement is still synchronous");
        // Settle the window the setup itself opened, so the rival below is
        // the only pending arrival.
        ctl.write().flush_scheduler().unwrap();
        {
            let mut ctl = ctl.write();
            let spec =
                harmony_rsl::schema::parse_bundle_script(harmony_rsl::listings::FIG2B_BAG).unwrap();
            ctl.register(spec).unwrap();
            assert_eq!(ctl.pending_decisions(), 1, "arrival deferred, not applied");
        }
        client.poll().unwrap();
        assert_eq!(workers.get(), Value::Int(8), "no shrink before the window fires");
        {
            let mut ctl = ctl.write();
            let records = ctl.flush_scheduler().unwrap();
            assert!(!records.is_empty(), "flushing the window settles the burst");
        }
        client.poll().unwrap();
        assert_eq!(workers.get(), Value::Int(4), "deferred shrink arrives on the next poll");
    }

    #[test]
    fn bad_bundle_is_invalid_input() {
        let t = local(2);
        let mut client = HarmonyClient::startup(t, "x", UpdateDelivery::Polling).unwrap();
        let err = client.bundle_setup("garbage {").unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidInput);
    }

    #[test]
    fn metrics_flow_to_the_registry() {
        let t = local(2);
        let ctl = t.controller();
        let mut client = HarmonyClient::startup(t, "db", UpdateDelivery::Polling).unwrap();
        client.report_metric("response_time", 1.0, 9.5).unwrap();
        let series = ctl.read().metrics().series("db.1.response_time").unwrap();
        assert_eq!(series.last().unwrap().value, 9.5);
    }

    #[test]
    fn end_releases_and_double_end_fails() {
        let t = local(8);
        let ctl = t.controller();
        let mut client = HarmonyClient::startup(t.clone(), "bag", UpdateDelivery::Polling).unwrap();
        client.bundle_setup(harmony_rsl::listings::FIG2B_BAG).unwrap();
        assert_eq!(ctl.read().cluster().total_tasks(), 8);
        client.end().unwrap();
        assert_eq!(ctl.read().cluster().total_tasks(), 0);
        // Ending an unknown instance is NotFound.
        let ghost = HarmonyClient::startup(t, "bag", UpdateDelivery::Polling).unwrap();
        let name = ghost.instance_name();
        ghost.end().unwrap();
        let mut again = HarmonyClient {
            transport: local(2),
            app: "bag".into(),
            id: 99,
            vars: HashMap::new(),
            scripts: Vec::new(),
            ended: false,
        };
        let err = again.transport.call(&Request::End { app: "bag".into(), id: 99 });
        assert!(matches!(err.unwrap(), Response::Error { .. }), "{name} gone");
    }

    #[test]
    fn status_snapshot_describes_the_system() {
        let t = local(8);
        let mut client = HarmonyClient::startup(t, "bag", UpdateDelivery::Polling).unwrap();
        client.bundle_setup(harmony_rsl::listings::FIG2B_BAG).unwrap();
        let snap = client.status().unwrap();
        assert_eq!(snap.apps.len(), 1);
        assert_eq!(snap.apps[0].instance, "bag.1");
        assert_eq!(snap.nodes.len(), 8);
        assert_eq!(snap.total_tasks(), 8);
        assert_eq!(snap.objective, 230.0);
    }

    #[test]
    fn journal_and_expo_surface_observability() {
        let t = local(8);
        let mut client = HarmonyClient::startup(t, "bag", UpdateDelivery::Polling).unwrap();
        client.bundle_setup(harmony_rsl::listings::FIG2B_BAG).unwrap();
        client.report_metric("response_time", 1.0, 9.5).unwrap();
        let tail = client.journal(0, 1000).unwrap();
        assert!(!tail.entries.is_empty());
        assert!(tail.entries.iter().any(|e| e.detail.starts_with("bundle-setup bag.1")));
        // Paging picks up where the first tail stopped.
        let rest = client.journal(tail.next_cursor, 1000).unwrap();
        assert!(rest.entries.is_empty(), "quiet system: nothing after the tail");
        let expo = client.expo().unwrap();
        assert!(expo.contains("histogram bag.1.response_time"), "got {expo}");
        assert!(expo.contains("counter controller.reevals"), "got {expo}");
    }

    #[test]
    fn non_finite_metric_report_is_an_error() {
        let t = local(2);
        let ctl = t.controller();
        let mut client = HarmonyClient::startup(t, "db", UpdateDelivery::Polling).unwrap();
        let err = client.report_metric("response_time", 1.0, f64::NAN).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        assert!(ctl.read().metrics().series("db.1.response_time").is_none(), "never recorded");
    }

    #[test]
    fn redeclaring_a_variable_shares_the_cell() {
        let t = local(8);
        let mut client = HarmonyClient::startup(t, "bag", UpdateDelivery::Polling).unwrap();
        let a = client.add_variable("config", Value::Str("a".into()));
        let b = client.add_variable("config", Value::Str("ignored-default".into()));
        assert_eq!(b.get(), Value::Str("a".into()));
        assert_eq!(a.name(), b.name());
    }
}
