//! Harmony variable handles.

use std::sync::Arc;

use harmony_rsl::Value;
use parking_lot::Mutex;

/// A handle to a Harmony variable — the Rust rendering of the paper's
/// "pointer to the variable returned by `harmony_add_variable()`". The
/// client's poll loop writes updates into the shared cell; the application
/// reads the current value whenever it reaches a natural reconfiguration
/// point.
///
/// Handles are cheap to clone and safe to read from any thread.
#[derive(Debug, Clone)]
pub struct HarmonyVar {
    name: String,
    cell: Arc<Mutex<Value>>,
}

impl HarmonyVar {
    pub(crate) fn new(name: String, cell: Arc<Mutex<Value>>) -> Self {
        HarmonyVar { name, cell }
    }

    /// The variable's instance-relative namespace path.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The current value (a clone of the cell's contents).
    pub fn get(&self) -> Value {
        self.cell.lock().clone()
    }

    /// The current value as a string, when it is one.
    pub fn as_str(&self) -> Option<String> {
        self.cell.lock().as_str().map(str::to_owned)
    }

    /// The current value as an integer, when convertible.
    pub fn as_i64(&self) -> Option<i64> {
        self.cell.lock().as_i64().ok()
    }

    /// The current value as a float, when convertible.
    pub fn as_f64(&self) -> Option<f64> {
        self.cell.lock().as_f64().ok()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn handle_reads_shared_cell() {
        let cell = Arc::new(Mutex::new(Value::Int(1)));
        let var = HarmonyVar::new("config".into(), Arc::clone(&cell));
        assert_eq!(var.get(), Value::Int(1));
        *cell.lock() = Value::Str("DS".into());
        assert_eq!(var.as_str().as_deref(), Some("DS"));
        assert_eq!(var.name(), "config");
        // Clones observe the same cell.
        let clone = var.clone();
        *cell.lock() = Value::Float(2.5);
        assert_eq!(clone.as_f64(), Some(2.5));
        assert_eq!(clone.as_i64(), Some(2));
    }

    #[test]
    fn conversions_fail_gracefully() {
        let cell = Arc::new(Mutex::new(Value::Str("DS".into())));
        let var = HarmonyVar::new("x".into(), cell);
        assert_eq!(var.as_i64(), None);
        assert_eq!(var.as_f64(), None);
        assert_eq!(var.as_str().as_deref(), Some("DS"));
    }
}
