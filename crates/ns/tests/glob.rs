//! Namespace integration: the paper's §3.2 naming patterns end to end,
//! including the queries an adaptation controller actually issues.

use harmony_ns::{HPath, InstanceRegistry, Namespace};

fn populated() -> Namespace<String> {
    let mut ns = Namespace::new();
    let entries = [
        ("DBclient.66.where", "DS"),
        ("DBclient.66.where.DS.client.memory", "24"),
        ("DBclient.66.where.DS.server.memory", "20"),
        ("DBclient.67.where", "QS"),
        ("DBclient.67.where.QS.client.memory", "2"),
        ("bag.1.config", "run"),
        ("bag.1.config.run.workerNodes", "8"),
    ];
    for (p, v) in entries {
        ns.set(p.parse().unwrap(), v.to_string());
    }
    ns
}

#[test]
fn all_memory_grants_across_instances() {
    let ns = populated();
    // "Which memory did every DBclient instance get, whatever its option?"
    let hits = ns.query_glob(&"DBclient.*.where.*.client.memory".parse().unwrap());
    assert_eq!(hits.len(), 2);
    let values: Vec<&str> = hits.iter().map(|(_, v)| v.as_str()).collect();
    assert!(values.contains(&"24"));
    assert!(values.contains(&"2"));
}

#[test]
fn everything_under_one_instance() {
    let ns = populated();
    let hits = ns.iter_prefix(&"DBclient.66".parse().unwrap());
    assert_eq!(hits.len(), 3);
    let deep = ns.query_glob(&"DBclient.66.**".parse().unwrap());
    assert_eq!(deep.len(), 3);
}

#[test]
fn chosen_options_per_application() {
    let ns = populated();
    // Bundle-level values are exactly three components deep.
    let hits = ns.query_glob(&"*.*.*".parse().unwrap());
    let mut options: Vec<&str> = hits.iter().map(|(_, v)| v.as_str()).collect();
    options.sort_unstable();
    assert_eq!(options, vec!["DS", "QS", "run"]);
}

#[test]
fn departure_removes_exactly_one_instance() {
    let mut ns = populated();
    ns.remove_subtree(&"DBclient.66".parse().unwrap());
    assert_eq!(ns.query_glob(&"DBclient.**".parse().unwrap()).len(), 2);
    assert!(ns.get(&"DBclient.67.where".parse::<HPath>().unwrap()).is_some());
    assert!(ns.get(&"bag.1.config".parse::<HPath>().unwrap()).is_some());
}

#[test]
fn change_polling_scopes_to_an_instance() {
    let mut ns = populated();
    let mark = ns.seq();
    ns.set("DBclient.66.where".parse().unwrap(), "QS".to_string());
    ns.set("bag.1.config".parse().unwrap(), "run".to_string());
    let changed = ns.changed_since(mark);
    let prefix: HPath = "DBclient.66".parse().unwrap();
    let mine: Vec<_> = changed.iter().filter(|(p, _)| p.starts_with(&prefix)).collect();
    assert_eq!(mine.len(), 1);
    assert_eq!(mine[0].0.to_string(), "DBclient.66.where");
}

#[test]
fn instance_registry_reaches_the_papers_66() {
    let mut reg = InstanceRegistry::new();
    let mut last = 0;
    for _ in 0..66 {
        last = reg.allocate("DBclient");
    }
    assert_eq!(last, 66);
    assert_eq!(reg.allocate("bag"), 1, "ids are per-application");
}
