//! # Harmony namespace
//!
//! The hierarchical namespace of "Exposing Application Alternatives" §3.2:
//! a tree rooted at application instances through which the adaptation
//! controller and applications share information about instantiated
//! options and assigned resources. Fully qualified names look like
//!
//! ```text
//! DBclient.66.where.DS.client.memory
//! ```
//!
//! — application `DBclient`, system-chosen instance `66`, bundle `where`,
//! option `DS`, resource `client`, tag `memory`.
//!
//! The namespace is generic over its payload so different layers can store
//! what they need (RSL values in the controller, raw strings on the wire).
//! Mutations are stamped with sequence numbers so applications can poll
//! for Harmony's reconfigurations ([`Namespace::changed_since`]), matching
//! the prototype's polling interface (§5).

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod path;
mod tree;

pub use path::{HPath, ParsePathError};
pub use tree::{InstanceRegistry, Namespace};
