//! The hierarchical namespace tree.
//!
//! The root contains application instances; below them option bundles; below
//! those the resource requirements (nodes, links) and their tags (§3.2).
//! Both the adaptation controller and applications read and write this
//! shared structure, so every mutation is stamped with a monotonically
//! increasing sequence number: readers poll with [`Namespace::changed_since`]
//! to discover updates (the prototype's polling interface, §5).

use std::collections::BTreeMap;

use serde::{Deserialize, Serialize};

use crate::path::HPath;

/// One node of the namespace tree.
#[derive(Debug, Clone, Serialize, Deserialize)]
struct TreeNode<T> {
    value: Option<T>,
    /// Sequence number of the last mutation of this node's value.
    seq: u64,
    children: BTreeMap<String, TreeNode<T>>,
}

impl<T> Default for TreeNode<T> {
    fn default() -> Self {
        TreeNode { value: None, seq: 0, children: BTreeMap::new() }
    }
}

/// A hierarchical namespace mapping [`HPath`]s to values of type `T`.
///
/// Interior nodes may themselves carry values; setting a deep path creates
/// the intermediate nodes. Paths are ordered; iteration is depth-first in
/// component order.
///
/// # Examples
///
/// ```
/// use harmony_ns::{HPath, Namespace};
///
/// let mut ns: Namespace<i64> = Namespace::new();
/// let path: HPath = "DBclient.66.where.DS.client.memory".parse()?;
/// ns.set(path.clone(), 20);
/// assert_eq!(ns.get(&path), Some(&20));
/// # Ok::<(), harmony_ns::ParsePathError>(())
/// ```
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Namespace<T> {
    root: TreeNode<T>,
    next_seq: u64,
}

impl<T> Default for Namespace<T> {
    fn default() -> Self {
        Namespace { root: TreeNode::default(), next_seq: 1 }
    }
}

impl<T> Namespace<T> {
    /// Creates an empty namespace.
    pub fn new() -> Self {
        Self::default()
    }

    /// The sequence number that will be assigned to the *next* mutation.
    /// `changed_since(seq())` therefore returns only future changes.
    pub fn seq(&self) -> u64 {
        self.next_seq
    }

    fn node(&self, path: &HPath) -> Option<&TreeNode<T>> {
        let mut cur = &self.root;
        for c in path.components() {
            cur = cur.children.get(c)?;
        }
        Some(cur)
    }

    /// Sets the value at `path`, creating intermediate nodes, and returns
    /// the previous value if any.
    pub fn set(&mut self, path: HPath, value: T) -> Option<T> {
        let seq = self.next_seq;
        self.next_seq += 1;
        let mut cur = &mut self.root;
        for c in path.components() {
            cur = cur.children.entry(c.to_owned()).or_default();
        }
        cur.seq = seq;
        cur.value.replace(value)
    }

    /// Gets the value at `path`.
    pub fn get(&self, path: &HPath) -> Option<&T> {
        self.node(path)?.value.as_ref()
    }

    /// Gets a mutable reference to the value at `path` **without** bumping
    /// the sequence number; use [`Namespace::set`] for observable changes.
    pub fn get_mut(&mut self, path: &HPath) -> Option<&mut T> {
        let mut cur = &mut self.root;
        for c in path.components() {
            cur = cur.children.get_mut(c)?;
        }
        cur.value.as_mut()
    }

    /// True when a node exists at `path` (with or without a value).
    pub fn contains(&self, path: &HPath) -> bool {
        self.node(path).is_some()
    }

    /// Removes the entire subtree rooted at `path`, returning the value
    /// that was stored at `path` itself (if any). Removal is recorded as a
    /// mutation of the parent.
    pub fn remove_subtree(&mut self, path: &HPath) -> Option<T> {
        let last = path.last()?.to_owned();
        let parent_path = path.parent()?;
        let seq = self.next_seq;
        let mut cur = &mut self.root;
        for c in parent_path.components() {
            cur = cur.children.get_mut(c)?;
        }
        let removed = cur.children.remove(&last)?;
        cur.seq = seq;
        self.next_seq += 1;
        removed.value
    }

    /// Names of the direct children of `path`, in order.
    pub fn children(&self, path: &HPath) -> Vec<String> {
        match self.node(path) {
            Some(n) => n.children.keys().cloned().collect(),
            None => Vec::new(),
        }
    }

    /// Depth-first iteration over all `(path, value)` pairs.
    pub fn iter(&self) -> Vec<(HPath, &T)> {
        let mut out = Vec::new();
        Self::walk(&self.root, &HPath::root(), &mut out);
        out
    }

    fn walk<'a>(node: &'a TreeNode<T>, path: &HPath, out: &mut Vec<(HPath, &'a T)>) {
        if let Some(v) = &node.value {
            out.push((path.clone(), v));
        }
        for (name, child) in &node.children {
            let child_path = path.child(name).expect("stored component is valid");
            Self::walk(child, &child_path, out);
        }
    }

    /// All `(path, value)` pairs under `prefix` (inclusive).
    pub fn iter_prefix(&self, prefix: &HPath) -> Vec<(HPath, &T)> {
        match self.node(prefix) {
            Some(n) => {
                let mut out = Vec::new();
                Self::walk(n, prefix, &mut out);
                out
            }
            None => Vec::new(),
        }
    }

    /// All `(path, value)` pairs whose path matches the glob `pattern`
    /// (see [`HPath::matches_glob`]).
    pub fn query_glob(&self, pattern: &HPath) -> Vec<(HPath, &T)> {
        self.iter().into_iter().filter(|(p, _)| p.matches_glob(pattern)).collect()
    }

    /// Paths (with values) mutated at or after `seq`, paired with their
    /// mutation sequence numbers. This is the poll interface applications
    /// use to notice Harmony's reconfigurations.
    pub fn changed_since(&self, seq: u64) -> Vec<(HPath, u64)> {
        let mut out = Vec::new();
        Self::walk_changed(&self.root, &HPath::root(), seq, &mut out);
        out
    }

    fn walk_changed(node: &TreeNode<T>, path: &HPath, seq: u64, out: &mut Vec<(HPath, u64)>) {
        if node.seq >= seq && (node.value.is_some() || !path.is_empty()) {
            out.push((path.clone(), node.seq));
        }
        for (name, child) in &node.children {
            let child_path = path.child(name).expect("stored component is valid");
            Self::walk_changed(child, &child_path, seq, out);
        }
    }

    /// Number of values stored.
    pub fn len(&self) -> usize {
        self.iter().len()
    }

    /// True when no values are stored.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// Allocates system-chosen instance ids per application name (§3.2:
/// "application instances are two part names, consisting of an application
/// name and a system chosen instance id").
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct InstanceRegistry {
    next: BTreeMap<String, u64>,
}

impl InstanceRegistry {
    /// Creates an empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Returns a fresh instance id for `app`, starting from 1.
    pub fn allocate(&mut self, app: &str) -> u64 {
        let next = self.next.entry(app.to_owned()).or_insert(1);
        let id = *next;
        *next += 1;
        id
    }

    /// Number of ids handed out for `app`.
    pub fn count(&self, app: &str) -> u64 {
        self.next.get(app).map(|n| n - 1).unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(s: &str) -> HPath {
        s.parse().unwrap()
    }

    #[test]
    fn set_get_replace() {
        let mut ns = Namespace::new();
        assert_eq!(ns.set(p("a.b"), 1), None);
        assert_eq!(ns.set(p("a.b"), 2), Some(1));
        assert_eq!(ns.get(&p("a.b")), Some(&2));
        assert_eq!(ns.get(&p("a")), None); // interior node without value
        assert!(ns.contains(&p("a")));
        assert!(!ns.contains(&p("z")));
    }

    #[test]
    fn get_mut_does_not_bump_seq() {
        let mut ns = Namespace::new();
        ns.set(p("a"), 1);
        let seq = ns.seq();
        *ns.get_mut(&p("a")).unwrap() = 5;
        assert_eq!(ns.seq(), seq);
        assert_eq!(ns.get(&p("a")), Some(&5));
    }

    #[test]
    fn remove_subtree_drops_descendants() {
        let mut ns = Namespace::new();
        ns.set(p("app.1.b.opt"), 10);
        ns.set(p("app.1.b.opt.node"), 20);
        ns.set(p("app.2"), 30);
        assert_eq!(ns.remove_subtree(&p("app.1")), None); // no value at app.1 itself
        assert_eq!(ns.get(&p("app.1.b.opt")), None);
        assert_eq!(ns.get(&p("app.2")), Some(&30));
        assert_eq!(ns.remove_subtree(&p("missing.path")), None);
    }

    #[test]
    fn children_are_ordered() {
        let mut ns = Namespace::new();
        ns.set(p("r.c"), 1);
        ns.set(p("r.a"), 2);
        ns.set(p("r.b"), 3);
        assert_eq!(ns.children(&p("r")), vec!["a", "b", "c"]);
        assert!(ns.children(&p("zzz")).is_empty());
    }

    #[test]
    fn iteration_and_prefix() {
        let mut ns = Namespace::new();
        ns.set(p("a.x"), 1);
        ns.set(p("a.y"), 2);
        ns.set(p("b"), 3);
        let all: Vec<_> = ns.iter().into_iter().map(|(p, v)| (p.to_string(), *v)).collect();
        assert_eq!(all, vec![("a.x".to_string(), 1), ("a.y".to_string(), 2), ("b".to_string(), 3)]);
        let under_a = ns.iter_prefix(&p("a"));
        assert_eq!(under_a.len(), 2);
        assert_eq!(ns.len(), 3);
        assert!(!ns.is_empty());
    }

    #[test]
    fn glob_query() {
        let mut ns = Namespace::new();
        ns.set(p("DBclient.66.where.DS.client.memory"), 20);
        ns.set(p("DBclient.66.where.QS.client.memory"), 2);
        ns.set(p("bag.1.config.run.worker.memory"), 32);
        let hits = ns.query_glob(&p("DBclient.*.where.*.client.memory"));
        assert_eq!(hits.len(), 2);
        let hits = ns.query_glob(&p("DBclient.**"));
        assert_eq!(hits.len(), 2);
        let hits = ns.query_glob(&p("*.*.*.*.*.memory"));
        assert_eq!(hits.len(), 3);
    }

    #[test]
    fn changed_since_reports_only_new_mutations() {
        let mut ns = Namespace::new();
        ns.set(p("a"), 1);
        let mark = ns.seq();
        assert!(ns.changed_since(mark).is_empty());
        ns.set(p("b.c"), 2);
        let changed = ns.changed_since(mark);
        assert_eq!(changed.len(), 1);
        assert_eq!(changed[0].0, p("b.c"));
        // A removal shows up as a parent mutation.
        let mark = ns.seq();
        ns.remove_subtree(&p("b.c"));
        let changed = ns.changed_since(mark);
        assert_eq!(changed.len(), 1);
        assert_eq!(changed[0].0, p("b"));
    }

    #[test]
    fn instance_registry_allocates_per_app() {
        let mut reg = InstanceRegistry::new();
        assert_eq!(reg.allocate("DBclient"), 1);
        assert_eq!(reg.allocate("DBclient"), 2);
        assert_eq!(reg.allocate("bag"), 1);
        assert_eq!(reg.count("DBclient"), 2);
        assert_eq!(reg.count("bag"), 1);
        assert_eq!(reg.count("unknown"), 0);
    }

    #[test]
    fn default_namespace_is_empty() {
        let ns: Namespace<()> = Namespace::default();
        assert!(ns.is_empty());
        assert_eq!(ns.seq(), 1);
    }
}
