//! Dotted hierarchical paths.
//!
//! The paper (§3.2) names everything with dotted paths rooted at application
//! instances: `DBclient.66.where.DS.client.memory` is the memory allocated
//! to the client node of the data-shipping option of the `where` bundle of
//! instance 66 of `DBclient`.

use std::fmt;
use std::str::FromStr;

use serde::{Deserialize, Serialize};

/// Error returned when parsing an invalid path.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParsePathError {
    reason: String,
}

impl ParsePathError {
    fn new(reason: impl Into<String>) -> Self {
        ParsePathError { reason: reason.into() }
    }
}

impl fmt::Display for ParsePathError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid path: {}", self.reason)
    }
}

impl std::error::Error for ParsePathError {}

/// A dotted hierarchical name.
///
/// Components are non-empty strings without dots or whitespace. The empty
/// path (zero components) is the namespace root.
///
/// # Examples
///
/// ```
/// use harmony_ns::HPath;
///
/// let p: HPath = "DBclient.66.where.DS.client.memory".parse()?;
/// assert_eq!(p.len(), 6);
/// assert_eq!(p.first(), Some("DBclient"));
/// assert_eq!(p.last(), Some("memory"));
/// assert!(p.starts_with(&"DBclient.66".parse()?));
/// # Ok::<(), harmony_ns::ParsePathError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord, Default, Serialize, Deserialize)]
pub struct HPath {
    components: Vec<String>,
}

impl HPath {
    /// The root path (no components).
    pub fn root() -> Self {
        HPath::default()
    }

    /// Builds a path from components.
    ///
    /// # Errors
    ///
    /// Rejects components that are empty or contain `.` or whitespace.
    pub fn from_components<I, S>(components: I) -> Result<Self, ParsePathError>
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        let mut out = Vec::new();
        for c in components {
            let c = c.into();
            validate_component(&c)?;
            out.push(c);
        }
        Ok(HPath { components: out })
    }

    /// Number of components.
    pub fn len(&self) -> usize {
        self.components.len()
    }

    /// True for the root path.
    pub fn is_empty(&self) -> bool {
        self.components.is_empty()
    }

    /// The components as string slices.
    pub fn components(&self) -> impl Iterator<Item = &str> {
        self.components.iter().map(String::as_str)
    }

    /// First component.
    pub fn first(&self) -> Option<&str> {
        self.components.first().map(String::as_str)
    }

    /// Last component.
    pub fn last(&self) -> Option<&str> {
        self.components.last().map(String::as_str)
    }

    /// Component at `i`.
    pub fn get(&self, i: usize) -> Option<&str> {
        self.components.get(i).map(String::as_str)
    }

    /// The parent path, or `None` at the root.
    pub fn parent(&self) -> Option<HPath> {
        if self.components.is_empty() {
            None
        } else {
            Some(HPath { components: self.components[..self.components.len() - 1].to_vec() })
        }
    }

    /// Returns a new path with `component` appended.
    ///
    /// # Errors
    ///
    /// Rejects invalid components (see [`HPath::from_components`]).
    pub fn child(&self, component: &str) -> Result<HPath, ParsePathError> {
        validate_component(component)?;
        let mut components = self.components.clone();
        components.push(component.to_owned());
        Ok(HPath { components })
    }

    /// Concatenates two paths.
    pub fn join(&self, other: &HPath) -> HPath {
        let mut components = self.components.clone();
        components.extend(other.components.iter().cloned());
        HPath { components }
    }

    /// True when `prefix` is a (non-strict) prefix of this path.
    pub fn starts_with(&self, prefix: &HPath) -> bool {
        self.components.len() >= prefix.components.len()
            && self.components[..prefix.components.len()] == prefix.components[..]
    }

    /// The path relative to `prefix`, if `prefix` is a prefix.
    pub fn strip_prefix(&self, prefix: &HPath) -> Option<HPath> {
        if self.starts_with(prefix) {
            Some(HPath { components: self.components[prefix.components.len()..].to_vec() })
        } else {
            None
        }
    }

    /// Glob matching: `pattern` components must equal this path's
    /// components, except that a pattern component `*` matches any single
    /// component and a trailing `**` matches any remaining suffix
    /// (including none).
    ///
    /// # Examples
    ///
    /// ```
    /// use harmony_ns::HPath;
    /// let p: HPath = "DBclient.66.where.DS".parse()?;
    /// assert!(p.matches_glob(&"DBclient.*.where.DS".parse()?));
    /// assert!(p.matches_glob(&"DBclient.**".parse()?));
    /// assert!(!p.matches_glob(&"bag.*.where.DS".parse()?));
    /// # Ok::<(), harmony_ns::ParsePathError>(())
    /// ```
    pub fn matches_glob(&self, pattern: &HPath) -> bool {
        let pat = &pattern.components;
        let path = &self.components;
        if pat.last().map(String::as_str) == Some("**") {
            let head = &pat[..pat.len() - 1];
            if path.len() < head.len() {
                return false;
            }
            return head.iter().zip(path.iter()).all(|(p, c)| p == "*" || p == c);
        }
        pat.len() == path.len() && pat.iter().zip(path.iter()).all(|(p, c)| p == "*" || p == c)
    }
}

fn validate_component(c: &str) -> Result<(), ParsePathError> {
    if c.is_empty() {
        return Err(ParsePathError::new("empty component"));
    }
    if c.contains('.') {
        return Err(ParsePathError::new(format!("component `{c}` contains a dot")));
    }
    if c.contains(char::is_whitespace) {
        return Err(ParsePathError::new(format!("component `{c}` contains whitespace")));
    }
    Ok(())
}

impl FromStr for HPath {
    type Err = ParsePathError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        if s.is_empty() {
            return Ok(HPath::root());
        }
        HPath::from_components(s.split('.'))
    }
}

impl fmt::Display for HPath {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.components.join("."))
    }
}

impl<'a> FromIterator<&'a str> for HPath {
    /// Builds a path from components, panicking on invalid ones; prefer
    /// [`HPath::from_components`] for untrusted input.
    fn from_iter<T: IntoIterator<Item = &'a str>>(iter: T) -> Self {
        HPath::from_components(iter).expect("invalid path component")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(s: &str) -> HPath {
        s.parse().unwrap()
    }

    #[test]
    fn parse_and_display_round_trip() {
        let s = "DBclient.66.where.DS.client.memory";
        assert_eq!(p(s).to_string(), s);
        assert_eq!(p("").to_string(), "");
        assert_eq!(p("x").len(), 1);
    }

    #[test]
    fn rejects_bad_components() {
        assert!("a..b".parse::<HPath>().is_err());
        assert!(HPath::root().child("a.b").is_err());
        assert!(HPath::root().child("").is_err());
        assert!(HPath::root().child("a b").is_err());
    }

    #[test]
    fn parent_and_child() {
        let path = p("a.b.c");
        assert_eq!(path.parent(), Some(p("a.b")));
        assert_eq!(p("a").parent(), Some(HPath::root()));
        assert_eq!(HPath::root().parent(), None);
        assert_eq!(p("a.b").child("c").unwrap(), path);
    }

    #[test]
    fn join_and_strip() {
        assert_eq!(p("a.b").join(&p("c.d")), p("a.b.c.d"));
        assert_eq!(p("a.b.c").strip_prefix(&p("a.b")), Some(p("c")));
        assert_eq!(p("a.b.c").strip_prefix(&p("x")), None);
        assert_eq!(p("a").strip_prefix(&HPath::root()), Some(p("a")));
    }

    #[test]
    fn starts_with() {
        assert!(p("a.b.c").starts_with(&p("a.b")));
        assert!(p("a.b").starts_with(&p("a.b")));
        assert!(!p("a.b").starts_with(&p("a.b.c")));
        assert!(p("a").starts_with(&HPath::root()));
    }

    #[test]
    fn glob_matching() {
        assert!(p("a.b.c").matches_glob(&p("a.*.c")));
        assert!(!p("a.b.c").matches_glob(&p("a.*")));
        assert!(p("a.b.c").matches_glob(&p("a.**")));
        assert!(p("a").matches_glob(&p("**")));
        assert!(HPath::root().matches_glob(&p("**")));
        assert!(!p("a.b.c").matches_glob(&p("a.x.c")));
        assert!(p("a.b.c").matches_glob(&p("*.*.*")));
        assert!(!p("x.b").matches_glob(&p("a.**")));
    }

    #[test]
    fn accessors() {
        let path = p("app.66.bundle");
        assert_eq!(path.first(), Some("app"));
        assert_eq!(path.last(), Some("bundle"));
        assert_eq!(path.get(1), Some("66"));
        assert_eq!(path.get(9), None);
        assert_eq!(path.components().count(), 3);
    }

    #[test]
    fn ordering_is_lexicographic_by_component() {
        assert!(p("a.b") < p("a.c"));
        assert!(p("a") < p("a.b"));
    }

    #[test]
    fn from_iter_builds_paths() {
        let path: HPath = ["a", "b"].into_iter().collect();
        assert_eq!(path, p("a.b"));
    }
}
