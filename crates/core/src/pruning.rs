//! Facts-driven pruning of the joint optimizer.
//!
//! The abstract-interpretation facts engine in `harmony-analyze` proves
//! properties of a bundle from its declaration alone: interval bounds on
//! every expression site, assignments that can never win
//! ([`harmony_analyze::facts::dominance`]), and which bundles can ever
//! contend for the same machines
//! ([`harmony_analyze::facts::partition`]). This module turns those
//! proofs into a [`PruningPlan`] the exhaustive search consumes:
//!
//! * **dominated candidates** are dropped before enumeration;
//! * **capacity certificates** drop candidates that provably cannot match
//!   the base cluster (or any state reachable from it by committing other
//!   allocations);
//! * **static lower bounds** on each candidate's predicted response time
//!   feed the branch-and-bound scan;
//! * **interference components** split hostname-pinned bundles into
//!   independent sub-searches recombined exactly.
//!
//! Every claim is conservative: an evaluation error, an unbounded
//! interval, or an unpinned hostname forfeits the claim and the optimizer
//! falls back to the seed behavior for that candidate or pair. The
//! `Verify` mode of [`PruningMode`] runs the pruned and unpruned searches
//! side by side and demands bit-identical decisions.

use std::collections::{BTreeMap, BTreeSet};

use harmony_analyze::facts::dominance::dominated_assignments;
use harmony_analyze::facts::partition::options_footprint;
use harmony_analyze::facts::{aeval, Av, DomainEnv};
use harmony_resources::Cluster;
use harmony_rsl::expr::MapEnv;
use harmony_rsl::schema::{piecewise_linear, NodeReq, OptionSpec, PerfSpec, TagValue};
use harmony_rsl::Value;
use serde::{Deserialize, Serialize};

use crate::optimizer::{EvalCtx, PairCtx};

/// How the exhaustive optimizer uses statically proven facts.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub enum PruningMode {
    /// No pruning — the seed scan, unchanged.
    #[default]
    Off,
    /// Run the pruned and the unpruned search side by side and require
    /// bit-identical decisions
    /// ([`crate::CoreError::PruningMismatch`] otherwise). The unpruned
    /// result is the one applied.
    Verify,
    /// Trust the proofs: drop dominated candidates, certify unplaceable
    /// ones away, partition independent bundles, and bound-and-prune the
    /// scan.
    On,
}

impl PruningMode {
    /// Short stable name for metrics and experiment output.
    pub fn name(&self) -> &'static str {
        match self {
            PruningMode::Off => "off",
            PruningMode::Verify => "verify",
            PruningMode::On => "on",
        }
    }

    /// True when any pruning work happens at all.
    pub fn is_enabled(&self) -> bool {
        !matches!(self, PruningMode::Off)
    }
}

/// The statically derived plan for one joint search: which candidates
/// survive, their response-time lower bounds, and the independent
/// components of the pair set.
#[derive(Debug, Clone)]
pub struct PruningPlan {
    /// Per pair: surviving candidate indices, ascending. Indices refer to
    /// the pair's *original* candidate list, so assignments stay
    /// comparable with the unpruned search.
    pub kept: Vec<Vec<usize>>,
    /// Per pair: a sound response-time lower bound per kept candidate
    /// (aligned with `kept`), clamped to `[0, ∞)`.
    pub lbs: Vec<Vec<f64>>,
    /// Per pair: minimum of `lbs` (0 when no bound is claimed).
    pub min_lb: Vec<f64>,
    /// Pair indices grouped into independently optimizable components,
    /// each ascending, components ordered by first member. A single
    /// component means no partition was proven.
    pub components: Vec<Vec<usize>>,
    /// Candidates dropped because a provably better twin enumerates
    /// earlier.
    pub dominated_dropped: u64,
    /// Candidates dropped by a capacity certificate.
    pub infeasible_dropped: u64,
}

impl PruningPlan {
    /// Derives the plan for `ctx` from the facts engine. Never fails:
    /// anything unprovable is simply kept.
    pub fn build(ctx: &EvalCtx) -> PruningPlan {
        let mut kept = Vec::with_capacity(ctx.pairs.len());
        let mut lbs = Vec::with_capacity(ctx.pairs.len());
        let mut min_lb = Vec::with_capacity(ctx.pairs.len());
        let mut dominated_dropped = 0u64;
        let mut infeasible_dropped = 0u64;
        for pair in &ctx.pairs {
            let dominated = dominated_candidates(pair);
            let mut pair_kept = Vec::new();
            let mut pair_lbs = Vec::new();
            // Candidates differing only in elastic grant share a
            // certificate (feasibility never depends on the grant).
            let mut memo: BTreeMap<(usize, Vec<(String, i64)>), bool> = BTreeMap::new();
            for ci in 0..pair.candidates.len() {
                if dominated.contains(&ci) {
                    dominated_dropped += 1;
                    continue;
                }
                let oi = pair.opt_idx[ci];
                let key = (oi, pair.candidates[ci].vars.clone());
                let unplaceable = *memo.entry(key).or_insert_with(|| {
                    certified_unplaceable(&ctx.base, &pair.options[oi], &pair.envs[ci])
                });
                if unplaceable {
                    infeasible_dropped += 1;
                    continue;
                }
                pair_lbs.push(candidate_lb(pair, ci));
                pair_kept.push(ci);
            }
            let m = pair_lbs.iter().copied().fold(f64::INFINITY, f64::min);
            min_lb.push(if m.is_finite() { m } else { 0.0 });
            kept.push(pair_kept);
            lbs.push(pair_lbs);
        }
        let components = components_of(ctx);
        PruningPlan { kept, lbs, min_lb, components, dominated_dropped, infeasible_dropped }
    }

    /// Size of the pruned joint space (saturating).
    pub fn search_space(&self) -> u64 {
        self.kept
            .iter()
            .map(|k| k.len() as u64)
            .try_fold(1u64, u64::checked_mul)
            .unwrap_or(u64::MAX)
    }

    /// Total candidates dropped.
    pub fn dropped(&self) -> u64 {
        self.dominated_dropped + self.infeasible_dropped
    }
}

/// Candidates of `pair` that can never be part of a winning joint
/// assignment, per the dominance proofs of the facts engine.
///
/// A proof alone is not enough to drop under the optimizer's quantized
/// total order: the winner must also *enumerate earlier at the same
/// elastic grant*, because a strictly-better-but-later winner can land on
/// the same epsilon-quantized score key and then lose the lexicographic
/// tie-break to the loser it was meant to replace. Concrete proofs with a
/// negative winner time are ignored too — a negative predicted time makes
/// the winner infeasible ([`crate::Objective::score`] maps it to
/// infinity) while the loser may be feasible.
fn dominated_candidates(pair: &PairCtx) -> BTreeSet<usize> {
    let mut drop = BTreeSet::new();
    for opt in &pair.options {
        for proof in dominated_assignments(opt) {
            // `t < 0.0 || t.is_nan()` rather than `!(t >= 0.0)`: NaN must
            // also forfeit the proof.
            if proof.winner_time.map(|t| t < 0.0 || t.is_nan()).unwrap_or(false) {
                continue;
            }
            let mut winner = proof.winner.clone();
            winner.sort();
            let mut loser = proof.loser.clone();
            loser.sort();
            if winner == loser {
                continue;
            }
            for li in 0..pair.candidates.len() {
                let cand = &pair.candidates[li];
                if cand.option != proof.option || cand.vars != loser {
                    continue;
                }
                let earlier_winner = pair.candidates[..li].iter().any(|c| {
                    c.option == proof.option
                        && c.vars == winner
                        && c.elastic_extra == cand.elastic_extra
                });
                if earlier_winner {
                    drop.insert(li);
                }
            }
        }
    }
    drop
}

/// Minimum megabytes `req` demands, mirroring the matcher's rule
/// (`Any`, `<=`, or no tag bind no minimum). `None` on evaluation error.
fn min_memory(req: &NodeReq, env: &MapEnv) -> Option<f64> {
    match req.memory() {
        None | Some(TagValue::Any) | Some(TagValue::AtMost(_)) => Some(0.0),
        Some(v) => v.amount(env).ok(),
    }
}

/// Tag acceptance, `None` on evaluation error (absent tags accept all).
fn accepts(tag: Option<&TagValue>, attr: &Value, env: &MapEnv) -> Option<bool> {
    match tag {
        None => Some(true),
        Some(t) => t.accepts(attr, env).ok(),
    }
}

/// A capacity certificate: proof that `opt` under `env` can never match —
/// not on `base`, and not on any cluster state the joint search reaches
/// from it.
///
/// Sound because commits only make nodes *less* available (tasks and
/// exclusive holds grow, free memory shrinks) while the name, hostname,
/// OS, and speed a requirement filters on are immutable: a node eligible
/// on any reachable state is eligible on `base`. If some requirement has
/// fewer base-eligible nodes than its replica count, or the union of
/// eligible nodes is smaller than the total binding count (bindings are
/// distinct nodes), the matcher must report no-match every time.
///
/// Conservative on errors: any count, memory, or tag expression that
/// fails to evaluate forfeits the certificate, so candidates whose match
/// would *error* (rather than merely miss) keep their seed behavior. The
/// skip order mirrors the matcher's (exclusive and dedicated-busy nodes
/// are skipped before any tag is evaluated), and `base` evaluates tags on
/// a superset of the nodes any reachable state does, so a certificate
/// also proves the matcher's own evaluations cannot fail.
fn certified_unplaceable(base: &Cluster, opt: &OptionSpec, env: &MapEnv) -> bool {
    let mut union: BTreeSet<&str> = BTreeSet::new();
    let mut total: u64 = 0;
    for req in &opt.nodes {
        let Ok(count) = req.count.resolve(env) else { return false };
        let dedicated = match req.tag("dedicated") {
            None => false,
            Some(t) => match t.accepts(&Value::Int(1), env) {
                Ok(d) => d,
                Err(_) => return false,
            },
        };
        let Some(min_mem) = min_memory(req, env) else { return false };
        let mut eligible: u64 = 0;
        for state in base.nodes() {
            if state.exclusive > 0 || (dedicated && state.tasks > 0) {
                continue;
            }
            let host = Value::Str(state.decl.hostname.clone());
            let Some(h) = accepts(req.hostname(), &host, env) else { return false };
            let os = Value::Str(state.decl.os.clone());
            let Some(o) = accepts(req.os(), &os, env) else { return false };
            let speed = Value::Float(state.decl.speed);
            let Some(s) = accepts(req.tag("speed"), &speed, env) else { return false };
            if !(h && o && s) || state.free_memory < min_mem {
                continue;
            }
            eligible += 1;
            union.insert(state.decl.name.as_str());
        }
        if eligible < u64::from(count) {
            return true;
        }
        total += u64::from(count);
    }
    (union.len() as u64) < total
}

/// Total node bindings of `opt` under `env` (the `x` the points model
/// interpolates at), `None` on evaluation error.
fn total_bindings(opt: &OptionSpec, env: &MapEnv) -> Option<u64> {
    let mut total = 0u64;
    for req in &opt.nodes {
        total += u64::from(req.count.resolve(env).ok()?);
    }
    Some(total)
}

/// A sound lower bound on the candidate's predicted response time in any
/// *feasible* joint assignment that includes it, clamped to `[0, ∞)`
/// (feasible assignments have non-negative times — the objective maps
/// negative ones to infinity).
///
/// Both prediction models multiply their base time by a contention factor
/// of at least 1, so a lower bound on the base is a lower bound on the
/// prediction. For a points table the base is exact (piecewise-linear at
/// the resolved binding count); for an expression the interval
/// interpreter evaluates it under the candidate's point bindings, leaving
/// allocation-derived names unconstrained; the default model claims
/// nothing.
fn candidate_lb(pair: &PairCtx, ci: usize) -> f64 {
    let opt = &pair.options[pair.opt_idx[ci]];
    let lb = match &opt.performance {
        None => 0.0,
        Some(PerfSpec::Points(points)) => {
            if points.is_empty() {
                0.0
            } else {
                match total_bindings(opt, &pair.envs[ci]) {
                    Some(x) => piecewise_linear(points, x as f64),
                    None => 0.0,
                }
            }
        }
        Some(PerfSpec::Expr(e)) => {
            let env = DomainEnv::from_assignment(&pair.candidates[ci].vars);
            match aeval(e, &env) {
                Av::Num(iv) => iv.lo,
                Av::Any => 0.0,
            }
        }
    };
    if lb.is_finite() {
        lb.max(0.0)
    } else {
        0.0
    }
}

/// Groups the pairs of `ctx` into independently optimizable components by
/// hostname footprint: pairs whose footprints are disjoint can never
/// contend for a machine (a node has exactly one hostname), so their
/// sub-searches compose exactly. Any unpinned pair overlaps everything.
fn components_of(ctx: &EvalCtx) -> Vec<Vec<usize>> {
    let n = ctx.pairs.len();
    let feet: Vec<Option<BTreeSet<String>>> =
        ctx.pairs.iter().map(|p| options_footprint(&p.options)).collect();
    let mut parent: Vec<usize> = (0..n).collect();
    fn find(parent: &mut [usize], i: usize) -> usize {
        let mut r = i;
        while parent[r] != r {
            r = parent[r];
        }
        let mut c = i;
        while parent[c] != r {
            let next = parent[c];
            parent[c] = r;
            c = next;
        }
        r
    }
    for i in 0..n {
        for j in i + 1..n {
            let overlap = match (&feet[i], &feet[j]) {
                (None, _) | (_, None) => true,
                (Some(a), Some(b)) => a.intersection(b).next().is_some(),
            };
            if overlap {
                let (ri, rj) = (find(&mut parent, i), find(&mut parent, j));
                if ri != rj {
                    parent[ri.max(rj)] = ri.min(rj);
                }
            }
        }
    }
    let mut components: Vec<Vec<usize>> = Vec::new();
    let mut slot_of: Vec<Option<usize>> = vec![None; n];
    for i in 0..n {
        let r = find(&mut parent, i);
        let slot = match slot_of[r] {
            Some(s) => s,
            None => {
                components.push(Vec::new());
                slot_of[r] = Some(components.len() - 1);
                components.len() - 1
            }
        };
        components[slot].push(i);
    }
    components
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::controller::{Controller, ControllerConfig};
    use harmony_rsl::schema::parse_bundle_script;
    use proptest::prelude::*;

    fn ctx_for(scripts: &[&str], nodes: usize) -> EvalCtx {
        let cluster = Cluster::from_rsl(&harmony_rsl::listings::sp2_cluster(nodes)).unwrap();
        let mut c = Controller::new(cluster, ControllerConfig::default());
        for s in scripts {
            let _ = c.register(parse_bundle_script(s).unwrap());
        }
        EvalCtx::build(&mut c).unwrap()
    }

    #[test]
    fn fig2b_plan_keeps_everything_in_one_component() {
        let ctx = ctx_for(&[harmony_rsl::listings::FIG2B_BAG], 8);
        let plan = PruningPlan::build(&ctx);
        assert_eq!(plan.kept, vec![vec![0, 1, 2, 3]]);
        assert_eq!(plan.dropped(), 0);
        assert_eq!(plan.components, vec![vec![0]]);
        // Perf-table lower bounds are the exact curve values.
        assert_eq!(plan.lbs[0], vec![1200.0, 620.0, 340.0, 230.0]);
        assert_eq!(plan.min_lb, vec![230.0]);
    }

    #[test]
    fn dominated_candidates_are_dropped() {
        // `w` changes nothing but the predicted time: w=1 wins.
        let src = "harmonyBundle a b { {o {variable w {1 2 4}} \
                   {node n {seconds 100} {memory 16}} \
                   {performance {100 * w}}} }";
        let ctx = ctx_for(&[src], 4);
        let plan = PruningPlan::build(&ctx);
        assert_eq!(plan.kept, vec![vec![0]]);
        assert_eq!(plan.dominated_dropped, 2);
    }

    #[test]
    fn capacity_certificates_drop_oversized_demands() {
        // 8 replicas can never fit a 4-node cluster; 2 replicas can.
        let src = "harmonyBundle a b { {o {variable w {2 8}} \
                   {node n {replicate w} {seconds {1200 / w}} {memory 16}}} }";
        let ctx = ctx_for(&[src], 4);
        let plan = PruningPlan::build(&ctx);
        assert_eq!(plan.kept, vec![vec![0]]);
        assert_eq!(plan.infeasible_dropped, 1);
    }

    #[test]
    fn memory_certificates_respect_base_free_memory() {
        // sp2 nodes have 256 MB: a 300 MB demand is certified away, a
        // 200 MB one is kept.
        let src = "harmonyBundle a b { \
                   {small {node n {seconds 1} {memory 200}}} \
                   {big {node n {seconds 1} {memory 300}}} }";
        let ctx = ctx_for(&[src], 2);
        let plan = PruningPlan::build(&ctx);
        assert_eq!(plan.kept, vec![vec![0]]);
        assert_eq!(plan.infeasible_dropped, 1);
    }

    #[test]
    fn pinned_bundles_split_into_components() {
        let a = "harmonyBundle a b { {o {node n {seconds 1} {memory 16} {hostname node00.sp2}}} }";
        let b = "harmonyBundle b b { {o {node n {seconds 1} {memory 16} {hostname node01.sp2}}} }";
        let ctx = ctx_for(&[a, b], 4);
        let plan = PruningPlan::build(&ctx);
        assert_eq!(plan.components, vec![vec![0], vec![1]]);
    }

    #[test]
    fn unpinned_bundles_share_one_component() {
        let ctx = ctx_for(&[harmony_rsl::listings::FIG2B_BAG, harmony_rsl::listings::FIG2B_BAG], 8);
        let plan = PruningPlan::build(&ctx);
        assert_eq!(plan.components, vec![vec![0, 1]]);
    }

    #[test]
    fn pruning_mode_round_trips_and_defaults_off() {
        for mode in [PruningMode::Off, PruningMode::Verify, PruningMode::On] {
            let json = serde_json::to_string(&mode).unwrap();
            let back: PruningMode = serde_json::from_str(&json).unwrap();
            assert_eq!(back, mode);
        }
        assert_eq!(PruningMode::default(), PruningMode::Off);
        assert!(!PruningMode::Off.is_enabled());
        assert!(PruningMode::Verify.is_enabled());
        assert_eq!(PruningMode::On.name(), "on");
    }

    /// One randomized FIG2B-shaped bundle; half the time it carries a
    /// monotone performance expression (so dominance proofs can fire).
    fn random_script(i: usize, rng: &mut rand::rngs::StdRng) -> String {
        use rand::Rng;
        let all = [1usize, 2, 3, 4, 6, 8];
        let nchoices = rng.gen_range(1..=3usize);
        let mut choices: Vec<usize> = Vec::new();
        while choices.len() < nchoices {
            let c = all[rng.gen_range(0..all.len())];
            if !choices.contains(&c) {
                choices.push(c);
            }
        }
        choices.sort_unstable();
        let list = choices.iter().map(|c| c.to_string()).collect::<Vec<_>>().join(" ");
        let seconds = rng.gen_range(100..=2000u32);
        let memory = rng.gen_range(16..=160u32);
        let perf = if rng.gen_bool(0.5) {
            let k = rng.gen_range(10..=500u32);
            let body = if rng.gen_bool(0.5) { format!("{k} * w") } else { format!("{k} / w") };
            format!("{{performance {{{body}}}}}")
        } else {
            String::new()
        };
        format!(
            "harmonyBundle app{i}:1 config {{ {{run {{variable w {{{list}}}}} \
             {{node n {{replicate w}} {{seconds {{{seconds} / w}}}} \
             {{memory {memory}}}}} {perf}}} }}"
        )
    }

    proptest! {
        /// Interval soundness through the controller's own enumeration:
        /// every candidate `candidates::enumerate` produces evaluates each
        /// expression site to a value inside the statically proven
        /// interval for the option's whole choice domain.
        #[test]
        fn enumerated_candidates_evaluate_inside_static_intervals(seed in 0u64..120) {
            use harmony_analyze::facts::{aeval, DomainEnv};
            use harmony_rsl::expr::MapEnv;
            use harmony_rsl::schema::TagValue;
            use harmony_rsl::Value;
            use rand::SeedableRng;
            let mut rng = rand::rngs::StdRng::seed_from_u64(0x0001_47E0_0000 ^ seed);
            let script = random_script(0, &mut rng);
            let spec = parse_bundle_script(&script).unwrap();
            let candidates = crate::candidates::enumerate(&spec, &[]);
            for cand in &candidates {
                let opt = spec
                    .options
                    .iter()
                    .find(|o| o.name == cand.option)
                    .expect("candidate names a declared option");
                let domain = DomainEnv::from_option(opt);
                let mut env = MapEnv::new();
                for (name, value) in &cand.vars {
                    env.set(name, Value::Int(*value));
                }
                for node in &opt.nodes {
                    for (tag, tv) in &node.tags {
                        let TagValue::Expr(e) = tv else { continue };
                        let Some(iv) = aeval(e, &domain).interval() else { continue };
                        let Ok(v) = harmony_rsl::expr::eval(e, &env) else { continue };
                        let Ok(x) = v.as_f64() else { continue };
                        prop_assert!(
                            x >= iv.lo - 1e-9 && x <= iv.hi + 1e-9,
                            "seed {seed}: `{tag}` of `{}` = {x} outside [{}, {}] \
                             for vars {:?}",
                            node.name, iv.lo, iv.hi, cand.vars
                        );
                    }
                }
            }
        }

        /// Soundness of the plan itself: the best joint assignment of the
        /// full, unpruned enumeration only ever uses candidates the plan
        /// kept — nothing the facts engine drops can be part of an optimum.
        #[test]
        fn unpruned_best_is_never_pruned(seed in 0u64..120) {
            use rand::{Rng, SeedableRng};
            let mut rng = rand::rngs::StdRng::seed_from_u64(0xBE57_0000 ^ seed);
            let nodes = rng.gen_range(2..=6usize);
            let napps = rng.gen_range(1..=3usize);
            let scripts: Vec<String> =
                (0..napps).map(|i| random_script(i, &mut rng)).collect();
            let refs: Vec<&str> = scripts.iter().map(String::as_str).collect();
            let ctx = ctx_for(&refs, nodes);
            if ctx.is_empty() || ctx.search_space() > 2_000 {
                return Ok(());
            }
            let plan = PruningPlan::build(&ctx);
            let shape = ctx.shape();
            let mut inc = crate::optimizer::IncrementalEval::new(&ctx);
            let mut asg = vec![0usize; shape.len()];
            let mut best: Option<(i64, Vec<usize>)> = None;
            loop {
                if let Some(score) = inc.eval_score(&asg).unwrap() {
                    if let Some(key) = crate::optimizer::score_key(score) {
                        let better = match &best {
                            None => true,
                            Some((bk, basg)) => {
                                key < *bk || (key == *bk && asg < *basg)
                            }
                        };
                        if better {
                            best = Some((key, asg.clone()));
                        }
                    }
                }
                // Odometer, last pair fastest — the optimizer's order.
                let mut done = true;
                for d in (0..asg.len()).rev() {
                    asg[d] += 1;
                    if asg[d] < shape[d] {
                        done = false;
                        break;
                    }
                    asg[d] = 0;
                }
                if done {
                    break;
                }
            }
            if let Some((_, basg)) = best {
                for (d, slot) in basg.iter().enumerate() {
                    prop_assert!(
                        plan.kept[d].contains(slot),
                        "seed {seed}: optimal slot {slot} of pair {d} was pruned \
                         (kept: {:?})",
                        plan.kept[d]
                    );
                }
            }
        }
    }
}
