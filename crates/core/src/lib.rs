//! # Harmony core — the adaptation controller
//!
//! The primary contribution of "Exposing Application Alternatives"
//! (Keleher, Hollingsworth, Perković — ICDCS 1999): a centralized resource
//! manager to which applications export *tuning options* (bundles of
//! mutually exclusive configuration alternatives), and which chooses among
//! them to optimize a system-wide objective function.
//!
//! * [`Controller`] — registers applications, matches their bundles to the
//!   cluster, predicts performance, and applies the greedy
//!   one-bundle-at-a-time policy of §4.3 (with exhaustive and
//!   simulated-annealing joint optimizers for comparison in
//!   [`optimizer`]).
//! * [`Objective`] — the "single variable that represents the overall
//!   behavior of the system": min-average-completion-time by default.
//! * [`HarmonyEvent`] — the event-driven interface of the prototype (§5).
//! * Frictional costs, `granularity` rate limits, and elastic (`>=`)
//!   memory grants are all honored during candidate evaluation.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod app;
mod candidates;
mod controller;
mod error;
mod events;
pub mod feedback;
pub mod journal;
mod objective;
pub mod optimizer;
pub mod persist;
pub mod pruning;
mod scheduler;
mod session;
mod snapshot;

pub use app::{AppInstance, BundleState, ChosenConfig, InstanceId};
pub use candidates::{
    enumerate as enumerate_candidates, has_elastic_memory, variable_assignments, Candidate,
};
pub use controller::{
    Controller, ControllerConfig, DecisionRecord, LintMode, OptimizerKind, DEFAULT_EXHAUSTIVE_LIMIT,
};
pub use error::CoreError;
pub use events::{EventOutcome, HarmonyEvent};
pub use feedback::FeedbackConfig;
pub use journal::{EventJournal, JournalEntry, JournalKind, JournalTail, PhaseTimings};
pub use objective::Objective;
pub use persist::{PersistedState, RecoveryInfo, StateStore, WalEvent};
pub use pruning::{PruningMode, PruningPlan};
pub use scheduler::{CoalescePolicy, DecisionScheduler, SchedulerState};
pub use session::{LeaseConfig, RetireReason, RetirementRecord, SessionState};
pub use snapshot::{
    AppSnapshot, HistogramSnapshot, NodeSnapshot, OptimizerSnapshot, PersistenceSnapshot,
    SchedulerSnapshot, SessionSnapshot, SystemSnapshot,
};
