//! The controller's bounded event journal: decision provenance.
//!
//! Every externally visible occurrence — a [`HarmonyEvent`] arriving, a
//! lease retirement, a coalescing-scheduler fire, an applied decision —
//! appends one [`JournalEntry`] to a fixed-capacity ring with monotone
//! sequence numbers. Decisions record the seq numbers of the events they
//! settle (their *provenance*), so an operator can ask "why did `bag.3`
//! move to four workers?" and walk back to the burst of arrivals that
//! triggered the window.
//!
//! The ring is bounded: old entries are evicted, never the counters.
//! Readers tail it cursor-style ([`EventJournal::tail`]) and learn via
//! [`JournalTail::truncated`] when eviction outran them.
//!
//! [`HarmonyEvent`]: crate::HarmonyEvent

use std::collections::VecDeque;

use serde::{Deserialize, Serialize};

/// Default ring capacity: enough for minutes of heavy event traffic
/// without unbounded growth.
pub const DEFAULT_JOURNAL_CAPACITY: usize = 4096;

/// What kind of occurrence a journal entry records.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
#[serde(rename_all = "kebab-case")]
pub enum JournalKind {
    /// A Harmony event: startup, bundle setup, metric report, heartbeat,
    /// reattach, end, periodic tick, cluster membership change.
    Event,
    /// A session retirement (explicit end, lease expiry, disconnect).
    Retirement,
    /// A coalescing-scheduler window firing.
    SchedulerFire,
    /// An applied reconfiguration decision.
    Decision,
}

impl std::fmt::Display for JournalKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            JournalKind::Event => "event",
            JournalKind::Retirement => "retirement",
            JournalKind::SchedulerFire => "scheduler-fire",
            JournalKind::Decision => "decision",
        };
        f.write_str(s)
    }
}

/// One entry in the bounded event journal.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct JournalEntry {
    /// Monotone sequence number (never reused, survives eviction).
    pub seq: u64,
    /// Controller-clock time of the occurrence.
    pub time: f64,
    /// The kind of occurrence.
    pub kind: JournalKind,
    /// Human-readable description (`"bundle-setup bag.3 config"`).
    pub detail: String,
}

/// The result of tailing the journal from a cursor.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct JournalTail {
    /// Entries with `seq >= cursor`, oldest first, at most `max`.
    pub entries: Vec<JournalEntry>,
    /// Pass this as the next call's cursor to continue where this tail
    /// stopped.
    pub next_cursor: u64,
    /// True when entries between the cursor and the oldest retained entry
    /// were evicted before the reader got to them.
    pub truncated: bool,
}

impl JournalTail {
    /// Serializes to JSON for the wire.
    pub fn to_json(&self) -> String {
        serde_json::to_string(self).expect("journal tail serializes")
    }

    /// Parses the JSON produced by [`JournalTail::to_json`].
    ///
    /// # Errors
    ///
    /// Returns the underlying serde error on malformed input.
    pub fn from_json(json: &str) -> Result<Self, serde_json::Error> {
        serde_json::from_str(json)
    }
}

/// Per-phase wall timings (milliseconds) of the optimization pass that
/// produced a decision. Phases that did not run in a given pass stay at
/// zero (e.g. `pruning_ms` under the greedy policy).
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct PhaseTimings {
    /// Candidate enumeration (or memo-cache lookup).
    #[serde(default)]
    pub candidates_ms: f64,
    /// Prediction and hypothetical-environment construction: the summed
    /// per-candidate evaluation time.
    #[serde(default)]
    pub prediction_ms: f64,
    /// The search loop around the evaluations (scoring, comparison,
    /// best-tracking) — total search wall minus `prediction_ms`.
    #[serde(default)]
    pub optimization_ms: f64,
    /// Facts-based search-space pruning (exhaustive optimizer only).
    #[serde(default)]
    pub pruning_ms: f64,
    /// Committing the winner: allocation swap, namespace writes, record
    /// bookkeeping.
    #[serde(default)]
    pub commit_ms: f64,
}

/// A bounded ring of journal entries with monotone sequence numbers.
#[derive(Debug)]
pub struct EventJournal {
    entries: VecDeque<JournalEntry>,
    capacity: usize,
    next_seq: u64,
}

impl Default for EventJournal {
    fn default() -> Self {
        Self::new(DEFAULT_JOURNAL_CAPACITY)
    }
}

impl EventJournal {
    /// Creates an empty journal retaining at most `capacity` entries.
    ///
    /// # Panics
    ///
    /// Panics when `capacity` is zero.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "journal capacity must be positive");
        EventJournal { entries: VecDeque::with_capacity(capacity.min(1024)), capacity, next_seq: 0 }
    }

    /// Appends one entry, evicting the oldest when full. Returns the
    /// entry's sequence number.
    pub fn push(&mut self, time: f64, kind: JournalKind, detail: String) -> u64 {
        let seq = self.next_seq;
        self.next_seq += 1;
        if self.entries.len() == self.capacity {
            self.entries.pop_front();
        }
        self.entries.push_back(JournalEntry { seq, time, kind, detail });
        seq
    }

    /// Rebuilds a journal from persisted state: the retained entries (in
    /// seq order) and the next sequence number, so a recovered controller
    /// continues numbering exactly where the crashed one stopped.
    ///
    /// # Panics
    ///
    /// Panics when `capacity` is zero.
    pub fn restore(entries: Vec<JournalEntry>, next_seq: u64, capacity: usize) -> Self {
        assert!(capacity > 0, "journal capacity must be positive");
        let mut entries: VecDeque<JournalEntry> = entries.into();
        while entries.len() > capacity {
            entries.pop_front();
        }
        EventJournal { entries, capacity, next_seq }
    }

    /// The retained entries, oldest first (for snapshotting).
    pub fn entries(&self) -> impl Iterator<Item = &JournalEntry> {
        self.entries.iter()
    }

    /// The ring's capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Number of retained entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when nothing has been appended (or everything evicted).
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Sequence number of the oldest retained entry; equals
    /// [`EventJournal::next_seq`] when the ring is empty.
    pub fn first_seq(&self) -> u64 {
        self.entries.front().map_or(self.next_seq, |e| e.seq)
    }

    /// The sequence number the next push will get (= total entries ever
    /// appended).
    pub fn next_seq(&self) -> u64 {
        self.next_seq
    }

    /// Looks up a retained entry by sequence number.
    pub fn get(&self, seq: u64) -> Option<&JournalEntry> {
        let first = self.first_seq();
        if seq < first || seq >= self.next_seq {
            return None;
        }
        self.entries.get((seq - first) as usize)
    }

    /// Returns up to `max` entries with `seq >= cursor`, oldest first,
    /// with the cursor to continue from and whether eviction skipped
    /// entries the reader never saw.
    pub fn tail(&self, cursor: u64, max: usize) -> JournalTail {
        // A zero-size page is a pure no-op probe: it must not advance the
        // cursor past entries the reader never received, and an empty page
        // cannot meaningfully claim truncation (the reader learns about
        // eviction on the first page that actually skips entries).
        if max == 0 {
            return JournalTail { entries: Vec::new(), next_cursor: cursor, truncated: false };
        }
        let first = self.first_seq();
        let truncated = cursor < first;
        let start = cursor.max(first);
        let skip = (start - first) as usize;
        let entries: Vec<JournalEntry> =
            self.entries.iter().skip(skip).take(max).cloned().collect();
        // An empty tail continues from wherever the journal currently ends
        // (or from the caller's cursor if it is already ahead).
        let next_cursor = entries.last().map_or(self.next_seq.max(cursor), |e| e.seq + 1);
        JournalTail { entries, next_cursor, truncated }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sequences_are_monotone_and_survive_eviction() {
        let mut j = EventJournal::new(3);
        for i in 0..5 {
            let seq = j.push(i as f64, JournalKind::Event, format!("e{i}"));
            assert_eq!(seq, i);
        }
        assert_eq!(j.len(), 3);
        assert_eq!(j.first_seq(), 2);
        assert_eq!(j.next_seq(), 5);
        assert!(j.get(1).is_none(), "evicted");
        assert_eq!(j.get(2).unwrap().detail, "e2");
        assert_eq!(j.get(4).unwrap().detail, "e4");
        assert!(j.get(5).is_none(), "not yet written");
    }

    #[test]
    fn tail_pages_with_a_cursor() {
        let mut j = EventJournal::new(10);
        for i in 0..6 {
            j.push(i as f64, JournalKind::Event, format!("e{i}"));
        }
        let t1 = j.tail(0, 4);
        assert_eq!(t1.entries.len(), 4);
        assert!(!t1.truncated);
        assert_eq!(t1.next_cursor, 4);
        let t2 = j.tail(t1.next_cursor, 4);
        assert_eq!(t2.entries.len(), 2);
        assert_eq!(t2.next_cursor, 6);
        let t3 = j.tail(t2.next_cursor, 4);
        assert!(t3.entries.is_empty());
        assert_eq!(t3.next_cursor, 6, "idle cursor stays put");
    }

    #[test]
    fn tail_reports_truncation_after_wraparound() {
        let mut j = EventJournal::new(4);
        for i in 0..10 {
            j.push(i as f64, JournalKind::Event, format!("e{i}"));
        }
        // A reader parked at seq 0 lost entries 0..6 to eviction.
        let t = j.tail(0, 100);
        assert!(t.truncated);
        assert_eq!(t.entries.first().unwrap().seq, 6);
        assert_eq!(t.entries.len(), 4);
        // A reader already past the eviction horizon is not truncated.
        let t = j.tail(7, 100);
        assert!(!t.truncated);
        assert_eq!(t.entries.len(), 3);
    }

    #[test]
    fn zero_size_page_is_a_no_op_probe() {
        let mut j = EventJournal::new(4);
        for i in 0..10 {
            j.push(i as f64, JournalKind::Event, format!("e{i}"));
        }
        // Entries 0..6 are evicted. A max=0 probe from a stale cursor must
        // neither skip the unread entries (next_cursor jumps) nor claim
        // truncation on a page that delivered nothing.
        for cursor in [0u64, 3, 6, 9, 10, 25] {
            let t = j.tail(cursor, 0);
            assert!(t.entries.is_empty(), "cursor {cursor}");
            assert_eq!(t.next_cursor, cursor, "max=0 must not advance the cursor");
            assert!(!t.truncated, "empty page from cursor {cursor} claims truncation");
        }
        // The very next real page still reports the loss and delivers the
        // retained suffix — the probe lost no information.
        let t = j.tail(0, 100);
        assert!(t.truncated);
        assert_eq!(t.entries.first().unwrap().seq, 6);
    }

    #[test]
    fn cursor_at_the_eviction_horizon_reports_truncation_consistently() {
        let mut j = EventJournal::new(4);
        for i in 0..10 {
            j.push(i as f64, JournalKind::Event, format!("e{i}"));
        }
        // Retained: 6..=9. A cursor exactly at the oldest *evicted* seq
        // (5) lost entry 5 and must say so; a cursor exactly at the
        // oldest *retained* seq (6) lost nothing.
        let at_newest_evicted = j.tail(5, 100);
        assert!(at_newest_evicted.truncated, "cursor 5 never saw entry 5");
        assert_eq!(at_newest_evicted.entries.first().unwrap().seq, 6);
        let at_oldest_evicted = j.tail(0, 100);
        assert!(at_oldest_evicted.truncated);
        let at_first_retained = j.tail(6, 100);
        assert!(!at_first_retained.truncated, "cursor 6 missed nothing");
        assert_eq!(at_first_retained.entries.len(), 4);
        // The same cursors through a bounded page agree on the flag.
        assert!(j.tail(5, 1).truncated);
        assert!(!j.tail(6, 1).truncated);
    }

    #[test]
    fn empty_journal_tails_cleanly() {
        let j = EventJournal::new(4);
        let t = j.tail(0, 10);
        assert!(t.entries.is_empty());
        assert!(!t.truncated);
        assert_eq!(t.next_cursor, 0);
    }

    #[test]
    fn tail_json_round_trips() {
        let mut j = EventJournal::new(4);
        j.push(1.0, JournalKind::Decision, "decision bag.1 config -> run".into());
        let t = j.tail(0, 10);
        let back = JournalTail::from_json(&t.to_json()).unwrap();
        assert_eq!(back, t);
    }
}
