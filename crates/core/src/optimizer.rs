//! Joint optimizers beyond the paper's greedy pass.
//!
//! §4.3 concedes that greedy one-bundle-at-a-time optimization "will not
//! necessarily produce a globally optimal value". [`exhaustive`] searches
//! the full joint configuration space on small systems so the ablation
//! bench can measure the gap, and [`annealing`] is the stochastic search
//! the Active Harmony project later adopted.

use harmony_predict::{model_for_option, PredictionContext};
use harmony_resources::{Allocation, Cluster, Matcher};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::app::InstanceId;
use crate::candidates::{enumerate, Candidate};
use crate::controller::{Controller, DecisionRecord, OptimizerKind};
use crate::error::CoreError;

/// One optimizable unit: a bundle of an instance and its candidate set.
#[derive(Debug, Clone)]
struct Pair {
    id: InstanceId,
    bundle: String,
    candidates: Vec<Candidate>,
}

fn collect_pairs(c: &Controller) -> Vec<Pair> {
    let mut pairs = Vec::new();
    for id in c.arrival_order_internal() {
        let Some(app) = c.app_internal(id) else { continue };
        for b in &app.bundles {
            pairs.push(Pair {
                id: id.clone(),
                bundle: b.spec.name.clone(),
                candidates: enumerate(&b.spec, &c.config().elastic_steps),
            });
        }
    }
    pairs
}

/// Base cluster with every current allocation released.
fn released_cluster(c: &Controller) -> Result<Cluster, CoreError> {
    let mut cluster = c.cluster().clone();
    for id in c.arrival_order_internal() {
        let Some(app) = c.app_internal(id) else { continue };
        for alloc in app.allocations() {
            cluster.release(alloc)?;
        }
    }
    Ok(cluster)
}

/// Outcome of a placed joint assignment: objective score, per-bundle
/// allocations, and per-bundle predicted response times.
type JointOutcome = (f64, Vec<Allocation>, Vec<f64>);

/// A scored joint assignment: score, candidate index per pair, allocations,
/// and predicted response times.
type ScoredAssignment = (f64, Vec<usize>, Vec<Allocation>, Vec<f64>);

/// Evaluates one joint assignment: matches each pair's candidate on an
/// evolving clone and scores the result. Returns `None` when any candidate
/// fails to place.
fn eval_joint(
    c: &Controller,
    base: &Cluster,
    pairs: &[Pair],
    assignment: &[usize],
) -> Result<Option<JointOutcome>, CoreError> {
    let mut cluster = base.clone();
    let mut allocs = Vec::with_capacity(pairs.len());
    for (pair, &idx) in pairs.iter().zip(assignment) {
        let cand = &pair.candidates[idx];
        let app = c
            .app_internal(&pair.id)
            .ok_or_else(|| CoreError::UnknownInstance { name: pair.id.to_string() })?;
        let bundle = app
            .bundle(&pair.bundle)
            .ok_or_else(|| CoreError::UnknownBundle { name: pair.bundle.clone() })?;
        let opt = bundle
            .spec
            .option(&cand.option)
            .ok_or_else(|| CoreError::UnknownBundle { name: cand.option.clone() })?;
        let matcher =
            Matcher { strategy: c.config().matcher.strategy, elastic_extra: cand.elastic_extra };
        let alloc = match matcher.match_option(&cluster, opt, &cand.env()) {
            Ok(a) => a,
            Err(harmony_resources::ResourceError::NoMatch { .. }) => return Ok(None),
            Err(e) => return Err(e.into()),
        };
        cluster.commit(&alloc)?;
        allocs.push(alloc);
    }
    // Predict every pair on the final cluster.
    let mut rts = Vec::with_capacity(pairs.len());
    for ((pair, &idx), alloc) in pairs.iter().zip(assignment).zip(&allocs) {
        let cand = &pair.candidates[idx];
        let app = c.app_internal(&pair.id).expect("validated above");
        let bundle = app.bundle(&pair.bundle).expect("validated above");
        let opt = bundle.spec.option(&cand.option).expect("validated above");
        let ctx = PredictionContext::committed(&cluster, alloc, opt);
        let rt = match model_for_option(opt).predict(&ctx) {
            Ok(p) => p.response_time,
            Err(_) => f64::INFINITY,
        };
        rts.push(rt);
    }
    let score = c.config().objective.score(&rts);
    Ok(Some((score, allocs, rts)))
}

fn apply_joint(
    c: &mut Controller,
    pairs: &[Pair],
    assignment: &[usize],
    allocs: Vec<Allocation>,
    rts: &[f64],
) -> Result<Vec<DecisionRecord>, CoreError> {
    let mut records = Vec::new();
    for (((pair, &idx), alloc), &rt) in pairs.iter().zip(assignment).zip(allocs).zip(rts) {
        let cand = &pair.candidates[idx];
        if let Some(r) = c.force_choice(&pair.id, &pair.bundle, cand, alloc, rt)? {
            records.push(r);
        }
    }
    Ok(records)
}

/// Exhaustive search over the joint space.
///
/// # Errors
///
/// [`CoreError::SearchSpaceTooLarge`] when the product of candidate counts
/// exceeds `limit`; [`CoreError::Unplaceable`] when no joint assignment
/// places every bundle.
pub fn exhaustive(c: &mut Controller, limit: u64) -> Result<Vec<DecisionRecord>, CoreError> {
    let pairs = collect_pairs(c);
    if pairs.is_empty() {
        return Ok(Vec::new());
    }
    let size: u64 = pairs
        .iter()
        .map(|p| p.candidates.len() as u64)
        .try_fold(1u64, u64::checked_mul)
        .unwrap_or(u64::MAX);
    if size > limit {
        return Err(CoreError::SearchSpaceTooLarge { size, limit });
    }
    let base = released_cluster(c)?;
    let mut assignment = vec![0usize; pairs.len()];
    let mut best: Option<ScoredAssignment> = None;
    loop {
        if let Some((score, allocs, rts)) = eval_joint(c, &base, &pairs, &assignment)? {
            let better = best.as_ref().map(|(s, ..)| score < *s - 1e-9).unwrap_or(true);
            if better {
                best = Some((score, assignment.clone(), allocs, rts));
            }
        }
        // Odometer increment.
        let mut i = 0usize;
        loop {
            if i == pairs.len() {
                // Wrapped: enumeration complete.
                let Some((_, assign, allocs, rts)) = best else {
                    return Err(CoreError::Unplaceable {
                        bundle: pairs[0].bundle.clone(),
                        reason: "no joint assignment fits the cluster".into(),
                    });
                };
                return apply_joint(c, &pairs, &assign, allocs, &rts);
            }
            assignment[i] += 1;
            if assignment[i] < pairs[i].candidates.len() {
                break;
            }
            assignment[i] = 0;
            i += 1;
        }
    }
}

/// Simulated annealing over the joint space.
///
/// # Errors
///
/// [`CoreError::Unplaceable`] when not even a starting assignment places.
pub fn annealing(
    c: &mut Controller,
    steps: u32,
    initial_temperature: f64,
    seed: u64,
) -> Result<Vec<DecisionRecord>, CoreError> {
    let pairs = collect_pairs(c);
    if pairs.is_empty() {
        return Ok(Vec::new());
    }
    let base = released_cluster(c)?;
    let mut rng = StdRng::seed_from_u64(seed);

    // Find a feasible start: random restarts.
    let mut current: Option<ScoredAssignment> = None;
    for _ in 0..200 {
        let cand: Vec<usize> = pairs.iter().map(|p| rng.gen_range(0..p.candidates.len())).collect();
        if let Some((score, allocs, rts)) = eval_joint(c, &base, &pairs, &cand)? {
            current = Some((score, cand, allocs, rts));
            break;
        }
    }
    let Some(mut current) = current else {
        return Err(CoreError::Unplaceable {
            bundle: pairs[0].bundle.clone(),
            reason: "no feasible starting assignment found".into(),
        });
    };
    let mut best = current.clone();

    let mut temperature = initial_temperature.max(1e-6);
    let cooling = 0.98f64;
    for _ in 0..steps {
        let mut proposal = current.1.clone();
        let which = rng.gen_range(0..pairs.len());
        proposal[which] = rng.gen_range(0..pairs[which].candidates.len());
        if let Some((score, allocs, rts)) = eval_joint(c, &base, &pairs, &proposal)? {
            let delta = score - current.0;
            let accept = delta <= 0.0 || rng.gen::<f64>() < (-delta / temperature).exp();
            if accept {
                current = (score, proposal, allocs, rts);
                if current.0 < best.0 - 1e-9 {
                    best = current.clone();
                }
            }
        }
        temperature *= cooling;
    }
    let (_, assign, allocs, rts) = best;
    apply_joint(c, &pairs, &assign, allocs, &rts)
}

/// Runs the controller's configured optimizer over the whole system:
/// greedy delegates to [`Controller::reevaluate`]; the joint optimizers run
/// their searches.
///
/// # Errors
///
/// See [`exhaustive`] and [`annealing`].
pub fn optimize(c: &mut Controller) -> Result<Vec<DecisionRecord>, CoreError> {
    match c.config().optimizer {
        OptimizerKind::Greedy => c.reevaluate(),
        OptimizerKind::Exhaustive { limit } => exhaustive(c, limit),
        OptimizerKind::Annealing { steps, initial_temperature, seed } => {
            annealing(c, steps, initial_temperature, seed)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::controller::ControllerConfig;
    use harmony_rsl::listings::{sp2_cluster, FIG2B_BAG};
    use harmony_rsl::schema::parse_bundle_script;

    fn setup(napps: usize, nodes: usize) -> Controller {
        let cluster = Cluster::from_rsl(&sp2_cluster(nodes)).unwrap();
        let mut c = Controller::new(cluster, ControllerConfig::default());
        for _ in 0..napps {
            c.register(parse_bundle_script(FIG2B_BAG).unwrap()).unwrap();
        }
        c
    }

    #[test]
    fn exhaustive_matches_or_beats_greedy_on_two_bags() {
        let mut c = setup(2, 8);
        let greedy_score = c.objective_score();
        exhaustive(&mut c, 10_000).unwrap();
        assert!(c.objective_score() <= greedy_score + 1e-9);
        // Both bags at 4 workers is optimal: avg 340.
        assert_eq!(c.objective_score(), 340.0);
    }

    #[test]
    fn exhaustive_respects_limit() {
        let mut c = setup(3, 8);
        let err = exhaustive(&mut c, 10).unwrap_err();
        assert!(matches!(err, CoreError::SearchSpaceTooLarge { size: 64, limit: 10 }));
    }

    #[test]
    fn exhaustive_on_empty_system_is_noop() {
        let cluster = Cluster::from_rsl(&sp2_cluster(2)).unwrap();
        let mut c = Controller::new(cluster, ControllerConfig::default());
        assert!(exhaustive(&mut c, 100).unwrap().is_empty());
    }

    #[test]
    fn annealing_finds_a_good_point() {
        let mut c = setup(2, 8);
        annealing(&mut c, 300, 100.0, 42).unwrap();
        // SA should find the optimum on this tiny space.
        assert_eq!(c.objective_score(), 340.0);
    }

    #[test]
    fn annealing_is_reproducible_by_seed() {
        let mut a = setup(2, 8);
        let mut b = setup(2, 8);
        annealing(&mut a, 100, 50.0, 7).unwrap();
        annealing(&mut b, 100, 50.0, 7).unwrap();
        assert_eq!(a.objective_score(), b.objective_score());
    }

    #[test]
    fn optimize_dispatches_by_config() {
        let cluster = Cluster::from_rsl(&sp2_cluster(8)).unwrap();
        let cfg = ControllerConfig {
            optimizer: OptimizerKind::Exhaustive { limit: 10_000 },
            ..Default::default()
        };
        let mut c = Controller::new(cluster, cfg);
        c.register(parse_bundle_script(FIG2B_BAG).unwrap()).unwrap();
        c.register(parse_bundle_script(FIG2B_BAG).unwrap()).unwrap();
        optimize(&mut c).unwrap();
        assert_eq!(c.objective_score(), 340.0);
    }

    #[test]
    fn three_bags_on_eight_nodes_partition_fairly() {
        let mut c = setup(3, 8);
        exhaustive(&mut c, 100_000).unwrap();
        let mut workers: Vec<i64> =
            c.instances().iter().map(|id| c.choice(id, "config").unwrap().vars[0].1).collect();
        workers.sort_unstable();
        assert!(workers.iter().sum::<i64>() <= 8);
        // Equal-ish partitions (2+2+4 or 2+4+2 variants) beat starving one
        // app at 1 worker.
        assert!(workers[0] >= 2, "no app starved: {workers:?}");
    }
}
