//! Joint optimizers beyond the paper's greedy pass.
//!
//! §4.3 concedes that greedy one-bundle-at-a-time optimization "will not
//! necessarily produce a globally optimal value". [`exhaustive`] searches
//! the full joint configuration space, and [`annealing`] is the stochastic
//! search the Active Harmony project later adopted.
//!
//! Both are built for scale on top of three pieces:
//!
//! * [`EvalCtx`] — a self-contained snapshot of the search problem
//!   (candidate sets, option specs, the released base cluster, matcher
//!   strategy and objective) detached from the [`Controller`] so worker
//!   threads can share it immutably. Candidate sets come from the
//!   controller's memoized cache ([`Controller::cached_candidates`]), so
//!   repeated `optimize()` calls stop re-enumerating.
//! * [`IncrementalEval`] — scores assignments in odometer order reusing
//!   the shared prefix of already-committed allocations: only pairs from
//!   the first changed index are re-matched (commits are unwound by
//!   releasing, never by re-cloning the cluster).
//! * A deterministic total order on outcomes — epsilon-quantized score,
//!   then lowest lexicographic assignment — so the parallel partitioned
//!   search returns *bit-identical* decisions to the serial scan.
//!
//! Non-finite objective scores (failed predictions) are treated as
//! infeasible by every search: a joint assignment that cannot be predicted
//! is never committed as a "best" outcome.

use std::sync::Arc;
use std::time::Instant;

use harmony_predict::{model_for_option, PredictionContext, Predictor};
use harmony_resources::{Allocation, Cluster, Matcher, Strategy};
use harmony_rsl::expr::MapEnv;
use harmony_rsl::schema::OptionSpec;
use rand::rngs::StdRng;
use rand::Rng;

use crate::app::InstanceId;
use crate::candidates::Candidate;
use crate::controller::{Controller, DecisionRecord, OptimizerKind};
use crate::error::CoreError;
use crate::objective::Objective;
use crate::pruning::{PruningMode, PruningPlan};

/// Default number of annealing chains when the configuration says `0`.
pub const DEFAULT_CHAINS: u32 = 4;

/// Worker threads the parallel searches use by default (the `rayon` pool
/// size; set `RAYON_NUM_THREADS` to pin it).
pub fn current_workers() -> usize {
    rayon::current_num_threads()
}

/// Scores within this distance are considered tied (and broken by lowest
/// lexicographic assignment).
const SCORE_EPSILON: f64 = 1e-9;

/// One optimizable unit inside an [`EvalCtx`]: an instance's bundle, its
/// memoized candidate set, and the option spec behind each candidate.
/// Variable environments and performance models are precomputed once so
/// the hot evaluation loop never rebuilds them.
#[derive(Debug)]
pub(crate) struct PairCtx {
    id: InstanceId,
    bundle: String,
    pub(crate) candidates: Arc<Vec<Candidate>>,
    pub(crate) options: Vec<OptionSpec>,
    /// `opt_idx[i]` is the index into `options` of `candidates[i]`'s
    /// option.
    pub(crate) opt_idx: Vec<usize>,
    /// `envs[i]` is `candidates[i].env()`, precomputed.
    pub(crate) envs: Vec<MapEnv>,
    /// `models[j]` is the predictor for `options[j]`, precomputed.
    models: Vec<Box<dyn Predictor>>,
}

/// The outcome of one feasible joint assignment: objective score,
/// per-pair allocations, and per-pair predicted response times.
#[derive(Debug, Clone, PartialEq)]
pub struct JointOutcome {
    /// Objective score of the whole system under this assignment.
    pub score: f64,
    /// One allocation per pair, in pair order.
    pub allocs: Vec<Allocation>,
    /// Predicted response time per pair, in pair order.
    pub rts: Vec<f64>,
}

/// A self-contained joint-evaluation context: everything a search worker
/// needs, detached from the controller so threads can share it immutably.
#[derive(Debug)]
pub struct EvalCtx {
    pub(crate) pairs: Vec<PairCtx>,
    pub(crate) base: Cluster,
    strategy: Strategy,
    objective: Objective,
}

impl EvalCtx {
    /// Builds the context for the controller's current system: one pair
    /// per bundle in arrival order, candidate sets from the memoized
    /// cache, and the base cluster with every current allocation released.
    ///
    /// # Errors
    ///
    /// [`CoreError::UnknownBundle`] when a candidate references an option
    /// missing from its bundle; resource errors from releasing current
    /// allocations.
    pub fn build(c: &mut Controller) -> Result<EvalCtx, CoreError> {
        let order: Vec<InstanceId> = c.arrival_order_internal().to_vec();
        let mut pairs = Vec::new();
        for id in &order {
            let Some(app) = c.app_internal(id) else { continue };
            let names: Vec<String> = app.bundles.iter().map(|b| b.spec.name.clone()).collect();
            for bundle in names {
                let candidates = c
                    .cached_candidates(id, &bundle)
                    .ok_or_else(|| CoreError::UnknownBundle { name: bundle.clone() })?;
                let app = c.app_internal(id).expect("instance validated above");
                let spec = &app.bundle(&bundle).expect("bundle validated above").spec;
                let options = spec.options.clone();
                let opt_idx = candidates
                    .iter()
                    .map(|cand| {
                        options
                            .iter()
                            .position(|o| o.name == cand.option)
                            .ok_or_else(|| CoreError::UnknownBundle { name: cand.option.clone() })
                    })
                    .collect::<Result<Vec<usize>, CoreError>>()?;
                let envs = candidates.iter().map(Candidate::env).collect();
                let models = options.iter().map(|o| model_for_option(o)).collect();
                pairs.push(PairCtx {
                    id: id.clone(),
                    bundle,
                    candidates,
                    options,
                    opt_idx,
                    envs,
                    models,
                });
            }
        }
        let base = released_cluster(c)?;
        Ok(EvalCtx {
            pairs,
            base,
            strategy: c.config().matcher.strategy,
            objective: c.config().objective,
        })
    }

    /// Number of pairs (bundles) under joint optimization.
    pub fn len(&self) -> usize {
        self.pairs.len()
    }

    /// True when there is nothing to optimize.
    pub fn is_empty(&self) -> bool {
        self.pairs.is_empty()
    }

    /// Candidate count per pair (the odometer radices).
    pub fn shape(&self) -> Vec<usize> {
        self.pairs.iter().map(|p| p.candidates.len()).collect()
    }

    /// Size of the joint space (saturating at `u64::MAX`).
    pub fn search_space(&self) -> u64 {
        self.pairs
            .iter()
            .map(|p| p.candidates.len() as u64)
            .try_fold(1u64, u64::checked_mul)
            .unwrap_or(u64::MAX)
    }

    /// Matches pair `pi`'s candidate `ci` on `cluster` using the
    /// precomputed environment. `Ok(None)` when the candidate does not fit.
    fn match_pair(
        &self,
        cluster: &Cluster,
        pi: usize,
        ci: usize,
    ) -> Result<Option<Allocation>, CoreError> {
        let pair = &self.pairs[pi];
        let cand = &pair.candidates[ci];
        let opt = &pair.options[pair.opt_idx[ci]];
        let matcher = Matcher { strategy: self.strategy, elastic_extra: cand.elastic_extra };
        match matcher.match_option(cluster, opt, &pair.envs[ci]) {
            Ok(a) => Ok(Some(a)),
            Err(harmony_resources::ResourceError::NoMatch { .. }) => Ok(None),
            Err(e) => Err(e.into()),
        }
    }

    /// Predicts every pair on the final cluster with the precomputed
    /// models and cached allocation environments, writing response times
    /// into `rts`, and scores the system. `envs[i]` must be
    /// `allocs[i].env()` (the [`IncrementalEval`] keeps that stack).
    fn score_final_into(
        &self,
        cluster: &Cluster,
        assignment: &[usize],
        allocs: &[Allocation],
        envs: &[MapEnv],
        rts: &mut Vec<f64>,
    ) -> f64 {
        rts.clear();
        for (((pair, &ci), alloc), env) in self.pairs.iter().zip(assignment).zip(allocs).zip(envs) {
            let oi = pair.opt_idx[ci];
            let ctx = PredictionContext::committed_with_env(cluster, alloc, &pair.options[oi], env);
            let rt = match pair.models[oi].predict(&ctx) {
                Ok(p) => p.response_time,
                Err(_) => f64::INFINITY,
            };
            rts.push(rt);
        }
        self.objective.score(rts)
    }

    /// Reference evaluation with the seed implementation's cost profile:
    /// clones the base cluster, looks each candidate's option up by name,
    /// rebuilds its environment and performance model, matches every pair
    /// in order, and predicts on the final cluster. `Ok(None)` when any
    /// pair fails to place or the resulting score is non-finite (failed
    /// predictions are infeasible, not attractive).
    ///
    /// Kept deliberately un-memoized: it is both the correctness reference
    /// for [`IncrementalEval`] (the equivalence suite holds them equal)
    /// and the cost baseline the bench harness measures the rebuilt engine
    /// against.
    ///
    /// # Errors
    ///
    /// Resource errors other than a plain no-match.
    pub fn eval_fresh(&self, assignment: &[usize]) -> Result<Option<JointOutcome>, CoreError> {
        let mut cluster = self.base.clone();
        let mut allocs = Vec::with_capacity(self.pairs.len());
        for (pair, &ci) in self.pairs.iter().zip(assignment) {
            let cand = &pair.candidates[ci];
            let opt = pair
                .options
                .iter()
                .find(|o| o.name == cand.option)
                .ok_or_else(|| CoreError::UnknownBundle { name: cand.option.clone() })?;
            let matcher = Matcher { strategy: self.strategy, elastic_extra: cand.elastic_extra };
            let alloc = match matcher.match_option(&cluster, opt, &cand.env()) {
                Ok(a) => a,
                Err(harmony_resources::ResourceError::NoMatch { .. }) => return Ok(None),
                Err(e) => return Err(e.into()),
            };
            cluster.commit(&alloc)?;
            allocs.push(alloc);
        }
        let mut rts = Vec::with_capacity(self.pairs.len());
        for ((pair, &ci), alloc) in self.pairs.iter().zip(assignment).zip(&allocs) {
            let cand = &pair.candidates[ci];
            let opt = pair.options.iter().find(|o| o.name == cand.option).expect("checked above");
            let ctx = PredictionContext::committed(&cluster, alloc, opt);
            let rt = match model_for_option(opt).predict(&ctx) {
                Ok(p) => p.response_time,
                Err(_) => f64::INFINITY,
            };
            rts.push(rt);
        }
        let score = self.objective.score(&rts);
        if !score.is_finite() {
            return Ok(None);
        }
        Ok(Some(JointOutcome { score, allocs, rts }))
    }
}

/// Incremental joint evaluation: keeps one working cluster and the stack
/// of committed allocations; consecutive evaluations re-match only from
/// the first index whose candidate changed, unwinding deeper commits by
/// releasing them. Equivalent to [`EvalCtx::eval_fresh`] on every input
/// (the equivalence test suite holds them to that), but far cheaper when
/// assignments are visited in odometer order.
#[derive(Debug)]
pub struct IncrementalEval<'a> {
    ctx: &'a EvalCtx,
    cluster: Cluster,
    allocs: Vec<Allocation>,
    /// `allocs[i].env()`, computed once per commit and reused by every
    /// prediction that shares the prefix.
    envs: Vec<MapEnv>,
    /// Candidate index per committed depth (`allocs.len()` entries).
    committed: Vec<usize>,
    /// Response times of the last successful evaluation (reusable buffer).
    rts: Vec<f64>,
}

impl<'a> IncrementalEval<'a> {
    /// A fresh evaluator positioned at the empty prefix.
    pub fn new(ctx: &'a EvalCtx) -> Self {
        IncrementalEval {
            ctx,
            cluster: ctx.base.clone(),
            allocs: Vec::with_capacity(ctx.len()),
            envs: Vec::with_capacity(ctx.len()),
            committed: Vec::with_capacity(ctx.len()),
            rts: Vec::with_capacity(ctx.len()),
        }
    }

    /// Scores one full assignment without materializing an outcome,
    /// reusing the committed prefix shared with the previous call.
    /// `Ok(None)` exactly when [`EvalCtx::eval_fresh`] returns `Ok(None)`.
    ///
    /// # Errors
    ///
    /// Resource errors other than a plain no-match.
    pub fn eval_score(&mut self, assignment: &[usize]) -> Result<Option<f64>, CoreError> {
        debug_assert_eq!(assignment.len(), self.ctx.len());
        let mut keep = 0usize;
        while keep < self.committed.len() && self.committed[keep] == assignment[keep] {
            keep += 1;
        }
        while self.allocs.len() > keep {
            let alloc = self.allocs.pop().expect("stack non-empty");
            self.envs.pop();
            self.committed.pop();
            self.cluster.release(&alloc)?;
        }
        for (pi, &ci) in assignment.iter().enumerate().skip(keep) {
            match self.ctx.match_pair(&self.cluster, pi, ci)? {
                Some(a) => {
                    self.cluster.commit(&a)?;
                    self.envs.push(a.env());
                    self.allocs.push(a);
                    self.committed.push(ci);
                }
                // The partial prefix stays committed for the next call.
                None => return Ok(None),
            }
        }
        let score = self.ctx.score_final_into(
            &self.cluster,
            assignment,
            &self.allocs,
            &self.envs,
            &mut self.rts,
        );
        if !score.is_finite() {
            return Ok(None);
        }
        Ok(Some(score))
    }

    /// Materializes the outcome of the assignment just scored by
    /// [`IncrementalEval::eval_score`] (clones the committed allocations).
    fn snapshot(&self, score: f64) -> JointOutcome {
        JointOutcome { score, allocs: self.allocs.clone(), rts: self.rts.clone() }
    }

    /// Evaluates one full assignment, reusing the committed prefix shared
    /// with the previous call. Same result contract as
    /// [`EvalCtx::eval_fresh`].
    ///
    /// # Errors
    ///
    /// Resource errors other than a plain no-match.
    pub fn eval(&mut self, assignment: &[usize]) -> Result<Option<JointOutcome>, CoreError> {
        Ok(self.eval_score(assignment)?.map(|score| self.snapshot(score)))
    }
}

/// Base cluster with every current allocation released.
fn released_cluster(c: &Controller) -> Result<Cluster, CoreError> {
    let mut cluster = c.cluster().clone();
    for id in c.arrival_order_internal() {
        let Some(app) = c.app_internal(id) else { continue };
        for alloc in app.allocations() {
            cluster.release(alloc)?;
        }
    }
    Ok(cluster)
}

/// Epsilon-quantized score key: scores are snapped to a [`SCORE_EPSILON`]
/// grid so that "equal within epsilon" is a transitive, partition-safe
/// relation. `None` for non-finite (infeasible) scores.
pub(crate) fn score_key(score: f64) -> Option<i64> {
    if !score.is_finite() {
        return None;
    }
    Some((score.clamp(-9.0e9, 9.0e9) / SCORE_EPSILON).round() as i64)
}

/// A scored joint assignment, ordered by `(key, assignment)`.
#[derive(Debug, Clone)]
struct Best {
    key: i64,
    assignment: Vec<usize>,
    outcome: JointOutcome,
}

/// The deterministic total order: lower quantized score wins; on a tie the
/// lexicographically lowest assignment wins. This makes the merged result
/// of any partitioning of the search space identical to a serial scan.
fn improves(key: i64, assignment: &[usize], incumbent: &Option<Best>) -> bool {
    match incumbent {
        None => true,
        Some(b) => key < b.key || (key == b.key && assignment < b.assignment.as_slice()),
    }
}

/// Decodes a linear odometer index into an assignment (index 0 is the most
/// significant digit; the last pair varies fastest).
fn decode(mut linear: u64, shape: &[usize]) -> Vec<usize> {
    let mut assignment = vec![0usize; shape.len()];
    for i in (0..shape.len()).rev() {
        let radix = shape[i] as u64;
        assignment[i] = (linear % radix) as usize;
        linear /= radix;
    }
    assignment
}

/// Advances to the lexicographically next assignment. `false` on wrap.
fn advance(assignment: &mut [usize], shape: &[usize]) -> bool {
    for i in (0..assignment.len()).rev() {
        assignment[i] += 1;
        if assignment[i] < shape[i] {
            return true;
        }
        assignment[i] = 0;
    }
    false
}

/// Tallies of one worker's scan.
#[derive(Debug, Default, Clone, Copy)]
struct ScanStats {
    evals: u64,
    infeasible: u64,
}

/// A worker-filled result slot: one chain's best and its tallies.
type ChainSlot = Option<Result<(Option<Best>, ScanStats), CoreError>>;

/// Scans the linear range `[start, end)` of the odometer space with an
/// incremental evaluator, returning the range's best and its tallies.
fn scan_range(ctx: &EvalCtx, start: u64, end: u64) -> Result<(Option<Best>, ScanStats), CoreError> {
    let shape = ctx.shape();
    let mut assignment = decode(start, &shape);
    let mut eval = IncrementalEval::new(ctx);
    let mut best: Option<Best> = None;
    let mut stats = ScanStats::default();
    for _ in start..end {
        stats.evals += 1;
        match eval.eval_score(&assignment)? {
            Some(score) => {
                let key = score_key(score).expect("eval returns finite scores");
                if improves(key, &assignment, &best) {
                    best = Some(Best {
                        key,
                        assignment: assignment.clone(),
                        outcome: eval.snapshot(score),
                    });
                }
            }
            None => stats.infeasible += 1,
        }
        advance(&mut assignment, &shape);
    }
    Ok((best, stats))
}

fn apply_joint(
    c: &mut Controller,
    ctx: &EvalCtx,
    best: &Best,
) -> Result<Vec<DecisionRecord>, CoreError> {
    let mut records = Vec::new();
    for (((pair, &ci), alloc), &rt) in
        ctx.pairs.iter().zip(&best.assignment).zip(&best.outcome.allocs).zip(&best.outcome.rts)
    {
        let cand = &pair.candidates[ci];
        if let Some(r) = c.force_choice(&pair.id, &pair.bundle, cand, alloc.clone(), rt)? {
            records.push(r);
        }
    }
    Ok(records)
}

fn record_search_metrics(
    c: &mut Controller,
    kind: &str,
    stats: ScanStats,
    workers: usize,
    t0: Instant,
) {
    c.metrics.inc_counter("controller.optimizer.searches");
    c.metrics.add_counter("controller.optimizer.evals", stats.evals);
    c.metrics.add_counter("controller.optimizer.infeasible", stats.infeasible);
    c.metrics.set_gauge("controller.optimizer.workers", workers as f64);
    let wall = t0.elapsed().as_secs_f64();
    c.metrics.set_gauge("controller.optimizer.last_wall_ms", wall * 1e3);
    c.metrics.set_gauge(&format!("controller.optimizer.{kind}.last_wall_ms"), wall * 1e3);
    c.metrics.observe("controller.optimizer.wall", wall);
}

fn unplaceable(ctx: &EvalCtx, reason: &str) -> CoreError {
    let bundle = ctx.pairs.first().map(|p| p.bundle.clone()).unwrap_or_default();
    CoreError::Unplaceable { bundle, reason: reason.into() }
}

/// Full (unpruned) scan of the whole odometer space, split over up to
/// `workers` threads and merged in partition order (bit-identical to a
/// serial scan). Returns the best, the tallies, and the worker count
/// actually used.
fn joint_scan(
    ctx: &EvalCtx,
    size: u64,
    workers: usize,
) -> Result<(Option<Best>, ScanStats, usize), CoreError> {
    let workers = (workers.max(1) as u64).min(size);
    if workers <= 1 {
        let (best, stats) = scan_range(ctx, 0, size)?;
        return Ok((best, stats, 1));
    }
    let chunk = size.div_ceil(workers);
    let mut slots: Vec<ChainSlot> = (0..workers).map(|_| None).collect();
    rayon::scope(|s| {
        for (w, slot) in slots.iter_mut().enumerate() {
            s.spawn(move |_| {
                let start = w as u64 * chunk;
                let end = (start + chunk).min(size);
                *slot = Some(scan_range(ctx, start, end));
            });
        }
    });
    // Merge partition bests in partition order; the (key, assignment)
    // total order makes the result identical to one serial scan.
    let mut best: Option<Best> = None;
    let mut stats = ScanStats::default();
    for slot in slots {
        let (local, local_stats) = slot.expect("worker filled its slot")?;
        stats.evals += local_stats.evals;
        stats.infeasible += local_stats.infeasible;
        if let Some(b) = local {
            if improves(b.key, &b.assignment, &best) {
                best = Some(b);
            }
        }
    }
    Ok((best, stats, workers as usize))
}

/// Exhaustive search over the joint space, parallelized across
/// `rayon`-reported worker threads (set `RAYON_NUM_THREADS` to pin the
/// count). Decisions are bit-identical for every worker count.
///
/// # Errors
///
/// [`CoreError::SearchSpaceTooLarge`] when the product of candidate counts
/// exceeds `limit`; [`CoreError::Unplaceable`] when no joint assignment
/// places every bundle with a finite predicted score.
pub fn exhaustive(c: &mut Controller, limit: u64) -> Result<Vec<DecisionRecord>, CoreError> {
    exhaustive_with_workers(c, limit, rayon::current_num_threads())
}

/// [`exhaustive`] with an explicit worker count (1 forces the serial
/// scan). Exposed so the equivalence suite and the bench harness can pit
/// serial against parallel runs of the same search.
///
/// # Errors
///
/// Same conditions as [`exhaustive`].
pub fn exhaustive_with_workers(
    c: &mut Controller,
    limit: u64,
    workers: usize,
) -> Result<Vec<DecisionRecord>, CoreError> {
    let t0 = Instant::now();
    let ctx = EvalCtx::build(c)?;
    if ctx.is_empty() {
        return Ok(Vec::new());
    }
    let size = ctx.search_space();
    if size > limit {
        return Err(CoreError::SearchSpaceTooLarge { size, limit });
    }
    if size == 0 {
        return Err(unplaceable(&ctx, "a bundle enumerates no candidates"));
    }

    let (best, stats, workers) = joint_scan(&ctx, size, workers)?;

    record_search_metrics(c, "exhaustive", stats, workers, t0);
    let Some(best) = best else {
        return Err(unplaceable(&ctx, "no joint assignment fits the cluster"));
    };
    apply_joint(c, &ctx, &best)
}

/// Tallies of a pruned search: the usual scan stats plus the number of
/// joint assignments skipped by proof rather than evaluation.
#[derive(Debug, Default, Clone, Copy)]
struct PruneStats {
    scan: ScanStats,
    nodes_pruned: u64,
}

/// Quantized key of the objective over `prefix ++ mid ++ tail`, assembled
/// in `buf`.
fn bound_key(
    objective: &Objective,
    buf: &mut Vec<f64>,
    prefix: &[f64],
    mid: Option<f64>,
    tail: &[f64],
) -> Option<i64> {
    buf.clear();
    buf.extend_from_slice(prefix);
    if let Some(m) = mid {
        buf.push(m);
    }
    buf.extend_from_slice(tail);
    score_key(objective.score(buf))
}

/// Branch-and-bound depth-first scan of the whole pair set, visiting kept
/// candidates in lexicographic order.
///
/// The bound below a search node is the objective over: the committed
/// prefix's partial response times (each a lower bound on its final time —
/// later commits only *add* contention, and both prediction models are
/// monotone in it), the current candidate's static lower bound, and the
/// per-pair minimum static bounds of the remaining suffix. Every objective
/// is monotone nondecreasing per coordinate, and the epsilon quantization
/// is monotone, so a bound key no better than the incumbent's (`>=`)
/// proves the subtree cannot improve: DFS order makes every assignment in
/// it lexicographically greater than the incumbent, so quantized ties lose
/// the tie-break too.
struct BbScan<'a> {
    ctx: &'a EvalCtx,
    plan: &'a PruningPlan,
    /// `suffix[d]` = number of assignments below depth `d` (kept space).
    suffix: Vec<u64>,
    cluster: Cluster,
    allocs: Vec<Allocation>,
    envs: Vec<MapEnv>,
    /// Response time of each committed pair on the prefix cluster.
    partial_rts: Vec<f64>,
    assignment: Vec<usize>,
    best: Option<Best>,
    stats: PruneStats,
    /// Scratch for bound vectors.
    bound: Vec<f64>,
    /// Scratch for leaf response times.
    rts: Vec<f64>,
}

impl BbScan<'_> {
    fn bounded_out(&self, key: Option<i64>) -> bool {
        match (key, &self.best) {
            (Some(k), Some(b)) => k >= b.key,
            // Bounds are assembled from finite non-negative parts, so a
            // `None` (non-finite) key cannot occur; keep the subtree if it
            // somehow does.
            _ => false,
        }
    }

    fn dfs(&mut self, d: usize) -> Result<(), CoreError> {
        let ctx = self.ctx;
        let plan = self.plan;
        let n = ctx.pairs.len();
        if d == n {
            self.stats.scan.evals += 1;
            let mut rts = std::mem::take(&mut self.rts);
            let score = ctx.score_final_into(
                &self.cluster,
                &self.assignment,
                &self.allocs,
                &self.envs,
                &mut rts,
            );
            if score.is_finite() {
                let key = score_key(score).expect("finite score has a key");
                if improves(key, &self.assignment, &self.best) {
                    self.best = Some(Best {
                        key,
                        assignment: self.assignment.clone(),
                        outcome: JointOutcome {
                            score,
                            allocs: self.allocs.clone(),
                            rts: rts.clone(),
                        },
                    });
                }
            } else {
                self.stats.scan.infeasible += 1;
            }
            self.rts = rts;
            return Ok(());
        }
        let pair = &ctx.pairs[d];
        for (slot, &ci) in plan.kept[d].iter().enumerate() {
            if self.best.is_some() {
                let key = bound_key(
                    &ctx.objective,
                    &mut self.bound,
                    &self.partial_rts,
                    Some(plan.lbs[d][slot]),
                    &plan.min_lb[d + 1..],
                );
                if self.bounded_out(key) {
                    self.stats.nodes_pruned += self.suffix[d + 1];
                    continue;
                }
            }
            let Some(a) = ctx.match_pair(&self.cluster, d, ci)? else {
                self.stats.scan.infeasible += self.suffix[d + 1];
                continue;
            };
            self.cluster.commit(&a)?;
            let oi = pair.opt_idx[ci];
            let env = a.env();
            let pctx =
                PredictionContext::committed_with_env(&self.cluster, &a, &pair.options[oi], &env);
            let rt = match pair.models[oi].predict(&pctx) {
                Ok(p) => p.response_time,
                Err(_) => f64::INFINITY,
            };
            // Prediction errors are deterministic in the allocation and
            // its environment, and times only grow with later commits: a
            // failed, non-finite, or negative partial time is still one at
            // the leaf, where the objective maps it to infinity.
            if !(rt.is_finite() && rt >= 0.0) {
                self.stats.scan.infeasible += self.suffix[d + 1];
                self.cluster.release(&a)?;
                continue;
            }
            self.partial_rts.push(rt);
            self.envs.push(env);
            self.allocs.push(a);
            self.assignment.push(ci);
            // Sharper re-bound now that the pair's real partial time is in.
            let mut cut = false;
            if self.best.is_some() && d + 1 < n {
                let key = bound_key(
                    &ctx.objective,
                    &mut self.bound,
                    &self.partial_rts,
                    None,
                    &plan.min_lb[d + 1..],
                );
                cut = self.bounded_out(key);
            }
            if cut {
                self.stats.nodes_pruned += self.suffix[d + 1];
            } else {
                self.dfs(d + 1)?;
            }
            self.assignment.pop();
            let a = self.allocs.pop().expect("stack non-empty");
            self.envs.pop();
            self.partial_rts.pop();
            self.cluster.release(&a)?;
        }
        Ok(())
    }
}

/// Runs the branch-and-bound scan over the plan's kept candidates.
fn bb_scan(ctx: &EvalCtx, plan: &PruningPlan) -> Result<(Option<Best>, PruneStats), CoreError> {
    let n = ctx.pairs.len();
    if plan.kept.iter().any(|k| k.is_empty()) {
        return Ok((None, PruneStats::default()));
    }
    let mut suffix = vec![1u64; n + 1];
    for d in (0..n).rev() {
        suffix[d] = suffix[d + 1].saturating_mul(plan.kept[d].len() as u64);
    }
    let mut st = BbScan {
        ctx,
        plan,
        suffix,
        cluster: ctx.base.clone(),
        allocs: Vec::with_capacity(n),
        envs: Vec::with_capacity(n),
        partial_rts: Vec::with_capacity(n),
        assignment: Vec::with_capacity(n),
        best: None,
        stats: PruneStats::default(),
        bound: Vec::with_capacity(n),
        rts: Vec::with_capacity(n),
    };
    st.dfs(0)?;
    Ok((st.best, st.stats))
}

/// Enumerates the feasible sub-assignments of one interference component:
/// every combination of kept candidates for the component's pairs that
/// places (matched in ascending pair order) with all-finite non-negative
/// predicted times, on a cluster carrying *only* this component's commits.
///
/// By footprint locality — disjoint hostname pins mean disjoint node sets,
/// and the matcher and both predictors read only a pair's own nodes and
/// links — the allocations and times computed here are bit-identical to
/// the ones the full scan computes at any global assignment extending the
/// sub-assignment, and the all-finite filter coincides exactly with the
/// objective's infeasibility rule.
struct CompEnum<'a> {
    ctx: &'a EvalCtx,
    plan: &'a PruningPlan,
    comp: &'a [usize],
    cluster: Cluster,
    allocs: Vec<Allocation>,
    envs: Vec<MapEnv>,
    chosen: Vec<usize>,
    /// Feasible `(sub-assignment, response times)` rows, in sub-odometer
    /// order.
    out: Vec<(Vec<usize>, Vec<f64>)>,
    stats: ScanStats,
}

impl CompEnum<'_> {
    fn dfs(&mut self, k: usize) -> Result<(), CoreError> {
        let ctx = self.ctx;
        let comp = self.comp;
        if k == comp.len() {
            self.stats.evals += 1;
            let mut rts = Vec::with_capacity(comp.len());
            for (j, &pi) in comp.iter().enumerate() {
                let pair = &ctx.pairs[pi];
                let oi = pair.opt_idx[self.chosen[j]];
                let pctx = PredictionContext::committed_with_env(
                    &self.cluster,
                    &self.allocs[j],
                    &pair.options[oi],
                    &self.envs[j],
                );
                let rt = match pair.models[oi].predict(&pctx) {
                    Ok(p) => p.response_time,
                    Err(_) => f64::INFINITY,
                };
                if !(rt.is_finite() && rt >= 0.0) {
                    self.stats.infeasible += 1;
                    return Ok(());
                }
                rts.push(rt);
            }
            self.out.push((self.chosen.clone(), rts));
            return Ok(());
        }
        let pi = comp[k];
        for &ci in &self.plan.kept[pi] {
            let Some(a) = ctx.match_pair(&self.cluster, pi, ci)? else {
                self.stats.infeasible += 1;
                continue;
            };
            self.cluster.commit(&a)?;
            self.envs.push(a.env());
            self.allocs.push(a);
            self.chosen.push(ci);
            self.dfs(k + 1)?;
            self.chosen.pop();
            let a = self.allocs.pop().expect("stack non-empty");
            self.envs.pop();
            self.cluster.release(&a)?;
        }
        Ok(())
    }
}

/// Joint search by exact component recombination: each interference
/// component is enumerated independently ([`CompEnum`]), then the
/// cross-product of feasible sub-assignments is scored by composing the
/// per-component response times into full vectors — the same `f64` values
/// the full scan feeds the objective, so scores (and the quantized total
/// order) are bit-identical. The winner is materialized through the
/// canonical incremental evaluator.
fn component_scan(
    ctx: &EvalCtx,
    plan: &PruningPlan,
) -> Result<(Option<Best>, PruneStats), CoreError> {
    let n = ctx.pairs.len();
    let mut stats = PruneStats::default();
    if plan.kept.iter().any(|k| k.is_empty()) {
        return Ok((None, stats));
    }
    let mut lists: Vec<Vec<(Vec<usize>, Vec<f64>)>> = Vec::with_capacity(plan.components.len());
    for comp in &plan.components {
        let mut e = CompEnum {
            ctx,
            plan,
            comp,
            cluster: ctx.base.clone(),
            allocs: Vec::with_capacity(comp.len()),
            envs: Vec::with_capacity(comp.len()),
            chosen: Vec::with_capacity(comp.len()),
            out: Vec::new(),
            stats: ScanStats::default(),
        };
        e.dfs(0)?;
        stats.scan.evals += e.stats.evals;
        stats.scan.infeasible += e.stats.infeasible;
        if e.out.is_empty() {
            // No feasible sub-assignment for this component means no
            // feasible joint assignment at all.
            return Ok((None, stats));
        }
        lists.push(e.out);
    }
    let combos: u64 =
        lists.iter().map(|l| l.len() as u64).try_fold(1u64, u64::checked_mul).unwrap_or(u64::MAX);
    stats.nodes_pruned += plan.search_space().saturating_sub(combos);

    let mut idx = vec![0usize; lists.len()];
    let mut g_asg = vec![0usize; n];
    let mut g_rts = vec![0f64; n];
    let mut pick: Option<(i64, Vec<usize>)> = None;
    loop {
        for ((comp, list), &i) in plan.components.iter().zip(&lists).zip(&idx) {
            let (asg, rts) = &list[i];
            for (slot, &pi) in comp.iter().enumerate() {
                g_asg[pi] = asg[slot];
                g_rts[pi] = rts[slot];
            }
        }
        stats.scan.evals += 1;
        match score_key(ctx.objective.score(&g_rts)) {
            Some(key) => {
                let better = match &pick {
                    None => true,
                    Some((bk, ba)) => key < *bk || (key == *bk && g_asg < *ba),
                };
                if better {
                    pick = Some((key, g_asg.clone()));
                }
            }
            None => stats.scan.infeasible += 1,
        }
        let mut advanced = false;
        for i in (0..idx.len()).rev() {
            idx[i] += 1;
            if idx[i] < lists[i].len() {
                advanced = true;
                break;
            }
            idx[i] = 0;
        }
        if !advanced {
            break;
        }
    }
    let Some((_, asg)) = pick else {
        return Ok((None, stats));
    };
    let mut eval = IncrementalEval::new(ctx);
    match eval.eval(&asg)? {
        Some(outcome) => {
            let key = score_key(outcome.score).expect("eval returns finite scores");
            Ok((Some(Best { key, assignment: asg, outcome }), stats))
        }
        None => Ok((None, stats)),
    }
}

/// Dispatches the pruned search: two or more interference components
/// recombine exactly; a single component runs branch-and-bound.
fn pruned_search(
    ctx: &EvalCtx,
    plan: &PruningPlan,
) -> Result<(Option<Best>, PruneStats), CoreError> {
    if plan.components.len() >= 2 {
        component_scan(ctx, plan)
    } else {
        bb_scan(ctx, plan)
    }
}

/// `None` when the two results agree bit for bit, otherwise a description
/// of the divergence.
fn describe_divergence(unpruned: Option<&Best>, pruned: Option<&Best>) -> Option<String> {
    match (unpruned, pruned) {
        (None, None) => None,
        (Some(u), Some(p)) => {
            if u.key == p.key && u.assignment == p.assignment && u.outcome == p.outcome {
                None
            } else {
                Some(format!(
                    "unpruned chose {:?} (key {}, score {}), pruned chose {:?} (key {}, score {})",
                    u.assignment, u.key, u.outcome.score, p.assignment, p.key, p.outcome.score
                ))
            }
        }
        (Some(u), None) => {
            Some(format!("pruned search lost the winner {:?} (key {})", u.assignment, u.key))
        }
        (None, Some(p)) => {
            Some(format!("pruned search invented a winner {:?} (key {})", p.assignment, p.key))
        }
    }
}

/// Facts-pruned exhaustive search. `Verify` runs the pruned and unpruned
/// searches side by side, demands bit-identical results, and applies the
/// unpruned one; `On` trusts the pruned search, falling back to the full
/// scan when it proves the system unplaceable (so the reported error is
/// the seed's, word for word).
///
/// # Errors
///
/// The conditions of [`exhaustive`], plus [`CoreError::PruningMismatch`]
/// in `Verify` mode when the searches diverge.
pub fn exhaustive_pruned(
    c: &mut Controller,
    limit: u64,
    mode: PruningMode,
) -> Result<Vec<DecisionRecord>, CoreError> {
    if !mode.is_enabled() {
        return exhaustive(c, limit);
    }
    let t0 = Instant::now();
    let ctx = EvalCtx::build(c)?;
    if ctx.is_empty() {
        return Ok(Vec::new());
    }
    let size = ctx.search_space();
    if size > limit {
        return Err(CoreError::SearchSpaceTooLarge { size, limit });
    }
    if size == 0 {
        return Err(unplaceable(&ctx, "a bundle enumerates no candidates"));
    }
    let t_prune = Instant::now();
    let plan = PruningPlan::build(&ctx);
    c.metrics.observe("controller.phase.pruning", t_prune.elapsed().as_secs_f64());
    c.metrics.add_counter("controller.pruning.dominated_dropped", plan.dominated_dropped);
    c.metrics.add_counter("controller.pruning.infeasible_dropped", plan.infeasible_dropped);
    c.metrics.set_gauge("controller.pruning.components", plan.components.len() as f64);

    if mode == PruningMode::Verify {
        // The unpruned search runs first; its errors are the seed behavior
        // and propagate untouched.
        let (unpruned, mut stats, workers) = joint_scan(&ctx, size, rayon::current_num_threads())?;
        c.metrics.inc_counter("controller.pruning.verified");
        let pruned = pruned_search(&ctx, &plan);
        let divergence = match &pruned {
            Err(e) => Some(format!("pruned search failed: {e}")),
            Ok((p, _)) => describe_divergence(unpruned.as_ref(), p.as_ref()),
        };
        if let Ok((_, pstats)) = &pruned {
            stats.evals += pstats.scan.evals;
            stats.infeasible += pstats.scan.infeasible;
            c.metrics.add_counter("controller.pruning.nodes_pruned", pstats.nodes_pruned);
        }
        record_search_metrics(c, "exhaustive-verify", stats, workers, t0);
        if let Some(detail) = divergence {
            c.metrics.inc_counter("controller.pruning.mismatches");
            return Err(CoreError::PruningMismatch { detail });
        }
        let Some(best) = unpruned else {
            return Err(unplaceable(&ctx, "no joint assignment fits the cluster"));
        };
        return apply_joint(c, &ctx, &best);
    }

    match pruned_search(&ctx, &plan)? {
        (Some(best), pstats) => {
            c.metrics.add_counter("controller.pruning.nodes_pruned", pstats.nodes_pruned);
            record_search_metrics(c, "exhaustive-pruned", pstats.scan, 1, t0);
            apply_joint(c, &ctx, &best)
        }
        (None, pstats) => {
            // Nothing survived the pruned search. The proofs say the full
            // scan will find nothing either — but the *error* it reports
            // is part of the contract, so let it produce it.
            c.metrics.add_counter("controller.pruning.nodes_pruned", pstats.nodes_pruned);
            let (best, stats, workers) = joint_scan(&ctx, size, rayon::current_num_threads())?;
            record_search_metrics(c, "exhaustive-pruned", stats, workers, t0);
            let Some(best) = best else {
                return Err(unplaceable(&ctx, "no joint assignment fits the cluster"));
            };
            apply_joint(c, &ctx, &best)
        }
    }
}

/// The seed implementation's cost profile, retained as the perf baseline:
/// a serial scan that clones the base cluster and re-matches every pair
/// for every assignment (no prefix reuse, no parallelism). Returns the
/// same optimal score as [`exhaustive`]; the bench harness measures the
/// gap between the two.
///
/// # Errors
///
/// Same conditions as [`exhaustive`].
pub fn exhaustive_baseline(
    c: &mut Controller,
    limit: u64,
) -> Result<Vec<DecisionRecord>, CoreError> {
    let t0 = Instant::now();
    let ctx = EvalCtx::build(c)?;
    if ctx.is_empty() {
        return Ok(Vec::new());
    }
    let size = ctx.search_space();
    if size > limit {
        return Err(CoreError::SearchSpaceTooLarge { size, limit });
    }
    let shape = ctx.shape();
    let mut assignment = vec![0usize; shape.len()];
    let mut best: Option<Best> = None;
    let mut stats = ScanStats::default();
    for _ in 0..size {
        stats.evals += 1;
        match ctx.eval_fresh(&assignment)? {
            Some(outcome) => {
                let key = score_key(outcome.score).expect("eval returns finite scores");
                if improves(key, &assignment, &best) {
                    best = Some(Best { key, assignment: assignment.clone(), outcome });
                }
            }
            None => stats.infeasible += 1,
        }
        advance(&mut assignment, &shape);
    }
    record_search_metrics(c, "exhaustive-baseline", stats, 1, t0);
    let Some(best) = best else {
        return Err(unplaceable(&ctx, "no joint assignment fits the cluster"));
    };
    apply_joint(c, &ctx, &best)
}

/// Domain-separation constants for the two per-chain RNG streams.
const START_STREAM: u64 = 0x5354_4152_5453_4545; // "STARTSEE"
const WALK_STREAM: u64 = 0x5741_4c4b_5345_4544; // "WALKSEED"

/// The RNG that picks a chain's feasible starting assignment. Dedicated
/// sub-seed (`harmony_rng::sub_seed`, the shared splitmix64 composition —
/// bit-identical to the private copy that used to live here): however
/// many draws the start search burns, the walk stream is untouched, so
/// determinism tests can pin the walk independently.
fn start_rng(seed: u64, chain: u32) -> StdRng {
    harmony_rng::stream_rng(seed, START_STREAM, chain as u64)
}

/// The RNG that drives a chain's proposal walk.
fn walk_rng(seed: u64, chain: u32) -> StdRng {
    harmony_rng::stream_rng(seed, WALK_STREAM, chain as u64)
}

/// One annealing chain: feasible start from the dedicated start stream,
/// then `steps` proposals from the walk stream. Every step draws exactly
/// one proposal-index pair and one acceptance uniform, whether or not the
/// proposal is feasible, so the walk stream position is a pure function of
/// the step index.
fn run_chain(
    ctx: &EvalCtx,
    chain: u32,
    steps: u32,
    initial_temperature: f64,
    seed: u64,
) -> Result<(Option<Best>, ScanStats), CoreError> {
    let shape = ctx.shape();
    if shape.contains(&0) {
        return Ok((None, ScanStats::default()));
    }
    let mut stats = ScanStats::default();
    let mut eval = IncrementalEval::new(ctx);

    let mut start = start_rng(seed, chain);
    let mut found: Option<(f64, Vec<usize>)> = None;
    for _ in 0..200 {
        let assignment: Vec<usize> = shape.iter().map(|&n| start.gen_range(0..n)).collect();
        stats.evals += 1;
        match eval.eval_score(&assignment)? {
            Some(score) => {
                found = Some((score, assignment));
                break;
            }
            None => stats.infeasible += 1,
        }
    }
    let Some((mut cur_score, mut cur_asg)) = found else {
        return Ok((None, stats));
    };
    let mut best_key = score_key(cur_score).expect("eval returns finite scores");
    let mut best_asg = cur_asg.clone();

    let mut walk = walk_rng(seed, chain);
    let mut temperature = initial_temperature.max(1e-6);
    let cooling = 0.98f64;
    for _ in 0..steps {
        let which = walk.gen_range(0..shape.len());
        let idx = walk.gen_range(0..shape[which]);
        let accept_u: f64 = walk.gen();
        let prev = cur_asg[which];
        cur_asg[which] = idx;
        stats.evals += 1;
        match eval.eval_score(&cur_asg)? {
            Some(score) => {
                let delta = score - cur_score;
                if delta <= 0.0 || accept_u < (-delta / temperature).exp() {
                    cur_score = score;
                    let key = score_key(score).expect("eval returns finite scores");
                    if key < best_key || (key == best_key && cur_asg < best_asg) {
                        best_key = key;
                        best_asg.clone_from(&cur_asg);
                    }
                } else {
                    cur_asg[which] = prev;
                }
            }
            None => {
                stats.infeasible += 1;
                cur_asg[which] = prev;
            }
        }
        temperature *= cooling;
    }
    let outcome = eval.eval(&best_asg)?.expect("best assignment was feasible when visited");
    Ok((Some(Best { key: best_key, assignment: best_asg, outcome }), stats))
}

/// Simulated annealing over the joint space: `chains` independent chains
/// (each with its own start/walk sub-seeds derived from `seed`) run in
/// parallel and the best chain result is applied. Results are identical
/// for any worker-thread count, including `RAYON_NUM_THREADS=1`.
///
/// # Errors
///
/// [`CoreError::Unplaceable`] when no chain finds a feasible starting
/// assignment.
pub fn annealing(
    c: &mut Controller,
    steps: u32,
    initial_temperature: f64,
    seed: u64,
    chains: u32,
) -> Result<Vec<DecisionRecord>, CoreError> {
    annealing_with_workers(
        c,
        steps,
        initial_temperature,
        seed,
        chains,
        rayon::current_num_threads(),
    )
}

/// [`annealing`] with an explicit worker count. Chains are striped over
/// workers but keyed by chain index, so the merged result does not depend
/// on the worker count.
///
/// # Errors
///
/// Same conditions as [`annealing`].
pub fn annealing_with_workers(
    c: &mut Controller,
    steps: u32,
    initial_temperature: f64,
    seed: u64,
    chains: u32,
    workers: usize,
) -> Result<Vec<DecisionRecord>, CoreError> {
    let t0 = Instant::now();
    let ctx = EvalCtx::build(c)?;
    if ctx.is_empty() {
        return Ok(Vec::new());
    }
    let chains = if chains == 0 { DEFAULT_CHAINS } else { chains };
    let workers = workers.clamp(1, chains as usize);

    let mut slots: Vec<ChainSlot> = (0..chains).map(|_| None).collect();
    if workers <= 1 {
        for (chain, slot) in slots.iter_mut().enumerate() {
            *slot = Some(run_chain(&ctx, chain as u32, steps, initial_temperature, seed));
        }
    } else {
        // Stripe chains over workers; results are keyed by chain index so
        // the striping does not affect the merged outcome.
        let mut stripes: Vec<Vec<(usize, &mut ChainSlot)>> =
            (0..workers).map(|_| Vec::new()).collect();
        for (chain, slot) in slots.iter_mut().enumerate() {
            stripes[chain % workers].push((chain, slot));
        }
        rayon::scope(|s| {
            for stripe in stripes {
                let ctx = &ctx;
                s.spawn(move |_| {
                    for (chain, slot) in stripe {
                        *slot =
                            Some(run_chain(ctx, chain as u32, steps, initial_temperature, seed));
                    }
                });
            }
        });
    }

    let mut best: Option<Best> = None;
    let mut stats = ScanStats::default();
    for slot in slots {
        let (chain_best, chain_stats) = slot.expect("chain ran")?;
        stats.evals += chain_stats.evals;
        stats.infeasible += chain_stats.infeasible;
        if let Some(b) = chain_best {
            if improves(b.key, &b.assignment, &best) {
                best = Some(b);
            }
        }
    }

    record_search_metrics(c, "annealing", stats, workers, t0);
    let Some(best) = best else {
        return Err(unplaceable(&ctx, "no feasible starting assignment found"));
    };
    apply_joint(c, &ctx, &best)
}

/// Runs the controller's configured optimizer over the whole system:
/// greedy delegates to [`Controller::reevaluate`]; the joint optimizers run
/// their searches.
///
/// # Errors
///
/// See [`exhaustive`] and [`annealing`].
pub fn optimize(c: &mut Controller) -> Result<Vec<DecisionRecord>, CoreError> {
    match c.config().optimizer {
        OptimizerKind::Greedy => {
            c.metrics.inc_counter("controller.optimizer.searches");
            c.reevaluate()
        }
        OptimizerKind::Exhaustive { limit } => match c.config().pruning {
            PruningMode::Off => exhaustive(c, limit),
            mode => exhaustive_pruned(c, limit, mode),
        },
        OptimizerKind::Annealing { steps, initial_temperature, seed, chains } => {
            annealing(c, steps, initial_temperature, seed, chains)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::controller::{ControllerConfig, LintMode};
    use harmony_rsl::listings::{sp2_cluster, FIG2B_BAG};
    use harmony_rsl::schema::parse_bundle_script;

    fn setup(napps: usize, nodes: usize) -> Controller {
        let cluster = Cluster::from_rsl(&sp2_cluster(nodes)).unwrap();
        let mut c = Controller::new(cluster, ControllerConfig::default());
        for _ in 0..napps {
            c.register(parse_bundle_script(FIG2B_BAG).unwrap()).unwrap();
        }
        c
    }

    #[test]
    fn exhaustive_matches_or_beats_greedy_on_two_bags() {
        let mut c = setup(2, 8);
        let greedy_score = c.objective_score();
        exhaustive(&mut c, 10_000).unwrap();
        assert!(c.objective_score() <= greedy_score + 1e-9);
        // Both bags at 4 workers is optimal: avg 340.
        assert_eq!(c.objective_score(), 340.0);
    }

    #[test]
    fn exhaustive_respects_limit() {
        let mut c = setup(3, 8);
        let err = exhaustive(&mut c, 10).unwrap_err();
        assert!(matches!(err, CoreError::SearchSpaceTooLarge { size: 64, limit: 10 }));
    }

    #[test]
    fn exhaustive_on_empty_system_is_noop() {
        let cluster = Cluster::from_rsl(&sp2_cluster(2)).unwrap();
        let mut c = Controller::new(cluster, ControllerConfig::default());
        assert!(exhaustive(&mut c, 100).unwrap().is_empty());
    }

    #[test]
    fn annealing_finds_a_good_point() {
        let mut c = setup(2, 8);
        annealing(&mut c, 300, 100.0, 42, 4).unwrap();
        // SA should find the optimum on this tiny space.
        assert_eq!(c.objective_score(), 340.0);
    }

    #[test]
    fn annealing_is_reproducible_by_seed() {
        let mut a = setup(2, 8);
        let mut b = setup(2, 8);
        let ra = annealing(&mut a, 100, 50.0, 7, 3).unwrap();
        let rb = annealing(&mut b, 100, 50.0, 7, 3).unwrap();
        assert_eq!(ra, rb);
        assert_eq!(a.objective_score(), b.objective_score());
    }

    #[test]
    fn optimize_dispatches_by_config() {
        let cluster = Cluster::from_rsl(&sp2_cluster(8)).unwrap();
        let cfg = ControllerConfig {
            optimizer: OptimizerKind::Exhaustive { limit: 10_000 },
            ..Default::default()
        };
        let mut c = Controller::new(cluster, cfg);
        c.register(parse_bundle_script(FIG2B_BAG).unwrap()).unwrap();
        c.register(parse_bundle_script(FIG2B_BAG).unwrap()).unwrap();
        optimize(&mut c).unwrap();
        assert_eq!(c.objective_score(), 340.0);
    }

    #[test]
    fn three_bags_on_eight_nodes_partition_fairly() {
        let mut c = setup(3, 8);
        exhaustive(&mut c, 100_000).unwrap();
        let mut workers: Vec<i64> =
            c.instances().iter().map(|id| c.choice(id, "config").unwrap().vars[0].1).collect();
        workers.sort_unstable();
        assert!(workers.iter().sum::<i64>() <= 8);
        // Equal-ish partitions (2+2+4 or 2+4+2 variants) beat starving one
        // app at 1 worker.
        assert!(workers[0] >= 2, "no app starved: {workers:?}");
    }

    #[test]
    fn parallel_exhaustive_matches_serial() {
        let mut serial = setup(3, 8);
        let mut parallel = setup(3, 8);
        let rs = exhaustive_with_workers(&mut serial, 100_000, 1).unwrap();
        let rp = exhaustive_with_workers(&mut parallel, 100_000, 5).unwrap();
        assert_eq!(rs, rp);
        assert_eq!(serial.objective_score(), parallel.objective_score());
    }

    #[test]
    fn baseline_agrees_with_exhaustive() {
        let mut fast = setup(3, 8);
        let mut slow = setup(3, 8);
        let rf = exhaustive(&mut fast, 100_000).unwrap();
        let rb = exhaustive_baseline(&mut slow, 100_000).unwrap();
        assert_eq!(rf, rb);
    }

    #[test]
    fn annealing_identical_across_worker_counts() {
        let mut one = setup(2, 8);
        let mut many = setup(2, 8);
        let r1 = annealing_with_workers(&mut one, 200, 80.0, 11, 4, 1).unwrap();
        let rn = annealing_with_workers(&mut many, 200, 80.0, 11, 4, 4).unwrap();
        assert_eq!(r1, rn);
    }

    #[test]
    fn incremental_eval_matches_fresh_over_whole_space() {
        let mut c = setup(2, 4);
        let ctx = EvalCtx::build(&mut c).unwrap();
        let shape = ctx.shape();
        let mut inc = IncrementalEval::new(&ctx);
        let mut asg = vec![0usize; shape.len()];
        loop {
            assert_eq!(inc.eval(&asg).unwrap(), ctx.eval_fresh(&asg).unwrap(), "at {asg:?}");
            if !advance(&mut asg, &shape) {
                break;
            }
        }
        // Out-of-order revisits must also agree (prefix unwinding).
        for asg in [vec![3, 1], vec![0, 3], vec![3, 1], vec![2, 0]] {
            assert_eq!(inc.eval(&asg).unwrap(), ctx.eval_fresh(&asg).unwrap(), "at {asg:?}");
        }
    }

    /// Every candidate of this bundle predicts a negative running time
    /// (a constant negative performance expression), which
    /// [`Objective::score`] maps to `INFINITY`: every joint score is
    /// non-finite while every placement succeeds.
    const NEGATIVE_BAG: &str = "\
harmonyBundle negative:1 config {
  {run
    {variable workerNodes {1 2}}
    {node worker {replicate workerNodes} {seconds 100} {memory 32}}
    {performance {0 - 100}}}
}
";

    /// Regression: a joint assignment whose objective is `INFINITY` used to
    /// be recorded as a viable "best"; non-finite scores are infeasible.
    #[test]
    fn non_finite_scores_are_infeasible() {
        for kind in ["exhaustive", "baseline", "annealing"] {
            let cluster = Cluster::from_rsl(&sp2_cluster(4)).unwrap();
            let cfg = ControllerConfig {
                lint: LintMode::Off,
                reevaluate_on_arrival: false,
                ..Default::default()
            };
            let mut c = Controller::new(cluster, cfg);
            // Greedy arrival placement may itself refuse the all-infeasible
            // bundle; the instance stays registered either way.
            let _ = c.register(parse_bundle_script(NEGATIVE_BAG).unwrap());
            let err = match kind {
                "exhaustive" => exhaustive(&mut c, 1_000).unwrap_err(),
                "baseline" => exhaustive_baseline(&mut c, 1_000).unwrap_err(),
                _ => annealing(&mut c, 50, 10.0, 3, 2).unwrap_err(),
            };
            assert!(matches!(err, CoreError::Unplaceable { .. }), "{kind}: {err}");
        }
    }

    /// Regression: the feasible-start search used to draw from the same
    /// stream as the walk, so the number of rejected starts shifted every
    /// later proposal. The two streams are now independently sub-seeded.
    #[test]
    fn walk_stream_is_independent_of_start_draws() {
        let mut pristine = walk_rng(9, 0);
        let mut start = start_rng(9, 0);
        // Burn a variable number of start draws, as a rejecting start
        // search would.
        for _ in 0..173 {
            let _: u64 = start.gen();
        }
        let mut after = walk_rng(9, 0);
        let a: Vec<u64> = (0..8).map(|_| pristine.gen()).collect();
        let b: Vec<u64> = (0..8).map(|_| after.gen()).collect();
        assert_eq!(a, b);
        // The two streams themselves must differ.
        let s: Vec<u64> = (0..8).map(|_| start_rng(9, 0).gen()).collect();
        assert_ne!(a, s);
        // And chains must not share streams.
        let other: Vec<u64> = {
            let mut r = walk_rng(9, 1);
            (0..8).map(|_| r.gen()).collect()
        };
        assert_ne!(a, other);
    }

    /// Every `exhaustive_pruned` mode must reproduce `exhaustive`'s
    /// decisions exactly on the shared setup profiles.
    #[test]
    fn pruned_search_matches_unpruned_decisions() {
        for napps in 1..=3 {
            for mode in [PruningMode::Verify, PruningMode::On] {
                let mut plain = setup(napps, 8);
                let mut pruned = setup(napps, 8);
                let rp = exhaustive(&mut plain, 100_000).unwrap();
                let rq = exhaustive_pruned(&mut pruned, 100_000, mode).unwrap();
                assert_eq!(rp, rq, "napps={napps} mode={}", mode.name());
                assert_eq!(plain.objective_score(), pruned.objective_score());
            }
        }
    }

    /// A bundle with a dominated worker count: pruning drops it and the
    /// decision still matches the full scan bit for bit.
    #[test]
    fn pruned_search_agrees_with_dominated_candidates_dropped() {
        const DOMINATED: &str = "\
harmonyBundle dom:1 config {
  {run
    {variable w {1 2 4}}
    {node worker {seconds 100} {memory 32}}
    {performance {100 * w}}}
}
";
        for mode in [PruningMode::Verify, PruningMode::On] {
            let mut plain = setup(1, 8);
            let mut pruned = setup(1, 8);
            plain.register(parse_bundle_script(DOMINATED).unwrap()).unwrap();
            pruned.register(parse_bundle_script(DOMINATED).unwrap()).unwrap();
            let rp = exhaustive(&mut plain, 100_000).unwrap();
            let rq = exhaustive_pruned(&mut pruned, 100_000, mode).unwrap();
            assert_eq!(rp, rq, "mode={}", mode.name());
            if mode == PruningMode::On {
                assert!(pruned.metrics().counter("controller.pruning.dominated_dropped") >= 2);
            }
        }
    }

    /// Hostname-pinned bundles split into components; the recombined
    /// result matches the full scan.
    #[test]
    fn pruned_search_agrees_across_components() {
        fn pinned(app: &str, hosts: &[&str]) -> String {
            let nodes: Vec<String> = hosts
                .iter()
                .enumerate()
                .map(|(i, h)| {
                    format!("{{node w{i} {{seconds 300}} {{memory 32}} {{hostname {h}}}}}")
                })
                .collect();
            format!(
                "harmonyBundle {app}:1 config {{ {{one {first}}} {{two {both}}} }}",
                first = nodes[0],
                both = nodes.join(" ")
            )
        }
        let a = pinned("appa", &["node00.sp2", "node01.sp2"]);
        let b = pinned("appb", &["node02.sp2", "node03.sp2"]);
        for mode in [PruningMode::Verify, PruningMode::On] {
            let mut plain = setup(0, 8);
            let mut pruned = setup(0, 8);
            for c in [&mut plain, &mut pruned] {
                c.register(parse_bundle_script(&a).unwrap()).unwrap();
                c.register(parse_bundle_script(&b).unwrap()).unwrap();
            }
            let rp = exhaustive(&mut plain, 100_000).unwrap();
            let rq = exhaustive_pruned(&mut pruned, 100_000, mode).unwrap();
            assert_eq!(rp, rq, "mode={}", mode.name());
            if mode == PruningMode::On {
                assert_eq!(pruned.metrics().gauge("controller.pruning.components"), Some(2.0));
            }
        }
    }

    /// All-infeasible systems produce the seed's `Unplaceable` error in
    /// every mode (the `On` fallback reruns the full scan for it).
    #[test]
    fn pruned_search_reports_seed_errors() {
        for mode in [PruningMode::Verify, PruningMode::On] {
            let cluster = Cluster::from_rsl(&sp2_cluster(4)).unwrap();
            let cfg = ControllerConfig {
                lint: LintMode::Off,
                reevaluate_on_arrival: false,
                ..Default::default()
            };
            let mut c = Controller::new(cluster, cfg);
            let _ = c.register(parse_bundle_script(NEGATIVE_BAG).unwrap());
            let err = exhaustive_pruned(&mut c, 1_000, mode).unwrap_err();
            assert!(matches!(err, CoreError::Unplaceable { .. }), "{}: {err}", mode.name());
        }
        // And the size limit still applies.
        let mut c = setup(3, 8);
        let err = exhaustive_pruned(&mut c, 10, PruningMode::On).unwrap_err();
        assert!(matches!(err, CoreError::SearchSpaceTooLarge { size: 64, limit: 10 }));
    }

    #[test]
    fn optimize_dispatches_pruning_mode() {
        let cluster = Cluster::from_rsl(&sp2_cluster(8)).unwrap();
        let cfg = ControllerConfig {
            optimizer: OptimizerKind::Exhaustive { limit: 10_000 },
            pruning: PruningMode::Verify,
            ..Default::default()
        };
        let mut c = Controller::new(cluster, cfg);
        c.register(parse_bundle_script(FIG2B_BAG).unwrap()).unwrap();
        c.register(parse_bundle_script(FIG2B_BAG).unwrap()).unwrap();
        optimize(&mut c).unwrap();
        assert_eq!(c.objective_score(), 340.0);
        assert_eq!(c.metrics().counter("controller.pruning.verified"), 1);
        assert_eq!(c.metrics().counter("controller.pruning.mismatches"), 0);
    }

    #[test]
    fn search_metrics_are_recorded() {
        let mut c = setup(2, 8);
        exhaustive(&mut c, 10_000).unwrap();
        assert!(c.metrics().counter("controller.optimizer.searches") >= 1);
        assert!(c.metrics().counter("controller.optimizer.evals") > 0);
        assert!(c.metrics().gauge("controller.optimizer.last_wall_ms").unwrap_or(-1.0) >= 0.0);
    }
}
