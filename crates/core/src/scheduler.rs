//! Decision coalescing: one joint optimization per burst of arrivals.
//!
//! The paper's evaluation is a *burst of client arrivals* flipping the
//! server bundle (query-shipping → data-shipping, §6), yet a controller
//! that re-optimizes inline on every `startup`/`add_bundle`/`end` pays one
//! full joint optimization — and produces one thrashing decision record —
//! per arrival. The [`DecisionScheduler`] decouples the adaptation loop
//! from the serving loop: mutating events only *mark the system dirty*,
//! and a single re-evaluation fires per coalescing window, covering every
//! event that accumulated in it.
//!
//! The policy is a classic debounce with bounds:
//!
//! * a window fires once no new mark has arrived for `window` seconds;
//! * `max_delay` caps the total deferral measured from the *oldest*
//!   un-serviced mark, so a steady trickle of arrivals cannot starve
//!   adaptation forever;
//! * `max_pending` fires the window early once that many marks coalesced.
//!
//! `window: 0` (the default) disables the scheduler entirely: every event
//! re-evaluates inline, preserving the original synchronous semantics
//! bit-for-bit.

use serde::{Deserialize, Serialize};

/// When a dirty controller re-runs its joint optimization.
///
/// All times are controller-clock seconds (see
/// [`Controller::set_time`](crate::Controller::set_time)).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CoalescePolicy {
    /// Quiet time after the last dirty mark before the window fires.
    /// `0.0` disables coalescing: every event re-evaluates inline.
    pub window: f64,
    /// Upper bound on deferral measured from the oldest un-serviced mark;
    /// a window fires at `first_mark + max_delay` even while marks keep
    /// arriving.
    pub max_delay: f64,
    /// Fire as soon as this many marks have coalesced, regardless of
    /// timing. `0` means no count limit.
    pub max_pending: usize,
}

impl Default for CoalescePolicy {
    fn default() -> Self {
        CoalescePolicy { window: 0.0, max_delay: 1.0, max_pending: 256 }
    }
}

impl CoalescePolicy {
    /// True when decisions are deferred and coalesced (a positive window).
    pub fn enabled(&self) -> bool {
        self.window > 0.0
    }
}

/// Dirty-mark bookkeeping for the coalescing controller.
///
/// The scheduler itself never optimizes; it only answers "is a
/// re-evaluation due at time `t`?". The controller owns the firing (see
/// [`Controller::service_scheduler`](crate::Controller::service_scheduler)).
#[derive(Debug, Clone, Default)]
pub struct DecisionScheduler {
    /// Dirty marks since the last fire.
    pending: usize,
    /// Time of the oldest un-serviced mark.
    first_mark: f64,
    /// Time of the newest mark (the debounce anchor).
    last_mark: f64,
    /// Journal seqs of the events behind the pending marks — the
    /// provenance the fired window's decisions will carry. Bounded by
    /// [`MAX_PROVENANCE`] so a mark storm cannot grow it without limit.
    seqs: Vec<u64>,
}

/// Upper bound on provenance seqs retained per window. Marks beyond it
/// still count toward `pending`; only their seq is dropped.
const MAX_PROVENANCE: usize = 1024;

/// The scheduler's persisted image: a recovered controller resumes with
/// the same pending window it crashed with, so a coalescing window in
/// flight at the crash still fires after recovery.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct SchedulerState {
    /// Dirty marks since the last fire.
    pub pending: usize,
    /// Time of the oldest un-serviced mark.
    pub first_mark: f64,
    /// Time of the newest mark.
    pub last_mark: f64,
    /// Journal seqs of the events behind the pending marks.
    pub seqs: Vec<u64>,
}

impl DecisionScheduler {
    /// A scheduler with no pending work.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one dirty mark at time `now`, remembering the journal seqs
    /// of the events that caused it.
    pub fn mark(&mut self, now: f64, seqs: &[u64]) {
        if self.pending == 0 {
            self.first_mark = now;
        }
        self.last_mark = self.last_mark.max(now);
        self.pending += 1;
        let room = MAX_PROVENANCE.saturating_sub(self.seqs.len());
        self.seqs.extend(seqs.iter().take(room));
    }

    /// Number of marks accumulated since the last fire.
    pub fn pending(&self) -> usize {
        self.pending
    }

    /// True when a re-evaluation is due at time `now` under `policy`.
    pub fn due(&self, policy: &CoalescePolicy, now: f64) -> bool {
        if self.pending == 0 {
            return false;
        }
        (policy.max_pending > 0 && self.pending >= policy.max_pending)
            || now - self.last_mark >= policy.window
            || now - self.first_mark >= policy.max_delay
    }

    /// Resets the scheduler, returning how many marks the fired window
    /// coalesced and the journal seqs of the events behind them.
    pub fn take(&mut self) -> (usize, Vec<u64>) {
        (std::mem::take(&mut self.pending), std::mem::take(&mut self.seqs))
    }

    /// The scheduler's persisted image.
    pub fn dump(&self) -> SchedulerState {
        SchedulerState {
            pending: self.pending,
            first_mark: self.first_mark,
            last_mark: self.last_mark,
            seqs: self.seqs.clone(),
        }
    }

    /// Rebuilds the scheduler from a persisted image.
    pub fn restore(state: SchedulerState) -> Self {
        let SchedulerState { pending, first_mark, last_mark, mut seqs } = state;
        seqs.truncate(MAX_PROVENANCE);
        DecisionScheduler { pending, first_mark, last_mark, seqs }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn policy(window: f64, max_delay: f64, max_pending: usize) -> CoalescePolicy {
        CoalescePolicy { window, max_delay, max_pending }
    }

    #[test]
    fn default_policy_is_synchronous() {
        assert!(!CoalescePolicy::default().enabled());
        assert!(policy(0.5, 2.0, 8).enabled());
    }

    #[test]
    fn quiet_scheduler_is_never_due() {
        let s = DecisionScheduler::new();
        assert!(!s.due(&policy(0.5, 2.0, 8), 1e9));
        assert_eq!(s.pending(), 0);
    }

    #[test]
    fn debounce_fires_after_quiet_window() {
        let p = policy(1.0, 10.0, 0);
        let mut s = DecisionScheduler::new();
        s.mark(0.0, &[10]);
        assert!(!s.due(&p, 0.5));
        s.mark(0.5, &[11]); // renews the debounce
        assert!(!s.due(&p, 1.2));
        assert!(s.due(&p, 1.5));
        assert_eq!(s.take(), (2, vec![10, 11]));
        assert!(!s.due(&p, 100.0), "take() clears the window");
        assert_eq!(s.take(), (0, Vec::new()), "provenance does not leak across windows");
    }

    #[test]
    fn max_delay_caps_total_deferral() {
        let p = policy(1.0, 2.0, 0);
        let mut s = DecisionScheduler::new();
        // Marks every 0.6 s keep the debounce alive forever...
        for i in 0..4 {
            s.mark(0.6 * i as f64, &[i]);
        }
        // ...but the oldest mark is 2.0 s old at t=2.0.
        assert!(s.due(&p, 2.0));
    }

    #[test]
    fn max_pending_fires_early() {
        let p = policy(10.0, 100.0, 3);
        let mut s = DecisionScheduler::new();
        s.mark(0.0, &[]);
        s.mark(0.0, &[]);
        assert!(!s.due(&p, 0.0));
        s.mark(0.0, &[]);
        assert!(s.due(&p, 0.0));
    }

    #[test]
    fn marks_never_move_the_anchor_backwards() {
        let mut s = DecisionScheduler::new();
        s.mark(5.0, &[]);
        s.mark(3.0, &[]); // out-of-order mark (clock races) must not rewind
        assert!(s.due(&policy(1.0, 10.0, 0), 6.0));
        assert!(!s.due(&policy(3.0, 10.0, 0), 6.0));
    }

    #[test]
    fn dump_restore_round_trips() {
        let mut s = DecisionScheduler::new();
        s.mark(1.0, &[3, 4]);
        s.mark(2.5, &[9]);
        let dumped = s.dump();
        let mut back = DecisionScheduler::restore(dumped.clone());
        assert_eq!(back.dump(), dumped);
        assert!(back.due(&policy(1.0, 10.0, 0), 4.0));
        assert_eq!(back.take(), (2, vec![3, 4, 9]));
    }

    #[test]
    fn provenance_is_bounded() {
        let mut s = DecisionScheduler::new();
        for i in 0..(super::MAX_PROVENANCE as u64 + 50) {
            s.mark(0.0, &[i]);
        }
        let (n, seqs) = s.take();
        assert_eq!(n, super::MAX_PROVENANCE + 50, "every mark still counts");
        assert_eq!(seqs.len(), super::MAX_PROVENANCE, "seqs capped");
        assert_eq!(seqs[0], 0);
    }
}
