//! Error type for the adaptation controller.

use std::fmt;

/// Errors from controller operations.
#[derive(Debug, Clone, PartialEq)]
pub enum CoreError {
    /// An RSL parse or evaluation error.
    Rsl(String),
    /// A resource-layer error (matching, commit, release).
    Resource(String),
    /// A prediction error.
    Predict(String),
    /// The referenced application instance is not registered.
    UnknownInstance {
        /// The instance name (`app.id`).
        name: String,
    },
    /// The referenced bundle is not part of the instance.
    UnknownBundle {
        /// The bundle name.
        name: String,
    },
    /// No candidate configuration of a bundle could be placed on the
    /// cluster.
    Unplaceable {
        /// The bundle that could not be placed.
        bundle: String,
        /// Why the last candidate failed.
        reason: String,
    },
    /// Static analysis rejected the bundle before placement (strict lint
    /// mode): the bundle has error-severity diagnostics.
    LintRejected {
        /// The rejected bundle's name.
        bundle: String,
        /// One line per error diagnostic (`code: message`).
        errors: Vec<String>,
    },
    /// Verify-mode pruning found a divergence between the pruned and the
    /// unpruned search — a soundness bug in the facts engine or its
    /// wiring, never an application error.
    PruningMismatch {
        /// Human-readable description of the diverging results.
        detail: String,
    },
    /// A persistence-layer failure: an unreadable state directory, a
    /// snapshot that fails validation, or a corrupted (not merely torn)
    /// WAL record.
    Persistence {
        /// Human-readable description of the failure.
        detail: String,
    },
    /// The exhaustive optimizer's search space exceeded its bound.
    SearchSpaceTooLarge {
        /// Number of joint configurations that would need evaluation.
        size: u64,
        /// The configured bound.
        limit: u64,
    },
}

impl fmt::Display for CoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoreError::Rsl(m) => write!(f, "rsl error: {m}"),
            CoreError::Resource(m) => write!(f, "resource error: {m}"),
            CoreError::Predict(m) => write!(f, "prediction error: {m}"),
            CoreError::UnknownInstance { name } => {
                write!(f, "unknown application instance `{name}`")
            }
            CoreError::UnknownBundle { name } => write!(f, "unknown bundle `{name}`"),
            CoreError::Unplaceable { bundle, reason } => {
                write!(f, "bundle `{bundle}` cannot be placed: {reason}")
            }
            CoreError::LintRejected { bundle, errors } => {
                write!(f, "bundle `{bundle}` rejected by static analysis: {}", errors.join("; "))
            }
            CoreError::PruningMismatch { detail } => {
                write!(f, "pruned search diverged from unpruned search: {detail}")
            }
            CoreError::Persistence { detail } => write!(f, "persistence error: {detail}"),
            CoreError::SearchSpaceTooLarge { size, limit } => {
                write!(f, "search space of {size} joint configurations exceeds limit {limit}")
            }
        }
    }
}

impl std::error::Error for CoreError {}

impl From<harmony_rsl::RslError> for CoreError {
    fn from(e: harmony_rsl::RslError) -> Self {
        CoreError::Rsl(e.to_string())
    }
}

impl From<harmony_resources::ResourceError> for CoreError {
    fn from(e: harmony_resources::ResourceError) -> Self {
        CoreError::Resource(e.to_string())
    }
}

impl From<harmony_predict::PredictError> for CoreError {
    fn from(e: harmony_predict::PredictError) -> Self {
        CoreError::Predict(e.to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn displays_nonempty() {
        let cases = vec![
            CoreError::Rsl("x".into()),
            CoreError::Resource("y".into()),
            CoreError::Predict("z".into()),
            CoreError::UnknownInstance { name: "a.1".into() },
            CoreError::UnknownBundle { name: "where".into() },
            CoreError::Unplaceable { bundle: "where".into(), reason: "full".into() },
            CoreError::LintRejected {
                bundle: "where".into(),
                errors: vec!["HA0004: undeclared variable".into()],
            },
            CoreError::PruningMismatch { detail: "keys differ".into() },
            CoreError::Persistence { detail: "corrupted record".into() },
            CoreError::SearchSpaceTooLarge { size: 1000, limit: 100 },
        ];
        for e in cases {
            assert!(!e.to_string().is_empty());
            let _: &dyn std::error::Error = &e;
        }
    }

    #[test]
    fn conversions() {
        let _: CoreError = harmony_rsl::RslError::DivideByZero.into();
        let _: CoreError =
            harmony_resources::ResourceError::UnknownNode { name: "n".into() }.into();
        let _: CoreError = harmony_predict::PredictError::MissingData { what: "w".into() }.into();
    }
}
