//! The controller's event interface.
//!
//! "The Harmony process is an event driven system that waits for
//! application and performance events. When an event happens, it triggers
//! the automatic application adaptation system, and each of the option
//! bundles for each application gets re-evaluated" (§5).

use harmony_rsl::schema::{parse_bundle_script, LinkDecl, NodeDecl};
use serde::{Deserialize, Serialize};

use crate::app::InstanceId;
use crate::controller::{Controller, DecisionRecord};
use crate::error::CoreError;
use crate::journal::JournalKind;

/// An event delivered to the Harmony process.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum HarmonyEvent {
    /// An application registered (`harmony_startup`).
    Startup {
        /// Application name.
        app: String,
    },
    /// An application sent a bundle (`harmony_bundle_setup`); the payload
    /// is RSL text.
    BundleSetup {
        /// The registered instance.
        instance: InstanceId,
        /// RSL script containing one `harmonyBundle` statement.
        script: String,
    },
    /// An application is terminating (`harmony_end`).
    AppEnded {
        /// The departing instance.
        instance: InstanceId,
    },
    /// A performance measurement arrived through the metric interface.
    MetricReport {
        /// Dotted metric name.
        name: String,
        /// Timestamp (controller clock, seconds).
        time: f64,
        /// Sampled value.
        value: f64,
    },
    /// A lease-renewal heartbeat arrived from an application.
    Heartbeat {
        /// The renewing instance.
        instance: InstanceId,
    },
    /// A reconnecting application re-established its session; current
    /// chosen values are replayed into its pending-variable buffer.
    Reattach {
        /// The reattaching instance.
        instance: InstanceId,
    },
    /// The periodic re-evaluation timer fired. Expired session leases are
    /// reaped before the re-evaluation pass.
    Periodic,
    /// A node joined the metacomputer.
    NodeJoined(NodeDecl),
    /// A link was published.
    LinkJoined(LinkDecl),
    /// A node left; applications running on it are displaced and
    /// re-placed.
    NodeLeft {
        /// The departing node's name.
        name: String,
    },
}

/// What handling an event produced.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum EventOutcome {
    /// A new instance was registered.
    Registered(InstanceId),
    /// Zero or more reconfiguration decisions were applied.
    Decisions(Vec<DecisionRecord>),
    /// The event was absorbed with no decisions.
    Quiet,
}

impl Controller {
    /// Handles one event, possibly triggering adaptation.
    ///
    /// # Errors
    ///
    /// Propagates RSL parse errors from `BundleSetup` scripts and
    /// controller errors from registration/placement.
    pub fn handle_event(&mut self, event: HarmonyEvent) -> Result<EventOutcome, CoreError> {
        self.wal_log_event(&event);
        self.handle_event_inner(event)
    }

    /// [`Controller::handle_event`] minus the WAL hook; the event was
    /// already logged (or arrived from replay).
    pub(crate) fn handle_event_inner(
        &mut self,
        event: HarmonyEvent,
    ) -> Result<EventOutcome, CoreError> {
        match event {
            HarmonyEvent::Startup { app } => Ok(EventOutcome::Registered(self.startup_inner(&app))),
            HarmonyEvent::BundleSetup { instance, script } => {
                let spec = parse_bundle_script(&script)?;
                Ok(EventOutcome::Decisions(self.add_bundle_inner(&instance, spec)?))
            }
            HarmonyEvent::AppEnded { instance } => {
                Ok(EventOutcome::Decisions(self.end_inner(&instance)?))
            }
            HarmonyEvent::MetricReport { name, time, value } => {
                self.renew_lease_for_metric_inner(&name);
                // Journals, rejects non-finite samples, and feeds the
                // per-instance response-time histogram. Rejected samples
                // stay off the bus so subscribers never see NaN/inf.
                if self.record_metric_inner(&name, time, value) {
                    self.metric_bus().publish(harmony_metrics::MetricEvent::new(name, time, value));
                }
                Ok(EventOutcome::Quiet)
            }
            HarmonyEvent::Heartbeat { instance } => {
                if self.renew_lease_inner(&instance) {
                    self.journal_append(JournalKind::Event, format!("heartbeat {instance}"));
                    Ok(EventOutcome::Quiet)
                } else {
                    Err(CoreError::UnknownInstance { name: instance.to_string() })
                }
            }
            HarmonyEvent::Reattach { instance } => {
                self.reattach_inner(&instance)?;
                self.journal_append(JournalKind::Event, format!("reattach {instance}"));
                Ok(EventOutcome::Quiet)
            }
            HarmonyEvent::Periodic => {
                let mut records = self.reap_expired_inner(self.now())?;
                if self.coalescing() {
                    // The periodic pass is the coarse fallback heartbeat:
                    // flush whatever marks accumulated (reaping above may
                    // have added some) instead of re-evaluating blindly.
                    records.extend(self.flush_scheduler_inner()?);
                } else {
                    records.extend(
                        self.reevaluate_triggered(JournalKind::Event, "periodic".to_string())?,
                    );
                }
                Ok(EventOutcome::Decisions(records))
            }
            HarmonyEvent::NodeJoined(decl) => {
                let name = decl.name.clone();
                self.cluster.add_node(decl)?;
                let records =
                    self.reevaluate_triggered(JournalKind::Event, format!("node-joined {name}"))?;
                Ok(EventOutcome::Decisions(records))
            }
            HarmonyEvent::LinkJoined(decl) => {
                let detail = format!("link-joined {} {}", decl.a, decl.b);
                self.cluster.add_link(decl)?;
                Ok(EventOutcome::Decisions(self.reevaluate_triggered(JournalKind::Event, detail)?))
            }
            HarmonyEvent::NodeLeft { name } => {
                Ok(EventOutcome::Decisions(self.evict_node_inner(&name)?))
            }
        }
    }

    /// Removes a node from the cluster, displacing every configuration
    /// whose allocation touched it, then re-places the displaced bundles.
    ///
    /// # Errors
    ///
    /// Propagates re-placement errors; a displaced bundle that no longer
    /// fits anywhere is left unconfigured (not an error — it may fit after
    /// other departures).
    pub fn evict_node(&mut self, name: &str) -> Result<Vec<DecisionRecord>, CoreError> {
        self.wal_log_event(&HarmonyEvent::NodeLeft { name: name.to_string() });
        self.evict_node_inner(name)
    }

    /// [`Controller::evict_node`] minus the WAL hook.
    pub(crate) fn evict_node_inner(
        &mut self,
        name: &str,
    ) -> Result<Vec<DecisionRecord>, CoreError> {
        // Find affected (instance, bundle) pairs and release their
        // allocations *before* removing the node so capacity is restored
        // exactly.
        let mut displaced: Vec<(InstanceId, String)> = Vec::new();
        let ids: Vec<InstanceId> = self.arrival_order.clone();
        for id in &ids {
            let Some(app) = self.apps.get(id) else { continue };
            let touched: Vec<String> = app
                .bundles
                .iter()
                .filter(|b| {
                    b.current
                        .as_ref()
                        .map(|c| c.alloc.nodes.iter().any(|n| n.node == name))
                        .unwrap_or(false)
                })
                .map(|b| b.spec.name.clone())
                .collect();
            for bundle in touched {
                displaced.push((id.clone(), bundle));
            }
        }
        for (id, bundle) in &displaced {
            let Some(app) = self.apps.get_mut(id) else { continue };
            if let Some(state) = app.bundle_mut(bundle) {
                if let Some(cfg) = state.current.take() {
                    // Ignore missing-node errors: the node is leaving.
                    let _ = self.cluster.release(&cfg.alloc);
                }
            }
        }
        self.cluster.remove_node(name);
        self.metrics.inc_counter("controller.evictions");
        // Re-place everything (displaced bundles have no incumbent, so any
        // feasible candidate wins); the departure is the provenance.
        self.reevaluate_triggered(JournalKind::Event, format!("node-left {name}"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::controller::ControllerConfig;
    use harmony_resources::Cluster;
    use harmony_rsl::listings::{sp2_cluster, FIG2B_BAG};

    fn controller(nodes: usize) -> Controller {
        Controller::new(
            Cluster::from_rsl(&sp2_cluster(nodes)).unwrap(),
            ControllerConfig::default(),
        )
    }

    #[test]
    fn startup_and_bundle_events_register_and_place() {
        let mut c = controller(8);
        let outcome = c.handle_event(HarmonyEvent::Startup { app: "bag".into() }).unwrap();
        let EventOutcome::Registered(id) = outcome else { panic!("expected id") };
        let outcome = c
            .handle_event(HarmonyEvent::BundleSetup {
                instance: id.clone(),
                script: FIG2B_BAG.into(),
            })
            .unwrap();
        let EventOutcome::Decisions(ds) = outcome else { panic!("expected decisions") };
        assert_eq!(ds.len(), 1);
        assert!(c.choice(&id, "config").is_some());
    }

    #[test]
    fn metric_report_records_quietly() {
        let mut c = controller(2);
        let rx = c.metric_bus().subscribe();
        let outcome = c
            .handle_event(HarmonyEvent::MetricReport {
                name: "bag.1.rt".into(),
                time: 1.0,
                value: 12.0,
            })
            .unwrap();
        assert_eq!(outcome, EventOutcome::Quiet);
        assert_eq!(c.metrics().series("bag.1.rt").unwrap().len(), 1);
        // The bus fanned the report out to subscribers.
        let ev = rx.try_recv().unwrap();
        assert_eq!(ev.name, "bag.1.rt");
        assert_eq!(ev.value, 12.0);
    }

    #[test]
    fn decisions_are_published_on_the_bus() {
        let mut c = controller(8);
        let rx = c.metric_bus().subscribe();
        c.register(harmony_rsl::schema::parse_bundle_script(FIG2B_BAG).unwrap()).unwrap();
        let events: Vec<_> = rx.try_iter().collect();
        assert!(
            events.iter().any(|e| e.name.starts_with("controller.decision.bag.1")),
            "got {events:?}"
        );
    }

    #[test]
    fn node_arrival_triggers_expansion() {
        let mut c = controller(4);
        let (id, _) =
            c.register(harmony_rsl::schema::parse_bundle_script(FIG2B_BAG).unwrap()).unwrap();
        assert_eq!(c.choice(&id, "config").unwrap().vars[0].1, 4);
        // Four more nodes join (and links to the existing mesh).
        for i in 4..8 {
            let name = format!("node{i:02}");
            c.handle_event(HarmonyEvent::NodeJoined(harmony_rsl::schema::NodeDecl::new(
                name.clone(),
                1.0,
                256.0,
            )))
            .unwrap();
            for j in 0..i {
                c.handle_event(HarmonyEvent::LinkJoined(harmony_rsl::schema::LinkDecl::new(
                    format!("node{j:02}"),
                    name.clone(),
                    320.0,
                )))
                .unwrap();
            }
        }
        assert_eq!(c.choice(&id, "config").unwrap().vars[0].1, 8, "expanded onto new nodes");
    }

    #[test]
    fn node_departure_displaces_and_replaces() {
        let mut c = controller(8);
        let (id, _) =
            c.register(harmony_rsl::schema::parse_bundle_script(FIG2B_BAG).unwrap()).unwrap();
        assert_eq!(c.choice(&id, "config").unwrap().vars[0].1, 8);
        let outcome = c.handle_event(HarmonyEvent::NodeLeft { name: "node00".into() }).unwrap();
        let EventOutcome::Decisions(ds) = outcome else { panic!() };
        assert!(!ds.is_empty());
        let choice = c.choice(&id, "config").unwrap();
        // 7 nodes remain: best feasible worker count is 4.
        assert_eq!(choice.vars[0].1, 4);
        assert!(choice.alloc.nodes.iter().all(|n| n.node != "node00"));
        // Capacity counters stayed consistent.
        assert_eq!(c.cluster().total_tasks(), 4);
    }

    #[test]
    fn periodic_event_reevaluates() {
        let mut c = controller(8);
        c.register(harmony_rsl::schema::parse_bundle_script(FIG2B_BAG).unwrap()).unwrap();
        let before = c.metrics().counter("controller.reevals");
        c.handle_event(HarmonyEvent::Periodic).unwrap();
        assert_eq!(c.metrics().counter("controller.reevals"), before + 1);
    }

    #[test]
    fn bad_bundle_script_is_an_error() {
        let mut c = controller(2);
        let id = c.startup("x");
        let err = c
            .handle_event(HarmonyEvent::BundleSetup {
                instance: id,
                script: "this is not rsl {".into(),
            })
            .unwrap_err();
        assert!(matches!(err, CoreError::Rsl(_)));
    }
}
