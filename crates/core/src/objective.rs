//! Objective functions (§4.2).
//!
//! "Harmony's decisions are guided by an overarching objective function.
//! Our objective function currently minimizes the average completion time
//! of the jobs currently in the system. … The requirement for an objective
//! function is that it be a single variable that represents the overall
//! behavior of the system — a measure of goodness for each application
//! scaled into a common currency."
//!
//! All objectives here are *minimized*; lower scores are better.

use serde::{Deserialize, Serialize};

/// A system-level objective over the predicted per-application response
/// times. Lower is better.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub enum Objective {
    /// The paper's default: minimize the average completion time of the
    /// jobs currently in the system.
    #[default]
    MinAvgCompletionTime,
    /// Minimize the slowest job (makespan).
    MinMakespan,
    /// Maximize aggregate throughput: minimizes `-Σ 1/rtᵢ`.
    MaxThroughput,
    /// Minimize a weighted blend of average and makespan:
    /// `w·avg + (1-w)·max`. The weight is clamped to `[0, 1]`.
    Blend(
        /// Weight on the average term.
        f64,
    ),
}

impl Objective {
    /// Scores a set of predicted response times (seconds). An empty system
    /// scores `0.0` (nothing to optimize). Infinite or NaN inputs yield
    /// `f64::INFINITY` so broken predictions never look attractive.
    pub fn score(&self, response_times: &[f64]) -> f64 {
        if response_times.is_empty() {
            return 0.0;
        }
        if response_times.iter().any(|r| !r.is_finite() || *r < 0.0) {
            return f64::INFINITY;
        }
        let n = response_times.len() as f64;
        let avg = response_times.iter().sum::<f64>() / n;
        let max = response_times.iter().fold(0.0f64, |a, &b| a.max(b));
        match self {
            Objective::MinAvgCompletionTime => avg,
            Objective::MinMakespan => max,
            Objective::MaxThroughput => {
                -response_times.iter().map(|r| 1.0 / r.max(f64::EPSILON)).sum::<f64>()
            }
            Objective::Blend(w) => {
                let w = w.clamp(0.0, 1.0);
                w * avg + (1.0 - w) * max
            }
        }
    }

    /// Short name for experiment output.
    pub fn name(&self) -> &'static str {
        match self {
            Objective::MinAvgCompletionTime => "min-avg-completion",
            Objective::MinMakespan => "min-makespan",
            Objective::MaxThroughput => "max-throughput",
            Objective::Blend(_) => "blend",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_system_scores_zero() {
        for obj in [
            Objective::MinAvgCompletionTime,
            Objective::MinMakespan,
            Objective::MaxThroughput,
            Objective::Blend(0.5),
        ] {
            assert_eq!(obj.score(&[]), 0.0);
        }
    }

    #[test]
    fn average_objective() {
        assert_eq!(Objective::MinAvgCompletionTime.score(&[10.0, 20.0, 30.0]), 20.0);
    }

    #[test]
    fn makespan_objective() {
        assert_eq!(Objective::MinMakespan.score(&[10.0, 20.0, 30.0]), 30.0);
    }

    #[test]
    fn throughput_objective_prefers_more_faster_jobs() {
        let slow = Objective::MaxThroughput.score(&[100.0, 100.0]);
        let fast = Objective::MaxThroughput.score(&[10.0, 10.0]);
        assert!(fast < slow);
    }

    #[test]
    fn blend_interpolates() {
        let rts = [10.0, 30.0];
        assert_eq!(Objective::Blend(1.0).score(&rts), 20.0);
        assert_eq!(Objective::Blend(0.0).score(&rts), 30.0);
        assert_eq!(Objective::Blend(0.5).score(&rts), 25.0);
        // Out-of-range weights clamp.
        assert_eq!(Objective::Blend(7.0).score(&rts), 20.0);
    }

    #[test]
    fn broken_predictions_score_infinite() {
        assert_eq!(Objective::MinAvgCompletionTime.score(&[1.0, f64::INFINITY]), f64::INFINITY);
        assert_eq!(Objective::MinAvgCompletionTime.score(&[1.0, f64::NAN]), f64::INFINITY);
        assert_eq!(Objective::MinAvgCompletionTime.score(&[-1.0]), f64::INFINITY);
    }

    #[test]
    fn names_are_stable() {
        assert_eq!(Objective::default().name(), "min-avg-completion");
        assert_eq!(Objective::MinMakespan.name(), "min-makespan");
        assert_eq!(Objective::MaxThroughput.name(), "max-throughput");
        assert_eq!(Objective::Blend(0.3).name(), "blend");
    }
}
