//! Application instance state held by the controller.

use std::fmt;

use harmony_resources::Allocation;
use harmony_rsl::schema::BundleSpec;
use serde::{Deserialize, Serialize};

/// Two-part instance name: application name plus system-chosen id (§3.2).
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct InstanceId {
    /// Application name (`DBclient`).
    pub app: String,
    /// System-chosen instance id (`66`).
    pub id: u64,
}

impl InstanceId {
    /// Creates an instance id.
    pub fn new(app: impl Into<String>, id: u64) -> Self {
        InstanceId { app: app.into(), id }
    }
}

impl fmt::Display for InstanceId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}.{}", self.app, self.id)
    }
}

/// One concrete configuration of a bundle: the option chosen, the variable
/// bindings, the elastic memory grant, and the resulting allocation.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ChosenConfig {
    /// Name of the chosen option.
    pub option: String,
    /// Variable bindings (e.g. `workerNodes = 4`), sorted by name.
    pub vars: Vec<(String, i64)>,
    /// Extra megabytes granted to elastic memory requirements.
    pub elastic_extra: f64,
    /// The committed allocation.
    pub alloc: Allocation,
    /// Predicted response time at selection (seconds).
    pub predicted: f64,
    /// Time the choice was applied (controller clock, seconds).
    pub chosen_at: f64,
}

impl ChosenConfig {
    /// A short label like `DS` or `run[workerNodes=4]` for logs and traces.
    pub fn label(&self) -> String {
        if self.vars.is_empty() {
            self.option.clone()
        } else {
            let vars =
                self.vars.iter().map(|(k, v)| format!("{k}={v}")).collect::<Vec<_>>().join(",");
            format!("{}[{vars}]", self.option)
        }
    }

    /// True when `other` denotes the same option/variable point (ignoring
    /// the concrete allocation and timestamps).
    pub fn same_choice(&self, other: &ChosenConfig) -> bool {
        self.option == other.option
            && self.vars == other.vars
            && (self.elastic_extra - other.elastic_extra).abs() < 1e-9
    }
}

/// The controller-side state of one bundle of one application instance.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BundleState {
    /// The bundle specification the application exported.
    pub spec: BundleSpec,
    /// The currently applied configuration, if any.
    pub current: Option<ChosenConfig>,
    /// Number of reconfigurations applied (changes after the first
    /// choice).
    pub reconfig_count: u32,
}

impl BundleState {
    /// Wraps a parsed bundle with no choice applied yet.
    pub fn new(spec: BundleSpec) -> Self {
        BundleState { spec, current: None, reconfig_count: 0 }
    }

    /// The granularity (minimum seconds between reconfigurations) of the
    /// *currently chosen* option, if declared.
    pub fn current_granularity(&self) -> Option<f64> {
        let current = self.current.as_ref()?;
        self.spec.option(&current.option)?.granularity
    }

    /// True when a switch at time `now` would violate the chosen option's
    /// granularity declaration.
    pub fn switch_blocked_at(&self, now: f64) -> bool {
        match (&self.current, self.current_granularity()) {
            (Some(cur), Some(g)) => now - cur.chosen_at < g,
            _ => false,
        }
    }
}

/// One registered application instance.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AppInstance {
    /// The instance name.
    pub id: InstanceId,
    /// Bundles in the order the application registered them (the lexical
    /// evaluation order of §4.3).
    pub bundles: Vec<BundleState>,
    /// Controller-clock arrival time (seconds).
    pub arrived_at: f64,
}

impl AppInstance {
    /// Creates an instance with no bundles.
    pub fn new(id: InstanceId, arrived_at: f64) -> Self {
        AppInstance { id, bundles: Vec::new(), arrived_at }
    }

    /// Finds a bundle by name.
    pub fn bundle(&self, name: &str) -> Option<&BundleState> {
        self.bundles.iter().find(|b| b.spec.name == name)
    }

    /// Finds a bundle by name, mutably.
    pub fn bundle_mut(&mut self, name: &str) -> Option<&mut BundleState> {
        self.bundles.iter_mut().find(|b| b.spec.name == name)
    }

    /// All committed allocations across bundles.
    pub fn allocations(&self) -> Vec<&Allocation> {
        self.bundles.iter().filter_map(|b| b.current.as_ref().map(|c| &c.alloc)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use harmony_rsl::schema::parse_bundle_script;

    #[test]
    fn instance_id_display() {
        assert_eq!(InstanceId::new("DBclient", 66).to_string(), "DBclient.66");
    }

    #[test]
    fn chosen_config_label() {
        let c = ChosenConfig {
            option: "run".into(),
            vars: vec![("workerNodes".into(), 4)],
            elastic_extra: 0.0,
            alloc: Allocation::default(),
            predicted: 340.0,
            chosen_at: 0.0,
        };
        assert_eq!(c.label(), "run[workerNodes=4]");
        let plain = ChosenConfig { vars: vec![], option: "DS".into(), ..c.clone() };
        assert_eq!(plain.label(), "DS");
        assert!(!c.same_choice(&plain));
        let mut same = c.clone();
        same.chosen_at = 99.0;
        same.predicted = 1.0;
        assert!(c.same_choice(&same));
    }

    #[test]
    fn granularity_blocks_early_switches() {
        let spec =
            parse_bundle_script("harmonyBundle a b { {o {node n {seconds 1}} {granularity 60}} }")
                .unwrap();
        let mut state = BundleState::new(spec);
        assert!(!state.switch_blocked_at(0.0)); // nothing chosen yet
        state.current = Some(ChosenConfig {
            option: "o".into(),
            vars: vec![],
            elastic_extra: 0.0,
            alloc: Allocation::default(),
            predicted: 1.0,
            chosen_at: 100.0,
        });
        assert!(state.switch_blocked_at(120.0)); // only 20 s elapsed
        assert!(!state.switch_blocked_at(160.0)); // 60 s elapsed
        assert_eq!(state.current_granularity(), Some(60.0));
    }

    #[test]
    fn app_instance_bundle_lookup() {
        let id = InstanceId::new("a", 1);
        let mut app = AppInstance::new(id, 0.0);
        let spec = parse_bundle_script("harmonyBundle a b { {o {node n {seconds 1}}} }").unwrap();
        app.bundles.push(BundleState::new(spec));
        assert!(app.bundle("b").is_some());
        assert!(app.bundle("zzz").is_none());
        assert!(app.bundle_mut("b").is_some());
        assert!(app.allocations().is_empty());
    }
}
