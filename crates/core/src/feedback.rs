//! Measured-performance feedback: calibrating predictions with the metric
//! interface.
//!
//! §2: the controller "must gather relevant information about both the
//! applications and the environment" — not just static bundle numbers.
//! When applications report actual response times (metric
//! `<app>.<id>.response_time`), the controller can compare them with its
//! predictions and derive a per-instance *calibration factor* that scales
//! future predictions, absorbing model error the same way Active Harmony's
//! later online tuners did.

use harmony_metrics::MetricRegistry;
use serde::{Deserialize, Serialize};

use crate::app::InstanceId;

/// The metric suffix the calibration consumes.
pub const RESPONSE_TIME_METRIC: &str = "response_time";

/// Configuration for measured feedback.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FeedbackConfig {
    /// Minimum samples before a factor is trusted.
    pub min_samples: usize,
    /// Clamp on the correction factor (guards against transient spikes
    /// and clock mixups): factors land in `[1/limit, limit]`.
    pub limit: f64,
    /// EWMA smoothing for the measured series (weight on recent samples).
    pub alpha: f64,
}

impl Default for FeedbackConfig {
    fn default() -> Self {
        FeedbackConfig { min_samples: 3, limit: 10.0, alpha: 0.3 }
    }
}

/// Computes the calibration factor for one instance: smoothed measured
/// response time divided by `predicted`, clamped; `1.0` when there is not
/// enough data or no meaningful prediction.
///
/// Only samples with `time >= since` participate. The caller passes the
/// instance's last configuration-switch time: response times measured
/// under a *previous* configuration say nothing about how far the model is
/// off for the *current* one, and letting them decay through the EWMA
/// instead of excluding them outright mis-calibrates every prediction for
/// many reports after a switch (pass `f64::NEG_INFINITY` for the old
/// whole-series behavior).
pub fn calibration_factor(
    metrics: &MetricRegistry,
    id: &InstanceId,
    predicted: f64,
    since: f64,
    config: &FeedbackConfig,
) -> f64 {
    if !(predicted.is_finite()) || predicted <= 0.0 {
        return 1.0;
    }
    let name = format!("{id}.{RESPONSE_TIME_METRIC}");
    let Some(series) = metrics.series(&name) else { return 1.0 };
    if series.count_since(since) < config.min_samples {
        return 1.0;
    }
    let Some(measured) = series.ewma_since(config.alpha, since) else { return 1.0 };
    if measured <= 0.0 {
        return 1.0;
    }
    let limit = config.limit.max(1.0);
    (measured / predicted).clamp(1.0 / limit, limit)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn id() -> InstanceId {
        InstanceId::new("DBclient", 1)
    }

    fn registry_with(samples: &[f64]) -> MetricRegistry {
        let reg = MetricRegistry::new();
        for (i, v) in samples.iter().enumerate() {
            reg.record("DBclient.1.response_time", i as f64, *v);
        }
        reg
    }

    #[test]
    fn no_data_means_no_correction() {
        let reg = MetricRegistry::new();
        assert_eq!(
            calibration_factor(&reg, &id(), 10.0, f64::NEG_INFINITY, &FeedbackConfig::default()),
            1.0
        );
    }

    #[test]
    fn too_few_samples_means_no_correction() {
        let reg = registry_with(&[20.0, 20.0]);
        assert_eq!(
            calibration_factor(&reg, &id(), 10.0, f64::NEG_INFINITY, &FeedbackConfig::default()),
            1.0
        );
    }

    #[test]
    fn underestimating_model_gets_scaled_up() {
        // The model says 10 s; reality is consistently ~20 s.
        let reg = registry_with(&[20.0, 20.0, 20.0, 20.0]);
        let f =
            calibration_factor(&reg, &id(), 10.0, f64::NEG_INFINITY, &FeedbackConfig::default());
        assert!((f - 2.0).abs() < 1e-9, "factor {f}");
    }

    #[test]
    fn overestimating_model_gets_scaled_down() {
        let reg = registry_with(&[5.0, 5.0, 5.0, 5.0]);
        let f =
            calibration_factor(&reg, &id(), 10.0, f64::NEG_INFINITY, &FeedbackConfig::default());
        assert!((f - 0.5).abs() < 1e-9, "factor {f}");
    }

    #[test]
    fn factor_is_clamped() {
        let reg = registry_with(&[1e6, 1e6, 1e6, 1e6]);
        let cfg = FeedbackConfig::default();
        assert_eq!(calibration_factor(&reg, &id(), 0.001, f64::NEG_INFINITY, &cfg), cfg.limit);
        let reg = registry_with(&[1e-9, 1e-9, 1e-9, 1e-9]);
        assert_eq!(calibration_factor(&reg, &id(), 1e9, f64::NEG_INFINITY, &cfg), 1.0 / cfg.limit);
    }

    #[test]
    fn ewma_tracks_regime_changes() {
        // Old samples say 10 s, recent say 40 s: the factor leans recent.
        let mut samples = vec![10.0; 10];
        samples.extend(vec![40.0; 10]);
        let reg = registry_with(&samples);
        let f =
            calibration_factor(&reg, &id(), 10.0, f64::NEG_INFINITY, &FeedbackConfig::default());
        assert!(f > 3.0, "factor {f} should lean toward the recent regime");
    }

    #[test]
    fn calibration_segments_at_the_configuration_switch() {
        // Regression: a query-shipping regime measured ~80 s, then the
        // controller switched the instance to data-shipping (predicted
        // 10 s, measured ~10 s). The factor for the *current* configuration
        // must come from post-switch samples only — under the old
        // whole-series EWMA the stale 80 s samples bled through the decay
        // and reported the well-calibrated model as badly off.
        let reg = MetricRegistry::new();
        for t in 0..10 {
            reg.record("DBclient.1.response_time", t as f64, 80.0); // QS regime
        }
        let switch_time = 10.0;
        for t in 10..14 {
            reg.record("DBclient.1.response_time", t as f64, 10.0); // DS regime
        }
        let cfg = FeedbackConfig::default();
        let f = calibration_factor(&reg, &id(), 10.0, switch_time, &cfg);
        assert!((f - 1.0).abs() < 1e-9, "post-switch factor {f} must be clean");
        // Unsegmented, the pre-switch regime still poisons the factor.
        let stale = calibration_factor(&reg, &id(), 10.0, f64::NEG_INFINITY, &cfg);
        assert!(stale > 1.5, "whole-series factor {stale} shows the bug being fixed");
        // Too few post-switch samples: fall back to no correction rather
        // than trusting the stale regime.
        let f = calibration_factor(&reg, &id(), 10.0, 12.0, &cfg);
        assert_eq!(f, 1.0, "min_samples applies to the segment, not the series");
    }

    #[test]
    fn degenerate_predictions_are_ignored() {
        let reg = registry_with(&[10.0; 5]);
        let cfg = FeedbackConfig::default();
        assert_eq!(calibration_factor(&reg, &id(), 0.0, f64::NEG_INFINITY, &cfg), 1.0);
        assert_eq!(calibration_factor(&reg, &id(), f64::INFINITY, f64::NEG_INFINITY, &cfg), 1.0);
        assert_eq!(calibration_factor(&reg, &id(), -5.0, f64::NEG_INFINITY, &cfg), 1.0);
    }
}
