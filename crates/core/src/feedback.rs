//! Measured-performance feedback: calibrating predictions with the metric
//! interface.
//!
//! §2: the controller "must gather relevant information about both the
//! applications and the environment" — not just static bundle numbers.
//! When applications report actual response times (metric
//! `<app>.<id>.response_time`), the controller can compare them with its
//! predictions and derive a per-instance *calibration factor* that scales
//! future predictions, absorbing model error the same way Active Harmony's
//! later online tuners did.

use harmony_metrics::MetricRegistry;
use serde::{Deserialize, Serialize};

use crate::app::InstanceId;

/// The metric suffix the calibration consumes.
pub const RESPONSE_TIME_METRIC: &str = "response_time";

/// Configuration for measured feedback.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FeedbackConfig {
    /// Minimum samples before a factor is trusted.
    pub min_samples: usize,
    /// Clamp on the correction factor (guards against transient spikes
    /// and clock mixups): factors land in `[1/limit, limit]`.
    pub limit: f64,
    /// EWMA smoothing for the measured series (weight on recent samples).
    pub alpha: f64,
}

impl Default for FeedbackConfig {
    fn default() -> Self {
        FeedbackConfig { min_samples: 3, limit: 10.0, alpha: 0.3 }
    }
}

/// Computes the calibration factor for one instance: smoothed measured
/// response time divided by `predicted`, clamped; `1.0` when there is not
/// enough data or no meaningful prediction.
pub fn calibration_factor(
    metrics: &MetricRegistry,
    id: &InstanceId,
    predicted: f64,
    config: &FeedbackConfig,
) -> f64 {
    if !(predicted.is_finite()) || predicted <= 0.0 {
        return 1.0;
    }
    let name = format!("{id}.{RESPONSE_TIME_METRIC}");
    let Some(series) = metrics.series(&name) else { return 1.0 };
    if series.len() < config.min_samples {
        return 1.0;
    }
    let Some(measured) = series.ewma(config.alpha) else { return 1.0 };
    if measured <= 0.0 {
        return 1.0;
    }
    let limit = config.limit.max(1.0);
    (measured / predicted).clamp(1.0 / limit, limit)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn id() -> InstanceId {
        InstanceId::new("DBclient", 1)
    }

    fn registry_with(samples: &[f64]) -> MetricRegistry {
        let reg = MetricRegistry::new();
        for (i, v) in samples.iter().enumerate() {
            reg.record("DBclient.1.response_time", i as f64, *v);
        }
        reg
    }

    #[test]
    fn no_data_means_no_correction() {
        let reg = MetricRegistry::new();
        assert_eq!(calibration_factor(&reg, &id(), 10.0, &FeedbackConfig::default()), 1.0);
    }

    #[test]
    fn too_few_samples_means_no_correction() {
        let reg = registry_with(&[20.0, 20.0]);
        assert_eq!(calibration_factor(&reg, &id(), 10.0, &FeedbackConfig::default()), 1.0);
    }

    #[test]
    fn underestimating_model_gets_scaled_up() {
        // The model says 10 s; reality is consistently ~20 s.
        let reg = registry_with(&[20.0, 20.0, 20.0, 20.0]);
        let f = calibration_factor(&reg, &id(), 10.0, &FeedbackConfig::default());
        assert!((f - 2.0).abs() < 1e-9, "factor {f}");
    }

    #[test]
    fn overestimating_model_gets_scaled_down() {
        let reg = registry_with(&[5.0, 5.0, 5.0, 5.0]);
        let f = calibration_factor(&reg, &id(), 10.0, &FeedbackConfig::default());
        assert!((f - 0.5).abs() < 1e-9, "factor {f}");
    }

    #[test]
    fn factor_is_clamped() {
        let reg = registry_with(&[1e6, 1e6, 1e6, 1e6]);
        let cfg = FeedbackConfig::default();
        assert_eq!(calibration_factor(&reg, &id(), 0.001, &cfg), cfg.limit);
        let reg = registry_with(&[1e-9, 1e-9, 1e-9, 1e-9]);
        assert_eq!(calibration_factor(&reg, &id(), 1e9, &cfg), 1.0 / cfg.limit);
    }

    #[test]
    fn ewma_tracks_regime_changes() {
        // Old samples say 10 s, recent say 40 s: the factor leans recent.
        let mut samples = vec![10.0; 10];
        samples.extend(vec![40.0; 10]);
        let reg = registry_with(&samples);
        let f = calibration_factor(&reg, &id(), 10.0, &FeedbackConfig::default());
        assert!(f > 3.0, "factor {f} should lean toward the recent regime");
    }

    #[test]
    fn degenerate_predictions_are_ignored() {
        let reg = registry_with(&[10.0; 5]);
        let cfg = FeedbackConfig::default();
        assert_eq!(calibration_factor(&reg, &id(), 0.0, &cfg), 1.0);
        assert_eq!(calibration_factor(&reg, &id(), f64::INFINITY, &cfg), 1.0);
        assert_eq!(calibration_factor(&reg, &id(), -5.0, &cfg), 1.0);
    }
}
