//! System snapshots: a serializable summary of the controller's state.
//!
//! The adaptation controller "accumulates detailed performance and resource
//! information into a single place" (§1); a [`SystemSnapshot`] is that
//! place, frozen — used by the `status` protocol verb, the experiment
//! binaries, and operators debugging a live Harmony process.

use serde::{Deserialize, Serialize};

use crate::controller::Controller;
use crate::persist::RecoveryInfo;
use crate::session::RetirementRecord;

/// One application's summary.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AppSnapshot {
    /// Instance name (`DBclient.66`).
    pub instance: String,
    /// Arrival time (controller clock).
    pub arrived_at: f64,
    /// Per-bundle state: `(bundle, configuration label, predicted seconds,
    /// reconfiguration count)`. Unplaced bundles report `"-"` and
    /// infinity.
    pub bundles: Vec<(String, String, f64, u32)>,
}

/// One node's summary.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct NodeSnapshot {
    /// Node name.
    pub name: String,
    /// Speed relative to the reference machine.
    pub speed: f64,
    /// Free / total memory (MB).
    pub free_memory: f64,
    /// Total memory (MB).
    pub total_memory: f64,
    /// Assigned tasks.
    pub tasks: u32,
    /// Exclusive (dedicated) holds.
    pub exclusive: u32,
}

/// One instance's session-lease summary.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SessionSnapshot {
    /// Instance name (`DBclient.66`).
    pub instance: String,
    /// Controller-clock time the lease expires.
    pub lease_deadline: f64,
    /// The server observed a disconnect without a reattach since.
    pub disconnected: bool,
    /// Lease renewals so far.
    pub renewals: u64,
}

/// Decision-engine counters, from the `controller.optimizer.*` metrics.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct OptimizerSnapshot {
    /// The configured optimizer's short name (`greedy`, `exhaustive`,
    /// `annealing`).
    pub kind: String,
    /// Joint searches run so far.
    pub searches: u64,
    /// Joint assignments evaluated across all searches.
    pub evals: u64,
    /// Evaluations rejected as infeasible (unplaceable or non-finite
    /// score).
    pub infeasible: u64,
    /// Candidate-cache hits.
    pub cache_hits: u64,
    /// Candidate-cache misses (fresh enumerations).
    pub cache_misses: u64,
    /// Entries currently memoized in the candidate cache.
    pub cache_size: u64,
    /// Wall time of the most recent joint search, in milliseconds (0 when
    /// none has run).
    pub last_wall_ms: f64,
    /// Facts-pruning: the configured [`crate::PruningMode`]'s short name
    /// (`off`, `verify`, `on`).
    #[serde(default)]
    pub pruning_mode: String,
    /// Facts-pruning: candidates dropped by dominance proofs.
    #[serde(default)]
    pub pruning_dominated: u64,
    /// Facts-pruning: candidates dropped by capacity certificates.
    #[serde(default)]
    pub pruning_infeasible: u64,
    /// Facts-pruning: joint assignments skipped by bounds or component
    /// recombination instead of being evaluated.
    #[serde(default)]
    pub pruning_nodes_pruned: u64,
    /// Verify-mode runs completed.
    #[serde(default)]
    pub pruning_verified: u64,
    /// Verify-mode divergences detected (always 0 unless the facts engine
    /// is unsound).
    #[serde(default)]
    pub pruning_mismatches: u64,
}

/// One histogram's summary, from the registry's latency histograms
/// (`controller.phase.*`, `server.verb.*`, per-instance response times).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct HistogramSnapshot {
    /// Histogram name.
    pub name: String,
    /// Total observations.
    pub count: u64,
    /// Mean observed value (seconds).
    pub mean: f64,
    /// Maximum observed value (seconds).
    pub max: f64,
    /// Upper bound on the median (bucket upper edge).
    pub p50: f64,
    /// Upper bound on the 95th percentile.
    pub p95: f64,
}

/// Decision-coalescing counters, from the `controller.scheduler.*`
/// metrics. All zero when coalescing is disabled (`window: 0`).
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct SchedulerSnapshot {
    /// Dirty marks awaiting the next coalesced re-evaluation.
    pub pending: u64,
    /// Coalescing windows fired so far.
    pub windows_fired: u64,
    /// Total dirty marks covered by fired windows.
    pub coalesced_arrivals: u64,
    /// Per-event re-evaluations avoided by coalescing (marks minus
    /// windows).
    pub decisions_saved: u64,
}

/// Persistence state: whether a WAL is attached, how the controller was
/// recovered, and the durability counters.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct PersistenceSnapshot {
    /// How this controller was recovered (`None` when it never went
    /// through a state store).
    pub recovery: Option<RecoveryInfo>,
    /// WAL appends since startup.
    pub appends: u64,
    /// WAL appends that failed (a failing disk; the controller keeps
    /// serving).
    pub append_errors: u64,
    /// Compacting checkpoints taken since startup.
    pub checkpoints: u64,
}

/// A frozen summary of the whole system.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SystemSnapshot {
    /// Controller clock at snapshot time.
    pub time: f64,
    /// Current objective score (lower is better).
    pub objective: f64,
    /// The objective function's name.
    pub objective_name: String,
    /// Applications in arrival order.
    pub apps: Vec<AppSnapshot>,
    /// Cluster nodes in name order.
    pub nodes: Vec<NodeSnapshot>,
    /// Total decisions applied since startup.
    pub decisions: usize,
    /// Session-lease state per registered instance.
    #[serde(default)]
    pub sessions: Vec<SessionSnapshot>,
    /// Instance retirements so far (explicit `end` and reaped), oldest
    /// first, with reasons.
    #[serde(default)]
    pub retired: Vec<RetirementRecord>,
    /// Decision-engine counters (searches, evaluations, candidate cache).
    #[serde(default)]
    pub optimizer: OptimizerSnapshot,
    /// Decision-coalescing counters (pending marks, windows fired).
    #[serde(default)]
    pub scheduler: SchedulerSnapshot,
    /// Latency-histogram summaries in name order (controller phases,
    /// per-verb service times, per-instance response times).
    #[serde(default)]
    pub histograms: Vec<HistogramSnapshot>,
    /// Journal entries ever appended (the next tail cursor's upper bound).
    #[serde(default)]
    pub journal_seq: u64,
    /// Persistence state: `None` when the daemon runs without a state
    /// directory, `Some` with recovery provenance and durability counters
    /// when it does.
    #[serde(default)]
    pub persistence: Option<PersistenceSnapshot>,
}

impl SystemSnapshot {
    /// Captures the controller's current state.
    pub fn capture(ctl: &Controller) -> Self {
        let apps = ctl
            .instances()
            .into_iter()
            .filter_map(|id| {
                let app = ctl.app(&id)?;
                Some(AppSnapshot {
                    instance: id.to_string(),
                    arrived_at: app.arrived_at,
                    bundles: app
                        .bundles
                        .iter()
                        .map(|b| match &b.current {
                            Some(c) => {
                                (b.spec.name.clone(), c.label(), c.predicted, b.reconfig_count)
                            }
                            None => (
                                b.spec.name.clone(),
                                "-".to_string(),
                                f64::INFINITY,
                                b.reconfig_count,
                            ),
                        })
                        .collect(),
                })
            })
            .collect();
        let nodes = ctl
            .cluster()
            .nodes()
            .map(|n| NodeSnapshot {
                name: n.decl.name.clone(),
                speed: n.decl.speed,
                free_memory: n.free_memory,
                total_memory: n.decl.memory,
                tasks: n.tasks,
                exclusive: n.exclusive,
            })
            .collect();
        let sessions = ctl
            .sessions()
            .iter()
            .map(|(id, s)| SessionSnapshot {
                instance: id.to_string(),
                // The stored deadline extended by any not-yet-folded
                // read-path touch, i.e. what the reaper will honor.
                lease_deadline: ctl.effective_deadline(id).unwrap_or(s.deadline),
                disconnected: s.disconnected,
                renewals: s.renewals,
            })
            .collect();
        SystemSnapshot {
            time: ctl.now(),
            objective: ctl.objective_score(),
            objective_name: ctl.config().objective.name().to_string(),
            apps,
            nodes,
            decisions: ctl.decisions().len(),
            sessions,
            retired: ctl.retirements().to_vec(),
            optimizer: OptimizerSnapshot {
                kind: ctl.config().optimizer.name().to_string(),
                searches: ctl.metrics().counter("controller.optimizer.searches"),
                evals: ctl.metrics().counter("controller.optimizer.evals"),
                infeasible: ctl.metrics().counter("controller.optimizer.infeasible"),
                cache_hits: ctl.metrics().counter("controller.optimizer.cache_hits"),
                cache_misses: ctl.metrics().counter("controller.optimizer.cache_misses"),
                cache_size: ctl.candidate_cache_len() as u64,
                last_wall_ms: ctl
                    .metrics()
                    .gauge("controller.optimizer.last_wall_ms")
                    .unwrap_or(0.0),
                pruning_mode: ctl.config().pruning.name().to_string(),
                pruning_dominated: ctl.metrics().counter("controller.pruning.dominated_dropped"),
                pruning_infeasible: ctl.metrics().counter("controller.pruning.infeasible_dropped"),
                pruning_nodes_pruned: ctl.metrics().counter("controller.pruning.nodes_pruned"),
                pruning_verified: ctl.metrics().counter("controller.pruning.verified"),
                pruning_mismatches: ctl.metrics().counter("controller.pruning.mismatches"),
            },
            scheduler: SchedulerSnapshot {
                pending: ctl.pending_decisions() as u64,
                windows_fired: ctl.metrics().counter("controller.scheduler.windows_fired"),
                coalesced_arrivals: ctl
                    .metrics()
                    .counter("controller.scheduler.coalesced_arrivals"),
                decisions_saved: ctl.metrics().counter("controller.scheduler.decisions_saved"),
            },
            histograms: ctl
                .metrics()
                .histogram_names()
                .into_iter()
                .filter_map(|name| {
                    let h = ctl.metrics().histogram(&name)?;
                    if h.is_empty() {
                        return None;
                    }
                    Some(HistogramSnapshot {
                        name,
                        count: h.len(),
                        mean: h.mean().unwrap_or(0.0),
                        max: h.max().unwrap_or(0.0),
                        p50: h.quantile_bound(0.5).unwrap_or(0.0),
                        p95: h.quantile_bound(0.95).unwrap_or(0.0),
                    })
                })
                .collect(),
            journal_seq: ctl.journal_seq(),
            persistence: ctl.wal_attached().then(|| PersistenceSnapshot {
                recovery: ctl.recovery_info(),
                appends: ctl.metrics().counter("controller.persistence.appends"),
                append_errors: ctl.metrics().counter("controller.persistence.append_errors"),
                checkpoints: ctl.metrics().counter("controller.persistence.checkpoints"),
            }),
        }
    }

    /// Serializes to JSON (used by the `status` wire verb).
    ///
    /// # Errors
    ///
    /// Serialization errors from `serde_json` (practically unreachable for
    /// this type).
    pub fn to_json(&self) -> Result<String, serde_json::Error> {
        serde_json::to_string(self)
    }

    /// Parses from JSON.
    ///
    /// # Errors
    ///
    /// Deserialization errors on malformed input.
    pub fn from_json(s: &str) -> Result<Self, serde_json::Error> {
        serde_json::from_str(s)
    }

    /// Total tasks across nodes.
    pub fn total_tasks(&self) -> u32 {
        self.nodes.iter().map(|n| n.tasks).sum()
    }

    /// Overall memory utilization in `[0, 1]`.
    pub fn memory_utilization(&self) -> f64 {
        let total: f64 = self.nodes.iter().map(|n| n.total_memory).sum();
        let free: f64 = self.nodes.iter().map(|n| n.free_memory).sum();
        if total <= 0.0 {
            0.0
        } else {
            (total - free) / total
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::controller::ControllerConfig;
    use harmony_resources::Cluster;
    use harmony_rsl::schema::parse_bundle_script;

    fn controller() -> Controller {
        let cluster = Cluster::from_rsl(&harmony_rsl::listings::sp2_cluster(8)).unwrap();
        let mut ctl = Controller::new(cluster, ControllerConfig::default());
        ctl.set_time(12.5);
        ctl.register(parse_bundle_script(harmony_rsl::listings::FIG2B_BAG).unwrap()).unwrap();
        ctl
    }

    #[test]
    fn capture_reflects_controller_state() {
        let ctl = controller();
        let snap = SystemSnapshot::capture(&ctl);
        assert_eq!(snap.time, 12.5);
        assert_eq!(snap.objective, 230.0);
        assert_eq!(snap.objective_name, "min-avg-completion");
        assert_eq!(snap.apps.len(), 1);
        assert_eq!(snap.apps[0].instance, "bag.1");
        assert_eq!(snap.apps[0].bundles[0].1, "run[workerNodes=8]");
        assert_eq!(snap.nodes.len(), 8);
        assert_eq!(snap.total_tasks(), 8);
        assert!(snap.memory_utilization() > 0.0);
        assert_eq!(snap.decisions, ctl.decisions().len());
    }

    #[test]
    fn json_round_trip() {
        let snap = SystemSnapshot::capture(&controller());
        let json = snap.to_json().unwrap();
        let back = SystemSnapshot::from_json(&json).unwrap();
        assert_eq!(snap, back);
        assert!(SystemSnapshot::from_json("not json").is_err());
    }

    #[test]
    fn unplaced_bundles_show_dash_and_infinity() {
        let cluster = Cluster::from_rsl(&harmony_rsl::listings::sp2_cluster(2)).unwrap();
        let mut ctl = Controller::new(cluster, ControllerConfig::default());
        // A 4-node bundle on a 2-node cluster cannot place.
        let _ = ctl.register(parse_bundle_script(harmony_rsl::listings::FIG2A_SIMPLE).unwrap());
        let snap = SystemSnapshot::capture(&ctl);
        assert_eq!(snap.apps.len(), 1);
        assert_eq!(snap.apps[0].bundles[0].1, "-");
        assert!(snap.apps[0].bundles[0].2.is_infinite());
    }

    #[test]
    fn optimizer_counters_appear_in_snapshot() {
        let mut ctl = controller();
        crate::optimizer::exhaustive(&mut ctl, 10_000).unwrap();
        let snap = SystemSnapshot::capture(&ctl);
        assert_eq!(snap.optimizer.kind, "greedy");
        assert!(snap.optimizer.searches >= 1);
        assert!(snap.optimizer.evals > 0);
        assert!(snap.optimizer.cache_misses >= 1);
        assert_eq!(snap.optimizer.cache_size, ctl.candidate_cache_len() as u64);
        assert!(snap.optimizer.last_wall_ms >= 0.0);
        assert_eq!(snap.optimizer.pruning_mode, "off");
    }

    #[test]
    fn pruning_counters_appear_in_snapshot() {
        let mut ctl = controller();
        crate::optimizer::exhaustive_pruned(&mut ctl, 10_000, crate::PruningMode::Verify).unwrap();
        let snap = SystemSnapshot::capture(&ctl);
        assert_eq!(snap.optimizer.pruning_verified, 1);
        assert_eq!(snap.optimizer.pruning_mismatches, 0);
    }

    #[test]
    fn histograms_and_journal_appear_in_snapshot() {
        let ctl = controller();
        // A decision already happened in controller(); phase histograms and
        // journal entries must be visible in the capture.
        ctl.record_metric("bag.1.response_time", 13.0, 42.0);
        let snap = SystemSnapshot::capture(&ctl);
        assert!(snap.journal_seq > 0, "registration journaled");
        let names: Vec<&str> = snap.histograms.iter().map(|h| h.name.as_str()).collect();
        assert!(names.contains(&"controller.phase.commit"), "got {names:?}");
        assert!(names.contains(&"bag.1.response_time"), "got {names:?}");
        let rt = snap.histograms.iter().find(|h| h.name == "bag.1.response_time").unwrap();
        assert_eq!(rt.count, 1);
        assert!(rt.p50 >= 42.0 && rt.max >= 42.0);
    }

    #[test]
    fn snapshot_json_without_optimizer_field_still_parses() {
        // Wire compatibility: a status payload from a build predating the
        // optimizer counters must deserialize with defaults.
        let json = r#"{"time":1.0,"objective":230.0,"objective_name":"min-avg-completion","apps":[],"nodes":[],"decisions":0}"#;
        let snap = SystemSnapshot::from_json(json).unwrap();
        assert_eq!(snap.optimizer, OptimizerSnapshot::default());
    }

    #[test]
    fn empty_system_snapshot() {
        let cluster = Cluster::new();
        let ctl = Controller::new(cluster, ControllerConfig::default());
        let snap = SystemSnapshot::capture(&ctl);
        assert_eq!(snap.objective, 0.0);
        assert!(snap.apps.is_empty());
        assert!(snap.nodes.is_empty());
        assert_eq!(snap.memory_utilization(), 0.0);
    }
}
