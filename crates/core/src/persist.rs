//! Crash-consistent controller persistence: WAL events, lossless state
//! snapshots, and the [`StateStore`] that ties them to a state directory.
//!
//! ## What gets logged
//!
//! The WAL records *external inputs*, not derived state: every
//! state-changing verb the embedding can invoke (startup, bundle setup,
//! end, lease renewals and touches, disconnects, polls, metric reports,
//! reaps, scheduler ticks, node membership events) is logged as one
//! [`WalEvent`] carrying the controller-clock time it executed at.
//! Decisions, retirements, and journal entries are deliberately *not*
//! logged — the optimizer is deterministic (bit-identical across thread
//! counts), so replaying the inputs re-derives them exactly.
//!
//! ## Recovery sequence
//!
//! [`StateStore::open`] scans the directory for `harmony-<gen>.snap` /
//! `harmony-<gen>.wal` pairs, loads the newest snapshot that parses and
//! validates (falling back to older generations on damage), replays the
//! matching WAL tail — tolerating a torn final record, refusing a
//! corrupted middle one — then starts a fresh generation: the recovered
//! state is snapshotted, a new WAL is attached, and older generations
//! beyond the previous pair are purged.
//!
//! ## Durability window
//!
//! Appends ride `harmony-wal`'s group commit: the hot decision path never
//! blocks on fsync, at the cost of up to one flush interval (~5 ms) of
//! acknowledged events being lost to a crash. [`StateStore::sync`] forces
//! a flush for embeddings that want a hard barrier (shutdown, tests).
//!
//! ## What is rebuilt cold
//!
//! Optimizer candidate caches, metric counters, gauges, and histograms
//! restart empty after recovery — they are measurement state, not control
//! state. Metric *series* are persisted (feedback calibration reads them,
//! and predictions must not jump across a restart).

use std::path::Path;
use std::sync::Arc;

use harmony_ns::{HPath, InstanceRegistry, Namespace};
use harmony_resources::Cluster;
use harmony_rsl::schema::BundleSpec;
use harmony_rsl::Value;
use harmony_wal::{read_wal, StateDir, WalConfig, WalTail, WalWriter};
use serde::{Deserialize, Serialize};

use crate::app::{AppInstance, InstanceId};
use crate::controller::{Controller, ControllerConfig, DecisionRecord};
use crate::error::CoreError;
use crate::events::HarmonyEvent;
use crate::journal::JournalEntry;
use crate::scheduler::SchedulerState;
use crate::session::{RetirementRecord, SessionState};

/// Version stamp of [`PersistedState`]; a mismatch refuses recovery
/// rather than misinterpreting fields.
pub const PERSIST_VERSION: u32 = 1;

/// Default number of WAL appends between automatic compacting snapshots
/// (see [`StateStore::maybe_checkpoint`]).
pub const DEFAULT_SNAPSHOT_EVERY: u64 = 4096;

/// One state-changing input, as serialized into the WAL.
///
/// Every variant carries `now`, the controller clock at the moment the
/// verb ran: replay restores the clock before re-applying the verb, so
/// clock advances that produced no event of their own (quiet scheduler
/// ticks) are reproduced lazily by the next logged event.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum WalEvent {
    /// A [`HarmonyEvent`] delivered through
    /// [`Controller::handle_event`] — the whole event, so bundle scripts
    /// and node declarations replay verbatim.
    Event {
        /// Controller clock at execution.
        now: f64,
        /// The delivered event.
        event: HarmonyEvent,
    },
    /// A direct [`Controller::startup`] call.
    Startup {
        /// Controller clock at execution.
        now: f64,
        /// Application name.
        app: String,
    },
    /// A direct [`Controller::add_bundle`] call (already-parsed spec).
    Bundle {
        /// Controller clock at execution.
        now: f64,
        /// The receiving instance.
        id: InstanceId,
        /// The bundle specification.
        spec: BundleSpec,
    },
    /// A direct [`Controller::end`] call.
    End {
        /// Controller clock at execution.
        now: f64,
        /// The departing instance.
        id: InstanceId,
    },
    /// A write-path lease renewal ([`Controller::renew_lease`]).
    Renew {
        /// Controller clock at execution.
        now: f64,
        /// The renewing instance.
        id: InstanceId,
    },
    /// A session reattach ([`Controller::reattach`]).
    Reattach {
        /// Controller clock at execution.
        now: f64,
        /// The reattaching instance.
        id: InstanceId,
    },
    /// A connection-drop mark ([`Controller::mark_disconnected`]).
    Disconnect {
        /// Controller clock at execution.
        now: f64,
        /// The disconnected instance.
        id: InstanceId,
    },
    /// A read-path lease touch ([`Controller::touch`]).
    Touch {
        /// Controller clock at execution.
        now: f64,
        /// The touched instance.
        id: InstanceId,
    },
    /// A non-empty pending-variable drain
    /// ([`Controller::take_pending_vars`]); empty drains are no-ops and
    /// are not logged.
    Poll {
        /// Controller clock at execution.
        now: f64,
        /// The polling instance.
        id: InstanceId,
    },
    /// A read-path metric report ([`Controller::record_metric`]). Logged
    /// even when the sample is non-finite and rejected, so the
    /// `metric-rejected` journal entry replays too.
    Metric {
        /// Controller clock at execution.
        now: f64,
        /// Dotted metric name.
        name: String,
        /// Sample timestamp.
        time: f64,
        /// Sample value.
        value: f64,
    },
    /// A lease sweep ([`Controller::reap_expired`]).
    Reap {
        /// The sweep time (also advances the clock).
        now: f64,
    },
    /// A scheduler tick that fired a coalescing window
    /// ([`Controller::service_scheduler`]); non-firing ticks only advance
    /// the clock and are not logged.
    Tick {
        /// The tick time (also advances the clock).
        now: f64,
    },
    /// A forced window flush ([`Controller::flush_scheduler`]) with marks
    /// pending; no-op flushes are not logged.
    Flush {
        /// Controller clock at execution.
        now: f64,
    },
    /// A full re-evaluation ([`Controller::reevaluate`]).
    Reevaluate {
        /// Controller clock at execution.
        now: f64,
    },
}

impl WalEvent {
    /// Every variant name, in declaration order. The WAL-coverage guard
    /// test diffs this against the variants a full-verb run actually
    /// produces and replays, so a new verb cannot silently skip
    /// persistence. Keep in sync with [`WalEvent::variant`] (the compiler
    /// enforces the match there is exhaustive; the guard test enforces
    /// this list matches it).
    pub const VARIANTS: [&'static str; 14] = [
        "event",
        "startup",
        "bundle",
        "end",
        "renew",
        "reattach",
        "disconnect",
        "touch",
        "poll",
        "metric",
        "reap",
        "tick",
        "flush",
        "reevaluate",
    ];

    /// The variant's name (see [`WalEvent::VARIANTS`]). The match is
    /// deliberately exhaustive — adding a variant without extending
    /// `VARIANTS` fails to compile here or fails the coverage guard.
    pub fn variant(&self) -> &'static str {
        match self {
            WalEvent::Event { .. } => "event",
            WalEvent::Startup { .. } => "startup",
            WalEvent::Bundle { .. } => "bundle",
            WalEvent::End { .. } => "end",
            WalEvent::Renew { .. } => "renew",
            WalEvent::Reattach { .. } => "reattach",
            WalEvent::Disconnect { .. } => "disconnect",
            WalEvent::Touch { .. } => "touch",
            WalEvent::Poll { .. } => "poll",
            WalEvent::Metric { .. } => "metric",
            WalEvent::Reap { .. } => "reap",
            WalEvent::Tick { .. } => "tick",
            WalEvent::Flush { .. } => "flush",
            WalEvent::Reevaluate { .. } => "reevaluate",
        }
    }

    /// The controller clock at the moment the logged verb executed.
    pub fn now(&self) -> f64 {
        match self {
            WalEvent::Event { now, .. }
            | WalEvent::Startup { now, .. }
            | WalEvent::Bundle { now, .. }
            | WalEvent::End { now, .. }
            | WalEvent::Renew { now, .. }
            | WalEvent::Reattach { now, .. }
            | WalEvent::Disconnect { now, .. }
            | WalEvent::Touch { now, .. }
            | WalEvent::Poll { now, .. }
            | WalEvent::Metric { now, .. }
            | WalEvent::Reap { now }
            | WalEvent::Tick { now }
            | WalEvent::Flush { now }
            | WalEvent::Reevaluate { now } => *now,
        }
    }
}

/// The controller's complete control-plane state, as written into a
/// snapshot file. Lossless for everything decisions depend on; optimizer
/// caches and metric counters/histograms are rebuilt cold.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct PersistedState {
    /// Format version ([`PERSIST_VERSION`]).
    pub version: u32,
    /// Controller clock.
    pub now: f64,
    /// Full configuration (optimizer, lease, coalescing, pruning...).
    pub config: ControllerConfig,
    /// Cluster state including live allocations.
    pub cluster: Cluster,
    /// Instance-id allocator (so recovered ids never collide).
    pub registry: InstanceRegistry,
    /// Registered applications with their bundles and applied configs.
    pub apps: Vec<(InstanceId, AppInstance)>,
    /// Arrival order (drives re-evaluation order).
    pub arrival_order: Vec<InstanceId>,
    /// The shared namespace, sequence counter included.
    pub namespace: Namespace<Value>,
    /// Buffered variable updates awaiting each instance's next poll.
    pub pending_vars: Vec<(InstanceId, Vec<(HPath, Value)>)>,
    /// Session lease state per instance.
    pub sessions: Vec<(InstanceId, SessionState)>,
    /// Unfolded read-path touch stamps (raw non-zero `f64::to_bits`).
    pub touches: Vec<(InstanceId, u64)>,
    /// Every decision applied so far.
    pub decisions: Vec<DecisionRecord>,
    /// Every retirement so far.
    pub retirements: Vec<RetirementRecord>,
    /// Retained journal entries, oldest first.
    pub journal_entries: Vec<JournalEntry>,
    /// The journal's next sequence number (clients' cursors stay valid).
    pub journal_next_seq: u64,
    /// The journal ring's capacity.
    pub journal_capacity: usize,
    /// The coalescing scheduler's pending window.
    pub scheduler: SchedulerState,
    /// Metric time series (`name -> [(time, value)]`) — feedback
    /// calibration reads these, so they must survive restarts.
    pub metric_series: Vec<(String, Vec<(f64, f64)>)>,
}

impl PersistedState {
    /// Zeroes the per-decision optimizer phase timings — wall-clock
    /// measurements no two runs share. Everything else in a decision
    /// (choice, objectives, provenance) is deterministic and stays.
    pub fn normalize_measurements(&mut self) {
        for d in &mut self.decisions {
            d.phases = Default::default();
        }
    }

    /// Zeroes the controller clock. `set_time` is deliberately not
    /// WAL-logged (every event carries its own timestamp and a restarted
    /// daemon re-anchors to wall time), so a clock advance followed by no
    /// loggable event is legitimately lost to a crash — crash-equivalence
    /// comparisons must not see it.
    pub fn normalize_clock(&mut self) {
        self.now = 0.0;
    }

    /// The canonical JSON image fingerprints are computed over. One
    /// serialization, shared by the harness's recovery oracle and the
    /// model checker's visited set, so their fingerprints stay comparable.
    pub fn canonical_json(&self) -> String {
        serde_json::to_string(self).expect("persisted state serializes")
    }

    /// FNV-1a 64 over the canonical JSON with measurements normalized
    /// out but the clock kept — the model checker's exploration
    /// fingerprint, where two states differing only in the clock are
    /// genuinely different (a later reap behaves differently).
    pub fn canonical_fingerprint(&self) -> u64 {
        let mut state = self.clone();
        state.normalize_measurements();
        harmony_rng::fnv::fnv1a_64(state.canonical_json().as_bytes())
    }

    /// FNV-1a 64 with measurements *and* the clock normalized out — the
    /// crash-equivalence fingerprint the recovery oracles compare, where
    /// an unlogged `set_time` must not distinguish states.
    pub fn recovery_fingerprint(&self) -> u64 {
        let mut state = self.clone();
        state.normalize_measurements();
        state.normalize_clock();
        harmony_rng::fnv::fnv1a_64(state.canonical_json().as_bytes())
    }
}

/// How a recovered controller came to be. Surfaced in
/// [`SystemSnapshot`](crate::SystemSnapshot) so `harmonyctl status` shows
/// operators that (and from what) the daemon recovered.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RecoveryInfo {
    /// The generation this run writes to.
    pub generation: u64,
    /// The generation whose snapshot seeded recovery (`None` on a fresh
    /// start with no prior state).
    pub snapshot_loaded: Option<u64>,
    /// WAL records replayed on top of the snapshot.
    pub replayed: u64,
    /// True when the replayed WAL ended in a torn record (crash
    /// mid-write; the tail was discarded).
    pub torn_tail: bool,
}

/// A controller's durable home: a directory of generation-numbered
/// snapshot + WAL pairs, the attached group-commit writer, and the
/// checkpoint policy.
#[derive(Debug)]
pub struct StateStore {
    dir: StateDir,
    generation: u64,
    writer: Arc<WalWriter>,
    snapshot_every: u64,
}

fn persistence_err(context: &str, e: impl std::fmt::Display) -> CoreError {
    CoreError::Persistence { detail: format!("{context}: {e}") }
}

impl StateStore {
    /// Opens (or creates) the state directory at `path`, recovering the
    /// controller it holds — or building a fresh one with `fresh` when the
    /// directory has no prior state. The returned controller has the WAL
    /// attached and its [`Controller::recovery_info`] set.
    ///
    /// # Errors
    ///
    /// [`CoreError::Persistence`] when the directory is unreadable, no
    /// present generation yields a valid snapshot (prior state exists but
    /// cannot be trusted — never silently discarded), a WAL record
    /// *before* the tail is corrupted, or a CRC-valid record fails to
    /// parse (format/version mismatch).
    pub fn open(
        path: &Path,
        fresh: impl FnOnce() -> Controller,
    ) -> Result<(Controller, StateStore), CoreError> {
        let dir = StateDir::open(path).map_err(|e| persistence_err("open state dir", e))?;
        let gens = dir.generations().map_err(|e| persistence_err("list state dir", e))?;

        let (mut ctl, base_gen) = if gens.is_empty() {
            (fresh(), None)
        } else {
            let mut recovered = None;
            let mut last_err = String::from("no snapshot found");
            for &gen in gens.iter().rev() {
                match Self::load_snapshot(&dir, gen) {
                    Ok(c) => {
                        recovered = Some((c, gen));
                        break;
                    }
                    Err(e) => last_err = e.to_string(),
                }
            }
            let Some((c, gen)) = recovered else {
                return Err(CoreError::Persistence {
                    detail: format!(
                        "state dir {} has {} generation(s) but no loadable snapshot \
                         (refusing to discard prior state): {last_err}",
                        path.display(),
                        gens.len()
                    ),
                });
            };
            (c, Some(gen))
        };

        // Replay the recovered generation's WAL tail.
        let mut replayed = 0u64;
        let mut torn_tail = false;
        if let Some(gen) = base_gen {
            let wal_path = dir.wal_path(gen);
            if wal_path.exists() {
                let read = read_wal(&wal_path).map_err(|e| persistence_err("read wal", e))?;
                match read.tail {
                    WalTail::Clean => {}
                    WalTail::Torn { .. } => torn_tail = true,
                    WalTail::Corrupted { record, offset } => {
                        return Err(CoreError::Persistence {
                            detail: format!(
                                "wal {} is corrupted at record {record} (offset {offset}) \
                                 with valid data after it — not a torn write; refusing replay",
                                wal_path.display()
                            ),
                        });
                    }
                }
                for payload in &read.records {
                    let text = std::str::from_utf8(payload)
                        .map_err(|e| persistence_err("wal record utf8", e))?;
                    let event: WalEvent = serde_json::from_str(text)
                        .map_err(|e| persistence_err("parse wal record", e))?;
                    ctl.apply_wal_event(event);
                    replayed += 1;
                }
            }
        }

        // Start a fresh generation: snapshot the recovered state, attach a
        // new WAL, keep only the previous pair as a fallback.
        let new_gen = gens.last().copied().unwrap_or(0) + 1;
        let state = ctl.persisted_state();
        let bytes =
            serde_json::to_string(&state).map_err(|e| persistence_err("serialize snapshot", e))?;
        dir.write_snapshot(new_gen, bytes.as_bytes())
            .map_err(|e| persistence_err("write snapshot", e))?;
        let writer = Arc::new(
            WalWriter::create(&dir.wal_path(new_gen), WalConfig::default())
                .map_err(|e| persistence_err("create wal", e))?,
        );
        if let Some(gen) = base_gen {
            let _ = dir.purge_below(gen);
        }
        ctl.attach_wal(Arc::clone(&writer));
        ctl.set_recovery_info(RecoveryInfo {
            generation: new_gen,
            snapshot_loaded: base_gen,
            replayed,
            torn_tail,
        });

        let store =
            StateStore { dir, generation: new_gen, writer, snapshot_every: DEFAULT_SNAPSHOT_EVERY };
        Ok((ctl, store))
    }

    fn load_snapshot(dir: &StateDir, gen: u64) -> Result<Controller, CoreError> {
        let bytes = dir.read_snapshot(gen).map_err(|e| persistence_err("read snapshot", e))?;
        let text = String::from_utf8(bytes).map_err(|e| persistence_err("snapshot utf8", e))?;
        let state: PersistedState =
            serde_json::from_str(&text).map_err(|e| persistence_err("parse snapshot", e))?;
        Controller::from_persisted(state)
    }

    /// The generation this store is currently writing to.
    pub fn generation(&self) -> u64 {
        self.generation
    }

    /// The state directory path.
    pub fn path(&self) -> &Path {
        self.dir.path()
    }

    /// Sets how many WAL appends accumulate before
    /// [`StateStore::maybe_checkpoint`] compacts (`0` disables automatic
    /// checkpoints).
    pub fn set_snapshot_every(&mut self, every: u64) {
        self.snapshot_every = every;
    }

    /// Forces the group-commit buffer to disk — a hard durability barrier
    /// for shutdown paths and tests.
    ///
    /// # Errors
    ///
    /// [`CoreError::Persistence`] on flush failure.
    pub fn sync(&self) -> Result<(), CoreError> {
        self.writer.sync().map_err(|e| persistence_err("sync wal", e))
    }

    /// Writes a compacting snapshot of the controller's current state and
    /// rotates the WAL to a fresh generation. The caller must hold the
    /// controller exclusively (`&mut`), which quiesces concurrent
    /// read-path appends for the duration.
    ///
    /// # Errors
    ///
    /// [`CoreError::Persistence`] on serialization or I/O failure; the
    /// store keeps writing to the old generation on error.
    pub fn checkpoint(&mut self, ctl: &mut Controller) -> Result<(), CoreError> {
        let state = ctl.persisted_state();
        let bytes =
            serde_json::to_string(&state).map_err(|e| persistence_err("serialize snapshot", e))?;
        let old = self.generation;
        let new = old + 1;
        self.dir
            .write_snapshot(new, bytes.as_bytes())
            .map_err(|e| persistence_err("write snapshot", e))?;
        self.writer
            .rotate(&self.dir.wal_path(new))
            .map_err(|e| persistence_err("rotate wal", e))?;
        self.generation = new;
        let _ = self.dir.purge_below(old);
        ctl.metrics().inc_counter("controller.persistence.checkpoints");
        Ok(())
    }

    /// Checkpoints when enough WAL appends accumulated since the last
    /// rotation (the periodic compaction driver). Returns whether a
    /// checkpoint ran.
    ///
    /// # Errors
    ///
    /// Same as [`StateStore::checkpoint`].
    pub fn maybe_checkpoint(&mut self, ctl: &mut Controller) -> Result<bool, CoreError> {
        if self.snapshot_every > 0 && self.writer.appended_since_rotate() >= self.snapshot_every {
            self.checkpoint(ctl)?;
            return Ok(true);
        }
        Ok(false)
    }
}
