//! The Harmony adaptation controller.
//!
//! "The adaptation controller is the heart of the system. The controller
//! must gather relevant information about both the applications and the
//! environment, project the effects of proposed changes on the system, and
//! weigh competing costs and expected benefits of making various changes"
//! (§2).
//!
//! The controller keeps the cluster state, the registered application
//! instances with their bundles, the shared namespace, and the metric
//! registry. Its optimization policy (§4.3) is greedy: one bundle at a
//! time, in the order bundles were defined, evaluating every candidate
//! configuration against the objective function; after placing a new
//! application it re-evaluates the options of existing applications. In
//! addition, *coordinated pairwise moves* implement the paper's motivating
//! §1 scenario — "a centralized decision-maker could infer that
//! reconfiguring the first application to only six nodes will improve
//! overall efficiency and throughput" — by jointly re-choosing two bundles
//! when no single-bundle move helps (e.g. shrinking a running job to admit
//! a newcomer).

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering as AtomicOrdering};
use std::time::Instant;

use harmony_metrics::{MetricBus, MetricEvent, MetricRegistry};
use harmony_ns::{HPath, InstanceRegistry, Namespace};
use harmony_predict::{model_for_option, PredictionContext};
use harmony_resources::{Allocation, Cluster, Matcher};
use harmony_rsl::schema::{BundleSpec, OptionSpec};
use harmony_rsl::Value;
use parking_lot::Mutex;
use serde::{Deserialize, Serialize};

use crate::app::{AppInstance, BundleState, ChosenConfig, InstanceId};
use crate::candidates::{enumerate, Candidate};
use crate::error::CoreError;
use crate::feedback::{calibration_factor, FeedbackConfig};
use crate::journal::{EventJournal, JournalKind, JournalTail, PhaseTimings};
use crate::objective::Objective;
use crate::persist::{PersistedState, RecoveryInfo, WalEvent, PERSIST_VERSION};
use crate::pruning::PruningMode;
use crate::scheduler::{CoalescePolicy, DecisionScheduler};
use crate::session::{LeaseConfig, RetireReason, RetirementRecord, SessionState};

/// Default bound on the exhaustive optimizer's joint search space: the
/// same cap the analyzer's reachability pass uses for HA0106
/// ([`harmony_analyze::passes::reach::DOMAIN_CAP`]), so "domain too large
/// to enumerate" means the same thing to the linter and to the optimizer.
pub const DEFAULT_EXHAUSTIVE_LIMIT: u64 = harmony_analyze::passes::reach::DOMAIN_CAP as u64;

/// Which search policy drives option selection.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub enum OptimizerKind {
    /// The paper's policy: optimize one bundle at a time, greedily, in
    /// definition order (§4.3), plus coordinated pairwise moves.
    #[default]
    Greedy,
    /// Exhaustive search over the joint configuration space of all
    /// bundles, bounded by the contained limit. "The space of possible
    /// option combinations in any moderately large system will be so large
    /// that we will not be able to evaluate all combinations" — this
    /// exists to measure how far greedy falls from optimal on small
    /// systems.
    Exhaustive {
        /// Maximum number of joint configurations to evaluate.
        /// [`OptimizerKind::exhaustive`] fills in
        /// [`DEFAULT_EXHAUSTIVE_LIMIT`], the analyzer's HA0106 domain cap.
        limit: u64,
    },
    /// Simulated annealing over the joint space (the direction the Active
    /// Harmony project later took): several independently seeded chains
    /// walk in parallel and the best chain wins.
    Annealing {
        /// Number of proposal steps per chain.
        steps: u32,
        /// Initial temperature in objective units (seconds).
        initial_temperature: f64,
        /// RNG seed for reproducibility. Each chain derives its own
        /// start/walk sub-seeds from this, so results are identical
        /// regardless of how many worker threads run the chains.
        seed: u64,
        /// Number of independent chains (`0` means the default of 4).
        #[serde(default)]
        chains: u32,
    },
}

impl OptimizerKind {
    /// The exhaustive optimizer at its default bound,
    /// [`DEFAULT_EXHAUSTIVE_LIMIT`] — the same cap the analyzer's HA0106
    /// pass warns at, so a bundle bag the linter accepts as enumerable is
    /// exactly one the optimizer agrees to scan.
    pub fn exhaustive() -> Self {
        OptimizerKind::Exhaustive { limit: DEFAULT_EXHAUSTIVE_LIMIT }
    }

    /// Short stable name for metrics and experiment output.
    pub fn name(&self) -> &'static str {
        match self {
            OptimizerKind::Greedy => "greedy",
            OptimizerKind::Exhaustive { .. } => "exhaustive",
            OptimizerKind::Annealing { .. } => "annealing",
        }
    }
}

/// How [`Controller::add_bundle`] treats static-analysis findings from
/// `harmony-analyze` (run before any placement work).
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub enum LintMode {
    /// Reject bundles with error-severity diagnostics
    /// ([`CoreError::LintRejected`]). Warnings are counted but allowed.
    #[default]
    Strict,
    /// Accept every parseable bundle; findings only feed the
    /// `controller.lint.*` metric counters.
    Advisory,
    /// Skip analysis entirely.
    Off,
}

/// Controller configuration.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ControllerConfig {
    /// Node-selection strategy for the matcher.
    pub matcher: Matcher,
    /// The objective function (lower is better).
    pub objective: Objective,
    /// Search policy.
    pub optimizer: OptimizerKind,
    /// Static-analysis gate for arriving bundles.
    #[serde(default)]
    pub lint: LintMode,
    /// Weight on frictional switching costs: the new option's `friction`
    /// seconds are added to the switching application's predicted response
    /// time, scaled by this weight. `0.0` ignores friction (ablation).
    pub friction_weight: f64,
    /// Elastic memory steps (extra MB) to explore for options with `>=`
    /// memory tags.
    pub elastic_steps: Vec<f64>,
    /// Re-evaluate existing applications after a new one arrives (§4.3).
    pub reevaluate_on_arrival: bool,
    /// Honor `granularity` declarations (skip bundles that switched too
    /// recently).
    pub respect_granularity: bool,
    /// Enable coordinated pairwise moves (jointly re-choosing two bundles
    /// when single moves are stuck) — the §1 admission scenario.
    pub coordinated_moves: bool,
    /// Ablation: each application optimizes only its own response time
    /// (the AppLes contrast from §7) instead of the system objective.
    /// Selfish applications never shrink for others, so coordinated moves
    /// are disabled too.
    pub selfish: bool,
    /// When set, measured `response_time` metrics calibrate predictions:
    /// each application's predicted response times are scaled by
    /// `measured / predicted-at-current-config` (see [`crate::feedback`]).
    pub feedback: Option<FeedbackConfig>,
    /// Session-lease parameters: how long an instance may stay silent
    /// before [`Controller::reap_expired`] retires it as if it had called
    /// `end`.
    #[serde(default)]
    pub lease: LeaseConfig,
    /// Decision-coalescing policy: with a positive `window`, arrivals and
    /// departures only mark the system dirty and one joint optimization
    /// per window covers them all (see [`CoalescePolicy`]). The default
    /// (`window: 0`) re-evaluates inline on every event, exactly as
    /// before.
    #[serde(default)]
    pub coalesce: CoalescePolicy,
    /// How the exhaustive optimizer uses the facts engine's static proofs
    /// (see [`crate::pruning::PruningMode`]): `off` (default) is the seed
    /// scan, `verify` cross-checks pruned against unpruned decisions, `on`
    /// trusts the proofs.
    #[serde(default)]
    pub pruning: PruningMode,
}

impl Default for ControllerConfig {
    fn default() -> Self {
        ControllerConfig {
            matcher: Matcher::default(),
            objective: Objective::default(),
            optimizer: OptimizerKind::Greedy,
            lint: LintMode::Strict,
            friction_weight: 1.0,
            elastic_steps: vec![7.0, 15.0, 30.0],
            reevaluate_on_arrival: true,
            respect_granularity: true,
            coordinated_moves: true,
            selfish: false,
            feedback: None,
            lease: LeaseConfig::default(),
            coalesce: CoalescePolicy::default(),
            pruning: PruningMode::default(),
        }
    }
}

/// A record of one applied reconfiguration decision.
///
/// Equality ignores [`DecisionRecord::phases`]: wall-clock timings are
/// measurement metadata, and two semantically identical decisions (same
/// switch, same objective, same provenance) compare equal even though no
/// two passes take exactly the same microseconds.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct DecisionRecord {
    /// Controller-clock time of the decision.
    pub time: f64,
    /// The application instance affected.
    pub instance: InstanceId,
    /// The bundle affected.
    pub bundle: String,
    /// Label of the previous configuration (`None` for the initial
    /// placement).
    pub from: Option<String>,
    /// Label of the new configuration.
    pub to: String,
    /// Objective score before the change.
    pub objective_before: f64,
    /// Objective score after the change.
    pub objective_after: f64,
    /// What prompted the decision, when it was not an ordinary
    /// re-evaluation — e.g. `"lease-expired: bag.2"` for decisions applied
    /// while reaping a dead client.
    #[serde(default)]
    pub cause: Option<String>,
    /// Journal seqs of the triggering events this decision settles: one
    /// seq for a synchronous trigger, the whole batch for a coalesced
    /// window. Empty only for decisions forced outside the event paths
    /// (e.g. a joint-optimizer replay).
    #[serde(default)]
    pub provenance: Vec<u64>,
    /// Per-phase wall timings of the pass that produced this decision.
    #[serde(default)]
    pub phases: PhaseTimings,
}

impl PartialEq for DecisionRecord {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time
            && self.instance == other.instance
            && self.bundle == other.bundle
            && self.from == other.from
            && self.to == other.to
            && self.objective_before == other.objective_before
            && self.objective_after == other.objective_after
            && self.cause == other.cause
            && self.provenance == other.provenance
    }
}

/// A hypothetical substitution of one bundle's configuration during
/// evaluation.
struct Replace<'a> {
    id: &'a InstanceId,
    bundle: &'a str,
    opt: &'a OptionSpec,
    cfg: &'a ChosenConfig,
    /// Extra seconds added to this app's predicted response time (friction
    /// of switching into the hypothetical configuration).
    penalty: f64,
}

#[derive(Debug)]
struct EvaluatedCandidate {
    candidate: Candidate,
    alloc: Allocation,
    score: f64,
    predicted: f64,
}

/// The adaptation controller.
#[derive(Debug)]
pub struct Controller {
    pub(crate) config: ControllerConfig,
    pub(crate) cluster: Cluster,
    pub(crate) apps: BTreeMap<InstanceId, AppInstance>,
    pub(crate) arrival_order: Vec<InstanceId>,
    registry: InstanceRegistry,
    namespace: Namespace<Value>,
    pub(crate) metrics: MetricRegistry,
    bus: std::sync::Arc<MetricBus>,
    /// Buffered variable updates per instance. Interior-mutable so the
    /// polling path ([`Controller::take_pending_vars`]) can drain under a
    /// shared borrow — the concurrent read path of `harmony-proto` — while
    /// the map itself is only reshaped under exclusive access
    /// (startup/retire).
    pending_vars: BTreeMap<InstanceId, Mutex<Vec<(HPath, Value)>>>,
    now: f64,
    decisions: Vec<DecisionRecord>,
    sessions: BTreeMap<InstanceId, SessionState>,
    retirements: Vec<RetirementRecord>,
    /// Cause tag attached to decisions committed while retiring an
    /// instance for a non-`end` reason (lease expiry, disconnect).
    decision_cause: Option<String>,
    /// Memoized candidate enumeration per `(instance, bundle)`. A bundle's
    /// candidate set depends only on its spec and the (immutable)
    /// `elastic_steps` configuration, so it is computed once and shared
    /// (`Arc`) with every optimizer pass until the bundle is replaced or
    /// its instance retires.
    candidate_cache: BTreeMap<(InstanceId, String), std::sync::Arc<Vec<Candidate>>>,
    /// Dirty-mark bookkeeping for coalesced re-evaluation (only consulted
    /// when `config.coalesce` is enabled).
    scheduler: DecisionScheduler,
    /// Lock-free lease touch-stamps, one per registered instance: the
    /// concurrent read path renews leases by storing
    /// `f64::to_bits(touch_time)` with `fetch_max` (valid because the bit
    /// patterns of non-negative IEEE doubles are order-isomorphic to their
    /// values; `0` doubles as the "never touched" sentinel). Write-path
    /// operations fold stamps into [`SessionState::deadline`].
    touches: BTreeMap<InstanceId, AtomicU64>,
    /// The bounded provenance journal. Behind its own mutex (not the
    /// controller lock) so the concurrent read path — metric reports,
    /// heartbeats, journal tailing — can append and read under a shared
    /// controller borrow.
    journal: Mutex<EventJournal>,
    /// Journal seqs of the event(s) the in-flight optimization pass is
    /// settling; copied into every [`DecisionRecord`] it commits (the
    /// provenance analogue of `decision_cause`).
    decision_provenance: Vec<u64>,
    /// Per-phase timings staged by the pass about to commit a decision;
    /// consumed (taken) by `commit_choice`.
    phase_timings: Option<PhaseTimings>,
    /// Chaos hook for the deterministic whole-stack harness
    /// (`harmony-harness`): when set, [`Controller::reap_expired`] skips
    /// folding read-path touch-stamps, re-creating the "reaper forgets
    /// concurrent renewals" bug class so the harness can prove its lease
    /// oracle catches it. Never set outside tests.
    chaos_skip_touch_fold: bool,
    /// Chaos hook for crash-point enumeration (`harmony-mc`): when set,
    /// [`Controller::renew_lease`] still applies the renewal but skips
    /// logging it — re-creating the "verb mutates state without a
    /// log-before-apply event" bug class, which only WAL-replay
    /// equivalence checking can catch (the live state stays correct; the
    /// recovered state diverges). Never set outside tests.
    chaos_skip_wal_renew: bool,
    /// The attached write-ahead log, when this controller is persistent
    /// (opened through [`crate::persist::StateStore`]). `Arc` + interior
    /// buffering in the writer let the concurrent read path (touches,
    /// polls, metric reports) append under a shared borrow. `None` (the
    /// default, and always during WAL replay) makes every logging hook a
    /// no-op — behavior is bit-for-bit the non-persistent controller.
    wal: Option<std::sync::Arc<harmony_wal::WalWriter>>,
    /// How this controller came to be, when recovered from a state
    /// directory (surfaced in [`crate::SystemSnapshot`]).
    recovery: Option<RecoveryInfo>,
}

impl Controller {
    /// Creates a controller over a cluster.
    pub fn new(cluster: Cluster, config: ControllerConfig) -> Self {
        Controller {
            config,
            cluster,
            apps: BTreeMap::new(),
            arrival_order: Vec::new(),
            registry: InstanceRegistry::new(),
            namespace: Namespace::new(),
            metrics: MetricRegistry::new(),
            bus: std::sync::Arc::new(MetricBus::new()),
            pending_vars: BTreeMap::new(),
            now: 0.0,
            decisions: Vec::new(),
            sessions: BTreeMap::new(),
            retirements: Vec::new(),
            decision_cause: None,
            candidate_cache: BTreeMap::new(),
            scheduler: DecisionScheduler::new(),
            touches: BTreeMap::new(),
            journal: Mutex::new(EventJournal::default()),
            decision_provenance: Vec::new(),
            phase_timings: None,
            chaos_skip_touch_fold: false,
            chaos_skip_wal_renew: false,
            wal: None,
            recovery: None,
        }
    }

    /// Plants the "reaper skips touch folding" mutation (see the
    /// `chaos_skip_touch_fold` field). Exposed — hidden — for
    /// `harmony-harness`, whose planted-bug acceptance test proves the
    /// schedule explorer detects exactly this class of lease bug.
    #[doc(hidden)]
    pub fn chaos_set_skip_touch_fold(&mut self, enabled: bool) {
        self.chaos_skip_touch_fold = enabled;
    }

    /// Plants the "renewal applied but never logged" mutation (see the
    /// `chaos_skip_wal_renew` field). Exposed — hidden — for
    /// `harmony-mc`, whose crash-point enumeration proves WAL-replay
    /// equivalence checking detects exactly this class of persistence
    /// bug.
    #[doc(hidden)]
    pub fn chaos_set_skip_wal_renew(&mut self, enabled: bool) {
        self.chaos_skip_wal_renew = enabled;
    }

    /// The controller clock (seconds). The embedding (simulation or wall
    /// clock) advances it with [`Controller::set_time`].
    pub fn now(&self) -> f64 {
        self.now
    }

    /// Advances the controller clock. Time never moves backwards; earlier
    /// values are ignored, and so are non-finite ones — a `+inf` clock
    /// would freeze every later comparison (nothing exceeds it) and poison
    /// lease deadlines, and `NaN` compares false everywhere.
    pub fn set_time(&mut self, now: f64) {
        if now.is_finite() && now > self.now {
            self.now = now;
        }
    }

    /// The cluster (read-only).
    pub fn cluster(&self) -> &Cluster {
        &self.cluster
    }

    /// The shared namespace (read-only).
    pub fn namespace(&self) -> &Namespace<Value> {
        &self.namespace
    }

    /// The metric registry (clonable handle).
    pub fn metrics(&self) -> &MetricRegistry {
        &self.metrics
    }

    /// The metric event bus (Figure 1's "data … flow into the metric
    /// interface, and on to both the adaptation controller and individual
    /// applications"): subscribers receive every reported metric plus a
    /// `controller.decision` event per applied reconfiguration.
    pub fn metric_bus(&self) -> std::sync::Arc<MetricBus> {
        std::sync::Arc::clone(&self.bus)
    }

    /// The configuration.
    pub fn config(&self) -> &ControllerConfig {
        &self.config
    }

    // ------------------------------------------------------------------
    // The provenance journal.
    // ------------------------------------------------------------------

    /// Appends one entry to the provenance journal from any path (the
    /// journal sits behind its own mutex, so `&self` suffices — metric
    /// reports and heartbeats journal from the concurrent read path).
    /// Returns the entry's sequence number.
    pub fn journal_append(&self, kind: JournalKind, detail: String) -> u64 {
        self.journal.lock().push(self.now, kind, detail)
    }

    /// Journals a decision-triggering event and stages its seq as the
    /// provenance of whatever decisions the current pass commits.
    fn journal_trigger(&mut self, kind: JournalKind, detail: String) -> u64 {
        let seq = self.journal_append(kind, detail);
        self.decision_provenance = vec![seq];
        seq
    }

    /// Tails the journal: up to `max` entries with `seq >= cursor`,
    /// oldest first (see [`JournalTail`]). Pure read path.
    pub fn journal_tail(&self, cursor: u64, max: usize) -> JournalTail {
        self.journal.lock().tail(cursor, max)
    }

    /// Number of journal entries ever appended (retained or evicted).
    pub fn journal_seq(&self) -> u64 {
        self.journal.lock().next_seq()
    }

    /// Records a client metric report: journals it, stores the sample in
    /// the registry, and — for `response_time` metrics — feeds the
    /// per-instance response-time histogram. Returns `false` when the
    /// sample is non-finite and was rejected.
    pub fn record_metric(&self, name: &str, time: f64, value: f64) -> bool {
        // Logged even when the sample will be rejected: the rejection
        // leaves a `metric-rejected` journal entry that replay must
        // reproduce for journal-sequence parity.
        self.wal_log(&WalEvent::Metric { now: self.now, name: name.to_string(), time, value });
        self.record_metric_inner(name, time, value)
    }

    /// [`Controller::record_metric`] without the WAL hook.
    pub(crate) fn record_metric_inner(&self, name: &str, time: f64, value: f64) -> bool {
        if !self.metrics.record(name, time, value) {
            self.journal_append(JournalKind::Event, format!("metric-rejected {name}"));
            return false;
        }
        if name.ends_with(".response_time") {
            self.metrics.observe(name, value);
        }
        self.journal_append(JournalKind::Event, format!("metric {name} {value}"));
        true
    }

    /// All decisions applied so far, oldest first.
    pub fn decisions(&self) -> &[DecisionRecord] {
        &self.decisions
    }

    /// Registered instances in arrival order.
    pub fn instances(&self) -> Vec<InstanceId> {
        self.arrival_order.clone()
    }

    /// Looks up an application instance.
    pub fn app(&self, id: &InstanceId) -> Option<&AppInstance> {
        self.apps.get(id)
    }

    /// The current configuration of a bundle, if one has been applied.
    pub fn choice(&self, id: &InstanceId, bundle: &str) -> Option<&ChosenConfig> {
        self.apps.get(id)?.bundle(bundle)?.current.as_ref()
    }

    /// The candidate set of `(id, bundle)`, memoized. The first request
    /// enumerates (a cache miss); later requests share the same `Arc`
    /// until [`Controller::add_bundle`] replaces the bundle or the
    /// instance retires. Cache traffic is visible as the
    /// `controller.optimizer.cache_hits` / `cache_misses` counters.
    ///
    /// Returns `None` when the instance or bundle is unknown.
    pub fn cached_candidates(
        &mut self,
        id: &InstanceId,
        bundle: &str,
    ) -> Option<std::sync::Arc<Vec<Candidate>>> {
        let key = (id.clone(), bundle.to_string());
        if let Some(cands) = self.candidate_cache.get(&key) {
            self.metrics.inc_counter("controller.optimizer.cache_hits");
            return Some(std::sync::Arc::clone(cands));
        }
        let cands = {
            let spec = &self.apps.get(id)?.bundle(bundle)?.spec;
            std::sync::Arc::new(enumerate(spec, &self.config.elastic_steps))
        };
        self.metrics.inc_counter("controller.optimizer.cache_misses");
        self.candidate_cache.insert(key, std::sync::Arc::clone(&cands));
        self.metrics
            .set_gauge("controller.optimizer.cache_size", self.candidate_cache.len() as f64);
        Some(cands)
    }

    /// Number of memoized candidate sets currently held.
    pub fn candidate_cache_len(&self) -> usize {
        self.candidate_cache.len()
    }

    /// Registers a new application instance with a system-chosen id
    /// (`harmony_startup`).
    pub fn startup(&mut self, app: &str) -> InstanceId {
        self.wal_log(&WalEvent::Startup { now: self.now, app: app.to_string() });
        self.startup_inner(app)
    }

    /// [`Controller::startup`] without the WAL hook, for callers that
    /// already logged the triggering event (the `handle_event` arms).
    pub(crate) fn startup_inner(&mut self, app: &str) -> InstanceId {
        let id = InstanceId::new(app, self.registry.allocate(app));
        self.apps.insert(id.clone(), AppInstance::new(id.clone(), self.now));
        self.arrival_order.push(id.clone());
        self.pending_vars.insert(id.clone(), Mutex::new(Vec::new()));
        self.sessions.insert(id.clone(), SessionState::new(self.now + self.config.lease.duration));
        self.touches.insert(id.clone(), AtomicU64::new(0));
        self.metrics.inc_counter("controller.startups");
        self.metrics.set_gauge("controller.sessions.active", self.sessions.len() as f64);
        self.journal_append(JournalKind::Event, format!("startup {id}"));
        id
    }

    /// Adds a bundle to a registered instance (`harmony_bundle_setup`),
    /// chooses its initial configuration, and — per §4.3 — re-evaluates
    /// the options of existing applications. When the bundle cannot be
    /// placed directly and coordinated moves are enabled, the controller
    /// tries shrinking one existing application to make room (§1).
    ///
    /// # Errors
    ///
    /// [`CoreError::UnknownInstance`] for unregistered ids and
    /// [`CoreError::Unplaceable`] when no candidate fits even after
    /// coordinated admission.
    pub fn add_bundle(
        &mut self,
        id: &InstanceId,
        spec: BundleSpec,
    ) -> Result<Vec<DecisionRecord>, CoreError> {
        self.wal_log(&WalEvent::Bundle { now: self.now, id: id.clone(), spec: spec.clone() });
        self.add_bundle_inner(id, spec)
    }

    /// [`Controller::add_bundle`] without the WAL hook.
    pub(crate) fn add_bundle_inner(
        &mut self,
        id: &InstanceId,
        spec: BundleSpec,
    ) -> Result<Vec<DecisionRecord>, CoreError> {
        self.lint_gate(&spec)?;
        let app = self
            .apps
            .get_mut(id)
            .ok_or_else(|| CoreError::UnknownInstance { name: id.to_string() })?;
        let bundle_name = spec.name.clone();
        app.bundles.push(BundleState::new(spec));
        // Invalidate any memoized candidates under this key (a re-added
        // bundle name must re-enumerate against the new spec).
        self.candidate_cache.remove(&(id.clone(), bundle_name.clone()));
        self.journal_trigger(JournalKind::Event, format!("bundle-setup {id} {bundle_name}"));
        let mut records = Vec::new();

        let direct = self.optimize_bundle(id.clone(), bundle_name.clone(), true);
        let mut unplaced_reason = None;
        match direct {
            Ok(Some(r)) => records.push(r),
            Ok(None) => {}
            Err(CoreError::Unplaceable { reason, .. })
                if self.config.coordinated_moves && !self.config.selfish =>
            {
                unplaced_reason = Some(reason);
            }
            Err(e) => return Err(e),
        }

        // Coordinated admission must stay synchronous even when decisions
        // coalesce: if the bundle could not be placed directly, only a
        // pairwise shrink of an incumbent can admit it, and deferring that
        // would turn a placeable arrival into `Unplaceable`. When the
        // direct placement succeeded and coalescing is on, the pairwise
        // round is deferred to the coalesced re-evaluation instead.
        if (self.config.coordinated_moves && !self.config.selfish)
            && (!self.coalescing() || self.choice(id, &bundle_name).is_none())
        {
            let others: Vec<(InstanceId, String)> = self.all_pairs_excluding(id, &bundle_name);
            for (oid, obundle) in others {
                if let Some(rs) =
                    self.pairwise_step((oid, obundle), (id.clone(), bundle_name.clone()))?
                {
                    records.extend(rs);
                }
            }
        }

        if self.choice(id, &bundle_name).is_none() {
            if let Some(reason) = unplaced_reason {
                return Err(CoreError::Unplaceable { bundle: bundle_name, reason });
            }
        }

        if self.config.reevaluate_on_arrival {
            if self.coalescing() {
                self.mark_dirty();
            } else {
                records.extend(self.reevaluate_excluding(Some(id))?);
            }
        }
        self.decision_provenance.clear();
        Ok(records)
    }

    /// One-call registration: startup plus bundle setup.
    ///
    /// # Errors
    ///
    /// Same conditions as [`Controller::add_bundle`]. On
    /// [`CoreError::Unplaceable`] the instance remains registered with no
    /// configuration (it can retry on a later re-evaluation).
    ///
    /// # Examples
    ///
    /// ```
    /// use harmony_core::{Controller, ControllerConfig};
    /// use harmony_resources::Cluster;
    /// use harmony_rsl::schema::parse_bundle_script;
    ///
    /// let cluster = Cluster::from_rsl(&harmony_rsl::listings::sp2_cluster(8))?;
    /// let mut controller = Controller::new(cluster, ControllerConfig::default());
    /// let spec = parse_bundle_script(harmony_rsl::listings::FIG2B_BAG)?;
    /// let (id, decisions) = controller.register(spec)?;
    /// assert_eq!(id.to_string(), "bag.1");
    /// assert!(!decisions.is_empty());
    /// # Ok::<(), Box<dyn std::error::Error>>(())
    /// ```
    pub fn register(
        &mut self,
        spec: BundleSpec,
    ) -> Result<(InstanceId, Vec<DecisionRecord>), CoreError> {
        let id = self.startup(&spec.app.clone());
        let records = self.add_bundle(&id, spec)?;
        Ok((id, records))
    }

    /// Removes an application (`harmony_end`), releases its resources, and
    /// re-evaluates the remaining applications.
    ///
    /// # Errors
    ///
    /// [`CoreError::UnknownInstance`] for unregistered ids.
    pub fn end(&mut self, id: &InstanceId) -> Result<Vec<DecisionRecord>, CoreError> {
        self.wal_log(&WalEvent::End { now: self.now, id: id.clone() });
        self.end_inner(id)
    }

    /// [`Controller::end`] without the WAL hook.
    pub(crate) fn end_inner(&mut self, id: &InstanceId) -> Result<Vec<DecisionRecord>, CoreError> {
        self.retire(id, RetireReason::Ended)
    }

    /// Retires an instance for `reason`: releases its resources, records
    /// the retirement, and re-evaluates the survivors. `end` and the lease
    /// reaper share this path so a reaped instance leaves exactly the
    /// state an explicit `end` would have left.
    fn retire(
        &mut self,
        id: &InstanceId,
        reason: RetireReason,
    ) -> Result<Vec<DecisionRecord>, CoreError> {
        let app = self
            .apps
            .remove(id)
            .ok_or_else(|| CoreError::UnknownInstance { name: id.to_string() })?;
        for bundle in &app.bundles {
            if let Some(cfg) = &bundle.current {
                self.cluster.release(&cfg.alloc)?;
            }
        }
        self.arrival_order.retain(|x| x != id);
        self.pending_vars.remove(id);
        self.sessions.remove(id);
        self.touches.remove(id);
        self.candidate_cache.retain(|(i, _), _| i != id);
        self.metrics
            .set_gauge("controller.optimizer.cache_size", self.candidate_cache.len() as f64);
        self.namespace.remove_subtree(&instance_path(id));
        self.metrics.remove_prefix(&id.to_string());
        self.metrics.inc_counter("controller.ends");
        self.metrics.set_gauge("controller.sessions.active", self.sessions.len() as f64);
        self.retirements.push(RetirementRecord { time: self.now, instance: id.clone(), reason });
        self.journal_trigger(JournalKind::Retirement, format!("{reason}: {id}"));
        if reason != RetireReason::Ended {
            self.decision_cause = Some(format!("{reason}: {id}"));
        }
        let result = if self.coalescing() {
            self.mark_dirty();
            Ok(Vec::new())
        } else {
            self.reevaluate_excluding(None)
        };
        self.decision_cause = None;
        self.decision_provenance.clear();
        result
    }

    // ------------------------------------------------------------------
    // Session leases.
    // ------------------------------------------------------------------

    /// Renews the lease of a registered instance (any request from the
    /// instance counts as activity, as does the dedicated `heartbeat`
    /// verb). Returns `false` when the instance is not registered — the
    /// caller should tell the client to start over.
    pub fn renew_lease(&mut self, id: &InstanceId) -> bool {
        if !self.chaos_skip_wal_renew {
            self.wal_log(&WalEvent::Renew { now: self.now, id: id.clone() });
        }
        self.renew_lease_inner(id)
    }

    /// [`Controller::renew_lease`] without the WAL hook.
    pub(crate) fn renew_lease_inner(&mut self, id: &InstanceId) -> bool {
        let duration = self.config.lease.duration;
        let now = self.now;
        match self.sessions.get_mut(id) {
            Some(s) => {
                s.deadline = now + duration;
                s.disconnected = false;
                s.renewals += 1;
                self.metrics.inc_counter("controller.sessions.renewals");
                true
            }
            None => false,
        }
    }

    /// Renews the lease of the instance owning a metric report, parsing
    /// the `<app>.<id>.<metric>` naming convention. Reports that do not
    /// follow the convention (or name an unknown instance) are ignored.
    pub fn renew_lease_for_metric(&mut self, name: &str) {
        if let Some(id) = metric_instance(name) {
            self.renew_lease(&id);
        }
    }

    /// [`Controller::renew_lease_for_metric`] without the WAL hook.
    pub(crate) fn renew_lease_for_metric_inner(&mut self, name: &str) {
        if let Some(id) = metric_instance(name) {
            self.renew_lease_inner(&id);
        }
    }

    /// Marks an instance's connection as dropped: the lease is shortened
    /// to expire within the configured disconnect grace, so a crashed
    /// client is reaped quickly while a reconnecting one can still
    /// [`reattach`](Controller::reattach) in time.
    pub fn mark_disconnected(&mut self, id: &InstanceId) {
        self.wal_log(&WalEvent::Disconnect { now: self.now, id: id.clone() });
        // Apply any read-path touch first so activity that happened before
        // the disconnect extends the lease before the grace cap shortens
        // it.
        self.fold_touch(id);
        let grace = self.config.lease.disconnect_grace;
        let now = self.now;
        if let Some(s) = self.sessions.get_mut(id) {
            if !s.disconnected {
                s.disconnected = true;
                s.deadline = s.deadline.min(now + grace);
                self.metrics.inc_counter("controller.sessions.disconnects");
            }
        }
    }

    /// Re-establishes a session after a reconnect: renews the lease,
    /// clears the disconnect mark, and replays the instance's current
    /// chosen values into its pending-variable buffer so the next poll
    /// converges the client without re-sending bundles.
    ///
    /// # Errors
    ///
    /// [`CoreError::UnknownInstance`] when the id is no longer registered
    /// (expired and reaped, or never known) — the client should fall back
    /// to a fresh `startup` plus bundle re-registration.
    pub fn reattach(&mut self, id: &InstanceId) -> Result<(), CoreError> {
        self.wal_log(&WalEvent::Reattach { now: self.now, id: id.clone() });
        self.reattach_inner(id)
    }

    /// [`Controller::reattach`] without the WAL hook.
    pub(crate) fn reattach_inner(&mut self, id: &InstanceId) -> Result<(), CoreError> {
        if !self.apps.contains_key(id) {
            return Err(CoreError::UnknownInstance { name: id.to_string() });
        }
        self.renew_lease_inner(id);
        self.metrics.inc_counter("controller.sessions.reattached");
        // Replay the full current state (idempotent: updates are keyed by
        // path), replacing whatever was buffered before the disconnect.
        let mut writes: Vec<(HPath, Value)> = Vec::new();
        if let Some(app) = self.apps.get(id) {
            for bundle in &app.bundles {
                if let Some(cfg) = &bundle.current {
                    writes.extend(config_writes(id, &bundle.spec.name, cfg));
                }
            }
        }
        if let Some(buf) = self.pending_vars.get(id) {
            *buf.lock() = writes;
        }
        Ok(())
    }

    /// Retires every instance whose lease has expired by `now`, exactly as
    /// if each had called `end`: allocations are freed, survivors are
    /// re-evaluated, and a [`RetirementRecord`] notes the reason. Also
    /// advances the controller clock to `now`.
    ///
    /// # Errors
    ///
    /// Propagates re-evaluation errors from the retirement path.
    pub fn reap_expired(&mut self, now: f64) -> Result<Vec<DecisionRecord>, CoreError> {
        self.wal_log(&WalEvent::Reap { now });
        self.reap_expired_inner(now)
    }

    /// [`Controller::reap_expired`] without the WAL hook.
    pub(crate) fn reap_expired_inner(
        &mut self,
        now: f64,
    ) -> Result<Vec<DecisionRecord>, CoreError> {
        self.set_time(now);
        if !self.chaos_skip_touch_fold {
            self.fold_touches();
        }
        let expired: Vec<(InstanceId, RetireReason)> = self
            .sessions
            .iter()
            .filter(|(_, s)| s.expired_at(now))
            .map(|(id, s)| {
                let reason = if s.disconnected {
                    RetireReason::Disconnected
                } else {
                    RetireReason::LeaseExpired
                };
                (id.clone(), reason)
            })
            .collect();
        let mut records = Vec::new();
        for (id, reason) in expired {
            self.metrics.inc_counter("controller.sessions.expired");
            records.extend(self.retire(&id, reason)?);
        }
        Ok(records)
    }

    /// The lease state of one registered instance.
    pub fn session(&self, id: &InstanceId) -> Option<&SessionState> {
        self.sessions.get(id)
    }

    /// Lease state of every registered instance.
    pub fn sessions(&self) -> &BTreeMap<InstanceId, SessionState> {
        &self.sessions
    }

    /// Every retirement so far (explicit `end` and reaped), oldest first.
    pub fn retirements(&self) -> &[RetirementRecord] {
        &self.retirements
    }

    // ------------------------------------------------------------------
    // Lock-free lease touches (the concurrent read path).
    // ------------------------------------------------------------------

    /// Renews an instance's lease from the concurrent read path: stores
    /// the current controller time into the instance's atomic touch-stamp
    /// instead of mutating [`SessionState`], so `fetch`/`status`-style
    /// requests can run under a shared lock. The stamp is folded into the
    /// real deadline by the next write-path pass ([`Controller::reap_expired`]
    /// or [`Controller::mark_disconnected`]); until then
    /// [`Controller::effective_deadline`] reports the extended lease.
    ///
    /// Returns `false` when the instance is not registered.
    pub fn touch(&self, id: &InstanceId) -> bool {
        match self.touches.get(id) {
            Some(stamp) => {
                // `fetch_max` on the bit pattern is a max on the value
                // ONLY for non-negative finite doubles: the sign bit puts
                // every negative value's bits above every positive one's,
                // and NaN's all-ones exponent would poison the max
                // forever. [`Controller::set_time`] already refuses
                // non-finite clocks, but clamp here too so a bad stamp can
                // never reach the atomic regardless of how `now` was
                // produced. A rejected stamp still reports the instance as
                // registered — the touch is dropped, not the session.
                if self.now.is_finite() && self.now >= 0.0 {
                    self.wal_log(&WalEvent::Touch { now: self.now, id: id.clone() });
                    stamp.fetch_max(self.now.to_bits(), AtomicOrdering::AcqRel);
                }
                true
            }
            None => false,
        }
    }

    /// [`Controller::touch`] keyed by a metric report's
    /// `<app>.<id>.<metric>` naming convention; non-conforming or unknown
    /// names are ignored.
    pub fn touch_for_metric(&self, name: &str) {
        if let Some(id) = metric_instance(name) {
            self.touch(&id);
        }
    }

    /// The lease deadline of `id` as the reaper will see it: the stored
    /// [`SessionState::deadline`] extended by any not-yet-folded read-path
    /// touch.
    pub fn effective_deadline(&self, id: &InstanceId) -> Option<f64> {
        let s = self.sessions.get(id)?;
        let mut deadline = s.deadline;
        if let Some(stamp) = self.touches.get(id) {
            let bits = stamp.load(AtomicOrdering::Acquire);
            if bits != 0 {
                deadline = deadline.max(f64::from_bits(bits) + self.config.lease.duration);
            }
        }
        Some(deadline)
    }

    /// Folds one instance's pending touch-stamp into its session state.
    fn fold_touch(&mut self, id: &InstanceId) {
        let duration = self.config.lease.duration;
        let Some(stamp) = self.touches.get(id) else { return };
        // `swap(0)` claims the stamp atomically; a touch racing in after
        // the swap is simply preserved for the next fold.
        let bits = stamp.swap(0, AtomicOrdering::AcqRel);
        if bits == 0 {
            return;
        }
        if let Some(s) = self.sessions.get_mut(id) {
            let renewed = f64::from_bits(bits) + duration;
            if renewed > s.deadline {
                s.deadline = renewed;
            }
            s.disconnected = false;
            s.renewals += 1;
            self.metrics.inc_counter("controller.sessions.renewals");
        }
    }

    /// Folds every pending touch-stamp (the write-path half of read-path
    /// lease renewal). A batch of touches between folds counts as one
    /// renewal, mirroring how the reaper would have observed it.
    fn fold_touches(&mut self) {
        let ids: Vec<InstanceId> = self.touches.keys().cloned().collect();
        for id in ids {
            self.fold_touch(&id);
        }
    }

    // ------------------------------------------------------------------
    // Decision coalescing.
    // ------------------------------------------------------------------

    /// True when decisions are deferred and coalesced (see
    /// [`CoalescePolicy`]).
    pub fn coalescing(&self) -> bool {
        self.config.coalesce.enabled()
    }

    /// Dirty marks accumulated since the last coalesced re-evaluation.
    pub fn pending_decisions(&self) -> usize {
        self.scheduler.pending()
    }

    /// Records that system state changed and a re-evaluation is owed. The
    /// currently staged provenance seqs move into the scheduler: the
    /// deferred window's decisions will carry them.
    fn mark_dirty(&mut self) {
        let seqs = std::mem::take(&mut self.decision_provenance);
        self.scheduler.mark(self.now, &seqs);
        self.metrics.set_gauge("controller.scheduler.pending", self.scheduler.pending() as f64);
    }

    /// Advances the clock to `now` and runs the coalesced re-evaluation if
    /// one is due under the configured [`CoalescePolicy`]. This is the
    /// scheduler's heartbeat: the embedding calls it from its periodic
    /// pass or ticker thread.
    ///
    /// # Errors
    ///
    /// Propagates re-evaluation errors.
    pub fn service_scheduler(&mut self, now: f64) -> Result<Vec<DecisionRecord>, CoreError> {
        self.set_time(now);
        if self.scheduler.due(&self.config.coalesce, self.now) {
            // Only *firing* ticks are WAL-logged: a quiet tick merely
            // advances the clock, which the next logged event's `now`
            // reproduces on replay.
            self.wal_log(&WalEvent::Tick { now: self.now });
            self.fire_scheduler()
        } else {
            Ok(Vec::new())
        }
    }

    /// Runs the coalesced re-evaluation immediately if any marks are
    /// pending, regardless of the window (used by the coarse periodic
    /// pass and at shutdown so no dirty state is left behind).
    ///
    /// # Errors
    ///
    /// Propagates re-evaluation errors.
    pub fn flush_scheduler(&mut self) -> Result<Vec<DecisionRecord>, CoreError> {
        if self.scheduler.pending() > 0 {
            self.wal_log(&WalEvent::Flush { now: self.now });
        }
        self.flush_scheduler_inner()
    }

    /// [`Controller::flush_scheduler`] without the WAL hook.
    pub(crate) fn flush_scheduler_inner(&mut self) -> Result<Vec<DecisionRecord>, CoreError> {
        if self.scheduler.pending() > 0 {
            self.fire_scheduler()
        } else {
            Ok(Vec::new())
        }
    }

    /// One coalesced re-evaluation covering every pending mark: the single
    /// joint optimization that replaces N per-event passes.
    fn fire_scheduler(&mut self) -> Result<Vec<DecisionRecord>, CoreError> {
        let (n, seqs) = self.scheduler.take();
        if n == 0 {
            return Ok(Vec::new());
        }
        self.journal_append(JournalKind::SchedulerFire, format!("coalesced-arrivals: {n}"));
        self.metrics.inc_counter("controller.scheduler.windows_fired");
        self.metrics.add_counter("controller.scheduler.coalesced_arrivals", n as u64);
        self.metrics.add_counter("controller.scheduler.decisions_saved", (n - 1) as u64);
        self.metrics.set_gauge("controller.scheduler.pending", 0.0);
        let prev_cause = self.decision_cause.take();
        let prev_provenance = std::mem::replace(&mut self.decision_provenance, seqs);
        self.decision_cause = Some(format!("coalesced-arrivals: {n}"));
        // One window = one *converged* joint optimization. A single greedy
        // pass from the deferred state can stop at an intermediate local
        // optimum that the per-arrival path would have walked past, so
        // iterate to the fixed point. Each productive pass strictly
        // improves the objective, which bounds the loop; the cap is a
        // safety net against a (buggy) oscillating objective.
        self.metrics.inc_counter("controller.reevals");
        let result = (|| {
            let mut records = Vec::new();
            for _ in 0..64 {
                let rs = self.reevaluate_pass(None)?;
                let quiet = rs.is_empty();
                records.extend(rs);
                if quiet {
                    break;
                }
            }
            Ok(records)
        })();
        self.decision_cause = prev_cause;
        self.decision_provenance = prev_provenance;
        result
    }

    /// Re-evaluates every bundle of every application in arrival order,
    /// applying improving switches (the periodic pass of §4.3), followed by
    /// a round of coordinated pairwise moves.
    ///
    /// # Errors
    ///
    /// Propagates evaluation errors; placement failures of *candidates*
    /// are not errors (the candidate is skipped).
    pub fn reevaluate(&mut self) -> Result<Vec<DecisionRecord>, CoreError> {
        self.wal_log(&WalEvent::Reevaluate { now: self.now });
        self.reevaluate_triggered(JournalKind::Event, "reevaluate".to_string())
    }

    /// A full re-evaluation whose decisions carry `detail` as provenance —
    /// used by event arms (node joins, departures) that want the *event*,
    /// not the generic "reevaluate", on the record.
    pub(crate) fn reevaluate_triggered(
        &mut self,
        kind: JournalKind,
        detail: String,
    ) -> Result<Vec<DecisionRecord>, CoreError> {
        self.journal_trigger(kind, detail);
        let result = self.reevaluate_excluding(None);
        self.decision_provenance.clear();
        result
    }

    fn all_pairs_excluding(
        &self,
        skip_id: &InstanceId,
        skip_bundle: &str,
    ) -> Vec<(InstanceId, String)> {
        let mut out = Vec::new();
        for id in &self.arrival_order {
            let Some(app) = self.apps.get(id) else { continue };
            for b in &app.bundles {
                if id == skip_id && b.spec.name == skip_bundle {
                    continue;
                }
                out.push((id.clone(), b.spec.name.clone()));
            }
        }
        out
    }

    fn reevaluate_excluding(
        &mut self,
        skip: Option<&InstanceId>,
    ) -> Result<Vec<DecisionRecord>, CoreError> {
        self.metrics.inc_counter("controller.reevals");
        self.reevaluate_pass(skip)
    }

    /// One greedy pass (improving switches, then one pairwise round)
    /// without touching the `controller.reevals` counter — the building
    /// block both for a counted [`Controller::reevaluate`] and for the
    /// converged multi-pass run of a coalesced window.
    fn reevaluate_pass(
        &mut self,
        skip: Option<&InstanceId>,
    ) -> Result<Vec<DecisionRecord>, CoreError> {
        let mut records = Vec::new();
        let order = self.arrival_order.clone();
        for id in &order {
            if Some(id) == skip {
                continue;
            }
            let Some(app) = self.apps.get(id) else { continue };
            let bundle_names: Vec<String> =
                app.bundles.iter().map(|b| b.spec.name.clone()).collect();
            for bundle in bundle_names {
                if let Some(r) = self.optimize_bundle(id.clone(), bundle, false)? {
                    records.push(r);
                }
            }
        }
        if self.config.coordinated_moves && !self.config.selfish {
            // One round of pairwise moves over all ordered pairs.
            let pairs: Vec<(InstanceId, String)> = {
                let mut v = Vec::new();
                for id in &order {
                    let Some(app) = self.apps.get(id) else { continue };
                    for b in &app.bundles {
                        v.push((id.clone(), b.spec.name.clone()));
                    }
                }
                v
            };
            for i in 0..pairs.len() {
                for j in (i + 1)..pairs.len() {
                    if let Some(rs) = self.pairwise_step(pairs[i].clone(), pairs[j].clone())? {
                        records.extend(rs);
                    }
                }
            }
        }
        self.metrics.set_gauge("controller.objective", self.objective_score());
        Ok(records)
    }

    /// Predicted response time per application (max over its bundles), in
    /// arrival order. Applications with no applied configuration are
    /// omitted.
    pub fn predicted_response_times(&self) -> Vec<(InstanceId, f64)> {
        let mut out = Vec::new();
        for id in &self.arrival_order {
            if let Some(rt) = self.app_response_time(&self.cluster, id, &[]) {
                out.push((id.clone(), rt));
            }
        }
        out
    }

    /// The current objective score over all applications.
    pub fn objective_score(&self) -> f64 {
        let rts: Vec<f64> = self.predicted_response_times().into_iter().map(|(_, rt)| rt).collect();
        self.config.objective.score(&rts)
    }

    /// Drains the buffered variable updates for one instance (the polling
    /// path of §5: the application asks and receives everything written
    /// since its last poll). Takes `&self` — each instance's buffer is
    /// behind its own mutex — so polls run on the concurrent read path.
    pub fn take_pending_vars(&self, id: &InstanceId) -> Vec<(HPath, Value)> {
        let drained = self
            .pending_vars
            .get(id)
            .map(|buf| std::mem::take(&mut *buf.lock()))
            .unwrap_or_default();
        // Only non-empty drains change state; logging empty polls would
        // bloat the WAL with every idle fetch.
        if !drained.is_empty() {
            self.wal_log(&WalEvent::Poll { now: self.now, id: id.clone() });
        }
        drained
    }

    /// Drains the buffered variable updates (the server side of
    /// `flushPendingVars`): per instance, the namespace paths written since
    /// the last flush with their values. Rides [`Controller::take_pending_vars`]
    /// so each non-empty drain is WAL-logged individually.
    pub fn flush_pending_vars(&self) -> Vec<(InstanceId, Vec<(HPath, Value)>)> {
        let ids: Vec<InstanceId> = self.pending_vars.keys().cloned().collect();
        let mut out = Vec::new();
        for id in ids {
            let vars = self.take_pending_vars(&id);
            if !vars.is_empty() {
                out.push((id, vars));
            }
        }
        out
    }

    /// Runs `harmony-analyze` over an arriving bundle per the configured
    /// [`LintMode`]: counts findings into the `controller.lint.*` metrics
    /// and, in strict mode, rejects bundles with error diagnostics.
    fn lint_gate(&mut self, spec: &BundleSpec) -> Result<(), CoreError> {
        if self.config.lint == LintMode::Off {
            return Ok(());
        }
        let diags = harmony_analyze::analyze_bundle(spec);
        for d in &diags {
            let sev = match d.severity {
                harmony_analyze::Severity::Error => "errors",
                harmony_analyze::Severity::Warning => "warnings",
                harmony_analyze::Severity::Note => "notes",
            };
            self.metrics.inc_counter(&format!("controller.lint.{sev}"));
        }
        if self.config.lint == LintMode::Strict && harmony_analyze::has_errors(&diags) {
            let errors: Vec<String> = diags
                .iter()
                .filter(|d| d.severity == harmony_analyze::Severity::Error)
                .map(|d| format!("{}: {}", d.code, d.message))
                .collect();
            return Err(CoreError::LintRejected { bundle: spec.name.clone(), errors });
        }
        Ok(())
    }

    // ------------------------------------------------------------------
    // Internal: evaluation and application of choices.
    // ------------------------------------------------------------------

    /// The measured-feedback factor for one application: how far reality
    /// has diverged from the prediction of its *current* configuration.
    fn feedback_factor(&self, id: &InstanceId) -> f64 {
        let Some(cfg) = &self.config.feedback else { return 1.0 };
        let Some(app) = self.apps.get(id) else { return 1.0 };
        let predicted = app
            .bundles
            .iter()
            .filter_map(|b| b.current.as_ref().map(|c| c.predicted))
            .fold(0.0f64, f64::max);
        // Calibrate against the current configuration regime only: samples
        // measured before the app's latest switch describe a different
        // configuration and must not bleed into this one's factor.
        let since = app
            .bundles
            .iter()
            .filter_map(|b| b.current.as_ref().map(|c| c.chosen_at))
            .fold(f64::NEG_INFINITY, f64::max);
        calibration_factor(&self.metrics, id, predicted, since, cfg)
    }

    /// Response time of app `id` on `cluster`, with `replaces` overriding
    /// stored choices. Returns `None` when no bundle of the app has a
    /// configuration.
    fn app_response_time(
        &self,
        cluster: &Cluster,
        id: &InstanceId,
        replaces: &[Replace<'_>],
    ) -> Option<f64> {
        let app = self.apps.get(id)?;
        let factor = self.feedback_factor(id);
        let mut worst: Option<f64> = None;
        for bundle in &app.bundles {
            let replace = replaces.iter().find(|r| r.id == id && r.bundle == bundle.spec.name);
            let (opt, cfg, penalty): (&OptionSpec, &ChosenConfig, f64) = match replace {
                Some(r) => (r.opt, r.cfg, r.penalty),
                None => {
                    let Some(cfg) = &bundle.current else { continue };
                    let Some(opt) = bundle.spec.option(&cfg.option) else { continue };
                    (opt, cfg, 0.0)
                }
            };
            let ctx = PredictionContext::committed(cluster, &cfg.alloc, opt);
            let model = model_for_option(opt);
            let rt = match model.predict(&ctx) {
                Ok(p) => p.response_time * factor + penalty,
                Err(_) => f64::INFINITY,
            };
            worst = Some(worst.map_or(rt, |w: f64| w.max(rt)));
        }
        worst
    }

    /// Scores the whole system on `cluster` with `replaces` overriding
    /// bundle choices. In selfish mode only `focus`'s response time counts.
    fn system_score(&self, cluster: &Cluster, replaces: &[Replace<'_>], focus: &InstanceId) -> f64 {
        let mut rts = Vec::new();
        for id in &self.arrival_order {
            if self.config.selfish && id != focus {
                continue;
            }
            if let Some(rt) = self.app_response_time(cluster, id, replaces) {
                rts.push(rt);
            }
        }
        self.config.objective.score(&rts)
    }

    /// The friction (seconds) of moving `bundle` to `cand`, zero when the
    /// candidate equals the incumbent or there is no incumbent.
    fn friction_of(
        &self,
        bundle: &BundleState,
        cand: &Candidate,
        opt: &OptionSpec,
        alloc: &Allocation,
    ) -> f64 {
        let switching = bundle.current.as_ref().map(|cur| !same_point(cur, cand)).unwrap_or(false);
        if !switching {
            return 0.0;
        }
        let seconds = match &opt.friction {
            Some(tag) => tag.amount(&alloc.env()).unwrap_or(0.0),
            None => 0.0,
        };
        seconds * self.config.friction_weight
    }

    /// Evaluates one candidate for `(id, bundle)`: clones the cluster,
    /// swaps the allocation, and scores the system. Returns `None` when the
    /// candidate cannot be placed.
    fn evaluate_candidate(
        &self,
        id: &InstanceId,
        bundle_name: &str,
        cand: &Candidate,
    ) -> Result<Option<EvaluatedCandidate>, CoreError> {
        let app =
            self.apps.get(id).ok_or_else(|| CoreError::UnknownInstance { name: id.to_string() })?;
        let bundle = app
            .bundle(bundle_name)
            .ok_or_else(|| CoreError::UnknownBundle { name: bundle_name.to_string() })?;
        let opt = bundle
            .spec
            .option(&cand.option)
            .ok_or_else(|| CoreError::UnknownBundle { name: cand.option.clone() })?;

        let mut tentative = self.cluster.clone();
        if let Some(cur) = &bundle.current {
            tentative.release(&cur.alloc)?;
        }
        let matcher =
            Matcher { strategy: self.config.matcher.strategy, elastic_extra: cand.elastic_extra };
        let alloc = match matcher.match_option(&tentative, opt, &cand.env()) {
            Ok(a) => a,
            Err(harmony_resources::ResourceError::NoMatch { .. }) => return Ok(None),
            Err(e) => return Err(e.into()),
        };
        tentative.commit(&alloc)?;

        let penalty = self.friction_of(bundle, cand, opt, &alloc);
        let cfg = hypothetical_config(cand, alloc.clone(), self.now);
        let replaces = [Replace { id, bundle: bundle_name, opt, cfg: &cfg, penalty }];
        let score = self.system_score(&tentative, &replaces, id);
        let predicted = self.app_response_time(&tentative, id, &replaces).unwrap_or(f64::INFINITY);
        Ok(Some(EvaluatedCandidate { candidate: cand.clone(), alloc, score, predicted }))
    }

    /// Greedy optimization of one bundle: evaluate all candidates, apply
    /// the best if it beats the incumbent. `initial` marks the first
    /// placement of a new bundle (granularity does not apply, and failure
    /// to place anything is an error).
    fn optimize_bundle(
        &mut self,
        id: InstanceId,
        bundle_name: String,
        initial: bool,
    ) -> Result<Option<DecisionRecord>, CoreError> {
        let app = self
            .apps
            .get(&id)
            .ok_or_else(|| CoreError::UnknownInstance { name: id.to_string() })?;
        let bundle = app
            .bundle(&bundle_name)
            .ok_or_else(|| CoreError::UnknownBundle { name: bundle_name.clone() })?;
        if !initial && self.config.respect_granularity && bundle.switch_blocked_at(self.now) {
            return Ok(None);
        }
        let current = bundle.current.clone();
        let t_cands = Instant::now();
        let cands = self.cached_candidates(&id, &bundle_name).expect("bundle validated above");
        let candidates_ms = elapsed_ms(t_cands);

        let before = self.objective_score();
        let t_search = Instant::now();
        let mut prediction_ms = 0.0;
        let mut best: Option<EvaluatedCandidate> = None;
        let mut last_reason = String::from("no candidates");
        for cand in cands.iter() {
            let t_eval = Instant::now();
            let evaluated = self.evaluate_candidate(&id, &bundle_name, cand);
            prediction_ms += elapsed_ms(t_eval);
            match evaluated? {
                Some(eval) => {
                    let better = match &best {
                        None => true,
                        Some(b) => eval.score < b.score - 1e-9,
                    };
                    if better {
                        best = Some(eval);
                    }
                }
                None => {
                    last_reason = format!("candidate `{}` does not fit", cand.label());
                }
            }
        }
        let optimization_ms = (elapsed_ms(t_search) - prediction_ms).max(0.0);

        let Some(best) = best else {
            if initial && current.is_none() {
                return Err(CoreError::Unplaceable { bundle: bundle_name, reason: last_reason });
            }
            return Ok(None);
        };

        // Keep the incumbent unless the best candidate is a strict
        // improvement (or this is the initial placement).
        if let Some(cur) = &current {
            if same_point(cur, &best.candidate) {
                return Ok(None);
            }
            if best.score >= before - 1e-9 {
                return Ok(None);
            }
        }

        self.phase_timings = Some(PhaseTimings {
            candidates_ms,
            prediction_ms,
            optimization_ms,
            ..Default::default()
        });
        Ok(Some(self.commit_choice(
            &id,
            &bundle_name,
            &best.candidate,
            best.alloc,
            best.predicted,
            before,
        )?))
    }

    /// One coordinated move: jointly re-choose bundles `a` and `b`,
    /// applying the best joint candidate when it strictly improves the
    /// system objective. Respects granularity for both sides.
    fn pairwise_step(
        &mut self,
        a: (InstanceId, String),
        b: (InstanceId, String),
    ) -> Result<Option<Vec<DecisionRecord>>, CoreError> {
        let get = |c: &Self,
                   pair: &(InstanceId, String)|
         -> Option<(BundleSpec, Option<ChosenConfig>, bool)> {
            let app = c.apps.get(&pair.0)?;
            let bundle = app.bundle(&pair.1)?;
            Some((
                bundle.spec.clone(),
                bundle.current.clone(),
                c.config.respect_granularity && bundle.switch_blocked_at(c.now),
            ))
        };
        let Some((spec_a, cur_a, blocked_a)) = get(self, &a) else { return Ok(None) };
        let Some((spec_b, cur_b, blocked_b)) = get(self, &b) else { return Ok(None) };
        if blocked_a || blocked_b {
            return Ok(None);
        }

        let before = self.objective_score();
        // Count unplaced bundles: a joint move that places a previously
        // unplaced bundle is an improvement even at equal objective.
        let unplaced_before = (cur_a.is_none() as u32) + (cur_b.is_none() as u32);

        let t_cands = Instant::now();
        let cands_a = self.cached_candidates(&a.0, &a.1).expect("pair validated above");
        let cands_b = self.cached_candidates(&b.0, &b.1).expect("pair validated above");
        let candidates_ms = elapsed_ms(t_cands);
        let t_joint = Instant::now();
        let mut best: Option<(f64, Candidate, Allocation, f64, Candidate, Allocation, f64)> = None;
        for ca in cands_a.iter() {
            let Some(opt_a) = spec_a.option(&ca.option) else { continue };
            for cb in cands_b.iter() {
                let Some(opt_b) = spec_b.option(&cb.option) else { continue };
                let mut tentative = self.cluster.clone();
                if let Some(cur) = &cur_a {
                    tentative.release(&cur.alloc)?;
                }
                if let Some(cur) = &cur_b {
                    tentative.release(&cur.alloc)?;
                }
                let matcher_a = Matcher {
                    strategy: self.config.matcher.strategy,
                    elastic_extra: ca.elastic_extra,
                };
                let Ok(alloc_a) = matcher_a.match_option(&tentative, opt_a, &ca.env()) else {
                    continue;
                };
                tentative.commit(&alloc_a)?;
                let matcher_b = Matcher {
                    strategy: self.config.matcher.strategy,
                    elastic_extra: cb.elastic_extra,
                };
                let Ok(alloc_b) = matcher_b.match_option(&tentative, opt_b, &cb.env()) else {
                    continue;
                };
                tentative.commit(&alloc_b)?;

                let app_a = self.apps.get(&a.0).expect("validated");
                let bundle_a = app_a.bundle(&a.1).expect("validated");
                let app_b = self.apps.get(&b.0).expect("validated");
                let bundle_b = app_b.bundle(&b.1).expect("validated");
                let pen_a = self.friction_of(bundle_a, ca, opt_a, &alloc_a);
                let pen_b = self.friction_of(bundle_b, cb, opt_b, &alloc_b);
                let cfg_a = hypothetical_config(ca, alloc_a.clone(), self.now);
                let cfg_b = hypothetical_config(cb, alloc_b.clone(), self.now);
                let replaces = [
                    Replace { id: &a.0, bundle: &a.1, opt: opt_a, cfg: &cfg_a, penalty: pen_a },
                    Replace { id: &b.0, bundle: &b.1, opt: opt_b, cfg: &cfg_b, penalty: pen_b },
                ];
                let score = self.system_score(&tentative, &replaces, &b.0);
                let rt_a =
                    self.app_response_time(&tentative, &a.0, &replaces).unwrap_or(f64::INFINITY);
                let rt_b =
                    self.app_response_time(&tentative, &b.0, &replaces).unwrap_or(f64::INFINITY);
                let better = match &best {
                    None => true,
                    Some((s, ..)) => score < *s - 1e-9,
                };
                if better {
                    best = Some((score, ca.clone(), alloc_a, rt_a, cb.clone(), alloc_b, rt_b));
                }
            }
        }

        // The joint scan interleaves env construction, prediction, and
        // comparison too tightly to split; report it all as optimization.
        let optimization_ms = elapsed_ms(t_joint);
        let Some((score, ca, alloc_a, rt_a, cb, alloc_b, rt_b)) = best else {
            return Ok(None);
        };
        let places_new = unplaced_before > 0
            && (cur_a.is_some() || spec_a.option(&ca.option).is_some())
            && (cur_b.is_some() || spec_b.option(&cb.option).is_some());
        let improves = score < before - 1e-9 || (places_new && score.is_finite());
        if !improves {
            return Ok(None);
        }
        // Skip when the joint best is exactly the incumbent pair.
        let same_a = cur_a.as_ref().map(|c| same_point(c, &ca)).unwrap_or(false);
        let same_b = cur_b.as_ref().map(|c| same_point(c, &cb)).unwrap_or(false);
        if same_a && same_b {
            return Ok(None);
        }

        let timings = PhaseTimings { candidates_ms, optimization_ms, ..Default::default() };
        let mut records = Vec::new();
        if !same_a {
            self.phase_timings = Some(timings);
            records.push(self.commit_choice(&a.0, &a.1, &ca, alloc_a, rt_a, before)?);
        }
        if !same_b {
            self.phase_timings = Some(timings);
            records.push(self.commit_choice(&b.0, &b.1, &cb, alloc_b, rt_b, before)?);
        }
        Ok(Some(records))
    }

    /// Releases the incumbent (if any), commits the new allocation, updates
    /// app state and namespace, and records the decision.
    fn commit_choice(
        &mut self,
        id: &InstanceId,
        bundle_name: &str,
        cand: &Candidate,
        alloc: Allocation,
        predicted: f64,
        objective_before: f64,
    ) -> Result<DecisionRecord, CoreError> {
        let mut phases = self.phase_timings.take().unwrap_or_default();
        let t_commit = Instant::now();
        let current =
            self.apps.get(id).and_then(|a| a.bundle(bundle_name)).and_then(|b| b.current.clone());
        if let Some(cur) = &current {
            self.cluster.release(&cur.alloc)?;
        }
        self.cluster.commit(&alloc)?;
        let cfg = ChosenConfig {
            option: cand.option.clone(),
            vars: cand.vars.clone(),
            elastic_extra: cand.elastic_extra,
            alloc,
            predicted,
            chosen_at: self.now,
        };
        let mut record = DecisionRecord {
            time: self.now,
            instance: id.clone(),
            bundle: bundle_name.to_string(),
            from: current.as_ref().map(ChosenConfig::label),
            to: cfg.label(),
            objective_before,
            objective_after: 0.0,
            cause: self.decision_cause.clone(),
            provenance: self.decision_provenance.clone(),
            phases: PhaseTimings::default(),
        };
        self.apply_choice(id, bundle_name, cfg, current.is_some());
        record.objective_after = self.objective_score();
        phases.commit_ms = elapsed_ms(t_commit);
        record.phases = phases;
        for (name, ms) in [
            ("controller.phase.candidates", phases.candidates_ms),
            ("controller.phase.prediction", phases.prediction_ms),
            ("controller.phase.optimization", phases.optimization_ms),
            ("controller.phase.pruning", phases.pruning_ms),
            ("controller.phase.commit", phases.commit_ms),
        ] {
            self.metrics.observe(name, ms / 1e3);
        }
        self.journal_append(
            JournalKind::Decision,
            format!("decision {}.{} -> {}", record.instance, record.bundle, record.to),
        );
        self.metrics.inc_counter("controller.decisions");
        self.bus.publish(MetricEvent::new(
            format!("controller.decision.{}.{}", record.instance, record.bundle),
            record.time,
            record.objective_after,
        ));
        self.decisions.push(record.clone());
        Ok(record)
    }

    /// Writes a new configuration into the app state and the namespace,
    /// buffering variable updates for the application to poll.
    fn apply_choice(
        &mut self,
        id: &InstanceId,
        bundle_name: &str,
        cfg: ChosenConfig,
        is_switch: bool,
    ) {
        let writes = config_writes(id, bundle_name, &cfg);
        for (p, v) in &writes {
            self.namespace.set(p.clone(), v.clone());
        }
        if let Some(buf) = self.pending_vars.get(id) {
            buf.lock().extend(writes);
        }

        let app = self.apps.get_mut(id).expect("caller validated instance");
        let bundle = app.bundle_mut(bundle_name).expect("caller validated bundle");
        if is_switch {
            bundle.reconfig_count += 1;
        }
        bundle.current = Some(cfg);
    }

    // Accessors used by the optimizer module (same crate).
    pub(crate) fn arrival_order_internal(&self) -> &[InstanceId] {
        &self.arrival_order
    }

    pub(crate) fn app_internal(&self, id: &InstanceId) -> Option<&AppInstance> {
        self.apps.get(id)
    }

    pub(crate) fn force_choice(
        &mut self,
        id: &InstanceId,
        bundle_name: &str,
        cand: &Candidate,
        alloc: Allocation,
        predicted: f64,
    ) -> Result<Option<DecisionRecord>, CoreError> {
        let app =
            self.apps.get(id).ok_or_else(|| CoreError::UnknownInstance { name: id.to_string() })?;
        let bundle = app
            .bundle(bundle_name)
            .ok_or_else(|| CoreError::UnknownBundle { name: bundle_name.to_string() })?;
        if let Some(cur) = &bundle.current {
            // Skip only when both the configuration point AND the concrete
            // allocation are unchanged; the same point on different nodes
            // is still a re-placement that must be committed.
            if same_point(cur, cand) && cur.alloc == alloc {
                return Ok(None);
            }
        }
        let before = self.objective_score();
        Ok(Some(self.commit_choice(id, bundle_name, cand, alloc, predicted, before)?))
    }

    // ------------------------------------------------------------------
    // Crash-consistent persistence (see `crate::persist`).
    // ------------------------------------------------------------------

    /// Appends one event to the attached WAL; a no-op without one. Errors
    /// are counted (`controller.persistence.append_errors`), never
    /// propagated — a failing disk must not take the serving path down
    /// with it.
    fn wal_log(&self, ev: &WalEvent) {
        let Some(wal) = &self.wal else { return };
        let payload = serde_json::to_string(ev).expect("wal events serialize");
        if wal.append(payload.as_bytes()).is_ok() {
            self.metrics.inc_counter("controller.persistence.appends");
        } else {
            self.metrics.inc_counter("controller.persistence.append_errors");
        }
    }

    /// Logs an incoming [`HarmonyEvent`] wholesale (the replay-safe form:
    /// `BundleSetup` scripts re-parse identically, `Periodic` re-reaps at
    /// the same clock).
    pub(crate) fn wal_log_event(&self, event: &crate::events::HarmonyEvent) {
        if self.wal.is_some() {
            self.wal_log(&WalEvent::Event { now: self.now, event: event.clone() });
        }
    }

    /// Attaches a write-ahead log: every state-changing verb from here on
    /// is logged. Called by [`crate::persist::StateStore::open`] *after*
    /// replay, so replayed verbs are never re-logged.
    pub fn attach_wal(&mut self, wal: std::sync::Arc<harmony_wal::WalWriter>) {
        self.wal = Some(wal);
    }

    /// True when a WAL is attached (persistence on).
    pub fn wal_attached(&self) -> bool {
        self.wal.is_some()
    }

    /// The attached WAL writer, if any (the embedding uses it for
    /// shutdown flushes).
    pub fn wal_handle(&self) -> Option<std::sync::Arc<harmony_wal::WalWriter>> {
        self.wal.clone()
    }

    /// Records how this controller was recovered (set by
    /// [`crate::persist::StateStore::open`]).
    pub fn set_recovery_info(&mut self, info: RecoveryInfo) {
        self.recovery = Some(info);
    }

    /// How this controller came to be, when recovered from a state
    /// directory.
    pub fn recovery_info(&self) -> Option<RecoveryInfo> {
        self.recovery
    }

    /// Captures the complete control-plane state for a snapshot. Lossless
    /// for everything decisions depend on: sessions keep their ids and
    /// deadlines, the journal keeps its sequence numbers, the namespace
    /// keeps its revision counter. Optimizer caches and metric
    /// counters/histograms are deliberately excluded (rebuilt cold).
    pub fn persisted_state(&self) -> PersistedState {
        let journal = self.journal.lock();
        let metric_series = self
            .metrics
            .series_names()
            .into_iter()
            .filter_map(|name| {
                let series = self.metrics.series(&name)?;
                let samples: Vec<(f64, f64)> = series.iter().map(|s| (s.time, s.value)).collect();
                Some((name, samples))
            })
            .collect();
        PersistedState {
            version: PERSIST_VERSION,
            now: self.now,
            config: self.config.clone(),
            cluster: self.cluster.clone(),
            registry: self.registry.clone(),
            apps: self.apps.iter().map(|(k, v)| (k.clone(), v.clone())).collect(),
            arrival_order: self.arrival_order.clone(),
            namespace: self.namespace.clone(),
            pending_vars: self
                .pending_vars
                .iter()
                .map(|(id, buf)| (id.clone(), buf.lock().clone()))
                .collect(),
            sessions: self.sessions.iter().map(|(k, v)| (k.clone(), v.clone())).collect(),
            touches: self
                .touches
                .iter()
                .filter_map(|(id, stamp)| {
                    let bits = stamp.load(AtomicOrdering::Acquire);
                    (bits != 0).then(|| (id.clone(), bits))
                })
                .collect(),
            decisions: self.decisions.clone(),
            retirements: self.retirements.clone(),
            journal_entries: journal.entries().cloned().collect(),
            journal_next_seq: journal.next_seq(),
            journal_capacity: journal.capacity(),
            scheduler: self.scheduler.dump(),
            metric_series,
        }
    }

    /// Rebuilds a controller from a persisted snapshot. The result has no
    /// WAL attached yet (replay runs first) and cold caches.
    ///
    /// # Errors
    ///
    /// [`CoreError::Persistence`] on a version mismatch or internally
    /// inconsistent state (an instance in `arrival_order` or `sessions`
    /// that `apps` does not know) — the caller falls back to an older
    /// generation.
    pub fn from_persisted(state: PersistedState) -> Result<Controller, CoreError> {
        if state.version != PERSIST_VERSION {
            return Err(CoreError::Persistence {
                detail: format!(
                    "snapshot version {} does not match this build's {PERSIST_VERSION}",
                    state.version
                ),
            });
        }
        let apps: BTreeMap<InstanceId, AppInstance> = state.apps.into_iter().collect();
        for id in &state.arrival_order {
            if !apps.contains_key(id) {
                return Err(CoreError::Persistence {
                    detail: format!("arrival_order names unknown instance `{id}`"),
                });
            }
        }
        let sessions: BTreeMap<InstanceId, SessionState> = state.sessions.into_iter().collect();
        for id in sessions.keys() {
            if !apps.contains_key(id) {
                return Err(CoreError::Persistence {
                    detail: format!("sessions name unknown instance `{id}`"),
                });
            }
        }

        let mut ctl = Controller::new(state.cluster, state.config);
        ctl.now = state.now;
        ctl.registry = state.registry;
        ctl.namespace = state.namespace;
        ctl.arrival_order = state.arrival_order;
        ctl.pending_vars =
            state.pending_vars.into_iter().map(|(id, vars)| (id, Mutex::new(vars))).collect();
        // Touch stamps exist for every session; restore the unfolded bits.
        let stamps: BTreeMap<InstanceId, u64> = state.touches.into_iter().collect();
        ctl.touches = apps
            .keys()
            .map(|id| (id.clone(), AtomicU64::new(stamps.get(id).copied().unwrap_or(0))))
            .collect();
        ctl.apps = apps;
        ctl.sessions = sessions;
        ctl.decisions = state.decisions;
        ctl.retirements = state.retirements;
        ctl.journal = Mutex::new(EventJournal::restore(
            state.journal_entries,
            state.journal_next_seq,
            state.journal_capacity,
        ));
        ctl.scheduler = DecisionScheduler::restore(state.scheduler);
        for (name, samples) in state.metric_series {
            for (time, value) in samples {
                ctl.metrics.record(&name, time, value);
            }
        }
        ctl.metrics.set_gauge("controller.sessions.active", ctl.sessions.len() as f64);
        Ok(ctl)
    }

    /// Re-applies one WAL event during recovery. The clock is restored
    /// first (each event carries the time it originally executed at), then
    /// the event replays through the *public* verb — the WAL is not
    /// attached yet, so the logging hooks are no-ops and nothing is
    /// re-logged. Errors are discarded: an operation that failed live
    /// fails identically on replay (the controller is deterministic), and
    /// that failure may still have mutated state that must be reproduced.
    pub fn apply_wal_event(&mut self, ev: WalEvent) {
        debug_assert!(self.wal.is_none(), "replaying into a WAL-attached controller re-logs");
        self.set_time(ev.now());
        match ev {
            WalEvent::Event { event, .. } => {
                let _ = self.handle_event(event);
            }
            WalEvent::Startup { app, .. } => {
                let _ = self.startup(&app);
            }
            WalEvent::Bundle { id, spec, .. } => {
                let _ = self.add_bundle(&id, spec);
            }
            WalEvent::End { id, .. } => {
                let _ = self.end(&id);
            }
            WalEvent::Renew { id, .. } => {
                let _ = self.renew_lease(&id);
            }
            WalEvent::Reattach { id, .. } => {
                let _ = self.reattach(&id);
            }
            WalEvent::Disconnect { id, .. } => self.mark_disconnected(&id),
            WalEvent::Touch { id, .. } => {
                let _ = self.touch(&id);
            }
            WalEvent::Poll { id, .. } => {
                let _ = self.take_pending_vars(&id);
            }
            WalEvent::Metric { name, time, value, .. } => {
                let _ = self.record_metric(&name, time, value);
            }
            WalEvent::Reap { now } => {
                let _ = self.reap_expired(now);
            }
            WalEvent::Tick { now } => {
                let _ = self.service_scheduler(now);
            }
            WalEvent::Flush { .. } => {
                let _ = self.flush_scheduler();
            }
            WalEvent::Reevaluate { .. } => {
                let _ = self.reevaluate();
            }
        }
    }
}

/// Milliseconds elapsed since `t0`.
fn elapsed_ms(t0: Instant) -> f64 {
    t0.elapsed().as_secs_f64() * 1e3
}

fn same_point(cur: &ChosenConfig, cand: &Candidate) -> bool {
    cur.option == cand.option
        && cur.vars == cand.vars
        && (cur.elastic_extra - cand.elastic_extra).abs() < 1e-9
}

fn hypothetical_config(cand: &Candidate, alloc: Allocation, now: f64) -> ChosenConfig {
    ChosenConfig {
        option: cand.option.clone(),
        vars: cand.vars.clone(),
        elastic_extra: cand.elastic_extra,
        alloc,
        predicted: 0.0,
        chosen_at: now,
    }
}

/// The namespace writes describing one applied configuration: the chosen
/// option under the bundle path, the variables, and each requirement's
/// granted resources. Used both when committing a choice and when
/// replaying current state to a reattaching client.
fn config_writes(id: &InstanceId, bundle_name: &str, cfg: &ChosenConfig) -> Vec<(HPath, Value)> {
    let base = instance_path(id).child(bundle_name).expect("bundle name is a component");
    let mut writes: Vec<(HPath, Value)> = vec![(base.clone(), Value::Str(cfg.option.clone()))];
    let opt_path = base.child(&cfg.option).expect("option name is a component");
    for (name, v) in &cfg.vars {
        if let Ok(p) = opt_path.child(name) {
            writes.push((p, Value::Int(*v)));
        }
    }
    let mut seen: Vec<&str> = Vec::new();
    for n in &cfg.alloc.nodes {
        if seen.contains(&n.req.as_str()) {
            continue;
        }
        seen.push(&n.req);
        if let Ok(req_path) = opt_path.child(&n.req) {
            let entries = [
                ("memory", Value::Float(n.memory)),
                ("seconds", Value::Float(n.seconds)),
                ("node", Value::Str(n.node.clone())),
                ("count", Value::Int(cfg.alloc.bindings(&n.req).len() as i64)),
            ];
            for (tag, v) in entries {
                if let Ok(p) = req_path.child(tag) {
                    writes.push((p, v));
                }
            }
        }
    }
    writes
}

/// The instance a metric report belongs to, per the `<app>.<id>.<metric>`
/// naming convention; `None` for non-conforming names.
fn metric_instance(name: &str) -> Option<InstanceId> {
    let mut parts = name.splitn(3, '.');
    let (app, id, _rest) = (parts.next()?, parts.next()?, parts.next()?);
    id.parse::<u64>().ok().map(|id| InstanceId::new(app, id))
}

/// Namespace path of an instance: `app.id`.
fn instance_path(id: &InstanceId) -> HPath {
    HPath::from_components([id.app.as_str(), &id.id.to_string()])
        .expect("app names and ids are valid components")
}

#[cfg(test)]
mod tests {
    use super::*;
    use harmony_rsl::listings::{sp2_cluster, FIG2A_SIMPLE, FIG2B_BAG};
    use harmony_rsl::schema::parse_bundle_script;

    fn sp2(n: usize) -> Cluster {
        Cluster::from_rsl(&sp2_cluster(n)).unwrap()
    }

    fn bag_spec() -> BundleSpec {
        parse_bundle_script(FIG2B_BAG).unwrap()
    }

    #[test]
    fn startup_assigns_instance_ids() {
        let mut c = Controller::new(sp2(4), ControllerConfig::default());
        let a = c.startup("DBclient");
        let b = c.startup("DBclient");
        assert_eq!(a, InstanceId::new("DBclient", 1));
        assert_eq!(b, InstanceId::new("DBclient", 2));
        assert_eq!(c.instances(), vec![a, b]);
    }

    #[test]
    fn registering_bag_on_idle_cluster_takes_all_eight_workers() {
        // With no competition, the explicit performance model says 8
        // workers is fastest (230 s).
        let mut c = Controller::new(sp2(8), ControllerConfig::default());
        let (id, records) = c.register(bag_spec()).unwrap();
        assert!(!records.is_empty());
        let choice = c.choice(&id, "config").unwrap();
        assert_eq!(choice.vars, vec![("workerNodes".to_string(), 8)]);
        assert_eq!(choice.predicted, 230.0);
        assert_eq!(c.cluster().total_tasks(), 8);
    }

    #[test]
    fn second_bag_forces_equal_partitions() {
        let mut c = Controller::new(sp2(8), ControllerConfig::default());
        let (a, _) = c.register(bag_spec()).unwrap();
        let (b, _) = c.register(bag_spec()).unwrap();
        let wa = c.choice(&a, "config").unwrap().vars[0].1;
        let wb = c.choice(&b, "config").unwrap().vars[0].1;
        // Equal partitions as in Figure 4b, on distinct node sets.
        assert_eq!((wa, wb), (4, 4), "got {wa}+{wb}");
        assert_eq!(c.objective_score(), 340.0);
        let na = &c.choice(&a, "config").unwrap().alloc;
        let nb = &c.choice(&b, "config").unwrap().alloc;
        for n in &na.nodes {
            assert!(nb.nodes.iter().all(|m| m.node != n.node), "disjoint node sets");
        }
    }

    #[test]
    fn unplaceable_initial_bundle_errors() {
        let mut c = Controller::new(sp2(2), ControllerConfig::default());
        let spec = parse_bundle_script(FIG2A_SIMPLE).unwrap(); // needs 4 nodes
        let err = c.register(spec).unwrap_err();
        assert!(matches!(err, CoreError::Unplaceable { .. }));
    }

    #[test]
    fn end_releases_resources_and_reexpands_survivors() {
        let mut c = Controller::new(sp2(8), ControllerConfig::default());
        let (a, _) = c.register(bag_spec()).unwrap();
        let (b, _) = c.register(bag_spec()).unwrap();
        assert_eq!(c.choice(&a, "config").unwrap().vars[0].1, 4);
        let records = c.end(&b).unwrap();
        // The survivor should re-expand to 8 workers.
        assert_eq!(c.choice(&a, "config").unwrap().vars[0].1, 8);
        assert!(records.iter().any(|r| r.instance == a));
        assert_eq!(c.cluster().total_tasks(), 8);
        assert!(c.app(&b).is_none());
        assert!(matches!(c.end(&b), Err(CoreError::UnknownInstance { .. })));
    }

    #[test]
    fn granularity_delays_reconfiguration() {
        let spec = parse_bundle_script(
            "harmonyBundle bag:1 config {\n\
               {run\n\
                 {variable workerNodes {1 2 4 8}}\n\
                 {node worker {replicate workerNodes} {seconds {1200 / workerNodes}} {memory 32}}\n\
                 {performance {1 1200} {2 620} {4 340} {8 230}}\n\
                 {granularity 100}}\n\
             }",
        )
        .unwrap();
        let mut c = Controller::new(sp2(8), ControllerConfig::default());
        let (a, _) = c.register(spec.clone()).unwrap();
        assert_eq!(c.choice(&a, "config").unwrap().vars[0].1, 8);
        // A second app arrives shortly after: the first app's granularity
        // (100 s) blocks the coordinated shrink.
        c.set_time(10.0);
        let (b, _) = c.register(spec.clone()).unwrap();
        assert_eq!(c.choice(&a, "config").unwrap().vars[0].1, 8, "blocked by granularity");
        // After the granularity window, a re-evaluation rebalances.
        c.set_time(200.0);
        c.reevaluate().unwrap();
        let wa = c.choice(&a, "config").unwrap().vars[0].1;
        let wb = c.choice(&b, "config").unwrap().vars[0].1;
        assert!(wa + wb <= 8, "rebalanced to {wa}+{wb}");
        assert!(wa >= 2 && wb >= 2, "rebalanced to {wa}+{wb}");
    }

    #[test]
    fn namespace_records_choices() {
        let mut c = Controller::new(sp2(8), ControllerConfig::default());
        let (id, _) = c.register(bag_spec()).unwrap();
        let ns = c.namespace();
        let opt_path: HPath = format!("bag.{}.config", id.id).parse().unwrap();
        assert_eq!(ns.get(&opt_path), Some(&Value::Str("run".into())));
        let var_path: HPath = format!("bag.{}.config.run.workerNodes", id.id).parse().unwrap();
        assert_eq!(ns.get(&var_path), Some(&Value::Int(8)));
        let mem_path: HPath = format!("bag.{}.config.run.worker.memory", id.id).parse().unwrap();
        assert_eq!(ns.get(&mem_path), Some(&Value::Float(32.0)));
    }

    #[test]
    fn pending_vars_flush_once() {
        let mut c = Controller::new(sp2(8), ControllerConfig::default());
        let (id, _) = c.register(bag_spec()).unwrap();
        let flushed = c.flush_pending_vars();
        assert_eq!(flushed.len(), 1);
        assert_eq!(flushed[0].0, id);
        assert!(!flushed[0].1.is_empty());
        assert!(c.flush_pending_vars().is_empty(), "second flush is empty");
    }

    #[test]
    fn selfish_mode_overallocates() {
        // Selfish: each bag takes as many workers as fit, ignoring the
        // other's slowdown (the AppLes contrast).
        let cfg =
            ControllerConfig { selfish: true, reevaluate_on_arrival: false, ..Default::default() };
        let mut c = Controller::new(sp2(8), cfg);
        let (a, _) = c.register(bag_spec()).unwrap();
        let (_b, _) = c.register(bag_spec()).unwrap();
        let wa = c.choice(&a, "config").unwrap().vars[0].1;
        assert_eq!(wa, 8, "selfish first app grabs everything");
        // Centralized (default) does better on the system objective.
        let mut c2 = Controller::new(sp2(8), ControllerConfig::default());
        c2.register(bag_spec()).unwrap();
        c2.register(bag_spec()).unwrap();
        assert!(c2.objective_score() <= c.objective_score());
    }

    #[test]
    fn decisions_are_recorded() {
        let mut c = Controller::new(sp2(8), ControllerConfig::default());
        let (id, _) = c.register(bag_spec()).unwrap();
        assert!(!c.decisions().is_empty());
        let d = &c.decisions()[0];
        assert_eq!(d.instance, id);
        assert_eq!(d.bundle, "config");
        assert_eq!(d.from, None);
        assert_eq!(d.to, "run[workerNodes=8]");
        assert!(d.objective_after > 0.0);
    }

    #[test]
    fn clock_never_goes_backwards() {
        let mut c = Controller::new(sp2(2), ControllerConfig::default());
        c.set_time(10.0);
        c.set_time(5.0);
        assert_eq!(c.now(), 10.0);
    }

    #[test]
    fn dedicated_bag_space_shares() {
        // The same bag with a dedicated tag: workers refuse co-residency,
        // so two bags partition the cluster 4+4 with zero contention.
        let spec = parse_bundle_script(
            "harmonyBundle bag:1 config {\n\
               {run\n\
                 {variable workerNodes {1 2 4 8}}\n\
                 {node worker {replicate workerNodes} {dedicated 1} {seconds {1200 / workerNodes}} {memory 32}}\n\
                 {performance {1 1200} {2 620} {4 340} {8 230}}}\n\
             }",
        )
        .unwrap();
        let mut c = Controller::new(sp2(8), ControllerConfig::default());
        let (a, _) = c.register(spec.clone()).unwrap();
        assert_eq!(c.choice(&a, "config").unwrap().vars[0].1, 8);
        let (b, _) = c.register(spec).unwrap();
        let wa = c.choice(&a, "config").unwrap().vars[0].1;
        let wb = c.choice(&b, "config").unwrap().vars[0].1;
        assert_eq!((wa, wb), (4, 4), "got {wa}+{wb}");
        // Every node hosts at most one task.
        for n in c.cluster().nodes() {
            assert!(n.tasks <= 1);
            assert_eq!(n.exclusive, n.tasks);
        }
    }

    #[test]
    fn strict_lint_rejects_broken_bundles_advisory_accepts() {
        // Undeclared variable `w` + reachable division by zero via `z`.
        let broken = parse_bundle_script(
            "harmonyBundle bag:1 config {\n\
               {run\n\
                 {variable z {0 1 2}}\n\
                 {node worker {replicate w} {seconds {1200 / z}} {memory 32}}}\n\
             }",
        )
        .unwrap();

        let mut strict = Controller::new(sp2(8), ControllerConfig::default());
        let err = strict.register(broken.clone()).unwrap_err();
        let CoreError::LintRejected { bundle, errors } = &err else {
            panic!("expected LintRejected, got {err:?}");
        };
        assert_eq!(bundle, "config");
        assert!(errors.iter().any(|e| e.starts_with("HA0004")), "{errors:?}");
        assert!(errors.iter().any(|e| e.starts_with("HA0020")), "{errors:?}");
        assert!(strict.metrics().counter("controller.lint.errors") >= 2);

        // Advisory mode lets the same bundle through to placement (which
        // then fails for its own reasons — `w` is unbound — but that is a
        // placement error, not a lint rejection).
        let cfg = ControllerConfig { lint: LintMode::Advisory, ..Default::default() };
        let mut advisory = Controller::new(sp2(8), cfg);
        let err = advisory.register(broken).unwrap_err();
        assert!(
            !matches!(err, CoreError::LintRejected { .. }),
            "advisory mode must not lint-reject: {err:?}"
        );
        assert!(advisory.metrics().counter("controller.lint.errors") >= 2);
    }

    #[test]
    fn lint_off_skips_analysis_counters() {
        let cfg = ControllerConfig { lint: LintMode::Off, ..Default::default() };
        let mut c = Controller::new(sp2(8), cfg);
        c.register(bag_spec()).unwrap();
        assert_eq!(c.metrics().counter("controller.lint.errors"), 0);
        assert_eq!(c.metrics().counter("controller.lint.warnings"), 0);
    }

    #[test]
    fn leases_renew_and_expire() {
        let mut c = Controller::new(sp2(8), ControllerConfig::default());
        let (a, _) = c.register(bag_spec()).unwrap();
        let (b, _) = c.register(bag_spec()).unwrap();
        assert_eq!(c.sessions().len(), 2);
        assert_eq!(c.session(&a).unwrap().deadline, 30.0);
        // `a` stays active; `b` goes silent.
        c.set_time(20.0);
        assert!(c.renew_lease(&a));
        assert_eq!(c.session(&a).unwrap().deadline, 50.0);
        assert_eq!(c.session(&a).unwrap().renewals, 1);
        // At t=40 only b's lease has run out.
        let records = c.reap_expired(40.0).unwrap();
        assert!(c.app(&b).is_none(), "b reaped");
        assert!(c.app(&a).is_some(), "a survives");
        assert_eq!(c.metrics().counter("controller.sessions.expired"), 1);
        // The survivor re-expanded to the full cluster, and the decision
        // carries the retirement cause.
        assert_eq!(c.choice(&a, "config").unwrap().vars[0].1, 8);
        assert!(records.iter().any(|r| r.cause.as_deref() == Some("lease-expired: bag.2")));
        let retirement = c.retirements().last().unwrap();
        assert_eq!(retirement.instance, b);
        assert_eq!(retirement.reason, RetireReason::LeaseExpired);
    }

    #[test]
    fn reaped_state_matches_explicit_end() {
        // A reaped instance must leave exactly the state an `end` would.
        let mut reaped = Controller::new(sp2(8), ControllerConfig::default());
        let (ra, _) = reaped.register(bag_spec()).unwrap();
        let (_rb, _) = reaped.register(bag_spec()).unwrap();
        reaped.set_time(20.0);
        reaped.renew_lease(&ra);
        reaped.reap_expired(40.0).unwrap();

        let mut ended = Controller::new(sp2(8), ControllerConfig::default());
        let (ea, _) = ended.register(bag_spec()).unwrap();
        let (eb, _) = ended.register(bag_spec()).unwrap();
        ended.end(&eb).unwrap();

        assert_eq!(reaped.instances(), ended.instances());
        assert_eq!(
            reaped.choice(&ra, "config").unwrap().label(),
            ended.choice(&ea, "config").unwrap().label()
        );
        assert_eq!(reaped.objective_score(), ended.objective_score());
        assert_eq!(reaped.cluster().total_tasks(), ended.cluster().total_tasks());
    }

    #[test]
    fn disconnect_shortens_lease_and_reattach_restores_it() {
        let mut c = Controller::new(sp2(8), ControllerConfig::default());
        let (a, _) = c.register(bag_spec()).unwrap();
        c.mark_disconnected(&a);
        let s = c.session(&a).unwrap();
        assert!(s.disconnected);
        assert_eq!(s.deadline, 5.0, "capped to the disconnect grace");
        // A reattach inside the grace revives the session and replays the
        // chosen values as pending vars.
        c.take_pending_vars(&a); // drain the original placement writes
        c.reattach(&a).unwrap();
        let s = c.session(&a).unwrap();
        assert!(!s.disconnected);
        assert_eq!(s.deadline, 30.0);
        let replayed = c.take_pending_vars(&a);
        assert!(replayed.iter().any(|(p, v)| {
            p.to_string() == format!("bag.{}.config.run.workerNodes", a.id) && *v == Value::Int(8)
        }));
        // Reattaching an unknown instance is an error.
        let ghost = InstanceId::new("bag", 99);
        assert!(matches!(c.reattach(&ghost), Err(CoreError::UnknownInstance { .. })));
    }

    #[test]
    fn disconnected_instance_reaps_with_disconnect_reason() {
        let mut c = Controller::new(sp2(8), ControllerConfig::default());
        let (a, _) = c.register(bag_spec()).unwrap();
        c.mark_disconnected(&a);
        // Marking twice does not double-count.
        c.mark_disconnected(&a);
        assert_eq!(c.metrics().counter("controller.sessions.disconnects"), 1);
        c.reap_expired(6.0).unwrap();
        assert!(c.app(&a).is_none());
        assert_eq!(c.retirements()[0].reason, RetireReason::Disconnected);
        assert_eq!(c.cluster().total_tasks(), 0);
    }

    #[test]
    fn metric_reports_renew_the_owning_lease() {
        let mut c = Controller::new(sp2(8), ControllerConfig::default());
        let (a, _) = c.register(bag_spec()).unwrap();
        c.set_time(25.0);
        c.renew_lease_for_metric(&format!("bag.{}.response_time", a.id));
        assert_eq!(c.session(&a).unwrap().deadline, 55.0);
        // Non-conforming or unknown names are ignored.
        c.renew_lease_for_metric("nodots");
        c.renew_lease_for_metric("ghost.77.rt");
        assert_eq!(c.sessions().len(), 1);
    }

    #[test]
    fn coordinated_moves_can_be_disabled() {
        let cfg = ControllerConfig { coordinated_moves: false, ..Default::default() };
        let mut c = Controller::new(sp2(8), cfg);
        let (a, _) = c.register(bag_spec()).unwrap();
        let (b, _) = c.register(bag_spec()).unwrap();
        let wa = c.choice(&a, "config").unwrap().vars[0].1;
        let wb = c.choice(&b, "config").unwrap().vars[0].1;
        // Without coordination, greedy gets stuck stacking both at 8.
        assert_eq!((wa, wb), (8, 8));
        assert!(c.objective_score() > 340.0);
    }

    fn coalescing_config(window: f64) -> ControllerConfig {
        ControllerConfig {
            coalesce: crate::scheduler::CoalescePolicy { window, max_delay: 10.0, max_pending: 0 },
            ..Default::default()
        }
    }

    #[test]
    fn default_config_leaves_scheduler_idle() {
        let mut c = Controller::new(sp2(8), ControllerConfig::default());
        c.register(bag_spec()).unwrap();
        c.register(bag_spec()).unwrap();
        assert!(!c.coalescing());
        assert_eq!(c.pending_decisions(), 0);
        assert_eq!(c.metrics().counter("controller.scheduler.windows_fired"), 0);
    }

    #[test]
    fn coalesced_arrivals_defer_to_one_window() {
        let mut c = Controller::new(sp2(8), coalescing_config(0.5));
        let (a, _) = c.register(bag_spec()).unwrap();
        let (b, _) = c.register(bag_spec()).unwrap();
        assert_eq!(c.pending_decisions(), 2);
        // Inside the window nothing fires.
        assert!(c.service_scheduler(0.3).unwrap().is_empty());
        // Past the quiet window, one re-evaluation covers both arrivals.
        let reevals_before = c.metrics().counter("controller.reevals");
        let records = c.service_scheduler(0.6).unwrap();
        assert_eq!(c.metrics().counter("controller.reevals"), reevals_before + 1);
        assert!(!records.is_empty());
        assert!(records.iter().all(|r| r.cause.as_deref() == Some("coalesced-arrivals: 2")));
        // Same end state as the synchronous policy: equal partitions.
        let wa = c.choice(&a, "config").unwrap().vars[0].1;
        let wb = c.choice(&b, "config").unwrap().vars[0].1;
        assert_eq!((wa, wb), (4, 4), "got {wa}+{wb}");
        assert_eq!(c.objective_score(), 340.0);
        assert_eq!(c.pending_decisions(), 0);
        assert_eq!(c.metrics().counter("controller.scheduler.windows_fired"), 1);
        assert_eq!(c.metrics().counter("controller.scheduler.coalesced_arrivals"), 2);
        assert_eq!(c.metrics().counter("controller.scheduler.decisions_saved"), 1);
        // The coalesced state is a fixed point: re-evaluating again moves
        // nothing.
        assert!(c.reevaluate().unwrap().is_empty());
    }

    #[test]
    fn coalesced_admission_still_shrinks_incumbents_synchronously() {
        // Dedicated workers: the second bag cannot place at all until the
        // first shrinks, so the pairwise admission must not be deferred.
        let spec = parse_bundle_script(
            "harmonyBundle bag:1 config {\n\
               {run\n\
                 {variable workerNodes {1 2 4 8}}\n\
                 {node worker {replicate workerNodes} {dedicated 1} {seconds {1200 / workerNodes}} {memory 32}}\n\
                 {performance {1 1200} {2 620} {4 340} {8 230}}}\n\
             }",
        )
        .unwrap();
        let mut c = Controller::new(sp2(8), coalescing_config(0.5));
        let (a, _) = c.register(spec.clone()).unwrap();
        assert_eq!(c.choice(&a, "config").unwrap().vars[0].1, 8);
        let (b, _) = c.register(spec).unwrap();
        assert!(c.choice(&b, "config").is_some(), "admission happened inline");
        let wa = c.choice(&a, "config").unwrap().vars[0].1;
        let wb = c.choice(&b, "config").unwrap().vars[0].1;
        assert_eq!((wa, wb), (4, 4), "got {wa}+{wb}");
    }

    #[test]
    fn coalesced_retire_defers_survivor_reexpansion() {
        let mut c = Controller::new(sp2(8), coalescing_config(0.5));
        let (a, _) = c.register(bag_spec()).unwrap();
        let (b, _) = c.register(bag_spec()).unwrap();
        c.flush_scheduler().unwrap();
        assert_eq!(c.choice(&a, "config").unwrap().vars[0].1, 4);
        // Ending `b` marks dirty instead of re-evaluating inline.
        let records = c.end(&b).unwrap();
        assert!(records.is_empty());
        assert_eq!(c.choice(&a, "config").unwrap().vars[0].1, 4, "not yet re-expanded");
        assert_eq!(c.pending_decisions(), 1);
        let records = c.flush_scheduler().unwrap();
        assert!(records.iter().any(|r| r.instance == a));
        assert_eq!(c.choice(&a, "config").unwrap().vars[0].1, 8, "re-expanded at the window");
    }

    #[test]
    fn max_pending_fires_without_waiting_for_the_window() {
        let mut c = Controller::new(
            sp2(8),
            ControllerConfig {
                coalesce: crate::scheduler::CoalescePolicy {
                    window: 100.0,
                    max_delay: 1000.0,
                    max_pending: 2,
                },
                ..Default::default()
            },
        );
        c.register(bag_spec()).unwrap();
        c.register(bag_spec()).unwrap();
        // Two marks hit max_pending: due immediately, no quiet time needed.
        let records = c.service_scheduler(0.0).unwrap();
        assert!(!records.is_empty());
        assert_eq!(c.metrics().counter("controller.scheduler.windows_fired"), 1);
    }

    #[test]
    fn touch_extends_lease_via_fold() {
        let mut c = Controller::new(sp2(8), ControllerConfig::default());
        let (a, _) = c.register(bag_spec()).unwrap();
        assert_eq!(c.session(&a).unwrap().deadline, 30.0);
        c.set_time(20.0);
        assert!(c.touch(&a));
        // The stored deadline is untouched until a write-path fold, but
        // the effective deadline already reflects the renewal.
        assert_eq!(c.session(&a).unwrap().deadline, 30.0);
        assert_eq!(c.effective_deadline(&a), Some(50.0));
        // The reaper folds the touch before judging expiry: at t=40 the
        // touched lease (deadline 50) survives.
        c.reap_expired(40.0).unwrap();
        assert!(c.app(&a).is_some(), "touched instance survives");
        assert_eq!(c.session(&a).unwrap().deadline, 50.0);
        assert_eq!(c.session(&a).unwrap().renewals, 1);
        // An un-renewed instance is unknown to touch.
        assert!(!c.touch(&InstanceId::new("ghost", 9)));
    }

    #[test]
    fn touch_before_disconnect_is_honored() {
        let mut c = Controller::new(sp2(8), ControllerConfig::default());
        let (a, _) = c.register(bag_spec()).unwrap();
        c.set_time(20.0);
        c.touch(&a);
        c.mark_disconnected(&a);
        let s = c.session(&a).unwrap();
        assert!(s.disconnected);
        // Folded renewal (deadline 50) first, then capped to now + grace.
        assert_eq!(s.deadline, 25.0);
        assert_eq!(s.renewals, 1);
    }

    #[test]
    fn touch_for_metric_parses_instance_names() {
        let mut c = Controller::new(sp2(8), ControllerConfig::default());
        let (a, _) = c.register(bag_spec()).unwrap();
        c.set_time(25.0);
        c.touch_for_metric(&format!("bag.{}.response_time", a.id));
        assert_eq!(c.effective_deadline(&a), Some(55.0));
        // Non-conforming names are ignored without panicking.
        c.touch_for_metric("nodots");
        c.touch_for_metric("ghost.77.rt");
    }

    #[test]
    fn set_time_rejects_non_finite_and_backward_clocks() {
        let mut c = Controller::new(sp2(2), ControllerConfig::default());
        c.set_time(7.0);
        c.set_time(f64::NAN);
        c.set_time(f64::INFINITY);
        c.set_time(f64::NEG_INFINITY);
        c.set_time(3.0);
        assert_eq!(c.now(), 7.0, "bad clocks are ignored, not applied");
    }

    /// `fetch_max` on raw f64 bits is only a max for non-negative finite
    /// values: a NaN stamp (all-ones exponent) would win every later
    /// comparison and freeze the lease forever, and a negative stamp's
    /// sign bit ranks it above every legitimate timestamp. The touch site
    /// must clamp even if an adversarial clock sneaks past `set_time`.
    #[test]
    fn touch_never_stores_a_poisonous_stamp() {
        let mut c = Controller::new(sp2(8), ControllerConfig::default());
        let (a, _) = c.register(bag_spec()).unwrap();
        let lease = c.config().lease.duration;

        // Adversarial clocks (written directly: set_time refuses them).
        for bad in [f64::NAN, f64::INFINITY, -4.0] {
            c.now = bad;
            assert!(c.touch(&a), "a rejected stamp drops the touch, not the session");
            assert_eq!(
                c.touches[&a].load(AtomicOrdering::Acquire),
                0,
                "no stamp may be stored for now = {bad}"
            );
        }

        // A sane clock touches normally...
        c.now = 10.0;
        assert!(c.touch(&a));
        assert_eq!(c.effective_deadline(&a), Some(10.0 + lease));
        // ...and later poison attempts cannot regress or corrupt it.
        c.now = f64::NAN;
        c.touch(&a);
        c.now = -1.0e300;
        c.touch(&a);
        assert_eq!(c.effective_deadline(&a), Some(10.0 + lease), "stamp survived the attack");
        // An earlier (but valid) clock loses fetch_max without wedging.
        c.now = 5.0;
        c.touch(&a);
        assert_eq!(c.effective_deadline(&a), Some(10.0 + lease));
        // Folding the stamp yields a finite deadline.
        c.now = 10.5;
        let _ = c.reap_expired(10.5).unwrap();
        let s = c.session(&a).unwrap();
        assert!(s.deadline.is_finite());
        assert_eq!(s.deadline, 10.0 + lease);
    }
}

#[cfg(test)]
mod exhaustive_limit_tests {
    use super::*;

    /// Satellite of the facts engine: the optimizer's default exhaustive
    /// bound and the analyzer's HA0106 enumerability cap are one constant.
    #[test]
    fn exhaustive_limit_is_the_analyzer_domain_cap() {
        assert_eq!(
            OptimizerKind::exhaustive(),
            OptimizerKind::Exhaustive { limit: DEFAULT_EXHAUSTIVE_LIMIT }
        );
        assert_eq!(DEFAULT_EXHAUSTIVE_LIMIT, harmony_analyze::passes::reach::DOMAIN_CAP as u64);
        assert_eq!(DEFAULT_EXHAUSTIVE_LIMIT, 4096);
    }
}
