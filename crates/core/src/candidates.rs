//! Candidate enumeration: the discrete configuration points of a bundle.
//!
//! Options are "a way of allowing Harmony to locate an individual
//! application in n-dimensional space" (§3). A bundle's candidate set is
//! the cross product of its options, each option's `variable` axes, and the
//! controller's elastic-memory steps.

use harmony_rsl::expr::MapEnv;
use harmony_rsl::schema::{BundleSpec, OptionSpec};
use harmony_rsl::Value;
use serde::{Deserialize, Serialize};

/// One candidate configuration point.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Candidate {
    /// The option name.
    pub option: String,
    /// Variable bindings, sorted by name.
    pub vars: Vec<(String, i64)>,
    /// Extra megabytes for elastic memory requirements.
    pub elastic_extra: f64,
}

impl Candidate {
    /// The variable environment this candidate induces.
    pub fn env(&self) -> MapEnv {
        let mut env = MapEnv::new();
        for (k, v) in &self.vars {
            env.set(k.clone(), Value::Int(*v));
        }
        env
    }

    /// A short label like `DS+7MB` or `run[workerNodes=4]`.
    pub fn label(&self) -> String {
        let mut s = self.option.clone();
        if !self.vars.is_empty() {
            let vars =
                self.vars.iter().map(|(k, v)| format!("{k}={v}")).collect::<Vec<_>>().join(",");
            s.push_str(&format!("[{vars}]"));
        }
        if self.elastic_extra > 0.0 {
            s.push_str(&format!("+{:.0}MB", self.elastic_extra));
        }
        s
    }
}

/// Enumerates every variable assignment of `opt` (cartesian product of its
/// `variable` tags), in definition order.
pub fn variable_assignments(opt: &OptionSpec) -> Vec<Vec<(String, i64)>> {
    let mut out: Vec<Vec<(String, i64)>> = vec![Vec::new()];
    for var in &opt.variables {
        let mut next = Vec::with_capacity(out.len() * var.choices.len());
        for assignment in &out {
            for &choice in &var.choices {
                let mut a = assignment.clone();
                a.push((var.name.clone(), choice));
                next.push(a);
            }
        }
        out = next;
    }
    for a in &mut out {
        a.sort();
    }
    out
}

/// True when any node requirement of `opt` has an elastic (`>=`) memory
/// tag, i.e. elastic-extra steps beyond zero are meaningful.
pub fn has_elastic_memory(opt: &OptionSpec) -> bool {
    opt.nodes.iter().any(|n| n.memory().map(|m| m.is_elastic()).unwrap_or(false))
}

/// Enumerates all candidates of `bundle`: for each option, each variable
/// assignment; options with elastic memory additionally fan out over
/// `elastic_steps` (a `0.0` step is always included first).
pub fn enumerate(bundle: &BundleSpec, elastic_steps: &[f64]) -> Vec<Candidate> {
    let mut out = Vec::new();
    for opt in &bundle.options {
        let extras: Vec<f64> = if has_elastic_memory(opt) {
            let mut steps = vec![0.0];
            for &s in elastic_steps {
                if s > 0.0 && !steps.iter().any(|x| (x - s).abs() < 1e-9) {
                    steps.push(s);
                }
            }
            steps
        } else {
            vec![0.0]
        };
        for vars in variable_assignments(opt) {
            for &extra in &extras {
                out.push(Candidate {
                    option: opt.name.clone(),
                    vars: vars.clone(),
                    elastic_extra: extra,
                });
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use harmony_rsl::expr::Env;
    use harmony_rsl::listings::{FIG2B_BAG, FIG3_DBCLIENT};
    use harmony_rsl::schema::parse_bundle_script;

    #[test]
    fn fig2b_enumerates_worker_counts() {
        let bundle = parse_bundle_script(FIG2B_BAG).unwrap();
        let cands = enumerate(&bundle, &[]);
        assert_eq!(cands.len(), 4);
        let workers: Vec<i64> = cands.iter().map(|c| c.vars[0].1).collect();
        assert_eq!(workers, vec![1, 2, 4, 8]);
        assert_eq!(cands[2].label(), "run[workerNodes=4]");
    }

    #[test]
    fn fig3_enumerates_options_with_elastic_fanout() {
        let bundle = parse_bundle_script(FIG3_DBCLIENT).unwrap();
        // QS is not elastic; DS is (client memory >=17).
        let cands = enumerate(&bundle, &[7.0, 15.0]);
        let qs: Vec<_> = cands.iter().filter(|c| c.option == "QS").collect();
        let ds: Vec<_> = cands.iter().filter(|c| c.option == "DS").collect();
        assert_eq!(qs.len(), 1);
        assert_eq!(ds.len(), 3); // 0, 7, 15 MB extra
        assert_eq!(ds[1].label(), "DS+7MB");
    }

    #[test]
    fn candidate_env_binds_vars() {
        let c = Candidate {
            option: "run".into(),
            vars: vec![("workerNodes".into(), 8)],
            elastic_extra: 0.0,
        };
        assert_eq!(c.env().lookup("workerNodes"), Some(Value::Int(8)));
    }

    #[test]
    fn multi_variable_cross_product() {
        let bundle = parse_bundle_script(
            "harmonyBundle a b { {o {variable x {1 2}} {variable y {10 20 30}} {node n {seconds 1}}} }",
        )
        .unwrap();
        let assignments = variable_assignments(&bundle.options[0]);
        assert_eq!(assignments.len(), 6);
        // Sorted bindings inside each assignment.
        for a in &assignments {
            assert_eq!(a[0].0, "x");
            assert_eq!(a[1].0, "y");
        }
    }

    #[test]
    fn duplicate_elastic_steps_are_deduplicated() {
        let bundle =
            parse_bundle_script("harmonyBundle a b { {o {node n {memory >=16} {seconds 1}}} }")
                .unwrap();
        let cands = enumerate(&bundle, &[8.0, 8.0, 0.0]);
        assert_eq!(cands.len(), 2); // 0 and 8
    }
}
