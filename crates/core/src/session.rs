//! Session leases: liveness tracking for registered application instances.
//!
//! The paper's prototype assumes applications always announce departure
//! via `harmony_end` (§5), but the controller's decisions are driven by
//! how many instances are registered — a single crashed client that never
//! sends `end` would permanently skew every subsequent adaptation
//! decision. Each registered instance therefore carries a *lease* that
//! any request renews (including the lightweight `heartbeat` verb); the
//! [`reap_expired`](crate::Controller::reap_expired) sweep retires
//! instances whose lease ran out exactly as if they had called `end`,
//! freeing their allocations and re-evaluating the survivors.

use std::fmt;

use serde::{Deserialize, Serialize};

use crate::app::InstanceId;

/// Lease parameters, in controller-clock seconds.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LeaseConfig {
    /// Seconds a lease stays valid after its last renewal.
    pub duration: f64,
    /// Once the server observes an instance's connection drop, its lease
    /// is shortened to expire at most this many seconds later — the
    /// window in which a reconnecting client can still `reattach`.
    pub disconnect_grace: f64,
}

impl Default for LeaseConfig {
    fn default() -> Self {
        LeaseConfig { duration: 30.0, disconnect_grace: 5.0 }
    }
}

/// Liveness state of one registered instance.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SessionState {
    /// Controller-clock time at which the lease expires.
    pub deadline: f64,
    /// The server observed this instance's connection drop, and the lease
    /// has not been renewed since.
    pub disconnected: bool,
    /// Number of lease renewals (any request from the instance counts).
    pub renewals: u64,
}

impl SessionState {
    /// A fresh session whose lease expires at `deadline`.
    pub fn new(deadline: f64) -> Self {
        SessionState { deadline, disconnected: false, renewals: 0 }
    }

    /// True when the lease has run out at time `now`.
    pub fn expired_at(&self, now: f64) -> bool {
        self.deadline <= now
    }
}

/// Why an instance left the controller.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum RetireReason {
    /// The application called `harmony_end`.
    Ended,
    /// The lease ran out with no renewal (crashed or wedged client).
    LeaseExpired,
    /// The connection dropped and the disconnect grace elapsed without a
    /// reattach.
    Disconnected,
}

impl fmt::Display for RetireReason {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RetireReason::Ended => write!(f, "end"),
            RetireReason::LeaseExpired => write!(f, "lease-expired"),
            RetireReason::Disconnected => write!(f, "disconnected"),
        }
    }
}

/// A record of one instance retirement (explicit or reaped).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RetirementRecord {
    /// Controller-clock time of the retirement.
    pub time: f64,
    /// The retired instance.
    pub instance: InstanceId,
    /// Why it was retired.
    pub reason: RetireReason,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_sane() {
        let cfg = LeaseConfig::default();
        assert!(cfg.duration > cfg.disconnect_grace);
    }

    #[test]
    fn session_expiry() {
        let s = SessionState::new(30.0);
        assert!(!s.expired_at(29.9));
        assert!(s.expired_at(30.0));
        assert!(!s.disconnected);
        assert_eq!(s.renewals, 0);
    }

    #[test]
    fn reason_display() {
        assert_eq!(RetireReason::Ended.to_string(), "end");
        assert_eq!(RetireReason::LeaseExpired.to_string(), "lease-expired");
        assert_eq!(RetireReason::Disconnected.to_string(), "disconnected");
    }

    #[test]
    fn retirement_record_round_trips_json() {
        let r = RetirementRecord {
            time: 31.0,
            instance: InstanceId::new("bag", 2),
            reason: RetireReason::LeaseExpired,
        };
        let json = serde_json::to_string(&r).unwrap();
        let back: RetirementRecord = serde_json::from_str(&json).unwrap();
        assert_eq!(r, back);
    }
}
