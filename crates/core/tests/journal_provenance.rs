//! Decision provenance: every applied decision names the journal entries
//! of the events that caused it, synchronously and across coalesced
//! windows.

use harmony_core::{CoalescePolicy, Controller, ControllerConfig, HarmonyEvent, JournalKind};
use harmony_resources::Cluster;
use harmony_rsl::listings::{sp2_cluster, FIG2B_BAG};
use harmony_rsl::schema::parse_bundle_script;

fn controller(nodes: usize) -> Controller {
    Controller::new(Cluster::from_rsl(&sp2_cluster(nodes)).unwrap(), ControllerConfig::default())
}

fn coalescing_controller(nodes: usize, window: f64) -> Controller {
    let config = ControllerConfig {
        coalesce: CoalescePolicy { window, max_delay: 10.0, max_pending: 64 },
        ..Default::default()
    };
    Controller::new(Cluster::from_rsl(&sp2_cluster(nodes)).unwrap(), config)
}

#[test]
fn synchronous_decisions_carry_the_triggering_event() {
    let mut ctl = controller(8);
    let (_, records) = ctl.register(parse_bundle_script(FIG2B_BAG).unwrap()).unwrap();
    assert_eq!(records.len(), 1);
    let record = &records[0];
    assert_eq!(record.provenance.len(), 1, "one synchronous trigger");
    let tail = ctl.journal_tail(0, 1000);
    let trigger = tail.entries.iter().find(|e| e.seq == record.provenance[0]).unwrap();
    assert_eq!(trigger.kind, JournalKind::Event);
    assert!(trigger.detail.starts_with("bundle-setup bag.1"), "got {:?}", trigger.detail);
}

#[test]
fn decisions_append_journal_entries() {
    let mut ctl = controller(8);
    ctl.register(parse_bundle_script(FIG2B_BAG).unwrap()).unwrap();
    let tail = ctl.journal_tail(0, 1000);
    let kinds: Vec<JournalKind> = tail.entries.iter().map(|e| e.kind).collect();
    assert!(kinds.contains(&JournalKind::Decision), "got {kinds:?}");
    let decision = tail.entries.iter().find(|e| e.kind == JournalKind::Decision).unwrap();
    assert!(decision.detail.starts_with("decision bag.1.config ->"), "{:?}", decision.detail);
}

#[test]
fn coalesced_window_decisions_carry_the_whole_batch() {
    let mut ctl = coalescing_controller(8, 0.5);
    let spec = parse_bundle_script(FIG2B_BAG).unwrap();
    // A burst of four arrivals inside one window.
    for _ in 0..4 {
        ctl.register(spec.clone()).unwrap();
    }
    assert_eq!(ctl.pending_decisions(), 4);
    ctl.set_time(1.0);
    let records = ctl.service_scheduler(1.0).unwrap();
    assert!(!records.is_empty());
    let tail = ctl.journal_tail(0, 1000);
    for record in &records {
        assert_eq!(record.cause.as_deref(), Some("coalesced-arrivals: 4"));
        assert_eq!(record.provenance.len(), 4, "all four triggers on the record");
        for &seq in &record.provenance {
            let entry = tail.entries.iter().find(|e| e.seq == seq).unwrap();
            assert!(entry.detail.starts_with("bundle-setup"), "got {:?}", entry.detail);
        }
    }
    // The fire itself is journaled too.
    assert!(tail
        .entries
        .iter()
        .any(|e| e.kind == JournalKind::SchedulerFire && e.detail == "coalesced-arrivals: 4"));
}

#[test]
fn retirement_decisions_carry_the_departure() {
    let mut ctl = controller(8);
    let (id, _) = ctl.register(parse_bundle_script(FIG2B_BAG).unwrap()).unwrap();
    let (id2, _) = ctl.register(parse_bundle_script(FIG2B_BAG).unwrap()).unwrap();
    let records = ctl.end(&id).unwrap();
    assert!(!records.is_empty(), "{id2} expands after {id} departs");
    let tail = ctl.journal_tail(0, 1000);
    for record in &records {
        assert_eq!(record.provenance.len(), 1);
        let entry = tail.entries.iter().find(|e| e.seq == record.provenance[0]).unwrap();
        assert_eq!(entry.kind, JournalKind::Retirement);
        assert!(entry.detail.contains(&id.to_string()), "got {:?}", entry.detail);
    }
}

#[test]
fn metric_reports_are_journaled_and_non_finite_rejected() {
    let mut ctl = controller(2);
    assert!(ctl.record_metric("x.1.response_time", 1.0, 5.0));
    assert!(!ctl.record_metric("x.1.response_time", 2.0, f64::NAN));
    assert!(!ctl.record_metric("x.1.response_time", f64::INFINITY, 5.0));
    let tail = ctl.journal_tail(0, 1000);
    let details: Vec<&str> = tail.entries.iter().map(|e| e.detail.as_str()).collect();
    assert!(details.contains(&"metric x.1.response_time 5"), "got {details:?}");
    assert_eq!(details.iter().filter(|d| **d == "metric-rejected x.1.response_time").count(), 2);
    // The rejected samples never reached the series or the histogram.
    assert_eq!(ctl.metrics().series("x.1.response_time").unwrap().len(), 1);
    assert_eq!(ctl.metrics().histogram("x.1.response_time").unwrap().len(), 1);
    // And heartbeats journal from the event path.
    let _ = ctl.handle_event(HarmonyEvent::MetricReport {
        name: "x.1.response_time".into(),
        time: 3.0,
        value: f64::NEG_INFINITY,
    });
    assert_eq!(ctl.metrics().series("x.1.response_time").unwrap().len(), 1, "still rejected");
}

#[test]
fn journal_cursor_pages_across_activity() {
    let mut ctl = controller(8);
    ctl.register(parse_bundle_script(FIG2B_BAG).unwrap()).unwrap();
    let first = ctl.journal_tail(0, 2);
    assert_eq!(first.entries.len(), 2);
    let rest = ctl.journal_tail(first.next_cursor, 1000);
    assert!(!rest.truncated);
    let total = ctl.journal_tail(0, 1000).entries.len();
    assert_eq!(first.entries.len() + rest.entries.len(), total);
    assert_eq!(ctl.journal_seq(), total as u64);
}
