//! Equivalence properties of the rebuilt decision engine.
//!
//! Two invariants the parallel/incremental machinery must never bend:
//!
//! 1. Parallel exhaustive search returns *identical* `DecisionRecord`s to
//!    the serial scan, for any worker count (the deterministic
//!    `(score, assignment)` tie-break makes partition merges exact).
//! 2. The incremental prefix-reuse evaluator agrees with the fresh-clone
//!    reference evaluator on every assignment, in any visit order.
//!
//! Both are checked across a seeded family of randomized systems (bundle
//! counts, variable choices, memory/seconds/communication shapes, cluster
//! sizes, matcher strategies, objectives), >= 100 cases each.

use harmony_core::optimizer::{
    annealing_with_workers, exhaustive_baseline, exhaustive_pruned, exhaustive_with_workers,
    EvalCtx, IncrementalEval,
};
use harmony_core::{Controller, ControllerConfig, Objective, OptimizerKind, PruningMode};
use harmony_resources::{Cluster, Strategy};
use harmony_rsl::listings::sp2_cluster;
use harmony_rsl::schema::parse_bundle_script;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Builds one randomized system: a cluster of `nodes` SP-2 nodes and
/// `napps` single-option bundles with random variable choices and demands.
/// Everything is derived from `rng`, so a case is reproducible by seed.
fn random_system(rng: &mut StdRng) -> (ControllerConfig, usize, Vec<String>) {
    let nodes = rng.gen_range(2..=10usize);
    let napps = rng.gen_range(1..=4usize);
    let strategy = match rng.gen_range(0..3u32) {
        0 => Strategy::FirstFit,
        1 => Strategy::BestFit,
        _ => Strategy::WorstFit,
    };
    let objective = match rng.gen_range(0..3u32) {
        0 => Objective::MinAvgCompletionTime,
        1 => Objective::MinMakespan,
        _ => Objective::Blend(0.5),
    };
    let mut scripts = Vec::new();
    for i in 0..napps {
        let all = [1usize, 2, 3, 4, 6, 8];
        let nchoices = rng.gen_range(1..=3usize);
        let mut choices: Vec<usize> = Vec::new();
        while choices.len() < nchoices {
            let c = all[rng.gen_range(0..all.len())];
            if !choices.contains(&c) {
                choices.push(c);
            }
        }
        choices.sort_unstable();
        let choice_list = choices.iter().map(|c| c.to_string()).collect::<Vec<_>>().join(" ");
        let seconds = rng.gen_range(100..=2000u32);
        let memory = rng.gen_range(16..=160u32);
        let comm = rng.gen_range(0..=50u32);
        scripts.push(format!(
            "harmonyBundle app{i}:1 config {{\n  {{run\n    \
             {{variable workerNodes {{{choice_list}}}}}\n    \
             {{node worker {{replicate workerNodes}} \
             {{seconds {{{seconds} / workerNodes}}}} {{memory {memory}}}}}\n    \
             {{communication {{{comm} * workerNodes}}}}}}\n}}\n"
        ));
    }
    let config = ControllerConfig {
        matcher: harmony_resources::Matcher { strategy, elastic_extra: 0.0 },
        objective,
        ..Default::default()
    };
    (config, nodes, scripts)
}

fn build_controller(config: &ControllerConfig, nodes: usize, scripts: &[String]) -> Controller {
    let cluster = Cluster::from_rsl(&sp2_cluster(nodes)).unwrap();
    let mut c = Controller::new(cluster, config.clone());
    for s in scripts {
        // Some random demands exceed the cluster; an unplaced bundle is a
        // legitimate input to the joint optimizers, not a test failure.
        let _ = c.register(parse_bundle_script(s).unwrap());
    }
    c
}

/// A randomized system that also exercises the pruning axes: sometimes a
/// pair of bundles pinned to disjoint hosts (components), sometimes a
/// bundle with provably dominated variable choices.
fn random_pruning_system(rng: &mut StdRng) -> (ControllerConfig, usize, Vec<String>) {
    let (config, nodes, mut scripts) = random_system(rng);
    if rng.gen_bool(0.5) && nodes >= 4 {
        // Two bundles pinned to disjoint node pairs: the interference
        // partition should split them into independent components.
        for (b, lo) in [(0usize, 0usize), (1, 2)] {
            let h0 = format!("node{lo:02}.sp2");
            let h1 = format!("node{:02}.sp2", lo + 1);
            let secs = rng.gen_range(100..=900u32);
            scripts.push(format!(
                "harmonyBundle pin{b}:1 config {{ \
                 {{one {{node a {{seconds {secs}}} {{memory 16}} {{hostname {h0}}}}}}} \
                 {{two {{node a {{seconds {secs}}} {{memory 16}} {{hostname {h0}}}}} \
                      {{node b {{seconds {secs}}} {{memory 16}} {{hostname {h1}}}}}}} }}"
            ));
        }
    }
    if rng.gen_bool(0.5) {
        // Monotone performance over equal demands: every t but one is
        // provably dominated.
        let base = rng.gen_range(50..=500u32);
        scripts.push(format!(
            "harmonyBundle dom:1 config {{ {{run {{variable t {{1 2 4}}}} \
             {{node n {{seconds 60}} {{memory 16}}}} \
             {{performance {{{base} * t}}}}}} }}"
        ));
    }
    (config, nodes, scripts)
}

#[test]
fn pruned_search_is_bit_identical_on_random_systems() {
    // ISSUE acceptance: Verify mode bit-identical across >= 300 randomized
    // cases. Each case compares the plain scan, the Verify-mode run (which
    // internally asserts agreement and errors on divergence), and the
    // On-mode run.
    let mut failures = Vec::new();
    for case in 0..300u64 {
        let mut rng = StdRng::seed_from_u64(0xFAC7_0000 + case);
        let (config, nodes, scripts) = random_pruning_system(&mut rng);
        let mut plain = build_controller(&config, nodes, &scripts);
        let mut verify = build_controller(&config, nodes, &scripts);
        let mut on = build_controller(&config, nodes, &scripts);
        let rp = exhaustive_with_workers(&mut plain, 1_000_000, 1);
        let rv = exhaustive_pruned(&mut verify, 1_000_000, PruningMode::Verify);
        let ro = exhaustive_pruned(&mut on, 1_000_000, PruningMode::On);
        for (mode, r) in [("verify", &rv), ("on", &ro)] {
            let same = match (&rp, r) {
                (Ok(a), Ok(b)) => a == b,
                (Err(a), Err(b)) => a.to_string() == b.to_string(),
                _ => false,
            };
            if !same {
                failures.push(format!("case {case} ({mode}): {rp:?} vs {r:?}"));
            }
        }
        if verify.metrics().counter("controller.pruning.mismatches") != 0 {
            failures.push(format!("case {case}: verify recorded a mismatch"));
        }
        if plain.objective_score() != on.objective_score() {
            failures.push(format!("case {case}: objective diverged under pruning"));
        }
    }
    assert!(failures.is_empty(), "{}", failures.join("\n"));
}

#[test]
fn parallel_exhaustive_equals_serial_on_random_systems() {
    let mut failures = Vec::new();
    for case in 0..120u64 {
        let mut rng = StdRng::seed_from_u64(0xE0_0000 + case);
        let (config, nodes, scripts) = random_system(&mut rng);
        let mut serial = build_controller(&config, nodes, &scripts);
        let mut parallel = build_controller(&config, nodes, &scripts);
        let workers = rng.gen_range(2..=6usize);
        let rs = exhaustive_with_workers(&mut serial, 1_000_000, 1);
        let rp = exhaustive_with_workers(&mut parallel, 1_000_000, workers);
        let same = match (&rs, &rp) {
            (Ok(a), Ok(b)) => a == b,
            (Err(a), Err(b)) => a.to_string() == b.to_string(),
            _ => false,
        };
        if !same || serial.objective_score() != parallel.objective_score() {
            failures.push(format!("case {case} (workers {workers}): {rs:?} vs {rp:?}"));
        }
    }
    assert!(failures.is_empty(), "{}", failures.join("\n"));
}

#[test]
fn baseline_scan_equals_exhaustive_on_random_systems() {
    for case in 0..40u64 {
        let mut rng = StdRng::seed_from_u64(0xBA_0000 + case);
        let (config, nodes, scripts) = random_system(&mut rng);
        let mut fast = build_controller(&config, nodes, &scripts);
        let mut slow = build_controller(&config, nodes, &scripts);
        let rf = exhaustive_with_workers(&mut fast, 1_000_000, 4);
        let rb = exhaustive_baseline(&mut slow, 1_000_000);
        match (rf, rb) {
            (Ok(a), Ok(b)) => assert_eq!(a, b, "case {case}"),
            (Err(a), Err(b)) => assert_eq!(a.to_string(), b.to_string(), "case {case}"),
            (a, b) => panic!("case {case}: {a:?} vs {b:?}"),
        }
    }
}

#[test]
fn incremental_eval_equals_fresh_eval_on_random_systems() {
    for case in 0..120u64 {
        let mut rng = StdRng::seed_from_u64(0x1C_0000 + case);
        let (config, nodes, scripts) = random_system(&mut rng);
        let mut c = build_controller(&config, nodes, &scripts);
        let ctx = EvalCtx::build(&mut c).unwrap();
        if ctx.is_empty() {
            continue;
        }
        let shape = ctx.shape();
        let mut inc = IncrementalEval::new(&ctx);
        // Odometer order: the prefix-reuse fast path.
        let space = ctx.search_space().min(256);
        let mut asg = vec![0usize; shape.len()];
        for step in 0..space {
            assert_eq!(
                inc.eval(&asg).unwrap(),
                ctx.eval_fresh(&asg).unwrap(),
                "case {case} odometer step {step} at {asg:?}"
            );
            if !next(&mut asg, &shape) {
                break;
            }
        }
        // Random revisit order: maximal prefix unwinding.
        for probe in 0..32 {
            let asg: Vec<usize> = shape.iter().map(|&n| rng.gen_range(0..n)).collect();
            assert_eq!(
                inc.eval(&asg).unwrap(),
                ctx.eval_fresh(&asg).unwrap(),
                "case {case} probe {probe} at {asg:?}"
            );
        }
    }
}

#[test]
fn annealing_is_thread_count_invariant_on_random_systems() {
    for case in 0..40u64 {
        let mut rng = StdRng::seed_from_u64(0xA0_0000 + case);
        let (config, nodes, scripts) = random_system(&mut rng);
        let config = ControllerConfig {
            optimizer: OptimizerKind::Annealing {
                steps: 120,
                initial_temperature: 60.0,
                seed: case,
                chains: 3,
            },
            ..config
        };
        let mut one = build_controller(&config, nodes, &scripts);
        let mut many = build_controller(&config, nodes, &scripts);
        let r1 = annealing_with_workers(&mut one, 120, 60.0, case, 3, 1);
        let rn = annealing_with_workers(&mut many, 120, 60.0, case, 3, 4);
        match (r1, rn) {
            (Ok(a), Ok(b)) => assert_eq!(a, b, "case {case}"),
            (Err(a), Err(b)) => assert_eq!(a.to_string(), b.to_string(), "case {case}"),
            (a, b) => panic!("case {case}: {a:?} vs {b:?}"),
        }
    }
}

/// Lexicographic odometer step (last index fastest), matching the
/// optimizer's enumeration order.
fn next(assignment: &mut [usize], shape: &[usize]) -> bool {
    for i in (0..assignment.len()).rev() {
        assignment[i] += 1;
        if assignment[i] < shape[i] {
            return true;
        }
        assignment[i] = 0;
    }
    false
}
