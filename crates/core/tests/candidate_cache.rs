//! Candidate-cache lifecycle: the controller memoizes per-bundle candidate
//! enumerations, and every mutation that can change a bundle's candidate
//! set (adding bundles, ending instances, lease-reaping) must leave the
//! cache consistent with a fresh `enumerate()`.

use harmony_core::optimizer::optimize;
use harmony_core::{enumerate_candidates, Controller, ControllerConfig, InstanceId, OptimizerKind};
use harmony_resources::Cluster;
use harmony_rsl::listings::{sp2_cluster, FIG2B_BAG};
use harmony_rsl::schema::parse_bundle_script;

fn controller(nodes: usize, config: ControllerConfig) -> Controller {
    Controller::new(Cluster::from_rsl(&sp2_cluster(nodes)).unwrap(), config)
}

/// Asserts that every cached entry for `id`'s bundles matches a fresh
/// enumeration of the current spec.
fn assert_cache_fresh(c: &mut Controller, id: &InstanceId) {
    let names: Vec<String> = {
        let app = c.app(id).expect("instance exists");
        app.bundles.iter().map(|b| b.spec.name.clone()).collect()
    };
    for name in names {
        let fresh = {
            let spec = &c.app(id).unwrap().bundle(&name).unwrap().spec;
            enumerate_candidates(spec, &c.config().elastic_steps.clone())
        };
        let cached = c.cached_candidates(id, &name).expect("cacheable");
        assert_eq!(*cached, fresh, "cache for {id}/{name} diverged from enumerate()");
    }
}

#[test]
fn registration_populates_and_matches_fresh_enumeration() {
    let mut c = controller(8, ControllerConfig::default());
    let (id, _) = c.register(parse_bundle_script(FIG2B_BAG).unwrap()).unwrap();
    // Greedy arrival placement already enumerated (and memoized) once.
    assert_eq!(c.candidate_cache_len(), 1);
    let misses_before = c.metrics().counter("controller.optimizer.cache_misses");
    assert_cache_fresh(&mut c, &id);
    // The verification hit the cache, it did not re-enumerate.
    assert_eq!(c.metrics().counter("controller.optimizer.cache_misses"), misses_before);
    assert!(c.metrics().counter("controller.optimizer.cache_hits") >= 1);
}

#[test]
fn add_bundle_invalidates_the_bundle_key() {
    let mut c = controller(8, ControllerConfig::default());
    let id = c.startup("bag");
    c.add_bundle(&id, parse_bundle_script(FIG2B_BAG).unwrap()).unwrap();
    let first = c.cached_candidates(&id, "config").unwrap();
    // Re-adding a bundle under the same name must drop the memoized set so
    // later lookups re-enumerate against the live spec.
    let misses_before = c.metrics().counter("controller.optimizer.cache_misses");
    let _ = c.add_bundle(&id, parse_bundle_script(FIG2B_BAG).unwrap());
    assert!(
        c.metrics().counter("controller.optimizer.cache_misses") > misses_before,
        "add_bundle must invalidate and re-enumerate the bundle's cache key"
    );
    let second = c.cached_candidates(&id, "config").unwrap();
    assert_eq!(*first, *second);
    assert_cache_fresh(&mut c, &id);
}

#[test]
fn end_drops_the_instances_cache_entries() {
    let mut c = controller(8, ControllerConfig::default());
    let (a, _) = c.register(parse_bundle_script(FIG2B_BAG).unwrap()).unwrap();
    let (b, _) = c.register(parse_bundle_script(FIG2B_BAG).unwrap()).unwrap();
    assert_eq!(c.candidate_cache_len(), 2);
    c.end(&a).unwrap();
    assert_eq!(c.candidate_cache_len(), 1, "ended instance's entries must go");
    assert!(c.cached_candidates(&a, "config").is_none(), "no resurrection for retired ids");
    assert_cache_fresh(&mut c, &b);
}

#[test]
fn reap_driven_retirement_drops_cache_entries() {
    let mut c = controller(8, ControllerConfig::default());
    let (id, _) = c.register(parse_bundle_script(FIG2B_BAG).unwrap()).unwrap();
    assert_eq!(c.candidate_cache_len(), 1);
    c.mark_disconnected(&id);
    c.set_time(1_000.0);
    let records = c.reap_expired(1_000.0).unwrap();
    assert!(c.app(&id).is_none(), "instance reaped: {records:?}");
    assert_eq!(c.candidate_cache_len(), 0, "reaped instance's entries must go");
}

#[test]
fn churn_keeps_cache_consistent_under_every_optimizer() {
    let kinds = [
        OptimizerKind::Greedy,
        OptimizerKind::Exhaustive { limit: 1_000_000 },
        OptimizerKind::Annealing { steps: 80, initial_temperature: 40.0, seed: 5, chains: 2 },
    ];
    for kind in kinds {
        let config = ControllerConfig { optimizer: kind, ..Default::default() };
        let mut c = controller(8, config);
        let mut live: Vec<InstanceId> = Vec::new();
        for round in 0..6 {
            let (id, _) = c.register(parse_bundle_script(FIG2B_BAG).unwrap()).unwrap();
            live.push(id);
            optimize(&mut c).unwrap();
            if round % 2 == 1 {
                let gone = live.remove(0);
                c.end(&gone).unwrap();
                assert!(c.cached_candidates(&gone, "config").is_none());
                optimize(&mut c).unwrap();
            }
            // One cache entry per live bundle, each matching enumerate().
            assert_eq!(
                c.candidate_cache_len(),
                live.len(),
                "round {round} under {:?}",
                c.config().optimizer
            );
            for id in live.clone() {
                assert_cache_fresh(&mut c, &id);
            }
        }
    }
}
