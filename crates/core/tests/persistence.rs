//! Crash-consistent persistence: WAL replay and snapshot+tail recovery
//! must reproduce the crashed controller's control-plane state exactly —
//! same session ids, same lease deadlines, same journal sequence numbers,
//! same decisions — and persistence-off behavior must be bit-for-bit
//! identical to the seed.

use std::path::PathBuf;

use harmony_core::persist::DEFAULT_SNAPSHOT_EVERY;
use harmony_core::{
    CoalescePolicy, Controller, ControllerConfig, CoreError, HarmonyEvent, PersistedState,
    StateStore,
};
use harmony_resources::Cluster;
use harmony_rsl::listings::{sp2_cluster, FIG2B_BAG};
use harmony_rsl::schema::parse_bundle_script;

/// A unique scratch directory under the OS temp dir (no tempfile crate in
/// the workspace). Cleaned up on a best-effort basis at the start of each
/// run so repeated test invocations stay independent.
fn scratch(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("harmony-persist-{}-{tag}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn fresh_controller() -> Controller {
    Controller::new(Cluster::from_rsl(&sp2_cluster(8)).unwrap(), ControllerConfig::default())
}

fn coalescing_controller() -> Controller {
    let mut config = ControllerConfig::default();
    config.coalesce = CoalescePolicy { window: 0.5, max_delay: 5.0, max_pending: 64 };
    Controller::new(Cluster::from_rsl(&sp2_cluster(8)).unwrap(), config)
}

/// Drives a representative mix of state-changing verbs: registrations,
/// bundle setup, metric traffic, heartbeats, a disconnect + reattach, an
/// explicit end, and a lease sweep.
fn drive(c: &mut Controller) {
    c.set_time(1.0);
    let (a, _) = c.register(parse_bundle_script(FIG2B_BAG).unwrap()).unwrap();
    c.set_time(2.0);
    let b = c.startup("bag");
    c.handle_event(HarmonyEvent::BundleSetup { instance: b.clone(), script: FIG2B_BAG.into() })
        .unwrap();
    c.set_time(3.0);
    for i in 0..4 {
        c.record_metric(&format!("{a}.response_time"), 3.0 + i as f64 * 0.1, 12.0 + i as f64);
    }
    c.handle_event(HarmonyEvent::Heartbeat { instance: a.clone() }).unwrap();
    c.set_time(4.0);
    c.mark_disconnected(&b);
    c.reattach(&b).unwrap();
    let _ = c.take_pending_vars(&b);
    c.set_time(5.0);
    c.touch(&a);
    c.end(&b).unwrap();
    c.handle_event(HarmonyEvent::Periodic).unwrap();
}

/// The state fingerprint used for replay-equivalence assertions: the full
/// persisted image with per-decision wall timings zeroed (two runs of the
/// same deterministic pass never take the same microseconds).
fn fingerprint(mut state: PersistedState) -> String {
    for d in &mut state.decisions {
        d.phases = Default::default();
    }
    serde_json::to_string(&state).unwrap()
}

#[test]
fn fresh_start_attaches_wal_and_reports_recovery() {
    let dir = scratch("fresh");
    let (ctl, store) = StateStore::open(&dir, fresh_controller).unwrap();
    assert!(ctl.wal_attached());
    let info = ctl.recovery_info().unwrap();
    assert_eq!(info.generation, 1);
    assert_eq!(info.snapshot_loaded, None);
    assert_eq!(info.replayed, 0);
    assert!(!info.torn_tail);
    assert_eq!(store.generation(), 1);
    assert!(dir.join("harmony-00000001.snap").exists());
    assert!(dir.join("harmony-00000001.wal").exists());
}

#[test]
fn wal_replay_reproduces_crashed_state() {
    let dir = scratch("replay");
    let (mut ctl, store) = StateStore::open(&dir, fresh_controller).unwrap();
    drive(&mut ctl);
    let before = fingerprint(ctl.persisted_state());
    let appends = ctl.metrics().counter("controller.persistence.appends");
    assert!(appends > 0, "driving must log WAL events");
    assert_eq!(
        ctl.metrics().counter("controller.persistence.append_errors"),
        0,
        "no append may fail"
    );
    store.sync().unwrap();
    drop((ctl, store));

    let (recovered, _store) =
        StateStore::open(&dir, || panic!("prior state exists; fresh() must not run")).unwrap();
    let info = recovered.recovery_info().unwrap();
    assert_eq!(info.snapshot_loaded, Some(1));
    assert_eq!(info.replayed, appends, "every logged event replays");
    assert!(!info.torn_tail);
    assert_eq!(fingerprint(recovered.persisted_state()), before);
}

#[test]
fn sessions_journal_and_registry_survive_recovery() {
    let dir = scratch("sessions");
    let (mut ctl, store) = StateStore::open(&dir, fresh_controller).unwrap();
    drive(&mut ctl);
    let sessions: Vec<_> = ctl.sessions().iter().map(|(id, s)| (id.clone(), s.clone())).collect();
    let next_seq = ctl.journal_seq();
    assert!(!sessions.is_empty());
    store.sync().unwrap();
    drop((ctl, store));

    let (mut recovered, _store) = StateStore::open(&dir, fresh_controller).unwrap();
    let got: Vec<_> = recovered.sessions().iter().map(|(id, s)| (id.clone(), s.clone())).collect();
    assert_eq!(got, sessions, "session ids, deadlines, and renewal counts survive");
    assert_eq!(recovered.journal_seq(), next_seq, "journal numbering continues, not restarts");
    // The id allocator recovered too: a new registration must not collide
    // with `bag.1` / `bag.2` from before the crash.
    let fresh_id = recovered.startup("bag");
    assert_eq!(fresh_id.to_string(), "bag.3");
}

#[test]
fn snapshot_plus_tail_replay_is_lossless() {
    let dir = scratch("snaptail");
    let (mut ctl, mut store) = StateStore::open(&dir, fresh_controller).unwrap();
    drive(&mut ctl);
    store.checkpoint(&mut ctl).unwrap();
    assert_eq!(store.generation(), 2);
    // Post-checkpoint traffic lands in the new generation's WAL tail.
    ctl.set_time(6.0);
    let (c, _) = ctl.register(parse_bundle_script(FIG2B_BAG).unwrap()).unwrap();
    ctl.record_metric(&format!("{c}.response_time"), 6.5, 9.0);
    ctl.handle_event(HarmonyEvent::Heartbeat { instance: c }).unwrap();
    let before = fingerprint(ctl.persisted_state());
    store.sync().unwrap();
    drop((ctl, store));

    let (recovered, _store) = StateStore::open(&dir, fresh_controller).unwrap();
    let info = recovered.recovery_info().unwrap();
    assert_eq!(info.snapshot_loaded, Some(2), "recovery starts from the checkpoint");
    assert!(info.replayed >= 3, "the tail after the checkpoint replays");
    assert_eq!(fingerprint(recovered.persisted_state()), before);
}

#[test]
fn torn_final_record_is_tolerated() {
    let dir = scratch("torn");
    let (mut ctl, store) = StateStore::open(&dir, fresh_controller).unwrap();
    drive(&mut ctl);
    let before = fingerprint(ctl.persisted_state());
    store.sync().unwrap();
    drop((ctl, store));

    // Simulate a crash mid-append: a partial record (header promising more
    // bytes than exist) at the end of the live WAL.
    let wal = dir.join("harmony-00000001.wal");
    let mut bytes = std::fs::read(&wal).unwrap();
    bytes.extend_from_slice(&64u32.to_le_bytes()); // len: 64 payload bytes...
    bytes.extend_from_slice(&0u32.to_le_bytes()); // bogus crc
    bytes.extend_from_slice(b"partial"); // ...but only 7 present
    std::fs::write(&wal, bytes).unwrap();

    let (recovered, _store) = StateStore::open(&dir, fresh_controller).unwrap();
    let info = recovered.recovery_info().unwrap();
    assert!(info.torn_tail, "the discarded tail is reported");
    assert_eq!(fingerprint(recovered.persisted_state()), before, "complete records all replay");
}

#[test]
fn corrupt_middle_record_refuses_recovery() {
    let dir = scratch("corrupt");
    let (mut ctl, store) = StateStore::open(&dir, fresh_controller).unwrap();
    drive(&mut ctl);
    store.sync().unwrap();
    drop((ctl, store));

    // Flip a payload byte of the FIRST record: valid records follow, so
    // this is silent corruption, not a torn write — recovery must refuse
    // rather than replay a prefix and silently lose the suffix.
    let wal = dir.join("harmony-00000001.wal");
    let mut bytes = std::fs::read(&wal).unwrap();
    bytes[8] ^= 0xff;
    std::fs::write(&wal, bytes).unwrap();

    let err = StateStore::open(&dir, fresh_controller).unwrap_err();
    match err {
        CoreError::Persistence { detail } => {
            assert!(detail.contains("corrupted"), "unexpected detail: {detail}");
        }
        other => panic!("expected Persistence error, got {other:?}"),
    }
}

#[test]
fn unreadable_snapshot_falls_back_to_previous_generation() {
    let dir = scratch("fallback");
    let (mut ctl, mut store) = StateStore::open(&dir, fresh_controller).unwrap();
    drive(&mut ctl);
    store.checkpoint(&mut ctl).unwrap();
    let before = fingerprint(ctl.persisted_state());
    store.sync().unwrap();
    drop((ctl, store));

    // Generation 2's snapshot is damaged; generation 1's snapshot + WAL
    // still reconstruct the same state (the checkpoint was lossless, so
    // both roads lead to the same place).
    std::fs::write(dir.join("harmony-00000002.snap"), b"{ not json").unwrap();
    let (recovered, _store) = StateStore::open(&dir, fresh_controller).unwrap();
    let info = recovered.recovery_info().unwrap();
    assert_eq!(info.snapshot_loaded, Some(1), "fell back past the damaged snapshot");
    assert_eq!(fingerprint(recovered.persisted_state()), before);
}

#[test]
fn all_snapshots_damaged_refuses_fresh_start() {
    let dir = scratch("refuse");
    let (mut ctl, store) = StateStore::open(&dir, fresh_controller).unwrap();
    drive(&mut ctl);
    store.sync().unwrap();
    drop((ctl, store));

    std::fs::write(dir.join("harmony-00000001.snap"), b"{ not json").unwrap();
    let err = StateStore::open(&dir, fresh_controller).unwrap_err();
    match err {
        CoreError::Persistence { detail } => {
            assert!(detail.contains("refusing to discard prior state"), "got: {detail}");
        }
        other => panic!("expected Persistence error, got {other:?}"),
    }
}

#[test]
fn automatic_checkpoints_rotate_and_purge() {
    let dir = scratch("rotate");
    let (mut ctl, mut store) = StateStore::open(&dir, fresh_controller).unwrap();
    store.set_snapshot_every(5);
    drive(&mut ctl); // well over 5 appends
    assert!(store.maybe_checkpoint(&mut ctl).unwrap());
    assert_eq!(store.generation(), 2);
    // The previous pair is kept as a fallback; nothing older exists yet.
    assert!(dir.join("harmony-00000001.snap").exists());
    assert!(dir.join("harmony-00000002.snap").exists());
    // Below the threshold nothing rotates.
    assert!(!store.maybe_checkpoint(&mut ctl).unwrap());
    // Another busy window rotates again and generation 1 ages out.
    drive_more(&mut ctl);
    assert!(store.maybe_checkpoint(&mut ctl).unwrap());
    assert_eq!(store.generation(), 3);
    assert!(!dir.join("harmony-00000001.snap").exists(), "two-generation retention");
    assert!(dir.join("harmony-00000002.snap").exists());
    store.sync().unwrap();
    drop((ctl, store));
    StateStore::open(&dir, fresh_controller).unwrap();
}

fn drive_more(c: &mut Controller) {
    c.set_time(c.now() + 1.0);
    let (id, _) = c.register(parse_bundle_script(FIG2B_BAG).unwrap()).unwrap();
    for i in 0..6 {
        c.record_metric(&format!("{id}.response_time"), c.now() + i as f64 * 0.1, 10.0);
    }
}

#[test]
fn persistence_off_is_bit_identical() {
    // The same verb sequence through a WAL-attached controller and a plain
    // one must produce identical control-plane state: the hooks only
    // observe, never steer.
    let dir = scratch("identical");
    let (mut with_wal, _store) = StateStore::open(&dir, fresh_controller).unwrap();
    let mut plain = fresh_controller();
    drive(&mut with_wal);
    drive(&mut plain);
    assert_eq!(fingerprint(with_wal.persisted_state()), fingerprint(plain.persisted_state()));
}

#[test]
fn pending_coalescing_window_survives_a_crash() {
    let dir = scratch("window");
    let (mut ctl, store) = StateStore::open(&dir, coalescing_controller).unwrap();
    ctl.set_time(1.0);
    // A burst of arrivals inside one coalescing window: marks accumulate,
    // no decision fires yet.
    let (a, _) = ctl.register(parse_bundle_script(FIG2B_BAG).unwrap()).unwrap();
    ctl.handle_event(HarmonyEvent::Startup { app: "bag".into() }).unwrap();
    assert!(ctl.pending_decisions() > 0, "window still open");
    assert!(a.to_string().starts_with("bag."));
    store.sync().unwrap();
    drop((ctl, store));

    // kill -9 mid-window: the recovered controller still owes the flush.
    let (mut recovered, _store) = StateStore::open(&dir, coalescing_controller).unwrap();
    assert!(recovered.pending_decisions() > 0, "pending window survives recovery");
    let seq_before = recovered.journal_seq();
    recovered.service_scheduler(100.0).unwrap();
    assert_eq!(recovered.pending_decisions(), 0, "the recovered window fired");
    assert_eq!(recovered.metrics().counter("controller.scheduler.windows_fired"), 1);
    assert!(recovered.journal_seq() > seq_before, "the fire was journaled");
}

#[test]
fn default_snapshot_cadence_is_sane() {
    assert!(DEFAULT_SNAPSHOT_EVERY >= 1024, "checkpoints must not thrash the hot path");
}
