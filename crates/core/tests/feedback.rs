//! Measured-feedback integration: the controller's decisions change when
//! the metric interface reports that reality diverges from the model.

use harmony_core::{Controller, ControllerConfig, FeedbackConfig, HarmonyEvent};
use harmony_resources::Cluster;
use harmony_rsl::schema::parse_bundle_script;

fn two_node_cluster() -> Cluster {
    Cluster::from_rsl(
        "harmonyNode alpha {speed 1.0} {memory 256}\n\
         harmonyNode beta {speed 1.0} {memory 256}",
    )
    .unwrap()
}

fn pinned(app: &str, host: &str, seconds: f64) -> String {
    format!(
        "harmonyBundle {app}:1 b {{ {{o {{node w {{hostname {host}}} {{seconds {seconds}}} {{memory 8}}}}}} }}"
    )
}

/// A newcomer that may run on either machine (two explicit options).
fn either() -> String {
    "harmonyBundle newcomer:1 b {\n\
       {onAlpha {node w {hostname alpha} {seconds 10} {memory 8}}}\n\
       {onBeta {node w {hostname beta} {seconds 10} {memory 8}}}\n\
     }"
    .to_string()
}

fn run(feedback: Option<FeedbackConfig>, reported_slowdown: Option<f64>) -> String {
    let config = ControllerConfig { feedback, ..Default::default() };
    let mut ctl = Controller::new(two_node_cluster(), config);
    // Two long-running residents, one per machine.
    let (slow, _) =
        ctl.register(parse_bundle_script(&pinned("resident1", "alpha", 100.0)).unwrap()).unwrap();
    let (_fast, _) =
        ctl.register(parse_bundle_script(&pinned("resident2", "beta", 100.0)).unwrap()).unwrap();

    // The metric interface reports resident1's actual response times.
    if let Some(factor) = reported_slowdown {
        let predicted = ctl.choice(&slow, "b").unwrap().predicted;
        for i in 0..5 {
            ctl.handle_event(HarmonyEvent::MetricReport {
                name: format!("{slow}.response_time"),
                time: i as f64,
                value: predicted * factor,
            })
            .unwrap();
        }
    }

    // A newcomer arrives that could stack on either machine.
    let (id, _) = ctl.register(parse_bundle_script(&either()).unwrap()).unwrap();
    ctl.choice(&id, "b").unwrap().option.clone()
}

#[test]
fn without_feedback_the_model_sees_symmetric_machines() {
    // Both residents predicted equal: the first option order wins.
    let choice = run(None, None);
    assert_eq!(choice, "onAlpha");
}

#[test]
fn feedback_steers_the_newcomer_away_from_the_slow_machine() {
    // Measurements show resident1 (on alpha) actually runs 3× slower than
    // modeled. Stacking the newcomer there would double a job that is
    // already hurting; the calibrated controller places it on beta.
    let choice = run(Some(FeedbackConfig::default()), Some(3.0));
    assert_eq!(choice, "onBeta");
}

#[test]
fn feedback_disabled_ignores_the_same_measurements() {
    let choice = run(None, Some(3.0));
    assert_eq!(choice, "onAlpha", "reports without feedback change nothing");
}

#[test]
fn accurate_measurements_leave_decisions_unchanged() {
    // Reported == predicted: factor 1, same decision as no feedback.
    let choice = run(Some(FeedbackConfig::default()), Some(1.0));
    assert_eq!(choice, "onAlpha");
}

#[test]
fn calibration_resets_after_a_reconfiguration() {
    // Regression: samples measured under a *previous* configuration must
    // not calibrate predictions for the current one. An app starts on
    // alpha (measured 3× slower than modeled), then alpha leaves and the
    // app is re-placed on beta. The stale alpha-era samples said nothing
    // about beta; until enough post-switch samples arrive the factor must
    // fall back to 1.0 — before the fix the whole-series EWMA kept scaling
    // beta's prediction by ~3×.
    let config =
        ControllerConfig { feedback: Some(FeedbackConfig::default()), ..Default::default() };
    let mut ctl = Controller::new(two_node_cluster(), config);
    let script = "harmonyBundle mover:1 b {\n\
           {onAlpha {node w {hostname alpha} {seconds 10} {memory 8}}}\n\
           {onBeta {node w {hostname beta} {seconds 12} {memory 8}}}\n\
         }";
    let (id, _) = ctl.register(parse_bundle_script(script).unwrap()).unwrap();
    assert_eq!(ctl.choice(&id, "b").unwrap().option, "onAlpha");
    for i in 0..5 {
        ctl.handle_event(HarmonyEvent::MetricReport {
            name: format!("{id}.response_time"),
            time: i as f64,
            value: 30.0, // 3× the modeled 10 s
        })
        .unwrap();
    }
    assert!((ctl.predicted_response_times()[0].1 - 30.0).abs() < 1e-9, "factor active on alpha");

    // alpha departs; the app is re-placed on beta at t=10.
    ctl.set_time(10.0);
    ctl.handle_event(HarmonyEvent::NodeLeft { name: "alpha".into() }).unwrap();
    let choice = ctl.choice(&id, "b").unwrap();
    assert_eq!(choice.option, "onBeta");
    assert_eq!(choice.chosen_at, 10.0);

    // No post-switch samples yet: the prediction must be the clean model
    // value, not the stale-regime-scaled one.
    let predicted = ctl.predicted_response_times()[0].1;
    assert!((predicted - 12.0).abs() < 1e-9, "stale regime leaked: predicted {predicted}");

    // Post-switch samples re-calibrate against the new regime only.
    for i in 0..5 {
        ctl.handle_event(HarmonyEvent::MetricReport {
            name: format!("{id}.response_time"),
            time: 10.0 + i as f64,
            value: 18.0, // 1.5× the modeled 12 s
        })
        .unwrap();
    }
    let predicted = ctl.predicted_response_times()[0].1;
    assert!((predicted - 18.0).abs() < 1e-9, "new regime calibrates: predicted {predicted}");
}

#[test]
fn predicted_response_times_reflect_measured_reality() {
    let config =
        ControllerConfig { feedback: Some(FeedbackConfig::default()), ..Default::default() };
    let mut ctl = Controller::new(two_node_cluster(), config);
    let (id, _) =
        ctl.register(parse_bundle_script(&pinned("app", "alpha", 100.0)).unwrap()).unwrap();
    let before = ctl.predicted_response_times()[0].1;
    for i in 0..5 {
        ctl.handle_event(HarmonyEvent::MetricReport {
            name: format!("{id}.response_time"),
            time: i as f64,
            value: before * 2.0,
        })
        .unwrap();
    }
    let after = ctl.predicted_response_times()[0].1;
    assert!((after / before - 2.0).abs() < 1e-9, "{before} -> {after}");
    assert!((ctl.objective_score() / before - 2.0).abs() < 1e-9);
}
