//! Controller edge cases beyond the paper's experiments: multi-bundle
//! applications, alternative objectives, elastic memory search, and
//! population stress.

use harmony_core::{Controller, ControllerConfig, Objective};
use harmony_resources::Cluster;
use harmony_rsl::listings::sp2_cluster;
use harmony_rsl::schema::parse_bundle_script;

fn cluster(n: usize) -> Cluster {
    Cluster::from_rsl(&sp2_cluster(n)).unwrap()
}

#[test]
fn one_application_with_two_bundles() {
    // An application may export several orthogonal bundles (§3: options
    // "locate an individual application in n-dimensional space").
    let mut ctl = Controller::new(cluster(8), ControllerConfig::default());
    let id = ctl.startup("multi");
    let compute = parse_bundle_script(
        "harmonyBundle multi:1 compute { {run {variable w {1 2 4}} \
         {node worker {replicate w} {seconds {600 / w}} {memory 16}} \
         {performance {1 600} {2 320} {4 180}}} }",
    )
    .unwrap();
    let cache = parse_bundle_script(
        "harmonyBundle multi:1 cache { {small {node c {seconds 5} {memory 8}}} \
         {large {node c {seconds 2} {memory 128}}} }",
    )
    .unwrap();
    ctl.add_bundle(&id, compute).unwrap();
    ctl.add_bundle(&id, cache).unwrap();
    let app = ctl.app(&id).unwrap();
    assert_eq!(app.bundles.len(), 2);
    assert!(ctl.choice(&id, "compute").is_some());
    assert!(ctl.choice(&id, "cache").is_some());
    // Response time is the max across bundles.
    let rts = ctl.predicted_response_times();
    assert_eq!(rts.len(), 1);
    assert!(rts[0].1 >= 180.0);
    // Ending releases every bundle's allocation.
    ctl.end(&id).unwrap();
    assert_eq!(ctl.cluster().total_tasks(), 0);
    assert_eq!(ctl.cluster().total_free_memory(), ctl.cluster().total_memory());
}

#[test]
fn every_objective_produces_a_valid_configuration() {
    let spec = parse_bundle_script(harmony_rsl::listings::FIG2B_BAG).unwrap();
    for objective in [
        Objective::MinAvgCompletionTime,
        Objective::MinMakespan,
        Objective::MaxThroughput,
        Objective::Blend(0.5),
    ] {
        let config = ControllerConfig { objective, ..Default::default() };
        let mut ctl = Controller::new(cluster(8), config);
        let (a, _) = ctl.register(spec.clone()).unwrap();
        let (b, _) = ctl.register(spec.clone()).unwrap();
        assert!(ctl.choice(&a, "config").is_some(), "{objective:?}");
        assert!(ctl.choice(&b, "config").is_some(), "{objective:?}");
        let score = ctl.objective_score();
        assert!(score.is_finite(), "{objective:?}: {score}");
        // Throughput scores are negative (maximization via negation).
        if objective == Objective::MaxThroughput {
            assert!(score < 0.0);
        }
    }
}

#[test]
fn elastic_memory_is_granted_when_it_pays() {
    // More client memory reduces the communication volume (as in §3.5's
    // memory-for-bandwidth trade), so the controller should pick a
    // non-zero elastic grant.
    let spec = parse_bundle_script(
        "harmonyBundle trade:1 b { {o \
           {node client {memory >=10} {seconds 10}} \
           {node server {seconds 1} {memory 4}} \
           {communication {120 - (client.memory > 50 ? 50 : client.memory)}} \
           {link client server 100}} }",
    )
    .unwrap();
    let config = ControllerConfig { elastic_steps: vec![40.0], ..Default::default() };
    let mut ctl = Controller::new(cluster(4), config);
    let (id, _) = ctl.register(spec).unwrap();
    let choice = ctl.choice(&id, "b").unwrap();
    assert_eq!(choice.elastic_extra, 40.0, "chose the elastic grant");
    assert_eq!(choice.alloc.binding("client").unwrap().memory, 50.0);
    // And it genuinely predicted faster than the minimal grant would be.
    let minimal = ControllerConfig { elastic_steps: vec![], ..Default::default() };
    let mut ctl2 = Controller::new(cluster(4), minimal);
    let (id2, _) = ctl2
        .register(
            parse_bundle_script(
                "harmonyBundle trade:1 b { {o \
               {node client {memory >=10} {seconds 10}} \
               {node server {seconds 1} {memory 4}} \
               {communication {120 - (client.memory > 50 ? 50 : client.memory)}} \
               {link client server 100}} }",
            )
            .unwrap(),
        )
        .unwrap();
    assert!(ctl.choice(&id, "b").unwrap().predicted < ctl2.choice(&id2, "b").unwrap().predicted);
}

#[test]
fn twenty_applications_place_and_drain_cleanly() {
    let spec =
        parse_bundle_script("harmonyBundle small:1 b { {o {node n {seconds 10} {memory 12}}} }")
            .unwrap();
    let mut ctl = Controller::new(cluster(8), ControllerConfig::default());
    let mut ids = Vec::new();
    for _ in 0..20 {
        let (id, _) = ctl.register(spec.clone()).unwrap();
        ids.push(id);
    }
    assert_eq!(ctl.cluster().total_tasks(), 20);
    // Load is spread: no node hosts more than ceil(20/8) + 1 tasks.
    for n in ctl.cluster().nodes() {
        assert!(n.tasks <= 4, "{}: {} tasks", n.decl.name, n.tasks);
    }
    // Everything drains.
    for id in ids {
        ctl.end(&id).unwrap();
    }
    assert_eq!(ctl.cluster().total_tasks(), 0);
    assert_eq!(ctl.instances().len(), 0);
    assert!(ctl.namespace().is_empty());
}

#[test]
fn bundle_names_can_collide_across_applications() {
    // Two different applications using the same bundle name must not
    // interfere (the namespace is rooted at app.instance).
    let a =
        parse_bundle_script("harmonyBundle alpha:1 config { {o {node n {seconds 1} {memory 1}}} }")
            .unwrap();
    let b =
        parse_bundle_script("harmonyBundle beta:1 config { {o {node n {seconds 2} {memory 2}}} }")
            .unwrap();
    let mut ctl = Controller::new(cluster(4), ControllerConfig::default());
    let (ia, _) = ctl.register(a).unwrap();
    let (ib, _) = ctl.register(b).unwrap();
    let ca = ctl.choice(&ia, "config").unwrap();
    let cb = ctl.choice(&ib, "config").unwrap();
    assert_eq!(ca.alloc.nodes[0].seconds, 1.0);
    assert_eq!(cb.alloc.nodes[0].seconds, 2.0);
}

#[test]
fn unknown_bundle_lookup_is_none_not_panic() {
    let mut ctl = Controller::new(cluster(2), ControllerConfig::default());
    let id = ctl.startup("x");
    assert!(ctl.choice(&id, "ghost").is_none());
    let ghost = harmony_core::InstanceId::new("nope", 1);
    assert!(ctl.choice(&ghost, "config").is_none());
    assert!(ctl.app(&ghost).is_none());
}
