//! Property tests relating `Histogram::quantile_bound` to the exact
//! nearest-rank `TimeSeries::quantile` over the same samples.
//!
//! The histogram keeps O(buckets) state, so its quantiles are bucket
//! *bounds*, not exact order statistics. The contract checked here:
//!
//! * `quantile_bound` is monotone in `q`;
//! * it never falls below the order statistic one rank under the exact
//!   quantile (the two nearest-rank definitions may differ by one rank);
//! * it never exceeds the next-higher order statistic by more than one
//!   bucket's growth factor.

use harmony_metrics::{Histogram, TimeSeries};
use proptest::prelude::*;

/// Exact nearest-rank index used by `TimeSeries::quantile`.
fn series_rank(n: usize, q: f64) -> usize {
    ((n as f64 - 1.0) * q.clamp(0.0, 1.0)).round() as usize
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]
    #[test]
    fn quantile_bound_is_monotone_in_q(
        values in prop::collection::vec(0.0f64..400.0, 1..200),
        qs in prop::collection::vec(0.0f64..=1.0, 2..8),
    ) {
        let mut h = Histogram::for_response_times();
        for &v in &values {
            h.record(v);
        }
        let mut qs = qs.clone();
        qs.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let bounds: Vec<f64> = qs.iter().map(|&q| h.quantile_bound(q).unwrap()).collect();
        for w in bounds.windows(2) {
            prop_assert!(w[0] <= w[1], "quantile bounds must be monotone: {bounds:?}");
        }
    }

    #[test]
    fn quantile_bound_brackets_the_exact_quantile(
        values in prop::collection::vec(0.0f64..400.0, 1..200),
        q in 0.0f64..=1.0,
    ) {
        // All generated values sit inside the finite buckets of the
        // response-time layout (last finite bound ≈ 524 s), so the
        // overflow bucket's max-reporting special case stays out of play.
        let mut h = Histogram::for_response_times();
        let mut ts = TimeSeries::default();
        for (i, &v) in values.iter().enumerate() {
            h.record(v);
            ts.record(i as f64, v);
        }
        let mut sorted = values.clone();
        sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());

        let exact = ts.quantile(q).unwrap();
        let r = series_rank(values.len(), q);
        prop_assert_eq!(exact, sorted[r], "rank model matches TimeSeries::quantile");

        let bound = h.quantile_bound(q).unwrap();
        // Lower bracket: at worst one rank below the exact quantile.
        let lo = sorted[r.saturating_sub(1)];
        prop_assert!(
            bound >= lo,
            "bound {bound} below the rank-{r}-1 statistic {lo} (q={q})"
        );
        // Upper bracket: the bucket holding the (at worst one-higher)
        // order statistic has an upper bound within one growth factor.
        let hi = sorted[(r + 1).min(sorted.len() - 1)];
        let cap = (hi * 2.0).max(0.001); // growth 2.0, first bound 1 ms
        prop_assert!(
            bound <= cap,
            "bound {bound} exceeds one-bucket cap {cap} over statistic {hi} (q={q})"
        );
    }
}
