//! Metric-interface integration: registry + bus + histogram working as the
//! pipeline Figure 1 sketches (data flows in, aggregates flow out).

use std::sync::Arc;
use std::thread;

use harmony_metrics::{Histogram, MetricBus, MetricEvent, MetricRegistry};

#[test]
fn producer_to_subscriber_to_histogram() {
    let bus = Arc::new(MetricBus::new());
    let registry = MetricRegistry::new();
    let rx = bus.subscribe();

    // Producer thread: three clients reporting response times.
    let producer_bus = Arc::clone(&bus);
    let producer_reg = registry.clone();
    let producer = thread::spawn(move || {
        for client in 1..=3 {
            for q in 0..20 {
                let t = q as f64;
                let value = client as f64 + q as f64 * 0.01;
                let name = format!("DBclient.{client}.response_time");
                producer_reg.record(&name, t, value);
                producer_bus.publish(MetricEvent::new(name, t, value));
            }
        }
    });
    producer.join().unwrap();

    // Consumer: fold the stream into one distribution.
    let mut hist = Histogram::for_response_times();
    let mut count = 0;
    for ev in rx.try_iter() {
        hist.record(ev.value);
        count += 1;
    }
    assert_eq!(count, 60);
    assert_eq!(hist.len(), 60);
    let mean = hist.mean().unwrap();
    assert!((1.0..4.0).contains(&mean), "mean {mean}");
    assert!(hist.quantile_bound(0.99).unwrap() >= 3.0);

    // The registry kept per-client series in parallel.
    for client in 1..=3 {
        let s = registry.series(&format!("DBclient.{client}.response_time")).unwrap();
        assert_eq!(s.len(), 20);
        assert!((s.mean().unwrap() - (client as f64 + 0.095)).abs() < 1e-9);
    }
}

#[test]
fn per_policy_histograms_merge_for_a_global_view() {
    // Two experiment shards produce compatible histograms; the report
    // merges them.
    let shard = |offset: f64| {
        let mut h = Histogram::for_response_times();
        for i in 0..50 {
            h.record(offset + i as f64 * 0.1);
        }
        h
    };
    let mut all = shard(1.0);
    all.merge(&shard(10.0));
    assert_eq!(all.len(), 100);
    let p50 = all.quantile_bound(0.5).unwrap();
    let p99 = all.quantile_bound(0.99).unwrap();
    assert!(p50 < p99);
    assert!(all.max().unwrap() >= 14.9);
}

#[test]
fn slow_subscriber_does_not_block_producers() {
    let bus = MetricBus::new();
    let _rx = bus.subscribe(); // never drained
    for i in 0..10_000 {
        bus.publish(MetricEvent::new("m", i as f64, 0.0));
    }
    // Unbounded channels: the producer never stalls; the messages wait.
    assert_eq!(bus.subscriber_count(), 1);
}
