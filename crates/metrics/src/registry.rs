//! The metric registry: named series, counters, and gauges behind a lock.
//!
//! "Data about system conditions and application resource requirements flow
//! into the metric interface, and on to both the adaptation controller and
//! individual applications" (§2). Producers record under dotted metric
//! names (`DBclient.66.response_time`); consumers read snapshots.

use std::collections::BTreeMap;
use std::sync::Arc;

use parking_lot::RwLock;

use crate::series::TimeSeries;

/// A shared, thread-safe registry of metrics.
///
/// Cloning is cheap (the state is behind an [`Arc`]); clones observe the
/// same metrics.
///
/// # Examples
///
/// ```
/// use harmony_metrics::MetricRegistry;
///
/// let reg = MetricRegistry::new();
/// reg.record("DBclient.1.response_time", 12.5, 9.8);
/// reg.inc_counter("DBclient.1.queries");
/// assert_eq!(reg.counter("DBclient.1.queries"), 1);
/// assert_eq!(reg.series("DBclient.1.response_time").unwrap().len(), 1);
/// ```
#[derive(Debug, Clone, Default)]
pub struct MetricRegistry {
    inner: Arc<RwLock<Inner>>,
}

#[derive(Debug, Default)]
struct Inner {
    series: BTreeMap<String, TimeSeries>,
    counters: BTreeMap<String, u64>,
    gauges: BTreeMap<String, f64>,
}

impl MetricRegistry {
    /// Creates an empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records a timestamped sample under `name`, creating the series on
    /// first use.
    pub fn record(&self, name: &str, time: f64, value: f64) {
        let mut inner = self.inner.write();
        inner.series.entry(name.to_owned()).or_default().record(time, value);
    }

    /// Returns a snapshot (clone) of the series under `name`.
    pub fn series(&self, name: &str) -> Option<TimeSeries> {
        self.inner.read().series.get(name).cloned()
    }

    /// Names of all series, in order.
    pub fn series_names(&self) -> Vec<String> {
        self.inner.read().series.keys().cloned().collect()
    }

    /// Increments the counter under `name` by 1, returning the new value.
    pub fn inc_counter(&self, name: &str) -> u64 {
        self.add_counter(name, 1)
    }

    /// Adds `delta` to the counter under `name`, returning the new value.
    pub fn add_counter(&self, name: &str, delta: u64) -> u64 {
        let mut inner = self.inner.write();
        let c = inner.counters.entry(name.to_owned()).or_insert(0);
        *c += delta;
        *c
    }

    /// Reads a counter (0 if never touched).
    pub fn counter(&self, name: &str) -> u64 {
        self.inner.read().counters.get(name).copied().unwrap_or(0)
    }

    /// Sets the gauge under `name`.
    pub fn set_gauge(&self, name: &str, value: f64) {
        self.inner.write().gauges.insert(name.to_owned(), value);
    }

    /// Reads a gauge.
    pub fn gauge(&self, name: &str) -> Option<f64> {
        self.inner.read().gauges.get(name).copied()
    }

    /// Removes every metric whose name starts with `prefix` (used when an
    /// application instance departs).
    pub fn remove_prefix(&self, prefix: &str) {
        let mut inner = self.inner.write();
        inner.series.retain(|k, _| !k.starts_with(prefix));
        inner.counters.retain(|k, _| !k.starts_with(prefix));
        inner.gauges.retain(|k, _| !k.starts_with(prefix));
    }

    /// Number of distinct metric names (series + counters + gauges).
    pub fn len(&self) -> usize {
        let inner = self.inner.read();
        inner.series.len() + inner.counters.len() + inner.gauges.len()
    }

    /// True when nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn series_counters_gauges() {
        let reg = MetricRegistry::new();
        assert!(reg.is_empty());
        reg.record("a.rt", 0.0, 1.0);
        reg.record("a.rt", 1.0, 3.0);
        assert_eq!(reg.series("a.rt").unwrap().mean(), Some(2.0));
        assert!(reg.series("missing").is_none());

        assert_eq!(reg.inc_counter("a.n"), 1);
        assert_eq!(reg.add_counter("a.n", 4), 5);
        assert_eq!(reg.counter("a.n"), 5);
        assert_eq!(reg.counter("never"), 0);

        reg.set_gauge("a.load", 0.7);
        assert_eq!(reg.gauge("a.load"), Some(0.7));
        assert_eq!(reg.gauge("never"), None);

        assert_eq!(reg.len(), 3);
        assert_eq!(reg.series_names(), vec!["a.rt"]);
    }

    #[test]
    fn clones_share_state() {
        let reg = MetricRegistry::new();
        let clone = reg.clone();
        clone.inc_counter("x");
        assert_eq!(reg.counter("x"), 1);
    }

    #[test]
    fn remove_prefix_drops_departed_instances() {
        let reg = MetricRegistry::new();
        reg.record("DBclient.1.rt", 0.0, 1.0);
        reg.inc_counter("DBclient.1.queries");
        reg.set_gauge("DBclient.1.load", 0.5);
        reg.record("DBclient.2.rt", 0.0, 1.0);
        reg.remove_prefix("DBclient.1");
        assert!(reg.series("DBclient.1.rt").is_none());
        assert_eq!(reg.counter("DBclient.1.queries"), 0);
        assert_eq!(reg.gauge("DBclient.1.load"), None);
        assert!(reg.series("DBclient.2.rt").is_some());
    }

    #[test]
    fn concurrent_recording_is_safe() {
        let reg = MetricRegistry::new();
        let threads: Vec<_> = (0..4)
            .map(|i| {
                let reg = reg.clone();
                std::thread::spawn(move || {
                    for j in 0..100 {
                        reg.record("shared", j as f64, (i * 100 + j) as f64);
                        reg.inc_counter("count");
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        assert_eq!(reg.counter("count"), 400);
        assert_eq!(reg.series("shared").unwrap().total_count(), 400);
    }
}
