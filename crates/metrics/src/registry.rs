//! The metric registry: named series, counters, and gauges behind a lock.
//!
//! "Data about system conditions and application resource requirements flow
//! into the metric interface, and on to both the adaptation controller and
//! individual applications" (§2). Producers record under dotted metric
//! names (`DBclient.66.response_time`); consumers read snapshots.

use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::sync::Arc;

use parking_lot::RwLock;

use crate::histogram::Histogram;
use crate::series::TimeSeries;

/// A shared, thread-safe registry of metrics.
///
/// Cloning is cheap (the state is behind an [`Arc`]); clones observe the
/// same metrics.
///
/// # Examples
///
/// ```
/// use harmony_metrics::MetricRegistry;
///
/// let reg = MetricRegistry::new();
/// reg.record("DBclient.1.response_time", 12.5, 9.8);
/// reg.inc_counter("DBclient.1.queries");
/// assert_eq!(reg.counter("DBclient.1.queries"), 1);
/// assert_eq!(reg.series("DBclient.1.response_time").unwrap().len(), 1);
/// ```
#[derive(Debug, Clone, Default)]
pub struct MetricRegistry {
    inner: Arc<RwLock<Inner>>,
}

#[derive(Debug, Default)]
struct Inner {
    series: BTreeMap<String, TimeSeries>,
    counters: BTreeMap<String, u64>,
    gauges: BTreeMap<String, f64>,
    histograms: BTreeMap<String, Histogram>,
}

impl MetricRegistry {
    /// Creates an empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records a timestamped sample under `name`, creating the series on
    /// first use.
    ///
    /// Non-finite times and values (`NaN`, `±inf`) are rejected and the
    /// series is left untouched: `TimeSeries` sorting and EWMA both
    /// propagate NaN, so one bad sample would poison every aggregate
    /// derived from the series. Returns whether the sample was accepted.
    pub fn record(&self, name: &str, time: f64, value: f64) -> bool {
        if !time.is_finite() || !value.is_finite() {
            return false;
        }
        let mut inner = self.inner.write();
        inner.series.entry(name.to_owned()).or_default().record(time, value);
        true
    }

    /// Returns a snapshot (clone) of the series under `name`.
    pub fn series(&self, name: &str) -> Option<TimeSeries> {
        self.inner.read().series.get(name).cloned()
    }

    /// Names of all series, in order.
    pub fn series_names(&self) -> Vec<String> {
        self.inner.read().series.keys().cloned().collect()
    }

    /// Increments the counter under `name` by 1, returning the new value.
    pub fn inc_counter(&self, name: &str) -> u64 {
        self.add_counter(name, 1)
    }

    /// Adds `delta` to the counter under `name`, returning the new value.
    pub fn add_counter(&self, name: &str, delta: u64) -> u64 {
        let mut inner = self.inner.write();
        let c = inner.counters.entry(name.to_owned()).or_insert(0);
        *c += delta;
        *c
    }

    /// Reads a counter (0 if never touched).
    pub fn counter(&self, name: &str) -> u64 {
        self.inner.read().counters.get(name).copied().unwrap_or(0)
    }

    /// Sets the gauge under `name`.
    pub fn set_gauge(&self, name: &str, value: f64) {
        self.inner.write().gauges.insert(name.to_owned(), value);
    }

    /// Reads a gauge.
    pub fn gauge(&self, name: &str) -> Option<f64> {
        self.inner.read().gauges.get(name).copied()
    }

    /// Records one observation into the histogram under `name`, creating
    /// it (with the response-time bucket layout) on first use.
    ///
    /// Non-finite observations are rejected, mirroring [`record`]; the
    /// return value reports whether the observation was accepted.
    ///
    /// [`record`]: MetricRegistry::record
    pub fn observe(&self, name: &str, value: f64) -> bool {
        if !value.is_finite() {
            return false;
        }
        let mut inner = self.inner.write();
        inner
            .histograms
            .entry(name.to_owned())
            .or_insert_with(Histogram::for_response_times)
            .record(value);
        true
    }

    /// Returns a snapshot (clone) of the histogram under `name`.
    pub fn histogram(&self, name: &str) -> Option<Histogram> {
        self.inner.read().histograms.get(name).cloned()
    }

    /// Names of all histograms, in order.
    pub fn histogram_names(&self) -> Vec<String> {
        self.inner.read().histograms.keys().cloned().collect()
    }

    /// Renders every counter, gauge, and histogram as a plain-text
    /// exposition: one `name value` line per counter/gauge, and per
    /// histogram a `count`/`mean`/`max` line plus `p50`/`p95` bucket
    /// bounds. The format is line-oriented and stable, meant for
    /// `harmonyctl export` and CI assertions rather than humans.
    pub fn expose(&self) -> String {
        let inner = self.inner.read();
        let mut out = String::new();
        for (name, c) in &inner.counters {
            let _ = writeln!(out, "counter {name} {c}");
        }
        for (name, g) in &inner.gauges {
            let _ = writeln!(out, "gauge {name} {g}");
        }
        for (name, h) in &inner.histograms {
            let _ = writeln!(out, "histogram {name} count {}", h.len());
            if let (Some(mean), Some(max)) = (h.mean(), h.max()) {
                let _ = writeln!(out, "histogram {name} mean {mean}");
                let _ = writeln!(out, "histogram {name} max {max}");
            }
            for (q, label) in [(0.5, "p50"), (0.95, "p95")] {
                if let Some(bound) = h.quantile_bound(q) {
                    let _ = writeln!(out, "histogram {name} {label} {bound}");
                }
            }
        }
        out
    }

    /// Removes every metric whose name starts with `prefix` (used when an
    /// application instance departs).
    pub fn remove_prefix(&self, prefix: &str) {
        let mut inner = self.inner.write();
        inner.series.retain(|k, _| !k.starts_with(prefix));
        inner.counters.retain(|k, _| !k.starts_with(prefix));
        inner.gauges.retain(|k, _| !k.starts_with(prefix));
        inner.histograms.retain(|k, _| !k.starts_with(prefix));
    }

    /// Number of distinct metric names (series + counters + gauges +
    /// histograms).
    pub fn len(&self) -> usize {
        let inner = self.inner.read();
        inner.series.len() + inner.counters.len() + inner.gauges.len() + inner.histograms.len()
    }

    /// True when nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn series_counters_gauges() {
        let reg = MetricRegistry::new();
        assert!(reg.is_empty());
        reg.record("a.rt", 0.0, 1.0);
        reg.record("a.rt", 1.0, 3.0);
        assert_eq!(reg.series("a.rt").unwrap().mean(), Some(2.0));
        assert!(reg.series("missing").is_none());

        assert_eq!(reg.inc_counter("a.n"), 1);
        assert_eq!(reg.add_counter("a.n", 4), 5);
        assert_eq!(reg.counter("a.n"), 5);
        assert_eq!(reg.counter("never"), 0);

        reg.set_gauge("a.load", 0.7);
        assert_eq!(reg.gauge("a.load"), Some(0.7));
        assert_eq!(reg.gauge("never"), None);

        assert_eq!(reg.len(), 3);
        assert_eq!(reg.series_names(), vec!["a.rt"]);
    }

    #[test]
    fn clones_share_state() {
        let reg = MetricRegistry::new();
        let clone = reg.clone();
        clone.inc_counter("x");
        assert_eq!(reg.counter("x"), 1);
    }

    #[test]
    fn remove_prefix_drops_departed_instances() {
        let reg = MetricRegistry::new();
        reg.record("DBclient.1.rt", 0.0, 1.0);
        reg.inc_counter("DBclient.1.queries");
        reg.set_gauge("DBclient.1.load", 0.5);
        reg.observe("DBclient.1.verb", 0.01);
        reg.record("DBclient.2.rt", 0.0, 1.0);
        reg.remove_prefix("DBclient.1");
        assert!(reg.series("DBclient.1.rt").is_none());
        assert_eq!(reg.counter("DBclient.1.queries"), 0);
        assert_eq!(reg.gauge("DBclient.1.load"), None);
        assert!(reg.histogram("DBclient.1.verb").is_none());
        assert!(reg.series("DBclient.2.rt").is_some());
    }

    #[test]
    fn non_finite_samples_are_rejected() {
        let reg = MetricRegistry::new();
        assert!(!reg.record("rt", 0.0, f64::NAN));
        assert!(!reg.record("rt", 0.0, f64::INFINITY));
        assert!(!reg.record("rt", 0.0, f64::NEG_INFINITY));
        assert!(!reg.record("rt", f64::NAN, 1.0));
        assert!(reg.series("rt").is_none(), "rejected samples leave no series behind");

        assert!(reg.record("rt", 0.0, 1.0));
        assert!(!reg.record("rt", 1.0, f64::NAN));
        let series = reg.series("rt").unwrap();
        assert_eq!(series.len(), 1, "rejected sample not appended");
        assert_eq!(series.mean(), Some(1.0), "aggregates stay finite");

        assert!(!reg.observe("lat", f64::NAN));
        assert!(reg.histogram("lat").is_none());
    }

    #[test]
    fn histograms_accumulate_and_snapshot() {
        let reg = MetricRegistry::new();
        assert!(reg.histogram("lat").is_none());
        for v in [0.01, 0.02, 0.04, 10.0] {
            assert!(reg.observe("lat", v));
        }
        let h = reg.histogram("lat").unwrap();
        assert_eq!(h.len(), 4);
        assert_eq!(h.max(), Some(10.0));
        assert_eq!(reg.histogram_names(), vec!["lat"]);
        assert_eq!(reg.len(), 1);
    }

    #[test]
    fn exposition_lists_every_kind() {
        let reg = MetricRegistry::new();
        reg.inc_counter("c.decisions");
        reg.set_gauge("g.load", 0.5);
        reg.observe("h.lat", 0.01);
        reg.observe("h.lat", 0.02);
        let text = reg.expose();
        assert!(text.contains("counter c.decisions 1"), "{text}");
        assert!(text.contains("gauge g.load 0.5"), "{text}");
        assert!(text.contains("histogram h.lat count 2"), "{text}");
        assert!(text.contains("histogram h.lat p50 "), "{text}");
        assert!(text.contains("histogram h.lat p95 "), "{text}");
        // Every line parses as `kind name field(s)...`.
        for line in text.lines() {
            let words: Vec<&str> = line.split_whitespace().collect();
            assert!(words.len() >= 3, "short line: {line}");
            assert!(matches!(words[0], "counter" | "gauge" | "histogram"), "{line}");
        }
    }

    #[test]
    fn concurrent_recording_is_safe() {
        let reg = MetricRegistry::new();
        let threads: Vec<_> = (0..4)
            .map(|i| {
                let reg = reg.clone();
                std::thread::spawn(move || {
                    for j in 0..100 {
                        reg.record("shared", j as f64, (i * 100 + j) as f64);
                        reg.inc_counter("count");
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        assert_eq!(reg.counter("count"), 400);
        assert_eq!(reg.series("shared").unwrap().total_count(), 400);
    }
}
